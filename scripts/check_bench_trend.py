#!/usr/bin/env python3
"""Fail-soft trend gate over BENCH_engine.json.

Compares the current run's bench report against a baseline (normally the
previous successful CI run's artifact) and emits GitHub warning
annotations for regressions beyond a threshold:

  - jobs/sec drops  > threshold in any section point (sweep, cache,
    shards, budget, learning, conflict, obs, zoo),
  - cache/memo hit-rate drops > threshold (relative) in the cache
    section,
  - total checker-query INCREASES > threshold in the learning "on" mode
    (fewer queries is the point of the constraint store),
  - jobs/sec drops, checker-query INCREASES, or minimized-clause /
    shed-member DROPS > threshold in the "conflict" section (the
    conflict-driven knobs), plus a within-run check that the knobs-on
    pass still cuts >= 25% of the knobs-off pass's checker queries,
  - p50/p95/p99 job-latency INCREASES > threshold in the sweep, shards,
    and budget sections (lower is better),
  - per-phase cpu-second INCREASES or per-phase share INCREASES >
    threshold in the "phases" section's profiled passes (cpu_s sums the
    four instrumented phases across every shard; the *_share fields
    normalize each phase against that sum, so the two runs compare like
    with like even when shard counts differ),
  - shard-scaling speedup drops > threshold and checker-query INCREASES
    in the shards section (query-neutrality of the sharded search),
  - obs overhead_pct INCREASES > threshold in the metrics/trace tiers
    (the instrumentation-cost budget),
  - jobs/sec drops or checker-query INCREASES > threshold in the "zoo"
    section's 500+-switch fabric points (scenario-zoo-at-scale cost;
    hard correctness failures there abort the bench itself, so the gate
    only prices the throughput).

Unknown top-level keys and unknown fields inside section points are
ignored, and sections absent from either file are skipped, so old and
new bench formats compare against each other without errors — the gate
only ever looks at fields both files have.

Sections are only compared when both files measured them at the same
per-section scale (the bench floors its parallel sections and records
the effective scale precisely so this script never compares different
workload sizes). Parallel sections (sweep, shards, budget) are
additionally skipped when the two runs report different
hardware_threads — speedups from different machines are not comparable.

By default always exits 0: CI perf numbers are noisy across runners, so
the gate warns and records, it never blocks. Set
NETUPD_BENCH_TREND_ENFORCE=1 to exit nonzero when any regression beyond
the threshold was found (for perf-focused CI lanes with pinned
runners). Usage:

  check_bench_trend.py BASELINE.json CURRENT.json [--threshold 0.25]
"""

import argparse
import json
import os
import sys

REGRESSIONS = []


def warn(msg):
    # GitHub annotation syntax; plain text everywhere else.
    REGRESSIONS.append(msg)
    print(f"::warning title=bench trend::{msg}")


def note(msg):
    print(f"bench-trend: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        note(f"cannot read {path}: {e}")
        return None


def section_scale(doc, section):
    return doc.get(f"{section}_scale", doc.get("scale"))


def rel_drop(base, cur):
    """Relative drop of cur below base; <= 0 means no regression."""
    if base is None or cur is None or base <= 0:
        return 0.0
    return (base - cur) / base


def index_by(points, key):
    return {p.get(key): p for p in points if key in p}


def compare_metric(section, label, base_pt, cur_pt, metric, threshold,
                   lower_is_better=False):
    base_v = base_pt.get(metric)
    cur_v = cur_pt.get(metric)
    if base_v is None or cur_v is None or base_v <= 0:
        return
    if lower_is_better:
        regression = (cur_v - base_v) / base_v  # Increase over baseline.
        direction = "rose"
    else:
        regression = rel_drop(base_v, cur_v)
        direction = "dropped"
    if regression > threshold:
        warn(f"{section}[{label}] {metric} {direction} "
             f"{regression * 100:.0f}%: {base_v} -> {cur_v}")


def compare_section(base, cur, section, key, metrics, threshold):
    if section_scale(base, section) != section_scale(cur, section):
        note(f"skipping '{section}': scales differ "
             f"({section_scale(base, section)} vs "
             f"{section_scale(cur, section)})")
        return
    base_pts = index_by(base.get(section, []), key)
    cur_pts = index_by(cur.get(section, []), key)
    for label, cur_pt in cur_pts.items():
        base_pt = base_pts.get(label)
        if base_pt is None:
            continue
        for metric, lower_is_better in metrics:
            compare_metric(section, label, base_pt, cur_pt, metric,
                           threshold, lower_is_better)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25)
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base is None:
        note("no baseline available; nothing to compare (first run?)")
        return 0
    if cur is None:
        warn("current BENCH_engine.json unreadable; bench may have failed")
        return 0

    t = args.threshold
    pct = [("p50_ms", True), ("p95_ms", True), ("p99_ms", True)]
    # Speedups only mean something on the same core count; refuse to
    # compare the parallel sections across machines. Files without the
    # field (old format) compare as before.
    base_hw = base.get("hardware_threads")
    cur_hw = cur.get("hardware_threads")
    same_machine = base_hw is None or cur_hw is None or base_hw == cur_hw
    if not same_machine:
        note(f"skipping parallel sections: hardware_threads differ "
             f"({base_hw} vs {cur_hw})")
    if same_machine:
        compare_section(base, cur, "sweep", "workers",
                        [("jobs_per_sec", False)] + pct, t)
    compare_section(base, cur, "cache", "mode",
                    [("jobs_per_sec", False),
                     ("engine_cache_hit_rate", False),
                     ("memo_hit_rate", False)], t)
    if same_machine:
        # speedup guards shard scaling itself; total_queries guards the
        # query-neutrality of the sharded search (steal binds and claim
        # races must not inflate checker work).
        compare_section(base, cur, "shards", "shards",
                        [("jobs_per_sec", False), ("speedup", False),
                         ("total_queries", True)] + pct, t)
        compare_section(base, cur, "budget", "shards",
                        [("jobs_per_sec", False)] + pct, t)
    compare_section(base, cur, "learning", "mode",
                    [("jobs_per_sec", False),
                     ("total_queries", True)], t)
    # Conflict-driven knobs: regressions against the baseline run, plus
    # a within-run floor — knobs-on must keep cutting at least 25% of
    # the knobs-off checker queries (the whole point of the layer).
    # Fail-soft like everything else here.
    compare_section(base, cur, "conflict", "mode",
                    [("jobs_per_sec", False), ("total_queries", True),
                     ("clauses_minimized", False),
                     ("shed_members", False)], t)
    conflict = index_by(cur.get("conflict", []), "mode")
    c_off, c_on = conflict.get("off"), conflict.get("on")
    if c_off and c_on and c_off.get("total_queries", 0) > 0:
        reduction = 1.0 - (c_on.get("total_queries", 0)
                           / c_off["total_queries"])
        if reduction < 0.25:
            warn(f"conflict knobs-on query reduction fell to "
                 f"{reduction * 100:.1f}% (floor: 25%)")
        else:
            note(f"conflict knobs-on query reduction: "
                 f"{reduction * 100:.1f}%")
    compare_section(base, cur, "zoo", "name",
                    [("jobs_per_sec", False),
                     ("total_queries", True)], t)
    # The obs overhead modes: a jobs/sec drop in "off" is an overhead
    # regression of the always-on tier; overhead_pct rises in
    # "metrics"/"trace" price the optional tiers directly (relative to
    # the same-run "off" pass, so it is machine-noise resistant).
    # Phases compare per (section, param) pair via a composite label;
    # thread-second increases are regressions.
    compare_section(base, cur, "obs", "mode",
                    [("jobs_per_sec", False),
                     ("overhead_pct", True)], t)
    for doc in (base, cur):
        for p in doc.get("phases", []):
            if isinstance(p, dict) and "section" in p and "param" in p:
                p["_phase_key"] = f"{p['section']}@{p['param']}"
    compare_section(base, cur, "phases", "_phase_key",
                    [("cpu_s", True), ("check_share", True),
                     ("mutate_share", True), ("prune_share", True),
                     ("sat_share", True)], t)
    note(f"comparison complete: {len(REGRESSIONS)} regression(s) beyond "
         f"{t * 100:.0f}%")
    if REGRESSIONS and os.environ.get("NETUPD_BENCH_TREND_ENFORCE") == "1":
        note("NETUPD_BENCH_TREND_ENFORCE=1: failing the gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
