#!/usr/bin/env python3
"""Fail-soft trend gate over BENCH_engine.json.

Compares the current run's bench report against a baseline (normally the
previous successful CI run's artifact) and emits GitHub warning
annotations for regressions beyond a threshold:

  - jobs/sec drops  > threshold in any section point (sweep, cache,
    shards, budget, learning, obs),
  - cache/memo hit-rate drops > threshold (relative) in the cache
    section,
  - total checker-query INCREASES > threshold in the learning "on" mode
    (fewer queries is the point of the constraint store),
  - p50/p95/p99 job-latency INCREASES > threshold in the sweep, shards,
    and budget sections (lower is better),
  - per-phase thread-second INCREASES > threshold in the "phases"
    section's profiled passes.

Unknown top-level keys and unknown fields inside section points are
ignored, and sections absent from either file are skipped, so old and
new bench formats compare against each other without errors — the gate
only ever looks at fields both files have.

Sections are only compared when both files measured them at the same
per-section scale (the bench floors its parallel sections and records
the effective scale precisely so this script never compares different
workload sizes).

Always exits 0: CI perf numbers are noisy across runners, so the gate
warns and records, it never blocks. Usage:

  check_bench_trend.py BASELINE.json CURRENT.json [--threshold 0.25]
"""

import argparse
import json
import sys


def warn(msg):
    # GitHub annotation syntax; plain text everywhere else.
    print(f"::warning title=bench trend::{msg}")


def note(msg):
    print(f"bench-trend: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        note(f"cannot read {path}: {e}")
        return None


def section_scale(doc, section):
    return doc.get(f"{section}_scale", doc.get("scale"))


def rel_drop(base, cur):
    """Relative drop of cur below base; <= 0 means no regression."""
    if base is None or cur is None or base <= 0:
        return 0.0
    return (base - cur) / base


def index_by(points, key):
    return {p.get(key): p for p in points if key in p}


def compare_metric(section, label, base_pt, cur_pt, metric, threshold,
                   lower_is_better=False):
    base_v = base_pt.get(metric)
    cur_v = cur_pt.get(metric)
    if base_v is None or cur_v is None or base_v <= 0:
        return
    if lower_is_better:
        regression = (cur_v - base_v) / base_v  # Increase over baseline.
        direction = "rose"
    else:
        regression = rel_drop(base_v, cur_v)
        direction = "dropped"
    if regression > threshold:
        warn(f"{section}[{label}] {metric} {direction} "
             f"{regression * 100:.0f}%: {base_v} -> {cur_v}")


def compare_section(base, cur, section, key, metrics, threshold):
    if section_scale(base, section) != section_scale(cur, section):
        note(f"skipping '{section}': scales differ "
             f"({section_scale(base, section)} vs "
             f"{section_scale(cur, section)})")
        return
    base_pts = index_by(base.get(section, []), key)
    cur_pts = index_by(cur.get(section, []), key)
    for label, cur_pt in cur_pts.items():
        base_pt = base_pts.get(label)
        if base_pt is None:
            continue
        for metric, lower_is_better in metrics:
            compare_metric(section, label, base_pt, cur_pt, metric,
                           threshold, lower_is_better)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25)
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base is None:
        note("no baseline available; nothing to compare (first run?)")
        return 0
    if cur is None:
        warn("current BENCH_engine.json unreadable; bench may have failed")
        return 0

    t = args.threshold
    pct = [("p50_ms", True), ("p95_ms", True), ("p99_ms", True)]
    compare_section(base, cur, "sweep", "workers",
                    [("jobs_per_sec", False)] + pct, t)
    compare_section(base, cur, "cache", "mode",
                    [("jobs_per_sec", False),
                     ("engine_cache_hit_rate", False),
                     ("memo_hit_rate", False)], t)
    compare_section(base, cur, "shards", "shards",
                    [("jobs_per_sec", False)] + pct, t)
    compare_section(base, cur, "budget", "shards",
                    [("jobs_per_sec", False)] + pct, t)
    compare_section(base, cur, "learning", "mode",
                    [("jobs_per_sec", False),
                     ("total_queries", True)], t)
    # The obs overhead modes: a jobs/sec drop in "off" is an overhead
    # regression of the always-on tier; drops in "metrics"/"trace" price
    # the optional tiers. Phases compare per (section, param) pair via a
    # composite label; thread-second increases are regressions.
    compare_section(base, cur, "obs", "mode",
                    [("jobs_per_sec", False)], t)
    for doc in (base, cur):
        for p in doc.get("phases", []):
            if isinstance(p, dict) and "section" in p and "param" in p:
                p["_phase_key"] = f"{p['section']}@{p['param']}"
    compare_section(base, cur, "phases", "_phase_key",
                    [("check_s", True), ("mutate_s", True),
                     ("prune_s", True), ("sat_s", True)], t)
    note("comparison complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
