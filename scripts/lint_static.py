#!/usr/bin/env python3
"""Repo-specific determinism & concurrency-hygiene lint for netupd.

Enforces the invariants no off-the-shelf tool knows about (the engine's
determinism contract: verdict and command sequence are a pure function of
(job, budget), shard-count-independent):

  wallclock     No wall-clock or randomness source reachable from
                deterministic-budget code paths: std::chrono, time(),
                clock_gettime(), gettimeofday(), rand()/srand(),
                std::random_device anywhere under src/ EXCEPT the two
                sanctioned clock wrappers (src/obs/, the trace/metrics
                time base, and src/support/Timer.h, the stopwatch that
                only ever feeds stats and the soft-wall hint) and lines
                tagged `// lint: wallclock-ok`.

  relaxed       Every `memory_order_relaxed` must carry a `relaxed:`
                justification comment — on the same line, or in a
                comment within the preceding contiguous block (no blank
                line in between, max 10 lines up).

  mutate-undo   Every `X.applySwitchUpdate(...)` / `X->applySwitchUpdate`
                call must be paired with rollback in the same scope:
                an `undo(` call within the following window, an undo
                record stored into an owning container/frame
                (`Undos.push_back(...)` / an `F.Undo` argument), or a
                `// lint: mutate-ok` tag.

  thread-hygiene  No detached threads (`.detach()`) and no naked `new`
                in src/ (use make_unique / containers); deliberate
                leaks and lock-free intrusive nodes are tagged
                `// lint: naked-new-ok`.

Usage:
  lint_static.py [--root DIR]        lint src/ under DIR (default: repo root)
  lint_static.py --self-test [--root DIR]
                                     run the rule engine over the known-bad /
                                     known-good corpus in tests/lint/ and exit
                                     nonzero on any mismatch

Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage error.

Suppression policy (docs/ARCHITECTURE.md "Static analysis & sanitizers"):
a new `lint:` tag is a reviewed decision. Tags name their rule, so a grep
for `lint:` audits every suppression in the tree.
"""

import argparse
import os
import re
import sys

# --- Comment stripping ------------------------------------------------------
#
# Rules match *code*, not prose: a doc comment mentioning std::chrono must
# not trip the wallclock rule. Tags, by contrast, are read from raw lines
# (they live in comments). String literals are blanked too, so a log
# message containing "rand(" stays inert.

_STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"' + r"|'(?:\\.|[^'\\])*'")


def strip_comments(lines):
    """Returns code-only lines (same count), with comments and string
    literal *contents* blanked out."""
    out = []
    in_block = False
    for raw in lines:
        line = _STRING_RE.sub('""', raw)
        code = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            code.append(line[i])
            i += 1
        out.append("".join(code))
    return out


# --- Rules ------------------------------------------------------------------

WALLCLOCK_RE = re.compile(
    r"std::chrono|std::random_device|steady_clock|system_clock"
    r"|high_resolution_clock"
    r"|\b(?:time|clock_gettime|gettimeofday|localtime|gmtime|rand|srand)\s*\("
)
RELAXED_RE = re.compile(r"memory_order_relaxed")
MUTATE_RE = re.compile(r"[\w\)\]](?:\.|->)applySwitchUpdate\s*\(")
UNDO_RE = re.compile(r"(?:\.|->)undo\s*\(|Undos\.push_back|\bF\.Undo\b")
DETACH_RE = re.compile(r"(?:\.|->)detach\s*\(\s*\)")
NAKED_NEW_RE = re.compile(r"\bnew\s+(?:\(|[A-Za-z_])")
PLACEMENT_NEW_RE = re.compile(r"\bnew\s*\(")

TAG_WALLCLOCK = "lint: wallclock-ok"
TAG_MUTATE = "lint: mutate-ok"
TAG_NAKED_NEW = "lint: naked-new-ok"
TAG_RELAXED = "relaxed:"

RELAXED_LOOKBACK = 10  # lines; a blank line ends the covered block
NAKED_NEW_LOOKBACK = 2
MUTATE_WINDOW = 80  # lines after the call in which rollback must appear

# Files whose whole purpose is wall-clock access; everything else in src/
# must route time through them (or tag the line).
WALLCLOCK_ALLOWED_PREFIXES = ("src/obs/",)
WALLCLOCK_ALLOWED_FILES = ("src/support/Timer.h",)


def tag_in_lookback(raw_lines, idx, tag, lookback):
    """True if `tag` appears on line idx or in the comment block directly
    above it (no intervening blank line, at most `lookback` lines up)."""
    if tag in raw_lines[idx]:
        return True
    for back in range(1, lookback + 1):
        j = idx - back
        if j < 0:
            break
        if not raw_lines[j].strip():
            break
        if tag in raw_lines[j]:
            return True
    return False


def lint_file(relpath, raw_lines, findings):
    code_lines = strip_comments(raw_lines)
    wallclock_exempt = relpath.startswith(
        WALLCLOCK_ALLOWED_PREFIXES
    ) or relpath in WALLCLOCK_ALLOWED_FILES

    for i, code in enumerate(code_lines):
        raw = raw_lines[i]
        lineno = i + 1

        if not wallclock_exempt and WALLCLOCK_RE.search(code):
            if TAG_WALLCLOCK not in raw:
                findings.append(
                    (relpath, lineno, "wallclock",
                     "wall-clock/randomness source on a deterministic "
                     "path (route through support/Timer.h or obs::nowNs, "
                     "or tag `// lint: wallclock-ok`)"))

        if RELAXED_RE.search(code):
            if not tag_in_lookback(raw_lines, i, TAG_RELAXED,
                                   RELAXED_LOOKBACK):
                findings.append(
                    (relpath, lineno, "relaxed",
                     "memory_order_relaxed without a `// relaxed:` "
                     "justification in the preceding comment block"))

        if MUTATE_RE.search(code):
            if TAG_MUTATE not in raw:
                window = code_lines[i:i + MUTATE_WINDOW]
                if not any(UNDO_RE.search(l) for l in window):
                    findings.append(
                        (relpath, lineno, "mutate-undo",
                         "applySwitchUpdate without an undo()/owned undo "
                         "record within the same scope (or `// lint: "
                         "mutate-ok`)"))

        if DETACH_RE.search(code):
            findings.append(
                (relpath, lineno, "thread-hygiene",
                 "detached thread: every thread must be joined (no "
                 "allowlist — restructure instead)"))

        if NAKED_NEW_RE.search(code) and not PLACEMENT_NEW_RE.search(code):
            if not tag_in_lookback(raw_lines, i, TAG_NAKED_NEW,
                                   NAKED_NEW_LOOKBACK):
                findings.append(
                    (relpath, lineno, "thread-hygiene",
                     "naked `new` (use std::make_unique / a container, "
                     "or tag the deliberate site `// lint: "
                     "naked-new-ok`)"))


def lint_tree(root):
    findings = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cpp", ".cc", ".hpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                raw = f.read().splitlines()
            lint_file(rel, raw, findings)
    return findings


# --- Self-test over the corpus ----------------------------------------------
#
# tests/lint/known_bad/*.cc each declare the rule they must trigger in a
# first-line comment `// expect: <rule>`; known_good/*.cc must be clean.
# Corpus files are linted as if they lived at src/<name>, so the wallclock
# scope applies.


def self_test(root):
    corpus = os.path.join(root, "tests", "lint")
    bad_dir = os.path.join(corpus, "known_bad")
    good_dir = os.path.join(corpus, "known_good")
    failures = []
    checked = 0

    for name in sorted(os.listdir(bad_dir)):
        if not name.endswith(".cc"):
            continue
        path = os.path.join(bad_dir, name)
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        m = re.match(r"//\s*expect:\s*([\w-]+)", raw[0] if raw else "")
        if not m:
            failures.append(f"{name}: missing `// expect: <rule>` header")
            continue
        expected = m.group(1)
        findings = []
        lint_file("src/" + name, raw, findings)
        rules = {rule for (_f, _l, rule, _m) in findings}
        if expected not in rules:
            failures.append(
                f"{name}: expected rule '{expected}' did not fire "
                f"(fired: {sorted(rules) or 'none'})")
        checked += 1

    for name in sorted(os.listdir(good_dir)):
        if not name.endswith(".cc"):
            continue
        path = os.path.join(good_dir, name)
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        findings = []
        lint_file("src/" + name, raw, findings)
        if findings:
            shown = ", ".join(f"{r}@{l}" for (_f, l, r, _m) in findings)
            failures.append(f"{name}: expected clean, fired: {shown}")
        checked += 1

    for f in failures:
        print(f"lint self-test FAIL: {f}", file=sys.stderr)
    print(f"lint self-test: {checked - len(failures)}/{checked} corpus "
          f"files behaved as expected")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--self-test", action="store_true",
                    help="validate the rules against tests/lint/ corpus")
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint: no src/ under {root}", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    findings = lint_tree(root)
    for relpath, lineno, rule, msg in findings:
        print(f"{relpath}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
