//===- tests/sat_test.cpp - CDCL SAT solver tests --------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::sat;

namespace {

/// Brute-force SAT over <= 16 variables.
bool bruteForceSat(int NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint32_t Assign = 0; Assign != (1u << NumVars); ++Assign) {
    bool AllSat = true;
    for (const auto &Cl : Clauses) {
      bool Sat = false;
      for (Lit L : Cl) {
        bool V = (Assign >> L.var()) & 1;
        if (V != L.sign()) {
          Sat = true;
          break;
        }
      }
      if (!Sat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

} // namespace

TEST(SatTest, TrivialSat) {
  Solver S;
  Var A = S.newVar();
  Var B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  EXPECT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(A) || S.modelValue(B));
}

TEST(SatTest, TrivialUnsat) {
  Solver S;
  Var A = S.newVar();
  S.addClause({mkLit(A)});
  S.addClause({~mkLit(A)});
  EXPECT_FALSE(S.solve());
}

TEST(SatTest, UnitPropagationChain) {
  Solver S;
  std::vector<Var> Vs;
  for (int I = 0; I != 10; ++I)
    Vs.push_back(S.newVar());
  S.addClause({mkLit(Vs[0])});
  for (int I = 0; I + 1 != 10; ++I)
    S.addClause({~mkLit(Vs[I]), mkLit(Vs[I + 1])});
  ASSERT_TRUE(S.solve());
  for (int I = 0; I != 10; ++I)
    EXPECT_TRUE(S.modelValue(Vs[I]));
}

TEST(SatTest, PigeonHole3Into2) {
  // 3 pigeons, 2 holes: classic small UNSAT instance.
  Solver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I != 3; ++I)
    S.addClause({mkLit(P[I][0]), mkLit(P[I][1])});
  for (int H = 0; H != 2; ++H)
    for (int I = 0; I != 3; ++I)
      for (int J = I + 1; J != 3; ++J)
        S.addClause({~mkLit(P[I][H]), ~mkLit(P[J][H])});
  EXPECT_FALSE(S.solve());
}

TEST(SatTest, AssumptionsDoNotPersist) {
  Solver S;
  Var A = S.newVar();
  Var B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  EXPECT_FALSE(S.solve({~mkLit(A), ~mkLit(B)}));
  // Without assumptions the formula is still satisfiable.
  EXPECT_TRUE(S.solve());
  EXPECT_TRUE(S.solve({~mkLit(A)}));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatTest, IncrementalClauseAddition) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  EXPECT_TRUE(S.solve());
  S.addClause({~mkLit(A)});
  EXPECT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(B));
  S.addClause({~mkLit(B), mkLit(C)});
  S.addClause({~mkLit(C)});
  EXPECT_FALSE(S.solve());
  // Once root-level UNSAT, it stays UNSAT.
  EXPECT_FALSE(S.solve());
}

TEST(SatTest, TautologyAndDuplicates) {
  Solver S;
  Var A = S.newVar();
  Var B = S.newVar();
  // Tautological clause is dropped, duplicate literals collapse.
  S.addClause({mkLit(A), ~mkLit(A)});
  S.addClause({mkLit(B), mkLit(B)});
  ASSERT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(B));
}

struct RandomCnfParam {
  uint64_t Seed;
  int NumVars;
  int NumClauses;
};

class SatRandomTest : public ::testing::TestWithParam<RandomCnfParam> {};

TEST_P(SatRandomTest, MatchesBruteForce) {
  RandomCnfParam P = GetParam();
  Rng R(P.Seed);
  Solver S;
  for (int I = 0; I != P.NumVars; ++I)
    S.newVar();

  std::vector<std::vector<Lit>> Clauses;
  for (int C = 0; C != P.NumClauses; ++C) {
    std::vector<Lit> Cl;
    int Len = 1 + static_cast<int>(R.nextBelow(3));
    for (int L = 0; L != Len; ++L)
      Cl.push_back(Lit(static_cast<Var>(R.nextBelow(P.NumVars)),
                       R.nextBool()));
    Clauses.push_back(Cl);
  }

  bool Expected = bruteForceSat(P.NumVars, Clauses);
  for (const auto &Cl : Clauses)
    S.addClause(Cl);
  bool Got = S.solve();
  EXPECT_EQ(Got, Expected);

  if (Got) {
    // The model must satisfy every clause.
    for (const auto &Cl : Clauses) {
      bool Sat = false;
      for (Lit L : Cl)
        Sat |= S.modelValue(L.var()) != L.sign();
      EXPECT_TRUE(Sat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCnf, SatRandomTest, ::testing::Values(
        RandomCnfParam{1, 6, 15}, RandomCnfParam{2, 8, 25},
        RandomCnfParam{3, 8, 35}, RandomCnfParam{4, 10, 42},
        RandomCnfParam{5, 10, 30}, RandomCnfParam{6, 12, 50},
        RandomCnfParam{7, 12, 60}, RandomCnfParam{8, 5, 40},
        RandomCnfParam{9, 14, 56}, RandomCnfParam{10, 14, 70},
        RandomCnfParam{11, 7, 21}, RandomCnfParam{12, 9, 36},
        RandomCnfParam{13, 11, 44}, RandomCnfParam{14, 13, 52},
        RandomCnfParam{15, 15, 60}, RandomCnfParam{16, 15, 75}));

TEST(SatTest, RandomWithAssumptions) {
  Rng R(99);
  for (int Round = 0; Round != 20; ++Round) {
    Solver S;
    int NumVars = 8;
    for (int I = 0; I != NumVars; ++I)
      S.newVar();
    std::vector<std::vector<Lit>> Clauses;
    for (int C = 0; C != 20; ++C) {
      std::vector<Lit> Cl;
      int Len = 1 + static_cast<int>(R.nextBelow(3));
      for (int L = 0; L != Len; ++L)
        Cl.push_back(Lit(static_cast<Var>(R.nextBelow(NumVars)),
                         R.nextBool()));
      Clauses.push_back(Cl);
      S.addClause(Cl);
    }
    std::vector<Lit> Assumps = {Lit(0, R.nextBool()), Lit(1, R.nextBool())};
    // Assumptions are equivalent to adding unit clauses.
    std::vector<std::vector<Lit>> WithUnits = Clauses;
    WithUnits.push_back({Assumps[0]});
    WithUnits.push_back({Assumps[1]});
    EXPECT_EQ(S.solve(Assumps), bruteForceSat(NumVars, WithUnits));
    // And the solver is still usable afterwards.
    EXPECT_EQ(S.solve(), bruteForceSat(NumVars, Clauses));
  }
}
