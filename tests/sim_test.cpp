//===- tests/sim_test.cpp - simulator tests --------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "kripke/Kripke.h"
#include "ltl/Properties.h"
#include "ltl/TraceEval.h"
#include "mc/LabelingChecker.h"
#include "synth/Baselines.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

TEST(SimulatorTest, SinglePacketFollowsRedPath) {
  Fig1Network N = buildFig1();
  Simulator Sim(N.Topo, N.Red);
  Sim.injectPacket(N.H[0], N.FlowH1H3.Hdr, /*PacketId=*/7);
  ASSERT_TRUE(Sim.runToQuiescence());

  ASSERT_EQ(Sim.deliveries().size(), 1u);
  EXPECT_EQ(Sim.deliveries()[0].To, N.H[2]);
  EXPECT_EQ(Sim.deliveries()[0].PacketId, 7u);
  EXPECT_EQ(Sim.droppedCount(), 0u);

  // The observation sequence is the red path, ending with an OUT.
  std::vector<Observation> T = Sim.packetTrace(7);
  ASSERT_EQ(T.size(), 6u); // 5 PROCESS + 1 OUT.
  std::vector<SwitchId> Expected = {N.T[0], N.A[0], N.C1, N.A[2], N.T[2],
                                    N.T[2]};
  for (size_t I = 0; I != T.size(); ++I)
    EXPECT_EQ(T[I].Sw, Expected[I]);
  EXPECT_TRUE(T.back().IsOut);
  EXPECT_EQ(T.back().Pt, N.dstPort());
}

TEST(SimulatorTest, BlackholeDrops) {
  Fig1Network N = buildFig1();
  Config Broken = N.Red;
  Broken.setTable(N.C1, Table()); // C1 loses its rules.
  Simulator Sim(N.Topo, Broken);
  Sim.injectPacket(N.H[0], N.FlowH1H3.Hdr);
  ASSERT_TRUE(Sim.runToQuiescence());
  EXPECT_TRUE(Sim.deliveries().empty());
  EXPECT_EQ(Sim.droppedCount(), 1u);
}

/// Lemma 1 in executable form: a packet's simulator trace corresponds to
/// a trace of the network Kripke structure.
TEST(SimulatorTest, TracesMatchKripkeStructure) {
  Rng R(55);
  unsigned Compared = 0;
  for (int Round = 0; Round != 20; ++Round) {
    RandomNet Net = randomNet(R, 5);
    Config Cfg = randomConfig(Net, R);
    KripkeStructure K(Net.Topo, Cfg, Net.Classes);
    if (K.findForwardingLoop())
      continue; // The simulator would loop packets forever.

    Simulator Sim(Net.Topo, Cfg);
    Sim.injectPacket(0, Net.Classes[0].Hdr, 1);
    ASSERT_TRUE(Sim.runToQuiescence());
    std::vector<Observation> SimTrace = Sim.packetTrace(1);
    if (SimTrace.empty())
      continue;

    // Find the Kripke trace starting at the same ingress and compare the
    // (sw, pt) skeletons: PROCESS observations are arrival states; a
    // final OUT observation is the egress state.
    std::vector<std::vector<StateId>> Traces = K.enumerateTraces(10000);
    bool Found = false;
    for (const auto &T : Traces) {
      if (T.size() != SimTrace.size())
        continue;
      bool Match = true;
      for (size_t I = 0; I != T.size(); ++I) {
        Match &= K.stateSwitch(T[I]) == SimTrace[I].Sw &&
                 K.statePort(T[I]) == SimTrace[I].Pt;
        bool WantEgress = SimTrace[I].IsOut;
        Match &=
            (K.stateRole(T[I]) == KripkeStructure::Role::Egress) ==
            WantEgress;
      }
      if (Match) {
        Found = true;
        break;
      }
    }
    EXPECT_TRUE(Found) << "simulator trace has no Kripke counterpart";
    ++Compared;
  }
  EXPECT_GE(Compared, 5u); // The rounds must exercise real traces.
}

TEST(SimulatorTest, NaiveUpdateLosesProbes) {
  // Fig. 2(a), blue line: the naive red->green update (A1 before C2 in
  // ascending-id order? ids make C2 update late) drops packets in the
  // window where A1 points at a rule-less C2.
  Fig1Network N = buildFig1();
  CommandSeq Naive;
  // Worst-case naive order: A1 first, then C2 — exactly the §2 mistake.
  Naive.push_back(Command::update(N.A[0], N.Green.table(N.A[0])));
  Naive.push_back(Command::update(N.C2, N.Green.table(N.C2)));

  Simulator Sim(N.Topo, N.Red, SimParams{/*UpdateLatencyTicks=*/30});
  Sim.enqueueCommands(Naive);
  uint64_t Sent = 0;
  for (int Tick = 0; Tick != 200; ++Tick) {
    Sim.injectPacket(N.H[0], N.FlowH1H3.Hdr, 1000 + Tick);
    ++Sent;
    Sim.step();
  }
  Sim.runToQuiescence();
  EXPECT_GT(Sim.droppedCount(), 0u);
  EXPECT_LT(Sim.deliveries().size(), Sent);
}

TEST(SimulatorTest, SynthesizedUpdateLosesNothing) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  LabelingChecker Checker;
  SynthResult Synth =
      synthesizeUpdate(N.Topo, N.Red, N.Green, {N.FlowH1H3}, Phi, Checker);
  ASSERT_EQ(Synth.Status, SynthStatus::Success);

  Simulator Sim(N.Topo, N.Red, SimParams{/*UpdateLatencyTicks=*/30});
  Sim.enqueueCommands(Synth.Commands);
  uint64_t Sent = 0;
  for (int Tick = 0; Tick != 200; ++Tick) {
    Sim.injectPacket(N.H[0], N.FlowH1H3.Hdr, 2000 + Tick);
    ++Sent;
    Sim.step();
  }
  ASSERT_TRUE(Sim.runToQuiescence());
  EXPECT_EQ(Sim.droppedCount(), 0u);
  EXPECT_EQ(Sim.deliveries().size(), Sent);
  EXPECT_EQ(Sim.config(), N.Green);
}

TEST(SimulatorTest, TwoPhaseUpdateLosesNothing) {
  Fig1Network N = buildFig1();
  TwoPhasePlan Plan = makeTwoPhasePlan(N.Topo, N.Red, N.Green);

  Simulator Sim(N.Topo, N.Red, SimParams{/*UpdateLatencyTicks=*/10});
  Sim.enqueueCommands(Plan.fullSequence());
  uint64_t Sent = 0;
  for (int Tick = 0; Tick != 600; ++Tick) {
    Sim.injectPacket(N.H[0], N.FlowH1H3.Hdr, 3000 + Tick);
    ++Sent;
    Sim.step();
  }
  ASSERT_TRUE(Sim.runToQuiescence());
  EXPECT_EQ(Sim.droppedCount(), 0u);
  // Deliveries may carry the version tag in typ; all packets arrive.
  EXPECT_EQ(Sim.deliveries().size(), Sent);
  EXPECT_EQ(Sim.config(), N.Green);

  // Rule overhead during the run matches the plan's accounting.
  for (SwitchId Sw = 0; Sw != N.Topo.numSwitches(); ++Sw)
    EXPECT_LE(Sim.maxRulesSeen(Sw), Plan.MaxRulesPerSwitch[Sw]);
}

TEST(SimulatorTest, WaitDrainsOldEpochPackets) {
  // A wait between two updates must not complete while pre-wait packets
  // are still in flight.
  Fig1Network N = buildFig1();
  Simulator Sim(N.Topo, N.Red, SimParams{/*UpdateLatencyTicks=*/1});
  CommandSeq Seq;
  Seq.push_back(Command::wait());
  Sim.enqueueCommands(Seq);
  // Packets already in the network when the wait begins:
  Sim.injectPacket(N.H[0], N.FlowH1H3.Hdr, 1);
  EXPECT_FALSE(Sim.quiescent());
  ASSERT_TRUE(Sim.runToQuiescence());
  EXPECT_EQ(Sim.deliveries().size(), 1u);
}
