//===- tests/synth_test.cpp - ORDERUPDATE synthesis tests ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "mc/LabelingChecker.h"
#include "synth/Baselines.h"
#include "synth/EarlyTermination.h"
#include "synth/OrderUpdate.h"
#include "synth/WaitRemoval.h"
#include "topo/Fig1.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// Indices of the update commands touching \p Sw.
std::vector<size_t> updatePositions(const CommandSeq &Seq, SwitchId Sw) {
  std::vector<size_t> Out;
  for (size_t I = 0; I != Seq.size(); ++I)
    if (Seq[I].K == Command::Kind::Update && Seq[I].Sw == Sw)
      Out.push_back(I);
  return Out;
}

} // namespace

/// §2's headline example: shifting red -> green must update C2 before A1.
TEST(OrderUpdateTest, RedToGreenOrdersC2BeforeA1) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  LabelingChecker Checker;
  SynthResult R = synthesizeUpdate(N.Topo, N.Red, N.Green, {N.FlowH1H3},
                                   Phi, Checker);
  ASSERT_EQ(R.Status, SynthStatus::Success);

  std::vector<size_t> C2Pos = updatePositions(R.Commands, N.C2);
  std::vector<size_t> A1Pos = updatePositions(R.Commands, N.A[0]);
  ASSERT_EQ(C2Pos.size(), 1u);
  ASSERT_EQ(A1Pos.size(), 1u);
  EXPECT_LT(C2Pos[0], A1Pos[0]) << commandSeqToString(N.Topo, R.Commands);

  // Reaches the final configuration.
  Config End = N.Red;
  applyCommands(End, R.Commands);
  EXPECT_EQ(End, N.Green);

  // Every intermediate configuration satisfies the property (Lemma 2).
  EXPECT_TRUE(allIntermediateConfigsHold(N.Topo, N.Red, {N.FlowH1H3}, Phi,
                                         R.Commands));
}

/// §2's second example: red -> blue with connectivity and an A3-or-A4
/// waypoint. The paper's tool produces A2, A4, T1, wait, C1.
TEST(OrderUpdateTest, RedToBlueWithEitherWaypoint) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = eitherWaypointProperty(FF, N.srcPort(), N.A[2], N.A[3],
                                       N.dstPort());

  LabelingChecker Checker;
  SynthResult R = synthesizeUpdate(N.Topo, N.Red, N.Blue, {N.FlowH1H3},
                                   Phi, Checker);
  ASSERT_EQ(R.Status, SynthStatus::Success);

  Config End = N.Red;
  applyCommands(End, R.Commands);
  EXPECT_EQ(End, N.Blue);
  EXPECT_TRUE(allIntermediateConfigsHold(N.Topo, N.Red, {N.FlowH1H3}, Phi,
                                         R.Commands));

  // T1 (the divergence point) must be updated before C1: once T1 sends
  // packets through A2, C1 must still point at A3 until everything else
  // is ready... the synthesizer figures out a correct order; we verify
  // the paper's key structural fact: A2 and A4 precede T1 and C1.
  size_t T1 = updatePositions(R.Commands, N.T[0]).at(0);
  size_t C1 = updatePositions(R.Commands, N.C1).at(0);
  size_t A2 = updatePositions(R.Commands, N.A[1]).at(0);
  size_t A4 = updatePositions(R.Commands, N.A[3]).at(0);
  EXPECT_LT(A2, T1);
  EXPECT_LT(A4, C1);
}

TEST(OrderUpdateTest, EmptyDiffSucceedsTrivially) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  LabelingChecker Checker;
  SynthResult R =
      synthesizeUpdate(N.Topo, N.Red, N.Red, {N.FlowH1H3}, Phi, Checker);
  EXPECT_EQ(R.Status, SynthStatus::Success);
  EXPECT_TRUE(R.Commands.empty());
}

TEST(OrderUpdateTest, InitialViolationDetected) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  // Demand waypointing through C2, which the red path never visits.
  Formula Phi = waypointProperty(FF, N.srcPort(), Prop::onSwitch(N.C2),
                                 N.dstPort());
  LabelingChecker Checker;
  SynthResult R = synthesizeUpdate(N.Topo, N.Red, N.Green, {N.FlowH1H3},
                                   Phi, Checker);
  EXPECT_EQ(R.Status, SynthStatus::InitialViolation);
}

namespace {

struct SynthScenarioParam {
  uint64_t Seed;
  PropertyKind Kind;
  bool RuleGranularity;
};

class SynthScenarioTest
    : public ::testing::TestWithParam<SynthScenarioParam> {};

} // namespace

/// Soundness property test (Theorem 1): on random diamonds, synthesis
/// succeeds and every intermediate configuration satisfies the property.
TEST_P(SynthScenarioTest, SynthesizedSequenceIsSound) {
  SynthScenarioParam P = GetParam();
  Rng R(P.Seed);
  Topology Base = buildSmallWorld(18, 4, 0.2, R);
  std::optional<Scenario> S = makeDiamondScenario(Base, R, P.Kind);
  ASSERT_TRUE(S.has_value());

  FormulaFactory FF;
  LabelingChecker Checker;
  SynthOptions Opts;
  Opts.RuleGranularity = P.RuleGranularity;
  SynthResult Res = synthesizeUpdate(*S, FF, Checker, Opts);
  ASSERT_EQ(Res.Status, SynthStatus::Success);

  Formula Phi = S->buildProperty(FF);
  EXPECT_TRUE(allIntermediateConfigsHold(S->Topo, S->Initial, S->classes(),
                                         Phi, Res.Commands));

  // The final configuration is reached up to rule order.
  Config End = S->Initial;
  applyCommands(End, Res.Commands);
  EXPECT_TRUE(diffSwitches(End, S->Final).empty() ||
              [&] {
                // Rule-granularity replay may order rules differently;
                // compare semantically by checking table outputs on the
                // scenario classes.
                for (SwitchId Sw : diffSwitches(End, S->Final))
                  for (const TrafficClass &C : S->classes())
                    for (PortId Pt : S->Topo.switchPorts(Sw))
                      if (End.table(Sw).apply(C.Hdr, Pt) !=
                          S->Final.table(Sw).apply(C.Hdr, Pt))
                        return false;
                return true;
              }());
}

INSTANTIATE_TEST_SUITE_P(
    Random, SynthScenarioTest,
    ::testing::Values(
        SynthScenarioParam{201, PropertyKind::Reachability, false},
        SynthScenarioParam{202, PropertyKind::Waypoint, false},
        SynthScenarioParam{203, PropertyKind::ServiceChain, false},
        SynthScenarioParam{204, PropertyKind::Reachability, true},
        SynthScenarioParam{205, PropertyKind::Waypoint, true},
        SynthScenarioParam{206, PropertyKind::Reachability, false},
        SynthScenarioParam{207, PropertyKind::ServiceChain, false},
        SynthScenarioParam{208, PropertyKind::ServiceChain, true}));

/// Completeness property test (Theorem 2): on small instances, the
/// synthesizer finds a sequence exactly when brute-force enumeration over
/// all update permutations finds one.
TEST(OrderUpdateTest, CompletenessAgainstBruteForce) {
  Rng R(303);
  unsigned Feasible = 0, Infeasible = 0;
  for (int Round = 0; Round != 12; ++Round) {
    RandomNet Net = randomNet(R, 5);
    Config Ci = randomConfig(Net, R, 0.3);
    Config Cf = randomConfig(Net, R, 0.3);
    FormulaFactory FF;
    Formula Phi = randomFormula(FF, R, 2, Net.Topo.numSwitches(),
                                Net.Topo.numPorts());

    // Brute force: all permutations of the diff switches, checking every
    // prefix configuration with the naive checker.
    std::vector<SwitchId> Diff = diffSwitches(Ci, Cf);
    if (Diff.size() > 5)
      continue;
    auto ConfigOk = [&](const Config &C) {
      KripkeStructure K(Net.Topo, C, Net.Classes);
      NaiveTraceChecker Checker;
      return Checker.bind(K, Phi).Holds;
    };
    bool Expected = false;
    if (ConfigOk(Ci)) {
      std::vector<SwitchId> Perm = Diff;
      std::sort(Perm.begin(), Perm.end());
      do {
        Config Cur = Ci;
        bool AllOk = true;
        for (SwitchId Sw : Perm) {
          Cur.setTable(Sw, Cf.table(Sw));
          if (!ConfigOk(Cur)) {
            AllOk = false;
            break;
          }
        }
        if (AllOk) {
          Expected = true;
          break;
        }
      } while (std::next_permutation(Perm.begin(), Perm.end()));
    }

    LabelingChecker Checker;
    SynthResult Res = synthesizeUpdate(Net.Topo, Ci, Cf, Net.Classes, Phi,
                                       Checker);
    if (Expected) {
      EXPECT_EQ(Res.Status, SynthStatus::Success) << printFormula(Phi);
      ++Feasible;
    } else {
      EXPECT_TRUE(Res.Status == SynthStatus::Impossible ||
                  Res.Status == SynthStatus::InitialViolation)
          << printFormula(Phi);
      ++Infeasible;
    }
  }
  // The random mix must exercise both outcomes to be meaningful.
  EXPECT_GT(Feasible + Infeasible, 6u);
}

/// Fig. 8(h)/(i): the crossed double diamond has no switch-granularity
/// order but a rule-granularity one.
TEST(OrderUpdateTest, DoubleDiamondImpossibleThenRuleGranular) {
  Rng R(404);
  Topology Base = buildSmallWorld(16, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  ASSERT_TRUE(S.has_value());

  FormulaFactory FF;
  {
    LabelingChecker Checker;
    SynthResult Res = synthesizeUpdate(*S, FF, Checker);
    EXPECT_EQ(Res.Status, SynthStatus::Impossible);
  }
  {
    LabelingChecker Checker;
    SynthOptions Opts;
    Opts.RuleGranularity = true;
    SynthResult Res = synthesizeUpdate(*S, FF, Checker, Opts);
    ASSERT_EQ(Res.Status, SynthStatus::Success);
    Formula Phi = S->buildProperty(FF);
    EXPECT_TRUE(allIntermediateConfigsHold(S->Topo, S->Initial,
                                           S->classes(), Phi,
                                           Res.Commands));
  }
}

/// Early termination and plain exhaustion agree on impossibility.
TEST(OrderUpdateTest, EarlyTerminationAgreesWithExhaustiveSearch) {
  Rng R(505);
  Topology Base = buildSmallWorld(14, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  ASSERT_TRUE(S.has_value());

  FormulaFactory FF;
  SynthOptions NoEt;
  NoEt.EarlyTermination = false;
  LabelingChecker C1, C2;
  SynthResult A = synthesizeUpdate(*S, FF, C1, NoEt);
  SynthResult B = synthesizeUpdate(*S, FF, C2);
  EXPECT_EQ(A.Status, SynthStatus::Impossible);
  EXPECT_EQ(B.Status, SynthStatus::Impossible);
}

TEST(OrderUpdateTest, PruningDoesNotChangeOutcome) {
  Rng R(606);
  for (int Round = 0; Round != 4; ++Round) {
    Topology Base = buildSmallWorld(16, 4, 0.2, R);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, R, PropertyKind::Reachability);
    ASSERT_TRUE(S.has_value());
    FormulaFactory FF;
    SynthOptions NoPrune;
    NoPrune.CexPruning = false;
    NoPrune.EarlyTermination = false;
    LabelingChecker C1, C2;
    SynthResult A = synthesizeUpdate(*S, FF, C1, NoPrune);
    SynthResult B = synthesizeUpdate(*S, FF, C2);
    EXPECT_EQ(A.Status, B.Status);
    EXPECT_EQ(A.Status, SynthStatus::Success);
    // Pruning can only reduce model-checking work.
    EXPECT_LE(B.Stats.CheckCalls, A.Stats.CheckCalls);
  }
}

TEST(WaitRemovalTest, RemovesMostWaitsAndKeepsCorrectness) {
  Rng R(707);
  Topology Base = buildSmallWorld(24, 4, 0.2, R);
  std::optional<Scenario> S =
      makeDiamondScenario(Base, R, PropertyKind::Reachability);
  ASSERT_TRUE(S.has_value());

  FormulaFactory FF;
  LabelingChecker Checker;
  SynthOptions Opts;
  Opts.WaitRemoval = true;
  SynthResult Res = synthesizeUpdate(*S, FF, Checker, Opts);
  ASSERT_EQ(Res.Status, SynthStatus::Success);
  EXPECT_LE(Res.Stats.WaitsAfterRemoval, Res.Stats.WaitsBeforeRemoval);
  // Diamond updates leave at most a couple of genuine waits (§6 reports
  // about 2 per instance).
  EXPECT_LE(Res.Stats.WaitsAfterRemoval, 3u);
}

TEST(WaitRemovalTest, KeepsWaitWhenInFlightPacketsMatter) {
  // Chain s0 -> s1: updating s0 then s1 (both on the packet's path, s1
  // downstream of s0) requires a wait between them.
  Fig1Network N = buildFig1();
  CommandSeq Seq;
  Seq.push_back(Command::update(N.T[0], N.Blue.table(N.T[0])));
  Seq.push_back(Command::wait());
  Seq.push_back(Command::update(N.C1, N.Blue.table(N.C1)));
  CommandSeq Out = removeWaits(N.Topo, N.Red, {N.FlowH1H3}, Seq);
  // T1 feeds C1 through A1/A2, so the wait must survive.
  EXPECT_EQ(countWaits(Out), 1u);
}

TEST(BaselinesTest, NaiveSequenceCoversDiff) {
  Fig1Network N = buildFig1();
  CommandSeq Seq = naiveSequence(N.Red, N.Green);
  EXPECT_EQ(Seq.size(), 2u);
  Config End = N.Red;
  applyCommands(End, Seq);
  EXPECT_EQ(End, N.Green);
  EXPECT_EQ(countWaits(Seq), 0u);
}

TEST(BaselinesTest, TwoPhaseRuleOverheadDoubles) {
  Fig1Network N = buildFig1();
  TwoPhasePlan Plan = makeTwoPhasePlan(N.Topo, N.Red, N.Green);
  std::vector<size_t> Ordering = orderingRuleHighWater(N.Red, N.Green);

  // On switches with both old and new rules, two-phase holds at least
  // double the ordering update's rules.
  size_t SwA1 = N.A[0];
  EXPECT_GE(Plan.MaxRulesPerSwitch[SwA1], 2 * Ordering[SwA1]);

  // The full sequence ends in the clean final configuration.
  Config End = N.Red;
  applyCommands(End, Plan.fullSequence());
  EXPECT_EQ(End, N.Green);
  EXPECT_EQ(countWaits(Plan.fullSequence()), 3u);
}

TEST(EarlyTerminationTest, DetectsDirectContradiction) {
  EarlyTermination ET;
  ET.addCexConstraint({0}, {1}); // 1 before 0.
  EXPECT_FALSE(ET.impossible());
  ET.addCexConstraint({1}, {0}); // 0 before 1.
  EXPECT_TRUE(ET.impossible());
}

TEST(EarlyTerminationTest, TransitiveContradiction) {
  EarlyTermination ET;
  ET.addCexConstraint({0}, {1}); // 1 < 0.
  ET.addCexConstraint({1}, {2}); // 2 < 1.
  ET.addCexConstraint({2}, {0}); // 0 < 2.
  EXPECT_TRUE(ET.impossible());
}

TEST(EarlyTerminationTest, DisjunctionKeepsOptionsOpen) {
  EarlyTermination ET;
  ET.addCexConstraint({0}, {1, 2}); // 1 < 0 or 2 < 0.
  ET.addCexConstraint({1}, {0});    // 0 < 1.
  EXPECT_FALSE(ET.impossible());    // 2 < 0 < 1 works.
  ET.addCexConstraint({2}, {0});    // 0 < 2: now circular.
  EXPECT_TRUE(ET.impossible());
}

TEST(EarlyTerminationTest, EmptyNotUpdatedMeansImpossible) {
  EarlyTermination ET;
  ET.addCexConstraint({3, 4}, {});
  EXPECT_TRUE(ET.impossible());
}

// --- SynthStats::mergeFrom coverage guard -----------------------------------

// PRs keep growing SynthStats by hand, and a field added without a
// mergeFrom line silently vanishes from every engine batch aggregate.
// Two tripwires: the size pin below fails to compile the moment a field
// is added (forcing whoever adds it to visit this test and mergeFrom),
// and the doubling check verifies each existing field actually merges.
#if defined(__x86_64__) || defined(__aarch64__)
static_assert(sizeof(SynthStats) == 224,
              "SynthStats changed size: add the new field to mergeFrom() "
              "and to MergeFromCoversEveryField, then update this pin");
#endif

TEST(SynthStatsTest, MergeFromCoversEveryField) {
  SynthStats A;
  A.CheckCalls = 1;
  A.VisitedPrunes = 2;
  A.CexPrunes = 3;
  A.SatClauses = 4;
  A.CacheHits = 5;
  A.CacheMisses = 6;
  A.BackendQueries = 7;
  A.EarlyTerminated = true;
  A.BudgetSpent = 8;
  A.BudgetRemaining = 9;
  A.ExhaustedUnits = 10;
  A.ImportedConstraints = 11;
  A.ExportedConstraints = 12;
  A.SeededPrunes = 13;
  A.StolenTasks = 22;
  A.ClausesMinimized = 23;
  A.LiteralsDropped = 24;
  A.Restarts = 25;
  A.SubsumedDropped = 26;
  A.ShedMembers = 27;
  A.HitBudget = true;
  A.Interrupted = true;
  A.WaitsBeforeRemoval = 14;
  A.WaitsAfterRemoval = 15;
  A.SynthSeconds = 16.0;
  A.WaitRemovalSeconds = 17.0;
  A.CheckSeconds = 18.0;
  A.MutateSeconds = 19.0;
  A.PruneSeconds = 20.0;
  A.SatSeconds = 21.0;

  SynthStats B;
  B.mergeFrom(A);
  B.mergeFrom(A);

  // Counters sum, flags OR, seconds add: everything must be exactly
  // double the source (so a forgotten merge line reads as 0 != 2x).
  EXPECT_EQ(B.CheckCalls, 2 * A.CheckCalls);
  EXPECT_EQ(B.VisitedPrunes, 2 * A.VisitedPrunes);
  EXPECT_EQ(B.CexPrunes, 2 * A.CexPrunes);
  EXPECT_EQ(B.SatClauses, 2 * A.SatClauses);
  EXPECT_EQ(B.CacheHits, 2 * A.CacheHits);
  EXPECT_EQ(B.CacheMisses, 2 * A.CacheMisses);
  EXPECT_EQ(B.BackendQueries, 2 * A.BackendQueries);
  EXPECT_TRUE(B.EarlyTerminated);
  EXPECT_EQ(B.BudgetSpent, 2 * A.BudgetSpent);
  EXPECT_EQ(B.BudgetRemaining, 2 * A.BudgetRemaining);
  EXPECT_EQ(B.ExhaustedUnits, 2 * A.ExhaustedUnits);
  EXPECT_EQ(B.ImportedConstraints, 2 * A.ImportedConstraints);
  EXPECT_EQ(B.ExportedConstraints, 2 * A.ExportedConstraints);
  EXPECT_EQ(B.SeededPrunes, 2 * A.SeededPrunes);
  EXPECT_EQ(B.StolenTasks, 2 * A.StolenTasks);
  EXPECT_EQ(B.ClausesMinimized, 2 * A.ClausesMinimized);
  EXPECT_EQ(B.LiteralsDropped, 2 * A.LiteralsDropped);
  EXPECT_EQ(B.Restarts, 2 * A.Restarts);
  EXPECT_EQ(B.SubsumedDropped, 2 * A.SubsumedDropped);
  EXPECT_EQ(B.ShedMembers, 2 * A.ShedMembers);
  EXPECT_TRUE(B.HitBudget);
  EXPECT_TRUE(B.Interrupted);
  EXPECT_EQ(B.WaitsBeforeRemoval, 2 * A.WaitsBeforeRemoval);
  EXPECT_EQ(B.WaitsAfterRemoval, 2 * A.WaitsAfterRemoval);
  EXPECT_DOUBLE_EQ(B.SynthSeconds, 2 * A.SynthSeconds);
  EXPECT_DOUBLE_EQ(B.WaitRemovalSeconds, 2 * A.WaitRemovalSeconds);
  EXPECT_DOUBLE_EQ(B.CheckSeconds, 2 * A.CheckSeconds);
  EXPECT_DOUBLE_EQ(B.MutateSeconds, 2 * A.MutateSeconds);
  EXPECT_DOUBLE_EQ(B.PruneSeconds, 2 * A.PruneSeconds);
  EXPECT_DOUBLE_EQ(B.SatSeconds, 2 * A.SatSeconds);
}
