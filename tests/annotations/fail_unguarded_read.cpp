// Negative-compile snippet (cmake/AnnotationChecks.cmake): reading a
// GUARDED_BY field without holding its mutex. Must FAIL under
// clang -Wthread-safety -Werror, and COMPILE cleanly on non-Clang
// (where the annotations are no-ops).
#include "support/ThreadAnnotations.h"

using namespace netupd;

struct Stats {
  Mutex M;
  int Count NETUPD_GUARDED_BY(M) = 0;
};

int readBare(Stats &S) {
  return S.Count; // -Wthread-safety: reading Count requires holding S.M.
}

int main() {
  Stats S;
  return readBare(S);
}
