// Positive snippet (cmake/AnnotationChecks.cmake): the repo's locking
// idioms in miniature — scoped locks, adopt-lock transfer, REQUIRES
// helpers, shared readers, CondVar waits. Must COMPILE under every
// compiler, including clang -Wthread-safety -Werror: if this breaks,
// the wrappers' annotations are wrong, not the user code.
#include "support/ThreadAnnotations.h"

#include <mutex>

using namespace netupd;

struct Store {
  Mutex M;
  CondVar CV;
  int Count NETUPD_GUARDED_BY(M) = 0;
  bool Ready NETUPD_GUARDED_BY(M) = false;

  SharedMutex SM;
  int Shared NETUPD_GUARDED_BY(SM) = 0;

  void bumpLocked() NETUPD_REQUIRES(M) { ++Count; }

  void bump() {
    MutexLock Lock(M);
    bumpLocked();
  }

  void adoptPattern() {
    M.lock(); // Stands in for obs::timedLock's ACQUIRE interface.
    MutexLock Lock(M, std::adopt_lock);
    ++Count;
  }

  void waitReady() {
    MutexLock Lock(M);
    while (!Ready)
      CV.wait(M); // Capability held across the wait.
    ++Count;
  }

  void publish() {
    {
      MutexLock Lock(M);
      Ready = true;
    }
    CV.notify_all();
  }

  int readShared() {
    SharedReaderLock Lock(SM);
    return Shared;
  }

  void writeShared(int V) {
    SharedMutexLock Lock(SM);
    Shared = V;
  }
};

int main() {
  Store S;
  S.bump();
  S.adoptPattern();
  S.publish();
  S.waitReady();
  S.writeShared(3);
  return S.readShared();
}
