// Negative-compile snippet (cmake/AnnotationChecks.cmake): calling a
// REQUIRES method without the capability held. Must FAIL under
// clang -Wthread-safety -Werror, COMPILE on non-Clang.
#include "support/ThreadAnnotations.h"

using namespace netupd;

struct Table {
  Mutex M;
  int Size NETUPD_GUARDED_BY(M) = 0;

  void growLocked() NETUPD_REQUIRES(M) { ++Size; }

  void grow() {
    growLocked(); // -Wthread-safety: requires M, which is not held.
  }
};

int main() {
  Table T;
  T.grow();
  return 0;
}
