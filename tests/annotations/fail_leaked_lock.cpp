// Negative-compile snippet (cmake/AnnotationChecks.cmake): acquiring a
// capability and returning without releasing it. Must FAIL under
// clang -Wthread-safety -Werror, COMPILE on non-Clang.
#include "support/ThreadAnnotations.h"

using namespace netupd;

struct Registry {
  Mutex M;
  int Entries NETUPD_GUARDED_BY(M) = 0;

  int takeAndForget() {
    M.lock();
    return ++Entries; // -Wthread-safety: M still held at function exit.
  }
};

int main() {
  Registry R;
  return R.takeAndForget();
}
