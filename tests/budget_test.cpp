//===- tests/budget_test.cpp - deterministic-budget tests ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the deterministic budget subsystem (support/Budget.h and the
/// search's deterministic budget mode): ledger carving, inclusive
/// exactly-N boundary semantics, the determinism matrix (byte-identical
/// verdicts and sequences across shard and worker counts, budget-Aborted
/// cases included), the soft wall-clock hint, the update-independent
/// counterexample guard, the Found-vs-budget abort classification, and
/// the engine's abort-caching contract across all of its Aborted-writing
/// paths: pure quota-exhaustion aborts are deterministic and ARE cached,
/// while every timing-shaped abort (wall expiry, cancellation, shutdown)
/// stays out of the cache.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "mc/BackendFactory.h"
#include "support/Budget.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// A feasible diamond scenario with at least \p MinUpdates updating
/// switches. Deterministic: scans seeds from \p FirstSeed upward.
Scenario diamondWithUpdates(uint64_t FirstSeed, unsigned MinUpdates) {
  for (uint64_t Seed = FirstSeed; Seed != FirstSeed + 64; ++Seed) {
    Rng R(Seed);
    Topology Base = buildSmallWorld(24, 4, 0.2, R);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, R, PropertyKind::Reachability);
    if (S && numUpdatingSwitches(*S) >= MinUpdates)
      return std::move(*S);
  }
  ADD_FAILURE() << "no diamond with >= " << MinUpdates
                << " updating switches from seed " << FirstSeed;
  return Scenario{};
}

/// The Fig. 8(h) instance: switch-granularity infeasible, rule feasible.
Scenario doubleDiamond(uint64_t Seed) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no double diamond";
  return std::move(*S);
}

} // namespace

// --- BudgetLedger -----------------------------------------------------------

TEST(BudgetLedgerTest, CarveGivesEarlierUnitsTheRemainder) {
  BudgetLedger L = BudgetLedger::carveTotal(10, 4);
  ASSERT_TRUE(L.limited());
  EXPECT_EQ(L.unitQuota(0), 3u);
  EXPECT_EQ(L.unitQuota(1), 3u);
  EXPECT_EQ(L.unitQuota(2), 2u);
  EXPECT_EQ(L.unitQuota(3), 2u);
  EXPECT_EQ(L.totalQuota(), 10u);
}

TEST(BudgetLedgerTest, CarveFloorsEveryUnitAtOneCall) {
  // More units than budget: every unit still gets one call (progress),
  // so the hard total is max(Total, Units), not Total.
  BudgetLedger L = BudgetLedger::carveTotal(2, 5);
  for (size_t U = 0; U != 5; ++U)
    EXPECT_EQ(L.unitQuota(U), 1u) << "unit " << U;
  EXPECT_EQ(L.totalQuota(), 5u);
}

TEST(BudgetLedgerTest, PerUnitGivesEveryUnitTheFullQuota) {
  BudgetLedger L = BudgetLedger::perUnit(7, 3);
  for (size_t U = 0; U != 3; ++U)
    EXPECT_EQ(L.unitQuota(U), 7u);
  EXPECT_EQ(L.totalQuota(), 21u);
}

TEST(BudgetLedgerTest, AccountsAreInclusiveAtTheBoundary) {
  BudgetAccount A = BudgetLedger::perUnit(2, 1).openAccount(0);
  ASSERT_TRUE(A.limited());
  EXPECT_TRUE(A.canSpend()); // 0 spent of 2.
  A.charge();
  EXPECT_TRUE(A.canSpend()); // The 2nd (== quota-th) call is spendable.
  A.charge();
  EXPECT_FALSE(A.canSpend()); // The 3rd is not.
  EXPECT_TRUE(A.exhausted());
  EXPECT_EQ(A.spent(), 2u);

  BudgetAccount Unlimited = BudgetLedger().openAccount(0);
  EXPECT_FALSE(Unlimited.limited());
  Unlimited.charge();
  EXPECT_TRUE(Unlimited.canSpend());
  EXPECT_FALSE(Unlimited.exhausted());
}

// --- Exactly-N boundary semantics (regression for the >= off-by-one) --------

namespace {

/// Accepts every configuration; the search under it dives straight to a
/// full sequence, so a successful unit charges exactly numOps rechecks.
class AcceptAll : public CheckerBackend {
public:
  const char *name() const override { return "AcceptAll"; }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return false; }

protected:
  CheckResult bindImpl(KripkeStructure &, Formula) override {
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }
  CheckResult recheckImpl(const UpdateInfo &) override {
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }
};

} // namespace

// A job needing exactly its budget must Succeed: with an accept-all
// checker the first unit completes after exactly numOps charged rechecks,
// so a per-unit quota of exactly numOps is sufficient — the budget's
// final call is spendable (the historical >= check refused it). One call
// less must Abort, deterministically, with every unit truncated.
TEST(BudgetBoundaryTest, ExactBudgetSucceedsOneLessAborts) {
  Scenario S = diamondWithUpdates(1000, 4);
  unsigned NumOps = numUpdatingSwitches(S);
  ASSERT_GE(NumOps, 2u);

  {
    AcceptAll Checker;
    FormulaFactory FF;
    SynthOptions Opts;
    Opts.UnitCheckCalls = NumOps; // Exactly what the dive needs.
    SynthResult Res = synthesizeUpdate(S, FF, Checker, Opts);
    EXPECT_EQ(Res.Status, SynthStatus::Success)
        << "a budget of exactly N must permit N calls";
    EXPECT_EQ(Res.Stats.BudgetSpent, NumOps);
    EXPECT_EQ(Res.Stats.ExhaustedUnits, 0u)
        << "spending the full quota on a completed unit is not truncation";
    EXPECT_FALSE(Res.Stats.HitBudget);
  }
  {
    AcceptAll Checker;
    FormulaFactory FF;
    SynthOptions Opts;
    Opts.UnitCheckCalls = NumOps - 1;
    SynthResult Res = synthesizeUpdate(S, FF, Checker, Opts);
    EXPECT_EQ(Res.Status, SynthStatus::Aborted);
    EXPECT_TRUE(Res.Stats.HitBudget);
    EXPECT_EQ(Res.Stats.ExhaustedUnits, NumOps)
        << "every unit runs dry one call short of its sequence";
    EXPECT_TRUE(Res.Commands.empty());
  }
  {
    // Same boundary through the carved-total knob: an even split of
    // NumOps^2 over NumOps units gives the first unit exactly NumOps.
    AcceptAll Checker;
    FormulaFactory FF;
    SynthOptions Opts;
    Opts.MaxCheckCalls = static_cast<uint64_t>(NumOps) * NumOps;
    SynthResult Res = synthesizeUpdate(S, FF, Checker, Opts);
    EXPECT_EQ(Res.Status, SynthStatus::Success);
    EXPECT_EQ(Res.Stats.BudgetSpent, NumOps)
        << "only the winning unit should have spent its quota";
  }
}

// --- Determinism matrix -----------------------------------------------------

namespace {

/// One job's observable outcome for the matrix comparison: the verdict
/// plus the rendered command sequence (byte-identical requirement).
struct JobFingerprint {
  SynthStatus Status;
  std::string Commands;

  bool operator==(const JobFingerprint &O) const {
    return Status == O.Status && Commands == O.Commands;
  }
};

std::vector<SynthJob> matrixRegistry() {
  std::vector<SynthJob> Jobs;
  auto Add = [&](std::string Name, Scenario S, const char *Backend,
                 SynthOptions O) {
    SynthJob Job;
    Job.Name = std::move(Name);
    Job.S = std::move(S);
    PortfolioMember M;
    M.Backend = Backend;
    M.Opts = O;
    Job.Portfolio.push_back(std::move(M));
    Jobs.push_back(std::move(Job));
  };

  Scenario Diamond = diamondWithUpdates(2000, 4);
  Scenario DDiamond = doubleDiamond(9);

  SynthOptions Generous;
  Generous.MaxCheckCalls = 200000; // Finite: deterministic mode, completes.
  Add("diamond-generous", Diamond, "incremental", Generous);

  SynthOptions Tight;
  Tight.UnitCheckCalls = 2; // Truncates every unit: a budget Abort.
  Add("diamond-tight", Diamond, "incremental", Tight);

  SynthOptions TightTotal;
  TightTotal.MaxCheckCalls = 40;
  TightTotal.EarlyTermination = false;
  Add("ddiamond-tight", DDiamond, "incremental", TightTotal);

  SynthOptions DDGenerous;
  DDGenerous.MaxCheckCalls = 500000; // Enough to complete every unit.
  Add("ddiamond-generous", DDiamond, "incremental", DDGenerous);

  SynthOptions Memo = Generous;
  Add("diamond-memo", Diamond, "memo:incremental", Memo);
  return Jobs;
}

} // namespace

// The acceptance matrix: one job registry run at shards x workers under
// finite budgets must yield byte-identical verdicts and command
// sequences in every cell — budget-Aborted verdicts included. This is
// the property the ledger exists for; a wall clock or a shared call
// counter fails it on the first noisy machine.
TEST(BudgetDeterminismTest, MatrixOfShardAndWorkerCounts) {
  std::vector<SynthJob> Jobs = matrixRegistry();

  std::vector<JobFingerprint> Reference;
  bool SawAborted = false;
  for (unsigned Shards : {1u, 2u, 4u}) {
    for (unsigned Workers : {1u, 4u}) {
      EngineOptions EO;
      EO.NumWorkers = Workers;
      EO.IntraJobShards = Shards;
      EO.CacheResults = false; // Compare real runs, not cached replays.
      SynthEngine Engine(EO);
      BatchReport Rep = Engine.run(Jobs);

      std::vector<JobFingerprint> Run;
      for (size_t I = 0; I != Rep.Reports.size(); ++I) {
        const SynthReport &R = Rep.Reports[I];
        EXPECT_TRUE(R.Members[0].Error.empty()) << R.Members[0].Error;
        SawAborted |= R.Result.Status == SynthStatus::Aborted;
        Run.push_back({R.Result.Status,
                       commandSeqToString(Jobs[I].S.Topo,
                                          R.Result.Commands)});
      }
      if (Reference.empty()) {
        Reference = std::move(Run);
      } else {
        for (size_t I = 0; I != Run.size(); ++I) {
          EXPECT_EQ(Run[I].Status, Reference[I].Status)
              << Jobs[I].Name << " verdict changed at shards=" << Shards
              << " workers=" << Workers;
          EXPECT_EQ(Run[I].Commands, Reference[I].Commands)
              << Jobs[I].Name << " sequence changed at shards=" << Shards
              << " workers=" << Workers;
        }
      }
    }
  }
  EXPECT_TRUE(SawAborted)
      << "the registry must include a budget-Aborted case or the matrix "
         "proves nothing about abort determinism";
  EXPECT_EQ(Reference[0].Status, SynthStatus::Success);
  EXPECT_EQ(Reference[3].Status, SynthStatus::Impossible)
      << "a generous budget must still complete the impossibility proof";
}

// --- Soft wall hint ---------------------------------------------------------

// TimeoutSeconds is a soft hint checked between work units: an expired
// clock aborts the run (classified as a budget condition), and a timeout
// that never fires changes nothing.
TEST(BudgetSoftWallTest, ExpiredTimeoutAbortsBetweenUnits) {
  Scenario S = diamondWithUpdates(3000, 3);
  FormulaFactory FF;
  SynthOptions Opts;
  Opts.TimeoutSeconds = 1e-9; // Expired by the first between-unit check.
  std::unique_ptr<CheckerBackend> Checker =
      BackendFactory::instance().create("incremental", S);
  SynthResult Res = synthesizeUpdate(S, FF, *Checker, Opts);
  EXPECT_EQ(Res.Status, SynthStatus::Aborted);
  EXPECT_TRUE(Res.Stats.HitBudget);
  EXPECT_TRUE(Res.Commands.empty());

  SynthOptions Ample;
  Ample.TimeoutSeconds = 3600.0;
  std::unique_ptr<CheckerBackend> Checker2 =
      BackendFactory::instance().create("incremental", S);
  SynthResult Res2 = synthesizeUpdate(S, FF, *Checker2, Ample);
  EXPECT_EQ(Res2.Status, SynthStatus::Success);
  EXPECT_FALSE(Res2.Stats.HitBudget);
}

// --- Update-independent counterexample guard --------------------------------

namespace {

/// Fails the first recheck with a fabricated counterexample that is
/// independent of the applied update: its trace crosses a *different*
/// updating switch. A correct backend cannot produce one (the violation
/// would exist in the verified initial configuration too), but the
/// search must degrade to "learn nothing" — not plant an unsound
/// wrong-set entry matching every configuration that has not touched
/// that switch.
class BogusCexChecker : public CheckerBackend {
public:
  explicit BogusCexChecker(std::vector<SwitchId> DiffSwitches)
      : DiffSwitches(std::move(DiffSwitches)) {}

  const char *name() const override { return "BogusCex"; }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return true; }

protected:
  CheckResult bindImpl(KripkeStructure &Structure, Formula) override {
    ++Queries;
    K = &Structure;
    CheckResult R;
    R.Holds = true;
    return R;
  }
  CheckResult recheckImpl(const UpdateInfo &Update) override {
    ++Queries;
    CheckResult R;
    if (Fired) {
      R.Holds = true;
      return R;
    }
    Fired = true;
    R.Holds = false;
    // Every state of some updating switch other than the one just
    // updated: Mask covers that switch's ops, none of which is applied,
    // so the derived (mask, value) pair has an all-zero value.
    SwitchId Other = DiffSwitches.front() != Update.Sw
                         ? DiffSwitches.front()
                         : DiffSwitches.back();
    for (StateId St = 0; St != K->numStates(); ++St)
      if (K->stateSwitch(St) == Other)
        R.Cex.push_back(St);
    EXPECT_FALSE(R.Cex.empty());
    return R;
  }

private:
  std::vector<SwitchId> DiffSwitches;
  KripkeStructure *K = nullptr;
  bool Fired = false;
};

} // namespace

// Regression (release builds): the wrong-set entry used to be planted
// before the update-independence guard, so a single bogus counterexample
// silently poisoned pruning for the rest of the search.
TEST(CexGuardTest, UpdateIndependentCexLearnsNothing) {
  Scenario S = diamondWithUpdates(4000, 3);
  std::vector<SwitchId> Diff = diffSwitches(S.Initial, S.Final);
  ASSERT_GE(Diff.size(), 2u);

  BogusCexChecker Checker(Diff);
  FormulaFactory FF;
  SynthResult Res = synthesizeUpdate(S, FF, Checker, SynthOptions{});
  EXPECT_EQ(Res.Status, SynthStatus::Success)
      << "one bogus counterexample must not derail a feasible search";
  EXPECT_EQ(Res.Stats.CexPrunes, 0u)
      << "an update-independent counterexample planted a wrong-set entry";
  EXPECT_EQ(Res.Stats.SatClauses, 0u)
      << "an update-independent counterexample reached the SAT layer";
}

// --- Found vs budget-abort classification -----------------------------------

namespace {

/// Accepts everything, parking each call behind a gate; used to hold
/// sibling shards back until the race is decided.
class GatedAcceptAll : public CheckerBackend {
public:
  GatedAcceptAll(std::shared_ptr<std::atomic<bool>> Gate,
                 std::shared_ptr<std::atomic<unsigned>> Count)
      : Gate(std::move(Gate)), Count(std::move(Count)) {}

  const char *name() const override { return "GatedAcceptAll"; }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return false; }

protected:
  CheckResult bindImpl(KripkeStructure &, Formula) override {
    return serve();
  }
  CheckResult recheckImpl(const UpdateInfo &) override { return serve(); }

private:
  CheckResult serve() {
    if (Gate)
      while (!Gate->load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Queries;
    Count->fetch_add(1);
    CheckResult R;
    R.Holds = true;
    return R;
  }

  std::shared_ptr<std::atomic<bool>> Gate; // Null: never blocks.
  std::shared_ptr<std::atomic<unsigned>> Count;
};

} // namespace

// A sibling shard stopped by the winner's Found token observes a stop
// with work units left — which is exactly what a budget abort looks like
// from inside the shard. It must be classified as a race loss: a Found
// run never reports a budget abort (the stray flag used to leak into
// stats and, without a winner, into the verdict).
TEST(AbortClassificationTest, FoundRunNeverReportsBudgetAbort) {
  Scenario S = diamondWithUpdates(5000, 4);
  unsigned NumOps = numUpdatingSwitches(S);

  auto Gate = std::make_shared<std::atomic<bool>>(false);
  auto PrimaryCount = std::make_shared<std::atomic<unsigned>>(0);
  auto SiblingCount = std::make_shared<std::atomic<unsigned>>(0);

  GatedAcceptAll Primary(nullptr, PrimaryCount);
  SynthOptions Opts;
  Opts.Shards = 2;
  Opts.ShardCheckerFactory = [&]() -> std::unique_ptr<CheckerBackend> {
    return std::make_unique<GatedAcceptAll>(Gate, SiblingCount);
  };

  SynthResult Res;
  std::thread Runner([&] {
    FormulaFactory FF;
    Res = synthesizeUpdate(S, FF, Primary, Opts);
  });
  // The ungated primary dives to a win in bind + NumOps calls; give the
  // Found token time to become visible, then release the parked sibling.
  for (unsigned I = 0; I != 10000 && PrimaryCount->load() < NumOps + 1; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  bool PrimaryFinished = PrimaryCount->load() == NumOps + 1;
  if (PrimaryFinished)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Gate->store(true);
  Runner.join();
  ASSERT_TRUE(PrimaryFinished) << "primary did not finish in time";

  ASSERT_EQ(Res.Status, SynthStatus::Success);
  EXPECT_FALSE(Res.Stats.HitBudget)
      << "a race loss was misclassified as a budget abort";
  EXPECT_EQ(Res.Stats.ExhaustedUnits, 0u);
}

namespace {

/// Binds cleanly, then parks the (single) recheck behind a gate and
/// rejects it — lets the test complete an exhaustive search while an
/// external stop fires mid-flight.
class GatedReject : public CheckerBackend {
public:
  GatedReject(std::shared_ptr<std::atomic<bool>> Gate,
              std::shared_ptr<std::atomic<bool>> Parked)
      : Gate(std::move(Gate)), Parked(std::move(Parked)) {}

  const char *name() const override { return "GatedReject"; }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return false; }

protected:
  CheckResult bindImpl(KripkeStructure &, Formula) override {
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }
  CheckResult recheckImpl(const UpdateInfo &) override {
    Parked->store(true);
    while (!Gate->load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Queries;
    CheckResult R;
    R.Holds = false;
    return R;
  }

private:
  std::shared_ptr<std::atomic<bool>> Gate;
  std::shared_ptr<std::atomic<bool>> Parked;
};

} // namespace

// A stop (or wall expiry) observed only after every work unit has been
// claimed and completed must not taint the verdict: the exhaustive
// Impossible proof is already established. (Regression: the unit loop
// used to poll the stop before noticing the cursor was exhausted, so a
// late cancellation discarded a completed proof as Aborted.)
TEST(AbortClassificationTest, LateStopDoesNotDiscardCompletedProof) {
  // Collapse a diamond's diff to a single switch: one op, one work
  // unit, and the (gated, rejecting) checker refutes it in one call —
  // a complete exhaustive search. Scenario semantics don't matter; the
  // checker fabricates the verdicts.
  Scenario S = diamondWithUpdates(8000, 2);
  std::vector<SwitchId> Diff = diffSwitches(S.Initial, S.Final);
  for (size_t I = 1; I != Diff.size(); ++I)
    S.Final.setTable(Diff[I], S.Initial.table(Diff[I]));
  ASSERT_EQ(numUpdatingSwitches(S), 1u);

  auto Gate = std::make_shared<std::atomic<bool>>(false);
  auto Parked = std::make_shared<std::atomic<bool>>(false);
  GatedReject Checker(Gate, Parked);
  StopSource Stop;
  SynthOptions Opts;
  Opts.Stop = Stop.token();

  SynthResult Res;
  std::thread Runner([&] {
    FormulaFactory FF;
    Res = synthesizeUpdate(S, FF, Checker, Opts);
  });
  // Wait until the search is parked inside the final (and only) unit's
  // recheck — past its last pre-recheck stop checkpoint — then cancel
  // and release it: the unit completes, nothing is left to claim, and
  // the proof must stand.
  while (!Parked->load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Stop.requestStop();
  Gate->store(true);
  Runner.join();

  EXPECT_EQ(Res.Status, SynthStatus::Impossible)
      << "a stop observed after exhaustion discarded a completed proof";
  EXPECT_FALSE(Res.Stats.Interrupted);
}

// --- The abort-caching contract, across every Aborted path ------------------

// A pure quota-exhaustion abort is a pure function of (job, budget) —
// the budget is in the digest — so the engine caches and replays it:
// repeated doomed probes in an autotuning loop cost one real run.
TEST(AbortedCacheTest, QuotaExhaustionAbortsAreCachedAndReplayed) {
  SynthJob Job;
  Job.Name = "tight";
  Job.S = diamondWithUpdates(6000, 3);
  Job.Portfolio.emplace_back();
  Job.Portfolio[0].Opts.UnitCheckCalls = 1; // Guaranteed truncation.

  EngineOptions EO;
  EO.NumWorkers = 1;
  SynthEngine Engine(EO); // CacheResults on (the default).

  BatchReport First = Engine.run({Job});
  ASSERT_EQ(First.Reports[0].Result.Status, SynthStatus::Aborted);
  EXPECT_TRUE(First.Reports[0].Result.Stats.HitBudget);
  ASSERT_GT(First.Reports[0].Result.Stats.ExhaustedUnits, 0u);
  EXPECT_FALSE(First.Reports[0].Result.Stats.Interrupted);

  // The digest-identical resubmission replays the deterministic abort
  // — verdict and accounting included — without running anything.
  BatchReport Second = Engine.run({Job});
  EXPECT_EQ(Second.EngineCacheHits, 1u);
  EXPECT_TRUE(Second.Reports[0].FromCache);
  EXPECT_EQ(Second.Reports[0].Result.Status, SynthStatus::Aborted);
  EXPECT_EQ(Second.Reports[0].Result.Stats.ExhaustedUnits,
            First.Reports[0].Result.Stats.ExhaustedUnits);
  EXPECT_EQ(Second.Reports[0].Result.Stats.BudgetSpent,
            First.Reports[0].Result.Stats.BudgetSpent);
  EXPECT_EQ(Second.TotalQueries, 0u);

  // A budget one notch different is a different digest: it must run.
  SynthJob Widened = Job;
  Widened.Portfolio[0].Opts.UnitCheckCalls = 2;
  BatchReport Third = Engine.run({Widened});
  EXPECT_FALSE(Third.Reports[0].FromCache)
      << "a different budget must never replay another budget's abort";
}

// Timing-shaped aborts stay out of the cache: a soft-wall expiry
// reflects the run's clock, not the instance, and is flagged
// Interrupted — a digest-identical resubmission must execute again.
// (TimeoutSeconds is excluded from the digest precisely because its
// results are never cached.)
TEST(AbortedCacheTest, WallExpiryAbortsAreNeverCached) {
  SynthJob Job;
  Job.Name = "walled";
  Job.S = diamondWithUpdates(6100, 3);
  Job.Portfolio.emplace_back();
  Job.Portfolio[0].Opts.TimeoutSeconds = 1e-9; // Expired at first poll.

  EngineOptions EO;
  EO.NumWorkers = 1;
  SynthEngine Engine(EO);

  BatchReport First = Engine.run({Job});
  ASSERT_EQ(First.Reports[0].Result.Status, SynthStatus::Aborted);
  EXPECT_TRUE(First.Reports[0].Result.Stats.Interrupted);

  BatchReport Second = Engine.run({Job});
  EXPECT_EQ(Second.EngineCacheHits, 0u);
  EXPECT_FALSE(Second.Reports[0].FromCache);

  // And the wall expiry must not poison the *budgetless* digest the job
  // shares with a timeout-free twin: that twin runs for real too.
  SynthJob Untimed = Job;
  Untimed.Portfolio[0].Opts.TimeoutSeconds = 0.0;
  BatchReport Clean = Engine.run({Untimed});
  EXPECT_FALSE(Clean.Reports[0].FromCache);
  EXPECT_EQ(Clean.Reports[0].Result.Status, SynthStatus::Success);
}

namespace {

/// Blocks in bind() until released; accepts everything afterwards.
class GateChecker : public CheckerBackend {
public:
  explicit GateChecker(std::shared_ptr<std::atomic<bool>> Open)
      : Open(std::move(Open)) {}

  const char *name() const override { return "Gate"; }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return false; }

protected:
  CheckResult bindImpl(KripkeStructure &, Formula) override {
    while (!Open->load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }
  CheckResult recheckImpl(const UpdateInfo &) override {
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }

private:
  std::shared_ptr<std::atomic<bool>> Open;
};

} // namespace

// Shutdown path: jobs still queued when the engine dies are reported
// Aborted by the destructor — and a later engine sharing the same cache
// must run them for real.
TEST(AbortedCacheTest, ShutdownOrphansAreNeverCached) {
  auto Open = std::make_shared<std::atomic<bool>>(false);
  BackendFactory::instance().registerBackend(
      "budget-gate", [Open](const Scenario &) {
        return std::make_unique<GateChecker>(Open);
      });

  auto SharedCache = std::make_shared<ResultCache>();

  SynthJob Blocker;
  Blocker.Name = "blocker";
  Blocker.S = diamondWithUpdates(7000, 3);
  Blocker.Portfolio.emplace_back();
  Blocker.Portfolio[0].Backend = "budget-gate";

  SynthJob Orphan;
  Orphan.Name = "orphan";
  Orphan.S = diamondWithUpdates(7100, 3);

  JobHandle OrphanHandle;
  {
    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.Cache = SharedCache;
    SynthEngine Engine(EO);
    Engine.submit(Blocker); // Occupies the only worker, parked in bind.
    OrphanHandle = Engine.submit(Orphan);
    EXPECT_FALSE(OrphanHandle.done());
    Open->store(true);
    // Destructor: the blocker finishes, the orphan is reported Aborted
    // without running.
  }
  ASSERT_TRUE(OrphanHandle.done());
  EXPECT_EQ(OrphanHandle.wait().Result.Status, SynthStatus::Aborted);

  EngineOptions EO2;
  EO2.NumWorkers = 1;
  EO2.Cache = SharedCache;
  SynthEngine Fresh(EO2);
  BatchReport Rep = Fresh.run({Orphan});
  EXPECT_FALSE(Rep.Reports[0].FromCache)
      << "a shutdown-aborted job leaked into the shared result cache";
  EXPECT_EQ(Rep.Reports[0].Result.Status, SynthStatus::Success);
}

// The cancel-races-completion window: whether the cancel lands before,
// during, or after the job, the invariant holds — a served cache entry
// is never Aborted, and an Aborted report is never served from cache.
TEST(AbortedCacheTest, CancelRacingCompletionNeverPoisonsTheCache) {
  Scenario S = diamondWithUpdates(7200, 3);
  for (unsigned Round = 0; Round != 6; ++Round) {
    EngineOptions EO;
    EO.NumWorkers = 1;
    SynthEngine Engine(EO);

    SynthJob Job;
    Job.Name = "raced";
    Job.S = S;

    JobHandle H = Engine.submit(Job);
    if (Round % 2)
      std::this_thread::sleep_for(std::chrono::microseconds(50 * Round));
    H.cancel();
    const SynthReport &Rep = H.wait();

    if (Rep.Result.Status == SynthStatus::Aborted) {
      // The retry must execute, not replay the abort.
      BatchReport Retry = Engine.run({Job});
      EXPECT_FALSE(Retry.Reports[0].FromCache) << "round " << Round;
      EXPECT_EQ(Retry.Reports[0].Result.Status, SynthStatus::Success);
    } else {
      // Completion won the race; a cached replay must carry the real
      // verdict.
      EXPECT_EQ(Rep.Result.Status, SynthStatus::Success);
      BatchReport Retry = Engine.run({Job});
      EXPECT_EQ(Retry.Reports[0].Result.Status, SynthStatus::Success);
    }
  }
}
