//===- tests/diff_test.cpp - Differential fuzzing harness tests -*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The differential harness tested against itself: the checked-in corpus
// of minimized repro instances replays clean through the real backend
// matrix, the repro text format round-trips exactly, a deliberately
// lying backend is caught and minimized, and a short in-process fuzz run
// (instances and churn streams) finds no disagreements. The corpus files
// under tests/corpus/ came from earlier fuzz/self-test runs; every new
// minimized disagreement the fuzzer produces is a candidate addition.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "fuzz/Minimize.h"
#include "fuzz/Repro.h"
#include "mc/BackendFactory.h"
#include "mc/LabelingChecker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace netupd {
namespace {

using fuzz::BudgetSpec;
using fuzz::Disagreement;
using fuzz::Repro;

std::string corpusDir() {
  return std::string(NETUPD_SOURCE_DIR) + "/tests/corpus";
}

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Out;
  for (const auto &E : std::filesystem::directory_iterator(corpusDir()))
    if (E.path().extension() == ".repro")
      Out.push_back(E.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// The fast half of the registry plus the shallow symbolic checker —
/// the same split netupd_fuzz uses by default.
const std::vector<std::string> kBackends = {"incremental", "batch", "hsa",
                                            "naive", "symbolic"};
const std::vector<std::string> kShallow = {"symbolic"};

/// Every corpus instance parses and replays through the full matrix with
/// no disagreement — these are exactly the instances that once exposed a
/// (deliberate or hypothetical) bug, so they stay pinned forever.
TEST(DiffCorpusTest, ReplaysClean) {
  std::vector<std::string> Files = corpusFiles();
  ASSERT_GE(Files.size(), 5u) << "corpus went missing from " << corpusDir();
  BudgetSpec Budget; // Shared-total budget of 40 charged calls.
  for (const std::string &Path : Files) {
    std::optional<Repro> R = fuzz::loadReproFile(Path);
    ASSERT_TRUE(R.has_value()) << Path;
    EXPECT_FALSE(R->Title.empty()) << Path;
    std::optional<Disagreement> D =
        fuzz::checkScenario(R->S, kBackends, Budget, nullptr, kShallow);
    EXPECT_FALSE(D.has_value())
        << Path << ": " << (D ? D->str() : std::string());
  }
}

/// The corpus also agrees under a per-unit budget, the contract's other
/// budget mode.
TEST(DiffCorpusTest, ReplaysCleanPerUnitBudget) {
  BudgetSpec Budget;
  Budget.PerUnit = true;
  Budget.Amount = 3;
  for (const std::string &Path : corpusFiles()) {
    std::optional<Repro> R = fuzz::loadReproFile(Path);
    ASSERT_TRUE(R.has_value()) << Path;
    std::optional<Disagreement> D =
        fuzz::checkScenario(R->S, kBackends, Budget, nullptr, kShallow);
    EXPECT_FALSE(D.has_value())
        << Path << ": " << (D ? D->str() : std::string());
  }
}

/// serialize(parse(text)) is a fixpoint: parsing a repro and
/// re-serializing it reproduces the identical scenario (by digest) and
/// identical bytes on the second round trip.
TEST(DiffCorpusTest, ReproFormatRoundTrips) {
  for (const std::string &Path : corpusFiles()) {
    std::optional<Repro> R = fuzz::loadReproFile(Path);
    ASSERT_TRUE(R.has_value()) << Path;
    std::string Text = fuzz::serializeRepro(*R);
    std::optional<Repro> R2 = fuzz::parseRepro(Text);
    ASSERT_TRUE(R2.has_value()) << Path;
    EXPECT_TRUE(digestOf(R->S) == digestOf(R2->S)) << Path;
    EXPECT_EQ(R2->Title, R->Title) << Path;
    EXPECT_EQ(R2->Seed, R->Seed) << Path;
    EXPECT_EQ(Text, fuzz::serializeRepro(*R2)) << Path;
  }
}

/// An unsound checker that approves every recheck; the honest bind keeps
/// InitialViolation verdicts truthful, so the lie only shows up in the
/// search — which is exactly where the differential oracle looks.
class LiarChecker : public CheckerBackend {
public:
  void notifyRollback() override {}
  const char *name() const override { return "diff-liar"; }

protected:
  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override {
    ++Queries;
    return Honest.bind(K, Phi);
  }
  CheckResult recheckImpl(const UpdateInfo &) override {
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }

private:
  LabelingChecker Honest{LabelingChecker::Mode::Batch};
};

void registerLiar() {
  BackendFactory::instance().registerBackend(
      "diff-liar", [](const Scenario &) -> std::unique_ptr<CheckerBackend> {
        return std::make_unique<LiarChecker>();
      });
}

/// The oracle catches the liar on a corpus instance whose verdict is
/// Impossible (the liar turns exhaustion proofs into fake Successes).
TEST(DiffLiarTest, CaughtOnBlackholedCorpus) {
  registerLiar();
  std::optional<Repro> R =
      fuzz::loadReproFile(corpusDir() + "/fattree-blackhole.repro");
  ASSERT_TRUE(R.has_value());
  std::optional<Disagreement> D = fuzz::checkScenario(
      R->S, {"incremental", "diff-liar"}, BudgetSpec{});
  ASSERT_TRUE(D.has_value());
  EXPECT_NE(D->CellB.find("diff-liar"), std::string::npos) << D->str();
}

/// Minimization keeps the disagreement alive while shrinking the
/// instance; on the 20-switch blackholed fat-tree it must get to a
/// handful of switches.
TEST(DiffLiarTest, MinimizerShrinksWhileStillDisagreeing) {
  registerLiar();
  std::optional<Repro> R =
      fuzz::loadReproFile(corpusDir() + "/fattree-blackhole.repro");
  ASSERT_TRUE(R.has_value());
  fuzz::Oracle StillBad = [](const Scenario &Cand) {
    return fuzz::checkScenario(Cand, {"incremental", "diff-liar"},
                               BudgetSpec{})
        .has_value();
  };
  ASSERT_TRUE(StillBad(R->S));
  Scenario Min = fuzz::minimizeScenario(R->S, StillBad);
  EXPECT_TRUE(StillBad(Min));
  EXPECT_LE(Min.Topo.numSwitches(), 10u);
  EXPECT_LT(Min.Topo.numSwitches(), R->S.Topo.numSwitches());
  EXPECT_EQ(Min.Flows.size(), 1u);
}

/// A short in-process fuzz run over the fast backends stays clean. This
/// drives generation, the whole cell matrix (sharded, stolen, and
/// conflict-knob cells included), churn streams, one large sequential
/// instance, and the engine — under TSan in CI it doubles as a race
/// hunt over the entire stack.
TEST(DiffFuzzTest, ShortRunIsClean) {
  fuzz::FuzzOptions O;
  O.Seed = 99;
  O.Iters = 10;
  O.ChurnEvery = 5;
  O.Backends = {"incremental", "batch", "hsa", "naive"};
  std::ostringstream Log;
  fuzz::FuzzReport Rep = fuzz::runFuzz(O, Log);
  EXPECT_TRUE(Rep.clean()) << Log.str();
  EXPECT_EQ(Rep.Instances + Rep.ChurnStreams + Rep.LargeInstances, 10u);
  EXPECT_GT(Rep.CellRuns, 100u);
  EXPECT_EQ(Rep.ChurnStreams, 2u);
  EXPECT_EQ(Rep.LargeInstances, 1u); // Iteration 8: (8 + 16/2) % 16 == 0.
}

/// Instance generation is a pure function of the seed: same seed, same
/// scenario digest; different seeds diverge somewhere in the first few
/// draws.
TEST(DiffFuzzTest, GenerationIsSeedDeterministic) {
  Rng A(1234), B(1234);
  Scenario SA = fuzz::generateInstance(A);
  Scenario SB = fuzz::generateInstance(B);
  EXPECT_TRUE(digestOf(SA) == digestOf(SB));

  bool Differs = false;
  Rng C(1234), D(4321);
  for (int I = 0; I != 4 && !Differs; ++I)
    Differs = !(digestOf(fuzz::generateInstance(C)) ==
                digestOf(fuzz::generateInstance(D)));
  EXPECT_TRUE(Differs);
}

} // namespace
} // namespace netupd
