//===- tests/support_test.cpp - support library tests ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Bitset.h"
#include "support/Random.h"
#include "support/Strings.h"

#include <gtest/gtest.h>

#include <set>

using namespace netupd;

TEST(BitsetTest, SetTestReset) {
  Bitset B(130);
  EXPECT_EQ(B.size(), 130u);
  EXPECT_TRUE(B.none());
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  EXPECT_EQ(B.count(), 3u);
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
  B.clear();
  EXPECT_TRUE(B.none());
}

TEST(BitsetTest, AssignAndAny) {
  Bitset B(10);
  B.assign(3, true);
  EXPECT_TRUE(B.any());
  B.assign(3, false);
  EXPECT_TRUE(B.none());
}

TEST(BitsetTest, BooleanAlgebra) {
  Bitset A(70), B(70);
  A.set(1);
  A.set(65);
  B.set(1);
  B.set(2);
  Bitset Or = A | B;
  EXPECT_TRUE(Or.test(1) && Or.test(2) && Or.test(65));
  Bitset And = A & B;
  EXPECT_TRUE(And.test(1));
  EXPECT_FALSE(And.test(2));
  EXPECT_FALSE(And.test(65));
  Bitset Xor = A ^ B;
  EXPECT_FALSE(Xor.test(1));
  EXPECT_TRUE(Xor.test(2) && Xor.test(65));
}

TEST(BitsetTest, ContainsAndIntersects) {
  Bitset A(100), B(100), C(100);
  A.set(5);
  A.set(70);
  B.set(5);
  C.set(6);
  EXPECT_TRUE(A.contains(B));
  EXPECT_FALSE(B.contains(A));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(A.intersects(C));
}

TEST(BitsetTest, EqualityHashOrder) {
  Bitset A(65), B(65);
  EXPECT_EQ(A, B);
  A.set(64);
  EXPECT_NE(A, B);
  EXPECT_NE(A.hash(), B.hash());
  EXPECT_TRUE(B < A);
  B.set(64);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(BitsetTest, ResizeZeroFills) {
  Bitset A(3);
  A.set(2);
  A.resize(80);
  EXPECT_EQ(A.size(), 80u);
  EXPECT_TRUE(A.test(2));
  for (size_t I = 3; I != 80; ++I)
    EXPECT_FALSE(A.test(I));
}

TEST(BitsetTest, StrRendering) {
  Bitset A(4);
  A.set(1);
  EXPECT_EQ(A.str(), "0100");
}

TEST(RngTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(3);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(RngTest, ForkIndependent) {
  Rng A(9);
  Rng B = A.fork();
  // Forked stream differs from the parent's continued stream.
  EXPECT_NE(A.next(), B.next());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, "-"), "solo");
}

TEST(StringsTest, Split) {
  std::vector<std::string> Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(format("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(format("%u%%", 10u), "10%");
}
