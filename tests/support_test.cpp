//===- tests/support_test.cpp - support library tests ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Bitset.h"
#include "support/ConcurrentSet.h"
#include "support/Random.h"
#include "support/ShardedCache.h"
#include "support/Strings.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace netupd;

TEST(BitsetTest, SetTestReset) {
  Bitset B(130);
  EXPECT_EQ(B.size(), 130u);
  EXPECT_TRUE(B.none());
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  EXPECT_EQ(B.count(), 3u);
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
  B.clear();
  EXPECT_TRUE(B.none());
}

TEST(BitsetTest, AssignAndAny) {
  Bitset B(10);
  B.assign(3, true);
  EXPECT_TRUE(B.any());
  B.assign(3, false);
  EXPECT_TRUE(B.none());
}

TEST(BitsetTest, BooleanAlgebra) {
  Bitset A(70), B(70);
  A.set(1);
  A.set(65);
  B.set(1);
  B.set(2);
  Bitset Or = A | B;
  EXPECT_TRUE(Or.test(1) && Or.test(2) && Or.test(65));
  Bitset And = A & B;
  EXPECT_TRUE(And.test(1));
  EXPECT_FALSE(And.test(2));
  EXPECT_FALSE(And.test(65));
  Bitset Xor = A ^ B;
  EXPECT_FALSE(Xor.test(1));
  EXPECT_TRUE(Xor.test(2) && Xor.test(65));
}

TEST(BitsetTest, ContainsAndIntersects) {
  Bitset A(100), B(100), C(100);
  A.set(5);
  A.set(70);
  B.set(5);
  C.set(6);
  EXPECT_TRUE(A.contains(B));
  EXPECT_FALSE(B.contains(A));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(A.intersects(C));
}

TEST(BitsetTest, EqualityHashOrder) {
  Bitset A(65), B(65);
  EXPECT_EQ(A, B);
  A.set(64);
  EXPECT_NE(A, B);
  EXPECT_NE(A.hash(), B.hash());
  EXPECT_TRUE(B < A);
  B.set(64);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(BitsetTest, ResizeZeroFills) {
  Bitset A(3);
  A.set(2);
  A.resize(80);
  EXPECT_EQ(A.size(), 80u);
  EXPECT_TRUE(A.test(2));
  for (size_t I = 3; I != 80; ++I)
    EXPECT_FALSE(A.test(I));
}

TEST(BitsetTest, StrRendering) {
  Bitset A(4);
  A.set(1);
  EXPECT_EQ(A.str(), "0100");
}

TEST(RngTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(3);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(RngTest, ForkIndependent) {
  Rng A(9);
  Rng B = A.fork();
  // Forked stream differs from the parent's continued stream.
  EXPECT_NE(A.next(), B.next());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, "-"), "solo");
}

TEST(StringsTest, Split) {
  std::vector<std::string> Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(format("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(format("%u%%", 10u), "10%");
}

namespace {

/// Digests whose shard (DigestHash % 16 with Hi = 0 reduces to Lo % 16)
/// is 0, so eviction tests target one shard deterministically.
Digest shard0Key(uint64_t I) { return Digest{I * 16, 0}; }

} // namespace

TEST(ShardedCacheTest, StoreLookupAndFirstResultWins) {
  ShardedDigestCache<std::string> Cache;
  Digest K = shard0Key(1);
  EXPECT_FALSE(Cache.lookup(K).has_value());
  Cache.store(K, "first");
  Cache.store(K, "second"); // Ignored: results are interchangeable.
  ASSERT_TRUE(Cache.lookup(K).has_value());
  EXPECT_EQ(*Cache.lookup(K), "first");
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
}

// A full shard must admit new entries by evicting, not drop them (the
// pre-eviction behavior froze the cache at its first fill).
TEST(ShardedCacheTest, FullShardAdmitsNewEntries) {
  ShardedDigestCache<std::string> Cache(/*MaxEntries=*/0); // Cap 1/shard.
  Cache.store(shard0Key(0), "old");
  Cache.store(shard0Key(1), "new");
  EXPECT_FALSE(Cache.lookup(shard0Key(0)).has_value()) << "evicted";
  ASSERT_TRUE(Cache.lookup(shard0Key(1)).has_value());
  EXPECT_EQ(*Cache.lookup(shard0Key(1)), "new");
  EXPECT_EQ(Cache.stats().Entries, 1u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
}

// The second chance: a looked-up entry survives a sweep that evicts an
// unreferenced one, even though the survivor is older (pure FIFO would
// evict it first).
TEST(ShardedCacheTest, ReferencedEntrySurvivesEviction) {
  ShardedDigestCache<std::string> Cache(/*MaxEntries=*/32); // Cap 3/shard.
  Digest A = shard0Key(0), B = shard0Key(1), C = shard0Key(2),
         D = shard0Key(3), E = shard0Key(4);
  Cache.store(A, "a");
  Cache.store(B, "b");
  Cache.store(C, "c");
  Cache.store(D, "d"); // Sweep clears A,B,C then evicts A.
  EXPECT_FALSE(Cache.lookup(A).has_value());

  ASSERT_TRUE(Cache.lookup(B).has_value()); // Re-references B.
  Cache.store(E, "e"); // Hand passes B (second chance), evicts C.
  EXPECT_TRUE(Cache.lookup(B).has_value())
      << "referenced entry should survive the sweep";
  EXPECT_FALSE(Cache.lookup(C).has_value()) << "unreferenced entry evicted";
  EXPECT_TRUE(Cache.lookup(D).has_value());
  EXPECT_TRUE(Cache.lookup(E).has_value());
  EXPECT_EQ(Cache.stats().Entries, 3u);
  EXPECT_EQ(Cache.stats().Evictions, 2u);
}

TEST(ShardedCacheTest, ClearResetsEvictionState) {
  ShardedDigestCache<int> Cache(/*MaxEntries=*/0);
  Cache.store(shard0Key(0), 1);
  Cache.store(shard0Key(1), 2); // Evicts.
  Cache.clear();
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Evictions, 0u);
  Cache.store(shard0Key(2), 3);
  ASSERT_TRUE(Cache.lookup(shard0Key(2)).has_value());
  EXPECT_EQ(*Cache.lookup(shard0Key(2)), 3);
}

TEST(ConcurrentSetTest, InsertContainsClear) {
  ConcurrentSet<int> Set;
  EXPECT_FALSE(Set.contains(7));
  EXPECT_TRUE(Set.insert(7));
  EXPECT_FALSE(Set.insert(7)) << "second insert must lose the claim";
  EXPECT_TRUE(Set.contains(7));
  EXPECT_EQ(Set.size(), 1u);
  Set.clear();
  EXPECT_FALSE(Set.contains(7));
  EXPECT_EQ(Set.size(), 0u);
}

TEST(ConcurrentSetTest, BitsetKeys) {
  ConcurrentSet<Bitset, BitsetHash> Set;
  Bitset A(70), B(70);
  B.set(69);
  EXPECT_TRUE(Set.insert(A));
  EXPECT_TRUE(Set.insert(B));
  EXPECT_FALSE(Set.insert(A));
  EXPECT_EQ(Set.size(), 2u);
}

// The claim semantics under contention: every value is claimed exactly
// once no matter how many threads race for it.
TEST(ConcurrentSetTest, ClaimsAreUniqueAcrossThreads) {
  ConcurrentSet<int> Set;
  constexpr int NumValues = 1000;
  constexpr unsigned NumThreads = 8;
  std::atomic<int> Claims{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int V = 0; V != NumValues; ++V)
        if (Set.insert(V))
          Claims.fetch_add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Claims.load(), NumValues);
  EXPECT_EQ(Set.size(), static_cast<size_t>(NumValues));
}

TEST(SharedAppendListTest, AppendScanUnderContention) {
  SharedAppendList<int> List;
  EXPECT_EQ(List.size(), 0u);
  EXPECT_FALSE(List.any([](int) { return true; }));

  constexpr unsigned NumThreads = 4;
  constexpr int PerThread = 250;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int V = 0; V != PerThread; ++V) {
        List.append(static_cast<int>(T) * PerThread + V);
        // Interleave scans with appends, as the search's matchesWrong
        // does against learnCex.
        List.any([](int X) { return X < 0; });
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(List.size(), NumThreads * PerThread);
  EXPECT_TRUE(List.any([](int X) { return X == 999; }));
  EXPECT_FALSE(List.any([](int X) { return X == 1000; }));
}

// The wrong-set's watch-list indexing: a constraint is filed under the
// first set bit of its Value, and a probe walking only the probed
// configuration's set-bit buckets must still find every match (any
// matching constraint's Value is a subset of the configuration).
TEST(WatchedWrongSetTest, MatchesAcrossWatchBuckets) {
  WatchedWrongSet W;
  W.reset(130);
  EXPECT_TRUE(W.empty());

  // (Mask = {3, 70}, Value = {70}): refutes configurations that applied
  // op 70 but not op 3. Watched under bit 70 — in the second word.
  Bitset M1(130), V1(130);
  M1.set(3);
  M1.set(70);
  V1.set(70);
  W.add(M1, V1);

  Bitset C(130);
  C.set(70);
  EXPECT_TRUE(W.matches(C)) << "70 applied, 3 not: refuted";
  C.set(3);
  EXPECT_FALSE(W.matches(C)) << "both applied: mask disagrees with value";
  Bitset D(130);
  D.set(3);
  EXPECT_FALSE(W.matches(D)) << "watch bit 70 absent: cannot match";
  EXPECT_EQ(W.size(), 1u);
  EXPECT_EQ(W.snapshot().size(), 1u);
}

// All-zero Values (only seed imports can produce them) must land in the
// always-scanned fallback list, not be lost to an out-of-range bucket.
TEST(WatchedWrongSetTest, ZeroValueConstraintUsesFallback) {
  WatchedWrongSet W;
  W.reset(64);
  Bitset M(64), V(64);
  M.set(5); // Refutes any configuration that has NOT applied op 5.
  W.add(M, V);
  Bitset C(64);
  C.set(7);
  EXPECT_TRUE(W.matches(C));
  C.set(5);
  EXPECT_FALSE(W.matches(C));
}

// reset() must both drop old constraints and survive re-shaping to a
// different width (the search reuses one instance across runs).
TEST(WatchedWrongSetTest, ResetDropsConstraintsAndReshapes) {
  WatchedWrongSet W;
  W.reset(32);
  Bitset M(32), V(32);
  M.set(1);
  V.set(1);
  W.add(M, V);
  Bitset C(32);
  C.set(1);
  EXPECT_TRUE(W.matches(C));

  W.reset(96);
  EXPECT_TRUE(W.empty());
  Bitset C2(96);
  C2.set(1);
  C2.set(90);
  EXPECT_FALSE(W.matches(C2));
}

// The shared-search contract: lock-free probes racing lock-free adds.
// Writers insert constraints watched under distinct bits while readers
// continuously probe; after the join every inserted constraint must be
// visible and no probe may ever have crashed or false-positived on the
// sentinel configuration none of the constraints match.
TEST(WatchedWrongSetTest, ConcurrentAddsAndProbes) {
  constexpr size_t NumBits = 256;
  constexpr unsigned Writers = 4;
  constexpr unsigned PerWriter = 50;
  WatchedWrongSet W;
  W.reset(NumBits);

  // Never matched: bit 255 is set in no constraint's mask, and every
  // constraint requires its own watch bit which Clean lacks.
  Bitset Clean(NumBits);
  Clean.set(255);

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> FalseHits{0};
  std::thread Reader([&] {
    while (!Done.load()) {
      if (W.matches(Clean))
        FalseHits.fetch_add(1);
    }
  });

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Writers; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != PerWriter; ++I) {
        size_t Bit = T * PerWriter + I; // Distinct watch bit per entry.
        Bitset M(NumBits), V(NumBits);
        M.set(Bit);
        V.set(Bit);
        W.add(std::move(M), std::move(V));
      }
    });
  for (std::thread &T : Threads)
    T.join();
  Done.store(true);
  Reader.join();

  EXPECT_EQ(FalseHits.load(), 0u);
  EXPECT_EQ(W.size(), Writers * PerWriter);
  for (size_t Bit = 0; Bit != Writers * PerWriter; ++Bit) {
    Bitset C(NumBits);
    C.set(Bit);
    EXPECT_TRUE(W.matches(C)) << "constraint on bit " << Bit << " lost";
  }
}

TEST(FlatBitsetSetTest, InsertContainsClearReuse) {
  FlatBitsetSet Set;
  Bitset A(100), B(100);
  B.set(99);
  EXPECT_FALSE(Set.contains(A));
  EXPECT_TRUE(Set.insert(A));
  EXPECT_FALSE(Set.insert(A)) << "duplicate insert must report present";
  EXPECT_TRUE(Set.insert(B));
  EXPECT_TRUE(Set.contains(A));
  EXPECT_TRUE(Set.contains(B));
  EXPECT_EQ(Set.size(), 2u);

  // clear() keeps capacity; a refill must behave like a fresh set.
  Set.clear();
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_FALSE(Set.contains(A));
  EXPECT_TRUE(Set.insert(A));
  EXPECT_FALSE(Set.insert(A));
}

TEST(FlatBitsetSetTest, SurvivesGrowth) {
  FlatBitsetSet Set;
  constexpr unsigned N = 500; // Forces several grow() rehashes.
  for (unsigned I = 0; I != N; ++I) {
    Bitset B(512);
    B.set(I);
    EXPECT_TRUE(Set.insert(B));
  }
  EXPECT_EQ(Set.size(), N);
  for (unsigned I = 0; I != N; ++I) {
    Bitset B(512);
    B.set(I);
    EXPECT_TRUE(Set.contains(B));
    EXPECT_FALSE(Set.insert(B));
  }
}

TEST(ArenaTest, BumpAllocationAndAlignment) {
  Arena A(/*ChunkBytes=*/256);
  void *P1 = A.allocate(10, 8);
  void *P2 = A.allocate(10, 64);
  EXPECT_NE(P1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 64, 0u);
  EXPECT_EQ(A.bytesAllocated(), 20u);

  // Oversized requests get a dedicated chunk instead of failing.
  void *Big = A.allocate(4096);
  EXPECT_NE(Big, nullptr);
  EXPECT_GE(A.bytesReserved(), 4096u);
}

// The lifetime contract: reset() recycles chunk memory in place, so a
// steady-state fill-reset-fill loop reuses capacity and stops growing.
TEST(ArenaTest, ResetRecyclesChunks) {
  Arena A(/*ChunkBytes=*/512);
  for (unsigned I = 0; I != 8; ++I)
    A.allocate(256);
  size_t Reserved = A.bytesReserved();
  size_t Chunks = A.numChunks();
  EXPECT_GT(Chunks, 1u) << "fill should have spilled into extra chunks";

  for (unsigned Round = 0; Round != 4; ++Round) {
    A.reset();
    EXPECT_EQ(A.bytesAllocated(), 0u);
    for (unsigned I = 0; I != 8; ++I) {
      void *P = A.allocate(256);
      // Writing the full allocation catches chunk-boundary arithmetic
      // errors under ASan/TSan builds.
      for (size_t B = 0; B != 256; ++B)
        static_cast<char *>(P)[B] = static_cast<char>(B);
    }
    EXPECT_EQ(A.bytesReserved(), Reserved)
        << "steady-state round grew the arena";
    EXPECT_EQ(A.numChunks(), Chunks);
  }
}

TEST(ArenaTest, CreateConstructsInPlace) {
  Arena A;
  struct Pair {
    int X;
    int Y;
  };
  Pair *P = A.create<Pair>(Pair{3, 4});
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

// ChunkedVector: growth never moves existing elements (the BDD node
// table holds raw pointers into it), and clear() + refill reuses the
// same chunk memory without touching the arena.
TEST(ChunkedVectorTest, StableAddressesAcrossGrowth) {
  Arena A;
  ChunkedVector<uint64_t, 64> V(A);
  EXPECT_TRUE(V.empty());
  V.push_back(1);
  uint64_t *First = &V[0];
  for (uint64_t I = 1; I != 1000; ++I)
    V.push_back(I + 1);
  EXPECT_EQ(V.size(), 1000u);
  EXPECT_EQ(&V[0], First) << "growth moved an element";
  for (uint64_t I = 0; I != 1000; ++I)
    EXPECT_EQ(V[I], I + 1);
  EXPECT_EQ(V.back(), 1000u);

  size_t Reserved = A.bytesReserved();
  V.clear();
  EXPECT_TRUE(V.empty());
  for (uint64_t I = 0; I != 1000; ++I)
    V.push_back(I * 3);
  EXPECT_EQ(&V[0], First) << "refill must reuse the carved chunks";
  EXPECT_EQ(V[999], 999u * 3);
  EXPECT_EQ(A.bytesReserved(), Reserved)
      << "clear()+refill must not allocate new chunks";
}
