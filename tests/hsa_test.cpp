//===- tests/hsa_test.cpp - header-space backend tests ---------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "hsa/HsaChecker.h"
#include "hsa/HeaderSpace.h"

#include "mc/LabelingChecker.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

TEST(HeaderSpaceTest, EncodeAndCover) {
  Header H = makeHeader(3, 5, 1);
  TernaryMatch Exact = TernaryMatch::ofHeader(H);
  EXPECT_TRUE(Exact.concrete());
  EXPECT_TRUE(Exact.covers(Exact));

  Pattern P = Pattern::onField(Field::Dst, 5);
  TernaryMatch M = TernaryMatch::ofPattern(P);
  EXPECT_FALSE(M.concrete());
  EXPECT_TRUE(M.covers(Exact));
  EXPECT_FALSE(M.covers(TernaryMatch::ofHeader(makeHeader(3, 6, 1))));
}

TEST(HeaderSpaceTest, IntersectAndOverlap) {
  TernaryMatch A = TernaryMatch::ofPattern(Pattern::onField(Field::Src, 1));
  TernaryMatch B = TernaryMatch::ofPattern(Pattern::onField(Field::Dst, 2));
  ASSERT_TRUE(A.overlaps(B));
  std::optional<TernaryMatch> I = A.intersect(B);
  ASSERT_TRUE(I.has_value());
  EXPECT_TRUE(I->covers(TernaryMatch::ofHeader(makeHeader(1, 2, 0))));

  TernaryMatch C = TernaryMatch::ofPattern(Pattern::onField(Field::Src, 9));
  EXPECT_FALSE(A.overlaps(C));
  EXPECT_FALSE(A.intersect(C).has_value());

  TernaryMatch W = TernaryMatch::wildcard();
  EXPECT_TRUE(W.overlaps(A));
  EXPECT_EQ(*W.intersect(A), A);
}

namespace {

/// Builds the Fig. 1 probe for H1 -> H3 reachability.
std::vector<ProbeSpec> fig1Probes(const Fig1Network &N) {
  ProbeSpec P;
  P.K = ProbeSpec::Kind::Reachability;
  P.ClassIdx = 0;
  P.SrcPort = N.srcPort();
  P.DstPort = N.dstPort();
  return {P};
}

} // namespace

TEST(PlumberTest, Fig1RedPasses) {
  Fig1Network N = buildFig1();
  Plumber P(N.Topo, N.Red, {N.FlowH1H3}, fig1Probes(N));
  EXPECT_TRUE(P.allProbesPass());
  EXPECT_GT(P.numFlowExpansions(), 0u);
}

TEST(PlumberTest, IncrementalUpdateFlipsVerdict) {
  Fig1Network N = buildFig1();
  Plumber P(N.Topo, N.Red, {N.FlowH1H3}, fig1Probes(N));
  ASSERT_TRUE(P.allProbesPass());

  // A1 -> green while C2 is empty: blackhole.
  P.updateSwitch(N.A[0], N.Green.table(N.A[0]));
  EXPECT_FALSE(P.allProbesPass());

  // C2 -> green fixes it.
  P.updateSwitch(N.C2, N.Green.table(N.C2));
  EXPECT_TRUE(P.allProbesPass());

  // And back to red still passes.
  P.updateSwitch(N.A[0], N.Red.table(N.A[0]));
  EXPECT_TRUE(P.allProbesPass());
}

TEST(PlumberTest, DetectsForwardingLoop) {
  Topology T;
  SwitchId A = T.addSwitch("a");
  SwitchId B = T.addSwitch("b");
  auto [PA, PB] = T.connectSwitches(A, B);
  HostId H = T.addHost("h");
  PortId In = T.attachHost(H, A);

  Config Cfg(2);
  Rule RA;
  RA.Priority = 1;
  RA.Pat = Pattern::wildcard();
  RA.Actions.push_back(Action::forward(PA));
  Cfg.setTable(A, Table({RA}));
  Rule RB;
  RB.Priority = 1;
  RB.Pat = Pattern::wildcard();
  RB.Actions.push_back(Action::forward(PB));
  Cfg.setTable(B, Table({RB}));

  ProbeSpec P;
  P.K = ProbeSpec::Kind::Reachability;
  P.ClassIdx = 0;
  P.SrcPort = In;
  P.DstPort = In;
  Plumber Engine(T, Cfg, {TrafficClass{makeHeader(1, 2), "c"}}, {P});
  EXPECT_FALSE(Engine.allProbesPass());
}

/// The HSA backend agrees with the labeling checker across random
/// mid-update configurations of diamond scenarios, for all three probe
/// kinds.
TEST(HsaCheckerTest, AgreesWithLabelingAcrossIntermediateConfigs) {
  Rng R(71);
  for (PropertyKind Kind :
       {PropertyKind::Reachability, PropertyKind::Waypoint,
        PropertyKind::ServiceChain}) {
    Topology Base = buildSmallWorld(18, 4, 0.2, R);
    std::optional<Scenario> S = makeDiamondScenario(Base, R, Kind);
    ASSERT_TRUE(S.has_value());
    FormulaFactory FF;
    Formula Phi = S->buildProperty(FF);

    std::vector<SwitchId> Diff = diffSwitches(S->Initial, S->Final);
    for (int Round = 0; Round != 20; ++Round) {
      // Random mid-update configuration.
      Config Mid = S->Initial;
      for (SwitchId Sw : Diff)
        if (R.nextBool())
          Mid.setTable(Sw, S->Final.table(Sw));

      KripkeStructure K1(S->Topo, Mid, S->classes());
      KripkeStructure K2(S->Topo, Mid, S->classes());
      LabelingChecker Labeling;
      HsaChecker Hsa(HsaChecker::probesFromScenario(*S));
      bool A = Labeling.bind(K1, Phi).Holds;
      bool B = Hsa.bind(K2, Phi).Holds;
      EXPECT_EQ(A, B) << "kind " << static_cast<int>(Kind) << " round "
                      << Round;
    }
  }
}

TEST(HsaCheckerTest, RollbackRestoresVerdicts) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  ProbeSpec Spec;
  Spec.K = ProbeSpec::Kind::Reachability;
  Spec.SrcPort = N.srcPort();
  Spec.DstPort = N.dstPort();
  HsaChecker Checker({Spec});

  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  ASSERT_TRUE(Checker.bind(K, Phi).Holds);

  std::vector<StateId> Changed;
  auto Undo = K.applySwitchUpdate(N.A[0], N.Green.table(N.A[0]), Changed);
  UpdateInfo Info;
  Info.Sw = N.A[0];
  Info.OldTable = &Undo.OldTable;
  Info.ChangedStates = &Changed;
  EXPECT_FALSE(Checker.recheckAfterUpdate(Info).Holds);
  Checker.notifyRollback();
  K.undo(Undo);

  // The good first step still passes after the rollback.
  std::vector<StateId> Changed2;
  auto Undo2 = K.applySwitchUpdate(N.C2, N.Green.table(N.C2), Changed2);
  UpdateInfo Info2;
  Info2.Sw = N.C2;
  Info2.OldTable = &Undo2.OldTable;
  Info2.ChangedStates = &Changed2;
  EXPECT_TRUE(Checker.recheckAfterUpdate(Info2).Holds);
}

/// The synthesizer driven by the HSA backend (no counterexamples, like
/// NetPlumber) still produces sound sequences.
TEST(HsaCheckerTest, DrivesSynthesisWithoutCounterexamples) {
  Rng R(72);
  Topology Base = buildSmallWorld(16, 4, 0.2, R);
  std::optional<Scenario> S =
      makeDiamondScenario(Base, R, PropertyKind::Reachability);
  ASSERT_TRUE(S.has_value());

  FormulaFactory FF;
  HsaChecker Checker(HsaChecker::probesFromScenario(*S));
  SynthOptions Opts;
  Opts.RuleGranularity = true; // The mode the paper benches NetPlumber in.
  SynthResult Res = synthesizeUpdate(*S, FF, Checker, Opts);
  ASSERT_EQ(Res.Status, SynthStatus::Success);
  Formula Phi = S->buildProperty(FF);
  EXPECT_TRUE(allIntermediateConfigsHold(S->Topo, S->Initial, S->classes(),
                                         Phi, Res.Commands));
}
