//===- tests/memo_test.cpp - memoizing checker tests -----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the MemoizingChecker decorator and the factory's "memo:"
/// specs: verdict and query-count agreement with the undecorated backend
/// across the whole registry, cross-run cache reuse (a repeated scenario
/// costs zero underlying queries), sound operation when only part of the
/// query stream hits (the rebind/desync machinery), and counter plumbing
/// into SynthStats.
///
//===----------------------------------------------------------------------===//

#include "mc/BackendFactory.h"
#include "mc/MemoizingChecker.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

namespace {

Scenario diamond(uint64_t Seed,
                 PropertyKind Kind = PropertyKind::Reachability) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(16, 4, 0.2, R);
  std::optional<Scenario> S = makeDiamondScenario(Base, R, Kind);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no diamond";
  return std::move(*S);
}

Scenario doubleDiamond(uint64_t Seed) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no double diamond";
  return std::move(*S);
}

/// Runs synthesizeUpdate over \p S with a memoizing wrapper around the
/// factory backend \p Backend, sharing \p Cache.
SynthResult runMemoized(const Scenario &S, const std::string &Backend,
                        const std::shared_ptr<CheckCache> &Cache,
                        unsigned &QueriesOut, SynthOptions Opts = {}) {
  std::unique_ptr<CheckerBackend> Inner =
      BackendFactory::instance().create(Backend, S);
  EXPECT_NE(Inner, nullptr) << Backend;
  MemoizingChecker Memo(std::move(Inner), Cache);
  FormulaFactory FF;
  SynthResult R = synthesizeUpdate(S, FF, Memo, Opts);
  QueriesOut = Memo.numQueries();
  return R;
}

} // namespace

TEST(BackendFactoryMemoTest, MemoSpecsResolve) {
  BackendFactory &F = BackendFactory::instance();
  for (const std::string &Name : F.names()) {
    EXPECT_TRUE(F.known("memo:" + Name)) << Name;
    // names() lists only underlying backends; memo composes at lookup.
    EXPECT_EQ(Name.rfind("memo:", 0), std::string::npos);
  }
  EXPECT_TRUE(F.known("Memo:Incremental")) << "specs are case-insensitive";
  EXPECT_TRUE(F.known("memo:memo:batch")) << "the prefix composes";
  EXPECT_FALSE(F.known("memo:no-such-backend"));

  Scenario S = diamond(1);
  EXPECT_EQ(F.create("memo:no-such-backend", S), nullptr);
  std::unique_ptr<CheckerBackend> B = F.create("memo:batch", S);
  ASSERT_NE(B, nullptr);
  EXPECT_STREQ(B->name(), "Memo(Batch)");
  EXPECT_EQ(B->cacheHits(), 0u);
}

// memo:<backend> must agree with <backend> on the verdict and drive the
// identical query stream (same CheckCalls) for every backend in the
// registry; with a cold private cache the first run computes every
// query, and an identical second run is served entirely from the cache.
TEST(MemoizingCheckerTest, AgreesWithPlainBackendAcrossRegistry) {
  for (uint64_t Seed : {21, 22}) {
    for (PropertyKind Kind :
         {PropertyKind::Reachability, PropertyKind::Waypoint}) {
      Scenario S = diamond(Seed, Kind);
      for (const std::string &Name : BackendFactory::instance().names()) {
        std::unique_ptr<CheckerBackend> Plain =
            BackendFactory::instance().create(Name, S);
        ASSERT_NE(Plain, nullptr) << Name;
        FormulaFactory FF;
        SynthResult Ref = synthesizeUpdate(S, FF, *Plain);

        auto Cache = std::make_shared<CheckCache>();
        unsigned ColdQueries = 0, WarmQueries = 0;
        SynthResult Cold = runMemoized(S, Name, Cache, ColdQueries);
        EXPECT_EQ(Cold.Status, Ref.Status) << Name;
        EXPECT_EQ(Cold.Stats.CheckCalls, Ref.Stats.CheckCalls)
            << Name << ": memoization changed the query stream";
        EXPECT_EQ(ColdQueries, Plain->numQueries()) << Name;
        EXPECT_EQ(Cold.Stats.CacheHits, 0u) << Name;
        EXPECT_EQ(Cold.Stats.CacheMisses, Ref.Stats.CheckCalls) << Name;

        SynthResult Warm = runMemoized(S, Name, Cache, WarmQueries);
        EXPECT_EQ(Warm.Status, Ref.Status) << Name;
        EXPECT_EQ(Warm.Stats.CheckCalls, Ref.Stats.CheckCalls) << Name;
        EXPECT_EQ(WarmQueries, 0u)
            << Name << ": a repeated scenario must cost no real queries";
        EXPECT_EQ(Warm.Stats.CacheHits, Ref.Stats.CheckCalls) << Name;
        EXPECT_EQ(Warm.Stats.CacheMisses, 0u) << Name;
        if (Ref.ok()) {
          EXPECT_EQ(Warm.Commands.size(), Ref.Commands.size()) << Name;
        }
      }
    }
  }
}

// Partial hits: run switch granularity first, then rule granularity with
// the same cache. The streams overlap (both visit intermediate
// configurations reachable at either granularity) but are not identical,
// so the decorator must interleave cache hits with incremental rechecks
// and re-binds — and still reproduce the plain backend's verdict.
TEST(MemoizingCheckerTest, PartialHitsStaySound) {
  for (uint64_t Seed : {9, 31}) {
    Scenario S = doubleDiamond(Seed);

    SynthOptions RuleGran;
    RuleGran.RuleGranularity = true;

    std::unique_ptr<CheckerBackend> Plain =
        BackendFactory::instance().create("incremental", S);
    FormulaFactory FF;
    SynthResult Ref = synthesizeUpdate(S, FF, *Plain, RuleGran);
    EXPECT_EQ(Ref.Status, SynthStatus::Success);

    auto Cache = std::make_shared<CheckCache>();
    unsigned SwitchQueries = 0, RuleQueries = 0;
    SynthResult SwitchRun =
        runMemoized(S, "incremental", Cache, SwitchQueries);
    EXPECT_EQ(SwitchRun.Status, SynthStatus::Impossible)
        << "double diamonds are switch-granularity infeasible";

    SynthResult RuleRun =
        runMemoized(S, "incremental", Cache, RuleQueries, RuleGran);
    EXPECT_EQ(RuleRun.Status, Ref.Status);
    EXPECT_EQ(RuleRun.Stats.CheckCalls, Ref.Stats.CheckCalls)
        << "cached results must equal freshly computed ones";
    EXPECT_EQ(RuleRun.Stats.CacheHits + RuleRun.Stats.CacheMisses,
              RuleRun.Stats.CheckCalls);
    EXPECT_GT(RuleRun.Stats.CacheHits, 0u)
        << "granularities share at least the initial configuration";
    EXPECT_LT(RuleQueries, Ref.Stats.CheckCalls)
        << "partial hits must save real queries";
  }
}

// Distinct properties over the same structure must not collide: the key
// includes the property digest.
TEST(MemoizingCheckerTest, PropertyIsPartOfTheKey) {
  Scenario Reach = diamond(33, PropertyKind::Reachability);
  Scenario Way = Reach; // Same topology/configs, different property.
  Way.Kind = PropertyKind::Waypoint;
  for (FlowSpec &F : Way.Flows)
    if (F.Waypoints.empty() && F.InitialPath.size() > 1)
      F.Waypoints.push_back(F.InitialPath[F.InitialPath.size() / 2]);

  auto Cache = std::make_shared<CheckCache>();
  unsigned Q1 = 0, Q2 = 0;
  SynthResult R1 = runMemoized(Reach, "incremental", Cache, Q1);
  SynthResult R2 = runMemoized(Way, "incremental", Cache, Q2);
  // Whatever the verdicts, the second run must have computed its own
  // initial check rather than reusing the reachability result.
  EXPECT_GT(Q2, 0u);
  (void)R1;
  (void)R2;
}

// Different inner backends must not share entries: hsa produces no
// counterexamples, and serving its cached result to a cex-guided search
// would change the search.
TEST(MemoizingCheckerTest, InnerBackendIsPartOfTheKey) {
  Scenario S = diamond(34);
  auto Cache = std::make_shared<CheckCache>();
  unsigned QHsa = 0, QIncr = 0;
  runMemoized(S, "hsa", Cache, QHsa);
  size_t EntriesAfterHsa = Cache->stats().Entries;
  runMemoized(S, "incremental", Cache, QIncr);
  EXPECT_GT(QHsa, 0u);
  EXPECT_GT(QIncr, 0u) << "incremental must not reuse hsa's entries";
  EXPECT_GT(Cache->stats().Entries, EntriesAfterHsa);
}

TEST(MemoizingCheckerTest, ProcessCacheIsSharedAndClearable) {
  const std::shared_ptr<CheckCache> &Cache =
      MemoizingChecker::processCache();
  ASSERT_NE(Cache, nullptr);
  Cache->clear();

  Scenario S = diamond(35);
  std::unique_ptr<CheckerBackend> A =
      BackendFactory::instance().create("memo:incremental", S);
  ASSERT_NE(A, nullptr);
  FormulaFactory FF;
  SynthResult First = synthesizeUpdate(S, FF, *A);
  EXPECT_EQ(First.Stats.CacheHits, 0u);
  EXPECT_GT(Cache->stats().Entries, 0u);

  std::unique_ptr<CheckerBackend> B =
      BackendFactory::instance().create("memo:incremental", S);
  FormulaFactory FF2;
  SynthResult Second = synthesizeUpdate(S, FF2, *B);
  EXPECT_EQ(Second.Status, First.Status);
  EXPECT_EQ(Second.Stats.CacheMisses, 0u)
      << "factory-built memo backends share the process cache";
  EXPECT_EQ(B->numQueries(), 0u);

  Cache->clear();
  EXPECT_EQ(Cache->stats().Entries, 0u);
}
