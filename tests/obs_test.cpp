//===- tests/obs_test.cpp - observability layer tests ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability layer (src/obs/): span recording,
/// nesting, ring wrap-around, and Chrome-trace export; histogram bucket
/// boundaries and percentile estimation; the metrics registry and its
/// cache-stats providers; and the layer's one hard contract — turning
/// tracing and detail metrics on must not change a verdict, a command
/// sequence, or a search counter. The invariance matrix runs the
/// backend registry x shard counts {1,4} with budgeted cells included,
/// mirroring the learning and budget matrices. A concurrency test
/// hammers recording from several threads while the exporter and
/// snapshotter run — the cell the TSan CI job exists for.
///
/// Sequence comparison caveat (same as tests/learning_test.cpp): at
/// Shards > 1 without a budget, which correct sequence a feasible
/// search returns is timing-dependent; those cells compare verdicts and
/// validate sequences by replay. Sequential and budgeted cells compare
/// byte-exactly.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "mc/BackendFactory.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// Saves, overrides, and restores the process-wide obs switches, so
/// tests compose in one process regardless of NETUPD_TRACE /
/// NETUPD_OBS_DETAIL in the environment.
struct ObsToggle {
  ObsToggle(bool Trace, bool Detail)
      : OldTrace(obs::tracingEnabled()), OldDetail(obs::detailEnabled()) {
    obs::setTracing(Trace);
    obs::setDetail(Detail);
  }
  ~ObsToggle() {
    obs::setTracing(OldTrace);
    obs::setDetail(OldDetail);
  }
  bool OldTrace, OldDetail;
};

/// A feasible diamond scenario with at least \p MinUpdates updating
/// switches. Deterministic: scans seeds from \p FirstSeed upward.
Scenario diamondWithUpdates(uint64_t FirstSeed, unsigned MinUpdates) {
  for (uint64_t Seed = FirstSeed; Seed != FirstSeed + 64; ++Seed) {
    Rng R(Seed);
    Topology Base = buildSmallWorld(24, 4, 0.2, R);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, R, PropertyKind::Reachability);
    if (S && numUpdatingSwitches(*S) >= MinUpdates)
      return std::move(*S);
  }
  ADD_FAILURE() << "no diamond with >= " << MinUpdates
                << " updating switches from seed " << FirstSeed;
  return Scenario{};
}

/// The Fig. 8(h) instance: switch-granularity infeasible.
Scenario doubleDiamond(uint64_t Seed) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no double diamond";
  return std::move(*S);
}

/// What one run observably produced, for invariance comparisons.
struct RunResult {
  SynthStatus Status = SynthStatus::Aborted;
  std::string Rendered; // commandSeqToString: the byte-exact fingerprint.
  CommandSeq Commands;
  SynthStats Stats;
};

/// Runs one single-member job on a fresh 1-worker engine with the
/// result cache and learning off (observability, not reuse, is under
/// test here).
RunResult runOnce(const Scenario &S, const std::string &Backend,
                  unsigned Shards,
                  const std::function<void(SynthOptions &)> &Tweak = {}) {
  SynthJob Job;
  Job.S = S;
  PortfolioMember M;
  M.Backend = Backend;
  M.Opts.Shards = Shards;
  if (Tweak)
    Tweak(M.Opts);
  Job.Portfolio.push_back(std::move(M));

  EngineOptions EO;
  EO.NumWorkers = 1;
  EO.CacheResults = false;
  EO.SharedLearning = false;
  SynthEngine Engine(EO);
  BatchReport Rep = Engine.run({Job});
  const SynthReport &R = Rep.Reports[0];
  EXPECT_TRUE(R.Members[0].Error.empty()) << R.Members[0].Error;

  RunResult Out;
  Out.Status = R.Result.Status;
  Out.Rendered = commandSeqToString(S.Topo, R.Result.Commands);
  Out.Commands = R.Result.Commands;
  Out.Stats = R.Result.Stats;
  return Out;
}

void expectValidSequence(const Scenario &S, const CommandSeq &Cmds) {
  FormulaFactory FF;
  Formula Phi = S.buildProperty(FF);
  EXPECT_TRUE(
      allIntermediateConfigsHold(S.Topo, S.Initial, S.classes(), Phi, Cmds))
      << "an obs-on run produced an unsafe sequence";
}

/// The search counters that must be bit-identical with observability on
/// or off in any deterministic cell — obs code observes the DFS, it
/// must never steer it.
void expectSameCounters(const SynthStats &A, const SynthStats &B,
                        const std::string &Cell) {
  EXPECT_EQ(A.CheckCalls, B.CheckCalls) << Cell;
  EXPECT_EQ(A.VisitedPrunes, B.VisitedPrunes) << Cell;
  EXPECT_EQ(A.CexPrunes, B.CexPrunes) << Cell;
  EXPECT_EQ(A.BudgetSpent, B.BudgetSpent) << Cell;
  EXPECT_EQ(A.ExhaustedUnits, B.ExhaustedUnits) << Cell;
}

} // namespace

// --- TraceSpan / ring buffer ------------------------------------------------

TEST(TraceTest, SpansRecordNamesDurationsAndNesting) {
  ObsToggle On(true, false);
  obs::clearSpans();
  {
    obs::TraceSpan Outer("test.outer");
    {
      obs::TraceSpan Inner("test.inner");
      (void)Inner;
    }
    { obs::TraceSpan Inner2("test.inner2"); }
  }

  std::vector<obs::SpanRecord> Spans = obs::snapshotSpans();
  const obs::SpanRecord *Outer = nullptr, *Inner = nullptr, *Inner2 = nullptr;
  for (const obs::SpanRecord &S : Spans) {
    if (std::string(S.Name) == "test.outer")
      Outer = &S;
    else if (std::string(S.Name) == "test.inner")
      Inner = &S;
    else if (std::string(S.Name) == "test.inner2")
      Inner2 = &S;
  }
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Inner2, nullptr);

  // Nesting: children are one level deeper and contained in time.
  EXPECT_EQ(Inner->Depth, Outer->Depth + 1);
  EXPECT_EQ(Inner2->Depth, Outer->Depth + 1);
  EXPECT_GE(Inner->StartNs, Outer->StartNs);
  EXPECT_LE(Inner->StartNs + Inner->DurNs, Outer->StartNs + Outer->DurNs);
  EXPECT_GE(Inner2->StartNs, Inner->StartNs + Inner->DurNs)
      << "siblings must not overlap on one thread";
  // All on the recording thread.
  EXPECT_EQ(Inner->Tid, Outer->Tid);
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
  ObsToggle Off(false, false);
  obs::clearSpans();
  { obs::TraceSpan S("test.invisible"); }
  for (const obs::SpanRecord &S : obs::snapshotSpans())
    EXPECT_STRNE(S.Name, "test.invisible");
}

TEST(TraceTest, RingWrapKeepsTheNewestSpans) {
  ObsToggle On(true, false);
  obs::clearSpans();
  const size_t Cap = obs::traceBufferCapacity();
  for (size_t I = 0; I != Cap + 100; ++I) {
    obs::TraceSpan S(I + 1 == Cap + 100 ? "test.wrap_last" : "test.wrap");
  }
  std::vector<obs::SpanRecord> Spans = obs::snapshotSpans();
  size_t Mine = 0;
  bool SawLast = false;
  for (const obs::SpanRecord &S : Spans) {
    std::string N(S.Name);
    if (N == "test.wrap" || N == "test.wrap_last")
      ++Mine;
    SawLast |= N == "test.wrap_last";
  }
  EXPECT_LE(Mine, Cap) << "a ring must not hold more than its capacity";
  EXPECT_GE(Mine, Cap / 2) << "wrap lost far more than it should";
  EXPECT_TRUE(SawLast) << "wrap must evict oldest, not newest";
  EXPECT_GE(obs::droppedSpans(), 100u);
}

TEST(TraceTest, ChromeTraceExportIsWellFormed) {
  ObsToggle On(true, false);
  obs::clearSpans();
  { obs::TraceSpan S("test.export \"quoted\""); }
  std::string Json = obs::exportChromeTrace();
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("test.export \\\"quoted\\\""), std::string::npos)
      << "names must be JSON-escaped";
  EXPECT_EQ(Json.back(), '}');

  std::string Path = "obs_test_trace.json";
  ASSERT_TRUE(obs::writeChromeTrace(Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::fclose(F);
  std::remove(Path.c_str());
}

// --- Histogram --------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucketOf(0), 0u);
  EXPECT_EQ(H::bucketOf(1), 1u);
  EXPECT_EQ(H::bucketOf(2), 2u);
  EXPECT_EQ(H::bucketOf(3), 2u);
  EXPECT_EQ(H::bucketOf(4), 3u);
  EXPECT_EQ(H::bucketOf(1023), 10u);
  EXPECT_EQ(H::bucketOf(1024), 11u);
  EXPECT_EQ(H::bucketOf(~uint64_t(0)), H::NumBuckets - 1);
  // Every bucket's values are below its exclusive upper bound.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(7), uint64_t(1000),
                     uint64_t(123456789)})
    EXPECT_LT(V, H::bucketUpperNs(H::bucketOf(V)));
}

TEST(MetricsTest, HistogramCountsSumsAndPercentiles) {
  obs::Histogram H;
  EXPECT_EQ(H.percentileNs(0.5), 0u) << "empty histogram";
  // 90 fast samples (~1us), 10 slow ones (~1ms).
  for (int I = 0; I != 90; ++I)
    H.record(1000);
  for (int I = 0; I != 10; ++I)
    H.record(1000000);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_EQ(H.sumNs(), 90u * 1000 + 10u * 1000000);
  // p50 sits in the fast bucket, p99 in the slow one; bucket bounds are
  // powers of two, so "within 2x" is the contract.
  EXPECT_LE(H.percentileNs(0.50), 2048u);
  EXPECT_GE(H.percentileNs(0.99), 1000000u);
  EXPECT_LE(H.percentileNs(0.99), 2u * 1048576u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sumNs(), 0u);
}

// --- Registry / snapshot ----------------------------------------------------

TEST(MetricsTest, RegistryFindsOrCreatesAndSnapshotsJson) {
  obs::MetricsRegistry &R = obs::MetricsRegistry::instance();
  obs::Counter &C = R.counter("test.obs_counter");
  C.reset();
  C.add(41);
  C.add();
  EXPECT_EQ(&C, &R.counter("test.obs_counter")) << "stable identity";
  R.gauge("test.obs_gauge").set(-7);
  R.histogram("test.obs_hist").record(5000);

  uint64_t Token = R.registerCacheStats("test.obs_cache", [] {
    obs::CacheSample S;
    S.Hits = 3;
    S.Misses = 4;
    S.Entries = 2;
    return S;
  });
  std::string Json = R.snapshotJson();
  EXPECT_NE(Json.find("\"test.obs_counter\":42"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"test.obs_gauge\":-7"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"test.obs_hist\":{\"count\":"), std::string::npos);
  EXPECT_NE(Json.find("\"test.obs_cache\":{\"hits\":3,\"misses\":4"),
            std::string::npos)
      << Json;

  R.unregisterCacheStats(Token);
  EXPECT_EQ(R.snapshotJson().find("test.obs_cache"), std::string::npos)
      << "an unregistered provider must vanish from snapshots";
}

TEST(MetricsTest, EngineRegistersItsCachesAndJobMetrics) {
  obs::MetricsRegistry &R = obs::MetricsRegistry::instance();
  Scenario S = diamondWithUpdates(9300, 2);
  {
    EngineOptions EO;
    EO.NumWorkers = 1;
    SynthEngine Engine(EO);
    uint64_t Before = R.histogram("engine.job_ns").count();
    SynthJob Job;
    Job.S = S;
    Engine.run({Job});
    std::string Json = R.snapshotJson();
    EXPECT_NE(Json.find("\"engine.result_cache\":{"), std::string::npos);
    EXPECT_NE(Json.find("\"engine.constraint_store\":{"), std::string::npos);
    EXPECT_GT(R.histogram("engine.job_ns").count(), Before);
    EXPECT_GT(R.histogram("engine.queue_wait_ns").count(), 0u);
  }
  // Destroyed engine: its providers must be gone.
  EXPECT_EQ(R.snapshotJson().find("\"engine.result_cache\""),
            std::string::npos);
}

// --- On-vs-off invariance matrix --------------------------------------------

// Acceptance: for every registered backend (the memoizing decorator
// included) and shard count, an obs-on run (tracing + detail metrics)
// returns the same verdict — and, wherever sequences are deterministic,
// the byte-identical command sequence and search counters — as an
// obs-off run. Observability observes; it never steers.
TEST(ObsInvarianceTest, FeasibleMatrixAcrossBackendRegistry) {
  Scenario Feas = diamondWithUpdates(9200, 4);
  std::vector<std::string> Backends = BackendFactory::instance().names();
  Backends.push_back("memo:incremental");
  for (const std::string &Backend : Backends) {
    for (unsigned Shards : {1u, 4u}) {
      std::string Cell = Backend + " shards=" + std::to_string(Shards);
      RunResult Ref, On;
      {
        ObsToggle Off(false, false);
        Ref = runOnce(Feas, Backend, Shards);
      }
      {
        ObsToggle Obs(true, true);
        obs::clearSpans();
        On = runOnce(Feas, Backend, Shards);
      }
      EXPECT_EQ(On.Status, Ref.Status) << Cell;
      if (Shards == 1) {
        EXPECT_EQ(On.Rendered, Ref.Rendered) << Cell;
        expectSameCounters(On.Stats, Ref.Stats, Cell);
      } else if (On.Status == SynthStatus::Success) {
        expectValidSequence(Feas, On.Commands);
      }
      // The obs-on run must actually have profiled and traced.
      EXPECT_GT(On.Stats.CheckSeconds, 0.0) << Cell;
      EXPECT_EQ(Ref.Stats.CheckSeconds, 0.0)
          << Cell << ": detail-off runs must not pay for clock reads";
      bool SawSearch = false;
      for (const obs::SpanRecord &Sp : obs::snapshotSpans())
        SawSearch |= std::string(Sp.Name) == "synth.search";
      EXPECT_TRUE(SawSearch) << Cell;
    }
  }
}

TEST(ObsInvarianceTest, InfeasibleVerdictUnchanged) {
  Scenario Inf = doubleDiamond(9);
  for (unsigned Shards : {1u, 4u}) {
    RunResult Ref, On;
    {
      ObsToggle Off(false, false);
      Ref = runOnce(Inf, "incremental", Shards);
    }
    {
      ObsToggle Obs(true, true);
      On = runOnce(Inf, "incremental", Shards);
    }
    EXPECT_EQ(On.Status, Ref.Status) << "shards=" << Shards;
    EXPECT_NE(On.Status, SynthStatus::Success);
  }
}

// Budgeted cells: verdict AND sequence are a pure function of
// (job, budget) at any shard count, so every comparison is byte-exact —
// including the charged-budget accounting.
TEST(ObsInvarianceTest, BudgetedCellsStayByteIdentical) {
  Scenario Feas = diamondWithUpdates(9100, 4);
  for (uint64_t Unit : {uint64_t(2), uint64_t(100000)}) {
    auto Budget = [Unit](SynthOptions &O) { O.UnitCheckCalls = Unit; };
    for (unsigned Shards : {1u, 4u}) {
      std::string Cell =
          "unit=" + std::to_string(Unit) + " shards=" + std::to_string(Shards);
      RunResult Ref, On;
      {
        ObsToggle Off(false, false);
        Ref = runOnce(Feas, "incremental", Shards, Budget);
      }
      {
        ObsToggle Obs(true, true);
        On = runOnce(Feas, "incremental", Shards, Budget);
      }
      EXPECT_EQ(On.Status, Ref.Status) << Cell;
      EXPECT_EQ(On.Rendered, Ref.Rendered)
          << Cell << ": observability leaked into a deterministic verdict";
      // Work counters are only timing-independent at one shard: the
      // budget contract pins the verdict and the rendered sequence at
      // any shard count, but how much work losing shards do before
      // they see the winner follows scheduling (same scope as
      // learning_test's budgeted cells).
      if (Shards == 1)
        expectSameCounters(On.Stats, Ref.Stats, Cell);
    }
    // The tight budget must actually exercise the Abort regime once.
    if (Unit == 2) {
      ObsToggle Obs(true, true);
      EXPECT_EQ(runOnce(Feas, "incremental", 1, Budget).Status,
                SynthStatus::Aborted);
    }
  }
}

// --- Concurrency ------------------------------------------------------------

// Recording threads vs a concurrent exporter and snapshotter: the cell
// the TSan CI job runs. Failure mode here is a data race or a torn
// span, not an assertion.
TEST(ObsConcurrencyTest, RecordExportAndSnapshotRace) {
  ObsToggle On(true, true);
  obs::clearSpans();
  std::atomic<bool> Go{false}, Done{false};

  std::vector<std::thread> Writers;
  for (int T = 0; T != 4; ++T) {
    Writers.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      obs::MetricsRegistry &R = obs::MetricsRegistry::instance();
      obs::Counter &C = R.counter("test.race_counter");
      obs::Histogram &H = R.histogram("test.race_hist");
      for (int I = 0; I != 4000; ++I) {
        obs::TraceSpan Outer("test.race_outer");
        obs::TraceSpan Inner("test.race_inner");
        C.add();
        H.record(static_cast<uint64_t>(I));
      }
    });
  }
  std::thread Reader([&] {
    while (!Done.load()) {
      (void)obs::exportChromeTrace();
      (void)obs::MetricsRegistry::instance().snapshotJson();
    }
  });

  Go.store(true);
  for (std::thread &W : Writers)
    W.join();
  Done.store(true);
  Reader.join();

  // Whatever survived the rings is well-formed: matching names, sane
  // depths, in-range durations.
  for (const obs::SpanRecord &S : obs::snapshotSpans()) {
    std::string N(S.Name);
    if (N != "test.race_outer" && N != "test.race_inner")
      continue;
    EXPECT_LE(S.Depth, 8u);
  }
  EXPECT_EQ(obs::MetricsRegistry::instance()
                .counter("test.race_counter")
                .value(),
            4u * 4000u);
}

// An engine run with tracing on while another thread snapshots —
// end-to-end version of the race above, plus the TraceFile knob.
TEST(ObsConcurrencyTest, EngineRunsWhileSnapshotting) {
  ObsToggle On(true, true);
  Scenario S = diamondWithUpdates(9000, 3);
  std::string Path = "obs_test_engine_trace.json";

  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    while (!Done.load()) {
      (void)obs::exportChromeTrace();
      (void)obs::MetricsRegistry::instance().snapshotJson();
    }
  });
  {
    EngineOptions EO;
    EO.NumWorkers = 2;
    EO.TraceFile = Path;
    SynthEngine Engine(EO);
    std::vector<SynthJob> Jobs;
    for (int I = 0; I != 4; ++I) {
      SynthJob J;
      J.S = S;
      PortfolioMember M;
      M.Backend = "incremental";
      M.Opts.Shards = 2;
      J.Portfolio.push_back(std::move(M));
      Jobs.push_back(std::move(J));
    }
    BatchReport Rep = Engine.run(Jobs);
    for (const SynthReport &R : Rep.Reports)
      EXPECT_EQ(R.Result.Status, SynthStatus::Success);
  }
  Done.store(true);
  Reader.join();

  // The engine wrote its lifetime trace on destruction.
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "EngineOptions::TraceFile produced no file";
  char Buf[16] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_GT(N, 0u);
  EXPECT_EQ(std::string(Buf).rfind("{\"", 0), 0u) << "not JSON: " << Buf;
}
