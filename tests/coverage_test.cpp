//===- tests/coverage_test.cpp - breadth tests -----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Breadth coverage across modules: semantic identities of the LTL
/// toolchain, synthesis sweeps over every topology family, simulator
/// corner cases, and the documented relaxations of the optimization
/// machinery.
///
//===----------------------------------------------------------------------===//

#include "ltl/Parser.h"
#include "ltl/Properties.h"
#include "ltl/TraceEval.h"
#include "mc/LabelingChecker.h"
#include "sim/Simulator.h"
#include "synth/EarlyTermination.h"
#include "synth/OrderUpdate.h"
#include "synth/WaitRemoval.h"
#include "topo/Fig1.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

/// Classic LTL identities hold under the trace evaluator.
TEST(LtlIdentitiesTest, DualityAndUnrolling) {
  FormulaFactory FF;
  Rng R(2301);
  for (int Round = 0; Round != 150; ++Round) {
    Formula A = randomFormula(FF, R, 2);
    Formula B = randomFormula(FF, R, 2);
    Trace T = randomTrace(R, 1 + R.nextBelow(6));

    // !F a == G !a and !G a == F !a.
    EXPECT_EQ(evalOnTrace(FF.negate(FF.finally_(A)), T),
              evalOnTrace(FF.globally(FF.negate(A)), T));
    EXPECT_EQ(evalOnTrace(FF.negate(FF.globally(A)), T),
              evalOnTrace(FF.finally_(FF.negate(A)), T));
    // a U b == b | (a & X(a U b)).
    EXPECT_EQ(evalOnTrace(FF.until(A, B), T),
              evalOnTrace(FF.disj(B, FF.conj(A, FF.next(FF.until(A, B)))),
                          T));
    // a R b == b & (a | X(a R b)).
    EXPECT_EQ(
        evalOnTrace(FF.release(A, B), T),
        evalOnTrace(FF.conj(B, FF.disj(A, FF.next(FF.release(A, B)))), T));
    // F F a == F a; G G a == G a.
    EXPECT_EQ(evalOnTrace(FF.finally_(FF.finally_(A)), T),
              evalOnTrace(FF.finally_(A), T));
    EXPECT_EQ(evalOnTrace(FF.globally(FF.globally(A)), T),
              evalOnTrace(FF.globally(A), T));
  }
}

TEST(LtlIdentitiesTest, ImplicationIsMaterial) {
  FormulaFactory FF;
  Rng R(2302);
  for (int Round = 0; Round != 100; ++Round) {
    Formula A = randomFormula(FF, R, 2);
    Formula B = randomFormula(FF, R, 2);
    Trace T = randomTrace(R, 1 + R.nextBelow(5));
    EXPECT_EQ(evalOnTrace(FF.implies(A, B), T),
              !evalOnTrace(A, T) || evalOnTrace(B, T));
  }
}

namespace {

struct FamilyParam {
  const char *Family;
  unsigned Variant;
  PropertyKind Kind;
};

Topology buildFamily(const FamilyParam &P) {
  switch (P.Variant % 3) {
  case 0:
    return buildFatTree(4 + 2 * (P.Variant / 3));
  case 1:
    return buildZooLike(40 + 13 * P.Variant);
  default: {
    Rng R(2400 + P.Variant);
    return buildSmallWorld(20 + 10 * P.Variant, 4, 0.25, R);
  }
  }
}

class FamilySynthesisTest : public ::testing::TestWithParam<FamilyParam> {};

} // namespace

/// Synthesis succeeds and is sound on diamonds over every topology
/// family the paper evaluates.
TEST_P(FamilySynthesisTest, SoundAcrossFamilies) {
  FamilyParam P = GetParam();
  Topology Topo = buildFamily(P);
  Rng R(2500 + P.Variant);
  std::optional<Scenario> S = makeDiamondScenario(Topo, R, P.Kind);
  if (!S)
    GTEST_SKIP() << "no diamond in this topology";

  FormulaFactory FF;
  LabelingChecker Checker;
  SynthResult Res = synthesizeUpdate(*S, FF, Checker);
  ASSERT_EQ(Res.Status, SynthStatus::Success);
  Formula Phi = S->buildProperty(FF);
  EXPECT_TRUE(allIntermediateConfigsHold(S->Topo, S->Initial, S->classes(),
                                         Phi, Res.Commands));
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilySynthesisTest,
    ::testing::Values(
        FamilyParam{"fattree", 0, PropertyKind::Reachability},
        FamilyParam{"zoo", 1, PropertyKind::Reachability},
        FamilyParam{"smallworld", 2, PropertyKind::Reachability},
        FamilyParam{"fattree", 3, PropertyKind::Waypoint},
        FamilyParam{"zoo", 4, PropertyKind::Waypoint},
        FamilyParam{"smallworld", 5, PropertyKind::Waypoint},
        FamilyParam{"fattree", 6, PropertyKind::ServiceChain},
        FamilyParam{"zoo", 7, PropertyKind::ServiceChain},
        FamilyParam{"smallworld", 8, PropertyKind::ServiceChain}),
    [](const ::testing::TestParamInfo<FamilyParam> &Info) {
      return std::string(Info.param.Family) + "_" +
             std::to_string(Info.param.Variant);
    });

TEST(SimulatorCornersTest, MulticastDeliversAllCopies) {
  // One rule forwarding out two host-facing ports.
  Topology T;
  SwitchId Sw = T.addSwitch("s");
  HostId HIn = T.addHost("in");
  HostId H1 = T.addHost("h1");
  HostId H2 = T.addHost("h2");
  T.attachHost(HIn, Sw);
  PortId P1 = T.attachHost(H1, Sw);
  PortId P2 = T.attachHost(H2, Sw);

  Rule R;
  R.Priority = 1;
  R.Pat = Pattern::wildcard();
  R.Actions.push_back(Action::forward(P1));
  R.Actions.push_back(Action::forward(P2));
  Config Cfg(1);
  Cfg.setTable(Sw, Table({R}));

  Simulator Sim(T, Cfg);
  Sim.injectPacket(HIn, makeHeader(1, 2), 5);
  ASSERT_TRUE(Sim.runToQuiescence());
  EXPECT_EQ(Sim.deliveries().size(), 2u);
  EXPECT_EQ(Sim.droppedCount(), 0u);
}

TEST(SimulatorCornersTest, HeaderRewriteObservedAtDelivery) {
  Topology T;
  SwitchId Sw = T.addSwitch("s");
  HostId HIn = T.addHost("in");
  HostId HOut = T.addHost("out");
  T.attachHost(HIn, Sw);
  PortId POut = T.attachHost(HOut, Sw);

  Rule R;
  R.Priority = 1;
  R.Pat = Pattern::wildcard();
  R.Actions.push_back(Action::setField(Field::Typ, 7));
  R.Actions.push_back(Action::forward(POut));
  Config Cfg(1);
  Cfg.setTable(Sw, Table({R}));

  Simulator Sim(T, Cfg);
  Sim.injectPacket(HIn, makeHeader(1, 2, 0));
  ASSERT_TRUE(Sim.runToQuiescence());
  ASSERT_EQ(Sim.deliveries().size(), 1u);
  EXPECT_EQ(Sim.deliveries()[0].Hdr.get(Field::Typ), 7u);
}

TEST(WaitRemovalCornersTest, EmptyAndAdditiveSequences) {
  Fig1Network N = buildFig1();
  EXPECT_TRUE(removeWaits(N.Topo, N.Red, {N.FlowH1H3}, {}).empty());

  // Purely additive updates (C2 gains rules while unreachable): the
  // candidate wait disappears.
  CommandSeq Seq;
  Seq.push_back(Command::update(N.C2, N.Green.table(N.C2)));
  Seq.push_back(Command::wait());
  Seq.push_back(Command::update(N.A[0], N.Green.table(N.A[0])));
  CommandSeq Out = removeWaits(N.Topo, N.Red, {N.FlowH1H3}, Seq);
  EXPECT_EQ(countWaits(Out), 0u);
}

TEST(EarlyTerminationCornersTest, OversizedClausesAreDroppedSoundly) {
  // MaxClauseLits = 4: a 3x2 constraint is dropped, so the relaxation
  // stays satisfiable even though the full constraint set would conflict
  // with the follow-ups.
  EarlyTermination ET(/*TransitivityCap=*/16, /*MaxClauseLits=*/4);
  ET.addCexConstraint({0, 1, 2}, {3, 4}); // 6 literals > 4: dropped.
  ET.addCexConstraint({3}, {0});          // 0 < 3.
  ET.addCexConstraint({4}, {1});          // 1 < 4.
  EXPECT_FALSE(ET.impossible());          // Relaxed: still satisfiable.

  // Small contradictions are still caught.
  ET.addCexConstraint({0}, {3});
  ET.addCexConstraint({1}, {4});
  EXPECT_TRUE(ET.impossible());
}

TEST(PropertyTextTest, PaperFormulasParse) {
  // The §6 property templates, written in the concrete syntax.
  FormulaFactory FF;
  for (const char *Text :
       {"port=1 -> F port=2",
        "port=1 -> ((port!=2) U ((port=3) & F port=2))",
        "port=1 -> ((port!=4 & port!=2) U ((port=3) & "
        "((port!=2) U ((port=4) & F port=2))))",
        "G (sw=1 -> X sw=2)", "true U (false R port=9)"}) {
    ParseResult P = parseLtl(FF, Text);
    EXPECT_TRUE(P.ok()) << Text << ": " << P.Error;
    // Round-trips through the printer.
    ParseResult Q = parseLtl(FF, printFormula(P.F));
    ASSERT_TRUE(Q.ok());
    EXPECT_EQ(P.F, Q.F);
  }
}

TEST(CommandTest, PrinterAndApplication) {
  Fig1Network N = buildFig1();
  CommandSeq Seq;
  Seq.push_back(Command::update(N.C2, N.Green.table(N.C2)));
  Seq.push_back(Command::wait());
  Seq.push_back(Command::update(N.A[0], N.Green.table(N.A[0])));
  EXPECT_EQ(commandSeqToString(N.Topo, Seq), "upd C2; wait; upd A1");
  EXPECT_EQ(countWaits(Seq), 1u);

  Config End = N.Red;
  applyCommands(End, Seq);
  EXPECT_EQ(End, N.Green);
}

/// Rule-granularity ops compose: applying them in any successful order
/// reaches tables semantically identical to the final configuration.
TEST(RuleGranularityTest, OpsComposeToFinalTables) {
  Rng R(2601);
  Topology Base = buildSmallWorld(16, 4, 0.2, R);
  DiamondOptions Opts;
  Opts.NumFlows = 2;
  Opts.DisjointFlows = false;
  std::optional<Scenario> S =
      makeDiamondScenario(Base, R, PropertyKind::Reachability, Opts);
  ASSERT_TRUE(S.has_value());

  FormulaFactory FF;
  LabelingChecker Checker;
  SynthOptions SOpts;
  SOpts.RuleGranularity = true;
  SynthResult Res = synthesizeUpdate(*S, FF, Checker, SOpts);
  ASSERT_EQ(Res.Status, SynthStatus::Success);

  Config End = S->Initial;
  applyCommands(End, Res.Commands);
  for (SwitchId Sw = 0; Sw != End.numSwitches(); ++Sw)
    for (const TrafficClass &C : S->classes())
      for (PortId Pt : S->Topo.switchPorts(Sw))
        EXPECT_EQ(End.table(Sw).apply(C.Hdr, Pt),
                  S->Final.table(Sw).apply(C.Hdr, Pt));
}
