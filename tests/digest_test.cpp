//===- tests/digest_test.cpp - canonical digest tests ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the canonical digest layer: builder determinism, per-type
/// digests (Rule/Table/Config/Topology/Formula/Scenario), and — the
/// property the memoization stack rests on — incremental digest
/// maintenance in KripkeStructure staying exact under arbitrary
/// mutate/rollback round-trips.
///
//===----------------------------------------------------------------------===//

#include "engine/Job.h"
#include "kripke/Kripke.h"
#include "ltl/Parser.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

namespace {

Scenario diamond(uint64_t Seed,
                 PropertyKind Kind = PropertyKind::Reachability) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(16, 4, 0.2, R);
  std::optional<Scenario> S = makeDiamondScenario(Base, R, Kind);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no diamond";
  return std::move(*S);
}

} // namespace

TEST(DigestTest, BuilderDeterministicAndSensitive) {
  DigestBuilder A, B;
  A.addU64(1);
  A.addString("abc");
  B.addU64(1);
  B.addString("abc");
  EXPECT_EQ(A.finish(), B.finish());
  EXPECT_EQ(A.finish().str().size(), 32u);

  DigestBuilder C;
  C.addU64(1);
  C.addString("abd");
  EXPECT_NE(A.finish(), C.finish());

  // Length prefixing: ("ab","c") and ("a","bc") must differ.
  DigestBuilder D, E;
  D.addString("ab");
  D.addString("c");
  E.addString("a");
  E.addString("bc");
  EXPECT_NE(D.finish(), E.finish());

  EXPECT_EQ(Digest(), Digest());
  EXPECT_NE(A.finish(), Digest());
}

TEST(DigestTest, TableDigestIsOrderSensitive) {
  Rule R1;
  R1.Priority = 10;
  R1.Pat = Pattern::onField(Field::Dst, 1);
  R1.Actions.push_back(Action::forward(3));
  Rule R2 = R1;
  R2.Pat = Pattern::onField(Field::Dst, 2);

  Table T1({R1, R2});
  Table T2({R1, R2});
  Table Reordered({R2, R1});
  EXPECT_EQ(digestOf(T1), digestOf(T2));
  // Rule order is semantic (equal-priority ties break by index), so the
  // digest must distinguish it.
  EXPECT_NE(digestOf(T1), digestOf(Reordered));
  EXPECT_NE(digestOf(T1), digestOf(Table()));
}

TEST(DigestTest, ConfigDigestTracksTables) {
  Scenario S = diamond(1);
  EXPECT_EQ(digestOf(S.Initial), digestOf(S.Initial));
  EXPECT_NE(digestOf(S.Initial), digestOf(S.Final));

  Config Copy = S.Initial;
  EXPECT_EQ(digestOf(Copy), digestOf(S.Initial));
  for (SwitchId Sw : diffSwitches(S.Initial, S.Final)) {
    Copy.setTable(Sw, S.Final.table(Sw));
    break;
  }
  EXPECT_NE(digestOf(Copy), digestOf(S.Initial));
}

TEST(DigestTest, TopologyDigestIgnoresNamesOnly) {
  Rng R1(7), R2(7), R3(8);
  Topology A = buildSmallWorld(20, 4, 0.2, R1);
  Topology B = buildSmallWorld(20, 4, 0.2, R2);
  Topology C = buildSmallWorld(20, 4, 0.2, R3);
  EXPECT_EQ(digestOf(A), digestOf(B));
  EXPECT_NE(digestOf(A), digestOf(C));
}

TEST(DigestTest, FormulaDigestIsStructuralAcrossFactories) {
  FormulaFactory F1, F2;
  Formula A = parseLtl(F1, "G (port=1 -> F port=2)").F;
  Formula B = parseLtl(F2, "G (port=1 -> F port=2)").F;
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(A, B) << "distinct factories intern distinct nodes";
  EXPECT_EQ(digestOf(A), digestOf(B))
      << "structural digest must not depend on the factory";

  Formula C = parseLtl(F2, "G (port=1 -> F port=3)").F;
  EXPECT_NE(digestOf(B), digestOf(C));
  EXPECT_NE(digestOf(F1.top()), digestOf(F1.bottom()));

  // Random formulas: digest equality tracks pointer equality within one
  // factory (hash-consing makes structural and pointer equality
  // coincide there).
  Rng R(11);
  for (unsigned I = 0; I != 50; ++I) {
    Formula X = randomFormula(F1, R, 4);
    Formula Y = randomFormula(F1, R, 4);
    EXPECT_EQ(X == Y, digestOf(X) == digestOf(Y));
  }
}

TEST(DigestTest, ScenarioAndJobDigests) {
  Scenario A = diamond(3);
  Scenario Copy = A;
  EXPECT_EQ(digestOf(A), digestOf(Copy));
  EXPECT_NE(digestOf(A), digestOf(diamond(4)));
  EXPECT_NE(digestOf(diamond(5, PropertyKind::Reachability)),
            digestOf(diamond(5, PropertyKind::Waypoint)));

  // Job digests: name is presentation, options and portfolio are not.
  SynthJob J1, J2;
  J1.S = A;
  J1.Name = "left";
  J2.S = A;
  J2.Name = "right";
  EXPECT_EQ(digestOf(J1), digestOf(J2));

  // An empty portfolio means one default member; spelling that member
  // out must produce the same digest.
  SynthJob J3 = J1;
  J3.Portfolio.emplace_back();
  EXPECT_EQ(digestOf(J1), digestOf(J3));

  SynthJob J4 = J1;
  J4.Portfolio = defaultPortfolio();
  EXPECT_NE(digestOf(J1), digestOf(J4));

  SynthJob J5 = J3;
  J5.Portfolio[0].Opts.RuleGranularity = true;
  EXPECT_NE(digestOf(J3), digestOf(J5));

  SynthJob J6 = J3;
  J6.Portfolio[0].Backend = "Incremental"; // Factory is case-insensitive.
  EXPECT_EQ(digestOf(J3), digestOf(J6));
}

// The tentpole invariant: the digest a KripkeStructure maintains
// incrementally under applySwitchUpdate/undo always equals the digest of
// a structure built fresh from the current configuration, and rollback
// restores the original digest exactly.
TEST(DigestTest, KripkeDigestSurvivesMutateRollbackRoundTrips) {
  Scenario S = diamond(6);
  KripkeStructure K(S.Topo, S.Initial, S.classes());
  const Digest Original = K.digest();

  KripkeStructure SameContent(S.Topo, S.Initial, S.classes());
  EXPECT_EQ(Original, SameContent.digest());

  std::vector<SwitchId> Diff = diffSwitches(S.Initial, S.Final);
  ASSERT_FALSE(Diff.empty());

  // Walk a random mutate/rollback sequence; at every step the
  // incremental digest must match a from-scratch construction.
  Rng R(99);
  std::vector<KripkeStructure::UndoRecord> Undos;
  std::vector<Digest> DigestStack{Original};
  for (unsigned Step = 0; Step != 40; ++Step) {
    bool Push = Undos.empty() || (R.next() % 2 == 0);
    if (Push) {
      SwitchId Sw = Diff[R.next() % Diff.size()];
      // Alternate between the final and initial table for the switch so
      // pushes are not always no-ops on repeat visits.
      const Table &NewT = (R.next() % 2 == 0) ? S.Final.table(Sw)
                                              : S.Initial.table(Sw);
      std::vector<StateId> Changed;
      Undos.push_back(K.applySwitchUpdate(Sw, NewT, Changed));
      DigestStack.push_back(K.digest());
    } else {
      K.undo(Undos.back());
      Undos.pop_back();
      DigestStack.pop_back();
      EXPECT_EQ(K.digest(), DigestStack.back())
          << "rollback failed to restore the digest at step " << Step;
    }
    KripkeStructure Fresh(S.Topo, K.config(), S.classes());
    ASSERT_EQ(K.digest(), Fresh.digest())
        << "incremental digest diverged at step " << Step;
  }
  while (!Undos.empty()) {
    K.undo(Undos.back());
    Undos.pop_back();
  }
  EXPECT_EQ(K.digest(), Original);
}

// Structures over different configurations get different digests (no
// trivial XOR cancellation across switches).
TEST(DigestTest, KripkeDigestDistinguishesConfigurations) {
  Scenario S = diamond(8);
  KripkeStructure Initial(S.Topo, S.Initial, S.classes());
  KripkeStructure Final(S.Topo, S.Final, S.classes());
  EXPECT_NE(Initial.digest(), Final.digest());

  // Swapping two switches' (distinct) tables must change the digest:
  // slot digests bind the switch id.
  std::vector<SwitchId> Diff = diffSwitches(S.Initial, S.Final);
  if (Diff.size() >= 2) {
    Config Swapped = S.Initial;
    Swapped.setTable(Diff[0], S.Initial.table(Diff[1]));
    Swapped.setTable(Diff[1], S.Initial.table(Diff[0]));
    if (S.Initial.table(Diff[0]) != S.Initial.table(Diff[1])) {
      EXPECT_NE(digestOf(Swapped), digestOf(S.Initial));
    }
  }
}
