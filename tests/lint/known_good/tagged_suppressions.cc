// Clean: the tag forms the linter accepts — a wallclock-ok line (say, a
// soft-wall hint site), and a naked-new-ok on a lock-free intrusive node
// whose ownership transfers through a CAS.
#include <atomic>
#include <chrono>

namespace netupd {
uint64_t softWallHintNs() {
  // The soft-wall hint is advisory: it can only *shrink* work, never
  // change a verdict, so a direct clock read is sanctioned here.
  auto Now = std::chrono::steady_clock::now(); // lint: wallclock-ok
  return static_cast<uint64_t>(Now.time_since_epoch().count());
}

struct Node {
  Node *Next = nullptr;
};

void push(std::atomic<Node *> &Head) {
  // lint: naked-new-ok — intrusive CAS-push node; the list owns it and
  // destroy() walks and deletes the chain.
  Node *N = new Node();
  Node *Expected = Head.load();
  do {
    N->Next = Expected;
  } while (!Head.compare_exchange_weak(Expected, N));
}
} // namespace netupd
