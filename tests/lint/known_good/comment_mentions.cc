// Clean: rules match code, not prose — comments and string literals
// mentioning std::chrono, rand(), detach(), or `new Thing` must not
// fire (the linter strips comments and blanks string contents first).
#include <string>

namespace netupd {
// Doc comment discussing why we avoid std::chrono::steady_clock and
// rand() on search paths, and why no thread may detach().
std::string advice() {
  return "never call rand( or new Widget( on a search path";
}

/* Block comment: new Node() via CAS-push is the one sanctioned naked
   allocation shape; srand(42) is banned outright. */
int nothingSuspicious() { return 0; }
} // namespace netupd
