// Clean: both sanctioned rollback shapes — an undo() call in the same
// scope, and an undo record pushed into the owning frame's container.
#include <vector>

namespace netupd {
struct Kripke {
  int applySwitchUpdate(unsigned U);
  void undo(int Token);
};

bool probeAndRestore(Kripke &K, unsigned U) {
  int Tok = K.applySwitchUpdate(U);
  bool Ok = Tok >= 0;
  K.undo(Tok);
  return Ok;
}

struct DfsFrame {
  std::vector<int> Undos;
};

void descend(Kripke &K, DfsFrame &F, unsigned U) {
  F.Undos.push_back(K.applySwitchUpdate(U));
}
} // namespace netupd
