// Clean: every relaxed access is covered by a `// relaxed:` tag — same
// line, immediately above, or heading the contiguous block it sits in.
#include <atomic>

namespace netupd {
struct Flags {
  std::atomic<bool> Abort{false};
  std::atomic<unsigned> Tally{0};

  // relaxed: monotone false->true flag; readers only act on it after
  // every shard has joined, so the join edge orders the payload.
  void raise() { Abort.store(true, std::memory_order_relaxed); }
  bool aborted() const { return Abort.load(std::memory_order_relaxed); }

  void bump() {
    Tally.fetch_add(1, std::memory_order_relaxed); // relaxed: statistics
  }
};
} // namespace netupd
