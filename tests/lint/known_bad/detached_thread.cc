// expect: thread-hygiene
// A detached thread: nothing joins it, so it can outlive the engine and
// touch freed state during shutdown. There is no allowlist tag for this
// rule — restructure instead.
#include <thread>

namespace netupd {
void fireAndForget() {
  std::thread T([] {});
  T.detach();
}
} // namespace netupd
