// expect: relaxed
// A memory_order_relaxed access with no `// relaxed:` justification
// anywhere in the preceding comment block.
#include <atomic>

namespace netupd {
struct Flags {
  std::atomic<bool> Abort{false};

  bool aborted() const { return Abort.load(std::memory_order_relaxed); }
};
} // namespace netupd
