// expect: wallclock
// A deterministic-path file (anything under src/ outside src/obs/ and
// support/Timer.h) reading the wall clock directly: the budget must come
// from the shared deadline, not a local clock, or shard count changes
// the verdict.
#include <chrono>

namespace netupd {
bool pastDeadline() {
  auto Now = std::chrono::steady_clock::now().time_since_epoch().count();
  return Now > 0;
}
} // namespace netupd
