// expect: wallclock
// rand() on a search path: candidate order must be a pure function of
// (job, budget), so any randomness source is a determinism bug.
#include <cstdlib>

namespace netupd {
unsigned pickStartUnit(unsigned NumUnits) {
  return static_cast<unsigned>(rand()) % NumUnits;
}
} // namespace netupd
