// expect: thread-hygiene
// A naked `new` whose result is handed around raw: ownership is
// invisible and the ASan lane will eventually find the leak or the
// double-free. Use std::make_unique, or tag a deliberate site.
namespace netupd {
struct Node {
  int V;
};

Node *makeNode(int V) {
  Node *N = new Node();
  N->V = V;
  return N;
}
} // namespace netupd
