// expect: relaxed
// The `// relaxed:` tag exists but a blank line separates it from the
// access, so it does not cover the site: a tag's scope is the contiguous
// block it heads, never code after the next paragraph break.
#include <atomic>

namespace netupd {
struct Flags {
  std::atomic<bool> Abort{false};

  // relaxed: monotone flag, checked after join.
  void raise() { Abort.store(true, std::memory_order_relaxed); }

  bool aborted() const { return Abort.load(std::memory_order_relaxed); }
};
} // namespace netupd
