// expect: mutate-undo
// applySwitchUpdate with no rollback in scope: the DFS shares one Kripke
// structure per shard, so an unpaired mutation corrupts every sibling
// branch explored after this call returns.
namespace netupd {
struct Kripke {
  int applySwitchUpdate(unsigned U);
  void undo(int Token);
};

bool probeOnly(Kripke &K, unsigned U) {
  int Tok = K.applySwitchUpdate(U);
  (void)Tok;
  return true;
}
} // namespace netupd
