//===- tests/bdd_test.cpp - BDD package tests ------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::bdd;

TEST(BddTest, TerminalsAndLiterals) {
  Manager M(3);
  EXPECT_EQ(M.andOp(True, True), True);
  EXPECT_EQ(M.andOp(True, False), False);
  EXPECT_EQ(M.orOp(False, False), False);
  EXPECT_EQ(M.notOp(False), True);

  NodeRef X = M.var(0);
  EXPECT_EQ(M.notOp(M.notOp(X)), X);
  EXPECT_EQ(M.andOp(X, M.notOp(X)), False);
  EXPECT_EQ(M.orOp(X, M.notOp(X)), True);
  EXPECT_EQ(M.nvar(0), M.notOp(X));
}

TEST(BddTest, CanonicityAcrossConstructionOrders) {
  Manager M(4);
  NodeRef A = M.var(0), B = M.var(1), C = M.var(2);
  // (A & B) | C built two ways.
  NodeRef F1 = M.orOp(M.andOp(A, B), C);
  NodeRef F2 = M.orOp(C, M.andOp(B, A));
  EXPECT_EQ(F1, F2);
  // De Morgan.
  EXPECT_EQ(M.notOp(M.andOp(A, B)),
            M.orOp(M.notOp(A), M.notOp(B)));
}

namespace {

/// A random expression tree evaluated both as a BDD and directly.
struct Expr {
  enum Kind { Var, And, Or, Not, Xor } K;
  unsigned V = 0;
  std::unique_ptr<Expr> L, R;
};

std::unique_ptr<Expr> randomExpr(Rng &Rg, unsigned Depth, unsigned NumVars) {
  auto E = std::make_unique<Expr>();
  if (Depth == 0 || Rg.nextBelow(4) == 0) {
    E->K = Expr::Var;
    E->V = static_cast<unsigned>(Rg.nextBelow(NumVars));
    return E;
  }
  switch (Rg.nextBelow(4)) {
  case 0:
    E->K = Expr::And;
    break;
  case 1:
    E->K = Expr::Or;
    break;
  case 2:
    E->K = Expr::Xor;
    break;
  default:
    E->K = Expr::Not;
    break;
  }
  E->L = randomExpr(Rg, Depth - 1, NumVars);
  if (E->K != Expr::Not)
    E->R = randomExpr(Rg, Depth - 1, NumVars);
  return E;
}

NodeRef toBdd(Manager &M, const Expr &E) {
  switch (E.K) {
  case Expr::Var:
    return M.var(E.V);
  case Expr::And:
    return M.andOp(toBdd(M, *E.L), toBdd(M, *E.R));
  case Expr::Or:
    return M.orOp(toBdd(M, *E.L), toBdd(M, *E.R));
  case Expr::Xor:
    return M.xorOp(toBdd(M, *E.L), toBdd(M, *E.R));
  case Expr::Not:
    return M.notOp(toBdd(M, *E.L));
  }
  return False;
}

bool evalExpr(const Expr &E, const std::vector<uint8_t> &A) {
  switch (E.K) {
  case Expr::Var:
    return A[E.V];
  case Expr::And:
    return evalExpr(*E.L, A) && evalExpr(*E.R, A);
  case Expr::Or:
    return evalExpr(*E.L, A) || evalExpr(*E.R, A);
  case Expr::Xor:
    return evalExpr(*E.L, A) != evalExpr(*E.R, A);
  case Expr::Not:
    return !evalExpr(*E.L, A);
  }
  return false;
}

} // namespace

TEST(BddTest, MatchesTruthTables) {
  Rng Rg(17);
  const unsigned NumVars = 8;
  for (int Round = 0; Round != 40; ++Round) {
    Manager M(NumVars);
    std::unique_ptr<Expr> E = randomExpr(Rg, 5, NumVars);
    NodeRef F = toBdd(M, *E);
    for (uint32_t Bits = 0; Bits != (1u << NumVars); ++Bits) {
      std::vector<uint8_t> A(NumVars);
      for (unsigned V = 0; V != NumVars; ++V)
        A[V] = (Bits >> V) & 1;
      ASSERT_EQ(M.eval(F, A), evalExpr(*E, A)) << "round " << Round;
    }
  }
}

TEST(BddTest, ExistsQuantification) {
  Rng Rg(18);
  const unsigned NumVars = 6;
  for (int Round = 0; Round != 30; ++Round) {
    Manager M(NumVars);
    std::unique_ptr<Expr> E = randomExpr(Rg, 4, NumVars);
    NodeRef F = toBdd(M, *E);

    std::vector<uint8_t> VarSet(NumVars, 0);
    for (unsigned V = 0; V != NumVars; ++V)
      VarSet[V] = Rg.nextBool() ? 1 : 0;
    NodeRef Q = M.exists(F, VarSet);

    for (uint32_t Bits = 0; Bits != (1u << NumVars); ++Bits) {
      std::vector<uint8_t> A(NumVars);
      for (unsigned V = 0; V != NumVars; ++V)
        A[V] = (Bits >> V) & 1;
      // exists is true iff some assignment to the quantified vars works.
      bool Expected = false;
      std::vector<unsigned> QVars;
      for (unsigned V = 0; V != NumVars; ++V)
        if (VarSet[V])
          QVars.push_back(V);
      for (uint32_t Sub = 0; Sub != (1u << QVars.size()); ++Sub) {
        std::vector<uint8_t> B = A;
        for (size_t I = 0; I != QVars.size(); ++I)
          B[QVars[I]] = (Sub >> I) & 1;
        Expected |= M.eval(F, B);
      }
      ASSERT_EQ(M.eval(Q, A), Expected);
    }
  }
}

TEST(BddTest, PickAssignmentSatisfies) {
  Rng Rg(19);
  const unsigned NumVars = 10;
  for (int Round = 0; Round != 50; ++Round) {
    Manager M(NumVars);
    std::unique_ptr<Expr> E = randomExpr(Rg, 5, NumVars);
    NodeRef F = toBdd(M, *E);
    if (F == False)
      continue;
    std::vector<uint8_t> A = M.pickAssignment(F);
    EXPECT_TRUE(M.eval(F, A));
  }
}

TEST(BddTest, IffAndImplies) {
  Manager M(2);
  NodeRef A = M.var(0), B = M.var(1);
  NodeRef Iff = M.iffOp(A, B);
  NodeRef BothTrue = M.andOp(A, B);
  NodeRef BothFalse = M.andOp(M.notOp(A), M.notOp(B));
  EXPECT_EQ(Iff, M.orOp(BothTrue, BothFalse));
  EXPECT_EQ(M.impliesOp(A, B), M.orOp(M.notOp(A), B));
}
