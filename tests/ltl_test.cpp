//===- tests/ltl_test.cpp - LTL library tests ------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ltl/Closure.h"
#include "ltl/Parser.h"
#include "ltl/Properties.h"
#include "ltl/TraceEval.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

TEST(FormulaTest, HashConsing) {
  FormulaFactory FF;
  Formula A = FF.atom(Prop::onPort(1));
  Formula B = FF.atom(Prop::onPort(1));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, FF.atom(Prop::onPort(2)));
  EXPECT_EQ(FF.until(A, B), FF.until(A, B));
}

TEST(FormulaTest, ConstantFolding) {
  FormulaFactory FF;
  Formula A = FF.atom(Prop::onPort(1));
  EXPECT_EQ(FF.conj(FF.top(), A), A);
  EXPECT_EQ(FF.conj(A, FF.bottom()), FF.bottom());
  EXPECT_EQ(FF.disj(FF.bottom(), A), A);
  EXPECT_EQ(FF.disj(A, FF.top()), FF.top());
  EXPECT_EQ(FF.conj(A, A), A);
}

TEST(FormulaTest, NegationIsInvolutive) {
  FormulaFactory FF;
  Rng R(11);
  for (int I = 0; I != 50; ++I) {
    Formula F = randomFormula(FF, R, 4);
    EXPECT_EQ(FF.negate(FF.negate(F)), F) << printFormula(F);
  }
}

TEST(FormulaTest, NegationFlipsSemantics) {
  FormulaFactory FF;
  Rng R(12);
  for (int I = 0; I != 200; ++I) {
    Formula F = randomFormula(FF, R, 3);
    Formula NotF = FF.negate(F);
    Trace T = randomTrace(R, 1 + R.nextBelow(6));
    EXPECT_NE(evalOnTrace(F, T), evalOnTrace(NotF, T))
        << printFormula(F) << " on a " << T.size() << "-state trace";
  }
}

TEST(ParserTest, Atoms) {
  FormulaFactory FF;
  ParseResult P = parseLtl(FF, "port=3");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.F, FF.atom(Prop::onPort(3)));

  P = parseLtl(FF, "sw != 2");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.F, FF.notAtom(Prop::onSwitch(2)));

  P = parseLtl(FF, "dst=4");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.F, FF.atom(Prop::onField(Field::Dst, 4)));
}

TEST(ParserTest, PrecedenceAndSugar) {
  FormulaFactory FF;
  Formula A = FF.atom(Prop::onPort(1));
  Formula B = FF.atom(Prop::onPort(2));
  Formula C = FF.atom(Prop::onPort(3));

  ParseResult P = parseLtl(FF, "port=1 | port=2 & port=3");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.F, FF.disj(A, FF.conj(B, C)));

  P = parseLtl(FF, "port=1 -> F port=2");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.F, FF.implies(A, FF.finally_(B)));

  P = parseLtl(FF, "G (port=1 U port=2)");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.F, FF.globally(FF.until(A, B)));

  P = parseLtl(FF, "!(port=1 & port=2)");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.F, FF.disj(FF.notAtom(Prop::onPort(1)),
                         FF.notAtom(Prop::onPort(2))));
}

TEST(ParserTest, Errors) {
  FormulaFactory FF;
  EXPECT_FALSE(parseLtl(FF, "").ok());
  EXPECT_FALSE(parseLtl(FF, "port=").ok());
  EXPECT_FALSE(parseLtl(FF, "bogus=1").ok());
  EXPECT_FALSE(parseLtl(FF, "(port=1").ok());
  EXPECT_FALSE(parseLtl(FF, "port=1 port=2").ok());
  EXPECT_FALSE(parseLtl(FF, "port ^ 1").ok());
}

TEST(ParserTest, PrinterRoundTrip) {
  FormulaFactory FF;
  Rng R(13);
  for (int I = 0; I != 100; ++I) {
    Formula F = randomFormula(FF, R, 4);
    ParseResult P = parseLtl(FF, printFormula(F));
    ASSERT_TRUE(P.ok()) << printFormula(F) << " :: " << P.Error;
    EXPECT_EQ(P.F, F) << printFormula(F);
  }
}

TEST(ClosureTest, ItemsAreChildrenFirst) {
  FormulaFactory FF;
  Formula F = FF.until(FF.atom(Prop::onPort(1)),
                       FF.conj(FF.atom(Prop::onPort(2)),
                               FF.next(FF.atom(Prop::onPort(3)))));
  Closure Cl(F);
  for (unsigned I = 0; I != Cl.size(); ++I) {
    Formula Item = Cl.item(I);
    if (Item->lhs()) {
      EXPECT_LT(Cl.indexOf(Item->lhs()), I);
    }
    if (Item->rhs()) {
      EXPECT_LT(Cl.indexOf(Item->rhs()), I);
    }
  }
  EXPECT_EQ(Cl.item(Cl.rootIndex()), F);
}

/// The key §5 invariant: walking extend() backwards along a trace computes
/// exactly the formulas the trace satisfies (Lemma 3).
TEST(ClosureTest, ExtendMatchesTraceSemantics) {
  FormulaFactory FF;
  Rng R(14);
  for (int Round = 0; Round != 300; ++Round) {
    Formula F = randomFormula(FF, R, 3);
    Closure Cl(F);
    Trace T = randomTrace(R, 1 + R.nextBelow(5));

    // Label the trace back to front.
    Bitset M = Cl.sinkLabel(Cl.atomBits(T.back()));
    for (size_t I = T.size() - 1; I-- > 0;)
      M = Cl.extend(M, Cl.atomBits(T[I]));

    for (unsigned I = 0; I != Cl.size(); ++I)
      EXPECT_EQ(M.test(I), evalOnTrace(Cl.item(I), T))
          << "subformula " << printFormula(Cl.item(I)) << " of "
          << printFormula(F);
  }
}

TEST(ClosureTest, FollowsAcceptsExtend) {
  FormulaFactory FF;
  Rng R(15);
  for (int Round = 0; Round != 100; ++Round) {
    Formula F = randomFormula(FF, R, 3);
    Closure Cl(F);
    StateInfo A = randomTrace(R, 1)[0];
    StateInfo B = randomTrace(R, 1)[0];
    Bitset MB = Cl.sinkLabel(Cl.atomBits(B));
    Bitset MA = Cl.extend(MB, Cl.atomBits(A));
    EXPECT_TRUE(Cl.follows(MA, MB));
    EXPECT_TRUE(Cl.consistentAt(MA, Cl.atomBits(A)));
    EXPECT_TRUE(Cl.consistentAt(MB, Cl.atomBits(B)));
  }
}

TEST(ClosureTest, SinkLabelIsSelfFollowing) {
  FormulaFactory FF;
  Rng R(16);
  for (int Round = 0; Round != 100; ++Round) {
    Formula F = randomFormula(FF, R, 3);
    Closure Cl(F);
    StateInfo S = randomTrace(R, 1)[0];
    Bitset M = Cl.sinkLabel(Cl.atomBits(S));
    EXPECT_TRUE(Cl.follows(M, M)) << printFormula(F);
  }
}

TEST(PropertiesTest, ReachabilityShape) {
  FormulaFactory FF;
  Formula F = reachabilityProperty(FF, 3, 7);
  // (port=3) -> F (port=7)  ==  !port=3 | F port=7.
  EXPECT_EQ(F, FF.disj(FF.notAtom(Prop::onPort(3)),
                       FF.finally_(FF.atom(Prop::onPort(7)))));
}

TEST(PropertiesTest, ReachabilityOnTraces) {
  FormulaFactory FF;
  Formula F = reachabilityProperty(FF, 3, 7);

  StateInfo AtSrc{0, 3, makeHeader(1, 2)};
  StateInfo Mid{1, 5, makeHeader(1, 2)};
  StateInfo AtDst{2, 7, makeHeader(1, 2)};

  EXPECT_TRUE(evalOnTrace(F, {AtSrc, Mid, AtDst}));
  EXPECT_FALSE(evalOnTrace(F, {AtSrc, Mid}));
  // Vacuous when not starting at the source.
  EXPECT_TRUE(evalOnTrace(F, {Mid, Mid}));
}

TEST(PropertiesTest, WaypointOnTraces) {
  FormulaFactory FF;
  Formula F = waypointProperty(FF, 3, Prop::onSwitch(9), 7);

  StateInfo AtSrc{0, 3, makeHeader(1, 2)};
  StateInfo Way{9, 5, makeHeader(1, 2)};
  StateInfo Other{1, 6, makeHeader(1, 2)};
  StateInfo AtDst{2, 7, makeHeader(1, 2)};

  EXPECT_TRUE(evalOnTrace(F, {AtSrc, Way, AtDst}));
  EXPECT_TRUE(evalOnTrace(F, {AtSrc, Other, Way, Other, AtDst}));
  // Skipping the waypoint violates the property.
  EXPECT_FALSE(evalOnTrace(F, {AtSrc, Other, AtDst}));
  // Never reaching the destination violates it too.
  EXPECT_FALSE(evalOnTrace(F, {AtSrc, Way, Other}));
}

TEST(PropertiesTest, ServiceChainOrder) {
  FormulaFactory FF;
  std::vector<Prop> Chain = {Prop::onSwitch(10), Prop::onSwitch(11)};
  Formula F = serviceChainProperty(FF, 3, Chain, 7);

  StateInfo AtSrc{0, 3, makeHeader(1, 2)};
  StateInfo W1{10, 5, makeHeader(1, 2)};
  StateInfo W2{11, 6, makeHeader(1, 2)};
  StateInfo AtDst{2, 7, makeHeader(1, 2)};

  EXPECT_TRUE(evalOnTrace(F, {AtSrc, W1, W2, AtDst}));
  // Out of order: W2 before W1 is a violation.
  EXPECT_FALSE(evalOnTrace(F, {AtSrc, W2, W1, AtDst}));
  // Skipping W2 is a violation.
  EXPECT_FALSE(evalOnTrace(F, {AtSrc, W1, AtDst}));
}

TEST(PropertiesTest, ClassGuardScopes) {
  FormulaFactory FF;
  TrafficClass C{makeHeader(1, 2), "c"};
  Formula F = reachabilityProperty(FF, 3, 7, classGuard(FF, C));

  // A different class entering at the source port is not constrained.
  StateInfo OtherClassAtSrc{0, 3, makeHeader(5, 6)};
  EXPECT_TRUE(evalOnTrace(F, {OtherClassAtSrc, OtherClassAtSrc}));

  StateInfo AtSrc{0, 3, makeHeader(1, 2)};
  EXPECT_FALSE(evalOnTrace(F, {AtSrc, AtSrc}));
}
