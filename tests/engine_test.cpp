//===- tests/engine_test.cpp - batch-synthesis engine tests ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the SynthEngine and BackendFactory: backend registry
/// behaviour, query accounting across all backends, cross-backend
/// agreement on identical instances, batch determinism across worker
/// counts, portfolio-vs-single-config verdict agreement, and cooperative
/// cancellation.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "mc/BackendFactory.h"
#include "mc/MemoizingChecker.h"
#include "mc/NaiveTraceChecker.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// A small feasible diamond scenario, deterministic per seed.
Scenario smallDiamond(uint64_t Seed,
                      PropertyKind Kind = PropertyKind::Reachability) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(16, 4, 0.2, R);
  std::optional<Scenario> S = makeDiamondScenario(Base, R, Kind);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no diamond";
  return std::move(*S);
}

/// The Fig. 8(h) adversarial instance: infeasible at switch granularity,
/// feasible at rule granularity.
Scenario doubleDiamond(uint64_t Seed) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no double diamond";
  return std::move(*S);
}

/// Replay-checks a report's command sequence against the job's property.
void expectCorrectSequence(const Scenario &S, const SynthReport &Rep) {
  FormulaFactory FF;
  Formula Phi = S.buildProperty(FF);
  EXPECT_TRUE(allIntermediateConfigsHold(S.Topo, S.Initial, S.classes(), Phi,
                                         Rep.Result.Commands))
      << "job " << Rep.JobIndex << " (winner " << Rep.Winner
      << ") produced an unsafe sequence";
  // Rule-granularity replay may order rules differently, so compare the
  // end configuration to the final one semantically (table outputs on the
  // scenario classes), as the synth tests do.
  Config Cur = S.Initial;
  applyCommands(Cur, Rep.Result.Commands);
  for (SwitchId Sw : diffSwitches(Cur, S.Final))
    for (const TrafficClass &C : S.classes())
      for (PortId Pt : S.Topo.switchPorts(Sw))
        EXPECT_EQ(Cur.table(Sw).apply(C.Hdr, Pt),
                  S.Final.table(Sw).apply(C.Hdr, Pt))
            << "sequence does not reach the final configuration";
}

} // namespace

TEST(BackendFactoryTest, BuiltinsRegistered) {
  BackendFactory &F = BackendFactory::instance();
  for (const char *Name : {"incremental", "batch", "symbolic", "hsa",
                           "naive"})
    EXPECT_TRUE(F.known(Name)) << Name;
  EXPECT_TRUE(F.known("Incremental")) << "lookup is case-insensitive";
  EXPECT_FALSE(F.known("nusmv"));

  Scenario S = smallDiamond(1);
  EXPECT_EQ(F.create("no-such-backend", S), nullptr);
  std::unique_ptr<CheckerBackend> B = F.create("batch", S);
  ASSERT_NE(B, nullptr);
  EXPECT_STREQ(B->name(), "Batch");
}

TEST(BackendFactoryTest, CustomRegistration) {
  BackendFactory &F = BackendFactory::instance();
  F.registerBackend("naive-small", [](const Scenario &) {
    return std::make_unique<NaiveTraceChecker>(1u << 16);
  });
  Scenario S = smallDiamond(2);
  std::unique_ptr<CheckerBackend> B = F.create("naive-small", S);
  ASSERT_NE(B, nullptr);
  EXPECT_STREQ(B->name(), "NaiveTrace");
}

// Every backend must count exactly one query per bind() and one per
// recheckAfterUpdate(): the synthesizer's CheckCalls counter increments at
// the same two call sites, so the two totals must match on any run. (The
// batch labeling checker used to double-count rechecks.)
TEST(BackendFactoryTest, QueriesCountedOncePerCall) {
  Scenario S = smallDiamond(3);
  for (const std::string &Name : BackendFactory::instance().names()) {
    std::unique_ptr<CheckerBackend> Checker =
        BackendFactory::instance().create(Name, S);
    ASSERT_NE(Checker, nullptr) << Name;
    FormulaFactory FF;
    SynthResult R = synthesizeUpdate(S, FF, *Checker);
    EXPECT_EQ(Checker->numQueries(), R.Stats.CheckCalls)
        << Name << " miscounts queries";
    EXPECT_GT(Checker->numQueries(), 0u) << Name;
  }
}

TEST(SynthEngineTest, SingleJobSucceedsAndIsCorrect) {
  SynthJob Job;
  Job.Name = "diamond-4";
  Job.S = smallDiamond(4);

  EngineOptions EO;
  EO.NumWorkers = 2;
  SynthEngine Engine(EO);
  BatchReport Rep = Engine.run({Job});
  ASSERT_EQ(Rep.Reports.size(), 1u);
  ASSERT_TRUE(Rep.Reports[0].ok());
  expectCorrectSequence(Job.S, Rep.Reports[0]);
  EXPECT_EQ(Rep.numSucceeded(), 1u);
  EXPECT_GT(Rep.TotalQueries, 0u);
  EXPECT_EQ(Rep.Merged.CheckCalls, Rep.Reports[0].Result.Stats.CheckCalls);
}

// All backends racing over the same instance must agree: every member
// that completes (not cancelled) reports the same feasibility verdict,
// and the winning sequence is correct under the reference checker.
TEST(SynthEngineTest, CrossBackendAgreement) {
  for (uint64_t Seed : {11, 12, 13}) {
    for (PropertyKind Kind :
         {PropertyKind::Reachability, PropertyKind::Waypoint}) {
      SynthJob Job;
      Job.S = smallDiamond(Seed, Kind);
      for (const char *Backend :
           {"incremental", "batch", "symbolic", "hsa", "naive"}) {
        PortfolioMember M;
        M.Backend = Backend;
        Job.Portfolio.push_back(std::move(M));
      }

      SynthEngine Engine;
      BatchReport Rep = Engine.run({Job});
      ASSERT_EQ(Rep.Reports.size(), 1u);
      const SynthReport &R = Rep.Reports[0];
      ASSERT_EQ(R.Members.size(), 5u);
      ASSERT_TRUE(R.ok()) << "diamond scenarios are always feasible";
      expectCorrectSequence(Job.S, R);
      for (const MemberOutcome &O : R.Members) {
        EXPECT_TRUE(O.Error.empty()) << O.Name << ": " << O.Error;
        if (!O.Cancelled) {
          EXPECT_EQ(O.Status, SynthStatus::Success)
              << O.Name << " disagrees on seed " << Seed;
        }
      }
    }
  }
}

// The same batch must yield identical per-job verdicts regardless of how
// many workers execute it, and reports must come back in job order.
TEST(SynthEngineTest, DeterministicAcrossWorkerCounts) {
  std::vector<SynthJob> Jobs;
  for (uint64_t Seed = 20; Seed != 26; ++Seed) {
    SynthJob Job;
    Job.Name = "diamond-" + std::to_string(Seed);
    Job.S = smallDiamond(Seed);
    Jobs.push_back(std::move(Job));
  }
  // Two jobs where switch granularity is infeasible.
  for (uint64_t Seed : {9, 31}) {
    SynthJob Job;
    Job.Name = "double-diamond-" + std::to_string(Seed);
    Job.S = doubleDiamond(Seed);
    Jobs.push_back(std::move(Job));
  }

  std::vector<std::vector<SynthStatus>> PerWorkerVerdicts;
  for (unsigned Workers : {1u, 4u}) {
    EngineOptions EO;
    EO.NumWorkers = Workers;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(Jobs);
    ASSERT_EQ(Rep.Reports.size(), Jobs.size());
    std::vector<SynthStatus> Verdicts;
    for (size_t I = 0; I != Rep.Reports.size(); ++I) {
      EXPECT_EQ(Rep.Reports[I].JobIndex, I) << "reports out of job order";
      Verdicts.push_back(Rep.Reports[I].Result.Status);
    }
    PerWorkerVerdicts.push_back(std::move(Verdicts));
  }
  EXPECT_EQ(PerWorkerVerdicts[0], PerWorkerVerdicts[1])
      << "worker count changed a verdict";
}

// Portfolio mode must agree with single-config runs: its verdict equals
// the best verdict any member achieves alone. On the Fig. 8(h) instance
// the switch-granularity member alone proves Impossible while the
// rule-granularity member succeeds — the portfolio must return Success.
TEST(SynthEngineTest, PortfolioAgreesWithSingleConfigRuns) {
  Scenario S = doubleDiamond(9);

  SynthOptions SwitchGran;
  SynthOptions RuleGran;
  RuleGran.RuleGranularity = true;

  // Single-config runs.
  std::vector<SynthStatus> Alone;
  for (const SynthOptions &O : {SwitchGran, RuleGran}) {
    SynthJob Job;
    Job.S = S;
    PortfolioMember M;
    M.Opts = O;
    Job.Portfolio.push_back(std::move(M));
    SynthEngine Engine;
    BatchReport Rep = Engine.run({Job});
    Alone.push_back(Rep.Reports[0].Result.Status);
  }
  EXPECT_EQ(Alone[0], SynthStatus::Impossible)
      << "double diamond should be switch-granularity infeasible";
  EXPECT_EQ(Alone[1], SynthStatus::Success);

  // The racing portfolio: must succeed via the rule-granularity member.
  SynthJob Job;
  Job.S = S;
  Job.Portfolio = defaultPortfolio();
  SynthEngine Engine;
  BatchReport Rep = Engine.run({Job});
  const SynthReport &R = Rep.Reports[0];
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Winner, "incremental/rule");
  expectCorrectSequence(S, R);
}

TEST(SynthEngineTest, BatchStopTokenAbortsRemainingJobs) {
  std::vector<SynthJob> Jobs(4);
  for (size_t I = 0; I != Jobs.size(); ++I)
    Jobs[I].S = smallDiamond(40 + I);

  StopSource Stop;
  Stop.requestStop(); // Fired before the batch starts: nothing may run.
  EngineOptions EO;
  EO.NumWorkers = 2;
  EO.Stop = Stop.token();
  SynthEngine Engine(EO);
  BatchReport Rep = Engine.run(Jobs);
  ASSERT_EQ(Rep.Reports.size(), Jobs.size());
  for (const SynthReport &R : Rep.Reports)
    EXPECT_EQ(R.Result.Status, SynthStatus::Aborted);
  EXPECT_EQ(Rep.TotalQueries, 0u);
}

// A batch containing duplicate scenarios must report engine-cache hits
// and perform fewer queries than the same batch with caching disabled,
// while returning identical per-job verdicts and command sequences.
TEST(SynthEngineTest, DuplicateScenariosServedFromResultCache) {
  std::vector<SynthJob> Jobs;
  for (uint64_t Seed : {50, 51, 52}) {
    SynthJob Job;
    Job.Name = "diamond-" + std::to_string(Seed);
    Job.S = smallDiamond(Seed);
    Jobs.push_back(Job);
    // A digest-identical duplicate under a different display name.
    Job.Name += "-dup";
    Jobs.push_back(std::move(Job));
  }

  EngineOptions Cold;
  Cold.NumWorkers = 2;
  Cold.CacheResults = false;
  SynthEngine ColdEngine(Cold);
  BatchReport ColdRep = ColdEngine.run(Jobs);
  EXPECT_EQ(ColdRep.EngineCacheHits, 0u);

  EngineOptions Warm;
  Warm.NumWorkers = 1; // Deterministic execution order: dup follows prime.
  SynthEngine WarmEngine(Warm);
  BatchReport WarmRep = WarmEngine.run(Jobs);

  EXPECT_EQ(WarmRep.EngineCacheHits, 3u);
  EXPECT_EQ(WarmRep.EngineCacheMisses, 3u);
  EXPECT_LT(WarmRep.TotalQueries, ColdRep.TotalQueries);

  ASSERT_EQ(WarmRep.Reports.size(), ColdRep.Reports.size());
  for (size_t I = 0; I != WarmRep.Reports.size(); ++I) {
    const SynthReport &W = WarmRep.Reports[I];
    const SynthReport &C = ColdRep.Reports[I];
    EXPECT_EQ(W.Result.Status, C.Result.Status) << "job " << I;
    EXPECT_EQ(W.Result.Commands.size(), C.Result.Commands.size())
        << "job " << I;
    EXPECT_EQ(W.JobName, Jobs[I].Name);
    if (W.FromCache) {
      EXPECT_TRUE(W.Members.empty());
    }
    if (W.ok())
      expectCorrectSequence(Jobs[I].S, W);
  }

  // The cache persists across run() calls on the same engine: replaying
  // the batch is all hits.
  BatchReport Replay = WarmEngine.run(Jobs);
  EXPECT_EQ(Replay.EngineCacheHits, Jobs.size());
  EXPECT_EQ(Replay.TotalQueries, 0u);
  EXPECT_GT(WarmEngine.resultCache()->stats().Hits, 0u);
}

// memo:<backend> must agree with <backend> on the verdict for every
// backend in the registry when raced by the engine.
TEST(SynthEngineTest, MemoBackendsAgreeWithPlainOnes) {
  MemoizingChecker::processCache()->clear();
  for (uint64_t Seed : {60, 61}) {
    Scenario S = smallDiamond(Seed);
    for (const std::string &Name : BackendFactory::instance().names()) {
      SynthStatus Verdicts[2];
      for (unsigned Memo = 0; Memo != 2; ++Memo) {
        SynthJob Job;
        Job.S = S;
        PortfolioMember M;
        M.Backend = Memo ? "memo:" + Name : Name;
        Job.Portfolio.push_back(std::move(M));
        EngineOptions EO;
        EO.NumWorkers = 1;
        SynthEngine Engine(EO);
        BatchReport Rep = Engine.run({Job});
        EXPECT_TRUE(Rep.Reports[0].Members[0].Error.empty())
            << Rep.Reports[0].Members[0].Error;
        Verdicts[Memo] = Rep.Reports[0].Result.Status;
        if (Memo) {
          // Cache-hit/miss counters surface in the merged batch stats.
          EXPECT_GT(Rep.Merged.CacheHits + Rep.Merged.CacheMisses, 0u)
              << Name;
        }
      }
      EXPECT_EQ(Verdicts[0], Verdicts[1]) << Name << " seed " << Seed;
    }
  }
}

namespace {

/// A backend that blocks in bind() until released — gives the async
/// tests deterministic control over when a job occupies a worker.
class GateChecker : public CheckerBackend {
public:
  explicit GateChecker(std::shared_ptr<std::atomic<bool>> Open)
      : Open(std::move(Open)) {}

  CheckResult bindImpl(KripkeStructure &, Formula) override {
    while (!Open->load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }
  CheckResult recheckImpl(const UpdateInfo &) override {
    ++Queries;
    CheckResult R;
    R.Holds = true; // Accept everything: the search succeeds immediately.
    return R;
  }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return false; }
  const char *name() const override { return "Gate"; }

private:
  std::shared_ptr<std::atomic<bool>> Open;
};

} // namespace

// Async front-end: submit returns immediately, poll observes completion,
// wait returns the report, and handles outlive batches.
TEST(SynthEngineTest, AsyncSubmitPollWait) {
  auto Open = std::make_shared<std::atomic<bool>>(false);
  BackendFactory::instance().registerBackend(
      "gate-async", [Open](const Scenario &) {
        return std::make_unique<GateChecker>(Open);
      });

  EngineOptions EO;
  EO.NumWorkers = 1;
  SynthEngine Engine(EO);

  SynthJob Gated;
  Gated.Name = "gated";
  Gated.S = smallDiamond(70);
  Gated.Portfolio.emplace_back();
  Gated.Portfolio[0].Backend = "gate-async";

  SynthJob Plain;
  Plain.Name = "plain";
  Plain.S = smallDiamond(71);

  JobHandle GatedHandle = Engine.submit(Gated);
  JobHandle PlainHandle = Engine.submit(Plain);
  ASSERT_TRUE(GatedHandle.valid());
  ASSERT_TRUE(PlainHandle.valid());
  EXPECT_FALSE(JobHandle().valid());

  // One worker, blocked in the gate: nothing can be done yet.
  EXPECT_FALSE(GatedHandle.done());
  EXPECT_FALSE(PlainHandle.done());

  Open->store(true);
  const SynthReport &GatedRep = GatedHandle.wait();
  EXPECT_EQ(GatedRep.Result.Status, SynthStatus::Success);
  EXPECT_EQ(GatedRep.JobName, "gated");
  const SynthReport &PlainRep = PlainHandle.wait();
  EXPECT_EQ(PlainRep.Result.Status, SynthStatus::Success);
  EXPECT_TRUE(GatedHandle.done());
}

// Cancellation semantics: a queued job cancelled before a worker reaches
// it aborts without running; a running job aborts at its next
// checkpoint; cancelling a finished job is a no-op.
TEST(SynthEngineTest, AsyncCancelQueuedAndRunningJobs) {
  auto Open = std::make_shared<std::atomic<bool>>(false);
  BackendFactory::instance().registerBackend(
      "gate-cancel", [Open](const Scenario &) {
        return std::make_unique<GateChecker>(Open);
      });

  EngineOptions EO;
  EO.NumWorkers = 1;
  SynthEngine Engine(EO);

  SynthJob Running;
  Running.Name = "running";
  Running.S = smallDiamond(72);
  Running.Portfolio.emplace_back();
  Running.Portfolio[0].Backend = "gate-cancel";

  SynthJob Queued;
  Queued.Name = "queued";
  Queued.S = smallDiamond(73);

  JobHandle RunningHandle = Engine.submit(Running);
  JobHandle QueuedHandle = Engine.submit(Queued);

  // Cancel both while the single worker is blocked inside the first.
  QueuedHandle.cancel();
  RunningHandle.cancel();
  Open->store(true);

  // The running job passes its post-bind stop checkpoint and aborts; the
  // queued job is reported aborted without ever running.
  EXPECT_EQ(RunningHandle.wait().Result.Status, SynthStatus::Aborted);
  const SynthReport &QueuedRep = QueuedHandle.wait();
  EXPECT_EQ(QueuedRep.Result.Status, SynthStatus::Aborted);
  EXPECT_TRUE(QueuedRep.Members.empty()) << "cancelled before running";
  EXPECT_FALSE(QueuedRep.FromCache);
  QueuedHandle.cancel(); // No-op on a finished job.

  // An aborted job must not poison the result cache: resubmitting the
  // same scenario (uncancelled) runs it for real.
  JobHandle Retry = Engine.submit(Queued);
  EXPECT_EQ(Retry.wait().Result.Status, SynthStatus::Success);
  EXPECT_FALSE(Retry.wait().FromCache);
}

TEST(StopTokenTest, Basics) {
  StopToken Empty;
  EXPECT_FALSE(Empty.possible());
  EXPECT_FALSE(Empty.stopRequested());

  StopSource Src;
  StopToken T = Src.token();
  EXPECT_TRUE(T.possible());
  EXPECT_FALSE(T.stopRequested());

  StopToken Merged = anyToken(Empty, T);
  StopSource Other;
  StopToken Wide = anyToken(Merged, Other.token());
  EXPECT_FALSE(Wide.stopRequested());
  Src.requestStop();
  EXPECT_TRUE(T.stopRequested());
  EXPECT_TRUE(Merged.stopRequested());
  EXPECT_TRUE(Wide.stopRequested());
  EXPECT_FALSE(Other.stopRequested());
}
