//===- tests/net_test.cpp - network model tests ----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "net/Config.h"
#include "net/Rule.h"
#include "net/Topology.h"

#include <gtest/gtest.h>

using namespace netupd;

TEST(PacketTest, HeaderAccessors) {
  Header H = makeHeader(1, 2, 3);
  EXPECT_EQ(H.get(Field::Src), 1u);
  EXPECT_EQ(H.get(Field::Dst), 2u);
  EXPECT_EQ(H.get(Field::Typ), 3u);
  H.set(Field::Typ, 9);
  EXPECT_EQ(H.get(Field::Typ), 9u);
  EXPECT_EQ(H.str(), "{src=1, dst=2, typ=9}");
}

TEST(PacketTest, FieldNames) {
  EXPECT_STREQ(fieldName(Field::Src), "src");
  EXPECT_EQ(fieldFromName("dst"), Field::Dst);
  EXPECT_FALSE(fieldFromName("nope").has_value());
}

TEST(PatternTest, WildcardMatchesEverything) {
  Pattern P = Pattern::wildcard();
  EXPECT_TRUE(P.matches(makeHeader(1, 2), 0));
  EXPECT_TRUE(P.matches(makeHeader(9, 9, 9), 77));
}

TEST(PatternTest, FieldAndPortConstraints) {
  Pattern P = Pattern::onField(Field::Dst, 5);
  EXPECT_TRUE(P.matches(makeHeader(0, 5), 3));
  EXPECT_FALSE(P.matches(makeHeader(0, 6), 3));
  P.InPort = 3;
  EXPECT_TRUE(P.matches(makeHeader(0, 5), 3));
  EXPECT_FALSE(P.matches(makeHeader(0, 5), 4));
}

TEST(TableTest, HighestPriorityWins) {
  Table T;
  Rule Low;
  Low.Priority = 1;
  Low.Pat = Pattern::wildcard();
  Low.Actions.push_back(Action::forward(1));
  Rule High;
  High.Priority = 5;
  High.Pat = Pattern::onField(Field::Dst, 2);
  High.Actions.push_back(Action::forward(2));
  T.addRule(Low);
  T.addRule(High);

  std::vector<Output> Outs = T.apply(makeHeader(1, 2), 0);
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].OutPort, 2u);

  // Non-matching header falls back to the wildcard rule.
  Outs = T.apply(makeHeader(1, 3), 0);
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].OutPort, 1u);
}

TEST(TableTest, NoMatchDrops) {
  Table T;
  Rule R;
  R.Priority = 1;
  R.Pat = Pattern::onField(Field::Dst, 7);
  R.Actions.push_back(Action::forward(1));
  T.addRule(R);
  EXPECT_TRUE(T.apply(makeHeader(0, 0), 0).empty());
}

TEST(TableTest, SetFieldThenForward) {
  Table T;
  Rule R;
  R.Priority = 1;
  R.Pat = Pattern::wildcard();
  R.Actions.push_back(Action::setField(Field::Typ, 1));
  R.Actions.push_back(Action::forward(4));
  T.addRule(R);
  std::vector<Output> Outs = T.apply(makeHeader(1, 2, 0), 0);
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Hdr.get(Field::Typ), 1u);
  EXPECT_EQ(Outs[0].OutPort, 4u);
}

TEST(TableTest, MulticastEmitsAllForwards) {
  Table T;
  Rule R;
  R.Priority = 1;
  R.Pat = Pattern::wildcard();
  R.Actions.push_back(Action::forward(1));
  R.Actions.push_back(Action::forward(2));
  T.addRule(R);
  EXPECT_EQ(T.apply(makeHeader(0, 0), 0).size(), 2u);
}

TEST(TableTest, RemoveRule) {
  Table T;
  Rule R;
  R.Priority = 1;
  R.Pat = Pattern::wildcard();
  R.Actions.push_back(Action::forward(1));
  T.addRule(R);
  T.removeRule(0);
  EXPECT_TRUE(T.empty());
}

TEST(TopologyTest, PortsAreGloballyUnique) {
  Topology T;
  SwitchId A = T.addSwitch("a");
  SwitchId B = T.addSwitch("b");
  auto [PA, PB] = T.connectSwitches(A, B);
  EXPECT_NE(PA, PB);
  EXPECT_EQ(T.portOwner(PA), A);
  EXPECT_EQ(T.portOwner(PB), B);
  EXPECT_EQ(T.numPorts(), 2u);
}

TEST(TopologyTest, LinkLookup) {
  Topology T;
  SwitchId A = T.addSwitch("a");
  SwitchId B = T.addSwitch("b");
  auto [PA, PB] = T.connectSwitches(A, B);
  const Location *To = T.linkFrom(A, PA);
  ASSERT_NE(To, nullptr);
  EXPECT_EQ(To->Switch, B);
  EXPECT_EQ(To->Port, PB);
  EXPECT_EQ(T.linkFrom(A, PB), nullptr);
}

TEST(TopologyTest, HostAttachment) {
  Topology T;
  SwitchId A = T.addSwitch("a");
  HostId H = T.addHost("h");
  PortId P = T.attachHost(H, A);
  EXPECT_EQ(T.hostAttachment(H), P);
  ASSERT_EQ(T.ingressLocations().size(), 1u);
  EXPECT_EQ(T.ingressLocations()[0].Port, P);
  ASSERT_EQ(T.egressLocations().size(), 1u);
  EXPECT_EQ(T.egressLocations()[0].Port, P);
}

TEST(ConfigTest, DiffSwitches) {
  Topology T;
  SwitchId A = T.addSwitch("a");
  SwitchId B = T.addSwitch("b");
  T.connectSwitches(A, B);
  Config C1(2), C2(2);
  EXPECT_TRUE(diffSwitches(C1, C2).empty());

  Rule R;
  R.Priority = 1;
  R.Pat = Pattern::wildcard();
  R.Actions.push_back(Action::forward(0));
  Table Tb;
  Tb.addRule(R);
  C2.setTable(B, Tb);
  std::vector<SwitchId> D = diffSwitches(C1, C2);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0], B);
}

TEST(ConfigTest, InstallPathRoutesEndToEnd) {
  // h0 - s0 - s1 - s2 - h1: install the path and walk a packet along it.
  Topology T;
  SwitchId S0 = T.addSwitch("s0");
  SwitchId S1 = T.addSwitch("s1");
  SwitchId S2 = T.addSwitch("s2");
  T.connectSwitches(S0, S1);
  T.connectSwitches(S1, S2);
  HostId H0 = T.addHost("h0");
  HostId H1 = T.addHost("h1");
  PortId In = T.attachHost(H0, S0);
  PortId Out = T.attachHost(H1, S2);

  TrafficClass C{makeHeader(1, 2), "c"};
  Config Cfg(3);
  installPath(T, Cfg, C, {S0, S1, S2}, H1);
  EXPECT_EQ(Cfg.totalRules(), 3u);

  // Walk: arrive at S0 from the host, follow the forwards to the egress.
  Header H = C.Hdr;
  PortId Port = In;
  SwitchId Sw = S0;
  for (int Hop = 0; Hop != 3; ++Hop) {
    std::vector<Output> Outs = Cfg.table(Sw).apply(H, Port);
    ASSERT_EQ(Outs.size(), 1u);
    const Location *Next = T.linkFrom(Sw, Outs[0].OutPort);
    ASSERT_NE(Next, nullptr);
    if (Next->isHost()) {
      EXPECT_EQ(Next->Host, H1);
      EXPECT_EQ(Outs[0].OutPort, Out);
      return;
    }
    Sw = Next->Switch;
    Port = Next->Port;
  }
  FAIL() << "packet did not reach the destination host";
}

TEST(ConfigTest, InstallPathIsIdempotentPerClass) {
  Topology T;
  SwitchId S0 = T.addSwitch("s0");
  SwitchId S1 = T.addSwitch("s1");
  T.connectSwitches(S0, S1);
  HostId H1 = T.addHost("h1");
  T.attachHost(H1, S1);

  TrafficClass C{makeHeader(1, 2), "c"};
  Config Cfg(2);
  installPath(T, Cfg, C, {S0, S1}, H1);
  installPath(T, Cfg, C, {S0, S1}, H1);
  EXPECT_EQ(Cfg.totalRules(), 2u); // Re-install replaces, not duplicates.
}
