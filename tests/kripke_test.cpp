//===- tests/kripke_test.cpp - Kripke structure tests ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "kripke/Kripke.h"
#include "topo/Fig1.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// The switch sequence of a Kripke trace, dropping repeated entries at the
/// same switch (arrival + egress).
std::vector<SwitchId> switchPath(const KripkeStructure &K,
                                 const std::vector<StateId> &T) {
  std::vector<SwitchId> Out;
  for (StateId S : T)
    if (Out.empty() || Out.back() != K.stateSwitch(S))
      Out.push_back(K.stateSwitch(S));
  return Out;
}

} // namespace

TEST(KripkeTest, Fig1RedConfigTraces) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});

  EXPECT_TRUE(K.findForwardingLoop() == std::nullopt);

  // The trace entering at H1 follows the red path to H3's egress. (A
  // packet of this class injected at H3's own attachment is delivered
  // immediately — also an end-to-end trace, so filter by entry port.)
  std::vector<std::vector<StateId>> Traces = K.enumerateTraces(1000);
  std::vector<SwitchId> RedPath = {N.T[0], N.A[0], N.C1, N.A[2], N.T[2]};
  unsigned FromH1 = 0;
  for (const auto &T : Traces) {
    if (K.stateRole(T.back()) != KripkeStructure::Role::Egress)
      continue;
    if (K.statePort(T.front()) != N.srcPort())
      continue;
    ++FromH1;
    EXPECT_EQ(switchPath(K, T), RedPath);
    EXPECT_EQ(K.statePort(T.back()), N.dstPort());
  }
  EXPECT_EQ(FromH1, 1u);
}

TEST(KripkeTest, InitialStatesCoverIngresses) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  // Four hosts, one class: four initial states.
  EXPECT_EQ(K.initialStates().size(), 4u);
  for (StateId S : K.initialStates())
    EXPECT_EQ(K.stateRole(S), KripkeStructure::Role::Arrival);
}

TEST(KripkeTest, CompleteAndSinksSelfLoop) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  for (StateId S = 0; S != K.numStates(); ++S) {
    ASSERT_FALSE(K.succs(S).empty()) << K.stateName(S);
    if (K.isSink(S))
      EXPECT_EQ(K.succs(S)[0], S);
    else
      EXPECT_EQ(std::count(K.succs(S).begin(), K.succs(S).end(), S), 0)
          << K.stateName(S);
  }
}

TEST(KripkeTest, PredsMirrorSuccs) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  for (StateId S = 0; S != K.numStates(); ++S)
    for (StateId Next : K.succs(S))
      EXPECT_NE(std::find(K.preds(Next).begin(), K.preds(Next).end(), S),
                K.preds(Next).end());
}

TEST(KripkeTest, TopoOrderPutsSuccessorsFirst) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  std::vector<StateId> Order = K.topoOrder();
  ASSERT_EQ(Order.size(), K.numStates());
  std::vector<unsigned> Pos(K.numStates());
  for (unsigned I = 0; I != Order.size(); ++I)
    Pos[Order[I]] = I;
  for (StateId S = 0; S != K.numStates(); ++S)
    for (StateId Next : K.succs(S)) {
      if (Next != S) {
        EXPECT_LT(Pos[Next], Pos[S]);
      }
    }
}

TEST(KripkeTest, ForwardingLoopDetected) {
  // Two switches forwarding a class to each other forever.
  Topology T;
  SwitchId A = T.addSwitch("a");
  SwitchId B = T.addSwitch("b");
  auto [PA, PB] = T.connectSwitches(A, B);
  HostId H = T.addHost("h");
  T.attachHost(H, A);

  Config Cfg(2);
  Rule RA;
  RA.Priority = 1;
  RA.Pat = Pattern::wildcard();
  RA.Actions.push_back(Action::forward(PA));
  Table TA;
  TA.addRule(RA);
  Cfg.setTable(A, TA);

  Rule RB;
  RB.Priority = 1;
  RB.Pat = Pattern::wildcard();
  RB.Actions.push_back(Action::forward(PB));
  Table TB;
  TB.addRule(RB);
  Cfg.setTable(B, TB);

  KripkeStructure K(T, Cfg, {TrafficClass{makeHeader(1, 2), "c"}});
  auto Loop = K.findForwardingLoop();
  ASSERT_TRUE(Loop.has_value());
  EXPECT_GE(Loop->size(), 2u);
  // The cycle stays within switches A and B.
  for (StateId S : *Loop)
    EXPECT_TRUE(K.stateSwitch(S) == A || K.stateSwitch(S) == B);
}

TEST(KripkeTest, SwitchUpdateChangesEdgesAndUndoRestores) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});

  // Snapshot all successor lists.
  std::vector<std::vector<StateId>> Before;
  for (StateId S = 0; S != K.numStates(); ++S)
    Before.push_back(K.succs(S));

  // Update A1 to the green table (forward to C2 instead of C1).
  std::vector<StateId> Changed;
  KripkeStructure::UndoRecord Undo =
      K.applySwitchUpdate(N.A[0], N.Green.table(N.A[0]), Changed);
  EXPECT_FALSE(Changed.empty());
  for (StateId S : Changed)
    EXPECT_EQ(K.stateSwitch(S), N.A[0]);
  EXPECT_EQ(K.config().table(N.A[0]), N.Green.table(N.A[0]));

  K.undo(Undo);
  EXPECT_EQ(K.config().table(N.A[0]), N.Red.table(N.A[0]));
  for (StateId S = 0; S != K.numStates(); ++S)
    EXPECT_EQ(K.succs(S), Before[S]) << K.stateName(S);
}

// The buffer-reusing overload pair the DFS hot path runs on: apply into
// a caller-owned UndoRecord, undo(&&) donates the buffers back, and the
// next apply at the same depth reuses them — with results identical to
// the returning overload at every step.
TEST(KripkeTest, ReusedUndoRecordMatchesReturningOverload) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});

  std::vector<std::vector<StateId>> Before;
  for (StateId S = 0; S != K.numStates(); ++S)
    Before.push_back(K.succs(S));

  KripkeStructure::UndoRecord Undo;
  std::vector<StateId> Changed;
  for (int Round = 0; Round != 3; ++Round) {
    // The reuse overload APPENDS to Changed (recomputeSwitch's
    // contract); the caller clears between edges, as the DFS does.
    Changed.clear();
    K.applySwitchUpdate(N.A[0], N.Green.table(N.A[0]), Changed, Undo);
    EXPECT_FALSE(Changed.empty());
    for (StateId S : Changed)
      EXPECT_EQ(K.stateSwitch(S), N.A[0]);
    EXPECT_EQ(K.config().table(N.A[0]), N.Green.table(N.A[0]));

    K.undo(std::move(Undo));
    EXPECT_EQ(K.config().table(N.A[0]), N.Red.table(N.A[0]));
    for (StateId S = 0; S != K.numStates(); ++S)
      EXPECT_EQ(K.succs(S), Before[S])
          << "round " << Round << ": " << K.stateName(S);
  }
}

TEST(KripkeTest, UpdateOfIdenticalTableChangesNothing) {
  Fig1Network N = buildFig1();
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  std::vector<StateId> Changed;
  KripkeStructure::UndoRecord Undo =
      K.applySwitchUpdate(N.A[0], N.Red.table(N.A[0]), Changed);
  EXPECT_TRUE(Changed.empty());
  K.undo(Undo);
}

TEST(KripkeTest, MultipleClassesAreDisjoint) {
  Fig1Network N = buildFig1();
  TrafficClass Other{makeHeader(3, 1), "h3->h1"};
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3, Other});
  for (StateId S = 0; S != K.numStates(); ++S)
    for (StateId Next : K.succs(S))
      EXPECT_EQ(K.stateClass(S), K.stateClass(Next));
}

TEST(KripkeTest, RandomConfigsNeverLoseCompleteness) {
  Rng R(77);
  for (int Round = 0; Round != 30; ++Round) {
    RandomNet Net = randomNet(R, 6);
    Config Cfg = randomConfig(Net, R);
    KripkeStructure K(Net.Topo, Cfg, Net.Classes);
    for (StateId S = 0; S != K.numStates(); ++S)
      EXPECT_FALSE(K.succs(S).empty());
  }
}
