//===- tests/shard_test.cpp - sharded-search tests -------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the prefix-split sharded DFS (SynthOptions::Shards):
/// verdict/sequence-class agreement with the sequential search across
/// the whole backend registry, graceful degradation without a checker
/// factory, sibling-shard cancellation on the first found sequence,
/// per-shard statistics merging, and the engine's IntraJobShards
/// default.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "mc/BackendFactory.h"
#include "mc/LabelingChecker.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// A feasible diamond scenario with at least \p MinUpdates updating
/// switches, so a Shards-wide split has real work units. Deterministic:
/// scans seeds from \p FirstSeed upward.
Scenario diamondWithUpdates(uint64_t FirstSeed, unsigned MinUpdates,
                            PropertyKind Kind = PropertyKind::Reachability) {
  for (uint64_t Seed = FirstSeed; Seed != FirstSeed + 64; ++Seed) {
    Rng R(Seed);
    Topology Base = buildSmallWorld(24, 4, 0.2, R);
    std::optional<Scenario> S = makeDiamondScenario(Base, R, Kind);
    if (S && numUpdatingSwitches(*S) >= MinUpdates)
      return std::move(*S);
  }
  ADD_FAILURE() << "no diamond with >= " << MinUpdates
                << " updating switches from seed " << FirstSeed;
  return Scenario{};
}

/// The Fig. 8(h) instance: switch-granularity infeasible, rule feasible.
Scenario doubleDiamond(uint64_t Seed) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no double diamond";
  return std::move(*S);
}

/// Replay-checks a successful result: every intermediate configuration
/// satisfies the property, and the end configuration is semantically the
/// final one — the "same sequence class" notion the sharded search
/// guarantees (the exact sequence may differ run to run).
void expectCorrectSequence(const Scenario &S, const SynthResult &Res) {
  FormulaFactory FF;
  Formula Phi = S.buildProperty(FF);
  EXPECT_TRUE(allIntermediateConfigsHold(S.Topo, S.Initial, S.classes(), Phi,
                                         Res.Commands))
      << "sharded search produced an unsafe sequence";
  Config Cur = S.Initial;
  applyCommands(Cur, Res.Commands);
  for (SwitchId Sw : diffSwitches(Cur, S.Final))
    for (const TrafficClass &C : S.classes())
      for (PortId Pt : S.Topo.switchPorts(Sw))
        EXPECT_EQ(Cur.table(Sw).apply(C.Hdr, Pt),
                  S.Final.table(Sw).apply(C.Hdr, Pt))
            << "sequence does not reach the final configuration";
}

/// Runs one backend over \p S sequentially and with \p Shards shards
/// (portfolio-disabled: a single-member job) and returns both statuses.
std::pair<SynthStatus, SynthStatus>
runBothWays(const Scenario &S, const std::string &Backend, unsigned Shards,
            bool RuleGranularity = false) {
  SynthStatus Out[2] = {SynthStatus::Aborted, SynthStatus::Aborted};
  for (unsigned Sharded = 0; Sharded != 2; ++Sharded) {
    SynthJob Job;
    Job.S = S;
    PortfolioMember M;
    M.Backend = Backend;
    M.Opts.RuleGranularity = RuleGranularity;
    M.Opts.Shards = Sharded ? Shards : 1;
    Job.Portfolio.push_back(std::move(M));

    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.CacheResults = false; // Compare real runs, not cached replays.
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run({Job});
    const SynthReport &R = Rep.Reports[0];
    EXPECT_TRUE(R.Members[0].Error.empty()) << R.Members[0].Error;
    Out[Sharded] = R.Result.Status;
    if (R.ok())
      expectCorrectSequence(S, R.Result);
  }
  return {Out[0], Out[1]};
}

} // namespace

// Acceptance: with shards > 1 on a portfolio-disabled job, every
// registered backend returns the same verdict (and a correct sequence of
// the same class) as the sequential search.
TEST(ShardedSearchTest, MatchesSequentialAcrossBackendRegistry) {
  Scenario S = diamondWithUpdates(100, 4);
  for (const std::string &Name : BackendFactory::instance().names()) {
    auto [Seq, Sharded] = runBothWays(S, Name, 4);
    EXPECT_EQ(Seq, SynthStatus::Success) << Name;
    EXPECT_EQ(Seq, Sharded) << Name << ": shard count changed the verdict";
  }
  // The memoizing decorator composes with sharding: every shard owns a
  // private decorator over the shared check cache.
  auto [Seq, Sharded] = runBothWays(S, "memo:incremental", 4);
  EXPECT_EQ(Seq, SynthStatus::Success);
  EXPECT_EQ(Seq, Sharded);
}

// Infeasibility verdicts must also be scheduling-independent: the
// switch-granularity double diamond proves Impossible under any shard
// count, and the rule-granularity search still succeeds.
TEST(ShardedSearchTest, InfeasibleVerdictsSurviveSharding) {
  Scenario S = doubleDiamond(9);
  for (const char *Backend : {"incremental", "batch"}) {
    auto [Seq, Sharded] = runBothWays(S, Backend, 3);
    EXPECT_EQ(Seq, SynthStatus::Impossible) << Backend;
    EXPECT_EQ(Seq, Sharded) << Backend;
  }
  auto [Seq, Sharded] =
      runBothWays(S, "incremental", 3, /*RuleGranularity=*/true);
  EXPECT_EQ(Seq, SynthStatus::Success);
  EXPECT_EQ(Seq, Sharded);
}

// Shards > 1 without a ShardCheckerFactory must degrade to the classic
// sequential search, not fail.
TEST(ShardedSearchTest, NoFactoryDegradesToSequential) {
  Scenario S = diamondWithUpdates(200, 3);
  LabelingChecker Checker(LabelingChecker::Mode::Incremental);
  FormulaFactory FF;
  SynthOptions Opts;
  Opts.Shards = 8; // No factory set.
  SynthResult Res = synthesizeUpdate(S, FF, Checker, Opts);
  ASSERT_EQ(Res.Status, SynthStatus::Success);
  expectCorrectSequence(S, Res);
  EXPECT_EQ(Res.Stats.CheckCalls, Checker.numQueries())
      << "sequential degradation must keep single-checker accounting";
}

namespace {

/// A checker that accepts every configuration, optionally blocking each
/// call until a shared gate opens; used to control shard interleavings
/// deterministically.
class GatedAcceptAll : public CheckerBackend {
public:
  GatedAcceptAll(std::shared_ptr<std::atomic<bool>> Gate,
                 std::shared_ptr<std::atomic<unsigned>> Count)
      : Gate(std::move(Gate)), Count(std::move(Count)) {}

  CheckResult bindImpl(KripkeStructure &, Formula) override { return serve(); }
  CheckResult recheckImpl(const UpdateInfo &) override {
    return serve();
  }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return false; }
  const char *name() const override { return "GatedAcceptAll"; }

private:
  CheckResult serve() {
    if (Gate)
      while (!Gate->load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Queries;
    Count->fetch_add(1);
    CheckResult R;
    R.Holds = true;
    return R;
  }

  std::shared_ptr<std::atomic<bool>> Gate; // Null: never blocks.
  std::shared_ptr<std::atomic<unsigned>> Count;
};

} // namespace

// The Found token: the first shard to complete a sequence cancels its
// siblings. The siblings here are parked behind a gate inside bind();
// once released — after the primary shard has already won — they must
// observe the cancellation and stop without pulling a single work unit.
TEST(ShardedSearchTest, WinnerCancelsSiblingShards) {
  Scenario S = diamondWithUpdates(300, 6);
  unsigned NumOps = numUpdatingSwitches(S);
  ASSERT_GE(NumOps, 6u);

  auto Gate = std::make_shared<std::atomic<bool>>(false);
  auto PrimaryCount = std::make_shared<std::atomic<unsigned>>(0);

  std::mutex SiblingM;
  std::vector<std::shared_ptr<std::atomic<unsigned>>> SiblingCounts;

  GatedAcceptAll Primary(nullptr, PrimaryCount);
  SynthOptions Opts;
  Opts.Shards = 3;
  Opts.WaitRemoval = false; // Keep the command count exactly NumOps.
  Opts.ShardCheckerFactory = [&]() -> std::unique_ptr<CheckerBackend> {
    auto Count = std::make_shared<std::atomic<unsigned>>(0);
    {
      std::lock_guard<std::mutex> Lock(SiblingM);
      SiblingCounts.push_back(Count);
    }
    return std::make_unique<GatedAcceptAll>(Gate, Count);
  };

  SynthResult Res;
  std::thread Runner([&] {
    FormulaFactory FF;
    Res = synthesizeUpdate(S, FF, Primary, Opts);
  });

  // The ungated primary accepts everything: its first unit dives straight
  // to a full sequence in bind + NumOps queries, then records the win.
  for (unsigned I = 0; I != 10000 && PrimaryCount->load() < NumOps + 1; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  bool PrimaryFinished = PrimaryCount->load() == NumOps + 1;
  if (PrimaryFinished) {
    // Give the win ample time to propagate to the Found token before
    // releasing the parked siblings.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  // Open the gate and join before any assertion can exit the test body:
  // returning with Runner joinable would std::terminate the process.
  Gate->store(true);
  Runner.join();
  ASSERT_TRUE(PrimaryFinished) << "primary did not finish in time";

  ASSERT_EQ(Res.Status, SynthStatus::Success);
  unsigned Updates = 0;
  for (const Command &C : Res.Commands)
    Updates += C.K == Command::Kind::Update;
  EXPECT_EQ(Updates, NumOps);

  ASSERT_EQ(SiblingCounts.size(), 2u) << "expected Shards - 1 factory calls";
  for (const auto &Count : SiblingCounts) {
    // One gated bind each; at most one stray recheck if a sibling
    // squeezed a unit in before the cancellation became visible.
    EXPECT_LE(Count->load(), 2u)
        << "sibling shard kept searching after the race was decided";
  }
  // Every checker's work is accounted: primary + both siblings.
  uint64_t Expected = PrimaryCount->load();
  for (const auto &Count : SiblingCounts)
    Expected += Count->load();
  EXPECT_EQ(Res.Stats.BackendQueries, Expected);
  EXPECT_EQ(Res.Stats.CheckCalls, Expected)
      << "plain backends serve every search query themselves";
}

namespace {

/// Forwards to a real checker while counting calls into a shared total;
/// lets the merge test compare search-side and backend-side accounting
/// across shard instances whose lifetimes end inside the search.
class CountingProxy : public CheckerBackend {
public:
  CountingProxy(std::unique_ptr<CheckerBackend> Inner,
                std::shared_ptr<std::atomic<uint64_t>> Total)
      : Inner(std::move(Inner)), Total(std::move(Total)) {}

  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override {
    ++Queries;
    Total->fetch_add(1);
    return Inner->bind(K, Phi);
  }
  CheckResult recheckImpl(const UpdateInfo &U) override {
    ++Queries;
    Total->fetch_add(1);
    return Inner->recheckAfterUpdate(U);
  }
  void notifyRollback() override { Inner->notifyRollback(); }
  bool providesCounterexamples() const override {
    return Inner->providesCounterexamples();
  }
  const char *name() const override { return "CountingProxy"; }

private:
  std::unique_ptr<CheckerBackend> Inner;
  std::shared_ptr<std::atomic<uint64_t>> Total;
};

} // namespace

// Per-shard SynthStats flow through mergeFrom into one result: the
// search-side CheckCalls total must equal the calls every checker
// instance actually served (each shard's bind included), and
// BackendQueries must agree for plain (non-memoizing) backends.
TEST(ShardedSearchTest, ShardStatsMergeAccounting) {
  Scenario S = diamondWithUpdates(400, 5);
  auto Total = std::make_shared<std::atomic<uint64_t>>(0);
  std::atomic<unsigned> Instances{0};

  CountingProxy Primary(
      std::make_unique<LabelingChecker>(LabelingChecker::Mode::Incremental),
      Total);
  SynthOptions Opts;
  Opts.Shards = 4;
  Opts.ShardCheckerFactory = [&]() -> std::unique_ptr<CheckerBackend> {
    Instances.fetch_add(1);
    return std::make_unique<CountingProxy>(
        std::make_unique<LabelingChecker>(LabelingChecker::Mode::Incremental),
        Total);
  };

  FormulaFactory FF;
  SynthResult Res = synthesizeUpdate(S, FF, Primary, Opts);
  ASSERT_EQ(Res.Status, SynthStatus::Success);
  expectCorrectSequence(S, Res);

  EXPECT_EQ(Instances.load(), 3u) << "one factory call per extra shard";
  EXPECT_EQ(Res.Stats.CheckCalls, Total->load())
      << "merged CheckCalls must count every shard's queries";
  EXPECT_EQ(Res.Stats.BackendQueries, Total->load());
  EXPECT_GE(Res.Stats.CheckCalls, 4u) << "every shard binds once";
}

// EngineOptions::IntraJobShards applies sharding to members that didn't
// choose, through the engine's own factory wiring — and must preserve
// the verdict.
TEST(ShardedSearchTest, EngineDefaultShardsMatchesUnsharded) {
  Scenario S = diamondWithUpdates(500, 4);
  SynthStatus Verdicts[2];
  for (unsigned Sharded = 0; Sharded != 2; ++Sharded) {
    SynthJob Job;
    Job.S = S; // Empty portfolio: the default incremental member.
    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.CacheResults = false;
    EO.IntraJobShards = Sharded ? 4 : 0;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run({Job});
    Verdicts[Sharded] = Rep.Reports[0].Result.Status;
    ASSERT_TRUE(Rep.Reports[0].ok());
    expectCorrectSequence(S, Rep.Reports[0].Result);
    EXPECT_GT(Rep.TotalQueries, 0u);
  }
  EXPECT_EQ(Verdicts[0], Verdicts[1]);
}

// An explicit Shards = 1 pins the sequential search even under an
// engine-wide IntraJobShards default; only unset (0) members pick the
// default up. Observable through the backend factory: sharded runs
// instantiate extra per-shard checkers, sequential runs exactly one.
TEST(ShardedSearchTest, ExplicitSequentialMemberResistsEngineDefault) {
  Scenario S = diamondWithUpdates(800, 4);
  auto Instances = std::make_shared<std::atomic<unsigned>>(0);
  BackendFactory::instance().registerBackend(
      "counting-incremental", [Instances](const Scenario &) {
        Instances->fetch_add(1);
        return std::make_unique<LabelingChecker>(
            LabelingChecker::Mode::Incremental);
      });

  for (unsigned ExplicitOne : {1u, 0u}) {
    Instances->store(0);
    SynthJob Job;
    Job.S = S;
    PortfolioMember M;
    M.Backend = "counting-incremental";
    M.Opts.Shards = ExplicitOne; // 1: pinned sequential; 0: unset.
    Job.Portfolio.push_back(std::move(M));

    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.CacheResults = false;
    EO.IntraJobShards = 4;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run({Job});
    ASSERT_TRUE(Rep.Reports[0].ok());
    if (ExplicitOne)
      EXPECT_EQ(Instances->load(), 1u)
          << "explicit Shards = 1 must suppress the engine default";
    else
      EXPECT_GE(Instances->load(), 2u)
          << "unset Shards must pick up IntraJobShards";
  }
}

namespace {

/// Binds cleanly but rejects every update, with rechecks parked behind a
/// gate — holds the search mid-unit so a cancellation can be fired at a
/// controlled point.
class GatedRejectAll : public CheckerBackend {
public:
  GatedRejectAll(std::shared_ptr<std::atomic<bool>> Gate)
      : Gate(std::move(Gate)) {}

  CheckResult bindImpl(KripkeStructure &, Formula) override {
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }
  CheckResult recheckImpl(const UpdateInfo &) override {
    while (!Gate->load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Queries;
    CheckResult R;
    R.Holds = false;
    return R;
  }
  void notifyRollback() override {}
  bool providesCounterexamples() const override { return false; }
  const char *name() const override { return "GatedRejectAll"; }

private:
  std::shared_ptr<std::atomic<bool>> Gate;
};

} // namespace

// A cancellation observed between work units must surface as Aborted —
// never as Impossible, which downstream consumers treat as a definitive
// infeasibility proof. (Regression test: the unit loop used to return on
// a stop without recording it, and the verdict assembly then mistook the
// unexplored units for an exhausted search.)
TEST(ShardedSearchTest, CancellationBetweenUnitsReportsAborted) {
  Scenario S = diamondWithUpdates(700, 3);
  auto Gate = std::make_shared<std::atomic<bool>>(false);
  GatedRejectAll Checker(Gate);
  StopSource Stop;
  SynthOptions Opts;
  Opts.Stop = Stop.token(); // Shards = 1: the sequential path is the one
                            // that historically mislabelled this.

  SynthResult Res;
  std::thread Runner([&] {
    FormulaFactory FF;
    Res = synthesizeUpdate(S, FF, Checker, Opts);
  });
  // Let the search park inside its first recheck, then cancel and
  // release it. Wherever the stop lands — before the first unit or
  // between units — the verdict must be Aborted.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Stop.requestStop();
  Gate->store(true);
  Runner.join();

  EXPECT_EQ(Res.Status, SynthStatus::Aborted)
      << "a cancelled search must never claim an impossibility proof";
  EXPECT_TRUE(Res.Commands.empty());
}

// A stop fired before the search starts aborts a sharded run exactly as
// it does a sequential one.
TEST(ShardedSearchTest, PreFiredStopAbortsShardedRun) {
  Scenario S = diamondWithUpdates(600, 3);
  StopSource Stop;
  Stop.requestStop();
  LabelingChecker Checker(LabelingChecker::Mode::Incremental);
  FormulaFactory FF;
  SynthOptions Opts;
  Opts.Shards = 4;
  Opts.Stop = Stop.token();
  Opts.ShardCheckerFactory = []() -> std::unique_ptr<CheckerBackend> {
    return std::make_unique<LabelingChecker>(
        LabelingChecker::Mode::Incremental);
  };
  SynthResult Res = synthesizeUpdate(S, FF, Checker, Opts);
  EXPECT_EQ(Res.Status, SynthStatus::Aborted);
  EXPECT_TRUE(Res.Commands.empty());
}
