//===- tests/topo_test.cpp - topology/scenario generator tests -*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "mc/NaiveTraceChecker.h"
#include "topo/Churn.h"
#include "topo/Fig1.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

#include <gtest/gtest.h>

#include <queue>

using namespace netupd;

namespace {

/// Connectivity over switch-to-switch links.
bool isConnected(const Topology &T) {
  if (T.numSwitches() == 0)
    return true;
  std::vector<std::vector<SwitchId>> Adj(T.numSwitches());
  for (const Link &L : T.links())
    if (!L.From.isHost() && !L.To.isHost())
      Adj[L.From.Switch].push_back(L.To.Switch);
  std::vector<uint8_t> Seen(T.numSwitches(), 0);
  std::queue<SwitchId> Q;
  Q.push(0);
  Seen[0] = 1;
  unsigned Count = 1;
  while (!Q.empty()) {
    SwitchId Cur = Q.front();
    Q.pop();
    for (SwitchId Next : Adj[Cur])
      if (!Seen[Next]) {
        Seen[Next] = 1;
        ++Count;
        Q.push(Next);
      }
  }
  return Count == T.numSwitches();
}

/// Model-checks one configuration of a scenario with the brute-force
/// checker.
bool configHolds(const Scenario &S, const Config &Cfg) {
  FormulaFactory FF;
  KripkeStructure K(S.Topo, Cfg, S.classes());
  NaiveTraceChecker Checker;
  return Checker.bind(K, S.buildProperty(FF)).Holds;
}

} // namespace

TEST(GeneratorsTest, FatTreeShape) {
  for (unsigned K : {2u, 4u, 6u}) {
    Topology T = buildFatTree(K);
    EXPECT_EQ(T.numSwitches(), 5 * K * K / 4);
    EXPECT_TRUE(isConnected(T));
  }
}

TEST(GeneratorsTest, SmallWorldConnectedAndSized) {
  Rng R(5);
  for (unsigned N : {10u, 40u, 100u}) {
    Topology T = buildSmallWorld(N, 4, 0.3, R);
    EXPECT_EQ(T.numSwitches(), N);
    EXPECT_TRUE(isConnected(T));
  }
}

TEST(GeneratorsTest, ZooLikeDeterministicAndConnected) {
  for (unsigned I : {0u, 10u, 100u, 260u}) {
    Topology A = buildZooLike(I);
    Topology B = buildZooLike(I);
    EXPECT_EQ(A.numSwitches(), B.numSwitches());
    EXPECT_EQ(A.numLinks(), B.numLinks());
    EXPECT_EQ(A.numSwitches(), zooLikeSize(I));
    EXPECT_TRUE(isConnected(A));
    EXPECT_GE(A.numSwitches(), 8u);
    EXPECT_LE(A.numSwitches(), 700u);
  }
}

TEST(GeneratorsTest, ZooLikeSizesSpread) {
  unsigned Small = 0, Large = 0;
  for (unsigned I = 0; I != NumZooLike; ++I) {
    unsigned N = zooLikeSize(I);
    Small += N < 60;
    Large += N > 200;
  }
  // The spread covers both ends, like the real Zoo.
  EXPECT_GT(Small, 50u);
  EXPECT_GT(Large, 20u);
}

TEST(Fig1Test, ConfigsSatisfyReachability) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  for (const Config *Cfg : {&N.Red, &N.Green, &N.Blue}) {
    KripkeStructure K(N.Topo, *Cfg, {N.FlowH1H3});
    NaiveTraceChecker Checker;
    EXPECT_TRUE(Checker.bind(K, Phi).Holds);
  }
}

TEST(Fig1Test, RedAndGreenDifferOnA1AndC2) {
  Fig1Network N = buildFig1();
  std::vector<SwitchId> D = diffSwitches(N.Red, N.Green);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_TRUE((D[0] == N.A[0] && D[1] == N.C2) ||
              (D[0] == N.C2 && D[1] == N.A[0]));
}

namespace {

struct ScenarioParam {
  uint64_t Seed;
  PropertyKind Kind;
};

class DiamondScenarioTest : public ::testing::TestWithParam<ScenarioParam> {
};

} // namespace

TEST_P(DiamondScenarioTest, BothEndpointConfigsSatisfyProperty) {
  ScenarioParam P = GetParam();
  Rng R(P.Seed);
  Topology Base = buildSmallWorld(24, 4, 0.2, R);
  std::optional<Scenario> S = makeDiamondScenario(Base, R, P.Kind);
  ASSERT_TRUE(S.has_value());
  EXPECT_GE(numUpdatingSwitches(*S), 2u);
  EXPECT_TRUE(configHolds(*S, S->Initial));
  EXPECT_TRUE(configHolds(*S, S->Final));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DiamondScenarioTest,
    ::testing::Values(ScenarioParam{101, PropertyKind::Reachability},
                      ScenarioParam{102, PropertyKind::Waypoint},
                      ScenarioParam{103, PropertyKind::ServiceChain},
                      ScenarioParam{104, PropertyKind::Reachability},
                      ScenarioParam{105, PropertyKind::Waypoint},
                      ScenarioParam{106, PropertyKind::ServiceChain}));

TEST(DiamondScenarioTest, MultiFlowScenario) {
  Rng R(42);
  Topology Base = buildSmallWorld(40, 4, 0.2, R);
  DiamondOptions Opts;
  Opts.NumFlows = 2;
  std::optional<Scenario> S =
      makeDiamondScenario(Base, R, PropertyKind::Reachability, Opts);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Flows.size(), 2u);
  EXPECT_TRUE(configHolds(*S, S->Initial));
  EXPECT_TRUE(configHolds(*S, S->Final));
}

TEST(DiamondScenarioTest, LongPathsGrowDiamonds) {
  Rng R(7);
  Topology Base = buildSmallWorld(80, 6, 0.3, R);
  DiamondOptions Short;
  DiamondOptions Long;
  Long.LongPaths = true;

  unsigned ShortSize = 0, LongSize = 0;
  for (int I = 0; I != 5; ++I) {
    Rng RS(1000 + I), RL(1000 + I);
    auto A = makeDiamondScenario(Base, RS, PropertyKind::Reachability,
                                 Short);
    auto B =
        makeDiamondScenario(Base, RL, PropertyKind::Reachability, Long);
    if (A)
      ShortSize += numUpdatingSwitches(*A);
    if (B)
      LongSize += numUpdatingSwitches(*B);
  }
  EXPECT_GT(LongSize, ShortSize);
}

TEST(DoubleDiamondTest, EndpointsHoldButConstructionIsCrossed) {
  Rng R(9);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  ASSERT_TRUE(S.has_value());
  ASSERT_EQ(S->Flows.size(), 2u);
  EXPECT_TRUE(configHolds(*S, S->Initial));
  EXPECT_TRUE(configHolds(*S, S->Final));

  // The two flows run in opposite directions.
  EXPECT_EQ(S->Flows[0].SrcPort, S->Flows[1].DstPort);
  EXPECT_EQ(S->Flows[0].DstPort, S->Flows[1].SrcPort);

  // Crossed branches: the reverse flow's final path uses the forward
  // flow's initial branch (reversed).
  std::vector<SwitchId> FwdInit = S->Flows[0].InitialPath;
  std::vector<SwitchId> RevFinal = S->Flows[1].FinalPath;
  std::reverse(RevFinal.begin(), RevFinal.end());
  EXPECT_EQ(FwdInit, RevFinal);
}

namespace {

/// Per-switch degree over switch-to-switch links (each direction of a
/// bidirectional link counted once).
std::vector<unsigned> switchDegrees(const Topology &T) {
  std::vector<unsigned> Deg(T.numSwitches(), 0);
  for (const Link &L : T.links())
    if (!L.From.isHost() && !L.To.isHost())
      ++Deg[L.From.Switch];
  return Deg;
}

} // namespace

TEST(GeneratorsTest, ClosIsACompleteBipartiteFabric) {
  for (auto [Leaves, Spines] : {std::pair<unsigned, unsigned>{6, 3},
                                {16, 4},
                                {48, 8}}) {
    Topology T = buildClos(Leaves, Spines);
    EXPECT_EQ(T.numSwitches(), Leaves + Spines);
    EXPECT_TRUE(isConnected(T));
    // Full bipartite core: every leaf sees every spine and nothing else;
    // every spine sees every leaf.
    std::vector<unsigned> Deg = switchDegrees(T);
    unsigned LeafDeg = 0, SpineDeg = 0;
    for (SwitchId Sw = 0; Sw != T.numSwitches(); ++Sw) {
      if (Deg[Sw] == Spines)
        ++LeafDeg;
      else if (Deg[Sw] == Leaves)
        ++SpineDeg;
    }
    EXPECT_EQ(LeafDeg, Leaves);
    EXPECT_EQ(SpineDeg, Spines);
  }
}

TEST(GeneratorsTest, WanIsConnectedSizedAndDeterministic) {
  WanParams P;
  P.Regions = 6;
  P.MeanRegionSize = 12;
  for (uint64_t Seed : {1u, 2u, 3u}) {
    Rng RA(Seed), RB(Seed);
    Topology A = buildWan(P, RA);
    Topology B = buildWan(P, RB);
    EXPECT_TRUE(isConnected(A));
    // Region sizes are drawn in [Mean/2, 3*Mean/2].
    EXPECT_GE(A.numSwitches(), P.Regions * (P.MeanRegionSize / 2));
    EXPECT_LE(A.numSwitches(), P.Regions * (3 * P.MeanRegionSize / 2));
    // Deterministic in (params, rng state).
    EXPECT_EQ(A.numSwitches(), B.numSwitches());
    EXPECT_EQ(A.numLinks(), B.numLinks());
    // Ring backbone: no isolated or degree-1 switches anywhere.
    for (unsigned D : switchDegrees(A))
      EXPECT_GE(D, 2u);
  }
}

TEST(GeneratorsTest, WanScalesToHundredsOfSwitches) {
  Rng R(11);
  WanParams P; // Defaults: 8 regions x mean 16 PoPs.
  P.Regions = 40;
  Topology T = buildWan(P, R);
  EXPECT_GE(T.numSwitches(), 500u);
  EXPECT_TRUE(isConnected(T));
}

TEST(GeneratorsTest, ZooIndexBoundsAndDegreeFloor) {
  // Spot-check across the whole index range, including both ends.
  for (unsigned I : {0u, 1u, 57u, 130u, 259u, 260u}) {
    ASSERT_LT(I, NumZooLike);
    Topology T = buildZooLike(I);
    for (unsigned D : switchDegrees(T))
      EXPECT_GE(D, 2u) << "zoo index " << I;
  }
}

TEST(ScenarioDigestTest, StableAcrossRebuildsDistinctAcrossSeeds) {
  std::vector<Digest> Seen;
  for (uint64_t Seed = 900; Seed != 910; ++Seed) {
    Rng RA(Seed), RB(Seed);
    Topology TA = buildSmallWorld(18, 4, 0.2, RA);
    Topology TB = buildSmallWorld(18, 4, 0.2, RB);
    auto SA = makeDiamondScenario(TA, RA, PropertyKind::Reachability);
    auto SB = makeDiamondScenario(TB, RB, PropertyKind::Reachability);
    ASSERT_EQ(SA.has_value(), SB.has_value());
    if (!SA)
      continue;
    // Same seed, same digest.
    EXPECT_TRUE(digestOf(*SA) == digestOf(*SB));
    Seen.push_back(digestOf(*SA));
  }
  ASSERT_GE(Seen.size(), 6u);
  // Different seeds, different instances.
  for (size_t I = 0; I != Seen.size(); ++I)
    for (size_t J = I + 1; J != Seen.size(); ++J)
      EXPECT_FALSE(Seen[I] == Seen[J]) << I << " vs " << J;
}

TEST(RetryingBuildersTest, NeverStrandWhereOneShotSometimesFails) {
  // On small topologies the one-shot builders fail on unlucky draws; the
  // retrying wrappers must absorb those and only report nullopt when the
  // topology genuinely has no room.
  unsigned OneShotFailures = 0, RetryFailures = 0, Built = 0;
  for (uint64_t Seed = 0; Seed != 30; ++Seed) {
    Rng RTopo(Seed);
    Topology Base = buildSmallWorld(12, 4, 0.3, RTopo);
    Rng ROne(Seed * 2 + 1), RRetry(Seed * 2 + 1);
    DiamondOptions Opts;
    Opts.NumFlows = 2;
    auto One =
        makeDiamondScenario(Base, ROne, PropertyKind::Reachability, Opts);
    auto Retry = makeDiamondScenarioRetrying(
        Base, RRetry, PropertyKind::Reachability, Opts);
    OneShotFailures += !One;
    RetryFailures += !Retry;
    if (Retry) {
      ++Built;
      EXPECT_TRUE(configHolds(*Retry, Retry->Initial));
      EXPECT_TRUE(configHolds(*Retry, Retry->Final));
    }
  }
  // The wrapper strictly dominates the one-shot builder...
  EXPECT_LE(RetryFailures, OneShotFailures);
  // ...the one-shot builder does fail here (else this test tests nothing)...
  EXPECT_GT(OneShotFailures, 0u);
  // ...and retrying absorbs essentially all of it.
  EXPECT_GE(Built, 28u);
}

TEST(RetryingBuildersTest, DoubleDiamondRetryingHoldsAtEndpoints) {
  unsigned Built = 0;
  for (uint64_t Seed = 40; Seed != 52; ++Seed) {
    Rng RTopo(Seed);
    Topology Base = buildSmallWorld(16, 4, 0.25, RTopo);
    Rng R(Seed);
    auto S = makeDoubleDiamondScenarioRetrying(Base, R);
    if (!S)
      continue;
    ++Built;
    ASSERT_EQ(S->Flows.size(), 2u);
    EXPECT_TRUE(configHolds(*S, S->Initial));
    EXPECT_TRUE(configHolds(*S, S->Final));
  }
  EXPECT_GE(Built, 10u);
}

TEST(ChurnTraceTest, StepsChainAndStayValid) {
  Rng RTopo(77);
  Topology Base = buildSmallWorld(24, 4, 0.2, RTopo);
  Rng R(77);
  ChurnOptions Opts;
  Opts.NumFlows = 2;
  Opts.Steps = 16;
  std::optional<ChurnTrace> Trace = makeChurnTrace(Base, R, Opts);
  ASSERT_TRUE(Trace.has_value());
  ASSERT_EQ(Trace->Steps.size(), 16u);

  std::vector<Digest> Distinct;
  for (size_t I = 0; I != Trace->Steps.size(); ++I) {
    const Scenario &S = Trace->Steps[I];
    EXPECT_EQ(S.Flows.size(), 2u);
    // Every step flips exactly one flow, so it has work to do...
    EXPECT_FALSE(diffSwitches(S.Initial, S.Final).empty()) << I;
    // ...its endpoints satisfy the property...
    EXPECT_TRUE(configHolds(S, S.Initial)) << I;
    EXPECT_TRUE(configHolds(S, S.Final)) << I;
    // ...and the trace chains: each step starts where the last ended.
    if (I) {
      EXPECT_TRUE(Trace->Steps[I - 1].Final == S.Initial) << I;
    }
    Digest D = digestOf(S);
    if (std::find(Distinct.begin(), Distinct.end(), D) == Distinct.end())
      Distinct.push_back(D);
  }
  // Two two-valued flows pigeonhole into at most 2^2 states x 2 flipped
  // flows = 8 distinct (initial, final) steps; a long trace must repeat.
  EXPECT_LE(Distinct.size(), 8u);
  EXPECT_LT(Distinct.size(), Trace->Steps.size());
}
