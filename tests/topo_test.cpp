//===- tests/topo_test.cpp - topology/scenario generator tests -*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "mc/NaiveTraceChecker.h"
#include "topo/Fig1.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

#include <gtest/gtest.h>

#include <queue>

using namespace netupd;

namespace {

/// Connectivity over switch-to-switch links.
bool isConnected(const Topology &T) {
  if (T.numSwitches() == 0)
    return true;
  std::vector<std::vector<SwitchId>> Adj(T.numSwitches());
  for (const Link &L : T.links())
    if (!L.From.isHost() && !L.To.isHost())
      Adj[L.From.Switch].push_back(L.To.Switch);
  std::vector<uint8_t> Seen(T.numSwitches(), 0);
  std::queue<SwitchId> Q;
  Q.push(0);
  Seen[0] = 1;
  unsigned Count = 1;
  while (!Q.empty()) {
    SwitchId Cur = Q.front();
    Q.pop();
    for (SwitchId Next : Adj[Cur])
      if (!Seen[Next]) {
        Seen[Next] = 1;
        ++Count;
        Q.push(Next);
      }
  }
  return Count == T.numSwitches();
}

/// Model-checks one configuration of a scenario with the brute-force
/// checker.
bool configHolds(const Scenario &S, const Config &Cfg) {
  FormulaFactory FF;
  KripkeStructure K(S.Topo, Cfg, S.classes());
  NaiveTraceChecker Checker;
  return Checker.bind(K, S.buildProperty(FF)).Holds;
}

} // namespace

TEST(GeneratorsTest, FatTreeShape) {
  for (unsigned K : {2u, 4u, 6u}) {
    Topology T = buildFatTree(K);
    EXPECT_EQ(T.numSwitches(), 5 * K * K / 4);
    EXPECT_TRUE(isConnected(T));
  }
}

TEST(GeneratorsTest, SmallWorldConnectedAndSized) {
  Rng R(5);
  for (unsigned N : {10u, 40u, 100u}) {
    Topology T = buildSmallWorld(N, 4, 0.3, R);
    EXPECT_EQ(T.numSwitches(), N);
    EXPECT_TRUE(isConnected(T));
  }
}

TEST(GeneratorsTest, ZooLikeDeterministicAndConnected) {
  for (unsigned I : {0u, 10u, 100u, 260u}) {
    Topology A = buildZooLike(I);
    Topology B = buildZooLike(I);
    EXPECT_EQ(A.numSwitches(), B.numSwitches());
    EXPECT_EQ(A.numLinks(), B.numLinks());
    EXPECT_EQ(A.numSwitches(), zooLikeSize(I));
    EXPECT_TRUE(isConnected(A));
    EXPECT_GE(A.numSwitches(), 8u);
    EXPECT_LE(A.numSwitches(), 700u);
  }
}

TEST(GeneratorsTest, ZooLikeSizesSpread) {
  unsigned Small = 0, Large = 0;
  for (unsigned I = 0; I != NumZooLike; ++I) {
    unsigned N = zooLikeSize(I);
    Small += N < 60;
    Large += N > 200;
  }
  // The spread covers both ends, like the real Zoo.
  EXPECT_GT(Small, 50u);
  EXPECT_GT(Large, 20u);
}

TEST(Fig1Test, ConfigsSatisfyReachability) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  for (const Config *Cfg : {&N.Red, &N.Green, &N.Blue}) {
    KripkeStructure K(N.Topo, *Cfg, {N.FlowH1H3});
    NaiveTraceChecker Checker;
    EXPECT_TRUE(Checker.bind(K, Phi).Holds);
  }
}

TEST(Fig1Test, RedAndGreenDifferOnA1AndC2) {
  Fig1Network N = buildFig1();
  std::vector<SwitchId> D = diffSwitches(N.Red, N.Green);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_TRUE((D[0] == N.A[0] && D[1] == N.C2) ||
              (D[0] == N.C2 && D[1] == N.A[0]));
}

namespace {

struct ScenarioParam {
  uint64_t Seed;
  PropertyKind Kind;
};

class DiamondScenarioTest : public ::testing::TestWithParam<ScenarioParam> {
};

} // namespace

TEST_P(DiamondScenarioTest, BothEndpointConfigsSatisfyProperty) {
  ScenarioParam P = GetParam();
  Rng R(P.Seed);
  Topology Base = buildSmallWorld(24, 4, 0.2, R);
  std::optional<Scenario> S = makeDiamondScenario(Base, R, P.Kind);
  ASSERT_TRUE(S.has_value());
  EXPECT_GE(numUpdatingSwitches(*S), 2u);
  EXPECT_TRUE(configHolds(*S, S->Initial));
  EXPECT_TRUE(configHolds(*S, S->Final));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DiamondScenarioTest,
    ::testing::Values(ScenarioParam{101, PropertyKind::Reachability},
                      ScenarioParam{102, PropertyKind::Waypoint},
                      ScenarioParam{103, PropertyKind::ServiceChain},
                      ScenarioParam{104, PropertyKind::Reachability},
                      ScenarioParam{105, PropertyKind::Waypoint},
                      ScenarioParam{106, PropertyKind::ServiceChain}));

TEST(DiamondScenarioTest, MultiFlowScenario) {
  Rng R(42);
  Topology Base = buildSmallWorld(40, 4, 0.2, R);
  DiamondOptions Opts;
  Opts.NumFlows = 2;
  std::optional<Scenario> S =
      makeDiamondScenario(Base, R, PropertyKind::Reachability, Opts);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Flows.size(), 2u);
  EXPECT_TRUE(configHolds(*S, S->Initial));
  EXPECT_TRUE(configHolds(*S, S->Final));
}

TEST(DiamondScenarioTest, LongPathsGrowDiamonds) {
  Rng R(7);
  Topology Base = buildSmallWorld(80, 6, 0.3, R);
  DiamondOptions Short;
  DiamondOptions Long;
  Long.LongPaths = true;

  unsigned ShortSize = 0, LongSize = 0;
  for (int I = 0; I != 5; ++I) {
    Rng RS(1000 + I), RL(1000 + I);
    auto A = makeDiamondScenario(Base, RS, PropertyKind::Reachability,
                                 Short);
    auto B =
        makeDiamondScenario(Base, RL, PropertyKind::Reachability, Long);
    if (A)
      ShortSize += numUpdatingSwitches(*A);
    if (B)
      LongSize += numUpdatingSwitches(*B);
  }
  EXPECT_GT(LongSize, ShortSize);
}

TEST(DoubleDiamondTest, EndpointsHoldButConstructionIsCrossed) {
  Rng R(9);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  ASSERT_TRUE(S.has_value());
  ASSERT_EQ(S->Flows.size(), 2u);
  EXPECT_TRUE(configHolds(*S, S->Initial));
  EXPECT_TRUE(configHolds(*S, S->Final));

  // The two flows run in opposite directions.
  EXPECT_EQ(S->Flows[0].SrcPort, S->Flows[1].DstPort);
  EXPECT_EQ(S->Flows[0].DstPort, S->Flows[1].SrcPort);

  // Crossed branches: the reverse flow's final path uses the forward
  // flow's initial branch (reversed).
  std::vector<SwitchId> FwdInit = S->Flows[0].InitialPath;
  std::vector<SwitchId> RevFinal = S->Flows[1].FinalPath;
  std::reverse(RevFinal.begin(), RevFinal.end());
  EXPECT_EQ(FwdInit, RevFinal);
}
