//===- tests/learning_test.cpp - cross-job learning tests ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the cross-job constraint store (support/ConstraintStore.h)
/// and its wiring through the search and the engine: store semantics
/// (keying, dedup, op-universe guards, caps), the reuse-on-vs-reuse-off
/// invariance matrix across the backend registry, shard counts, and
/// budgeted runs (verdicts and command sequences must be byte-identical
/// — learning is an accelerator, never an oracle), the deterministic-
/// budget import gate, and the acceleration itself: a second probe of a
/// digest-identical scenario must skip already-refuted prefixes without
/// issuing checker queries.
///
/// Sequence comparison caveat: at Shards > 1 without a budget, *which*
/// correct sequence a feasible search returns is timing-dependent with
/// or without learning (the first shard to finish wins); those cells
/// compare verdicts byte-exactly and validate sequences by replay, the
/// same contract tests/shard_test.cpp holds the sharded search to.
/// Everywhere the engine guarantees sequence determinism — sequential
/// runs and deterministic budget mode at any shard count — the
/// comparison is byte-exact.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "engine/StopToken.h"
#include "mc/BackendFactory.h"
#include "support/ConstraintStore.h"
#include "synth/EarlyTermination.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// A feasible diamond scenario with at least \p MinUpdates updating
/// switches. Deterministic: scans seeds from \p FirstSeed upward.
Scenario diamondWithUpdates(uint64_t FirstSeed, unsigned MinUpdates) {
  for (uint64_t Seed = FirstSeed; Seed != FirstSeed + 64; ++Seed) {
    Rng R(Seed);
    Topology Base = buildSmallWorld(24, 4, 0.2, R);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, R, PropertyKind::Reachability);
    if (S && numUpdatingSwitches(*S) >= MinUpdates)
      return std::move(*S);
  }
  ADD_FAILURE() << "no diamond with >= " << MinUpdates
                << " updating switches from seed " << FirstSeed;
  return Scenario{};
}

/// The Fig. 8(h) instance: switch-granularity infeasible, rule feasible.
Scenario doubleDiamond(uint64_t Seed) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no double diamond";
  return std::move(*S);
}

/// What one run observably produced, for invariance comparisons.
struct RunResult {
  SynthStatus Status = SynthStatus::Aborted;
  std::string Rendered; // commandSeqToString: the byte-exact fingerprint.
  CommandSeq Commands;
  SynthStats Stats;
};

/// Runs one single-member job on a fresh 1-worker engine with the result
/// cache off (learning, not replay, is under test). \p Store null means
/// SharedLearning off; each call builds its own engine, so a shared
/// store is also exercising cross-engine pooling. \p Tweak adjusts the
/// member's SynthOptions (budgets, ET, granularity).
RunResult runOnce(const Scenario &S, const std::string &Backend,
                  unsigned Shards,
                  const std::shared_ptr<ConstraintStore> &Store,
                  const std::function<void(SynthOptions &)> &Tweak = {}) {
  SynthJob Job;
  Job.S = S;
  PortfolioMember M;
  M.Backend = Backend;
  M.Opts.Shards = Shards;
  if (Tweak)
    Tweak(M.Opts);
  Job.Portfolio.push_back(std::move(M));

  EngineOptions EO;
  EO.NumWorkers = 1;
  EO.CacheResults = false;
  EO.SharedLearning = Store != nullptr;
  EO.Learning = Store;
  SynthEngine Engine(EO);
  BatchReport Rep = Engine.run({Job});
  const SynthReport &R = Rep.Reports[0];
  EXPECT_TRUE(R.Members[0].Error.empty()) << R.Members[0].Error;

  RunResult Out;
  Out.Status = R.Result.Status;
  Out.Rendered = commandSeqToString(S.Topo, R.Result.Commands);
  Out.Commands = R.Result.Commands;
  Out.Stats = R.Result.Stats;
  return Out;
}

/// Replay-checks a successful sequence (the "same sequence class"
/// validity notion of the sharded search).
void expectValidSequence(const Scenario &S, const CommandSeq &Cmds) {
  FormulaFactory FF;
  Formula Phi = S.buildProperty(FF);
  EXPECT_TRUE(
      allIntermediateConfigsHold(S.Topo, S.Initial, S.classes(), Phi, Cmds))
      << "learning produced an unsafe sequence";
}

Bitset bits(size_t N, std::initializer_list<unsigned> Set) {
  Bitset B(N);
  for (unsigned I : Set)
    B.set(I);
  return B;
}

} // namespace

// --- ConstraintStore semantics ----------------------------------------------

TEST(ConstraintStoreTest, KeySeparatesScenariosAndGranularities) {
  Digest A{1, 2}, B{3, 4};
  EXPECT_NE(ConstraintStore::keyFor(A, false), ConstraintStore::keyFor(A, true))
      << "granularities index different op universes and must not share";
  EXPECT_NE(ConstraintStore::keyFor(A, false),
            ConstraintStore::keyFor(B, false));
}

TEST(ConstraintStoreTest, PublishDedupsAndFetchGuardsTheOpUniverse) {
  ConstraintStore Store;
  Digest Key = ConstraintStore::keyFor(Digest{7, 7}, false);

  std::vector<ConstraintStore::Entry> Batch = {
      {bits(4, {0, 1}), bits(4, {0})},
      {bits(4, {1, 2}), bits(4, {2})},
      {bits(4, {0, 1}), bits(4, {0})}, // In-batch duplicate.
  };
  EXPECT_EQ(Store.publish(Key, 4, Batch), 2u);
  EXPECT_EQ(Store.publish(Key, 4, Batch), 0u) << "re-publish must dedup";
  EXPECT_EQ(Store.fetch(Key, 4).size(), 2u);
  EXPECT_TRUE(Store.fetch(Key, 5).empty())
      << "a mismatched op universe must fetch nothing";
  EXPECT_TRUE(Store.fetch(ConstraintStore::keyFor(Digest{7, 7}, true), 4)
                  .empty());

  // Malformed entries are rejected: empty value (the soundness guard),
  // value outside mask, wrong universe.
  std::vector<ConstraintStore::Entry> Bad = {
      {bits(4, {0, 1}), bits(4, {})},     // Empty value: unsound if used.
      {bits(4, {0}), bits(4, {2})},       // Value not within mask.
      {bits(3, {0}), bits(3, {0})},       // Wrong universe.
  };
  EXPECT_EQ(Store.publish(Key, 4, Bad), 0u);
  EXPECT_EQ(Store.fetch(Key, 4).size(), 2u);
}

TEST(ConstraintStoreTest, PerKeyCapBoundsTheEntryList) {
  ConstraintStore Store(/*MaxKeys=*/16, /*MaxEntriesPerKey=*/3);
  Digest Key = ConstraintStore::keyFor(Digest{9, 9}, false);
  std::vector<ConstraintStore::Entry> Batch;
  for (unsigned I = 0; I != 8; ++I)
    Batch.push_back({bits(8, {I}), bits(8, {I})});
  EXPECT_EQ(Store.publish(Key, 8, Batch), 3u);
  EXPECT_EQ(Store.fetch(Key, 8).size(), 3u);
  EXPECT_EQ(Store.publish(Key, 8, Batch), 0u) << "a full key admits nothing";
}

// --- Invariance matrix ------------------------------------------------------

// Acceptance: for every registered backend (the memoizing decorator
// included) and shard count, a run seeded from a populated store returns
// the same verdict — and, wherever sequences are deterministic, the
// byte-identical command sequence — as a reuse-off run.
TEST(LearningInvarianceTest, FeasibleMatrixAcrossBackendRegistry) {
  Scenario Feas = diamondWithUpdates(9000, 4);
  std::vector<std::string> Backends = BackendFactory::instance().names();
  Backends.push_back("memo:incremental");
  for (const std::string &Backend : Backends) {
    for (unsigned Shards : {1u, 4u}) {
      RunResult Ref = runOnce(Feas, Backend, Shards, nullptr);
      auto Store = std::make_shared<ConstraintStore>();
      RunResult Warm = runOnce(Feas, Backend, Shards, Store);   // Populates.
      RunResult Seeded = runOnce(Feas, Backend, Shards, Store); // Imports.

      EXPECT_EQ(Ref.Status, SynthStatus::Success) << Backend;
      EXPECT_EQ(Warm.Status, Ref.Status)
          << Backend << " shards=" << Shards
          << ": an empty store changed the verdict";
      EXPECT_EQ(Seeded.Status, Ref.Status)
          << Backend << " shards=" << Shards
          << ": a populated store changed the verdict";
      if (Shards == 1) {
        EXPECT_EQ(Warm.Rendered, Ref.Rendered) << Backend;
        EXPECT_EQ(Seeded.Rendered, Ref.Rendered)
            << Backend << ": seeding changed the sequential sequence";
      } else {
        expectValidSequence(Feas, Seeded.Commands);
      }
    }
  }
}

// Infeasibility proofs survive seeding at every shard count, and the
// empty command sequence makes the byte comparison exact everywhere.
TEST(LearningInvarianceTest, InfeasibleVerdictsSurviveSeeding) {
  Scenario Inf = doubleDiamond(9);
  for (const char *Backend : {"incremental", "batch"}) {
    for (unsigned Shards : {1u, 4u}) {
      RunResult Ref = runOnce(Inf, Backend, Shards, nullptr);
      auto Store = std::make_shared<ConstraintStore>();
      runOnce(Inf, Backend, Shards, Store);
      RunResult Seeded = runOnce(Inf, Backend, Shards, Store);
      EXPECT_EQ(Ref.Status, SynthStatus::Impossible) << Backend;
      EXPECT_EQ(Seeded.Status, Ref.Status) << Backend << " shards=" << Shards;
      EXPECT_EQ(Seeded.Rendered, Ref.Rendered);
    }
  }
}

// The store key includes the granularity: a rule-granularity search of
// the same scenario must import nothing from switch-granularity entries
// (their bitsets index a different op universe) and still succeed.
TEST(LearningInvarianceTest, GranularitiesNeverShareEntries) {
  Scenario Inf = doubleDiamond(9);
  auto Store = std::make_shared<ConstraintStore>();
  RunResult SwitchRun = runOnce(Inf, "incremental", 1, Store);
  ASSERT_EQ(SwitchRun.Status, SynthStatus::Impossible);
  ASSERT_GT(SwitchRun.Stats.ExportedConstraints, 0u);

  RunResult RuleRun =
      runOnce(Inf, "incremental", 1, Store,
              [](SynthOptions &O) { O.RuleGranularity = true; });
  EXPECT_EQ(RuleRun.Status, SynthStatus::Success)
      << "rule granularity must still solve the Fig. 8(h) instance";
  EXPECT_EQ(RuleRun.Stats.ImportedConstraints, 0u)
      << "switch-granularity entries leaked across the granularity key";
  expectValidSequence(Inf, RuleRun.Commands);
}

// --- Deterministic budgets never import -------------------------------------

// A budgeted run's outcome is a pure function of (job, budget); a
// populated store must not change one byte of it — the import gate — at
// any shard count, in both the budget-Abort and the completing regime.
TEST(LearningInvarianceTest, BudgetedRunsIgnoreThePopulatedStore) {
  Scenario Feas = diamondWithUpdates(9100, 4);
  for (uint64_t Unit : {uint64_t(2), uint64_t(100000)}) {
    auto Budget = [Unit](SynthOptions &O) { O.UnitCheckCalls = Unit; };
    for (unsigned Shards : {1u, 4u}) {
      RunResult Ref = runOnce(Feas, "incremental", Shards, nullptr, Budget);
      auto Store = std::make_shared<ConstraintStore>();
      // Populate with everything an unbudgeted run learns for this key.
      runOnce(Feas, "incremental", Shards, Store);
      RunResult Seeded =
          runOnce(Feas, "incremental", Shards, Store, Budget);
      EXPECT_EQ(Seeded.Status, Ref.Status)
          << "unit=" << Unit << " shards=" << Shards;
      EXPECT_EQ(Seeded.Rendered, Ref.Rendered)
          << "unit=" << Unit << " shards=" << Shards
          << ": a store import leaked into deterministic budget mode";
      EXPECT_EQ(Seeded.Stats.ImportedConstraints, 0u);
      EXPECT_EQ(Seeded.Stats.SeededPrunes, 0u);
    }
    // The tight budget must actually produce the Abort regime once.
    if (Unit == 2) {
      EXPECT_EQ(runOnce(Feas, "incremental", 1, nullptr, Budget).Status,
                SynthStatus::Aborted);
    }
  }
}

// Budgeted probes still EXPORT what they learned — the unit-local wrong
// sets are instance facts, and the unbudgeted runs that follow a probe
// sweep are exactly who they help.
TEST(LearningInvarianceTest, BudgetedRunsStillExport) {
  Scenario Inf = doubleDiamond(9);
  auto Store = std::make_shared<ConstraintStore>();
  RunResult Probe =
      runOnce(Inf, "incremental", 1, Store,
              [](SynthOptions &O) { O.UnitCheckCalls = 2; });
  // Every depth-one root refutes within its quota: a complete proof.
  EXPECT_EQ(Probe.Status, SynthStatus::Impossible);
  EXPECT_GT(Probe.Stats.ExportedConstraints, 0u)
      << "a budgeted run dropped its learned constraints";

  // And a follow-up run consumes them. The probe's Impossible verdict
  // also marked the key (a budget-mode Impossible is still a complete
  // proof — a truncated unit reports Aborted), so an unbudgeted,
  // untimed follow-up would be shed outright; the soft wall hint makes
  // this member non-sheddable and exercises the import path proper.
  RunResult Follow = runOnce(Inf, "incremental", 1, Store,
                             [](SynthOptions &O) {
                               O.EarlyTermination = false;
                               O.TimeoutSeconds = 3600.0;
                             });
  EXPECT_EQ(Follow.Status, SynthStatus::Impossible);
  EXPECT_GT(Follow.Stats.ImportedConstraints, 0u);

  // The sheddable shape of the same follow-up is answered from the
  // up-front proof: same verdict, no checker work at all.
  RunResult Shed = runOnce(Inf, "incremental", 1, Store,
                           [](SynthOptions &O) {
                             O.EarlyTermination = false;
                           });
  EXPECT_EQ(Shed.Status, SynthStatus::Impossible);
  EXPECT_EQ(Shed.Stats.ShedMembers, 1u);
  EXPECT_EQ(Shed.Stats.CheckCalls, 0u);
}

// --- Acceleration -----------------------------------------------------------

// The headline effect: after one probe refutes every depth-one prefix of
// a Fig. 8(h) instance, a digest-*different* probe (another backend) of
// the digest-identical scenario re-proves Impossible from the store
// alone — one bind, zero rechecks, every root served by a seeded prune.
TEST(LearningAccelerationTest, SecondProbeSkipsRefutedPrefixes) {
  Scenario Inf = doubleDiamond(9);
  auto NoEt = [](SynthOptions &O) { O.EarlyTermination = false; };
  // Soft wall hint (never fires here): makes the follow-up members
  // non-sheddable, so the test exercises the seeded-prune path rather
  // than the up-front shed P1's Impossible mark would trigger.
  auto NoEtTimed = [](SynthOptions &O) {
    O.EarlyTermination = false;
    O.TimeoutSeconds = 3600.0;
  };
  auto Store = std::make_shared<ConstraintStore>();

  RunResult P1 = runOnce(Inf, "incremental", 1, Store, NoEt);
  ASSERT_EQ(P1.Status, SynthStatus::Impossible);
  ASSERT_GT(P1.Stats.ExportedConstraints, 0u);
  ASSERT_GT(P1.Stats.CheckCalls, 1u);

  RunResult P2 = runOnce(Inf, "batch", 1, Store, NoEtTimed);
  EXPECT_EQ(P2.Status, SynthStatus::Impossible);
  EXPECT_GT(P2.Stats.ImportedConstraints, 0u);
  EXPECT_EQ(P2.Stats.CheckCalls, 1u)
      << "the seeded probe should spend its bind and nothing else";
  EXPECT_GT(P2.Stats.SeededPrunes, 0u);

  // Reuse-off control: the same second probe without the store pays the
  // full re-derivation.
  RunResult Control = runOnce(Inf, "batch", 1, nullptr, NoEt);
  EXPECT_EQ(Control.Status, SynthStatus::Impossible);
  EXPECT_GT(Control.Stats.CheckCalls, P2.Stats.CheckCalls);

  // The untimed shape doesn't even bind: P1's proof sheds it.
  RunResult P3 = runOnce(Inf, "batch", 1, Store, NoEt);
  EXPECT_EQ(P3.Status, SynthStatus::Impossible);
  EXPECT_EQ(P3.Stats.ShedMembers, 1u);
  EXPECT_EQ(P3.Stats.CheckCalls, 0u);
}

// With the SAT layer on, the imported constraints can prove the instance
// impossible before a single work unit runs (the up-front UNSAT check);
// when the transitivity relaxation leaves them satisfiable, the seeded
// prunes still hold the query count to the bind. Either way: one check.
TEST(LearningAccelerationTest, SeededSatLayerShortCircuits) {
  Scenario Inf = doubleDiamond(9);
  auto Store = std::make_shared<ConstraintStore>();
  RunResult P1 = runOnce(Inf, "incremental", 1, Store);
  ASSERT_EQ(P1.Status, SynthStatus::Impossible);

  // Timed (non-sheddable; the hint never fires) so the run actually
  // consults the seeded SAT layer instead of being shed up front.
  RunResult P2 = runOnce(Inf, "batch", 1, Store,
                         [](SynthOptions &O) { O.TimeoutSeconds = 3600.0; });
  EXPECT_EQ(P2.Status, SynthStatus::Impossible);
  EXPECT_EQ(P2.Stats.CheckCalls, 1u);
  EXPECT_TRUE(P2.Stats.EarlyTerminated || P2.Stats.SeededPrunes > 0)
      << "neither the SAT short-circuit nor the seeded prunes engaged";
}

// --- Engine wiring ----------------------------------------------------------

TEST(LearningEngineTest, KnobControlsTheStoreLifetime) {
  EngineOptions Off;
  Off.SharedLearning = false;
  SynthEngine Disabled(Off);
  EXPECT_EQ(Disabled.constraintStore(), nullptr);

  SynthEngine Defaulted{EngineOptions{}};
  ASSERT_NE(Defaulted.constraintStore(), nullptr);

  EngineOptions Pooled;
  Pooled.Learning = ConstraintStore::processStore();
  SynthEngine Shared(Pooled);
  EXPECT_EQ(Shared.constraintStore(), ConstraintStore::processStore());
}

// --- setStopToken mid-flight (regression) -----------------------------------

// setStopToken used to be an unguarded write with a "call before any
// concurrent use" contract — which the seed-import path in the sharded
// search quietly violated by installing the per-unit token between
// search phases, racing the locked readers inside addCexConstraint()
// and impossible(). It now serializes on the learner mutex. The first
// half pins the semantics (a fired token installed mid-flight stops
// both learning and solving); the second half hammers installs against
// concurrent learners so the TSan lane would catch the old race.
TEST(EarlyTerminationStopTest, MidFlightInstallIsHonored) {
  EarlyTermination ET;
  ET.addCexConstraint({0}, {1}); // 1 before 0.
  EXPECT_FALSE(ET.impossible());

  StopSource Src;
  Src.requestStop();
  ET.setStopToken(Src.token());
  ET.addCexConstraint({1}, {0}); // Dropped: cancelled searches learn nothing.
  EXPECT_FALSE(ET.impossible()); // Solve skipped, cached verdict returned.

  ET.setStopToken(StopToken()); // An empty token never stops.
  ET.addCexConstraint({1}, {0}); // 0 before 1: now circular.
  EXPECT_TRUE(ET.impossible());
}

TEST(EarlyTerminationStopTest, ConcurrentInstallAndLearnIsRaceFree) {
  EarlyTermination ET;
  std::atomic<bool> Done{false};
  std::thread Installer([&] {
    StopSource Src; // Never fired: learners must keep making progress.
    for (int I = 0; I < 1000; ++I)
      ET.setStopToken(I % 2 ? Src.token() : StopToken());
    Done.store(true);
  });
  std::vector<std::thread> Learners;
  for (unsigned T = 0; T < 4; ++T)
    Learners.emplace_back([&ET, &Done, T] {
      // Disjoint operation ranges per thread: the constraint set stays
      // satisfiable, so every impossible() exercises a real solve path.
      unsigned Base = T * 8;
      while (!Done.load()) {
        ET.addCexConstraint({Base}, {Base + 1});
        EXPECT_FALSE(ET.impossible());
      }
    });
  Installer.join();
  for (auto &T : Learners)
    T.join();
}
