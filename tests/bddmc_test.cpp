//===- tests/bddmc_test.cpp - symbolic checker tests -----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "bddmc/SymbolicChecker.h"

#include "ltl/Properties.h"
#include "ltl/TraceEval.h"
#include "mc/LabelingChecker.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

TEST(SymbolicCheckerTest, Fig1RedSatisfiesReachability) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  SymbolicChecker Checker;
  EXPECT_TRUE(Checker.bind(K, Phi).Holds);
  EXPECT_GT(Checker.peakNodes(), 2u);
}

TEST(SymbolicCheckerTest, ViolationYieldsValidCounterexample) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  Config Broken = N.Red;
  Broken.setTable(N.A[0], N.Green.table(N.A[0])); // Points at empty C2.
  KripkeStructure K(N.Topo, Broken, {N.FlowH1H3});
  SymbolicChecker Checker;
  CheckResult R = Checker.bind(K, Phi);
  ASSERT_FALSE(R.Holds);
  ASSERT_FALSE(R.Cex.empty());

  // The counterexample is a real path of the structure violating Phi.
  for (size_t I = 0; I + 1 < R.Cex.size(); ++I) {
    const auto &Succs = K.succs(R.Cex[I]);
    EXPECT_NE(std::find(Succs.begin(), Succs.end(), R.Cex[I + 1]),
              Succs.end());
  }
  Trace T;
  for (StateId S : R.Cex)
    T.push_back(K.stateInfo(S));
  EXPECT_FALSE(evalOnTrace(Phi, T));
}

/// The symbolic batch checker and the labeling checker agree on random
/// configurations and formulas.
TEST(SymbolicCheckerTest, AgreesWithLabelingChecker) {
  Rng R(61);
  unsigned Checked = 0;
  for (int Round = 0; Round != 40; ++Round) {
    RandomNet Net = randomNet(R, 5);
    Config Cfg = randomConfig(Net, R);
    FormulaFactory FF;
    Formula Phi = randomFormula(FF, R, 3, Net.Topo.numSwitches(),
                                Net.Topo.numPorts());

    KripkeStructure K1(Net.Topo, Cfg, Net.Classes);
    KripkeStructure K2(Net.Topo, Cfg, Net.Classes);
    LabelingChecker Labeling;
    SymbolicChecker Symbolic;
    bool A = Labeling.bind(K1, Phi).Holds;
    bool B = Symbolic.bind(K2, Phi).Holds;
    EXPECT_EQ(A, B) << printFormula(Phi);
    ++Checked;
  }
  EXPECT_EQ(Checked, 40u);
}

/// The synthesizer produces correct results when driven by the symbolic
/// backend (it learns from its counterexamples like it would from
/// NuSMV's).
TEST(SymbolicCheckerTest, DrivesSynthesis) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  SymbolicChecker Checker;
  SynthResult R = synthesizeUpdate(N.Topo, N.Red, N.Green, {N.FlowH1H3},
                                   Phi, Checker);
  ASSERT_EQ(R.Status, SynthStatus::Success);
  EXPECT_TRUE(allIntermediateConfigsHold(N.Topo, N.Red, {N.FlowH1H3}, Phi,
                                         R.Commands));
}

TEST(SymbolicCheckerTest, WaypointAndChainProperties) {
  Rng R(62);
  Topology Base = buildSmallWorld(14, 4, 0.2, R);
  for (PropertyKind Kind :
       {PropertyKind::Waypoint, PropertyKind::ServiceChain}) {
    std::optional<Scenario> S = makeDiamondScenario(Base, R, Kind);
    ASSERT_TRUE(S.has_value());
    FormulaFactory FF;
    Formula Phi = S->buildProperty(FF);
    KripkeStructure K(S->Topo, S->Initial, S->classes());
    SymbolicChecker Checker;
    EXPECT_TRUE(Checker.bind(K, Phi).Holds);

    // Breaking the path mid-branch must be caught.
    Config Broken = S->Initial;
    SwitchId Mid = S->Flows[0].InitialPath[1];
    Broken.setTable(Mid, Table());
    KripkeStructure K2(S->Topo, Broken, S->classes());
    EXPECT_FALSE(Checker.bind(K2, Phi).Holds);
  }
}
