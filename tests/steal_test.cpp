//===- tests/steal_test.cpp - work-stealing determinism tests --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determinism matrix for the work-stealing layer of the sharded search
/// (SynthOptions::WorkStealing): across shard counts {1, 2, 4, 8} and
/// steal on/off, verdicts must be identical on feasible and infeasible
/// instances, budget-bound runs must stay byte-identical to the 1-shard
/// reference (commands included), and deterministic budget mode must
/// never steal at all — its unit-local state forbids cross-shard
/// hand-offs, so a single stolen task there would be a contract breach.
///
//===----------------------------------------------------------------------===//

#include "mc/LabelingChecker.h"
#include "synth/Command.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// A feasible diamond scenario with at least \p MinUpdates updating
/// switches, so an 8-way split has real top-level units. Deterministic:
/// scans seeds from \p FirstSeed upward.
Scenario diamondWithUpdates(uint64_t FirstSeed, unsigned MinUpdates) {
  for (uint64_t Seed = FirstSeed; Seed != FirstSeed + 64; ++Seed) {
    Rng R(Seed);
    Topology Base = buildSmallWorld(24, 4, 0.2, R);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, R, PropertyKind::Reachability);
    if (S && numUpdatingSwitches(*S) >= MinUpdates)
      return std::move(*S);
  }
  ADD_FAILURE() << "no diamond with >= " << MinUpdates
                << " updating switches from seed " << FirstSeed;
  return Scenario{};
}

/// An exhaustion-proof instance: a feasible diamond whose destination is
/// blackholed in the final configuration, so every order fails and the
/// search must walk the whole safe sub-lattice to report Impossible.
/// This is the workload where stealing actually engages (many rechecks
/// per unit) and where an unsoundly dropped steal descriptor would turn
/// into a false Impossible.
Scenario blackholedDiamond(uint64_t FirstSeed, unsigned MinUpdates) {
  Scenario S = diamondWithUpdates(FirstSeed, MinUpdates);
  if (S.Flows.empty())
    return S;
  SwitchId Dst = S.Flows[0].FinalPath.back();
  S.Final.setTable(Dst, Table());
  return S;
}

/// Runs the plain (portfolio-free) search over \p S with the given shard
/// count and stealing mode; every shard gets its own incremental
/// labeling checker.
SynthResult runSearch(const Scenario &S, unsigned Shards, bool Steal,
                      uint64_t MaxCheckCalls = 0) {
  LabelingChecker Checker(LabelingChecker::Mode::Incremental);
  FormulaFactory FF;
  SynthOptions Opts;
  Opts.Shards = Shards;
  Opts.WorkStealing = Steal;
  Opts.MaxCheckCalls = MaxCheckCalls;
  Opts.WaitRemoval = false; // Keep command sequences minimal and stable.
  if (Shards > 1)
    Opts.ShardCheckerFactory = []() -> std::unique_ptr<CheckerBackend> {
      return std::make_unique<LabelingChecker>(
          LabelingChecker::Mode::Incremental);
    };
  return synthesizeUpdate(S, FF, Checker, Opts);
}

} // namespace

// Feasible instances: every (shards, steal) cell of the matrix agrees
// on the verdict, and every returned sequence is genuinely correct
// (replay-checked) — stealing may change WHICH correct sequence wins,
// never whether one is found.
TEST(StealDeterminismTest, FeasibleMatrixAgreesOnVerdict) {
  Scenario S = diamondWithUpdates(100, 5);
  FormulaFactory FF;
  Formula Phi = S.buildProperty(FF);
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    for (bool Steal : {false, true}) {
      SynthResult Res = runSearch(S, Shards, Steal);
      ASSERT_EQ(Res.Status, SynthStatus::Success)
          << Shards << " shards, steal=" << Steal;
      EXPECT_TRUE(allIntermediateConfigsHold(S.Topo, S.Initial, S.classes(),
                                             Phi, Res.Commands))
          << Shards << " shards, steal=" << Steal
          << ": unsafe sequence";
      if (Shards == 1 || !Steal) {
        EXPECT_EQ(Res.Stats.StolenTasks, 0u)
            << "stealing must be inert when off or unsharded";
      }
    }
  }
}

// Infeasible instances are the soundness-critical cells: an Impossible
// verdict claims the whole lattice was covered, so a steal descriptor
// published but never drained — or a subtree double-claimed and skipped
// — would surface here as a verdict flip across the matrix.
TEST(StealDeterminismTest, ExhaustionProofSurvivesStealing) {
  Scenario S = blackholedDiamond(300, 4);
  for (unsigned Shards : {1u, 2u, 4u, 8u})
    for (bool Steal : {false, true}) {
      SynthResult Res = runSearch(S, Shards, Steal);
      EXPECT_EQ(Res.Status, SynthStatus::Impossible)
          << Shards << " shards, steal=" << Steal
          << ": exhaustion verdict changed";
      EXPECT_TRUE(Res.Commands.empty());
    }
}

// Budget-bound cells: with MaxCheckCalls set the search runs in
// deterministic budget mode, whose verdict AND command sequence are a
// pure function of (job, budget) — byte-identical across every shard
// count and steal setting, with zero tasks stolen (budget mode turns
// stealing off internally; unit-local V/W/SAT state cannot migrate).
TEST(StealDeterminismTest, BudgetedCellsAreByteIdentical) {
  for (uint64_t Budget : {25u, 60u}) {
    // Both regimes: a budget too small to finish (deterministic Abort)
    // and, on the feasible instance at 60, enough to decide some units.
    for (bool Blackholed : {false, true}) {
      Scenario S = Blackholed ? blackholedDiamond(500, 4)
                              : diamondWithUpdates(400, 4);
      SynthResult Ref = runSearch(S, 1, /*Steal=*/false, Budget);
      std::string RefCmds = commandSeqToString(S.Topo, Ref.Commands);
      for (unsigned Shards : {1u, 2u, 4u, 8u})
        for (bool Steal : {false, true}) {
          SynthResult Res = runSearch(S, Shards, Steal, Budget);
          EXPECT_EQ(Res.Status, Ref.Status)
              << Shards << " shards, steal=" << Steal
              << ", budget=" << Budget << ": verdict drifted";
          EXPECT_EQ(commandSeqToString(S.Topo, Res.Commands), RefCmds)
              << Shards << " shards, steal=" << Steal
              << ", budget=" << Budget << ": sequence drifted";
          EXPECT_EQ(Res.Stats.StolenTasks, 0u)
              << "deterministic budget mode must never steal";
          // Total spend is shard-independent only when every unit runs
          // to its deterministic conclusion. A Success cancels sibling
          // shards mid-unit, so their partial spends are scheduling-
          // dependent (the verdict and sequence still are not).
          if (Ref.Status != SynthStatus::Success) {
            EXPECT_EQ(Res.Stats.BudgetSpent, Ref.Stats.BudgetSpent)
                << "budget accounting must not depend on shard count";
          }
        }
    }
  }
}

// StealDepth = 0 restricts offers to the unit root's own edges; the
// search must still be sound and complete with the narrowest window,
// and with stealing confined to depth 0 the verdicts must match the
// default-depth runs.
TEST(StealDeterminismTest, DepthZeroOffersStaySound) {
  Scenario Feasible = diamondWithUpdates(600, 4);
  Scenario Infeasible = blackholedDiamond(700, 4);
  for (const Scenario *S : {&Feasible, &Infeasible}) {
    LabelingChecker Checker(LabelingChecker::Mode::Incremental);
    FormulaFactory FF;
    SynthOptions Opts;
    Opts.Shards = 4;
    Opts.WorkStealing = true;
    Opts.StealDepth = 0;
    Opts.WaitRemoval = false;
    Opts.ShardCheckerFactory = []() -> std::unique_ptr<CheckerBackend> {
      return std::make_unique<LabelingChecker>(
          LabelingChecker::Mode::Incremental);
    };
    SynthResult Res = synthesizeUpdate(*S, FF, Checker, Opts);
    SynthResult Seq = runSearch(*S, 1, /*Steal=*/false);
    EXPECT_EQ(Res.Status, Seq.Status) << "depth-0 stealing flipped verdict";
  }
}
