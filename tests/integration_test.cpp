//===- tests/integration_test.cpp - cross-module scenarios ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests spanning synthesis, wait removal, the simulator, and
/// all checker backends: the guarantees the paper's artifact demonstrates
/// on real traffic, exercised here on the operational-semantics executor.
///
//===----------------------------------------------------------------------===//

#include "bddmc/SymbolicChecker.h"
#include "hsa/HsaChecker.h"
#include "ltl/TraceEval.h"
#include "mc/LabelingChecker.h"
#include "sim/Simulator.h"
#include "engine/Engine.h"
#include "synth/Baselines.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// Replays a command sequence on the simulator under continuous traffic
/// of every scenario flow; returns the number of dropped packets plus
/// per-trace property violations.
uint64_t replayAndCount(const Scenario &S, Formula Phi,
                        const CommandSeq &Cmds, unsigned Ticks) {
  Simulator Sim(S.Topo, S.Initial, SimParams{/*UpdateLatencyTicks=*/15});
  Sim.enqueueCommands(Cmds);
  uint64_t Id = 0;
  for (unsigned Tick = 0; Tick != Ticks; ++Tick) {
    for (const FlowSpec &F : S.Flows)
      Sim.injectPacket(F.SrcHost, F.Class.Hdr, Id++);
    Sim.step();
  }
  Sim.runToQuiescence(1u << 20);

  uint64_t Bad = Sim.droppedCount();
  for (uint64_t P = 0; P != Id; ++P) {
    Trace T;
    for (const Observation &Obs : Sim.packetTrace(P))
      T.push_back(StateInfo{Obs.Sw, Obs.Pt, Obs.Hdr});
    if (T.empty() || !evalOnTrace(Phi, T))
      ++Bad;
  }
  return Bad;
}

} // namespace

/// The full Fig. 8(h)/(i) pipeline under live traffic: the rule-granular
/// sequence for a crossed double diamond — with most waits removed —
/// keeps both opposite-direction flows intact on the wire.
TEST(IntegrationTest, RuleGranularDoubleDiamondCarriesLiveTraffic) {
  Rng R(1201);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  ASSERT_TRUE(S.has_value());

  FormulaFactory FF;
  Formula Phi = S->buildProperty(FF);
  LabelingChecker Checker;
  SynthOptions Opts;
  Opts.RuleGranularity = true;
  SynthResult Res = synthesizeUpdate(*S, FF, Checker, Opts);
  ASSERT_EQ(Res.Status, SynthStatus::Success);
  // Wait removal fired (a careful sequence would have one wait per
  // update).
  EXPECT_LT(Res.Stats.WaitsAfterRemoval, Res.Stats.WaitsBeforeRemoval);

  EXPECT_EQ(replayAndCount(*S, Phi, Res.Commands, 250), 0u);
}

/// Two-phase updates are consistent by construction: even on the crossed
/// double diamond (where no switch-granularity ordering exists) they
/// carry live traffic without loss.
TEST(IntegrationTest, TwoPhaseHandlesDoubleDiamond) {
  Rng R(1202);
  Topology Base = buildSmallWorld(18, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  ASSERT_TRUE(S.has_value());

  TwoPhasePlan Plan = makeTwoPhasePlan(S->Topo, S->Initial, S->Final);
  Simulator Sim(S->Topo, S->Initial, SimParams{/*UpdateLatencyTicks=*/10});
  Sim.enqueueCommands(Plan.fullSequence());
  uint64_t Sent = 0;
  for (unsigned Tick = 0; Tick != 400; ++Tick) {
    for (const FlowSpec &F : S->Flows)
      Sim.injectPacket(F.SrcHost, F.Class.Hdr, Sent++);
    Sim.step();
  }
  ASSERT_TRUE(Sim.runToQuiescence(1u << 20));
  EXPECT_EQ(Sim.droppedCount(), 0u);
  EXPECT_EQ(Sim.deliveries().size(), Sent);
}

/// All three LTL-capable backends agree on the §2 red->blue example with
/// the either-waypoint property, including intermediate configurations.
TEST(IntegrationTest, BackendsAgreeOnFig1Intermediates) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = eitherWaypointProperty(FF, N.srcPort(), N.A[2], N.A[3],
                                       N.dstPort());

  std::vector<SwitchId> Diff = diffSwitches(N.Red, N.Blue);
  Rng R(1203);
  for (int Round = 0; Round != 16; ++Round) {
    Config Mid = N.Red;
    for (SwitchId Sw : Diff)
      if (R.nextBool())
        Mid.setTable(Sw, N.Blue.table(Sw));

    KripkeStructure K1(N.Topo, Mid, {N.FlowH1H3});
    KripkeStructure K2(N.Topo, Mid, {N.FlowH1H3});
    KripkeStructure K3(N.Topo, Mid, {N.FlowH1H3});
    LabelingChecker Labeling;
    SymbolicChecker Symbolic;
    NaiveTraceChecker Naive;
    bool A = Labeling.bind(K1, Phi).Holds;
    bool B = Symbolic.bind(K2, Phi).Holds;
    bool C = Naive.bind(K3, Phi).Holds;
    EXPECT_EQ(A, B);
    EXPECT_EQ(A, C);
  }
}

/// Synthesized sequences for the Fig. 1 red->blue transition execute on
/// the simulator with zero property violations, whichever backend drove
/// the search.
TEST(IntegrationTest, SynthesizedBlueMigrationIsSafeOnTheWire) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = eitherWaypointProperty(FF, N.srcPort(), N.A[2], N.A[3],
                                       N.dstPort());

  Scenario S;
  S.Topo = N.Topo;
  S.Initial = N.Red;
  S.Final = N.Blue;
  FlowSpec F;
  F.Class = N.FlowH1H3;
  F.SrcHost = N.H[0];
  F.DstHost = N.H[2];
  F.SrcPort = N.srcPort();
  F.DstPort = N.dstPort();
  S.Flows.push_back(F);

  for (int UseSymbolic = 0; UseSymbolic != 2; ++UseSymbolic) {
    LabelingChecker Labeling;
    SymbolicChecker Symbolic;
    CheckerBackend &Checker =
        UseSymbolic ? static_cast<CheckerBackend &>(Symbolic)
                    : static_cast<CheckerBackend &>(Labeling);
    SynthResult Res = synthesizeUpdate(N.Topo, N.Red, N.Blue,
                                       {N.FlowH1H3}, Phi, Checker);
    ASSERT_EQ(Res.Status, SynthStatus::Success) << Checker.name();
    EXPECT_EQ(replayAndCount(S, Phi, Res.Commands, 250), 0u)
        << Checker.name();
  }
}

/// subtractCube: pieces are disjoint from B, contained in A, and together
/// with A&B cover A — verified by sampling concrete headers.
TEST(IntegrationTest, SubtractCubeAlgebra) {
  Rng R(1204);
  for (int Round = 0; Round != 200; ++Round) {
    auto RandomCube = [&R]() {
      Pattern P;
      for (unsigned I = 0; I != NumFields; ++I)
        if (R.nextBool())
          P.Values[I] = static_cast<uint32_t>(R.nextBelow(4));
      return TernaryMatch::ofPattern(P);
    };
    TernaryMatch A = RandomCube(), B = RandomCube();
    std::vector<TernaryMatch> Pieces = subtractCube(A, B);

    for (int Sample = 0; Sample != 64; ++Sample) {
      Header H = makeHeader(static_cast<uint32_t>(R.nextBelow(4)),
                            static_cast<uint32_t>(R.nextBelow(4)),
                            static_cast<uint32_t>(R.nextBelow(4)));
      bool InA = A.containsHeader(H);
      bool InB = B.containsHeader(H);
      unsigned InPieces = 0;
      for (const TernaryMatch &P : Pieces)
        InPieces += P.containsHeader(H);
      // A \ B membership, and the pieces are pairwise disjoint.
      EXPECT_EQ(InPieces, (InA && !InB) ? 1u : 0u);
    }
  }
}

/// The naive baseline really is unsafe: on the Fig. 1 example it violates
/// the property that the synthesized order preserves, under identical
/// traffic.
TEST(IntegrationTest, NaiveBaselineDropsWhereOrderingDoesNot) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  Scenario S;
  S.Topo = N.Topo;
  S.Initial = N.Red;
  S.Final = N.Green;
  FlowSpec F;
  F.Class = N.FlowH1H3;
  F.SrcHost = N.H[0];
  F.DstHost = N.H[2];
  F.SrcPort = N.srcPort();
  F.DstPort = N.dstPort();
  S.Flows.push_back(F);

  // Worst-case naive order: A1 before C2.
  CommandSeq Naive;
  Naive.push_back(Command::update(N.A[0], N.Green.table(N.A[0])));
  Naive.push_back(Command::update(N.C2, N.Green.table(N.C2)));
  EXPECT_GT(replayAndCount(S, Phi, Naive, 250), 0u);

  LabelingChecker Checker;
  SynthResult Res = synthesizeUpdate(N.Topo, N.Red, N.Green, {N.FlowH1H3},
                                     Phi, Checker);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(replayAndCount(S, Phi, Res.Commands, 250), 0u);
}

/// A service-chain scenario driven end to end through the SynthEngine:
/// the portfolio picks a winner, the winning sequence is careful at
/// every intermediate configuration, and it lands on the final
/// forwarding behaviour for the chained flow.
TEST(IntegrationTest, ServiceChainScenarioThroughEngine) {
  Rng R(1301);
  Topology Base = buildSmallWorld(22, 4, 0.25, R);
  std::optional<Scenario> S = makeDiamondScenarioRetrying(
      Base, R, PropertyKind::ServiceChain);
  ASSERT_TRUE(S.has_value());
  ASSERT_FALSE(S->Flows[0].Waypoints.empty());

  SynthJob Job;
  Job.Name = "service-chain";
  Job.S = *S;
  Job.Portfolio = defaultPortfolio();

  EngineOptions EO;
  EO.NumWorkers = 2;
  SynthEngine E(EO);
  BatchReport BR = E.run({Job});
  ASSERT_EQ(BR.Reports.size(), 1u);
  const SynthReport &Rep = BR.Reports[0];
  ASSERT_EQ(Rep.Result.Status, SynthStatus::Success) << Rep.Winner;
  EXPECT_FALSE(Rep.Winner.empty());

  FormulaFactory FF;
  Formula Phi = S->buildProperty(FF);
  EXPECT_TRUE(allIntermediateConfigsHold(S->Topo, S->Initial, S->classes(),
                                         Phi, Rep.Result.Commands));

  // The sequence reaches the final forwarding behaviour (semantically:
  // rule-granularity winners may order a table's rules differently).
  Config Cur = S->Initial;
  for (const Command &C : Rep.Result.Commands)
    if (C.K == Command::Kind::Update)
      Cur.setTable(C.Sw, C.NewTable);
  for (SwitchId Sw : diffSwitches(Cur, S->Final))
    for (const TrafficClass &TC : S->classes())
      for (PortId Pt : S->Topo.switchPorts(Sw))
        EXPECT_EQ(Cur.table(Sw).apply(TC.Hdr, Pt),
                  S->Final.table(Sw).apply(TC.Hdr, Pt));
}

/// A batch of multi-flow scenarios (three disjoint flows each, mixed
/// property kinds) through the engine: every job synthesizes, reports
/// stay in job order, and every winning sequence is careful for the
/// conjunction of its flows' properties.
TEST(IntegrationTest, MultiFlowBatchThroughEngine) {
  std::vector<SynthJob> Jobs;
  std::vector<Scenario> Kept;
  PropertyKind Kinds[] = {PropertyKind::Reachability,
                          PropertyKind::Waypoint,
                          PropertyKind::ServiceChain};
  for (uint64_t Seed = 1401; Seed != 1409 && Jobs.size() < 4; ++Seed) {
    Rng R(Seed);
    Topology Base = buildSmallWorld(26, 4, 0.25, R);
    DiamondOptions Opts;
    Opts.NumFlows = 3;
    std::optional<Scenario> S = makeDiamondScenarioRetrying(
        Base, R, Kinds[Jobs.size() % 3], Opts);
    if (!S)
      continue;
    SynthJob J;
    J.Name = "multiflow" + std::to_string(Jobs.size());
    J.S = *S;
    J.Portfolio = defaultPortfolio();
    Jobs.push_back(J);
    Kept.push_back(*S);
  }
  ASSERT_GE(Jobs.size(), 3u);

  EngineOptions EO;
  EO.NumWorkers = 2;
  SynthEngine E(EO);
  BatchReport BR = E.run(Jobs);
  ASSERT_EQ(BR.Reports.size(), Jobs.size());
  for (size_t I = 0; I != BR.Reports.size(); ++I) {
    const SynthReport &Rep = BR.Reports[I];
    EXPECT_EQ(Rep.JobIndex, I);
    EXPECT_EQ(Rep.JobName, Jobs[I].Name);
    ASSERT_EQ(Rep.Result.Status, SynthStatus::Success) << Jobs[I].Name;
    EXPECT_EQ(Kept[I].Flows.size(), 3u);
    FormulaFactory FF;
    Formula Phi = Kept[I].buildProperty(FF);
    EXPECT_TRUE(allIntermediateConfigsHold(Kept[I].Topo, Kept[I].Initial,
                                           Kept[I].classes(), Phi,
                                           Rep.Result.Commands))
        << Jobs[I].Name;
  }
}
