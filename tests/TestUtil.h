//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random generators and checking helpers shared by the test suites:
/// random LTL formulas, random network configurations (loops and
/// blackholes included), and a replay-based soundness check for
/// synthesized command sequences.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_TESTS_TESTUTIL_H
#define NETUPD_TESTS_TESTUTIL_H

#include "kripke/Kripke.h"
#include "ltl/Formula.h"
#include "ltl/TraceEval.h"
#include "mc/NaiveTraceChecker.h"
#include "net/Config.h"
#include "support/Random.h"
#include "synth/Command.h"
#include "topo/Generators.h"

#include <vector>

namespace netupd {
namespace testutil {

/// A random atomic proposition over small switch/port/field ranges.
inline Prop randomProp(Rng &R, unsigned MaxSwitch, unsigned MaxPort) {
  switch (R.nextBelow(3)) {
  case 0:
    return Prop::onSwitch(static_cast<SwitchId>(R.nextBelow(MaxSwitch)));
  case 1:
    return Prop::onPort(static_cast<PortId>(R.nextBelow(MaxPort)));
  default:
    return Prop::onField(Field::Dst, static_cast<uint32_t>(R.nextBelow(4)));
  }
}

/// A random NNF formula of the given depth budget.
inline Formula randomFormula(FormulaFactory &FF, Rng &R, unsigned Depth,
                             unsigned MaxSwitch = 6, unsigned MaxPort = 12) {
  if (Depth == 0 || R.nextBelow(5) == 0) {
    switch (R.nextBelow(4)) {
    case 0:
      return FF.top();
    case 1:
      return FF.bottom();
    case 2:
      return FF.atom(randomProp(R, MaxSwitch, MaxPort));
    default:
      return FF.notAtom(randomProp(R, MaxSwitch, MaxPort));
    }
  }
  Formula A = randomFormula(FF, R, Depth - 1, MaxSwitch, MaxPort);
  Formula B = randomFormula(FF, R, Depth - 1, MaxSwitch, MaxPort);
  switch (R.nextBelow(5)) {
  case 0:
    return FF.conj(A, B);
  case 1:
    return FF.disj(A, B);
  case 2:
    return FF.next(A);
  case 3:
    return FF.until(A, B);
  default:
    return FF.release(A, B);
  }
}

/// A random trace of StateInfos over small ranges.
inline Trace randomTrace(Rng &R, size_t Len, unsigned MaxSwitch = 6,
                         unsigned MaxPort = 12) {
  Trace T;
  for (size_t I = 0; I != Len; ++I) {
    StateInfo S;
    S.Sw = static_cast<SwitchId>(R.nextBelow(MaxSwitch));
    S.Pt = static_cast<PortId>(R.nextBelow(MaxPort));
    S.Hdr = makeHeader(static_cast<uint32_t>(R.nextBelow(4)),
                       static_cast<uint32_t>(R.nextBelow(4)));
    T.push_back(S);
  }
  return T;
}

/// A small random topology: ring of \p NumSwitches plus chords, with two
/// hosts on random switches.
struct RandomNet {
  Topology Topo;
  std::vector<TrafficClass> Classes;
  PortId SrcPort = InvalidPort;
  PortId DstPort = InvalidPort;
};

inline RandomNet randomNet(Rng &R, unsigned NumSwitches) {
  RandomNet N;
  for (unsigned I = 0; I != NumSwitches; ++I)
    N.Topo.addSwitch("s" + std::to_string(I));
  for (unsigned I = 0; I != NumSwitches; ++I)
    N.Topo.connectSwitches(I, (I + 1) % NumSwitches);
  unsigned Chords = NumSwitches / 2;
  for (unsigned I = 0; I != Chords; ++I) {
    SwitchId A = static_cast<SwitchId>(R.nextBelow(NumSwitches));
    SwitchId B = static_cast<SwitchId>(R.nextBelow(NumSwitches));
    if (A != B)
      N.Topo.connectSwitches(A, B);
  }
  HostId HS = N.Topo.addHost("hs");
  HostId HD = N.Topo.addHost("hd");
  SwitchId SwS = static_cast<SwitchId>(R.nextBelow(NumSwitches));
  SwitchId SwD = static_cast<SwitchId>(R.nextBelow(NumSwitches));
  N.SrcPort = N.Topo.attachHost(HS, SwS);
  N.DstPort = N.Topo.attachHost(HD, SwD == SwS ? (SwD + 1) % NumSwitches
                                               : SwD);
  N.Classes.push_back(TrafficClass{makeHeader(1, 2), "c0"});
  return N;
}

/// A random configuration for \p Net: every switch forwards the class out
/// a random port, or drops it. Loops and blackholes are possible by
/// design — tests exercise rejection paths with these.
inline Config randomConfig(const RandomNet &Net, Rng &R,
                           double DropProb = 0.2) {
  Config Cfg(Net.Topo.numSwitches());
  for (SwitchId Sw = 0; Sw != Net.Topo.numSwitches(); ++Sw) {
    if (R.nextDouble() < DropProb)
      continue; // No rule: blackhole.
    const std::vector<PortId> &Ports = Net.Topo.switchPorts(Sw);
    if (Ports.empty())
      continue;
    Rule Rl;
    Rl.Priority = 10;
    Rl.Pat = Pattern::wildcard();
    Rl.Actions.push_back(
        Action::forward(Ports[R.nextBelow(Ports.size())]));
    Table T;
    T.addRule(Rl);
    Cfg.setTable(Sw, T);
  }
  return Cfg;
}

/// Replays \p Cmds from \p Initial and model-checks every intermediate
/// configuration with a fresh brute-force checker. Returns true iff all
/// configurations (including the initial one) satisfy \p Phi — the
/// careful-correctness condition of Lemma 2.
inline bool allIntermediateConfigsHold(const Topology &Topo,
                                       const Config &Initial,
                                       const std::vector<TrafficClass> &Cs,
                                       Formula Phi, const CommandSeq &Cmds) {
  Config Cur = Initial;
  auto Holds = [&](const Config &C) {
    KripkeStructure K(Topo, C, Cs);
    NaiveTraceChecker Checker;
    return Checker.bind(K, Phi).Holds;
  };
  if (!Holds(Cur))
    return false;
  for (const Command &C : Cmds) {
    if (C.K != Command::Kind::Update)
      continue;
    Cur.setTable(C.Sw, C.NewTable);
    if (!Holds(Cur))
      return false;
  }
  return true;
}

} // namespace testutil
} // namespace netupd

#endif // NETUPD_TESTS_TESTUTIL_H
