//===- tests/annotations_test.cpp - capability wrapper tests ---*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime behavior of the capability-wrapped primitives in
/// support/ThreadAnnotations.h — the wrappers must be functionally
/// identical to the std types they hold — plus compile-time pins that
/// the annotation macros expand to nothing on non-Clang compilers.
///
/// The *negative* side (locking-discipline violations must fail to
/// compile under clang -Wthread-safety -Werror) cannot live in a
/// runtime test; cmake/AnnotationChecks.cmake covers it with
/// try_compile over tests/annotations/*.cpp at configure time.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "support/ThreadAnnotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

using namespace netupd;

// ---- Macro no-op pin -------------------------------------------------------
//
// On a non-Clang compiler every NETUPD_* annotation must vanish entirely:
// stringifying the expansion yields the empty string (sizeof 1 — just
// the NUL). On Clang the expansion is the attribute, so the sizeof is
// larger. Either way the macros must never change codegen; this pins the
// off-Clang half, and the CI clang lane exercises the on-Clang half by
// building this same test with the attributes live.

#define NETUPD_TEST_STR_INNER(x) #x
#define NETUPD_TEST_STR(x) NETUPD_TEST_STR_INNER(x)

#if !defined(__clang__)
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_GUARDED_BY(M))) == 1,
              "NETUPD_GUARDED_BY must expand to nothing off-Clang");
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_REQUIRES(M))) == 1,
              "NETUPD_REQUIRES must expand to nothing off-Clang");
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_ACQUIRE(M))) == 1,
              "NETUPD_ACQUIRE must expand to nothing off-Clang");
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_RELEASE(M))) == 1,
              "NETUPD_RELEASE must expand to nothing off-Clang");
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_CAPABILITY("mutex"))) == 1,
              "NETUPD_CAPABILITY must expand to nothing off-Clang");
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_SCOPED_CAPABILITY)) == 1,
              "NETUPD_SCOPED_CAPABILITY must expand to nothing off-Clang");
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_EXCLUDES(M))) == 1,
              "NETUPD_EXCLUDES must expand to nothing off-Clang");
static_assert(sizeof(NETUPD_TEST_STR(NETUPD_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "NETUPD_NO_THREAD_SAFETY_ANALYSIS must expand to nothing "
              "off-Clang");
#endif

// The wrappers must add no storage beyond the std primitive they hold.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Mutex wrapper must be layout-identical to std::mutex");

// ---- Mutex / MutexLock -----------------------------------------------------

TEST(AnnotationsTest, MutexExcludesConcurrentCriticalSections) {
  Mutex M;
  int Guarded = 0;
  constexpr int NumThreads = 8, PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        MutexLock Lock(M);
        ++Guarded;
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Guarded, NumThreads * PerThread);
}

TEST(AnnotationsTest, MutexTryLockReflectsOwnership) {
  Mutex M;
  EXPECT_TRUE(M.try_lock());
  // Held: a second claim from another thread must fail.
  bool Second = true;
  std::thread([&] { Second = M.try_lock(); }).join();
  EXPECT_FALSE(Second);
  M.unlock();
  EXPECT_TRUE(M.try_lock());
  M.unlock();
}

TEST(AnnotationsTest, AdoptLockReleasesOnScopeExit) {
  Mutex M;
  M.lock();
  { MutexLock Lock(M, std::adopt_lock); }
  // The scope above must have released it.
  EXPECT_TRUE(M.try_lock());
  M.unlock();
}

// ---- SharedMutex: readers coexist, writers exclude -------------------------

TEST(AnnotationsTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex M;
  M.lock_shared();
  bool SecondReader = false;
  std::thread([&] {
    SecondReader = M.try_lock_shared();
    if (SecondReader)
      M.unlock_shared();
  }).join();
  EXPECT_TRUE(SecondReader);
  // A writer must be excluded while a reader holds it.
  bool Writer = true;
  std::thread([&] { Writer = M.try_lock(); }).join();
  EXPECT_FALSE(Writer);
  M.unlock_shared();
}

TEST(AnnotationsTest, SharedMutexWriterExcludesReaders) {
  SharedMutex M;
  {
    SharedMutexLock Writer(M);
    bool Reader = true;
    std::thread([&] { Reader = M.try_lock_shared(); }).join();
    EXPECT_FALSE(Reader);
  }
  // Writer scope ended; readers may enter again.
  {
    SharedReaderLock R1(M);
    bool R2 = false;
    std::thread([&] {
      R2 = M.try_lock_shared();
      if (R2)
        M.unlock_shared();
    }).join();
    EXPECT_TRUE(R2);
  }
}

// ---- CondVar: the Engine queue handshake in miniature ----------------------

TEST(AnnotationsTest, CondVarWakesWaiterAndKeepsCapability) {
  Mutex M;
  CondVar CV;
  bool Ready = false;
  int Observed = -1;
  std::thread Waiter([&] {
    MutexLock Lock(M);
    while (!Ready)
      CV.wait(M);
    // The capability must still be held here: this read is racy
    // otherwise, and the ASan/TSan lanes would flag it.
    Observed = Ready ? 1 : 0;
  });
  {
    MutexLock Lock(M);
    Ready = true;
  }
  CV.notify_one();
  Waiter.join();
  EXPECT_EQ(Observed, 1);
}

TEST(AnnotationsTest, CondVarNotifyAllWakesEveryWaiter) {
  Mutex M;
  CondVar CV;
  bool Go = false;
  std::atomic<int> Awake{0};
  constexpr int NumWaiters = 4;
  std::vector<std::thread> Waiters;
  for (int I = 0; I < NumWaiters; ++I)
    Waiters.emplace_back([&] {
      MutexLock Lock(M);
      while (!Go)
        CV.wait(M);
      Awake.fetch_add(1);
    });
  {
    MutexLock Lock(M);
    Go = true;
  }
  CV.notify_all();
  for (auto &T : Waiters)
    T.join();
  EXPECT_EQ(Awake.load(), NumWaiters);
}

// ---- timedLock interop -----------------------------------------------------
//
// The obs helpers are the adopt-lock producers for the whole tree; they
// must compose with the wrappers under both detail settings.

TEST(AnnotationsTest, TimedLockAdoptPairWorksWithWrappers) {
  Mutex M;
  SharedMutex SM;
  obs::Histogram H;
  for (bool Detail : {false, true}) {
    obs::setDetail(Detail);
    int Guarded = 0;
    {
      obs::timedLock(M, H);
      MutexLock Lock(M, std::adopt_lock);
      ++Guarded;
    }
    EXPECT_TRUE(M.try_lock()); // Released on scope exit.
    M.unlock();
    {
      obs::timedLockShared(SM, H);
      SharedReaderLock Lock(SM, std::adopt_lock);
      Guarded += 1;
    }
    EXPECT_TRUE(SM.try_lock());
    SM.unlock();
    EXPECT_EQ(Guarded, 2);
  }
  obs::setDetail(false);
}
