//===- tests/conflict_test.cpp - conflict-driven search tests --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the conflict-driven learning layer (synth/OrderUpdate.cpp):
/// clause minimization, activity-based candidate ordering, deterministic
/// Luby restarts, and the learning-aware portfolio shed. The contracts:
///
///  - the knobs never change a verdict, at any backend, shard count, or
///    budget — they reorder and shrink the search, nothing else;
///  - ClauseMinimization additionally never changes a *sequence*:
///    minimization is sound resolution over already-refuted entries, so
///    the refuted candidate set, conflict order, activity bumps, and
///    restart points are identical with it on or off, and sequential
///    runs compare byte for byte;
///  - minimized clauses still refute — a store seeded by a minimizing
///    run reproduces the reference verdict and (sequentially) the
///    byte-identical sequence, and accelerates an Impossible re-proof;
///  - restarts are deterministic: two sequential runs of a deep
///    exhaustive proof agree on every conflict counter and restart
///    count, not just the verdict;
///  - the shed consumes up-front UNSAT proofs only for members that
///    opted into conflict-driven learning; knob-off members run the
///    full standalone search (and still publish what they learn);
///  - ConstraintStore insert-time subsumption keeps only the frontier
///    of strongest refutations and counts both drop directions.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "mc/BackendFactory.h"
#include "net/Config.h"
#include "sat/Solver.h"
#include "support/ConstraintStore.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace netupd;
using namespace netupd::testutil;

namespace {

/// A feasible diamond scenario with at least \p MinUpdates updating
/// switches. Deterministic: scans seeds from \p FirstSeed upward.
Scenario diamondWithUpdates(uint64_t FirstSeed, unsigned MinUpdates) {
  for (uint64_t Seed = FirstSeed; Seed != FirstSeed + 64; ++Seed) {
    Rng R(Seed);
    Topology Base = buildSmallWorld(24, 4, 0.2, R);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, R, PropertyKind::Reachability);
    if (S && numUpdatingSwitches(*S) >= MinUpdates)
      return std::move(*S);
  }
  ADD_FAILURE() << "no diamond with >= " << MinUpdates
                << " updating switches from seed " << FirstSeed;
  return Scenario{};
}

/// The Fig. 8(h) instance: switch-granularity infeasible, rule feasible.
Scenario doubleDiamond(uint64_t Seed) {
  Rng R(Seed);
  Topology Base = buildSmallWorld(20, 4, 0.2, R);
  std::optional<Scenario> S = makeDoubleDiamondScenario(Base, R);
  EXPECT_TRUE(S.has_value()) << "seed " << Seed << " grew no double diamond";
  return std::move(*S);
}

/// A deep exhaustive Impossible proof, the bench/engine_scaling.cpp
/// "deep-proof" recipe at a test-sized diff cap: a long-path diamond
/// whose final config blackholes the destination, so the search must
/// refute the entire safe sub-lattice — thousands of conflicts, enough
/// to cross the Luby restart base and to give clause minimization
/// sibling entries to resolve against. \p Skip selects among the
/// instances the seed grows; the tests use Skip=1, whose lattice both
/// restarts and minimizes within a few thousand checker queries.
Scenario deepImpossible(unsigned Skip = 0) {
  constexpr unsigned DiffCap = 22;
  Rng SR(23);
  DiamondOptions DO;
  DO.LongPaths = true;
  for (unsigned I = 0; I != 32; ++I) {
    Rng Fork = SR.fork();
    Topology Base = buildSmallWorld(96, 4, 0.2, Fork);
    std::optional<Scenario> S =
        makeDiamondScenario(Base, Fork, PropertyKind::Reachability, DO);
    if (!S)
      continue;
    if (Skip > 0) {
      --Skip;
      continue;
    }
    SwitchId Dst = S->Flows[0].FinalPath.back();
    S->Final.setTable(Dst, Table());
    std::vector<SwitchId> Diff = diffSwitches(S->Initial, S->Final);
    unsigned Kept = 0;
    for (SwitchId Sw : Diff) {
      if (Sw == Dst)
        continue;
      if (++Kept > DiffCap - 1)
        S->Final.setTable(Sw, S->Initial.table(Sw));
    }
    return std::move(*S);
  }
  ADD_FAILURE() << "no deep-proof instance grew from seed 23";
  return Scenario{};
}

/// What one run observably produced, for invariance comparisons.
struct RunResult {
  SynthStatus Status = SynthStatus::Aborted;
  std::string Rendered; // commandSeqToString: the byte-exact fingerprint.
  CommandSeq Commands;
  SynthStats Stats;
};

/// Runs one single-member job on a fresh 1-worker engine with the result
/// cache off (the search layer, not replay, is under test). \p Store
/// null means SharedLearning off. \p Tweak adjusts the member's
/// SynthOptions (the conflict knobs, budgets, shards).
RunResult runOnce(const Scenario &S, const std::string &Backend,
                  unsigned Shards,
                  const std::shared_ptr<ConstraintStore> &Store,
                  const std::function<void(SynthOptions &)> &Tweak = {}) {
  SynthJob Job;
  Job.S = S;
  PortfolioMember M;
  M.Backend = Backend;
  M.Opts.Shards = Shards;
  if (Tweak)
    Tweak(M.Opts);
  Job.Portfolio.push_back(std::move(M));

  EngineOptions EO;
  EO.NumWorkers = 1;
  EO.CacheResults = false;
  EO.SharedLearning = Store != nullptr;
  EO.Learning = Store;
  SynthEngine Engine(EO);
  BatchReport Rep = Engine.run({Job});
  const SynthReport &R = Rep.Reports[0];
  EXPECT_TRUE(R.Members[0].Error.empty()) << R.Members[0].Error;

  RunResult Out;
  Out.Status = R.Result.Status;
  Out.Rendered = commandSeqToString(S.Topo, R.Result.Commands);
  Out.Commands = R.Result.Commands;
  Out.Stats = R.Result.Stats;
  return Out;
}

/// Replay-checks a successful sequence (the validity notion the knobs
/// that may legally reorder the search are held to).
void expectValidSequence(const Scenario &S, const CommandSeq &Cmds) {
  FormulaFactory FF;
  Formula Phi = S.buildProperty(FF);
  EXPECT_TRUE(
      allIntermediateConfigsHold(S.Topo, S.Initial, S.classes(), Phi, Cmds))
      << "a conflict knob produced an unsafe sequence";
}

Bitset bits(size_t N, std::initializer_list<unsigned> Set) {
  Bitset B(N);
  for (unsigned I : Set)
    B.set(I);
  return B;
}

/// The three conflict knobs as a test vector.
struct Knobs {
  const char *Name;
  bool Min, Act, Rst;
};

void applyKnobs(SynthOptions &O, const Knobs &K) {
  O.ClauseMinimization = K.Min;
  O.ActivityOrdering = K.Act;
  O.Restarts = K.Rst;
}

constexpr Knobs SingleOff[] = {
    {"min-off", false, true, true},
    {"act-off", true, false, true},
    {"rst-off", true, true, false},
};

} // namespace

// --- The restart cadence ----------------------------------------------------

// The DFS restarts on the same Luby schedule as the SAT solver; pin the
// shared sequence (0-based, as sat::luby documents).
TEST(ConflictLubyTest, SequencePin) {
  const uint64_t Expect[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (size_t I = 0; I != std::size(Expect); ++I)
    EXPECT_EQ(sat::luby(I), Expect[I]) << "index " << I;
}

// --- ConstraintStore subsumption --------------------------------------------

TEST(ConflictStoreTest, SubsumesOrdersRefutationStrength) {
  using Entry = ConstraintStore::Entry;
  Entry Small{bits(6, {1, 3}), bits(6, {1})};
  Entry Fat{bits(6, {1, 2, 3}), bits(6, {1, 2})};
  Entry Disagrees{bits(6, {1, 2, 3}), bits(6, {2, 3})};
  // Fat's value agrees with Small on Small's mask and carries more
  // constraints: every config Fat refutes, Small refutes too.
  EXPECT_TRUE(ConstraintStore::subsumes(Small, Fat));
  EXPECT_FALSE(ConstraintStore::subsumes(Fat, Small))
      << "a superset mask must never subsume its own core";
  EXPECT_FALSE(ConstraintStore::subsumes(Small, Disagrees))
      << "value disagreement on the core's mask breaks subsumption";
  EXPECT_TRUE(ConstraintStore::subsumes(Small, Small))
      << "subsumption must be reflexive";
}

TEST(ConflictStoreTest, InsertTimeSubsumptionKeepsOnlyTheFrontier) {
  ConstraintStore Store;
  Digest Key = ConstraintStore::keyFor(Digest{11, 11}, false);

  // A fat ancestor, then the minimized core carved from it: the core
  // evicts the ancestor (reverse subsumption), and the drop is counted.
  size_t Dropped = 0;
  EXPECT_EQ(Store.publish(Key, 6, {{bits(6, {1, 2, 3}), bits(6, {1, 2})}},
                          &Dropped),
            1u);
  EXPECT_EQ(Dropped, 0u);
  EXPECT_EQ(Store.publish(Key, 6, {{bits(6, {1, 3}), bits(6, {1})}},
                          &Dropped),
            1u);
  EXPECT_EQ(Dropped, 1u) << "the minimized core must evict its ancestor";
  std::vector<ConstraintStore::Entry> Frontier = Store.fetch(Key, 6);
  ASSERT_EQ(Frontier.size(), 1u);
  EXPECT_EQ(Frontier[0].first, bits(6, {1, 3}));

  // Forward direction: an incoming entry dominated by the stored core
  // is dropped at insert, and also counted.
  Dropped = 0;
  EXPECT_EQ(Store.publish(Key, 6, {{bits(6, {1, 3, 5}), bits(6, {1, 5})}},
                          &Dropped),
            0u);
  EXPECT_EQ(Dropped, 1u) << "a dominated incoming entry must be dropped";
  EXPECT_EQ(Store.fetch(Key, 6).size(), 1u);

  // An up-front UNSAT proof survives later publishes, and publishes
  // survive the proof: the two records are independent halves of one key.
  EXPECT_FALSE(Store.knownImpossible(Key));
  Store.markImpossible(Key, 6);
  EXPECT_TRUE(Store.knownImpossible(Key));
  EXPECT_EQ(Store.publish(Key, 6, {{bits(6, {0, 2}), bits(6, {2})}}), 1u);
  EXPECT_TRUE(Store.knownImpossible(Key));
  EXPECT_EQ(Store.fetch(Key, 6).size(), 2u);
}

// --- Invariance matrix ------------------------------------------------------

// For every registered backend (the memoizing decorator included) and
// shard count, switching any one conflict knob off reproduces the
// all-on verdict; ClauseMinimization off additionally reproduces the
// byte-identical sequential sequence (minimization never changes which
// candidates get refuted, only how the refutations generalize).
TEST(ConflictInvarianceTest, FeasibleKnobMatrixAcrossBackendRegistry) {
  Scenario Feas = diamondWithUpdates(9000, 4);
  std::vector<std::string> Backends = BackendFactory::instance().names();
  Backends.push_back("memo:incremental");
  for (const std::string &Backend : Backends) {
    for (unsigned Shards : {1u, 4u}) {
      RunResult Ref = runOnce(Feas, Backend, Shards, nullptr);
      EXPECT_EQ(Ref.Status, SynthStatus::Success) << Backend;
      for (const Knobs &K : SingleOff) {
        RunResult Off = runOnce(Feas, Backend, Shards, nullptr,
                                [&K](SynthOptions &O) { applyKnobs(O, K); });
        EXPECT_EQ(Off.Status, Ref.Status)
            << Backend << " shards=" << Shards << " " << K.Name
            << ": a conflict knob changed the verdict";
        if (!K.Min && Shards == 1) {
          EXPECT_EQ(Off.Rendered, Ref.Rendered)
              << Backend << ": minimization moved the sequential sequence";
        } else if (Off.Status == SynthStatus::Success) {
          expectValidSequence(Feas, Off.Commands);
        }
      }
    }
  }
}

// Infeasibility is knob-independent at every setting, and the empty
// sequence makes every comparison byte-exact.
TEST(ConflictInvarianceTest, InfeasibleVerdictsSurviveEveryKnob) {
  Scenario Inf = doubleDiamond(9);
  const Knobs AllOff{"all-off", false, false, false};
  for (const char *Backend : {"incremental", "batch"}) {
    for (unsigned Shards : {1u, 4u}) {
      RunResult Ref = runOnce(Inf, Backend, Shards, nullptr);
      EXPECT_EQ(Ref.Status, SynthStatus::Impossible) << Backend;
      for (const Knobs *K : {&SingleOff[0], &SingleOff[1], &SingleOff[2],
                             &AllOff}) {
        RunResult Off = runOnce(Inf, Backend, Shards, nullptr,
                                [K](SynthOptions &O) { applyKnobs(O, *K); });
        EXPECT_EQ(Off.Status, Ref.Status)
            << Backend << " shards=" << Shards << " " << K->Name;
        EXPECT_EQ(Off.Rendered, Ref.Rendered);
      }
    }
  }
}

// Budget mode: at a fixed knob setting the outcome is a pure function
// of (job, budget) — byte-identical across shard counts, restart
// charges included — and a completing budget cell agrees with the
// unlimited verdict. Knob-off budget cells form their own purity group
// (the knobs are semantic, so they are never compared byte-for-byte to
// the knob-on budget reference — the contract the fuzzer's cell matrix
// holds at scale).
TEST(ConflictInvarianceTest, BudgetPurityPerKnobSettingAcrossShards) {
  Scenario Feas = diamondWithUpdates(9000, 4);
  RunResult Unlimited = runOnce(Feas, "incremental", 1, nullptr);
  ASSERT_EQ(Unlimited.Status, SynthStatus::Success);
  const Knobs Settings[] = {{"all-on", true, true, true},
                            {"all-off", false, false, false}};
  for (const Knobs &K : Settings) {
    for (uint64_t Unit : {uint64_t(2), uint64_t(100000)}) {
      auto Tweak = [&K, Unit](SynthOptions &O) {
        applyKnobs(O, K);
        O.UnitCheckCalls = Unit;
      };
      RunResult Seq = runOnce(Feas, "incremental", 1, nullptr, Tweak);
      RunResult Sharded = runOnce(Feas, "incremental", 4, nullptr, Tweak);
      EXPECT_EQ(Sharded.Status, Seq.Status)
          << K.Name << " unit=" << Unit
          << ": a budgeted verdict depended on the shard count";
      EXPECT_EQ(Sharded.Rendered, Seq.Rendered) << K.Name << " unit=" << Unit;
      EXPECT_EQ(Sharded.Stats.BudgetSpent, Seq.Stats.BudgetSpent)
          << K.Name << " unit=" << Unit;
      if (Seq.Status != SynthStatus::Aborted) {
        EXPECT_EQ(Seq.Status, Unlimited.Status)
            << K.Name << " unit=" << Unit
            << ": a completing budget cell drifted from the unlimited verdict";
      }
    }
  }
}

// --- Restart determinism ----------------------------------------------------

// A deep exhaustive proof crosses the Luby base: restarts actually fire,
// clause minimization actually shrinks masks, and two sequential runs
// agree on every conflict counter — the restart schedule is a pure
// function of the search, not of timing.
TEST(ConflictRestartTest, RestartsFireAndReplayDeterministically) {
  Scenario Deep = deepImpossible(1);
  auto NoEt = [](SynthOptions &O) { O.EarlyTermination = false; };
  RunResult A = runOnce(Deep, "incremental", 1, nullptr, NoEt);
  RunResult B = runOnce(Deep, "incremental", 1, nullptr, NoEt);
  ASSERT_EQ(A.Status, SynthStatus::Impossible);
  EXPECT_GT(A.Stats.Restarts, 0u) << "the deep proof never restarted — the "
                                     "instance no longer crosses the base";
  EXPECT_GT(A.Stats.ClausesMinimized, 0u);
  EXPECT_GT(A.Stats.LiteralsDropped, 0u);
  EXPECT_EQ(B.Status, A.Status);
  EXPECT_EQ(B.Rendered, A.Rendered);
  EXPECT_EQ(B.Stats.CheckCalls, A.Stats.CheckCalls);
  EXPECT_EQ(B.Stats.Restarts, A.Stats.Restarts);
  EXPECT_EQ(B.Stats.ClausesMinimized, A.Stats.ClausesMinimized);
  EXPECT_EQ(B.Stats.LiteralsDropped, A.Stats.LiteralsDropped);

  // Restarts off: same verdict, zero restarts charged or counted.
  RunResult Off = runOnce(Deep, "incremental", 1, nullptr,
                          [&](SynthOptions &O) {
                            NoEt(O);
                            O.Restarts = false;
                          });
  EXPECT_EQ(Off.Status, A.Status);
  EXPECT_EQ(Off.Stats.Restarts, 0u);
}

// --- Minimized clauses still refute -----------------------------------------

// Soundness end to end: a store populated by a minimizing run seeds a
// later run without changing one byte of a feasible sequential result
// (an over-generalized mask would prune a correct order), and a deep
// Impossible re-proof from minimized clauses is both correct and
// cheaper than the original derivation.
TEST(ConflictSoundnessTest, MinimizedClausesStillRefute) {
  Scenario Feas = diamondWithUpdates(9000, 4);
  RunResult Ref = runOnce(Feas, "incremental", 1, nullptr);
  auto Store = std::make_shared<ConstraintStore>();
  runOnce(Feas, "incremental", 1, Store); // Populates (minimizing).
  RunResult Seeded = runOnce(Feas, "incremental", 1, Store);
  EXPECT_EQ(Seeded.Status, Ref.Status);
  EXPECT_EQ(Seeded.Rendered, Ref.Rendered)
      << "seeding with minimized clauses changed the sequential sequence";

  Scenario Deep = deepImpossible(1);
  auto DeepStore = std::make_shared<ConstraintStore>();
  auto NoEt = [](SynthOptions &O) { O.EarlyTermination = false; };
  RunResult P1 = runOnce(Deep, "incremental", 1, DeepStore, NoEt);
  ASSERT_EQ(P1.Status, SynthStatus::Impossible);
  ASSERT_GT(P1.Stats.ClausesMinimized, 0u);
  ASSERT_GT(P1.Stats.ExportedConstraints, 0u);
  // Timed: the soft wall hint (never firing) makes the member
  // non-sheddable, so this exercises the seeded search rather than the
  // up-front shed P1's proof would trigger.
  RunResult P2 = runOnce(Deep, "incremental", 1, DeepStore,
                         [&](SynthOptions &O) {
                           NoEt(O);
                           O.TimeoutSeconds = 3600.0;
                         });
  EXPECT_EQ(P2.Status, SynthStatus::Impossible)
      << "minimized clauses failed to re-prove the instance";
  EXPECT_GT(P2.Stats.ImportedConstraints, 0u);
  EXPECT_LT(P2.Stats.CheckCalls, P1.Stats.CheckCalls)
      << "the seeded re-proof should be cheaper than the derivation";
}

// --- Learning-aware shed ----------------------------------------------------

// The shed consumes up-front UNSAT proofs only for members that opted
// into conflict-driven learning: a ClauseMinimization-off member runs
// the full standalone search (that is what the knob comparison
// measures) — but its own proof still publishes, so later opted-in
// members shed on it.
TEST(ConflictShedTest, KnobOffMembersRunFullButStillPublish) {
  Scenario Inf = doubleDiamond(9);

  // Proof published by a default (opted-in) run.
  auto Store = std::make_shared<ConstraintStore>();
  RunResult First = runOnce(Inf, "incremental", 1, Store);
  ASSERT_EQ(First.Status, SynthStatus::Impossible);
  ASSERT_EQ(First.Stats.ShedMembers, 0u);

  RunResult Shed = runOnce(Inf, "incremental", 1, Store);
  EXPECT_EQ(Shed.Status, SynthStatus::Impossible);
  EXPECT_EQ(Shed.Stats.ShedMembers, 1u);
  EXPECT_EQ(Shed.Stats.CheckCalls, 0u);

  RunResult MinOff =
      runOnce(Inf, "incremental", 1, Store,
              [](SynthOptions &O) { O.ClauseMinimization = false; });
  EXPECT_EQ(MinOff.Status, SynthStatus::Impossible)
      << "the shed gate must never change a verdict";
  EXPECT_EQ(MinOff.Stats.ShedMembers, 0u)
      << "a knob-off member consumed a proof it opted out of";
  EXPECT_GT(MinOff.Stats.CheckCalls, 0u)
      << "a knob-off member must pay for its own search";

  // The reverse direction: a knob-off run's proof feeds later opted-in
  // members.
  auto Fresh = std::make_shared<ConstraintStore>();
  RunResult OffFirst =
      runOnce(Inf, "incremental", 1, Fresh,
              [](SynthOptions &O) { O.ClauseMinimization = false; });
  ASSERT_EQ(OffFirst.Status, SynthStatus::Impossible);
  EXPECT_EQ(OffFirst.Stats.ShedMembers, 0u);
  EXPECT_GT(OffFirst.Stats.ExportedConstraints, 0u)
      << "knob-off members must still publish what they learned";
  RunResult OnSecond = runOnce(Inf, "incremental", 1, Fresh);
  EXPECT_EQ(OnSecond.Status, SynthStatus::Impossible);
  EXPECT_EQ(OnSecond.Stats.ShedMembers, 1u)
      << "an opted-in member should shed on the knob-off member's proof";
  EXPECT_EQ(OnSecond.Stats.CheckCalls, 0u);
}

