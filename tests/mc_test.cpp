//===- tests/mc_test.cpp - model checker tests -----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ltl/Properties.h"
#include "ltl/TraceEval.h"
#include "mc/LabelingChecker.h"
#include "mc/NaiveTraceChecker.h"
#include "topo/Fig1.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace netupd;
using namespace netupd::testutil;

TEST(LabelingCheckerTest, Fig1RedSatisfiesReachability) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  LabelingChecker Checker;
  EXPECT_TRUE(Checker.bind(K, Phi).Holds);
}

TEST(LabelingCheckerTest, BrokenConfigYieldsCounterexample) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  // Update A1 to green (points to C2) while C2 has no rules: blackhole.
  Config Broken = N.Red;
  Broken.setTable(N.A[0], N.Green.table(N.A[0]));

  KripkeStructure K(N.Topo, Broken, {N.FlowH1H3});
  LabelingChecker Checker;
  CheckResult R = Checker.bind(K, Phi);
  ASSERT_FALSE(R.Holds);
  ASSERT_FALSE(R.Cex.empty());

  // The counterexample is a real trace that violates the property.
  Trace T;
  for (StateId S : R.Cex)
    T.push_back(K.stateInfo(S));
  EXPECT_FALSE(evalOnTrace(Phi, T));
  // It passes through the updated switch A1 and dies at C2.
  bool SeesA1 = false;
  for (StateId S : R.Cex)
    SeesA1 |= K.stateSwitch(S) == N.A[0];
  EXPECT_TRUE(SeesA1);
}

TEST(LabelingCheckerTest, IncrementalTracksUpdatesAndRollbacks) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  LabelingChecker Checker;
  ASSERT_TRUE(Checker.bind(K, Phi).Holds);

  // Bad first step: A1 -> green. Recheck must fail.
  std::vector<StateId> Changed;
  auto Undo = K.applySwitchUpdate(N.A[0], N.Green.table(N.A[0]), Changed);
  UpdateInfo Info;
  Info.Sw = N.A[0];
  Info.ChangedStates = &Changed;
  EXPECT_FALSE(Checker.recheckAfterUpdate(Info).Holds);
  Checker.notifyRollback();
  K.undo(Undo);

  // Good first step: C2 -> green (C2 unreachable initially).
  Changed.clear();
  auto Undo2 = K.applySwitchUpdate(N.C2, N.Green.table(N.C2), Changed);
  Info.Sw = N.C2;
  EXPECT_TRUE(Checker.recheckAfterUpdate(Info).Holds);

  // Then A1 -> green completes the transition.
  std::vector<StateId> Changed2;
  auto Undo3 = K.applySwitchUpdate(N.A[0], N.Green.table(N.A[0]), Changed2);
  Info.Sw = N.A[0];
  Info.ChangedStates = &Changed2;
  EXPECT_TRUE(Checker.recheckAfterUpdate(Info).Holds);

  // Roll everything back; the labels must equal the original ones
  // (verified against a fresh bind below).
  Checker.notifyRollback();
  K.undo(Undo3);
  Checker.notifyRollback();
  K.undo(Undo2);

  LabelingChecker Fresh;
  KripkeStructure K2(N.Topo, N.Red, {N.FlowH1H3});
  ASSERT_TRUE(Fresh.bind(K2, Phi).Holds);
  for (StateId S = 0; S != K.numStates(); ++S)
    EXPECT_EQ(Checker.label(S), Fresh.label(S)) << K.stateName(S);
}

namespace {

struct CheckerAgreementParam {
  uint64_t Seed;
  unsigned NumSwitches;
  unsigned FormulaDepth;
};

class CheckerAgreementTest
    : public ::testing::TestWithParam<CheckerAgreementParam> {};

} // namespace

/// Property test: on random configurations and random formulas, the
/// labeling checker agrees with brute-force trace enumeration.
TEST_P(CheckerAgreementTest, LabelingMatchesNaive) {
  CheckerAgreementParam P = GetParam();
  Rng R(P.Seed);
  for (int Round = 0; Round != 25; ++Round) {
    RandomNet Net = randomNet(R, P.NumSwitches);
    Config Cfg = randomConfig(Net, R);
    FormulaFactory FF;
    Formula Phi = randomFormula(FF, R, P.FormulaDepth, Net.Topo.numSwitches(),
                                Net.Topo.numPorts());

    KripkeStructure K1(Net.Topo, Cfg, Net.Classes);
    KripkeStructure K2(Net.Topo, Cfg, Net.Classes);
    LabelingChecker Labeling;
    NaiveTraceChecker Naive;
    bool A = Labeling.bind(K1, Phi).Holds;
    bool B = Naive.bind(K2, Phi).Holds;
    EXPECT_EQ(A, B) << printFormula(Phi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, CheckerAgreementTest,
    ::testing::Values(CheckerAgreementParam{21, 4, 2},
                      CheckerAgreementParam{22, 5, 3},
                      CheckerAgreementParam{23, 6, 3},
                      CheckerAgreementParam{24, 7, 2},
                      CheckerAgreementParam{25, 5, 4},
                      CheckerAgreementParam{26, 8, 3}));

/// Property test: after random update/rollback storms, incremental
/// rechecking agrees with a batch checker bound fresh to the same
/// configuration — and so do the labels.
TEST(LabelingCheckerTest, IncrementalEqualsBatchUnderUpdateStorm) {
  Rng R(31);
  for (int Round = 0; Round != 15; ++Round) {
    RandomNet Net = randomNet(R, 6);
    Config Cfg = randomConfig(Net, R);
    FormulaFactory FF;
    Formula Phi =
        reachabilityProperty(FF, Net.SrcPort, Net.DstPort);

    KripkeStructure K(Net.Topo, Cfg, Net.Classes);
    LabelingChecker Inc(LabelingChecker::Mode::Incremental);
    if (!Inc.bind(K, Phi).Holds)
      continue; // The random base config must satisfy the property.

    // Mirror the synthesizer's discipline: a failed recheck is rolled
    // back immediately, a passing one may stick around or be rolled back
    // later.
    std::vector<KripkeStructure::UndoRecord> Undos;
    for (int Step = 0; Step != 12; ++Step) {
      if (!Undos.empty() && R.nextBool(0.4)) {
        Inc.notifyRollback();
        K.undo(Undos.back());
        Undos.pop_back();
      } else {
        Config Mut = randomConfig(Net, R);
        SwitchId Sw =
            static_cast<SwitchId>(R.nextBelow(Net.Topo.numSwitches()));
        std::vector<StateId> Changed;
        KripkeStructure::UndoRecord Undo =
            K.applySwitchUpdate(Sw, Mut.table(Sw), Changed);
        UpdateInfo Info;
        Info.Sw = Sw;
        Info.ChangedStates = &Changed;
        if (Inc.recheckAfterUpdate(Info).Holds) {
          Undos.push_back(std::move(Undo));
        } else {
          Inc.notifyRollback();
          K.undo(Undo);
        }
      }

      // The labels must equal those of a fresh bind on the current
      // configuration.
      KripkeStructure KRef(Net.Topo, K.config(), Net.Classes);
      LabelingChecker Ref;
      CheckResult RefRes = Ref.bind(KRef, Phi);
      EXPECT_TRUE(RefRes.Holds); // Only passing configs survive.
      for (StateId S = 0; S != K.numStates(); ++S)
        EXPECT_EQ(Inc.label(S), Ref.label(S)) << K.stateName(S);
    }
  }
}

TEST(LabelingCheckerTest, BatchModeWorksWithoutRollbacks) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());

  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  LabelingChecker Batch(LabelingChecker::Mode::Batch);
  ASSERT_TRUE(Batch.bind(K, Phi).Holds);

  std::vector<StateId> Changed;
  auto Undo = K.applySwitchUpdate(N.C2, N.Green.table(N.C2), Changed);
  UpdateInfo Info;
  Info.Sw = N.C2;
  Info.ChangedStates = &Changed;
  EXPECT_TRUE(Batch.recheckAfterUpdate(Info).Holds);
  Batch.notifyRollback();
  K.undo(Undo);
  EXPECT_TRUE(Batch.recheckAfterUpdate(Info).Holds);
}

TEST(LabelingCheckerTest, IncrementalDoesLessWorkThanBatch) {
  // On a long chain, updating the switch next to the destination must
  // relabel only a handful of ancestors, far fewer than a full pass.
  Topology T;
  const unsigned Len = 40;
  std::vector<SwitchId> Chain;
  for (unsigned I = 0; I != Len; ++I)
    Chain.push_back(T.addSwitch("s" + std::to_string(I)));
  for (unsigned I = 0; I + 1 != Len; ++I)
    T.connectSwitches(Chain[I], Chain[I + 1]);
  HostId H0 = T.addHost("h0");
  HostId H1 = T.addHost("h1");
  PortId Src = T.attachHost(H0, Chain[0]);
  PortId Dst = T.attachHost(H1, Chain[Len - 1]);

  TrafficClass C{makeHeader(1, 2), "c"};
  Config Cfg(Len);
  installPath(T, Cfg, C, Chain, H1);

  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, Src, Dst);

  KripkeStructure K(T, Cfg, {C});
  LabelingChecker Inc;
  ASSERT_TRUE(Inc.bind(K, Phi).Holds);
  uint64_t OpsAfterBind = Inc.numLabelOps();

  // Re-install the same last-hop rule with a cosmetic priority change so
  // edges stay identical except for recomputation at that switch.
  Table NewTable = Cfg.table(Chain[Len - 1]);
  std::vector<StateId> Changed;
  auto Undo = K.applySwitchUpdate(Chain[Len - 1], NewTable, Changed);
  UpdateInfo Info;
  Info.Sw = Chain[Len - 1];
  Info.ChangedStates = &Changed;
  ASSERT_TRUE(Inc.recheckAfterUpdate(Info).Holds);
  uint64_t IncrementalOps = Inc.numLabelOps() - OpsAfterBind;
  EXPECT_LT(IncrementalOps, OpsAfterBind / 4)
      << "incremental recheck relabeled too much of the structure";
  Inc.notifyRollback();
  K.undo(Undo);
}

TEST(NaiveTraceCheckerTest, AgreesWithTraceEvalOnFig1) {
  Fig1Network N = buildFig1();
  FormulaFactory FF;
  Formula Good = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  // Reversed property is violated (H3 sends nothing in this class).
  Formula AlwaysC2 = FF.finally_(FF.atom(Prop::onSwitch(N.C2)));

  KripkeStructure K(N.Topo, N.Red, {N.FlowH1H3});
  NaiveTraceChecker Checker;
  EXPECT_TRUE(Checker.bind(K, Good).Holds);
  KripkeStructure K2(N.Topo, N.Red, {N.FlowH1H3});
  EXPECT_FALSE(Checker.bind(K2, AlwaysC2).Holds);
}
