# Configure-time checks for the thread-safety annotation layer
# (support/ThreadAnnotations.h), run over the snippets in
# tests/annotations/:
#
#   fail_*.cpp   locking-discipline violations. On Clang with
#                -Wthread-safety -Werror each one must FAIL to compile
#                (the analysis catches the bug); on every other compiler
#                each must COMPILE cleanly (the macros are no-ops and
#                must never break a build).
#   pass_*.cpp   the repo's locking idioms. Must compile under every
#                compiler and, on Clang, under -Wthread-safety -Werror —
#                a failure here means the *wrappers'* annotations are
#                wrong.
#
# Any violated expectation is a FATAL_ERROR at configure time, so the
# clang CI lane cannot go green with a silently toothless analysis.

function(netupd_try_annotation_snippet SNIPPET EXTRA_FLAGS RESULT_VAR LOG_VAR)
  try_compile(
    _NETUPD_SNIPPET_OK
    ${CMAKE_BINARY_DIR}/annotation_checks
    ${SNIPPET}
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
    COMPILE_DEFINITIONS "${EXTRA_FLAGS}"
    CXX_STANDARD 17
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE _NETUPD_SNIPPET_LOG)
  set(${RESULT_VAR} ${_NETUPD_SNIPPET_OK} PARENT_SCOPE)
  set(${LOG_VAR} "${_NETUPD_SNIPPET_LOG}" PARENT_SCOPE)
endfunction()

function(netupd_run_annotation_checks)
  file(GLOB _FAIL_SNIPPETS
       ${CMAKE_CURRENT_SOURCE_DIR}/tests/annotations/fail_*.cpp)
  file(GLOB _PASS_SNIPPETS
       ${CMAKE_CURRENT_SOURCE_DIR}/tests/annotations/pass_*.cpp)

  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    set(_TSA_FLAGS "-Wthread-safety -Werror")
    set(_MODE "clang: violations must fail, idioms must pass")
  else()
    # Off-Clang the annotations are no-ops: everything, including the
    # deliberate violations, must compile (with the project's warning
    # set made fatal, pinning that the macros emit no warnings either).
    set(_TSA_FLAGS "-Wall -Wextra -Werror")
    set(_MODE "non-clang: all snippets must compile (macros are no-ops)")
  endif()
  message(STATUS "Annotation checks (${_MODE})")

  foreach(_SNIPPET ${_FAIL_SNIPPETS})
    get_filename_component(_NAME ${_SNIPPET} NAME)
    netupd_try_annotation_snippet(${_SNIPPET} "${_TSA_FLAGS}" _OK _LOG)
    if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      if(_OK)
        message(FATAL_ERROR
          "Annotation check: ${_NAME} compiled under -Wthread-safety "
          "-Werror but encodes a locking-discipline violation — the "
          "thread-safety analysis is not catching it (annotation "
          "regression in support/ThreadAnnotations.h?)")
      endif()
      message(STATUS "  ${_NAME}: rejected by -Wthread-safety (good)")
    else()
      if(NOT _OK)
        message(FATAL_ERROR
          "Annotation check: ${_NAME} failed to compile on a non-Clang "
          "compiler — the annotation macros must be no-ops there.\n"
          "${_LOG}")
      endif()
      message(STATUS "  ${_NAME}: compiles with no-op macros (good)")
    endif()
  endforeach()

  foreach(_SNIPPET ${_PASS_SNIPPETS})
    get_filename_component(_NAME ${_SNIPPET} NAME)
    netupd_try_annotation_snippet(${_SNIPPET} "${_TSA_FLAGS}" _OK _LOG)
    if(NOT _OK)
      message(FATAL_ERROR
        "Annotation check: ${_NAME} must compile (it uses the sanctioned "
        "locking idioms) but failed:\n${_LOG}")
    endif()
    message(STATUS "  ${_NAME}: compiles (good)")
  endforeach()
endfunction()

netupd_run_annotation_checks()
