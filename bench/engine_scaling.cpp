//===- bench/engine_scaling.cpp - Engine worker-count sweep ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the batch engine: one fixed batch of long-path diamond
/// instances over the three §6 topology families, executed repeatedly
/// with 1, 2, 4, ... workers. Reported is wall-clock per sweep and the
/// speedup over the 1-worker run; verdicts are asserted identical across
/// sweeps (the engine's determinism contract).
///
/// A second section exercises portfolio racing on Fig. 8(h)-style double
/// diamonds, where the rule-granularity member must win the race and the
/// switch-granularity member alone would prove Impossible. A third
/// section measures the two memoization layers on a duplicate-heavy
/// batch: the engine result cache (whole jobs) and the checker-level
/// "memo:" cache (individual queries). A fourth section measures
/// *intra-job* shard scaling on deep exhaustive proofs: one engine
/// worker, the DFS prefix-split across 1/2/4 shards
/// (EngineOptions::IntraJobShards), verdicts asserted stable. A fifth
/// section measures the conflict-driven search layer on a batch that
/// revisits each of those deep proofs four times with the constraint
/// store enabled: the default knob set (clause minimization + activity
/// ordering + Luby restarts + proof-based shedding of the repeats)
/// against all three knobs disabled (repeats re-search, seeded by the
/// store), verdicts asserted identical and the checker-query reduction
/// recorded for the trend gate (target: >= 25% fewer queries). A sixth
/// section measures cross-job learning (EngineOptions::SharedLearning):
/// an autotuning-style probe stream over one scenario family, run with
/// the constraint store off and on — verdicts must be byte-identical
/// and the reuse run must issue strictly fewer checker queries.
///
/// Workload sizing: the two parallel-scaling sections (sweep, shards)
/// run at a floored per-section scale — max(--scale, 1.0) — so their
/// batches are long enough for speedups to mean something even when CI
/// smoke-runs the bench at a reduced global scale (at --scale=0.25 the
/// old sizing measured pure engine/shard setup overhead: ~1.0x at 4
/// workers, 0.73x at 4 shards). Each section's effective scale is
/// recorded in BENCH_engine.json so trend comparisons only ever compare
/// like with like.
///
/// Observability (src/obs/) is measured two ways. Every timed section
/// runs with the per-call metrics tier and tracing OFF, so the numbers
/// stay comparable with the pre-obs trend history; the per-job tier is
/// always on and is part of what the trend tracks. On top of that:
///
///  - each major section gets one extra *profiled* pass (detail tier
///    on, same workload, verdicts asserted unchanged) whose merged
///    SynthStats yield a phase breakdown — checking vs mutate/rollback
///    vs pruning vs SAT. The raw clocks are per-shard thread-seconds
///    and sum across shards, so the "phases" array reports the honest
///    total (cpu_s) plus each phase's scale-free share of it, which is
///    what the trend gate compares;
///  - an "obs" section runs the 1-shard deep-proof workload in three
///    modes (off / metrics / trace) back to back, reporting the
///    overhead of each tier on jobs/sec and asserting that verdicts
///    and query counts are identical across modes (the observability
///    contract); the trace-mode run's spans are exported to
///    BENCH_trace.json, loadable in ui.perfetto.dev.
///
/// Sections also report exact p50/p95/p99 per-job latencies computed
/// from the per-report wall clocks (not the 2x-bucketed histograms).
///
/// Everything measured is also written to BENCH_engine.json (jobs/sec,
/// TotalQueries, cache hit rates, shard speedups, learning savings,
/// phase breakdowns, job-latency percentiles) so the perf trajectory is
/// tracked machine-readably from PR 2 onward; CI archives the file per
/// run and fail-soft-compares it against the previous run
/// (scripts/check_bench_trend.py).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "engine/Engine.h"
#include "mc/MemoizingChecker.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "topo/Churn.h"
#include "topo/Generators.h"

#include <algorithm>
#include <cstdio>
#include <thread>

using namespace netupd;
using namespace netupd::benchutil;

namespace {

std::vector<SynthJob> buildBatch(double Scale) {
  std::vector<SynthJob> Jobs;
  Rng R(2026);
  DiamondOptions Opts;
  Opts.LongPaths = true;

  auto AddJob = [&](const std::string &Name, const Topology &Topo) {
    Rng Fork = R.fork();
    std::optional<Scenario> S =
        makeDiamondScenario(Topo, Fork, PropertyKind::Reachability, Opts);
    if (!S)
      return;
    SynthJob Job;
    Job.Name = Name;
    Job.S = std::move(*S);
    Jobs.push_back(std::move(Job));
  };

  // Eighteen per family (at scale 1): enough jobs that no single heavy
  // head can dominate the batch wall-clock (with three, the largest zoo
  // instance bounded the 4-worker wall and the sweep read ~1.0x) and
  // enough total work that the sweep runs >= 1s — below that the
  // percentile and speedup figures tracked by check_bench_trend.py sit
  // inside scheduler noise.
  unsigned PerFamily = std::max(6u, static_cast<unsigned>(18 * Scale));

  // Zoo-like WANs, largest first so the batch has heavy heads.
  std::vector<unsigned> ZooIdx(NumZooLike);
  for (unsigned I = 0; I != NumZooLike; ++I)
    ZooIdx[I] = I;
  std::sort(ZooIdx.begin(), ZooIdx.end(), [](unsigned A, unsigned B) {
    return zooLikeSize(A) > zooLikeSize(B);
  });
  for (unsigned I = 0; I != PerFamily; ++I)
    AddJob("zoo-" + std::to_string(ZooIdx[I % NumZooLike]),
           buildZooLike(ZooIdx[I % NumZooLike]));

  for (unsigned I = 0; I != PerFamily; ++I)
    AddJob("fattree-8", buildFatTree(8));

  for (unsigned I = 0; I != PerFamily; ++I) {
    Rng Fork = R.fork();
    AddJob("smallworld-200", buildSmallWorld(200, 6, 0.3, Fork));
  }
  return Jobs;
}

/// Exact per-job latency percentiles over a batch, in milliseconds.
/// Computed from every report's wall clock (nearest-rank on the sorted
/// sample), not from the 2x-accurate obs::Histogram buckets — the JSON
/// trend wants exact numbers where they are cheap to have.
struct JobPercentiles {
  double P50Ms = 0.0, P95Ms = 0.0, P99Ms = 0.0;
};

JobPercentiles percentilesOf(std::vector<double> S) {
  if (S.empty())
    return {};
  std::sort(S.begin(), S.end());
  auto At = [&](double P) {
    size_t I = std::min(S.size() - 1,
                        static_cast<size_t>(P * static_cast<double>(S.size())));
    return S[I] * 1e3;
  };
  return {At(0.50), At(0.95), At(0.99)};
}

/// On-CPU per-job latency: from worker pickup to report, excluding the
/// queue (SynthReport::Seconds).
JobPercentiles jobPercentiles(const BatchReport &Rep) {
  std::vector<double> S;
  S.reserve(Rep.Reports.size());
  for (const SynthReport &R : Rep.Reports)
    S.push_back(R.Seconds);
  return percentilesOf(std::move(S));
}

/// Queue-wait percentiles, kept apart from the on-CPU ones: at high
/// backlog-to-worker ratios the queue dominates end-to-end latency, and
/// folding it in would make per-job cost look like it scales with the
/// batch size.
JobPercentiles queuePercentiles(const BatchReport &Rep) {
  std::vector<double> S;
  S.reserve(Rep.Reports.size());
  for (const SynthReport &R : Rep.Reports)
    S.push_back(R.QueueSeconds);
  return percentilesOf(std::move(S));
}

/// One worker-count measurement for the JSON report.
struct SweepPoint {
  unsigned Workers = 0;
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  double Speedup = 1.0;
  uint64_t TotalQueries = 0;
  unsigned Succeeded = 0;
  JobPercentiles Pct;
  /// Queue-wait percentiles, reported beside the on-CPU ones: at one
  /// worker almost the whole batch is queue time, and the split is what
  /// shows whether adding workers shortens jobs or just the line.
  JobPercentiles Queue;
};

/// One intra-job shard-count measurement for the JSON report.
struct ShardPoint {
  unsigned Shards = 0;
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  double Speedup = 1.0;
  uint64_t TotalQueries = 0;
  uint64_t StolenTasks = 0;
  unsigned Succeeded = 0;
  JobPercentiles Pct;
};

/// One tight-budget measurement for the JSON report.
struct BudgetPoint {
  unsigned Shards = 0;
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  uint64_t TotalQueries = 0;
  uint64_t BudgetSpent = 0;
  unsigned Aborted = 0;
  JobPercentiles Pct;
};

/// One profiled (detail-tier-on) pass: the phase breakdown of a section
/// workload, from the merged winning-member SynthStats. The raw phase
/// clocks are per-shard thread-seconds and SUM across shards, so the
/// JSON reports the honest total (cpu_s) plus each phase's scale-free
/// share of it — comparing raw per-phase thread-seconds across runs
/// conflated parallelism with work whenever the shard or worker count
/// behind a point changed. Param is the section's knob (workers or
/// shards).
struct PhasePoint {
  const char *Section = "";
  unsigned Param = 0;
  double WallSeconds = 0.0;
  double CheckS = 0.0, MutateS = 0.0, PruneS = 0.0, SatS = 0.0;

  /// Summed thread-seconds across every shard and every phase.
  double cpuS() const { return CheckS + MutateS + PruneS + SatS; }
  /// One phase's fraction of cpuS() (0 when nothing was profiled).
  double share(double PhaseS) const {
    double C = cpuS();
    return C > 0 ? PhaseS / C : 0.0;
  }
};

/// One observability-mode measurement: the deep-proof workload with the
/// obs tiers off, with per-call metrics on, and with tracing on top.
struct ObsPoint {
  const char *Mode = "";
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  /// Slowdown of this mode's jobs/sec relative to the "off" mode, in
  /// percent (0 for "off" itself; negative = noise made it faster).
  double OverheadPct = 0.0;
};

/// One learning-mode measurement for the JSON report.
struct LearnPoint {
  const char *Mode = "";
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  uint64_t TotalQueries = 0;
  uint64_t Imported = 0, Exported = 0, SeededPrunes = 0;
  unsigned Succeeded = 0;
};

/// One conflict-learning measurement for the JSON report: a batch that
/// repeats each deep exhaustive proof with the conflict-driven knobs
/// (clause minimization, activity ordering, Luby restarts) all on vs
/// all off. Knobs-on sheds the repeats from the stored UNSAT proof;
/// knobs-off re-searches them.
struct ConflictPoint {
  const char *Mode = "";
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  uint64_t TotalQueries = 0;
  uint64_t ClausesMinimized = 0, LiteralsDropped = 0;
  uint64_t Restarts = 0, SubsumedDropped = 0, ShedMembers = 0;
  unsigned Succeeded = 0;
};

/// One caching-mode measurement for the JSON report.
struct CachePoint {
  const char *Mode = "";
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  uint64_t TotalQueries = 0;
  uint64_t EngineHits = 0, EngineMisses = 0;
  uint64_t MemoHits = 0, MemoMisses = 0;

  double engineHitRate() const {
    uint64_t N = EngineHits + EngineMisses;
    return N ? static_cast<double>(EngineHits) / N : 0.0;
  }
  double memoHitRate() const {
    uint64_t N = MemoHits + MemoMisses;
    return N ? static_cast<double>(MemoHits) / N : 0.0;
  }
};

/// One zoo-at-scale point: a batch of diamond jobs on one 500+-switch
/// fabric, end to end through the engine (or, for the churn point, a
/// rolling-maintenance stream with the result cache on).
struct ZooScalePoint {
  std::string Name;
  unsigned Switches = 0;
  size_t Jobs = 0;
  double WallSeconds = 0.0;
  double JobsPerSec = 0.0;
  uint64_t TotalQueries = 0;
  unsigned Succeeded = 0;
  /// Nonzero only for the churn-stream point.
  uint64_t EngineCacheHits = 0;
};

/// Writes everything measured to BENCH_engine.json. Every section
/// records its own effective scale (the parallel sections run floored —
/// see the file comment) so the cross-commit trend gate can refuse to
/// compare sections measured at different workload sizes.
void writeJson(double Scale, double SweepScale, double ShardScale,
               unsigned HardwareThreads,
               size_t SweepJobs, const std::vector<SweepPoint> &Sweep,
               size_t CacheJobs, const std::vector<CachePoint> &CacheRuns,
               const std::vector<ShardPoint> &ShardRuns,
               const std::vector<BudgetPoint> &BudgetRuns,
               size_t LearnJobs, const std::vector<LearnPoint> &LearnRuns,
               const std::vector<ConflictPoint> &ConflictRuns,
               const std::vector<PhasePoint> &Phases,
               const std::vector<ObsPoint> &ObsRuns,
               const std::vector<ZooScalePoint> &ZooRuns) {
  FILE *F = std::fopen("BENCH_engine.json", "w");
  if (!F) {
    std::printf("warning: cannot write BENCH_engine.json\n");
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"engine_scaling\",\n");
  std::fprintf(F, "  \"scale\": %g,\n", Scale);
  // Parallel speedups only mean something relative to the cores the run
  // actually had; the trend gate uses this to refuse cross-machine
  // comparisons of the sweep/shards sections.
  std::fprintf(F, "  \"hardware_threads\": %u,\n", HardwareThreads);
  std::fprintf(F, "  \"sweep_scale\": %g,\n", SweepScale);
  std::fprintf(F, "  \"cache_scale\": %g,\n", Scale);
  std::fprintf(F, "  \"shards_scale\": %g,\n", ShardScale);
  std::fprintf(F, "  \"budget_scale\": %g,\n", ShardScale);
  // The profiled passes and obs modes rerun floored-section workloads;
  // SweepScale == ShardScale (both floored the same way), so one scale
  // names them all.
  std::fprintf(F, "  \"phases_scale\": %g,\n", ShardScale);
  std::fprintf(F, "  \"obs_scale\": %g,\n", ShardScale);
  std::fprintf(F, "  \"learning_scale\": %g,\n", Scale);
  // The conflict section reruns the (floored) deep-proof workload.
  std::fprintf(F, "  \"conflict_scale\": %g,\n", ShardScale);
  std::fprintf(F, "  \"sweep_jobs\": %zu,\n  \"sweep\": [\n", SweepJobs);
  for (size_t I = 0; I != Sweep.size(); ++I) {
    const SweepPoint &P = Sweep[I];
    std::fprintf(F,
                 "    {\"workers\": %u, \"wall_seconds\": %.6f, "
                 "\"jobs_per_sec\": %.3f, \"speedup\": %.3f, "
                 "\"total_queries\": %llu, \"succeeded\": %u, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"queue_p50_ms\": %.3f, \"queue_p95_ms\": %.3f, "
                 "\"queue_p99_ms\": %.3f}%s\n",
                 P.Workers, P.WallSeconds, P.JobsPerSec, P.Speedup,
                 static_cast<unsigned long long>(P.TotalQueries),
                 P.Succeeded, P.Pct.P50Ms, P.Pct.P95Ms, P.Pct.P99Ms,
                 P.Queue.P50Ms, P.Queue.P95Ms, P.Queue.P99Ms,
                 I + 1 == Sweep.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"cache_jobs\": %zu,\n  \"cache\": [\n", CacheJobs);
  for (size_t I = 0; I != CacheRuns.size(); ++I) {
    const CachePoint &P = CacheRuns[I];
    std::fprintf(
        F,
        "    {\"mode\": \"%s\", \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.3f, \"total_queries\": %llu, "
        "\"engine_cache_hits\": %llu, \"engine_cache_misses\": %llu, "
        "\"engine_cache_hit_rate\": %.4f, \"memo_hits\": %llu, "
        "\"memo_misses\": %llu, \"memo_hit_rate\": %.4f}%s\n",
        P.Mode, P.WallSeconds, P.JobsPerSec,
        static_cast<unsigned long long>(P.TotalQueries),
        static_cast<unsigned long long>(P.EngineHits),
        static_cast<unsigned long long>(P.EngineMisses),
        P.engineHitRate(), static_cast<unsigned long long>(P.MemoHits),
        static_cast<unsigned long long>(P.MemoMisses), P.memoHitRate(),
        I + 1 == CacheRuns.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"shards\": [\n");
  for (size_t I = 0; I != ShardRuns.size(); ++I) {
    const ShardPoint &P = ShardRuns[I];
    std::fprintf(F,
                 "    {\"shards\": %u, \"wall_seconds\": %.6f, "
                 "\"jobs_per_sec\": %.3f, \"speedup\": %.3f, "
                 "\"total_queries\": %llu, \"stolen_tasks\": %llu, "
                 "\"succeeded\": %u, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 P.Shards, P.WallSeconds, P.JobsPerSec, P.Speedup,
                 static_cast<unsigned long long>(P.TotalQueries),
                 static_cast<unsigned long long>(P.StolenTasks),
                 P.Succeeded, P.Pct.P50Ms, P.Pct.P95Ms, P.Pct.P99Ms,
                 I + 1 == ShardRuns.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"budget\": [\n");
  for (size_t I = 0; I != BudgetRuns.size(); ++I) {
    const BudgetPoint &P = BudgetRuns[I];
    std::fprintf(F,
                 "    {\"shards\": %u, \"wall_seconds\": %.6f, "
                 "\"jobs_per_sec\": %.3f, \"total_queries\": %llu, "
                 "\"budget_spent\": %llu, \"aborted\": %u, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 P.Shards, P.WallSeconds, P.JobsPerSec,
                 static_cast<unsigned long long>(P.TotalQueries),
                 static_cast<unsigned long long>(P.BudgetSpent), P.Aborted,
                 P.Pct.P50Ms, P.Pct.P95Ms, P.Pct.P99Ms,
                 I + 1 == BudgetRuns.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"phases\": [\n");
  for (size_t I = 0; I != Phases.size(); ++I) {
    const PhasePoint &P = Phases[I];
    std::fprintf(F,
                 "    {\"section\": \"%s\", \"param\": %u, "
                 "\"wall_seconds\": %.6f, \"cpu_s\": %.6f, "
                 "\"check_share\": %.4f, \"mutate_share\": %.4f, "
                 "\"prune_share\": %.4f, \"sat_share\": %.4f}%s\n",
                 P.Section, P.Param, P.WallSeconds, P.cpuS(),
                 P.share(P.CheckS), P.share(P.MutateS), P.share(P.PruneS),
                 P.share(P.SatS), I + 1 == Phases.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"obs\": [\n");
  for (size_t I = 0; I != ObsRuns.size(); ++I) {
    const ObsPoint &P = ObsRuns[I];
    std::fprintf(F,
                 "    {\"mode\": \"%s\", \"wall_seconds\": %.6f, "
                 "\"jobs_per_sec\": %.3f, \"overhead_pct\": %.2f}%s\n",
                 P.Mode, P.WallSeconds, P.JobsPerSec, P.OverheadPct,
                 I + 1 == ObsRuns.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"learning_jobs\": %zu,\n  \"learning\": [\n",
               LearnJobs);
  for (size_t I = 0; I != LearnRuns.size(); ++I) {
    const LearnPoint &P = LearnRuns[I];
    std::fprintf(
        F,
        "    {\"mode\": \"%s\", \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.3f, \"total_queries\": %llu, "
        "\"imported_constraints\": %llu, \"exported_constraints\": %llu, "
        "\"seeded_prunes\": %llu, \"succeeded\": %u}%s\n",
        P.Mode, P.WallSeconds, P.JobsPerSec,
        static_cast<unsigned long long>(P.TotalQueries),
        static_cast<unsigned long long>(P.Imported),
        static_cast<unsigned long long>(P.Exported),
        static_cast<unsigned long long>(P.SeededPrunes), P.Succeeded,
        I + 1 == LearnRuns.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"conflict\": [\n");
  for (size_t I = 0; I != ConflictRuns.size(); ++I) {
    const ConflictPoint &P = ConflictRuns[I];
    std::fprintf(
        F,
        "    {\"mode\": \"%s\", \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.3f, \"total_queries\": %llu, "
        "\"clauses_minimized\": %llu, \"literals_dropped\": %llu, "
        "\"restarts\": %llu, \"subsumed_dropped\": %llu, "
        "\"shed_members\": %llu, \"succeeded\": %u}%s\n",
        P.Mode, P.WallSeconds, P.JobsPerSec,
        static_cast<unsigned long long>(P.TotalQueries),
        static_cast<unsigned long long>(P.ClausesMinimized),
        static_cast<unsigned long long>(P.LiteralsDropped),
        static_cast<unsigned long long>(P.Restarts),
        static_cast<unsigned long long>(P.SubsumedDropped),
        static_cast<unsigned long long>(P.ShedMembers), P.Succeeded,
        I + 1 == ConflictRuns.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"zoo_scale\": %g,\n  \"zoo\": [\n", Scale);
  for (size_t I = 0; I != ZooRuns.size(); ++I) {
    const ZooScalePoint &P = ZooRuns[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"switches\": %u, \"jobs\": %zu, "
                 "\"wall_seconds\": %.6f, \"jobs_per_sec\": %.3f, "
                 "\"total_queries\": %llu, \"succeeded\": %u, "
                 "\"engine_cache_hits\": %llu}%s\n",
                 P.Name.c_str(), P.Switches, P.Jobs, P.WallSeconds,
                 P.JobsPerSec,
                 static_cast<unsigned long long>(P.TotalQueries),
                 P.Succeeded,
                 static_cast<unsigned long long>(P.EngineCacheHits),
                 I + 1 == ZooRuns.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote BENCH_engine.json\n");
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  // Timed sections run with the hot-path obs tiers off regardless of the
  // environment, so the JSON stays comparable with the pre-obs history
  // and with runs under NETUPD_OBS_DETAIL/NETUPD_TRACE; the profiled
  // passes and the obs section flip them on deliberately.
  obs::setDetail(false);
  obs::setTracing(false);
  // The parallel-scaling sections run floored (see the file comment):
  // below these sizes they measure setup overhead, not scaling.
  double SweepScale = std::max(Scale, 1.0);
  double ShardScale = std::max(Scale, 1.0);
  banner("engine scaling: batch synthesis, worker-count sweep");

  std::vector<SynthJob> Jobs = buildBatch(SweepScale);
  std::printf("batch: %zu long-path diamond jobs (section scale %g)\n",
              Jobs.size(), SweepScale);
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores <= 1)
    std::printf("note: single-core machine; expect a flat speedup curve\n");

  unsigned MaxWorkers = std::max(4u, Cores);
  row({"workers", "wall(s)", "speedup", "ok", "queries"},
      {9, 10, 9, 7, 10});

  std::vector<SweepPoint> Sweep;
  double BaseSeconds = 0.0;
  std::vector<SynthStatus> BaseVerdicts;
  for (unsigned Workers = 1; Workers <= MaxWorkers; Workers *= 2) {
    EngineOptions EO;
    EO.NumWorkers = Workers;
    // The sweep measures raw scaling; result caching would hide the
    // repeated work the worker counts are compared on, and learning is
    // measured by its own section.
    EO.CacheResults = false;
    EO.SharedLearning = false;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(Jobs);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (Workers == 1) {
      BaseSeconds = Rep.WallSeconds;
      BaseVerdicts = Verdicts;
    } else if (Verdicts != BaseVerdicts) {
      std::printf("ERROR: verdicts changed at %u workers\n", Workers);
      return 1;
    }

    SweepPoint P;
    P.Workers = Workers;
    P.WallSeconds = Rep.WallSeconds;
    P.JobsPerSec = Rep.WallSeconds > 0
                       ? static_cast<double>(Jobs.size()) / Rep.WallSeconds
                       : 0.0;
    P.Speedup = BaseSeconds / Rep.WallSeconds;
    P.TotalQueries = Rep.TotalQueries;
    P.Succeeded = Rep.numSucceeded();
    P.Pct = jobPercentiles(Rep);
    P.Queue = queuePercentiles(Rep);
    Sweep.push_back(P);

    row({std::to_string(Workers), format("%.3f", Rep.WallSeconds),
         format("%.2fx", P.Speedup),
         std::to_string(Rep.numSucceeded()) + "/" +
             std::to_string(Rep.Reports.size()),
         std::to_string(Rep.TotalQueries)},
        {9, 10, 9, 7, 10});
  }

  // One profiled pass over the sweep batch: the detail tier on, at the
  // widest worker count, yields the phase breakdown (where do the
  // thread-seconds go — checking, mutate/rollback, pruning, SAT?) that
  // the timed sweep deliberately does not collect. Verdicts must match
  // the unprofiled runs: observability never changes a result.
  std::vector<PhasePoint> Phases;
  {
    EngineOptions EO;
    EO.NumWorkers = MaxWorkers;
    EO.CacheResults = false;
    EO.SharedLearning = false;
    obs::setDetail(true);
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(Jobs);
    obs::setDetail(false);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (Verdicts != BaseVerdicts) {
      std::printf("ERROR: profiled sweep pass changed a verdict\n");
      return 1;
    }
    Phases.push_back({"sweep", MaxWorkers, Rep.WallSeconds,
                      Rep.Merged.CheckSeconds, Rep.Merged.MutateSeconds,
                      Rep.Merged.PruneSeconds, Rep.Merged.SatSeconds});
  }

  banner("portfolio racing: double diamonds (Fig. 8(h) regime)");
  row({"job", "verdict", "winner", "job(s)", "members"}, {16, 10, 18, 9, 40});
  Rng R(7);
  unsigned Races = std::max(4u, static_cast<unsigned>(4 * Scale));
  for (unsigned I = 0; I != Races; ++I) {
    Rng Fork = R.fork();
    Topology Base = buildSmallWorld(40, 4, 0.2, Fork);
    std::optional<Scenario> S = makeDoubleDiamondScenario(Base, Fork);
    if (!S)
      continue;
    SynthJob Job;
    Job.Name = "ddiamond-" + std::to_string(I);
    Job.S = std::move(*S);
    Job.Portfolio = defaultPortfolio();

    SynthEngine Engine;
    BatchReport Rep = Engine.run({Job});
    const SynthReport &Res = Rep.Reports[0];
    std::string Members;
    for (const MemberOutcome &O : Res.Members) {
      if (!Members.empty())
        Members += " ";
      const char *Tag = O.Cancelled            ? "cancelled"
                        : O.Status == SynthStatus::Success ? "success"
                        : O.Status == SynthStatus::Impossible
                            ? "impossible"
                            : "aborted";
      Members += O.Name + "=" + Tag;
    }
    row({Job.Name, Res.ok() ? "success" : "failed", Res.Winner,
         format("%.3f", Res.Seconds), Members},
        {16, 10, 18, 9, 40});
  }

  banner("memoization: duplicate-heavy batch, three cache modes");
  // Real batch streams repeat scenarios (retries, per-tenant isomorphic
  // topologies): model that by replicating each base job. The three
  // modes measure no caching, the engine result cache (dedups whole
  // jobs), and checker memoization alone (dedups individual queries via
  // memo:incremental sharing the process-wide CheckCache).
  std::vector<SynthJob> CacheJobs;
  {
    Rng CR(11);
    unsigned Base = std::max(2u, static_cast<unsigned>(2 * Scale));
    unsigned Copies = 3;
    for (unsigned I = 0; I != Base; ++I) {
      Rng Fork = CR.fork();
      std::optional<Scenario> S = makeDiamondScenario(
          buildFatTree(8), Fork, PropertyKind::Reachability);
      if (!S)
        continue;
      for (unsigned C = 0; C != Copies; ++C) {
        SynthJob Job;
        Job.Name = "dup-" + std::to_string(I) + "-" + std::to_string(C);
        Job.S = *S;
        CacheJobs.push_back(std::move(Job));
      }
    }
  }
  std::printf("batch: %zu jobs (3 copies each)\n", CacheJobs.size());

  std::vector<CachePoint> CacheRuns;
  std::vector<SynthStatus> CacheVerdicts;
  for (const char *Mode : {"none", "engine", "memo"}) {
    std::vector<SynthJob> Batch = CacheJobs;
    if (std::string(Mode) == "memo") {
      MemoizingChecker::processCache()->clear();
      for (SynthJob &Job : Batch) {
        Job.Portfolio.emplace_back();
        Job.Portfolio[0].Backend = "memo:incremental";
      }
    }
    EngineOptions EO;
    EO.CacheResults = std::string(Mode) == "engine";
    // The duplicate-heavy batch is exactly what cross-job learning also
    // accelerates; keep it off so the three modes compare caches alone.
    EO.SharedLearning = false;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(Batch);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (CacheRuns.empty()) {
      CacheVerdicts = Verdicts;
    } else if (Verdicts != CacheVerdicts) {
      std::printf("ERROR: caching mode '%s' changed a verdict\n", Mode);
      return 1;
    }

    CachePoint P;
    P.Mode = Mode;
    P.WallSeconds = Rep.WallSeconds;
    P.JobsPerSec = Rep.WallSeconds > 0
                       ? static_cast<double>(Batch.size()) / Rep.WallSeconds
                       : 0.0;
    P.TotalQueries = Rep.TotalQueries;
    P.EngineHits = Rep.EngineCacheHits;
    P.EngineMisses = Rep.EngineCacheMisses;
    P.MemoHits = Rep.Merged.CacheHits;
    P.MemoMisses = Rep.Merged.CacheMisses;
    CacheRuns.push_back(P);
  }

  row({"mode", "wall(s)", "jobs/s", "queries", "eng hit%", "memo hit%"},
      {9, 10, 9, 9, 10, 10});
  for (const CachePoint &P : CacheRuns)
    row({P.Mode, format("%.3f", P.WallSeconds),
         format("%.1f", P.JobsPerSec), std::to_string(P.TotalQueries),
         format("%.0f%%", 100 * P.engineHitRate()),
         format("%.0f%%", 100 * P.memoHitRate())},
        {9, 10, 9, 9, 10, 10});

  banner("intra-job shard scaling: prefix-split DFS, 1 engine worker");
  // One worker isolates the new parallelism: any speedup here comes from
  // sharding the DFS inside each job, not from running jobs in parallel.
  // The workload is a DEEP exhaustive proof: a feasible long-path
  // diamond whose final configuration blackholes the flow at the
  // destination switch, with the diff capped at DiffCap switches. The
  // search must walk the entire safe sub-lattice of the remaining
  // updates before it can report Impossible — thousands of rechecks
  // spread across every depth-one unit, which is exactly the shape the
  // V-claim discipline splits across shards without duplication. (The
  // previous workload, Fig. 8(h) double diamonds, refutes every root in
  // a single query — queries == ops+1 — so there was nothing to split
  // and the section measured pure shard setup: 0.73x at 4 shards.)
  // 22-switch diffs x four instances run the section for >= 1s at scale
  // 1.0 (the previous 18 x 3 sizing finished in ~30ms — thread start-up
  // and queue hand-off noise swamped any real scaling signal).
  constexpr unsigned DiffCap = 22;
  std::vector<SynthJob> ShardJobs;
  {
    Rng SR(23);
    DiamondOptions DO;
    DO.LongPaths = true; // Long branches: a wide safe lattice.
    unsigned N = std::max(4u, static_cast<unsigned>(4 * ShardScale));
    for (unsigned I = 0; ShardJobs.size() < N && I != 8 * N; ++I) {
      Rng Fork = SR.fork();
      Topology Base = buildSmallWorld(96, 4, 0.2, Fork);
      std::optional<Scenario> S =
          makeDiamondScenario(Base, Fork, PropertyKind::Reachability, DO);
      if (!S)
        continue;
      // Blackhole the destination in the *final* config: the initial
      // configuration still verifies, but no update order can reach a
      // correct end state — Impossible, provable only by exhaustion.
      SwitchId Dst = S->Flows[0].FinalPath.back();
      S->Final.setTable(Dst, Table());
      // Cap the diff so the lattice stays ~2^DiffCap, not 2^|diamond|.
      std::vector<SwitchId> Diff = diffSwitches(S->Initial, S->Final);
      unsigned Kept = 0;
      for (SwitchId Sw : Diff) {
        if (Sw == Dst)
          continue;
        if (++Kept > DiffCap - 1)
          S->Final.setTable(Sw, S->Initial.table(Sw));
      }
      SynthJob Job;
      Job.Name = "deep-proof-" + std::to_string(ShardJobs.size());
      Job.S = std::move(*S);
      Job.Portfolio.emplace_back(); // incremental, switch granularity.
      // Leave the SAT layer out: every counterexample here names the
      // corrupted destination, so its constraints never turn UNSAT and
      // the solver is pure overhead on the hot path being measured.
      // V/W pruning stays on — shards share both.
      Job.Portfolio[0].Opts.EarlyTermination = false;
      ShardJobs.push_back(std::move(Job));
    }
  }
  std::printf("batch: %zu deep exhaustive proofs (diff capped at %u, "
              "section scale %g)\n",
              ShardJobs.size(), DiffCap, ShardScale);
  row({"shards", "wall(s)", "speedup", "prf", "queries", "stolen"},
      {9, 10, 9, 7, 10, 8});
  std::vector<ShardPoint> ShardRuns;
  double ShardBaseSeconds = 0.0;
  std::vector<SynthStatus> ShardBaseVerdicts;
  for (unsigned Shards : {1u, 2u, 4u}) {
    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.CacheResults = false;
    EO.SharedLearning = false;
    EO.IntraJobShards = Shards;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(ShardJobs);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (Shards == 1) {
      ShardBaseSeconds = Rep.WallSeconds;
      ShardBaseVerdicts = Verdicts;
    } else if (Verdicts != ShardBaseVerdicts) {
      std::printf("ERROR: verdicts changed at %u shards\n", Shards);
      return 1;
    }

    ShardPoint P;
    P.Shards = Shards;
    P.WallSeconds = Rep.WallSeconds;
    P.JobsPerSec =
        Rep.WallSeconds > 0
            ? static_cast<double>(ShardJobs.size()) / Rep.WallSeconds
            : 0.0;
    P.Speedup = Rep.WallSeconds > 0 ? ShardBaseSeconds / Rep.WallSeconds
                                    : 1.0;
    P.TotalQueries = Rep.TotalQueries;
    P.StolenTasks = Rep.Merged.StolenTasks;
    P.Succeeded = Rep.numSucceeded();
    P.Pct = jobPercentiles(Rep);
    ShardRuns.push_back(P);

    row({std::to_string(Shards), format("%.3f", Rep.WallSeconds),
         format("%.2fx", P.Speedup),
         std::to_string(ShardJobs.size() - Rep.numSucceeded()) + "/" +
             std::to_string(Rep.Reports.size()),
         std::to_string(Rep.TotalQueries),
         std::to_string(P.StolenTasks)},
        {9, 10, 9, 7, 10, 8});
  }

  banner("observability: tier overhead + deep-proof phase profile");
  // The deep proofs at 1 shard / 1 worker are the most instrumentation-
  // dense workload in this bench (every candidate passes a trace site,
  // a phase scope, and the V/W lock wrappers), so they bound the obs
  // overhead from above. Three back-to-back modes; verdicts AND query
  // counts must be identical — the search is deterministic here, so any
  // drift would mean observability steered it.
  std::vector<ObsPoint> ObsRuns;
  {
    std::vector<SynthStatus> ObsVerdicts;
    uint64_t ObsQueries = 0;
    for (const char *Mode : {"off", "metrics", "trace"}) {
      bool Detail = std::string(Mode) != "off";
      bool Tracing = std::string(Mode) == "trace";
      obs::setDetail(Detail);
      if (Tracing) {
        obs::clearSpans();
        obs::setTracing(true);
      }
      EngineOptions EO;
      EO.NumWorkers = 1;
      EO.CacheResults = false;
      EO.SharedLearning = false;
      EO.IntraJobShards = 1;
      SynthEngine Engine(EO);
      BatchReport Rep = Engine.run(ShardJobs);
      obs::setTracing(false);
      obs::setDetail(false);

      std::vector<SynthStatus> Verdicts;
      for (const SynthReport &R : Rep.Reports)
        Verdicts.push_back(R.Result.Status);
      if (ObsRuns.empty()) {
        ObsVerdicts = Verdicts;
        ObsQueries = Rep.TotalQueries;
      } else if (Verdicts != ObsVerdicts ||
                 Rep.TotalQueries != ObsQueries) {
        std::printf("ERROR: obs mode '%s' changed a verdict or query "
                    "count\n",
                    Mode);
        return 1;
      }

      ObsPoint P;
      P.Mode = Mode;
      P.WallSeconds = Rep.WallSeconds;
      P.JobsPerSec =
          Rep.WallSeconds > 0
              ? static_cast<double>(ShardJobs.size()) / Rep.WallSeconds
              : 0.0;
      P.OverheadPct =
          !ObsRuns.empty() && P.JobsPerSec > 0
              ? 100.0 * (ObsRuns[0].JobsPerSec / P.JobsPerSec - 1.0)
              : 0.0;
      ObsRuns.push_back(P);

      // The metrics run doubles as the 1-shard phase profile of the
      // deep proofs (same knobs as the ShardRuns[0] point).
      if (Detail && !Tracing)
        Phases.push_back({"shards", 1, Rep.WallSeconds,
                          Rep.Merged.CheckSeconds, Rep.Merged.MutateSeconds,
                          Rep.Merged.PruneSeconds, Rep.Merged.SatSeconds});
      if (Tracing) {
        obs::writeChromeTrace("BENCH_trace.json");
        std::printf("wrote BENCH_trace.json (%zu spans kept, %llu "
                    "dropped; load in ui.perfetto.dev)\n",
                    obs::snapshotSpans().size(),
                    static_cast<unsigned long long>(obs::droppedSpans()));
      }
    }
    row({"mode", "wall(s)", "jobs/s", "overhead"}, {9, 10, 9, 10});
    for (const ObsPoint &P : ObsRuns)
      row({P.Mode, format("%.3f", P.WallSeconds),
           format("%.2f", P.JobsPerSec), format("%+.1f%%", P.OverheadPct)},
          {9, 10, 9, 10});
  }

  // Profiled passes at every non-trivial shard count complete the
  // scaling story: comparing the 2- and 4-shard phase splits against the
  // 1-shard one (collected by the obs section above) shows where the
  // extra thread-seconds go when the DFS is split (lock waits surface in
  // the synth.*_lock_ns histograms, phase totals here).
  for (unsigned Shards : {2u, 4u}) {
    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.CacheResults = false;
    EO.SharedLearning = false;
    EO.IntraJobShards = Shards;
    obs::setDetail(true);
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(ShardJobs);
    obs::setDetail(false);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (Verdicts != ShardBaseVerdicts) {
      std::printf("ERROR: profiled %u-shard pass changed a verdict\n",
                  Shards);
      return 1;
    }
    Phases.push_back({"shards", Shards, Rep.WallSeconds,
                      Rep.Merged.CheckSeconds, Rep.Merged.MutateSeconds,
                      Rep.Merged.PruneSeconds, Rep.Merged.SatSeconds});
  }

  banner("deterministic tight budgets: verdict stability + throughput");
  // The same exhaustive instances under a tight per-job check budget:
  // every verdict is a budget Abort (or a deterministic proof) decided
  // by the ledger, so it must be byte-stable across shard counts —
  // exactly the reproducibility the BudgetLedger exists to provide —
  // and jobs/sec records what the bounded-work mode costs so the
  // BENCH_engine.json trend history can flag a regression.
  // Two regimes in one batch: the deep proofs' units exhaust their tiny
  // quotas mid-lattice and the feasible long-path diamonds dive past
  // theirs — both yielding deterministic budget Aborts — while any unit
  // that completes within quota contributes to a real verdict.
  std::vector<SynthJob> BudgetJobs = ShardJobs;
  for (SynthJob &Job : BudgetJobs)
    Job.Portfolio[0].Opts.MaxCheckCalls = 30;
  // One diamond per topology family keeps the section light: probing
  // every depth-one unit under tiny quotas does genuinely wider work
  // than an unlimited dive (that is the budget's semantics, not
  // overhead).
  for (size_t I = 0; I < Jobs.size(); I += std::max<size_t>(1, Jobs.size() / 3)) {
    SynthJob Job = Jobs[I];
    Job.Name += "-tight";
    Job.Portfolio.emplace_back(); // incremental, switch granularity.
    Job.Portfolio[0].Opts.MaxCheckCalls = 25;
    BudgetJobs.push_back(std::move(Job));
  }
  row({"shards", "wall(s)", "jobs/s", "abrt", "spent"}, {9, 10, 9, 7, 10});
  std::vector<BudgetPoint> BudgetRuns;
  std::vector<SynthStatus> BudgetBaseVerdicts;
  for (unsigned Shards : {1u, 2u, 4u}) {
    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.CacheResults = false;
    EO.SharedLearning = false;
    EO.IntraJobShards = Shards;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(BudgetJobs);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (Shards == 1) {
      BudgetBaseVerdicts = Verdicts;
    } else if (Verdicts != BudgetBaseVerdicts) {
      std::printf("ERROR: budget verdicts changed at %u shards\n", Shards);
      return 1;
    }

    BudgetPoint P;
    P.Shards = Shards;
    P.WallSeconds = Rep.WallSeconds;
    P.JobsPerSec =
        Rep.WallSeconds > 0
            ? static_cast<double>(BudgetJobs.size()) / Rep.WallSeconds
            : 0.0;
    P.TotalQueries = Rep.TotalQueries;
    P.BudgetSpent = Rep.Merged.BudgetSpent;
    P.Aborted = 0;
    for (const SynthReport &R : Rep.Reports)
      P.Aborted += R.Result.Status == SynthStatus::Aborted;
    P.Pct = jobPercentiles(Rep);
    BudgetRuns.push_back(P);

    row({std::to_string(Shards), format("%.3f", Rep.WallSeconds),
         format("%.1f", P.JobsPerSec),
         std::to_string(P.Aborted) + "/" +
             std::to_string(Rep.Reports.size()),
         std::to_string(P.BudgetSpent)},
        {9, 10, 9, 7, 10});
  }

  // Profiled budget pass: under tiny quotas the phase mix shifts toward
  // probing (every unit binds and dives a little), worth tracking
  // separately from the unbounded deep proofs.
  {
    EngineOptions EO;
    EO.NumWorkers = 1;
    EO.CacheResults = false;
    EO.SharedLearning = false;
    EO.IntraJobShards = 1;
    obs::setDetail(true);
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(BudgetJobs);
    obs::setDetail(false);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (Verdicts != BudgetBaseVerdicts) {
      std::printf("ERROR: profiled budget pass changed a verdict\n");
      return 1;
    }
    Phases.push_back({"budget", 1, Rep.WallSeconds,
                      Rep.Merged.CheckSeconds, Rep.Merged.MutateSeconds,
                      Rep.Merged.PruneSeconds, Rep.Merged.SatSeconds});
  }

  banner("conflict-driven learning: knobs on vs off on exhaustive proofs");
  // The deep Impossible proofs again, but as the workload the conflict
  // layer is built for: a batch that revisits each instance (think
  // autotuning probes or a portfolio re-race) with the cross-job
  // constraint store enabled. With the knobs on, the first visit
  // publishes minimized clauses plus its UNSAT proof, and every repeat
  // is shed — answered from the proof without a single checker query.
  // With the knobs off, the repeats re-search (the store still seeds
  // refutations, so this is the strongest fair baseline, not a straw
  // man). Verdicts must be byte-identical — shedding and the in-search
  // knobs reorder and generalize, they never change an answer — and the
  // query reduction lands in BENCH_engine.json so the trend gate can
  // hold the >= 25% line fail-soft.
  std::vector<ConflictPoint> ConflictRuns;
  {
    // Each deep proof appears Repeats times; copies share the scenario
    // digest, so only the first can ever do real work under shedding.
    constexpr unsigned Repeats = 4;
    std::vector<SynthJob> CJobsBase;
    for (const SynthJob &Job : ShardJobs) {
      for (unsigned R = 0; R != Repeats; ++R) {
        SynthJob Copy = Job;
        Copy.Name = Job.Name + "#" + std::to_string(R);
        CJobsBase.push_back(std::move(Copy));
      }
    }
    std::vector<SynthStatus> ConflictBaseVerdicts;
    for (const char *Mode : {"off", "on"}) {
      bool On = std::string(Mode) == "on";
      std::vector<SynthJob> CJobs = CJobsBase;
      for (SynthJob &Job : CJobs) {
        Job.Portfolio[0].Opts.ClauseMinimization = On;
        Job.Portfolio[0].Opts.ActivityOrdering = On;
        Job.Portfolio[0].Opts.Restarts = On;
      }
      EngineOptions EO;
      EO.NumWorkers = 1;
      EO.CacheResults = false; // The result cache would replay the
                               // repeats outright and hide the layer
                               // under test.
      EO.SharedLearning = true;
      EO.IntraJobShards = 1;
      SynthEngine Engine(EO);
      BatchReport Rep = Engine.run(CJobs);

      std::vector<SynthStatus> Verdicts;
      for (const SynthReport &R : Rep.Reports)
        Verdicts.push_back(R.Result.Status);
      if (ConflictRuns.empty()) {
        ConflictBaseVerdicts = std::move(Verdicts);
      } else if (Verdicts != ConflictBaseVerdicts) {
        std::printf("ERROR: conflict mode '%s' changed a verdict\n", Mode);
        return 1;
      }

      ConflictPoint P;
      P.Mode = Mode;
      P.WallSeconds = Rep.WallSeconds;
      P.JobsPerSec =
          Rep.WallSeconds > 0
              ? static_cast<double>(CJobs.size()) / Rep.WallSeconds
              : 0.0;
      P.TotalQueries = Rep.TotalQueries;
      P.ClausesMinimized = Rep.Merged.ClausesMinimized;
      P.LiteralsDropped = Rep.Merged.LiteralsDropped;
      P.Restarts = Rep.Merged.Restarts;
      P.SubsumedDropped = Rep.Merged.SubsumedDropped;
      P.ShedMembers = Rep.Merged.ShedMembers;
      P.Succeeded = Rep.numSucceeded();
      ConflictRuns.push_back(P);
    }
    row({"mode", "wall(s)", "queries", "minimized", "dropped", "restarts",
         "shed"},
        {9, 10, 10, 10, 9, 9, 6});
    for (const ConflictPoint &P : ConflictRuns)
      row({P.Mode, format("%.3f", P.WallSeconds),
           std::to_string(P.TotalQueries),
           std::to_string(P.ClausesMinimized),
           std::to_string(P.LiteralsDropped), std::to_string(P.Restarts),
           std::to_string(P.ShedMembers)},
          {9, 10, 10, 10, 9, 9, 6});
    double Reduction =
        ConflictRuns[0].TotalQueries
            ? 100.0 * (1.0 - static_cast<double>(
                                 ConflictRuns[1].TotalQueries) /
                                 static_cast<double>(
                                     ConflictRuns[0].TotalQueries))
            : 0.0;
    std::printf("query reduction: %.1f%% (trend-gate target: >= 25%%)\n",
                Reduction);
  }

  banner("cross-job learning: repeated probes over one scenario family");
  // Autotuning-style probe stream: every scenario is probed under
  // several digest-DISTINCT configurations (backend x SAT-layer), so
  // the engine result cache cannot serve a single one of them — only
  // the ConstraintStore connects the probes. With SharedLearning off,
  // each probe re-derives every counterexample refutation through
  // checker queries; with it on, later probes of the same scenario seed
  // their W set and SAT layer from the store and skip them. Verdicts
  // and sequences must be byte-identical across the two modes (the
  // learning invariance contract), total queries must strictly drop.
  std::vector<SynthJob> LearnJobs;
  {
    Rng LR(31);
    unsigned Fam = std::max(3u, static_cast<unsigned>(3 * Scale));
    unsigned Made = 0;
    for (unsigned I = 0; Made < Fam && I != 8 * Fam; ++I) {
      Rng Fork = LR.fork();
      Topology Base = buildSmallWorld(40, 4, 0.2, Fork);
      std::optional<Scenario> S = makeDoubleDiamondScenario(Base, Fork);
      if (!S)
        continue;
      ++Made;
      struct Probe {
        const char *Backend;
        bool Et;
      };
      for (const Probe &P :
           {Probe{"incremental", false}, Probe{"incremental", true},
            Probe{"batch", false}, Probe{"batch", true}}) {
        SynthJob Job;
        Job.Name = "probe-" + std::to_string(Made) + "-" + P.Backend +
                   (P.Et ? "+et" : "-et");
        Job.S = *S;
        Job.Portfolio.emplace_back();
        Job.Portfolio[0].Backend = P.Backend;
        Job.Portfolio[0].Opts.EarlyTermination = P.Et;
        LearnJobs.push_back(std::move(Job));
      }
    }
    // A feasible family rides along: reuse must also hold — and help —
    // where a sequence has to be found.
    Rng FR(33);
    unsigned FeasFam = std::max(2u, static_cast<unsigned>(2 * Scale));
    for (unsigned I = 0; I != FeasFam; ++I) {
      Rng Fork = FR.fork();
      std::optional<Scenario> S = makeDiamondScenario(
          buildFatTree(8), Fork, PropertyKind::Reachability);
      if (!S)
        continue;
      for (const char *Backend : {"incremental", "batch"}) {
        SynthJob Job;
        Job.Name = "probe-feas-" + std::to_string(I) + "-" + Backend;
        Job.S = *S;
        Job.Portfolio.emplace_back();
        Job.Portfolio[0].Backend = Backend;
        LearnJobs.push_back(std::move(Job));
      }
    }
  }
  std::printf("batch: %zu digest-distinct probes\n", LearnJobs.size());

  std::vector<LearnPoint> LearnRuns;
  std::vector<std::pair<SynthStatus, std::string>> LearnBase;
  for (const char *Mode : {"off", "on"}) {
    EngineOptions EO;
    EO.NumWorkers = 1; // Sequential probes: deterministic import chains.
    EO.CacheResults = false;
    EO.SharedLearning = std::string(Mode) == "on";
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(LearnJobs);

    std::vector<std::pair<SynthStatus, std::string>> Fingerprints;
    for (size_t I = 0; I != Rep.Reports.size(); ++I)
      Fingerprints.push_back(
          {Rep.Reports[I].Result.Status,
           commandSeqToString(LearnJobs[I].S.Topo,
                              Rep.Reports[I].Result.Commands)});
    if (LearnRuns.empty()) {
      LearnBase = std::move(Fingerprints);
    } else if (Fingerprints != LearnBase) {
      std::printf("ERROR: learning mode '%s' changed a verdict or "
                  "sequence\n",
                  Mode);
      return 1;
    }

    LearnPoint P;
    P.Mode = Mode;
    P.WallSeconds = Rep.WallSeconds;
    P.JobsPerSec =
        Rep.WallSeconds > 0
            ? static_cast<double>(LearnJobs.size()) / Rep.WallSeconds
            : 0.0;
    P.TotalQueries = Rep.TotalQueries;
    P.Imported = Rep.Merged.ImportedConstraints;
    P.Exported = Rep.Merged.ExportedConstraints;
    P.SeededPrunes = Rep.Merged.SeededPrunes;
    P.Succeeded = Rep.numSucceeded();
    LearnRuns.push_back(P);
  }
  if (LearnRuns[1].TotalQueries >= LearnRuns[0].TotalQueries) {
    std::printf("ERROR: learning did not reduce checker queries "
                "(%llu -> %llu)\n",
                static_cast<unsigned long long>(LearnRuns[0].TotalQueries),
                static_cast<unsigned long long>(LearnRuns[1].TotalQueries));
    return 1;
  }

  row({"mode", "wall(s)", "jobs/s", "queries", "seeded", "imported"},
      {9, 10, 9, 9, 9, 9});
  for (const LearnPoint &P : LearnRuns)
    row({P.Mode, format("%.3f", P.WallSeconds),
         format("%.1f", P.JobsPerSec), std::to_string(P.TotalQueries),
         std::to_string(P.SeededPrunes), std::to_string(P.Imported)},
        {9, 10, 9, 9, 9, 9});

  banner("scenario zoo at scale: 500+-switch fabrics end to end");

  // The fuzzer's instance families stay small so the cell matrix runs in
  // seconds; this section is where the zoo generators prove the other
  // half of the claim — the same builders emit 500+-switch fat-trees and
  // WANs whose update scenarios synthesize end to end. Failures here are
  // hard errors, not trend warnings: a fabric below 500 switches or an
  // unsynthesizable job means a generator regressed.
  std::vector<ZooScalePoint> ZooRuns;
  {
    Rng ZR(4207);
    unsigned ZooJobs = std::max(4u, static_cast<unsigned>(4 * Scale));

    struct Fabric {
      std::string Name;
      Topology Topo;
    };
    std::vector<Fabric> Fabrics;
    Fabrics.push_back({"fattree-k24", buildFatTree(24)});
    {
      WanParams WP; // Defaults: mean 16 PoPs per region.
      WP.Regions = 40;
      Rng Fork = ZR.fork();
      Fabrics.push_back({"wan-40x16", buildWan(WP, Fork)});
    }

    row({"fabric", "switches", "jobs", "wall(s)", "jobs/s", "queries"},
        {13, 10, 6, 10, 9, 10});
    for (const Fabric &F : Fabrics) {
      if (F.Topo.numSwitches() < 500) {
        std::printf("ERROR: %s has %u switches, zoo-scale floor is 500\n",
                    F.Name.c_str(), F.Topo.numSwitches());
        return 1;
      }
      std::vector<SynthJob> ZJobs;
      DiamondOptions ZOpts;
      ZOpts.NumFlows = 2;
      for (unsigned I = 0; I != ZooJobs; ++I) {
        Rng Fork = ZR.fork();
        std::optional<Scenario> S = makeDiamondScenarioRetrying(
            F.Topo, Fork, PropertyKind::Reachability, ZOpts);
        if (!S) {
          std::printf("ERROR: no 2-flow diamond found on %s\n",
                      F.Name.c_str());
          return 1;
        }
        SynthJob Job;
        Job.Name = F.Name + "-" + std::to_string(I);
        Job.S = std::move(*S);
        ZJobs.push_back(std::move(Job));
      }

      EngineOptions EO;
      EO.NumWorkers = std::max(2u, Cores);
      EO.CacheResults = false;
      EO.SharedLearning = false;
      SynthEngine Engine(EO);
      BatchReport Rep = Engine.run(ZJobs);
      if (Rep.numSucceeded() != ZJobs.size()) {
        std::printf("ERROR: %u/%zu zoo-scale jobs succeeded on %s\n",
                    Rep.numSucceeded(), ZJobs.size(), F.Name.c_str());
        return 1;
      }

      ZooScalePoint P;
      P.Name = F.Name;
      P.Switches = F.Topo.numSwitches();
      P.Jobs = ZJobs.size();
      P.WallSeconds = Rep.WallSeconds;
      P.JobsPerSec = Rep.WallSeconds > 0
                         ? static_cast<double>(ZJobs.size()) / Rep.WallSeconds
                         : 0.0;
      P.TotalQueries = Rep.TotalQueries;
      P.Succeeded = Rep.numSucceeded();
      ZooRuns.push_back(P);
      row({P.Name, std::to_string(P.Switches), std::to_string(P.Jobs),
           format("%.3f", P.WallSeconds), format("%.1f", P.JobsPerSec),
           std::to_string(P.TotalQueries)},
          {13, 10, 6, 10, 9, 10});
    }

    // Rolling maintenance at WAN scale: a churn trace over the large WAN
    // fed through the engine with the result cache on. One worker keeps
    // the cache-hit pigeonhole floor deterministic (digest-identical jobs
    // running concurrently can both miss).
    {
      const Topology &Wan = Fabrics.back().Topo;
      Rng Fork = ZR.fork();
      ChurnOptions CO;
      CO.NumFlows = 2;
      CO.Steps = std::max(8u, static_cast<unsigned>(12 * Scale));
      std::optional<ChurnTrace> Trace = makeChurnTrace(Wan, Fork, CO);
      if (!Trace) {
        std::printf("ERROR: churn trace failed on wan-40x16\n");
        return 1;
      }
      std::vector<SynthJob> CJobs;
      std::vector<Digest> Distinct;
      for (size_t I = 0; I != Trace->Steps.size(); ++I) {
        SynthJob Job;
        Job.Name = "churn-" + std::to_string(I);
        Job.S = Trace->Steps[I];
        Digest D = digestOf(Job.S);
        if (std::find(Distinct.begin(), Distinct.end(), D) == Distinct.end())
          Distinct.push_back(D);
        CJobs.push_back(std::move(Job));
      }

      EngineOptions EO;
      EO.NumWorkers = 1;
      EO.CacheResults = true;
      EO.SharedLearning = false;
      SynthEngine Engine(EO);
      BatchReport Rep = Engine.run(CJobs);
      if (Rep.numSucceeded() != CJobs.size()) {
        std::printf("ERROR: %u/%zu churn steps succeeded at WAN scale\n",
                    Rep.numSucceeded(), CJobs.size());
        return 1;
      }
      uint64_t Floor = CJobs.size() - Distinct.size();
      if (Rep.EngineCacheHits < Floor) {
        std::printf("ERROR: churn cache hits %llu below pigeonhole "
                    "floor %llu\n",
                    static_cast<unsigned long long>(Rep.EngineCacheHits),
                    static_cast<unsigned long long>(Floor));
        return 1;
      }

      ZooScalePoint P;
      P.Name = "wan-40x16-churn";
      P.Switches = Wan.numSwitches();
      P.Jobs = CJobs.size();
      P.WallSeconds = Rep.WallSeconds;
      P.JobsPerSec = Rep.WallSeconds > 0
                         ? static_cast<double>(CJobs.size()) / Rep.WallSeconds
                         : 0.0;
      P.TotalQueries = Rep.TotalQueries;
      P.Succeeded = Rep.numSucceeded();
      P.EngineCacheHits = Rep.EngineCacheHits;
      ZooRuns.push_back(P);
      row({P.Name, std::to_string(P.Switches), std::to_string(P.Jobs),
           format("%.3f", P.WallSeconds), format("%.1f", P.JobsPerSec),
           std::to_string(P.TotalQueries)},
          {13, 10, 6, 10, 9, 10});
      std::printf("churn cache hits: %llu (floor %llu over %zu distinct "
                  "digests)\n",
                  static_cast<unsigned long long>(Rep.EngineCacheHits),
                  static_cast<unsigned long long>(Floor), Distinct.size());
    }
  }

  banner("phase profile: cpu-seconds + per-phase share (detail tier)");
  row({"section", "param", "wall(s)", "cpu(s)", "check", "mutate", "prune",
       "sat"},
      {9, 7, 10, 9, 7, 7, 7, 7});
  for (const PhasePoint &P : Phases)
    row({P.Section, std::to_string(P.Param), format("%.3f", P.WallSeconds),
         format("%.3f", P.cpuS()), format("%.2f", P.share(P.CheckS)),
         format("%.2f", P.share(P.MutateS)),
         format("%.2f", P.share(P.PruneS)), format("%.2f", P.share(P.SatS))},
        {9, 7, 10, 9, 7, 7, 7, 7});

  writeJson(Scale, SweepScale, ShardScale, Cores, Jobs.size(), Sweep,
            CacheJobs.size(), CacheRuns, ShardRuns, BudgetRuns,
            LearnJobs.size(), LearnRuns, ConflictRuns, Phases, ObsRuns,
            ZooRuns);
  return 0;
}
