//===- bench/engine_scaling.cpp - Engine worker-count sweep ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the batch engine: one fixed batch of long-path diamond
/// instances over the three §6 topology families, executed repeatedly
/// with 1, 2, 4, ... workers. Reported is wall-clock per sweep and the
/// speedup over the 1-worker run; verdicts are asserted identical across
/// sweeps (the engine's determinism contract).
///
/// A second section exercises portfolio racing on Fig. 8(h)-style double
/// diamonds, where the rule-granularity member must win the race and the
/// switch-granularity member alone would prove Impossible.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "engine/Engine.h"
#include "topo/Generators.h"

#include <algorithm>
#include <cstdio>
#include <thread>

using namespace netupd;
using namespace netupd::benchutil;

namespace {

std::vector<SynthJob> buildBatch(double Scale) {
  std::vector<SynthJob> Jobs;
  Rng R(2026);
  DiamondOptions Opts;
  Opts.LongPaths = true;

  auto AddJob = [&](const std::string &Name, const Topology &Topo) {
    Rng Fork = R.fork();
    std::optional<Scenario> S =
        makeDiamondScenario(Topo, Fork, PropertyKind::Reachability, Opts);
    if (!S)
      return;
    SynthJob Job;
    Job.Name = Name;
    Job.S = std::move(*S);
    Jobs.push_back(std::move(Job));
  };

  unsigned PerFamily = std::max(3u, static_cast<unsigned>(3 * Scale));

  // Zoo-like WANs, largest first so the batch has heavy heads.
  std::vector<unsigned> ZooIdx(NumZooLike);
  for (unsigned I = 0; I != NumZooLike; ++I)
    ZooIdx[I] = I;
  std::sort(ZooIdx.begin(), ZooIdx.end(), [](unsigned A, unsigned B) {
    return zooLikeSize(A) > zooLikeSize(B);
  });
  for (unsigned I = 0; I != PerFamily; ++I)
    AddJob("zoo-" + std::to_string(ZooIdx[I]), buildZooLike(ZooIdx[I]));

  for (unsigned I = 0; I != PerFamily; ++I)
    AddJob("fattree-8", buildFatTree(8));

  for (unsigned I = 0; I != PerFamily; ++I) {
    Rng Fork = R.fork();
    AddJob("smallworld-200", buildSmallWorld(200, 6, 0.3, Fork));
  }
  return Jobs;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("engine scaling: batch synthesis, worker-count sweep");

  std::vector<SynthJob> Jobs = buildBatch(Scale);
  std::printf("batch: %zu long-path diamond jobs\n", Jobs.size());
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores <= 1)
    std::printf("note: single-core machine; expect a flat speedup curve\n");

  unsigned MaxWorkers = std::max(4u, Cores);
  row({"workers", "wall(s)", "speedup", "ok", "queries"},
      {9, 10, 9, 5, 10});

  double BaseSeconds = 0.0;
  std::vector<SynthStatus> BaseVerdicts;
  for (unsigned Workers = 1; Workers <= MaxWorkers; Workers *= 2) {
    EngineOptions EO;
    EO.NumWorkers = Workers;
    SynthEngine Engine(EO);
    BatchReport Rep = Engine.run(Jobs);

    std::vector<SynthStatus> Verdicts;
    for (const SynthReport &R : Rep.Reports)
      Verdicts.push_back(R.Result.Status);
    if (Workers == 1) {
      BaseSeconds = Rep.WallSeconds;
      BaseVerdicts = Verdicts;
    } else if (Verdicts != BaseVerdicts) {
      std::printf("ERROR: verdicts changed at %u workers\n", Workers);
      return 1;
    }

    row({std::to_string(Workers), format("%.3f", Rep.WallSeconds),
         format("%.2fx", BaseSeconds / Rep.WallSeconds),
         std::to_string(Rep.numSucceeded()) + "/" +
             std::to_string(Rep.Reports.size()),
         std::to_string(Rep.TotalQueries)},
        {9, 10, 9, 5, 10});
  }

  banner("portfolio racing: double diamonds (Fig. 8(h) regime)");
  row({"job", "verdict", "winner", "job(s)", "members"}, {16, 10, 18, 9, 40});
  Rng R(7);
  unsigned Races = std::max(4u, static_cast<unsigned>(4 * Scale));
  for (unsigned I = 0; I != Races; ++I) {
    Rng Fork = R.fork();
    Topology Base = buildSmallWorld(40, 4, 0.2, Fork);
    std::optional<Scenario> S = makeDoubleDiamondScenario(Base, Fork);
    if (!S)
      continue;
    SynthJob Job;
    Job.Name = "ddiamond-" + std::to_string(I);
    Job.S = std::move(*S);
    Job.Portfolio = defaultPortfolio();

    SynthEngine Engine;
    BatchReport Rep = Engine.run({Job});
    const SynthReport &Res = Rep.Reports[0];
    std::string Members;
    for (const MemberOutcome &O : Res.Members) {
      if (!Members.empty())
        Members += " ";
      const char *Tag = O.Cancelled            ? "cancelled"
                        : O.Status == SynthStatus::Success ? "success"
                        : O.Status == SynthStatus::Impossible
                            ? "impossible"
                            : "aborted";
      Members += O.Name + "=" + Tag;
    }
    row({Job.Name, Res.ok() ? "success" : "failed", Res.Winner,
         format("%.3f", Res.Seconds), Members},
        {16, 10, 18, 9, 40});
  }
  return 0;
}
