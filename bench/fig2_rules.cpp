//===- bench/fig2_rules.cpp - Fig. 2(b): rule overhead ---------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 2(b): the per-switch rule high-water mark during the
/// red->green transition, for the two-phase baseline versus the
/// synthesized ordering update. The paper normalizes to the steady-state
/// rule count ("rule overhead", 1X = no overhead); switches holding both
/// rule generations under two-phase sit at ~2X.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ltl/Properties.h"
#include "mc/LabelingChecker.h"
#include "sim/Simulator.h"
#include "synth/Baselines.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"

#include <algorithm>

using namespace netupd;
using namespace netupd::benchutil;

int main(int Argc, char **Argv) {
  (void)parseScale(Argc, Argv);
  banner("Figure 2(b): per-switch rule overhead, two-phase vs ordering");

  Fig1Network N = buildFig1();
  TwoPhasePlan Plan = makeTwoPhasePlan(N.Topo, N.Red, N.Green);
  std::vector<size_t> Ordering = orderingRuleHighWater(N.Red, N.Green);

  // Execute the ordering update on the simulator to confirm the
  // accounting against observed rule counts.
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  LabelingChecker Checker;
  SynthResult Synth =
      synthesizeUpdate(N.Topo, N.Red, N.Green, {N.FlowH1H3}, Phi, Checker);
  if (!Synth.ok()) {
    std::printf("synthesis failed; cannot reproduce the figure\n");
    return 1;
  }
  Simulator Sim(N.Topo, N.Red);
  Sim.enqueueCommands(Synth.Commands);
  Sim.runToQuiescence();

  row({"switch", "steady", "two-phase", "ordering", "overhead(2p)",
       "overhead(ord)"},
      {8, 8, 11, 10, 14, 14});
  for (SwitchId Sw = 0; Sw != N.Topo.numSwitches(); ++Sw) {
    size_t Steady =
        std::max<size_t>(1, std::max(N.Red.table(Sw).size(),
                                     N.Green.table(Sw).size()));
    size_t TwoPhase = std::max<size_t>(Plan.MaxRulesPerSwitch[Sw], 0);
    size_t Ord = std::max(Ordering[Sw], Sim.maxRulesSeen(Sw));
    row({N.Topo.switchName(Sw), format("%zu", Steady),
         format("%zu", TwoPhase), format("%zu", Ord),
         format("%.1fX", static_cast<double>(TwoPhase) /
                             static_cast<double>(Steady)),
         format("%.1fX",
                static_cast<double>(Ord) / static_cast<double>(Steady))},
        {8, 8, 11, 10, 14, 14});
  }
  std::printf("\npaper shape: two-phase reaches ~2X (plus tagging rules at "
              "the ingress) on transit switches; ordering stays at 1X\n");
  return 0;
}
