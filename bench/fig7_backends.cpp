//===- bench/fig7_backends.cpp - Fig. 7(a-c): checker backends -*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 7(a-c): end-to-end synthesis time with the
/// Incremental checker versus the Batch checker and the symbolic
/// (NuSMV-substitute) checker, on reachability diamonds over the three
/// topology families — Zoo-like WANs, FatTrees, and Small-World graphs.
///
/// Expected shape: Incremental beats Batch by single-digit factors and
/// the symbolic batch checker by orders of magnitude; the symbolic
/// backend stops scaling first (the paper imposed a 10-minute timeout;
/// here a state-count cap plays that role, printed as "skip").
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "bddmc/SymbolicChecker.h"
#include "mc/LabelingChecker.h"
#include "support/Timer.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

#include <algorithm>
#include <memory>

using namespace netupd;
using namespace netupd::benchutil;

namespace {

struct Instance {
  std::string Name;
  Scenario S;
  unsigned NumStates = 0;
};

/// Times one synthesis run; returns seconds, or a negative value on a
/// non-success outcome.
double timeBackend(const Instance &Inst, CheckerBackend &Checker) {
  FormulaFactory FF;
  Timer Clock;
  SynthResult R = synthesizeUpdate(Inst.S, FF, Checker);
  double Secs = Clock.seconds();
  return R.ok() ? Secs : -1.0;
}

unsigned kripkeStates(const Scenario &S) {
  KripkeStructure K(S.Topo, S.Initial, S.classes());
  return K.numStates();
}

void runFamily(const std::string &Family,
               const std::vector<std::pair<std::string, Topology>> &Topos,
               unsigned SymbolicStateCap, Rng &R) {
  std::printf("\n-- %s --\n", Family.c_str());
  row({"topology", "switches", "states", "incr(s)", "batch(s)", "nusmv(s)",
       "x batch", "x nusmv"},
      {16, 10, 8, 10, 10, 10, 9, 9});

  std::vector<double> BatchSpeedups, SymbolicSpeedups;
  for (const auto &[Name, Topo] : Topos) {
    Rng Fork = R.fork();
    // Long-path diamonds: the update touches a sizable switch subset, as
    // in the paper's large-diamond workloads.
    DiamondOptions Opts;
    Opts.LongPaths = true;
    std::optional<Scenario> S =
        makeDiamondScenario(Topo, Fork, PropertyKind::Reachability, Opts);
    if (!S)
      continue;
    Instance Inst{Name, std::move(*S), 0};
    Inst.NumStates = kripkeStates(Inst.S);

    LabelingChecker Incr(LabelingChecker::Mode::Incremental);
    LabelingChecker Batch(LabelingChecker::Mode::Batch);
    double IncrSecs = timeBackend(Inst, Incr);
    double BatchSecs = timeBackend(Inst, Batch);
    double SymbolicSecs = -1.0;
    bool Skipped = Inst.NumStates > SymbolicStateCap;
    if (!Skipped) {
      SymbolicChecker Symbolic;
      SymbolicSecs = timeBackend(Inst, Symbolic);
    }

    auto Cell = [](double Secs) {
      return Secs < 0 ? std::string("-") : format("%.4f", Secs);
    };
    double BatchX = (IncrSecs > 0 && BatchSecs > 0) ? BatchSecs / IncrSecs
                                                    : 0.0;
    double SymX = (IncrSecs > 0 && SymbolicSecs > 0)
                      ? SymbolicSecs / IncrSecs
                      : 0.0;
    if (BatchX > 0)
      BatchSpeedups.push_back(BatchX);
    if (SymX > 0)
      SymbolicSpeedups.push_back(SymX);
    row({Inst.Name, format("%u", Inst.S.Topo.numSwitches()),
         format("%u", Inst.NumStates), Cell(IncrSecs), Cell(BatchSecs),
         Skipped ? "skip" : Cell(SymbolicSecs),
         BatchX > 0 ? format("%.1fx", BatchX) : "-",
         SymX > 0 ? format("%.0fx", SymX) : "-"},
        {16, 10, 8, 10, 10, 10, 9, 9});
  }
  std::printf("geomean speedup vs Batch: %.2fx, vs NuSMV-substitute: "
              "%.1fx\n",
              geomean(BatchSpeedups), geomean(SymbolicSpeedups));
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Figure 7(a-c): Incremental vs Batch vs NuSMV-substitute");

  Rng R(0xf16'7abc);

  // (a) Zoo-like WANs: a size-spanning subset of the 261-network suite.
  std::vector<std::pair<std::string, Topology>> Zoo;
  {
    std::vector<std::pair<unsigned, unsigned>> SizeIdx; // (size, index)
    for (unsigned I = 0; I != NumZooLike; ++I)
      SizeIdx.emplace_back(zooLikeSize(I), I);
    std::sort(SizeIdx.begin(), SizeIdx.end());
    unsigned Count = std::max(4u, static_cast<unsigned>(10 * Scale));
    for (unsigned K = 0; K != Count; ++K) {
      unsigned Pos = K * (NumZooLike - 1) / std::max(1u, Count - 1);
      auto [Size, Idx] = SizeIdx[Pos];
      Zoo.emplace_back(format("zoo%u(n=%u)", Idx, Size),
                       buildZooLike(Idx));
    }
  }
  runFamily("Topology Zoo (zoo-like suite)", Zoo,
            static_cast<unsigned>(600 * Scale), R);

  // (b) FatTrees.
  std::vector<std::pair<std::string, Topology>> Fat;
  for (unsigned K : {4u, 6u, 8u}) {
    unsigned Arity = static_cast<unsigned>(K * Scale);
    Arity = std::max(4u, Arity - (Arity % 2));
    Fat.emplace_back(format("fattree(k=%u)", Arity), buildFatTree(Arity));
  }
  runFamily("FatTree", Fat, static_cast<unsigned>(600 * Scale), R);

  // (c) Small-World graphs.
  std::vector<std::pair<std::string, Topology>> Sw;
  for (unsigned N : {30u, 60u, 120u, 240u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    Rng TopoRng(1000 + Size);
    Sw.emplace_back(format("smallworld(n=%u)", Size),
                    buildSmallWorld(Size, 4, 0.3, TopoRng));
  }
  runFamily("Small-World", Sw, static_cast<unsigned>(600 * Scale), R);

  std::printf("\npaper shape: Incremental fastest everywhere; Batch within "
              "~4-12x; the symbolic batch checker is orders of magnitude "
              "slower and stops scaling first\n");
  return 0;
}
