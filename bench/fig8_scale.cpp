//===- bench/fig8_scale.cpp - Fig. 8(g): scalability -----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8(g): synthesis time of the Incremental backend on
/// Small-World topologies of increasing size with *large* diamond updates
/// (randomized-walk branches; the paper's largest instance updates 1015
/// switches on a 1500-switch graph), for the three property families.
///
/// Expected shape: all three properties scale to 1000+ switches;
/// service chaining is the most expensive, reachability the cheapest.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "mc/LabelingChecker.h"
#include "support/Timer.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

using namespace netupd;
using namespace netupd::benchutil;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Figure 8(g): Incremental-backend scalability on Small-World "
         "diamonds");

  const char *KindName[] = {"reachability", "waypointing", "servicechain"};
  row({"switches", "property", "updating", "waits", "synth(s)",
       "waitrm(s)"},
      {10, 14, 10, 7, 10, 10});

  std::vector<unsigned> Sizes;
  for (unsigned N : {100u, 200u, 400u, 800u, 1500u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size >= 20)
      Sizes.push_back(Size);
  }

  for (unsigned Size : Sizes) {
    for (PropertyKind Kind :
         {PropertyKind::ServiceChain, PropertyKind::Waypoint,
          PropertyKind::Reachability}) {
      Rng R(3000 + Size);
      Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
      DiamondOptions Opts;
      Opts.LongPaths = true;
      std::optional<Scenario> S = makeDiamondScenario(Topo, R, Kind, Opts);
      if (!S)
        continue;

      FormulaFactory FF;
      LabelingChecker Checker;
      Timer Clock;
      SynthResult Res = synthesizeUpdate(*S, FF, Checker);
      double Secs = Clock.seconds();
      row({format("%u", Size), KindName[static_cast<int>(Kind)],
           format("%u", numUpdatingSwitches(*S)),
           format("%u/%u", Res.Stats.WaitsAfterRemoval,
                  Res.Stats.WaitsBeforeRemoval),
           Res.ok() ? format("%.3f", Secs) : "fail",
           format("%.3f", Res.Stats.WaitRemovalSeconds)},
          {10, 14, 10, 7, 10, 10});
    }
  }
  std::printf("\npaper shape: scales to 1000+ updating switches; maxima "
              "129s / 30s / 0.9s for chain / waypoint / reachability, and "
              "wait removal keeps ~2 waits (99.9%% removed)\n");
  return 0;
}
