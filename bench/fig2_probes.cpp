//===- bench/fig2_probes.cpp - Fig. 2(a): probes during updates -*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 2(a): probes received over time while the Fig. 1
/// network shifts H1->H3 traffic from the red to the green path, under
/// three strategies:
///
///  - naive   : push A1 then C2, no synchronization (the §2 mistake);
///  - two-phase: the consistent-update baseline of Reitblatt et al.;
///  - ordering: the sequence synthesized by ORDERUPDATE.
///
/// The paper's testbed sends ICMP probes through Mininet/OpenFlow; here
/// the operational-semantics simulator injects one probe per tick and we
/// report the per-window delivery percentage. Expected shape: the naive
/// line dips to 0% during the update window, the other two stay at 100%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ltl/Properties.h"
#include "mc/LabelingChecker.h"
#include "sim/Simulator.h"
#include "synth/Baselines.h"
#include "synth/OrderUpdate.h"
#include "topo/Fig1.h"

using namespace netupd;
using namespace netupd::benchutil;

namespace {

/// Runs one strategy and returns the delivery percentage per window.
std::vector<double> runStrategy(const Fig1Network &N, const CommandSeq &Cmds,
                                unsigned TotalTicks, unsigned Window) {
  Simulator Sim(N.Topo, N.Red, SimParams{/*UpdateLatencyTicks=*/40});
  Sim.enqueueCommands(Cmds);

  std::vector<uint64_t> SentPerWindow(TotalTicks / Window, 0);
  for (unsigned Tick = 0; Tick != TotalTicks; ++Tick) {
    Sim.injectPacket(N.H[0], N.FlowH1H3.Hdr, Tick);
    ++SentPerWindow[Tick / Window];
    Sim.step();
  }
  Sim.runToQuiescence();

  std::vector<uint64_t> GotPerWindow(TotalTicks / Window, 0);
  for (const Simulator::Delivery &D : Sim.deliveries()) {
    if (D.To != N.H[2])
      continue;
    unsigned W = static_cast<unsigned>(D.PacketId) / Window;
    if (W < GotPerWindow.size())
      ++GotPerWindow[W];
  }

  std::vector<double> Out;
  for (size_t W = 0; W != GotPerWindow.size(); ++W)
    Out.push_back(100.0 * static_cast<double>(GotPerWindow[W]) /
                  static_cast<double>(SentPerWindow[W]));
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  (void)parseScale(Argc, Argv);
  banner("Figure 2(a): probes received during the red->green update");

  Fig1Network N = buildFig1();

  // Naive: A1 before C2 with no waits.
  CommandSeq Naive;
  Naive.push_back(Command::update(N.A[0], N.Green.table(N.A[0])));
  Naive.push_back(Command::update(N.C2, N.Green.table(N.C2)));

  // Two-phase consistent update.
  TwoPhasePlan TwoPhase = makeTwoPhasePlan(N.Topo, N.Red, N.Green);

  // Synthesized ordering update.
  FormulaFactory FF;
  Formula Phi = reachabilityProperty(FF, N.srcPort(), N.dstPort());
  LabelingChecker Checker;
  SynthResult Synth =
      synthesizeUpdate(N.Topo, N.Red, N.Green, {N.FlowH1H3}, Phi, Checker);
  if (!Synth.ok()) {
    std::printf("synthesis failed; cannot reproduce the figure\n");
    return 1;
  }
  std::printf("synthesized sequence: %s\n",
              commandSeqToString(N.Topo, Synth.Commands).c_str());

  const unsigned TotalTicks = 400, Window = 20;
  std::vector<double> NaiveSeries = runStrategy(N, Naive, TotalTicks, Window);
  std::vector<double> TwoPhaseSeries =
      runStrategy(N, TwoPhase.fullSequence(), TotalTicks, Window);
  std::vector<double> OrderSeries =
      runStrategy(N, Synth.Commands, TotalTicks, Window);

  row({"window", "naive%", "two-phase%", "ordering%"}, {10, 10, 12, 12});
  double NaiveMin = 100.0, TwoPhaseMin = 100.0, OrderMin = 100.0;
  for (size_t W = 0; W != NaiveSeries.size(); ++W) {
    row({format("%zu", W), format("%.0f", NaiveSeries[W]),
         format("%.0f", TwoPhaseSeries[W]), format("%.0f", OrderSeries[W])},
        {10, 10, 12, 12});
    NaiveMin = std::min(NaiveMin, NaiveSeries[W]);
    TwoPhaseMin = std::min(TwoPhaseMin, TwoPhaseSeries[W]);
    OrderMin = std::min(OrderMin, OrderSeries[W]);
  }
  std::printf("\nminimum window delivery: naive %.0f%%, two-phase %.0f%%, "
              "ordering %.0f%%\n",
              NaiveMin, TwoPhaseMin, OrderMin);
  std::printf("paper shape: naive drops to 0%% during the transition; "
              "two-phase and ordering stay at 100%%\n");
  return 0;
}
