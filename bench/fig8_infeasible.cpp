//===- bench/fig8_infeasible.cpp - Fig. 8(h) -------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8(h): double-diamond instances (a second flow routed
/// in the opposite direction with crossed branch assignments) admit no
/// switch-granularity order; the tool must report "impossible". Timings
/// show how quickly the search proves infeasibility — counterexample
/// pruning plus SAT-based early termination do the heavy lifting.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "mc/LabelingChecker.h"
#include "support/Timer.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

using namespace netupd;
using namespace netupd::benchutil;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Figure 8(h): infeasible switch-granularity updates "
         "(double diamonds)");

  const char *KindName[] = {"reachability", "waypointing", "servicechain"};
  row({"switches", "property", "updating", "verdict", "early-term",
       "time(s)"},
      {10, 14, 10, 12, 11, 10});

  std::vector<unsigned> Sizes;
  for (unsigned N : {50u, 100u, 200u, 400u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size >= 16)
      Sizes.push_back(Size);
  }

  for (unsigned Size : Sizes) {
    for (PropertyKind Kind :
         {PropertyKind::ServiceChain, PropertyKind::Waypoint,
          PropertyKind::Reachability}) {
      Rng R(4000 + Size);
      Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
      DiamondOptions Opts;
      Opts.LongPaths = true;
      std::optional<Scenario> S =
          makeDoubleDiamondScenario(Topo, R, Opts, Kind);
      if (!S)
        continue;

      FormulaFactory FF;
      LabelingChecker Checker;
      Timer Clock;
      SynthResult Res = synthesizeUpdate(*S, FF, Checker);
      double Secs = Clock.seconds();
      const char *Verdict =
          Res.Status == SynthStatus::Impossible ? "impossible" : "UNEXPECTED";
      row({format("%u", Size), KindName[static_cast<int>(Kind)],
           format("%u", numUpdatingSwitches(*S)), Verdict,
           Res.Stats.EarlyTerminated ? "yes" : "no",
           format("%.3f", Secs)},
          {10, 14, 10, 12, 11, 10});
    }
  }
  std::printf("\npaper shape: every instance reported unsolvable at switch "
              "granularity (maxima 153s / 33s / 0.7s per property)\n");
  return 0;
}
