//===- bench/waits.cpp - §6 wait-removal measurements ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the §6 "Waits" measurements: the time spent in the
/// wait-removal pass and the residual wait counts, for (g)-style feasible
/// diamonds and (i)-style rule-granularity double diamonds. The paper
/// reports ~2 residual waits for (g), ~2.6 for (i), with ~99.9% of waits
/// removed on the largest instances.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "mc/LabelingChecker.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

using namespace netupd;
using namespace netupd::benchutil;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("§6 Waits: wait-removal runtime and residual waits");

  row({"instance", "updates", "waits-before", "waits-after", "removed%",
       "waitrm(s)"},
      {26, 9, 14, 13, 10, 10});

  auto Report = [](const std::string &Name, const SynthResult &Res) {
    unsigned Before = Res.Stats.WaitsBeforeRemoval;
    unsigned After = Res.Stats.WaitsAfterRemoval;
    double RemovedPct =
        Before == 0 ? 0.0
                    : 100.0 * static_cast<double>(Before - After) /
                          static_cast<double>(Before);
    unsigned Updates = 0;
    for (const Command &C : Res.Commands)
      Updates += C.K == Command::Kind::Update;
    row({Name, format("%u", Updates), format("%u", Before),
         format("%u", After), format("%.1f%%", RemovedPct),
         format("%.4f", Res.Stats.WaitRemovalSeconds)},
        {26, 9, 14, 13, 10, 10});
  };

  // (g)-style feasible diamonds, switch granularity.
  for (unsigned N : {100u, 300u, 800u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size < 20)
      continue;
    Rng R(6000 + Size);
    Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
    DiamondOptions Opts;
    Opts.LongPaths = true;
    std::optional<Scenario> S =
        makeDiamondScenario(Topo, R, PropertyKind::Reachability, Opts);
    if (!S)
      continue;
    FormulaFactory FF;
    LabelingChecker Checker;
    SynthResult Res = synthesizeUpdate(*S, FF, Checker);
    if (Res.ok())
      Report(format("diamond(n=%u)", Size), Res);
  }

  // (i)-style rule-granularity double diamonds.
  for (unsigned N : {50u, 150u, 400u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size < 16)
      continue;
    Rng R(7000 + Size);
    Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
    DiamondOptions Opts;
    Opts.LongPaths = true;
    std::optional<Scenario> S = makeDoubleDiamondScenario(Topo, R, Opts);
    if (!S)
      continue;
    FormulaFactory FF;
    LabelingChecker Checker;
    SynthOptions SOpts;
    SOpts.RuleGranularity = true;
    SynthResult Res = synthesizeUpdate(*S, FF, Checker, SOpts);
    if (Res.ok())
      Report(format("double-diamond(n=%u)", Size), Res);
  }

  std::printf("\npaper shape: a careful sequence has one wait per update; "
              "removal keeps ~2 (feasible) / ~2.6 (rule-granular) waits, "
              "i.e. ~99.9%% removed on large instances\n");
  return 0;
}
