//===- bench/fig8_rulegran.cpp - Fig. 8(i) ---------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8(i): the switch-impossible double diamonds of
/// Fig. 8(h) become solvable at rule granularity, where a switch can move
/// one traffic class at a time. Runtime is reported against the number of
/// rules, the x-axis the paper uses.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "mc/LabelingChecker.h"
#include "support/Timer.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

using namespace netupd;
using namespace netupd::benchutil;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Figure 8(i): rule-granularity synthesis on switch-impossible "
         "instances");

  const char *KindName[] = {"reachability", "waypointing", "servicechain"};
  row({"switches", "property", "rules", "verdict", "waits", "time(s)"},
      {10, 14, 8, 10, 7, 10});

  std::vector<unsigned> Sizes;
  for (unsigned N : {50u, 100u, 200u, 400u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size >= 16)
      Sizes.push_back(Size);
  }

  for (unsigned Size : Sizes) {
    for (PropertyKind Kind :
         {PropertyKind::ServiceChain, PropertyKind::Waypoint,
          PropertyKind::Reachability}) {
      Rng R(4000 + Size); // Same instances as fig8_infeasible.
      Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
      DiamondOptions Opts;
      Opts.LongPaths = true;
      std::optional<Scenario> S =
          makeDoubleDiamondScenario(Topo, R, Opts, Kind);
      if (!S)
        continue;
      size_t Rules = S->Initial.totalRules() + S->Final.totalRules();

      FormulaFactory FF;
      LabelingChecker Checker;
      SynthOptions SOpts;
      SOpts.RuleGranularity = true;
      Timer Clock;
      SynthResult Res = synthesizeUpdate(*S, FF, Checker, SOpts);
      double Secs = Clock.seconds();
      row({format("%u", Size), KindName[static_cast<int>(Kind)],
           format("%zu", Rules),
           Res.ok() ? "solved" : "UNEXPECTED",
           format("%u/%u", Res.Stats.WaitsAfterRemoval,
                  Res.Stats.WaitsBeforeRemoval),
           format("%.3f", Secs)},
          {10, 14, 8, 10, 7, 10});
    }
  }
  std::printf("\npaper shape: all instances solved at rule granularity "
              "(up to 1000 switches; maxima 776s / 513s / 82s), with ~2.6 "
              "waits left after removal\n");
  return 0;
}
