//===- bench/BenchUtil.h - Shared benchmark harness helpers ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure-reproduction binaries: a scale knob
/// (NETUPD_BENCH_SCALE environment variable or --scale=N argument, default
/// 1) that grows/shrinks problem sizes, simple aligned table printing, and
/// geometric-mean aggregation for the speedup summaries the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_BENCH_BENCHUTIL_H
#define NETUPD_BENCH_BENCHUTIL_H

#include "support/Strings.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace netupd {
namespace benchutil {

/// Parses the scale factor from argv/environment; 1 = default sizes.
inline double parseScale(int Argc, char **Argv) {
  double Scale = 1.0;
  if (const char *Env = std::getenv("NETUPD_BENCH_SCALE"))
    Scale = std::atof(Env);
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::atof(Arg.c_str() + 8);
  }
  return Scale > 0 ? Scale : 1.0;
}

/// Prints a header banner naming the reproduced figure.
inline void banner(const std::string &Title) {
  std::printf("==== %s ====\n", Title.c_str());
}

/// Prints one row of space-aligned cells.
inline void row(const std::vector<std::string> &Cells,
                const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I != Cells.size(); ++I) {
    int W = I < Widths.size() ? Widths[I] : 12;
    Line += format("%-*s", W, Cells[I].c_str());
  }
  std::printf("%s\n", Line.c_str());
}

/// Geometric mean of positive values; 0 for an empty list.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

} // namespace benchutil
} // namespace netupd

#endif // NETUPD_BENCH_BENCHUTIL_H
