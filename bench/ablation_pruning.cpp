//===- bench/ablation_pruning.cpp - §4.2 optimization ablation -*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the §4.2 optimizations (not a paper figure; DESIGN.md
/// calls these design choices out):
///
///  - counterexample pruning (W) on/off, measured in checker calls on
///    feasible diamonds;
///  - SAT-based early termination on/off, measured on infeasible double
///    diamonds where exhaustive search is the alternative.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "mc/LabelingChecker.h"
#include "support/Timer.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

using namespace netupd;
using namespace netupd::benchutil;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Ablation: counterexample pruning and early termination (§4.2)");

  std::printf("\n-- counterexample pruning, rule-granular double "
              "diamonds --\n");
  row({"switches", "ops", "checks(full)", "checks(no-prune)",
       "time(full)", "time(no-prune)"},
      {10, 6, 13, 17, 11, 15});
  for (unsigned N : {30u, 60u, 120u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size < 20)
      continue;
    Rng R(8000 + Size);
    Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
    DiamondOptions Opts;
    Opts.LongPaths = true;
    std::optional<Scenario> S = makeDoubleDiamondScenario(Topo, R, Opts);
    if (!S)
      continue;

    FormulaFactory FF;
    SynthOptions Full;
    Full.RuleGranularity = true;
    SynthOptions NoPrune = Full;
    NoPrune.CexPruning = false;
    NoPrune.EarlyTermination = false;

    LabelingChecker C1, C2;
    Timer T1;
    SynthResult RFull = synthesizeUpdate(*S, FF, C1, Full);
    double FullSecs = T1.seconds();
    Timer T2;
    SynthResult RNo = synthesizeUpdate(*S, FF, C2, NoPrune);
    double NoSecs = T2.seconds();

    row({format("%u", Size), format("%u", 2 * numUpdatingSwitches(*S)),
         format("%llu", (unsigned long long)RFull.Stats.CheckCalls),
         format("%llu", (unsigned long long)RNo.Stats.CheckCalls),
         format("%.3fs", FullSecs), format("%.3fs", NoSecs)},
        {10, 6, 13, 17, 11, 15});
  }

  std::printf("\n-- early termination on infeasible double diamonds --\n");
  row({"switches", "updating", "verdict", "time(et)", "time(no-et)",
       "checks(et)", "checks(no-et)"},
      {10, 10, 12, 10, 12, 11, 13});
  for (unsigned N : {24u, 40u, 60u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size < 16)
      continue;
    Rng R(9000 + Size);
    Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
    std::optional<Scenario> S = makeDoubleDiamondScenario(Topo, R);
    if (!S)
      continue;

    FormulaFactory FF;
    SynthOptions Et;
    SynthOptions NoEt;
    NoEt.EarlyTermination = false;

    LabelingChecker C1, C2;
    Timer T1;
    SynthResult REt = synthesizeUpdate(*S, FF, C1, Et);
    double EtSecs = T1.seconds();
    Timer T2;
    SynthResult RNo = synthesizeUpdate(*S, FF, C2, NoEt);
    double NoSecs = T2.seconds();

    row({format("%u", Size), format("%u", numUpdatingSwitches(*S)),
         REt.Status == SynthStatus::Impossible ? "impossible" : "??",
         format("%.3fs", EtSecs), format("%.3fs", NoSecs),
         format("%llu", (unsigned long long)REt.Stats.CheckCalls),
         format("%llu", (unsigned long long)RNo.Stats.CheckCalls)},
        {10, 10, 12, 10, 12, 11, 13});
  }
  std::printf("\nexpected: pruning cuts checker calls when the search "
              "backtracks (rule-granular double diamonds). On these "
              "infeasible instances every depth-1 candidate already "
              "fails, so exhaustion is immediate and early termination "
              "adds insurance rather than speed; it pays off on inputs "
              "whose failures only appear deeper in the search.\n");
  return 0;
}
