//===- bench/fig7_netplumber.cpp - Fig. 7(d-f) -----------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 7(d-f): end-to-end synthesis at rule granularity
/// with the Incremental checker versus the NetPlumber substitute
/// (header-space plumbing graph), across the three topology families,
/// reported against the number of rules. NetPlumber produces no
/// counterexamples, so the synthesizer cannot prune when driving it — the
/// disadvantage §6 notes for this end-to-end comparison.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "hsa/HsaChecker.h"
#include "mc/LabelingChecker.h"
#include "support/Timer.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

#include <algorithm>

using namespace netupd;
using namespace netupd::benchutil;

namespace {

void runFamily(const std::string &Family,
               const std::vector<std::pair<std::string, Topology>> &Topos,
               unsigned NumFlows, Rng &R,
               std::vector<double> &Speedups) {
  std::printf("\n-- %s --\n", Family.c_str());
  row({"topology", "switches", "rules", "incr(s)", "netplumber(s)",
       "speedup"},
      {18, 10, 8, 10, 15, 9});

  for (const auto &[Name, Topo] : Topos) {
    // Rule-heavy workloads (the paper's x-axis reaches 10k rules): many
    // flows over long-path diamonds; fall back to fewer flows on graphs
    // too small to host them all disjointly.
    std::optional<Scenario> S;
    for (unsigned Flows = NumFlows; Flows >= 1 && !S; Flows /= 2) {
      Rng Fork = R.fork();
      DiamondOptions Opts;
      Opts.NumFlows = Flows;
      Opts.LongPaths = true;
      Opts.DisjointFlows = false; // Pile rules onto shared switches.
      S = makeDiamondScenario(Topo, Fork, PropertyKind::Reachability,
                              Opts);
    }
    if (!S)
      continue;
    size_t Rules = S->Initial.totalRules() + S->Final.totalRules();

    SynthOptions SOpts;
    SOpts.RuleGranularity = true;

    FormulaFactory FF1, FF2;
    LabelingChecker Incr;
    Timer T1;
    SynthResult RIncr = synthesizeUpdate(*S, FF1, Incr, SOpts);
    double IncrSecs = T1.seconds();

    HsaChecker Hsa(HsaChecker::probesFromScenario(*S));
    Timer T2;
    SynthResult RHsa = synthesizeUpdate(*S, FF2, Hsa, SOpts);
    double HsaSecs = T2.seconds();

    bool Ok = RIncr.ok() && RHsa.ok();
    double Speedup = Ok && IncrSecs > 0 ? HsaSecs / IncrSecs : 0.0;
    if (Speedup > 0)
      Speedups.push_back(Speedup);
    row({Name, format("%u", S->Topo.numSwitches()), format("%zu", Rules),
         format("%.4f", IncrSecs), format("%.4f", HsaSecs),
         Ok ? format("%.1fx", Speedup) : "status!"},
        {18, 10, 8, 10, 15, 9});
  }
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Figure 7(d-f): Incremental vs NetPlumber-substitute "
         "(rule granularity)");

  Rng R(0xf17'dead);
  std::vector<double> Speedups;

  // The largest zoo networks make the NetPlumber substitute run for
  // minutes (the trend the paper's timeout hides); the default caps the
  // suite at ~350 switches, --scale=2 restores the full spread.
  unsigned MaxSwitches = static_cast<unsigned>(350 * Scale);
  std::vector<std::pair<std::string, Topology>> Zoo;
  {
    std::vector<std::pair<unsigned, unsigned>> SizeIdx;
    for (unsigned I = 0; I != NumZooLike; ++I)
      if (zooLikeSize(I) <= MaxSwitches)
        SizeIdx.emplace_back(zooLikeSize(I), I);
    std::sort(SizeIdx.begin(), SizeIdx.end());
    unsigned Count = std::max(4u, static_cast<unsigned>(8 * Scale));
    for (unsigned K = 0; K != Count; ++K) {
      unsigned Pos = K * (static_cast<unsigned>(SizeIdx.size()) - 1) /
                     std::max(1u, Count - 1);
      auto [Size, Idx] = SizeIdx[Pos];
      Zoo.emplace_back(format("zoo%u(n=%u)", Idx, Size),
                       buildZooLike(Idx));
    }
  }
  runFamily("Topology Zoo (zoo-like suite)", Zoo, /*NumFlows=*/8, R,
            Speedups);

  std::vector<std::pair<std::string, Topology>> Fat;
  for (unsigned K : {4u, 6u, 8u})
    Fat.emplace_back(format("fattree(k=%u)", K), buildFatTree(K));
  runFamily("FatTree", Fat, /*NumFlows=*/8, R, Speedups);

  std::vector<std::pair<std::string, Topology>> Sw;
  for (unsigned N : {40u, 80u, 160u, 320u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    Rng TopoRng(2000 + Size);
    Sw.emplace_back(format("smallworld(n=%u)", Size),
                    buildSmallWorld(Size, 4, 0.3, TopoRng));
  }
  runFamily("Small-World", Sw, /*NumFlows=*/8, R, Speedups);

  std::printf("\ngeomean speedup of Incremental over the "
              "NetPlumber-substitute: %.1fx\n",
              geomean(Speedups));
  std::printf("paper shape: Incremental faster on every input (means "
              "6.4x / 4.9x / 17.2x per family)\n");
  return 0;
}
