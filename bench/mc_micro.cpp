//===- bench/mc_micro.cpp - §6 checker micro-comparison --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the §6 micro-comparison: total model-checking time of the
/// Incremental checker versus the Batch checker and the
/// NetPlumber-substitute on the *identical* stream of model-checking
/// questions a synthesis run poses (apply update / recheck / rollback),
/// factoring out the end-to-end counterexample advantage.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "hsa/HsaChecker.h"
#include "mc/LabelingChecker.h"
#include "support/Timer.h"
#include "synth/OrderUpdate.h"
#include "topo/Generators.h"
#include "topo/Scenario.h"

using namespace netupd;
using namespace netupd::benchutil;

namespace {

/// One recorded query: apply the final table of Sw (Apply=true) and
/// recheck, or roll the last applied update back (Apply=false).
struct Query {
  bool Apply = true;
  SwitchId Sw = 0;
};

/// Builds a query stream for a scenario: walk a correct update order, and
/// before each good step probe one wrong step (apply + rollback), the
/// churn a DFS generates.
std::vector<Query> makeStream(const Scenario &S) {
  std::vector<SwitchId> Diff = diffSwitches(S.Initial, S.Final);
  std::vector<Query> Stream;
  for (size_t I = 0; I != Diff.size(); ++I) {
    // Probe a later switch first (likely wrong), then take the real step.
    if (I + 1 < Diff.size()) {
      Stream.push_back(Query{true, Diff[Diff.size() - 1 - I]});
      Stream.push_back(Query{false, Diff[Diff.size() - 1 - I]});
    }
    Stream.push_back(Query{true, Diff[I]});
  }
  return Stream;
}

/// Replays \p Stream against \p Checker; returns total seconds.
double replay(const Scenario &S, Formula Phi, CheckerBackend &Checker,
              const std::vector<Query> &Stream) {
  KripkeStructure K(S.Topo, S.Initial, S.classes());
  Timer Clock;
  Checker.bind(K, Phi);

  std::vector<KripkeStructure::UndoRecord> Undos;
  for (const Query &Q : Stream) {
    if (Q.Apply) {
      std::vector<StateId> Changed;
      Undos.push_back(
          K.applySwitchUpdate(Q.Sw, S.Final.table(Q.Sw), Changed));
      UpdateInfo Info;
      Info.Sw = Q.Sw;
      Info.OldTable = &Undos.back().OldTable;
      Info.ChangedStates = &Changed;
      Checker.recheckAfterUpdate(Info);
    } else {
      Checker.notifyRollback();
      K.undo(Undos.back());
      Undos.pop_back();
    }
  }
  return Clock.seconds();
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("§6 micro-comparison: identical query streams per checker");

  row({"switches", "queries", "incr(s)", "batch(s)", "netplumber(s)",
       "x batch", "x netplumber"},
      {10, 9, 10, 10, 15, 9, 13});

  std::vector<double> BatchX, HsaX;
  for (unsigned N : {50u, 100u, 200u, 400u}) {
    unsigned Size = static_cast<unsigned>(N * Scale);
    if (Size < 16)
      continue;
    Rng R(5000 + Size);
    Topology Topo = buildSmallWorld(Size, 4, 0.3, R);
    // The paper replays the query stream of its rule-granularity
    // Small-World workload; that regime has many flows sharing switches.
    DiamondOptions Opts;
    Opts.LongPaths = true;
    Opts.NumFlows = 6;
    Opts.DisjointFlows = false;
    std::optional<Scenario> S =
        makeDiamondScenario(Topo, R, PropertyKind::Reachability, Opts);
    if (!S)
      continue;

    FormulaFactory FF;
    Formula Phi = S->buildProperty(FF);
    std::vector<Query> Stream = makeStream(*S);

    LabelingChecker Incr(LabelingChecker::Mode::Incremental);
    LabelingChecker Batch(LabelingChecker::Mode::Batch);
    HsaChecker Hsa(HsaChecker::probesFromScenario(*S));

    double IncrSecs = replay(*S, Phi, Incr, Stream);
    double BatchSecs = replay(*S, Phi, Batch, Stream);
    double HsaSecs = replay(*S, Phi, Hsa, Stream);

    double XB = IncrSecs > 0 ? BatchSecs / IncrSecs : 0;
    double XH = IncrSecs > 0 ? HsaSecs / IncrSecs : 0;
    if (XB > 0)
      BatchX.push_back(XB);
    if (XH > 0)
      HsaX.push_back(XH);
    row({format("%u", Size), format("%zu", Stream.size()),
         format("%.4f", IncrSecs), format("%.4f", BatchSecs),
         format("%.4f", HsaSecs), format("%.1fx", XB),
         format("%.1fx", XH)},
        {10, 9, 10, 10, 15, 9, 13});
  }
  std::printf("\ngeomean: Batch %.1fx, NetPlumber-substitute %.1fx slower "
              "than Incremental\n",
              geomean(BatchX), geomean(HsaX));
  std::printf("paper shape: Incremental faster on all instances; the §6 "
              "same-queries comparison reports a 2.7x mean over "
              "NetPlumber\n");
  return 0;
}
