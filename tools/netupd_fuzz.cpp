//===- tools/netupd_fuzz.cpp - Differential fuzzer CLI ---------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Drives fuzz::runFuzz from the command line:
//
//   netupd_fuzz --seed 1 --iters 200 --out fuzz-out
//
// Exit status is 0 when every iteration agreed, 1 when a disagreement was
// found (minimized repros land in --out), 2 on usage errors.
//
// --self-test validates the harness end to end: it registers a "liar"
// backend whose recheck always claims the property holds, fuzzes the
// registry cross-checked against it, and requires that the lie is caught,
// that the minimizer shrinks the offending instance to at most 10
// switches, and that the written repro file parses back to the identical
// scenario. A fuzzer that cannot catch a deliberately broken checker is
// not testing anything; this mode is wired into CI.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "fuzz/Minimize.h"
#include "mc/BackendFactory.h"
#include "mc/LabelingChecker.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>

using namespace netupd;

namespace {

/// A deliberately unsound checker: the initial bind is honest (so
/// InitialViolation verdicts stay truthful), but every recheck claims the
/// property holds. The synthesizer then accepts the first candidate order
/// it tries — wrong sequences, and Success on infeasible instances.
class LiarChecker : public CheckerBackend {
public:
  void notifyRollback() override {}
  const char *name() const override { return "liar"; }

protected:
  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override {
    ++Queries;
    return Honest.bind(K, Phi);
  }
  CheckResult recheckImpl(const UpdateInfo &) override {
    ++Queries;
    CheckResult R;
    R.Holds = true;
    return R;
  }

private:
  LabelingChecker Honest{LabelingChecker::Mode::Batch};
};

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " [options]\n"
      << "  --seed N         master seed (default 1)\n"
      << "  --iters N        iterations (default 100)\n"
      << "  --out DIR        directory for minimized repro files\n"
      << "  --churn-every N  engine churn check every N iters (default 8,\n"
      << "                   0 disables)\n"
      << "  --backends A,B   comma-separated backends (default: registry)\n"
      << "  --verbose        log every iteration\n"
      << "  --self-test      verify the harness catches a lying backend\n";
  return 2;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::stringstream SS(S);
  std::string Item;
  while (std::getline(SS, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

/// The injected-bug end-to-end check; see the file comment.
int selfTest(uint64_t Seed, std::string OutDir) {
  BackendFactory::instance().registerBackend(
      "liar", [](const Scenario &) -> std::unique_ptr<CheckerBackend> {
        return std::make_unique<LiarChecker>();
      });

  if (OutDir.empty())
    OutDir = (std::filesystem::temp_directory_path() / "netupd-selftest")
                 .string();

  fuzz::FuzzOptions O;
  O.Seed = Seed;
  O.Iters = 40;
  O.ChurnEvery = 0; // Churn streams don't exercise the liar.
  O.Backends = {"incremental", "liar"};
  O.OutDir = OutDir;
  fuzz::FuzzReport R = fuzz::runFuzz(O, std::cout);

  if (R.Repros.empty()) {
    std::cerr << "self-test FAILED: the lying backend was never caught\n";
    return 1;
  }
  unsigned BestSwitches = ~0u;
  for (const fuzz::Repro &Rp : R.Repros)
    BestSwitches = std::min(
        BestSwitches, static_cast<unsigned>(Rp.S.Topo.numSwitches()));
  if (BestSwitches > 10) {
    std::cerr << "self-test FAILED: smallest minimized repro has "
              << BestSwitches << " switches (want <= 10)\n";
    return 1;
  }
  if (R.ReproPaths.empty()) {
    std::cerr << "self-test FAILED: no repro file was written\n";
    return 1;
  }
  std::optional<fuzz::Repro> Back = fuzz::loadReproFile(R.ReproPaths[0]);
  if (!Back) {
    std::cerr << "self-test FAILED: written repro did not parse back\n";
    return 1;
  }
  if (!(digestOf(Back->S) == digestOf(R.Repros[0].S))) {
    std::cerr << "self-test FAILED: repro round-trip changed the scenario\n";
    return 1;
  }
  std::cout << "self-test ok: " << R.Repros.size()
            << " disagreement(s) caught, smallest repro " << BestSwitches
            << " switches, round-trip exact\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  fuzz::FuzzOptions O;
  bool SelfTest = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--seed") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      O.Seed = std::strtoull(V, nullptr, 10);
    } else if (A == "--iters") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      O.Iters = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (A == "--out") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      O.OutDir = V;
    } else if (A == "--churn-every") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      O.ChurnEvery = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (A == "--backends") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      O.Backends = splitList(V);
    } else if (A == "--verbose") {
      O.Verbose = true;
    } else if (A == "--self-test") {
      SelfTest = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (SelfTest)
    return selfTest(O.Seed, O.OutDir);

  fuzz::FuzzReport R = fuzz::runFuzz(O, std::cout);
  return R.clean() ? 0 : 1;
}
