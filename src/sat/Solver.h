//===- sat/Solver.h - Incremental CDCL SAT solver --------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small conflict-driven clause-learning SAT solver in the MiniSat
/// style: two-literal watches, first-UIP learning, VSIDS-like activities,
/// and solving under assumptions. The paper's early-search-termination
/// optimization (§4.2 B) feeds ordering constraints mined from
/// counterexamples into "an (incremental) SAT solver" and aborts the DFS
/// when they become contradictory; this is that solver.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SAT_SOLVER_H
#define NETUPD_SAT_SOLVER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace netupd {
namespace sat {

/// A 0-based propositional variable.
using Var = int;

/// A literal: variable with sign, encoded as 2*var+sign for dense indexing.
struct Lit {
  int Code = -2;

  Lit() = default;
  Lit(Var V, bool Negated) : Code(V * 2 + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool sign() const { return Code & 1; } // True for a negated literal.
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  friend bool operator==(Lit A, Lit B) { return A.Code == B.Code; }
  friend bool operator!=(Lit A, Lit B) { return A.Code != B.Code; }
};

/// Positive literal of \p V.
inline Lit mkLit(Var V) { return Lit(V, false); }

/// The Luby restart sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,... (0-based
/// index); the universal restart schedule of Luby/Sinclair/Zuckerman.
/// Shared between the solver's own restart scheduling below and the
/// synthesis search's DFS restarts (synth/OrderUpdate.cpp), so both
/// layers restart on the same well-studied cadence.
uint64_t luby(uint64_t X);

/// Ternary assignment value.
enum class LBool : uint8_t { True, False, Undef };

/// The solver. Usage: newVar() for each variable, addClause() for each
/// clause, then solve() — repeatedly, with more clauses and/or different
/// assumptions between calls (incremental use keeps learned clauses).
class Solver {
public:
  /// Allocates a fresh variable.
  Var newVar();

  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause (a disjunction of literals). Returns false if the
  /// clause makes the formula trivially unsatisfiable (empty after
  /// simplification at level 0).
  bool addClause(std::vector<Lit> Lits);

  /// Solves under \p Assumptions. Returns true iff satisfiable; a model is
  /// then available via modelValue().
  bool solve(const std::vector<Lit> &Assumptions = {});

  /// The value of \p V in the last model; meaningful only after a
  /// satisfiable solve().
  bool modelValue(Var V) const { return Model[static_cast<size_t>(V)]; }

  /// Statistics: conflicts seen over the solver's lifetime.
  uint64_t numConflicts() const { return Conflicts; }

  /// Statistics: Luby restarts performed over the solver's lifetime.
  /// Each solve() call restarts (backtracks to the root, keeping every
  /// learned clause) after luby(k) * 32 conflicts within the call;
  /// learned clauses are never deleted, so every restart resumes
  /// strictly stronger and completeness is unaffected.
  uint64_t numRestarts() const { return Restarts; }

private:
  using ClauseRef = int;
  static constexpr ClauseRef NoReason = -1;

  struct Watcher {
    ClauseRef Cl;
    Lit Blocker;
  };

  LBool value(Lit L) const {
    LBool V = Assigns[static_cast<size_t>(L.var())];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool IsTrue = (V == LBool::True) != L.sign();
    return IsTrue ? LBool::True : LBool::False;
  }

  void newDecisionLevel() { TrailLim.push_back(static_cast<int>(Trail.size())); }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &Learnt, int &BtLevel);
  void cancelUntil(int Level);
  Var pickBranchVar();
  void bumpVar(Var V);
  void attachClause(ClauseRef C);

  std::vector<std::vector<Lit>> Clauses;
  std::vector<std::vector<Watcher>> Watches; // Indexed by literal code.
  std::vector<LBool> Assigns;
  std::vector<int> Level;
  std::vector<ClauseRef> Reason;
  std::vector<double> Activity;
  std::vector<uint8_t> Polarity; // Phase saving.
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t PropHead = 0;
  /// First possibly-unassigned variable in branching order; makes a
  /// conflict-light solve O(V) instead of O(V^2) (the early-termination
  /// workload creates hundreds of thousands of ordering variables and is
  /// satisfiable almost every call).
  int BranchCursor = 0;
  double VarInc = 1.0;
  uint64_t Conflicts = 0;
  uint64_t Restarts = 0;
  bool OkAtLevel0 = true;
  std::vector<bool> Model;
  std::vector<uint8_t> Seen; // Scratch for analyze().
};

} // namespace sat
} // namespace netupd

#endif // NETUPD_SAT_SOLVER_H
