//===- sat/Solver.cpp - Incremental CDCL SAT solver ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include <algorithm>
#include <cassert>

using namespace netupd;
using namespace netupd::sat;

uint64_t sat::luby(uint64_t X) {
  // Locate the finite subsequence containing 0-based index X, then the
  // position within it (the integer form of MiniSat's luby()).
  uint64_t Size = 1, Seq = 0;
  while (Size < X + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != X) {
    Size = (Size - 1) / 2;
    --Seq;
    X = X % Size;
  }
  return uint64_t(1) << Seq;
}

Var Solver::newVar() {
  Var V = numVars();
  Assigns.push_back(LBool::Undef);
  Level.push_back(0);
  Reason.push_back(NoReason);
  Activity.push_back(0.0);
  Polarity.push_back(1); // Default to negative phase, like MiniSat.
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  return V;
}

bool Solver::addClause(std::vector<Lit> Lits) {
  assert(decisionLevel() == 0 && "clauses must be added at the root level");
  if (!OkAtLevel0)
    return false;

  // Simplify: drop duplicate/false literals, detect tautologies and
  // already-satisfied clauses.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.Code < B.Code; });
  std::vector<Lit> Out;
  Lit Prev;
  for (Lit L : Lits) {
    if (value(L) == LBool::True || (Out.size() && L == ~Prev))
      return true; // Satisfied or tautological.
    if (value(L) == LBool::False || (Out.size() && L == Prev))
      continue;
    Out.push_back(L);
    Prev = L;
  }

  if (Out.empty()) {
    OkAtLevel0 = false;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    OkAtLevel0 = (propagate() == NoReason);
    return OkAtLevel0;
  }

  Clauses.push_back(std::move(Out));
  attachClause(static_cast<ClauseRef>(Clauses.size()) - 1);
  return true;
}

void Solver::attachClause(ClauseRef C) {
  const std::vector<Lit> &Cl = Clauses[static_cast<size_t>(C)];
  assert(Cl.size() >= 2 && "watched clauses need two literals");
  Watches[static_cast<size_t>((~Cl[0]).Code)].push_back({C, Cl[1]});
  Watches[static_cast<size_t>((~Cl[1]).Code)].push_back({C, Cl[0]});
}

void Solver::enqueue(Lit L, ClauseRef Why) {
  assert(value(L) == LBool::Undef && "enqueue of an assigned literal");
  Assigns[static_cast<size_t>(L.var())] =
      L.sign() ? LBool::False : LBool::True;
  Level[static_cast<size_t>(L.var())] = decisionLevel();
  Reason[static_cast<size_t>(L.var())] = Why;
  Trail.push_back(L);
}

Solver::ClauseRef Solver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++];
    std::vector<Watcher> &Ws = Watches[static_cast<size_t>(P.Code)];
    size_t Keep = 0;
    for (size_t I = 0; I != Ws.size(); ++I) {
      Watcher W = Ws[I];
      // Blocker literal already true: clause satisfied, keep watch.
      if (value(W.Blocker) == LBool::True) {
        Ws[Keep++] = W;
        continue;
      }
      std::vector<Lit> &Cl = Clauses[static_cast<size_t>(W.Cl)];
      // Normalize so the false literal (~P) is at slot 1.
      Lit NotP = ~P;
      if (Cl[0] == NotP)
        std::swap(Cl[0], Cl[1]);
      assert(Cl[1] == NotP && "watch list out of sync");
      if (value(Cl[0]) == LBool::True) {
        Ws[Keep++] = {W.Cl, Cl[0]};
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t J = 2; J != Cl.size(); ++J) {
        if (value(Cl[J]) == LBool::False)
          continue;
        std::swap(Cl[1], Cl[J]);
        Watches[static_cast<size_t>((~Cl[1]).Code)].push_back({W.Cl, Cl[0]});
        Moved = true;
        break;
      }
      if (Moved)
        continue;
      // Unit or conflicting.
      Ws[Keep++] = W;
      if (value(Cl[0]) == LBool::False) {
        // Conflict: restore untouched watchers and bail out.
        for (size_t J = I + 1; J != Ws.size(); ++J)
          Ws[Keep++] = Ws[J];
        Ws.resize(Keep);
        PropHead = Trail.size();
        return W.Cl;
      }
      enqueue(Cl[0], W.Cl);
    }
    Ws.resize(Keep);
  }
  return NoReason;
}

void Solver::bumpVar(Var V) {
  Activity[static_cast<size_t>(V)] += VarInc;
  if (Activity[static_cast<size_t>(V)] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
}

void Solver::analyze(ClauseRef Confl, std::vector<Lit> &Learnt,
                     int &BtLevel) {
  // First-UIP conflict analysis (MiniSat's analyze).
  Learnt.clear();
  Learnt.push_back(Lit()); // Slot for the asserting literal.
  int Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();

  for (;;) {
    assert(Confl != NoReason && "no reason while resolving conflict");
    const std::vector<Lit> &Cl = Clauses[static_cast<size_t>(Confl)];
    for (size_t I = HaveP ? 1 : 0; I != Cl.size(); ++I) {
      Lit Q = Cl[I];
      if (Q == P && HaveP)
        continue;
      Var V = Q.var();
      if (Seen[static_cast<size_t>(V)] ||
          Level[static_cast<size_t>(V)] == 0)
        continue;
      Seen[static_cast<size_t>(V)] = 1;
      bumpVar(V);
      if (Level[static_cast<size_t>(V)] == decisionLevel())
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Select next literal to resolve on: last seen literal on the trail.
    do {
      assert(TrailIdx > 0 && "ran off the trail during analyze");
      P = Trail[--TrailIdx];
    } while (!Seen[static_cast<size_t>(P.var())]);
    HaveP = true;
    Seen[static_cast<size_t>(P.var())] = 0;
    --Counter;
    if (Counter == 0)
      break;
    Confl = Reason[static_cast<size_t>(P.var())];
  }
  Learnt[0] = ~P;

  // Find the backtrack level: the highest level among the other literals.
  BtLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I != Learnt.size(); ++I) {
    int L = Level[static_cast<size_t>(Learnt[I].var())];
    if (L > BtLevel) {
      BtLevel = L;
      MaxIdx = I;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);

  for (Lit L : Learnt)
    Seen[static_cast<size_t>(L.var())] = 0;
}

void Solver::cancelUntil(int TargetLevel) {
  if (decisionLevel() <= TargetLevel)
    return;
  int Bound = TrailLim[static_cast<size_t>(TargetLevel)];
  for (int I = static_cast<int>(Trail.size()) - 1; I >= Bound; --I) {
    Var V = Trail[static_cast<size_t>(I)].var();
    Polarity[static_cast<size_t>(V)] =
        Trail[static_cast<size_t>(I)].sign() ? 1 : 0;
    Assigns[static_cast<size_t>(V)] = LBool::Undef;
    Reason[static_cast<size_t>(V)] = NoReason;
  }
  Trail.resize(static_cast<size_t>(Bound));
  TrailLim.resize(static_cast<size_t>(TargetLevel));
  PropHead = Trail.size();
  BranchCursor = 0; // Unassignments may have opened earlier variables.
}

Var Solver::pickBranchVar() {
  // Cursor scan in static order with phase saving; see BranchCursor.
  // Activities still accumulate (analyze() bumps them) and steer learned
  // clauses, but selection stays O(1) amortized per decision.
  while (BranchCursor < numVars() &&
         Assigns[static_cast<size_t>(BranchCursor)] != LBool::Undef)
    ++BranchCursor;
  return BranchCursor < numVars() ? BranchCursor : -1;
}

bool Solver::solve(const std::vector<Lit> &Assumptions) {
  cancelUntil(0);
  if (!OkAtLevel0)
    return false;
  if (propagate() != NoReason) {
    OkAtLevel0 = false;
    return false;
  }

  std::vector<Lit> Learnt;
  // Luby restart schedule, local to this call: after luby(k) * Base
  // conflicts, backtrack to the root (keeping all learned clauses) and
  // re-descend. Deterministic, and terminating because learned clauses
  // accumulate monotonically across restarts.
  constexpr uint64_t RestartBase = 32;
  uint64_t ConflictsHere = 0, RestartIdx = 0;
  uint64_t RestartLimit = luby(RestartIdx) * RestartBase;
  for (;;) {
    ClauseRef Confl = propagate();
    if (Confl != NoReason) {
      ++Conflicts;
      ++ConflictsHere;
      if (decisionLevel() == 0) {
        OkAtLevel0 = false;
        cancelUntil(0);
        return false;
      }
      int BtLevel;
      analyze(Confl, Learnt, BtLevel);
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        if (value(Learnt[0]) == LBool::Undef)
          enqueue(Learnt[0], NoReason);
        else if (value(Learnt[0]) == LBool::False) {
          OkAtLevel0 = false;
          cancelUntil(0);
          return false;
        }
      } else {
        Clauses.push_back(Learnt);
        ClauseRef C = static_cast<ClauseRef>(Clauses.size()) - 1;
        attachClause(C);
        enqueue(Learnt[0], C);
      }
      VarInc *= (1.0 / 0.95); // Activity decay.
      if (ConflictsHere >= RestartLimit) {
        ++Restarts;
        ++RestartIdx;
        ConflictsHere = 0;
        RestartLimit = luby(RestartIdx) * RestartBase;
        cancelUntil(0); // Assumptions re-apply from the loop below.
      }
      continue;
    }

    // No conflict: take the next assumption or branch.
    if (decisionLevel() < static_cast<int>(Assumptions.size())) {
      Lit A = Assumptions[static_cast<size_t>(decisionLevel())];
      if (value(A) == LBool::True) {
        newDecisionLevel(); // Dummy level so indices line up.
        continue;
      }
      if (value(A) == LBool::False) {
        cancelUntil(0);
        return false; // Assumptions conflict with learned facts.
      }
      newDecisionLevel();
      enqueue(A, NoReason);
      continue;
    }

    Var V = pickBranchVar();
    if (V == -1) {
      // Full model.
      Model.assign(static_cast<size_t>(numVars()), false);
      for (Var U = 0; U != numVars(); ++U)
        Model[static_cast<size_t>(U)] =
            Assigns[static_cast<size_t>(U)] == LBool::True;
      cancelUntil(0);
      return true;
    }
    newDecisionLevel();
    enqueue(Lit(V, Polarity[static_cast<size_t>(V)] != 0), NoReason);
  }
}
