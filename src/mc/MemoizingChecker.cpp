//===- mc/MemoizingChecker.cpp - Memoizing checker decorator ---*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "mc/MemoizingChecker.h"

#include <cassert>

using namespace netupd;

const std::shared_ptr<CheckCache> &MemoizingChecker::processCache() {
  static const std::shared_ptr<CheckCache> Cache = [] {
    auto C = std::make_shared<CheckCache>();
    // Surface the process-wide check cache in metrics snapshots for the
    // lifetime of the process; registered once, never unregistered.
    std::weak_ptr<CheckCache> W = C;
    obs::MetricsRegistry::instance().registerCacheStats(
        "mc.check_cache", [W]() -> obs::CacheSample {
          obs::CacheSample S;
          if (auto Strong = W.lock()) {
            CacheStats St = Strong->stats();
            S.Hits = St.Hits;
            S.Misses = St.Misses;
            S.Evictions = St.Evictions;
            S.Entries = St.Entries;
          }
          return S;
        });
    return C;
  }();
  return Cache;
}

MemoizingChecker::MemoizingChecker(std::unique_ptr<CheckerBackend> Inner,
                                   std::shared_ptr<CheckCache> Cache)
    : Inner(std::move(Inner)),
      Cache(Cache ? std::move(Cache) : processCache()) {
  assert(this->Inner && "memoizing a null backend");
  NameStr = std::string("Memo(") + this->Inner->name() + ")";
  DigestBuilder B;
  B.addString(this->Inner->name());
  InnerNameDigest = B.finish();
}

Digest MemoizingChecker::currentKey() const {
  DigestBuilder B;
  B.addDigest(K->digest());
  B.addDigest(PhiDigest);
  // The inner backend is part of the key: backends differ in the
  // counterexamples they produce (hsa yields none), and a result cached
  // from one must never steer the search driven through another.
  B.addDigest(InnerNameDigest);
  return B.finish();
}

CheckResult MemoizingChecker::bindImpl(KripkeStructure &Structure, Formula F) {
  K = &Structure;
  Phi = F;
  PhiDigest = digestOf(F);
  Frames.clear();

  if (std::optional<CheckResult> Cached = Cache->lookup(currentKey())) {
    ++Hits;
    SyncedDepth = -1; // Inner never saw this structure.
    return *Cached;
  }
  ++Misses;
  CheckResult Res = Inner->bind(Structure, F);
  // relaxed: statistics mirror of the inner backend's counter.
  Queries.store(Inner->numQueries(), std::memory_order_relaxed);
  SyncedDepth = 0;
  Cache->store(currentKey(), Res);
  return Res;
}

CheckResult MemoizingChecker::recheckImpl(const UpdateInfo &Update) {
  assert(K && "recheck before bind");
  // The structure was already mutated, so K->digest() names the new
  // configuration (the incremental maintenance in KripkeStructure).
  Digest Key = currentKey();
  size_t PrevDepth = Frames.size();

  if (std::optional<CheckResult> Cached = Cache->lookup(Key)) {
    ++Hits;
    Frames.push_back(FrameKind::Hit); // Inner untouched; SyncedDepth keeps
                                      // naming the frame it reflects.
    return *Cached;
  }
  ++Misses;

  CheckResult Res;
  if (innerSyncedAt(PrevDepth)) {
    Res = Inner->recheckAfterUpdate(Update);
    Frames.push_back(FrameKind::Recheck);
  } else {
    // Inner lags behind (cache hits were served past it) or matches no
    // depth at all: resynchronize with a full bind against the current
    // structure. That wipes the inner backend's own undo stack, so every
    // live frame it contributed below this point is now dead.
    for (FrameKind &FK : Frames)
      if (FK == FrameKind::Recheck)
        FK = FrameKind::DeadRecheck;
    Res = Inner->bind(*K, Phi);
    Frames.push_back(FrameKind::Rebind);
  }
  // relaxed: statistics mirror of the inner backend's counter.
  Queries.store(Inner->numQueries(), std::memory_order_relaxed);
  SyncedDepth = static_cast<long>(Frames.size());
  Cache->store(Key, Res);
  return Res;
}

void MemoizingChecker::notifyRollback() {
  assert(!Frames.empty() && "rollback without a matching recheck");
  FrameKind Top = Frames.back();
  Frames.pop_back();
  switch (Top) {
  case FrameKind::Hit:
    // Inner backend never advanced; nothing to roll back. SyncedDepth is
    // at most the new depth already.
    break;
  case FrameKind::Recheck:
    // A live inner frame: its undo stack top matches this rollback.
    assert(SyncedDepth == static_cast<long>(Frames.size()) + 1 &&
           "live recheck frame without a synced inner backend");
    Inner->notifyRollback();
    SyncedDepth = static_cast<long>(Frames.size());
    break;
  case FrameKind::DeadRecheck:
    // Inner's matching frame was wiped by a later re-bind (whose own
    // rollback already invalidated SyncedDepth); absorb silently.
    break;
  case FrameKind::Rebind:
    // Inner was rebuilt at the depth we are leaving, with an empty undo
    // stack: after this rollback it matches no reachable depth.
    SyncedDepth = -1;
    break;
  }
}
