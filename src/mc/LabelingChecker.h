//===- mc/LabelingChecker.h - §5 labeling model checker --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's incremental LTL model checker for DAG-like Kripke
/// structures (§5), plus the Batch variant used as a baseline in Fig. 7.
///
/// Each state q is labeled with the set of maximally-consistent subsets M
/// of ecl(phi) realizable by some trace from q (labGr in the paper). For
/// sinks the label is the singleton Holds0 set; for inner states it is
/// labelNode: { extend(M', atoms(q)) | q' in succ(q), M' in labGr(q') }.
/// The property holds iff every initial state's label contains only sets
/// with phi (checkInitStates).
///
/// Incrementality (relbl): after an update changes the edges of a state
/// set U, only ancestors of U can change labels. States are relabeled
/// children-first; propagation stops at states whose labels are unchanged.
/// The complexity is O(|ancestors(U)| * 2^|phi|) versus O(|K| * 2^|phi|)
/// for the monolithic relabeling (Corollary 1 discussion).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_MC_LABELINGCHECKER_H
#define NETUPD_MC_LABELINGCHECKER_H

#include "ltl/Closure.h"
#include "mc/CheckerBackend.h"

#include <memory>

namespace netupd {

/// A deduplicated set of maximally-consistent sets (one state's label).
using LabelSet = std::vector<Bitset>;

/// The labeling checker; Mode selects the Incremental or Batch behaviour
/// of §6 (they share all labeling code, Batch just never reuses labels).
class LabelingChecker : public CheckerBackend {
public:
  enum class Mode { Incremental, Batch };

  explicit LabelingChecker(Mode M = Mode::Incremental) : M(M) {}

  void notifyRollback() override;
  const char *name() const override {
    return M == Mode::Incremental ? "Incremental" : "Batch";
  }

  /// Total number of state-label computations performed; the work measure
  /// that incrementality reduces.
  uint64_t numLabelOps() const { return LabelOps; }

  /// The current label of \p S; exposed for tests.
  const LabelSet &label(StateId S) const { return Labels[S]; }

protected:
  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override;
  CheckResult recheckImpl(const UpdateInfo &Update) override;

private:
  /// Computes the label of \p S from its successors' current labels.
  LabelSet computeLabel(StateId S);

  /// Relabels every state (monolithic pass) and re-checks initial states.
  CheckResult fullCheck();

  /// Relabels ancestors of \p Changed only; records undo info into the
  /// current frame.
  CheckResult incrementalCheck(const std::vector<StateId> &Changed);

  /// Looks for a forwarding loop among the descendants of \p Changed (a
  /// new cycle must contain a changed state). Returns the cycle if found.
  std::optional<std::vector<StateId>>
  findLoopFrom(const std::vector<StateId> &Changed);

  /// Verifies all initial states and extracts a counterexample if needed.
  CheckResult checkInitStates();

  /// Reconstructs a violating trace starting at \p Init whose
  /// maximally-consistent set is \p M (Section 5, "Counterexamples").
  std::vector<StateId> extractCex(StateId Init, const Bitset &M);

  Mode M;
  KripkeStructure *K = nullptr;
  std::unique_ptr<Closure> Cl;
  std::vector<Bitset> AtomBits; // Per-state atom valuations.
  std::vector<LabelSet> Labels;
  uint64_t LabelOps = 0;

  /// Saved labels for rollback, one frame per recheckAfterUpdate.
  struct UndoFrame {
    std::vector<std::pair<StateId, LabelSet>> OldLabels;
  };
  std::vector<UndoFrame> UndoStack;

  /// Stamp-based scratch marks, reused across queries so the incremental
  /// path never touches memory proportional to the whole structure.
  std::vector<uint32_t> GrayStamp, DoneStamp, AncestorStamp, InHeapStamp;
  uint32_t Stamp = 0;

  /// Topological position of each state within the current relabel
  /// region; valid where DoneStamp == Stamp. Replaces a per-query
  /// unordered_map that dominated the prune-path allocation profile.
  std::vector<uint32_t> PosOf;
  /// Scratch buffers reused across incremental queries.
  std::vector<StateId> ScratchAncestors, ScratchOrder;
};

} // namespace netupd

#endif // NETUPD_MC_LABELINGCHECKER_H
