//===- mc/CheckerBackend.h - Model-checker abstraction ---------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker-backend interface the synthesizer drives (§6 lists four
/// backends: Incremental, Batch, NuSMV, NetPlumber; this repo provides
/// Incremental, Batch, a BDD-based NuSMV substitute, and a header-space
/// NetPlumber substitute).
///
/// The synthesis DFS explores configurations by mutating one
/// KripkeStructure in place and rolling it back on backtrack, so the
/// interface is stack-shaped: every recheckAfterUpdate is eventually
/// matched by either a notifyRollback (backtrack) or nothing (the search
/// committed to the update and continued deeper).
///
/// Budget charging: bind() and recheckAfterUpdate() are non-virtual
/// entry points (backends implement bindImpl/recheckImpl) so logical
/// budgets are charged at exactly one place. recheckAfterUpdate charges
/// the attached BudgetAccount once per call, *before* any memoization
/// below can intercept it — a cache hit costs a budget token exactly
/// like a computed answer, which is what keeps the set of affordable
/// search steps a pure function of the budget, independent of what any
/// process-wide cache happens to contain. bind() is exempt: it is setup
/// cost, and a sharded search performs one bind per shard — a layout
/// artifact a deterministic budget must not observe.
///
/// The same wrappers are the single observability site of the check
/// path: they open mc.bind / mc.recheck trace spans and, when the
/// detail metrics tier is on, record per-call latency histograms.
/// A decorator's inner calls go through these wrappers too, so a
/// memoized check shows up as nested spans — the outer one covering
/// the cache lookup, the inner one (present only on a miss) the real
/// compute. Observability never changes a verdict (obs/Trace.h).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_MC_CHECKERBACKEND_H
#define NETUPD_MC_CHECKERBACKEND_H

#include "kripke/Kripke.h"
#include "ltl/Formula.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Budget.h"

#include <atomic>
#include <vector>

namespace netupd {

/// Outcome of one model-checking call.
struct CheckResult {
  /// True if every trace from every initial state satisfies the property.
  bool Holds = false;

  /// A violating trace (initial state to sink) when !Holds and the backend
  /// produces counterexamples; empty otherwise. NetPlumber-style backends
  /// leave this empty (§6 notes NetPlumber reports no counterexamples).
  std::vector<StateId> Cex;
};

/// Everything a backend may want to know about one applied update.
struct UpdateInfo {
  SwitchId Sw = 0;
  /// Table before / after the update (valid only during the call).
  const Table *OldTable = nullptr;
  const Table *NewTable = nullptr;
  /// States whose outgoing Kripke edges changed.
  const std::vector<StateId> *ChangedStates = nullptr;
};

/// Abstract model-checker backend. Bound to one structure and property at
/// a time.
class CheckerBackend {
public:
  virtual ~CheckerBackend();

  /// Binds to \p K and \p Phi and performs the initial full check
  /// (Fig. 4 line 7). Exempt from budget charging (see file comment).
  CheckResult bind(KripkeStructure &K, Formula Phi) {
    obs::TraceSpan Span("mc.bind");
    if (!obs::detailEnabled())
      return bindImpl(K, Phi);
    uint64_t T0 = obs::nowNs();
    CheckResult R = bindImpl(K, Phi);
    bindLatency().record(obs::nowNs() - T0);
    return R;
  }

  /// Rechecks after the bound structure was mutated by one switch/rule
  /// update (Fig. 4 line 10). Backends that cannot exploit incrementality
  /// simply run a full check. Charges the attached BudgetAccount once
  /// per call — the single charging site of the whole query path.
  CheckResult recheckAfterUpdate(const UpdateInfo &Update) {
    if (Account)
      Account->charge();
    obs::TraceSpan Span("mc.recheck");
    if (!obs::detailEnabled())
      return recheckImpl(Update);
    uint64_t T0 = obs::nowNs();
    CheckResult R = recheckImpl(Update);
    recheckLatency().record(obs::nowNs() - T0);
    return R;
  }

  /// Attaches the logical-cost account future rechecks charge; null (the
  /// default) disables charging. The caller keeps ownership and must not
  /// outlive it — the search re-points this at each work unit's account.
  /// Decorators deliberately do NOT forward the account to their inner
  /// backend: the outer entry point has already charged the call.
  void setBudget(BudgetAccount *A) { Account = A; }

  /// Notifies that the structure was rolled back to exactly the state
  /// before the matching recheckAfterUpdate (LIFO discipline).
  virtual void notifyRollback() = 0;

  /// True if CheckResult::Cex is populated on failure; the synthesizer
  /// only learns from counterexamples when this holds.
  virtual bool providesCounterexamples() const { return true; }

  /// Human-readable backend name for benchmark tables.
  virtual const char *name() const = 0;

  /// Number of model-checking calls served so far (for the §6
  /// micro-comparison of checkers on identical query streams). Every
  /// backend increments exactly once per bind() and once per
  /// recheckAfterUpdate() — except MemoizingChecker, which counts only
  /// the calls its inner backend actually computed, so numQueries() is
  /// always "real checking work performed". Atomic so engine threads may
  /// read a racing backend's progress; a backend itself is still
  /// single-threaded.
  unsigned numQueries() const {
    // relaxed: statistics counter; a racing reader sees some recent count.
    return Queries.load(std::memory_order_relaxed);
  }

  /// Memoization counters; nonzero only for caching decorators
  /// (MemoizingChecker). The synthesizer copies them into
  /// SynthStats::CacheHits/CacheMisses so they surface in engine reports.
  virtual uint64_t cacheHits() const { return 0; }
  virtual uint64_t cacheMisses() const { return 0; }

protected:
  /// The backend implementations behind the charging wrappers above.
  virtual CheckResult bindImpl(KripkeStructure &K, Formula Phi) = 0;
  virtual CheckResult recheckImpl(const UpdateInfo &Update) = 0;

  std::atomic<unsigned> Queries{0};

private:
  /// The shared per-call latency histograms; resolved once per process
  /// (a registry lookup takes a mutex — too hot for the recheck path).
  static obs::Histogram &bindLatency() {
    static obs::Histogram &H =
        obs::MetricsRegistry::instance().histogram("mc.bind_ns");
    return H;
  }
  static obs::Histogram &recheckLatency() {
    static obs::Histogram &H =
        obs::MetricsRegistry::instance().histogram("mc.recheck_ns");
    return H;
  }

  /// The account recheckAfterUpdate() charges; not owned, may be null.
  /// Plain pointer on purpose: a backend is single-threaded (see
  /// numQueries()), and so is its account.
  BudgetAccount *Account = nullptr;
};

} // namespace netupd

#endif // NETUPD_MC_CHECKERBACKEND_H
