//===- mc/BackendFactory.cpp - Checker-backend registry --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "mc/BackendFactory.h"

#include "bddmc/SymbolicChecker.h"
#include "hsa/HsaChecker.h"
#include "mc/LabelingChecker.h"
#include "mc/MemoizingChecker.h"
#include "mc/NaiveTraceChecker.h"
#include "topo/Scenario.h"

#include <algorithm>
#include <cctype>

using namespace netupd;

namespace {

std::string lowered(const std::string &Name) {
  std::string Out = Name;
  std::transform(Out.begin(), Out.end(), Out.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  return Out;
}

/// The memoization spec prefix: "memo:<backend>" wraps <backend> in a
/// MemoizingChecker sharing the process-wide CheckCache.
constexpr const char MemoPrefix[] = "memo:";
constexpr size_t MemoPrefixLen = sizeof(MemoPrefix) - 1;

bool isMemoSpec(const std::string &LoweredName) {
  return LoweredName.rfind(MemoPrefix, 0) == 0;
}

} // namespace

BackendFactory::BackendFactory() {
  // The magic-static construction in instance() is single-threaded, but
  // taking the lock keeps the constructor inside the checked discipline.
  MutexLock Lock(RegistryM);
  Entries.emplace_back("incremental", [](const Scenario &) {
    return std::make_unique<LabelingChecker>(
        LabelingChecker::Mode::Incremental);
  });
  Entries.emplace_back("batch", [](const Scenario &) {
    return std::make_unique<LabelingChecker>(LabelingChecker::Mode::Batch);
  });
  Entries.emplace_back("symbolic", [](const Scenario &) {
    return std::make_unique<SymbolicChecker>();
  });
  Entries.emplace_back("hsa", [](const Scenario &S) {
    return std::make_unique<HsaChecker>(HsaChecker::probesFromScenario(S));
  });
  Entries.emplace_back("naive", [](const Scenario &) {
    return std::make_unique<NaiveTraceChecker>();
  });
}

BackendFactory &BackendFactory::instance() {
  static BackendFactory Factory;
  return Factory;
}

void BackendFactory::registerBackend(const std::string &Name,
                                     BackendCtor Ctor) {
  MutexLock Lock(RegistryM);
  std::string Key = lowered(Name);
  for (auto &[EntryName, EntryCtor] : Entries) {
    if (EntryName == Key) {
      EntryCtor = std::move(Ctor);
      return;
    }
  }
  Entries.emplace_back(std::move(Key), std::move(Ctor));
}

std::unique_ptr<CheckerBackend>
BackendFactory::create(const std::string &Name, const Scenario &S) const {
  std::string Key = lowered(Name);
  if (isMemoSpec(Key)) {
    std::unique_ptr<CheckerBackend> Inner =
        create(Key.substr(MemoPrefixLen), S);
    if (!Inner)
      return nullptr;
    return std::make_unique<MemoizingChecker>(std::move(Inner));
  }
  BackendCtor Ctor;
  {
    MutexLock Lock(RegistryM);
    for (const auto &[EntryName, EntryCtor] : Entries)
      if (EntryName == Key)
        Ctor = EntryCtor;
  }
  return Ctor ? Ctor(S) : nullptr;
}

bool BackendFactory::known(const std::string &Name) const {
  std::string Key = lowered(Name);
  if (isMemoSpec(Key))
    return known(Key.substr(MemoPrefixLen));
  MutexLock Lock(RegistryM);
  return std::any_of(Entries.begin(), Entries.end(),
                     [&](const auto &E) { return E.first == Key; });
}

std::vector<std::string> BackendFactory::names() const {
  MutexLock Lock(RegistryM);
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const auto &[EntryName, EntryCtor] : Entries)
    Out.push_back(EntryName);
  std::sort(Out.begin(), Out.end());
  return Out;
}
