//===- mc/MemoizingChecker.h - Memoizing checker decorator -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CheckerBackend decorator that memoizes check results in a shared,
/// thread-safe cache keyed on (structure digest, property digest, inner
/// backend). The engine's batches replay near-identical query streams —
/// duplicate scenarios, portfolio members crossing the same intermediate
/// configurations at different granularities — and every repeated
/// (configuration, property) pair is served from the cache instead of
/// being re-verified.
///
/// The synthesis DFS drives backends in a stack discipline (mutate,
/// recheck, rollback), and the decorator must keep its *stateful* inner
/// backend consistent while skipping calls. It tracks the frame depth
/// the inner backend last reflected: on a cache hit the inner backend is
/// simply not advanced; on a later miss at a depth the inner backend no
/// longer matches, the decorator re-binds it against the current
/// structure (a full check — still one query) and resumes incremental
/// operation from there. Re-binding clears the inner backend's own undo
/// stack, so earlier frames it served are marked dead and rollbacks
/// through them are absorbed without forwarding.
///
/// Digest-equal structures label identically and number states
/// identically (kripke/Kripke.h), so cached CheckResults — including
/// counterexample traces — are valid verbatim across jobs.
///
/// The sync-depth state machine's invariants, precisely:
///
///  1. Frames mirrors the DFS stack one-to-one: recheckAfterUpdate
///     pushes a frame, notifyRollback pops one, and the structure the
///     decorator observes at depth d is always the same configuration
///     the search had at depth d (LIFO discipline).
///  2. SyncedDepth is either -1 or the unique depth whose configuration
///     the *inner* backend currently reflects. An incremental forward
///     (inner recheck) is sound only when SyncedDepth == Frames.size()
///     at call time (innerSyncedAt); otherwise the decorator re-binds
///     the inner backend against the current structure instead.
///  3. A re-bind invalidates the inner backend's own undo stack, so
///     every Recheck frame below the re-bind depth is retagged
///     DeadRecheck; rollbacks through Hit/DeadRecheck/Rebind frames are
///     absorbed (never forwarded), and only rollbacks through a live
///     Recheck frame reach the inner backend.
///  4. Queries counts only inner-backend work (misses and re-binds),
///     never cache hits, so numQueries() remains "real checking work".
///
/// Concurrency: one MemoizingChecker instance is single-threaded — in a
/// sharded search (synth/OrderUpdate.cpp) every shard owns a private
/// decorator instance over its private structure, preserving the LIFO
/// assumption above per shard, while all instances share the one
/// thread-safe CheckCache. Cache entries are immutable once stored, so
/// cross-shard sharing needs no further coordination.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_MC_MEMOIZINGCHECKER_H
#define NETUPD_MC_MEMOIZINGCHECKER_H

#include "mc/CheckerBackend.h"
#include "support/ShardedCache.h"

#include <memory>
#include <string>
#include <vector>

namespace netupd {

/// The query-result cache: a sharded, thread-safe map from (structure,
/// property, backend) digest to CheckResult, shared by every
/// MemoizingChecker handed the same instance (racing portfolio members,
/// engine workers).
using CheckCache = ShardedDigestCache<CheckResult>;

/// The decorator; see file comment. Construct via
/// BackendFactory ("memo:<backend>", process-wide cache) or directly
/// with an injected cache for isolated runs.
class MemoizingChecker : public CheckerBackend {
public:
  /// Wraps \p Inner; \p Cache defaults to the process-wide cache.
  explicit MemoizingChecker(std::unique_ptr<CheckerBackend> Inner,
                            std::shared_ptr<CheckCache> Cache = nullptr);

  /// The process-wide cache used by factory-built "memo:" backends.
  static const std::shared_ptr<CheckCache> &processCache();

  void notifyRollback() override;
  bool providesCounterexamples() const override {
    return Inner->providesCounterexamples();
  }
  const char *name() const override { return NameStr.c_str(); }

  uint64_t cacheHits() const override { return Hits; }
  uint64_t cacheMisses() const override { return Misses; }

  CheckerBackend &inner() { return *Inner; }

protected:
  /// Budget note: the outer recheckAfterUpdate wrapper has already
  /// charged before recheckImpl runs, so a cache hit and a computed
  /// answer cost the same budget token (deterministic affordability);
  /// the inner backend carries no account, so forwarding cannot
  /// double-charge.
  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override;
  CheckResult recheckImpl(const UpdateInfo &Update) override;

private:
  /// What happened to the inner backend at one stack frame.
  enum class FrameKind : uint8_t {
    Hit,         ///< Served from cache; inner backend untouched.
    Recheck,     ///< Forwarded incrementally; inner has a matching frame.
    DeadRecheck, ///< Was Recheck, but a later re-bind wiped inner's stack.
    Rebind       ///< Inner re-bound from scratch at this frame's depth.
  };

  /// The cache key for the current structure content and property.
  Digest currentKey() const;

  /// True if the inner backend reflects the structure at frame depth
  /// \p Depth (so an incremental recheck from it is sound).
  bool innerSyncedAt(size_t Depth) const {
    return SyncedDepth >= 0 && static_cast<size_t>(SyncedDepth) == Depth;
  }

  std::unique_ptr<CheckerBackend> Inner;
  std::shared_ptr<CheckCache> Cache;
  std::string NameStr;

  KripkeStructure *K = nullptr;
  Formula Phi = nullptr;
  Digest PhiDigest;
  Digest InnerNameDigest;

  /// Frame depth the inner backend currently reflects: 0 after a real
  /// bind, Frames.size() after a forwarded recheck or a re-bind, -1 when
  /// the inner backend matches no reachable depth (bind served from
  /// cache, or rolled back past a re-bind).
  long SyncedDepth = -1;
  std::vector<FrameKind> Frames;

  uint64_t Hits = 0, Misses = 0;
};

} // namespace netupd

#endif // NETUPD_MC_MEMOIZINGCHECKER_H
