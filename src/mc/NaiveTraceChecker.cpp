//===- mc/NaiveTraceChecker.cpp - Reference checker for tests --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "mc/NaiveTraceChecker.h"

#include "ltl/TraceEval.h"

#include <cassert>

using namespace netupd;

CheckResult NaiveTraceChecker::bindImpl(KripkeStructure &Structure,
                                    Formula Property) {
  K = &Structure;
  Phi = Property;
  return checkNow();
}

CheckResult NaiveTraceChecker::recheckImpl(const UpdateInfo &) {
  return checkNow();
}

CheckResult NaiveTraceChecker::checkNow() {
  ++Queries;
  if (auto Loop = K->findForwardingLoop()) {
    CheckResult R;
    R.Holds = false;
    R.Cex = std::move(*Loop);
    return R;
  }

  std::vector<std::vector<StateId>> Traces = K->enumerateTraces(MaxTraces);
  assert(Traces.size() < MaxTraces && "trace enumeration bound exceeded");

  for (const std::vector<StateId> &States : Traces) {
    Trace T;
    T.reserve(States.size());
    for (StateId S : States)
      T.push_back(K->stateInfo(S));
    if (evalOnTrace(Phi, T))
      continue;
    CheckResult R;
    R.Holds = false;
    R.Cex = States;
    return R;
  }
  CheckResult R;
  R.Holds = true;
  return R;
}
