//===- mc/BackendFactory.h - Checker-backend registry ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A name -> constructor registry for CheckerBackend implementations.
/// Benches and examples used to construct backends ad hoc at every call
/// site; the engine's portfolio mode instead names its racing
/// configurations ("incremental", "batch", "symbolic", "hsa", "naive")
/// and asks the factory to instantiate them per job. Construction takes
/// the job's Scenario because some backends are scenario-dependent: the
/// NetPlumber-substitute derives its probe set from the scenario's
/// property family.
///
/// The five in-tree backends are registered on first use; callers may
/// register additional configurations (e.g. a tuned checker variant)
/// under new names. Lookup is case-insensitive.
///
/// Memoization specs: the reserved prefix "memo:" wraps any resolvable
/// spec in a MemoizingChecker sharing the process-wide CheckCache —
/// "memo:incremental", "memo:batch", even "memo:memo:hsa" (harmless).
/// The prefix composes at lookup time, so every registered backend gets
/// a memoized variant without separate registration; names() lists only
/// the underlying entries.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_MC_BACKENDFACTORY_H
#define NETUPD_MC_BACKENDFACTORY_H

#include "mc/CheckerBackend.h"
#include "support/ThreadAnnotations.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace netupd {

struct Scenario;

/// Constructs a fresh backend for one synthesis run over \p S. Factories
/// must be safe to invoke concurrently from engine workers.
using BackendCtor =
    std::function<std::unique_ptr<CheckerBackend>(const Scenario &S)>;

/// The registry; see file comment.
class BackendFactory {
public:
  /// The process-wide registry, with the in-tree backends pre-registered.
  static BackendFactory &instance();

  /// Registers \p Ctor under \p Name, replacing any previous entry.
  void registerBackend(const std::string &Name, BackendCtor Ctor);

  /// Instantiates the backend registered under \p Name for \p S, or null
  /// if the name is unknown.
  std::unique_ptr<CheckerBackend> create(const std::string &Name,
                                         const Scenario &S) const;

  /// True if \p Name resolves to a registered backend.
  bool known(const std::string &Name) const;

  /// The registered names, sorted.
  std::vector<std::string> names() const;

private:
  BackendFactory();

  /// Guards the registry: engine workers create() backends concurrently
  /// while tests may registerBackend() custom configurations. An
  /// instance member (not the previous file-static free mutex) so the
  /// analysis can tie Entries to its capability.
  mutable Mutex RegistryM;
  std::vector<std::pair<std::string, BackendCtor>> Entries
      NETUPD_GUARDED_BY(RegistryM);
};

} // namespace netupd

#endif // NETUPD_MC_BACKENDFACTORY_H
