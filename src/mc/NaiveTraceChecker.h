//===- mc/NaiveTraceChecker.h - Reference checker for tests ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A brute-force model checker: enumerate every complete trace of the
/// Kripke structure and evaluate the formula with the reference trace
/// evaluator (ltl/TraceEval.h). Exponential, test-only; the property tests
/// cross-check the labeling checker against it on small random structures.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_MC_NAIVETRACECHECKER_H
#define NETUPD_MC_NAIVETRACECHECKER_H

#include "mc/CheckerBackend.h"

namespace netupd {

/// Brute-force checker; see file comment.
class NaiveTraceChecker : public CheckerBackend {
public:
  /// \p MaxTraces bounds enumeration; exceeding it asserts (tests must
  /// keep structures small enough to enumerate exactly).
  explicit NaiveTraceChecker(size_t MaxTraces = 1u << 20)
      : MaxTraces(MaxTraces) {}

  void notifyRollback() override {}
  const char *name() const override { return "NaiveTrace"; }

protected:
  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override;
  CheckResult recheckImpl(const UpdateInfo &Update) override;

private:
  CheckResult checkNow();

  KripkeStructure *K = nullptr;
  Formula Phi = nullptr;
  size_t MaxTraces;
};

} // namespace netupd

#endif // NETUPD_MC_NAIVETRACECHECKER_H
