//===- mc/LabelingChecker.cpp - §5 labeling model checker ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "mc/LabelingChecker.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace netupd;

CheckerBackend::~CheckerBackend() = default;

CheckResult LabelingChecker::bindImpl(KripkeStructure &Structure, Formula Phi) {
  K = &Structure;
  Cl = std::make_unique<Closure>(Phi);
  UndoStack.clear();

  AtomBits.clear();
  AtomBits.reserve(K->numStates());
  for (StateId S = 0; S != K->numStates(); ++S)
    AtomBits.push_back(Cl->atomBits(K->stateInfo(S)));

  Labels.assign(K->numStates(), LabelSet());
  GrayStamp.assign(K->numStates(), 0);
  DoneStamp.assign(K->numStates(), 0);
  AncestorStamp.assign(K->numStates(), 0);
  InHeapStamp.assign(K->numStates(), 0);
  PosOf.assign(K->numStates(), 0);
  Stamp = 0;
  return fullCheck();
}

LabelSet LabelingChecker::computeLabel(StateId S) {
  ++LabelOps;
  if (K->isSink(S))
    return {Cl->sinkLabel(AtomBits[S])};

  LabelSet Out;
  for (StateId Next : K->succs(S)) {
    assert(Next != S && "self-loop on a non-sink state");
    for (const Bitset &SuccM : Labels[Next])
      Out.push_back(Cl->extend(SuccM, AtomBits[S]));
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

CheckResult LabelingChecker::fullCheck() {
  ++Queries;
  // A forwarding loop makes the structure non-DAG-like; such
  // configurations are rejected outright (§3.2), reported as a violation
  // whose counterexample is the loop itself.
  if (auto Loop = K->findForwardingLoop()) {
    CheckResult R;
    R.Holds = false;
    R.Cex = std::move(*Loop);
    return R;
  }

  for (StateId S : K->topoOrder())
    Labels[S] = computeLabel(S);
  return checkInitStates();
}

std::optional<std::vector<StateId>>
LabelingChecker::findLoopFrom(const std::vector<StateId> &Changed) {
  // Three-color DFS over the descendants of the changed states. Any cycle
  // introduced by the update contains a changed state (its edges are the
  // only new ones) and hence lies among those descendants; the pre-update
  // structure was DAG-like by the checker's invariant.
  ++Stamp;
  std::vector<std::pair<StateId, size_t>> Stack;
  for (StateId Root : Changed) {
    if (DoneStamp[Root] == Stamp)
      continue;
    Stack.emplace_back(Root, 0);
    GrayStamp[Root] = Stamp;
    while (!Stack.empty()) {
      auto &[S, EdgeIdx] = Stack.back();
      const auto &Succs = K->succs(S);
      if (EdgeIdx == Succs.size()) {
        DoneStamp[S] = Stamp;
        Stack.pop_back();
        continue;
      }
      StateId Next = Succs[EdgeIdx++];
      if (Next == S || DoneStamp[Next] == Stamp)
        continue;
      if (GrayStamp[Next] == Stamp) {
        std::vector<StateId> Cycle;
        bool InCycle = false;
        for (const auto &[Q, Unused] : Stack) {
          (void)Unused;
          if (Q == Next)
            InCycle = true;
          if (InCycle)
            Cycle.push_back(Q);
        }
        return Cycle;
      }
      GrayStamp[Next] = Stamp;
      Stack.emplace_back(Next, 0);
    }
  }
  return std::nullopt;
}

CheckResult
LabelingChecker::incrementalCheck(const std::vector<StateId> &Changed) {
  ++Queries;
  UndoStack.emplace_back();
  UndoFrame &Frame = UndoStack.back();

  if (auto Loop = findLoopFrom(Changed)) {
    // Labels are left untouched: the caller must roll this update back
    // (the search cannot proceed through a rejected configuration), and
    // rollback restores the edges the current labels describe.
    CheckResult R;
    R.Holds = false;
    R.Cex = std::move(*Loop);
    return R;
  }

  // The relabel region is the ancestor set of the changed states; collect
  // it by reverse DFS, then topologically order the induced subgraph so
  // children are relabeled before parents (the relbl function of §5).
  ++Stamp;
  std::vector<StateId> &Ancestors = ScratchAncestors;
  Ancestors.clear();
  {
    std::vector<StateId> Stack(Changed.begin(), Changed.end());
    for (StateId S : Changed)
      AncestorStamp[S] = Stamp;
    while (!Stack.empty()) {
      StateId S = Stack.back();
      Stack.pop_back();
      Ancestors.push_back(S);
      for (StateId P : K->preds(S)) {
        if (P == S || AncestorStamp[P] == Stamp)
          continue;
        AncestorStamp[P] = Stamp;
        Stack.push_back(P);
      }
    }
  }

  // Post-order DFS within the ancestor set (following successor edges
  // restricted to the set) yields children-first positions.
  std::vector<StateId> &Order = ScratchOrder;
  Order.clear();
  Order.reserve(Ancestors.size());
  {
    std::vector<std::pair<StateId, size_t>> Stack;
    for (StateId Root : Ancestors) {
      if (DoneStamp[Root] == Stamp)
        continue;
      Stack.emplace_back(Root, 0);
      DoneStamp[Root] = Stamp;
      while (!Stack.empty()) {
        auto &[S, EdgeIdx] = Stack.back();
        const auto &Succs = K->succs(S);
        if (EdgeIdx == Succs.size()) {
          Order.push_back(S);
          Stack.pop_back();
          continue;
        }
        StateId Next = Succs[EdgeIdx++];
        if (Next == S || AncestorStamp[Next] != Stamp ||
            DoneStamp[Next] == Stamp)
          continue;
        DoneStamp[Next] = Stamp;
        Stack.emplace_back(Next, 0);
      }
    }
  }
  // Positions live in the stamp-validated PosOf array (DoneStamp ==
  // Stamp marks membership in Order), not a per-query hash map.
  for (uint32_t I = 0; I != Order.size(); ++I)
    PosOf[Order[I]] = I;

  // Relabel, children first, stopping as soon as a label is unchanged.
  using Entry = std::pair<uint32_t, StateId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> Heap;
  for (StateId S : Changed) {
    if (InHeapStamp[S] == Stamp)
      continue;
    InHeapStamp[S] = Stamp;
    Heap.emplace(PosOf[S], S);
  }

  while (!Heap.empty()) {
    StateId S = Heap.top().second;
    Heap.pop();
    LabelSet New = computeLabel(S);
    if (New == Labels[S])
      continue; // Unchanged: ancestors keep their labels.
    Frame.OldLabels.emplace_back(S, std::move(Labels[S]));
    Labels[S] = std::move(New);
    for (StateId P : K->preds(S)) {
      if (P == S || InHeapStamp[P] == Stamp)
        continue;
      InHeapStamp[P] = Stamp;
      Heap.emplace(PosOf[P], P);
    }
  }

  return checkInitStates();
}

CheckResult
LabelingChecker::recheckImpl(const UpdateInfo &Update) {
  assert(K && "recheck before bind");
  if (M == Mode::Batch)
    return fullCheck(); // fullCheck() counts the query.
  assert(Update.ChangedStates && "incremental recheck needs changed states");
  return incrementalCheck(*Update.ChangedStates);
}

void LabelingChecker::notifyRollback() {
  if (M == Mode::Batch)
    return; // Batch never reuses labels; nothing to restore.
  assert(!UndoStack.empty() && "rollback without a matching recheck");
  UndoFrame &Frame = UndoStack.back();
  // Restore in reverse order of saving.
  for (auto It = Frame.OldLabels.rbegin(); It != Frame.OldLabels.rend();
       ++It)
    Labels[It->first] = std::move(It->second);
  UndoStack.pop_back();
}

CheckResult LabelingChecker::checkInitStates() {
  unsigned RootIdx = Cl->rootIndex();
  for (StateId Init : K->initialStates()) {
    for (const Bitset &M : Labels[Init]) {
      if (M.test(RootIdx))
        continue;
      CheckResult R;
      R.Holds = false;
      R.Cex = extractCex(Init, M);
      return R;
    }
  }
  CheckResult R;
  R.Holds = true;
  return R;
}

std::vector<StateId> LabelingChecker::extractCex(StateId Init,
                                                 const Bitset &M) {
  // Walk the labeled graph: at each non-sink state find the child set M'
  // explaining the current set M (§5, "Counterexamples").
  std::vector<StateId> Path = {Init};
  StateId Cur = Init;
  Bitset CurM = M;
  while (!K->isSink(Cur)) {
    bool Found = false;
    for (StateId Next : K->succs(Cur)) {
      assert(Next != Cur && "self-loop on a non-sink state");
      for (const Bitset &SuccM : Labels[Next]) {
        if (Cl->extend(SuccM, AtomBits[Cur]) != CurM)
          continue;
        Path.push_back(Next);
        Cur = Next;
        CurM = SuccM;
        Found = true;
        break;
      }
      if (Found)
        break;
    }
    assert(Found && "label set without a witness child");
    if (!Found)
      break; // Defensive: avoid an infinite loop in release builds.
  }
  return Path;
}
