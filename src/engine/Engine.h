//===- engine/Engine.h - Parallel batch-synthesis engine -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SynthEngine: runs a batch of SynthJobs on a fixed-size pool of
/// worker threads with work stealing, and returns per-job SynthReports
/// in job order plus merged batch statistics.
///
/// Scheduling: jobs are dealt round-robin onto per-worker deques; a
/// worker pops from the back of its own deque and, when empty, steals
/// from the front of a sibling's. Jobs are coarse units (a whole
/// synthesis search), so this simple locked-deque scheme is contention-
/// free in practice — workers touch a lock once per job, not per search
/// step.
///
/// Isolation: every job owns its Scenario by value and every portfolio
/// member clones it again before building its private KripkeStructure
/// and checker, so concurrent runs never share mutable state; the only
/// cross-thread channels are the StopTokens and the report slots, each
/// written by exactly one thread.
///
/// Portfolio mode: a job with several members runs them on dedicated
/// threads racing for the first Success; the winner fires a shared
/// StopSource and the losers abandon their search at the next
/// cancellation checkpoint. Only Success cancels the race — a member
/// proving its own configuration Impossible says nothing about members
/// searching a different granularity, so the rest keep running. The
/// job's feasibility verdict is therefore timing-independent: Success
/// iff some member can succeed.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_ENGINE_ENGINE_H
#define NETUPD_ENGINE_ENGINE_H

#include "engine/Job.h"
#include "engine/StopToken.h"

namespace netupd {

/// Engine configuration.
struct EngineOptions {
  /// Worker threads for the job pool; 0 means hardware concurrency.
  /// Portfolio members run on additional short-lived threads owned by
  /// the job that spawned them.
  unsigned NumWorkers = 0;
  /// Cancels the whole batch when fired; remaining jobs are reported as
  /// Aborted.
  StopToken Stop;
};

/// The batch engine; see file comment. Stateless between run() calls and
/// safe to reuse.
class SynthEngine {
public:
  explicit SynthEngine(EngineOptions Opts = {});

  /// Runs every job and returns reports in job order. Blocks until the
  /// batch finishes or Opts.Stop fires.
  BatchReport run(const std::vector<SynthJob> &Jobs) const;

  /// The resolved pool size.
  unsigned numWorkers() const { return Workers; }

private:
  SynthReport runOneJob(const SynthJob &Job, size_t Index) const;

  EngineOptions Opts;
  unsigned Workers;
};

} // namespace netupd

#endif // NETUPD_ENGINE_ENGINE_H
