//===- engine/Engine.h - Parallel batch-synthesis engine -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SynthEngine: a long-lived pool of worker threads consuming
/// SynthJobs, with two front-ends over the same queue:
///
///  - submit(): asynchronous — returns a JobHandle the caller can
///    poll/wait/cancel while streaming further jobs in. The pool and the
///    caches stay warm between submissions, the service mode the ROADMAP
///    asked for.
///  - run(): the batch front-end — submits every job, waits for all, and
///    returns per-job SynthReports in job order plus merged statistics.
///
/// Result cache: each job is keyed by its canonical digest
/// (digestOf(SynthJob): scenario content + portfolio spec); a
/// digest-identical job that already completed is served instantly with
/// the recorded verdict, command sequence, and stats — isomorphic
/// scenarios recur both within a batch and across batches, and
/// re-synthesizing them is pure waste. Timing-shaped results are never
/// cached: cancellation and wall-clock expiry reflect the run, not the
/// instance, so any report whose stats carry the Interrupted flag skips
/// the store. Aborted verdicts are cacheable in exactly one shape — the
/// deterministic budget abort, where every member ran its quota dry
/// (ExhaustedUnits > 0) with no timing event observed: since PR 4 such
/// verdicts are a pure function of (job, budget) and the budget is part
/// of the digest, so replaying them dedups repeated doomed probes in
/// autotuning loops. See executeJob, whose single store site enforces
/// both rules, and tests/budget_test.cpp, which audits every
/// Aborted-writing path including a cancel racing job completion. The
/// cache is
/// sharded and thread-safe (support/ShardedCache.h) and lives as long as
/// the engine, so warm batches also benefit. Checker-level memoization
/// ("memo:<backend>" specs, mc/MemoizingChecker.h) is independent and
/// composes: the engine cache dedups whole jobs, the check cache dedups
/// individual queries across different jobs.
///
/// Cross-job learning: orthogonal to both caches, the engine threads a
/// ConstraintStore (support/ConstraintStore.h) through every member it
/// runs. Digest-*different* jobs over digest-identical scenarios — a
/// portfolio probing the same instance under different backends or
/// knobs, an autotuning sweep, repeated batches — then share the
/// counterexample refutations they mine: each member seeds its W set
/// and SAT layer on start and publishes what it learned on retirement,
/// so already-refuted prefixes are pruned without checker queries. The
/// store is a pure accelerator (verdicts and sequences are byte-
/// identical with it on or off; deterministic budget runs never import)
/// and is therefore excluded from digestOf(SynthJob).
///
/// Isolation: every job owns its Scenario by value and every portfolio
/// member clones it again before building its private KripkeStructure
/// and checker, so concurrent runs never share mutable state; the only
/// cross-thread channels are the StopTokens, the sharded caches, and the
/// per-job report slots, each completed under the job's own mutex.
///
/// Portfolio mode: a job with several members runs them on dedicated
/// threads racing for the first Success; the winner fires a shared
/// StopSource and the losers abandon their search at the next
/// cancellation checkpoint. Only Success cancels the race — a member
/// proving its own configuration Impossible says nothing about members
/// searching a different granularity, so the rest keep running. The
/// job's feasibility verdict is therefore timing-independent: Success
/// iff some member can succeed.
///
/// Intra-job sharding: orthogonally to the portfolio (which races
/// *different* configurations), a single member's DFS can be
/// prefix-split across shard threads (SynthOptions::Shards;
/// EngineOptions::IntraJobShards applies a default to every member that
/// didn't choose). The engine's contribution is the per-shard checker
/// factory: each shard needs a private backend instance, so runMember
/// wires SynthOptions::ShardCheckerFactory to the member's
/// BackendFactory spec over the job's scenario clone.
///
/// Nested work and the pool: shard threads (like portfolio threads) are
/// dedicated threads owned by the job that spawned them — they are NOT
/// submitted back to the engine's job queue. Re-submitting would
/// deadlock a saturated pool: every worker could be blocked inside a
/// job waiting for shard sub-tasks that no free worker exists to run.
/// Dedicated threads keep the pool's invariant simple — workers only
/// ever block on checker work, never on other queue entries — at the
/// cost of briefly oversubscribing the machine, which the OS scheduler
/// handles gracefully for these CPU-bound, cancellation-polling loops.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_ENGINE_ENGINE_H
#define NETUPD_ENGINE_ENGINE_H

#include "engine/Job.h"
#include "engine/StopToken.h"
#include "support/ShardedCache.h"
#include "support/ThreadAnnotations.h"

#include <deque>
#include <memory>
#include <thread>

namespace netupd {

/// What the engine's result cache stores per job digest: the winning
/// member's full result and its name. Everything per-submission
/// (JobIndex, JobName, member outcomes, wall-clock) is reconstructed or
/// left empty when serving.
struct CachedJobResult {
  SynthResult Result;
  std::string Winner;
};

/// The engine-level result cache; shareable between engines.
using ResultCache = ShardedDigestCache<CachedJobResult>;

/// Engine configuration.
struct EngineOptions {
  /// Worker threads for the job pool; 0 means hardware concurrency.
  /// Portfolio members and DFS shards run on additional short-lived
  /// threads owned by the job that spawned them (see the file comment
  /// on why nested work never re-enters the queue).
  unsigned NumWorkers = 0;
  /// Default intra-job shard count applied to every portfolio member
  /// that left SynthOptions::Shards at 0 (unset). 0 or 1 here disables
  /// the default; members with an explicit Shards — including an
  /// explicit 1 to pin the sequential search — keep their own value.
  unsigned IntraJobShards = 0;
  /// Cancels every queued and running job when fired; affected jobs are
  /// reported as Aborted.
  StopToken Stop;
  /// Serve digest-identical jobs from the result cache.
  bool CacheResults = true;
  /// The cache to use; null means the engine creates a private one that
  /// lives as long as the engine. Pass a shared instance to pool results
  /// across engines.
  std::shared_ptr<ResultCache> Cache;
  /// Cross-job constraint learning (see the file comment): members seed
  /// their searches from, and publish their learned refutations to, the
  /// engine's ConstraintStore. Safe to leave on — verdicts and command
  /// sequences are unchanged by construction; SynthStats reports the
  /// traffic (ImportedConstraints / ExportedConstraints / SeededPrunes).
  bool SharedLearning = true;
  /// The store to use when SharedLearning is on; null means the engine
  /// creates a private one that lives as long as the engine. Pass
  /// ConstraintStore::processStore() (or any shared instance) to pool
  /// learning across engines.
  std::shared_ptr<ConstraintStore> Learning;
  /// When non-empty, the engine enables span tracing (obs/Trace.h) on
  /// construction and writes the accumulated Chrome-trace JSON to this
  /// path on destruction — the one-knob way to profile a whole engine
  /// lifetime; open the file at https://ui.perfetto.dev. Programmatic
  /// control (obs::setTracing / the NETUPD_TRACE environment variable)
  /// works independently of this knob. Excluded from digestOf(SynthJob)
  /// territory by construction: tracing is per-engine, never per-job,
  /// and changes no verdict.
  std::string TraceFile;
};

namespace detail {
/// Shared state of one submitted job; the handle and the worker hold it
/// jointly, so a handle stays valid after the engine is destroyed.
struct JobState {
  /// Job/Index/Cancel/EnqueuedNs are written once by submit() before the
  /// state is published into the queue and read-only afterwards — the
  /// queue handoff (QueueMutex release/acquire) is their ordering edge,
  /// so they carry no capability annotation.
  SynthJob Job;
  size_t Index = 0;
  StopSource Cancel;
  /// Enqueue timestamp (obs::nowNs at submit), so the worker that
  /// dequeues can report queue wait into the engine.queue_wait_ns
  /// histogram.
  uint64_t EnqueuedNs = 0;

  Mutex M;
  CondVar CV;
  bool Done NETUPD_GUARDED_BY(M) = false;
  /// The report. Written by exactly one worker strictly before it sets
  /// Done under M; readers (JobHandle::wait) first observe Done under M,
  /// then read Rep lock-free — the Done latch is the publication edge.
  /// Left unannotated deliberately: wait() returns a long-lived
  /// reference, which a GUARDED_BY would (correctly) reject even though
  /// the latch protocol makes it safe.
  SynthReport Rep;
};
} // namespace detail

/// Caller's end of one submitted job. Cheap to copy; default-constructed
/// handles are invalid.
class JobHandle {
public:
  JobHandle() = default;

  bool valid() const { return St != nullptr; }

  /// True once the report is available; never blocks.
  bool done() const;

  /// Blocks until the job finishes and returns its report. The reference
  /// stays valid for the handle's lifetime.
  const SynthReport &wait() const;

  /// Requests cooperative cancellation: a queued job is reported Aborted
  /// without running; a running job's members stop at their next
  /// checkpoint. Idempotent; a no-op once the job finished.
  void cancel();

private:
  friend class SynthEngine;
  explicit JobHandle(std::shared_ptr<detail::JobState> St)
      : St(std::move(St)) {}

  std::shared_ptr<detail::JobState> St;
};

/// The engine; see file comment. Thread-safe: submit() and run() may be
/// called concurrently from several client threads.
class SynthEngine {
public:
  explicit SynthEngine(EngineOptions Opts = {});

  /// Joins the pool. Jobs still queued are reported Aborted, so
  /// outstanding handles unblock; jobs already running finish first.
  ~SynthEngine();

  SynthEngine(const SynthEngine &) = delete;
  SynthEngine &operator=(const SynthEngine &) = delete;

  /// Enqueues one job and returns immediately.
  JobHandle submit(SynthJob Job);

  /// Runs every job and returns reports in job order. Blocks until the
  /// batch finishes or Opts.Stop fires; other clients' submissions
  /// interleave on the same pool.
  BatchReport run(const std::vector<SynthJob> &Jobs);

  /// The resolved pool size.
  unsigned numWorkers() const { return Workers; }

  /// The engine's result cache (for stats, sharing, or clearing).
  const std::shared_ptr<ResultCache> &resultCache() const { return Cache; }

  /// The engine's cross-job constraint store; null when SharedLearning
  /// is off.
  const std::shared_ptr<ConstraintStore> &constraintStore() const {
    return Learn;
  }

private:
  void workerLoop();
  void executeJob(detail::JobState &St);
  SynthReport runOneJob(const SynthJob &Job, size_t Index,
                        const StopToken &Stop) const;

  EngineOptions Opts;
  unsigned Workers;
  std::shared_ptr<ResultCache> Cache;
  std::shared_ptr<ConstraintStore> Learn;
  /// Metrics-registry tokens for the cache-stats providers registered in
  /// the constructor (result cache + constraint store); released in the
  /// destructor so a dead engine's caches stop appearing in snapshots.
  uint64_t CacheStatsToken = 0;
  uint64_t LearnStatsToken = 0;

  Mutex QueueMutex;
  CondVar QueueCV;
  std::deque<std::shared_ptr<detail::JobState>> Queue
      NETUPD_GUARDED_BY(QueueMutex);
  bool ShuttingDown NETUPD_GUARDED_BY(QueueMutex) = false;
  size_t NextIndex NETUPD_GUARDED_BY(QueueMutex) = 0;
  /// Workers blocked waiting for a job. submit() only spawns a new
  /// thread (up to Workers) when no idle worker can take the job, so
  /// small workloads never pay for the full pool.
  unsigned IdleWorkers NETUPD_GUARDED_BY(QueueMutex) = 0;

  /// The pool threads. Appended under QueueMutex by submit(); joined by
  /// the destructor strictly after the ShuttingDown handshake, with
  /// QueueMutex released (joining under the lock would deadlock against
  /// workers re-acquiring it to exit their wait). That join-outside-lock
  /// step is why this is a documented handshake rather than GUARDED_BY.
  std::vector<std::thread> Pool;
};

} // namespace netupd

#endif // NETUPD_ENGINE_ENGINE_H
