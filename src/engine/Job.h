//===- engine/Job.h - Batch-synthesis work items ---------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work items the SynthEngine consumes and the reports it produces.
/// A SynthJob bundles one scenario with the configuration(s) to try: a
/// single (backend, options) pair, or a *portfolio* of several that race
/// on their own threads — the first successful synthesis wins and cancels
/// the rest through a shared StopToken. Racing heterogeneous
/// configurations is the standard route to robustness when no single
/// backend dominates (cf. the §6 backend comparison, where the winner
/// flips between incremental/batch/granularity depending on the
/// instance).
///
/// Reports are indexed by job position, so a batch result is independent
/// of scheduling order and worker count.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_ENGINE_JOB_H
#define NETUPD_ENGINE_JOB_H

#include "synth/OrderUpdate.h"
#include "topo/Scenario.h"

#include <string>
#include <vector>

namespace netupd {

/// One racing configuration of a portfolio: which checker backend to
/// instantiate (a BackendFactory name) and which synthesis knobs to use.
struct PortfolioMember {
  /// Display name for reports; defaults to "<backend>/<granularity>"
  /// when empty.
  std::string Name;
  /// BackendFactory name: "incremental", "batch", "symbolic", "hsa",
  /// "naive", or a caller-registered configuration.
  std::string Backend = "incremental";
  SynthOptions Opts;
};

/// One unit of engine work: a scenario plus the configurations to try.
struct SynthJob {
  /// Display name for reports and benchmark tables.
  std::string Name;
  /// The problem instance. Owned by value: workers and portfolio threads
  /// clone from here and never share mutable state.
  Scenario S;
  /// The configurations to run. Empty means one default member
  /// (incremental backend, default options); a single entry runs inline
  /// on the worker; several entries race on their own threads.
  std::vector<PortfolioMember> Portfolio;
};

/// The standard 3-way portfolio: incremental checker at switch
/// granularity, incremental checker at rule granularity (succeeds on
/// Fig. 8(h)-style instances where no switch-granularity order exists),
/// and the batch checker as a fallback whose per-query cost is flat.
std::vector<PortfolioMember> defaultPortfolio(SynthOptions Base = {});

/// Canonical digest of one job's *semantics*: the scenario digest plus
/// every portfolio member's backend spec and result-relevant options
/// (display names and stop tokens excluded; an empty portfolio digests
/// as the default member it runs as). Two jobs with equal digests run
/// the same search, so the engine's result cache keys on this.
Digest digestOf(const SynthJob &Job);

/// What happened to one portfolio member (or the sole configuration of a
/// single-config job).
struct MemberOutcome {
  std::string Name;
  SynthStatus Status = SynthStatus::Aborted;
  SynthStats Stats;
  /// Real checking work performed, from SynthStats::BackendQueries: the
  /// member's checker plus any shard-private checkers it spawned.
  unsigned Queries = 0;
  double Seconds = 0.0;
  /// True if this member aborted while the job-level race was already
  /// decided — i.e. it lost to a sibling's Success. Its Status is then
  /// Aborted and says nothing about feasibility. Batch-level
  /// cancellation and a member's own TimeoutSeconds/MaxCheckCalls
  /// budgets do NOT set this flag (they abort without a race verdict);
  /// a member that hit its own budget in the same instant the race was
  /// decided is reported as cancelled, the more common cause.
  bool Cancelled = false;
  /// Non-empty on engine-level failures (e.g. unknown backend name).
  std::string Error;
  /// Scratch slot the engine uses to carry the full result to winner
  /// selection; cleared afterwards (the winner's moves into
  /// SynthReport::Result) so reports don't duplicate command sequences.
  SynthResult Result;
};

/// The engine's verdict for one job. For portfolios, Result carries the
/// winning member's commands and stats; Members records every racer.
/// Absent external cancellation (the batch-level EngineOptions::Stop or
/// a member's own token/budget), Success/Impossible verdicts are
/// determined by the job alone, never by scheduling: the race is only
/// decided by a member's Success, so "some member succeeds" and "no
/// member succeeds" are timing-independent facts. When the batch itself
/// is cancelled mid-race, every member may abort with no winner and the
/// job reports Aborted.
struct SynthReport {
  size_t JobIndex = 0;
  std::string JobName;
  SynthResult Result;
  /// Name of the member that produced Result.
  std::string Winner;
  /// Wall-clock for the whole job (all members, including losers),
  /// measured from when a worker picked the job up — on-CPU time, not
  /// including the queue.
  double Seconds = 0.0;
  /// Wall-clock the job spent queued before a worker picked it up.
  /// Kept apart from Seconds so load-induced queueing never inflates
  /// per-job latency figures (bench sweeps report both).
  double QueueSeconds = 0.0;
  std::vector<MemberOutcome> Members;
  /// True when the engine served this report from its result cache: an
  /// earlier digest-identical job already ran, Result/Winner are that
  /// run's (verdict, sequence, and stats included), and Members is empty
  /// because no member executed.
  bool FromCache = false;

  bool ok() const { return Result.ok(); }
};

/// The result of one engine batch: per-job reports in job order plus
/// batch-level aggregates.
struct BatchReport {
  std::vector<SynthReport> Reports;
  /// Summed stats of every job's *winning* member (losers excluded so
  /// the totals are comparable across worker counts).
  SynthStats Merged;
  /// Checker queries served by every member, winners and losers alike —
  /// the real work the hardware performed. Cache-served jobs contribute
  /// nothing, which is the point.
  uint64_t TotalQueries = 0;
  /// Engine result-cache accounting for this batch: jobs served from the
  /// cache versus jobs that actually executed.
  uint64_t EngineCacheHits = 0;
  uint64_t EngineCacheMisses = 0;
  double WallSeconds = 0.0;
  unsigned NumWorkers = 0;

  unsigned numSucceeded() const {
    unsigned N = 0;
    for (const SynthReport &R : Reports)
      N += R.ok();
    return N;
  }
};

} // namespace netupd

#endif // NETUPD_ENGINE_JOB_H
