//===- engine/StopToken.h - Cooperative cancellation -----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal std::stop_token substitute (the codebase targets C++17) used
/// to cancel in-flight synthesis runs cooperatively. A StopSource owns a
/// shared flag; any number of StopToken copies observe it. The engine's
/// portfolio mode hands every racing configuration a token and fires the
/// source as soon as a winner emerges; the ORDERUPDATE DFS and the
/// early-termination SAT layer poll the token at their natural budget
/// checkpoints.
///
/// A token may observe several sources at once (anyToken): a portfolio
/// member stops when either its job's race is decided or the whole batch
/// is cancelled. Tokens are cheap to copy, polling is a short loop over
/// at most a handful of flags, and a default-constructed token never
/// reports stop.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_ENGINE_STOPTOKEN_H
#define NETUPD_ENGINE_STOPTOKEN_H

#include <atomic>
#include <memory>
#include <vector>

namespace netupd {

/// Observer end of one or more cancellation channels; see file comment.
class StopToken {
public:
  /// An empty token: stopRequested() is always false.
  StopToken() = default;

  /// True once any observed StopSource fired. Relaxed ordering suffices:
  /// each flag only ever goes false -> true, and observers act on it by
  /// abandoning work, not by reading data published alongside it.
  bool stopRequested() const {
    // relaxed: monotone false->true flag; observers only abandon work,
    // no data is published alongside the flag (see doc comment above).
    for (const auto &F : Flags)
      if (F->load(std::memory_order_relaxed))
        return true;
    return false;
  }

  /// True if this token observes at least one source.
  bool possible() const { return !Flags.empty(); }

  /// A token observing every source of \p A and \p B.
  friend StopToken anyToken(const StopToken &A, const StopToken &B) {
    StopToken T;
    T.Flags = A.Flags;
    T.Flags.insert(T.Flags.end(), B.Flags.begin(), B.Flags.end());
    return T;
  }

private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const std::atomic<bool>> Flag) {
    Flags.push_back(std::move(Flag));
  }

  /// The observed flags; empty for a default token, one entry for a
  /// plain source token, a few for merged tokens.
  std::vector<std::shared_ptr<const std::atomic<bool>>> Flags;
};

/// Owner end of a cancellation channel.
class StopSource {
public:
  StopSource() : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; idempotent and thread-safe.
  // relaxed: monotone false->true flag; no payload rides on it.
  void requestStop() { Flag->store(true, std::memory_order_relaxed); }

  bool stopRequested() const {
    return Flag->load(std::memory_order_relaxed); // relaxed: same flag
  }

  /// A token observing this source.
  StopToken token() const { return StopToken(Flag); }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

} // namespace netupd

#endif // NETUPD_ENGINE_STOPTOKEN_H
