//===- engine/Engine.cpp - Parallel batch-synthesis engine -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "mc/BackendFactory.h"
#include "support/Timer.h"

#include <deque>
#include <mutex>
#include <thread>

using namespace netupd;

namespace {

/// Display name for a member that did not set one.
std::string memberDisplayName(const PortfolioMember &M) {
  if (!M.Name.empty())
    return M.Name;
  return M.Backend + (M.Opts.RuleGranularity ? "/rule" : "/switch");
}

/// Runs one configuration to completion (or cancellation) with a private
/// scenario clone, checker, and formula factory. \p Stop is everything
/// that may cancel the run (race + batch + the member's own token);
/// \p RaceStop is only the job-level race, so a member aborted by a
/// batch cancellation or its own budget is not mislabelled as a race
/// loser.
MemberOutcome runMember(const Scenario &Shared, const PortfolioMember &M,
                        const StopToken &Stop, const StopToken &RaceStop) {
  MemberOutcome Out;
  Out.Name = memberDisplayName(M);

  Scenario Local = Shared; // Private clone; see Engine.h isolation note.
  std::unique_ptr<CheckerBackend> Checker =
      BackendFactory::instance().create(M.Backend, Local);
  if (!Checker) {
    Out.Error = "unknown backend '" + M.Backend + "'";
    return Out;
  }

  SynthOptions Opts = M.Opts;
  Opts.Stop = anyToken(Opts.Stop, Stop);

  FormulaFactory FF;
  Timer Clock;
  SynthResult Res = synthesizeUpdate(Local, FF, *Checker, Opts);
  Out.Seconds = Clock.seconds();
  Out.Status = Res.Status;
  Out.Stats = Res.Stats;
  Out.Queries = Checker->numQueries();
  Out.Cancelled =
      Res.Status == SynthStatus::Aborted && RaceStop.stopRequested();
  // The commands travel back through the outcome only for the winner
  // selection below; losers' (empty) sequences cost nothing.
  Out.Result = std::move(Res);
  return Out;
}

/// Verdict precedence for picking a portfolio winner when several members
/// completed: a found sequence beats every proof, a definitive proof
/// beats an abort, and InitialViolation (the property fails before any
/// update) is the most specific infeasibility verdict.
int statusRank(SynthStatus S) {
  switch (S) {
  case SynthStatus::Success:
    return 3;
  case SynthStatus::InitialViolation:
    return 2;
  case SynthStatus::Impossible:
    return 1;
  case SynthStatus::Aborted:
    return 0;
  }
  return 0;
}

void mergeInto(SynthStats &Acc, const SynthStats &S) {
  Acc.CheckCalls += S.CheckCalls;
  Acc.VisitedPrunes += S.VisitedPrunes;
  Acc.CexPrunes += S.CexPrunes;
  Acc.SatClauses += S.SatClauses;
  Acc.EarlyTerminated |= S.EarlyTerminated;
  Acc.WaitsBeforeRemoval += S.WaitsBeforeRemoval;
  Acc.WaitsAfterRemoval += S.WaitsAfterRemoval;
  Acc.SynthSeconds += S.SynthSeconds;
  Acc.WaitRemovalSeconds += S.WaitRemovalSeconds;
}

} // namespace

std::vector<PortfolioMember> netupd::defaultPortfolio(SynthOptions Base) {
  std::vector<PortfolioMember> Members;
  PortfolioMember IncrSwitch;
  IncrSwitch.Backend = "incremental";
  IncrSwitch.Opts = Base;
  IncrSwitch.Opts.RuleGranularity = false;
  Members.push_back(std::move(IncrSwitch));

  PortfolioMember IncrRule;
  IncrRule.Backend = "incremental";
  IncrRule.Opts = Base;
  IncrRule.Opts.RuleGranularity = true;
  Members.push_back(std::move(IncrRule));

  PortfolioMember BatchSwitch;
  BatchSwitch.Backend = "batch";
  BatchSwitch.Opts = Base;
  BatchSwitch.Opts.RuleGranularity = false;
  Members.push_back(std::move(BatchSwitch));
  return Members;
}

SynthEngine::SynthEngine(EngineOptions Opts) : Opts(std::move(Opts)) {
  Workers = this->Opts.NumWorkers;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
}

SynthReport SynthEngine::runOneJob(const SynthJob &Job, size_t Index) const {
  Timer JobClock;
  SynthReport Rep;
  Rep.JobIndex = Index;
  Rep.JobName = Job.Name;

  std::vector<PortfolioMember> Members = Job.Portfolio;
  if (Members.empty())
    Members.emplace_back(); // Default: incremental, default options.

  std::vector<MemberOutcome> Outcomes(Members.size());
  if (Members.size() == 1) {
    Outcomes[0] = runMember(Job.S, Members[0], Opts.Stop, StopToken());
  } else {
    // Race: first Success fires the shared source; everyone also honours
    // the batch-level token.
    StopSource Race;
    StopToken RaceStop = Race.token();
    StopToken MemberStop = anyToken(Opts.Stop, RaceStop);
    std::vector<std::thread> Threads;
    Threads.reserve(Members.size());
    for (size_t I = 0; I != Members.size(); ++I) {
      Threads.emplace_back([&, I] {
        Outcomes[I] = runMember(Job.S, Members[I], MemberStop, RaceStop);
        if (Outcomes[I].Status == SynthStatus::Success)
          Race.requestStop();
      });
    }
    for (std::thread &T : Threads)
      T.join();
  }

  // Deterministic winner: best verdict rank, lowest member index.
  size_t Best = 0;
  for (size_t I = 1; I != Outcomes.size(); ++I)
    if (statusRank(Outcomes[I].Status) > statusRank(Outcomes[Best].Status))
      Best = I;
  Rep.Winner = Outcomes[Best].Name;
  Rep.Result = std::move(Outcomes[Best].Result);

  for (MemberOutcome &O : Outcomes)
    O.Result = SynthResult(); // Commands live in Rep.Result only.
  Rep.Members = std::move(Outcomes);
  Rep.Seconds = JobClock.seconds();
  return Rep;
}

BatchReport SynthEngine::run(const std::vector<SynthJob> &Jobs) const {
  Timer Clock;
  BatchReport Rep;
  Rep.NumWorkers = Workers;
  Rep.Reports.resize(Jobs.size());
  if (Jobs.empty())
    return Rep;

  unsigned Pool =
      static_cast<unsigned>(std::min<size_t>(Workers, Jobs.size()));

  // Per-worker deques, jobs dealt round-robin.
  std::vector<std::deque<size_t>> Queues(Pool);
  std::vector<std::mutex> Locks(Pool);
  for (size_t I = 0; I != Jobs.size(); ++I)
    Queues[I % Pool].push_back(I);

  auto PopOwn = [&](unsigned Me, size_t &Out) {
    std::lock_guard<std::mutex> Lock(Locks[Me]);
    if (Queues[Me].empty())
      return false;
    Out = Queues[Me].back();
    Queues[Me].pop_back();
    return true;
  };
  auto Steal = [&](unsigned Me, size_t &Out) {
    for (unsigned Off = 1; Off != Pool; ++Off) {
      unsigned Victim = (Me + Off) % Pool;
      std::lock_guard<std::mutex> Lock(Locks[Victim]);
      if (Queues[Victim].empty())
        continue;
      Out = Queues[Victim].front();
      Queues[Victim].pop_front();
      return true;
    }
    return false;
  };

  auto Work = [&](unsigned Me) {
    size_t Idx = 0;
    while (PopOwn(Me, Idx) || Steal(Me, Idx)) {
      SynthReport R;
      if (Opts.Stop.stopRequested()) {
        // Batch cancelled: report the job Aborted without running it.
        R.JobIndex = Idx;
        R.JobName = Jobs[Idx].Name;
        R.Result.Status = SynthStatus::Aborted;
      } else {
        R = runOneJob(Jobs[Idx], Idx);
      }
      Rep.Reports[Idx] = std::move(R); // Exclusive slot; no lock needed.
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Pool - 1);
  for (unsigned W = 1; W < Pool; ++W)
    Threads.emplace_back(Work, W);
  Work(0);
  for (std::thread &T : Threads)
    T.join();

  for (const SynthReport &R : Rep.Reports) {
    mergeInto(Rep.Merged, R.Result.Stats);
    for (const MemberOutcome &O : R.Members)
      Rep.TotalQueries += O.Queries;
  }
  Rep.WallSeconds = Clock.seconds();
  return Rep;
}
