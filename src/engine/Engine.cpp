//===- engine/Engine.cpp - Parallel batch-synthesis engine -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "mc/BackendFactory.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cctype>

using namespace netupd;

namespace {

/// Display name for a member that did not set one.
std::string memberDisplayName(const PortfolioMember &M) {
  if (!M.Name.empty())
    return M.Name;
  return M.Backend + (M.Opts.RuleGranularity ? "/rule" : "/switch");
}

/// The members a job actually runs: its portfolio, or the single default
/// member an empty portfolio stands for. digestOf(SynthJob) uses the
/// same normalization so the cache key matches what executes.
std::vector<PortfolioMember> normalizedPortfolio(const SynthJob &Job) {
  std::vector<PortfolioMember> Members = Job.Portfolio;
  if (Members.empty())
    Members.emplace_back(); // Default: incremental, default options.
  return Members;
}

/// Runs one configuration to completion (or cancellation) with a private
/// scenario clone, checker, and formula factory. \p Stop is everything
/// that may cancel the run (race + batch + per-job cancellation + the
/// member's own token); \p RaceStop is only the job-level race, so a
/// member aborted by an external cancellation or its own budget is not
/// mislabelled as a race loser. \p DefaultShards fills in
/// SynthOptions::Shards for members that left it unset (0); an explicit
/// member value — 1 included — always wins (EngineOptions::IntraJobShards).
/// \p Learning (with \p ScenarioDigest, computed once per job) wires the
/// engine's cross-job constraint store into members that didn't bring
/// their own.
MemberOutcome runMember(const Scenario &Shared, const Digest &ScenarioDigest,
                        const PortfolioMember &M, const StopToken &Stop,
                        const StopToken &RaceStop, unsigned DefaultShards,
                        const std::shared_ptr<ConstraintStore> &Learning) {
  MemberOutcome Out;
  Out.Name = memberDisplayName(M);
  obs::TraceSpan Span("engine.member");

  Scenario Local = Shared; // Private clone; see Engine.h isolation note.
  std::unique_ptr<CheckerBackend> Checker =
      BackendFactory::instance().create(M.Backend, Local);
  if (!Checker) {
    Out.Error = "unknown backend '" + M.Backend + "'";
    return Out;
  }

  SynthOptions Opts = M.Opts;
  Opts.Stop = anyToken(Opts.Stop, Stop);
  if (Learning && !Opts.Learning) {
    Opts.Learning = Learning;
    Opts.LearningScenario = ScenarioDigest;
  }
  if (Opts.Shards == 0 && DefaultShards > 1)
    Opts.Shards = DefaultShards;
  if (Opts.Shards > 1 && !Opts.ShardCheckerFactory) {
    // Each DFS shard needs a private backend over the same clone; the
    // factory call is thread-safe and Local outlives the run.
    const Scenario *Clone = &Local;
    std::string Spec = M.Backend;
    Opts.ShardCheckerFactory = [Clone, Spec] {
      return BackendFactory::instance().create(Spec, *Clone);
    };
  }

  FormulaFactory FF;
  Timer Clock;
  SynthResult Res = synthesizeUpdate(Local, FF, *Checker, Opts);
  Out.Seconds = Clock.seconds();
  Out.Status = Res.Status;
  Out.Stats = Res.Stats;
  // Real checking work across every checker the member ran — the
  // caller's instance plus any shard-private ones.
  Out.Queries = static_cast<unsigned>(Res.Stats.BackendQueries);
  Out.Cancelled =
      Res.Status == SynthStatus::Aborted && RaceStop.stopRequested();
  // The commands travel back through the outcome only for the winner
  // selection below; losers' (empty) sequences cost nothing.
  Out.Result = std::move(Res);
  return Out;
}

/// Verdict precedence for picking a portfolio winner when several members
/// completed: a found sequence beats every proof, a definitive proof
/// beats an abort, and InitialViolation (the property fails before any
/// update) is the most specific infeasibility verdict.
int statusRank(SynthStatus S) {
  switch (S) {
  case SynthStatus::Success:
    return 3;
  case SynthStatus::InitialViolation:
    return 2;
  case SynthStatus::Impossible:
    return 1;
  case SynthStatus::Aborted:
    return 0;
  }
  return 0;
}

/// True when \p Rep may be replayed to digest-identical jobs. Completed
/// verdicts are cacheable unless a timing event (external stop or soft
/// wall expiry — the Interrupted flag) was observed shaping them. An
/// Aborted verdict is cacheable only in its deterministic shape: every
/// member ran and aborted purely by exhausting its check quota
/// (ExhaustedUnits > 0, no timing event, no engine-level error) — such
/// verdicts are a pure function of (job, budget) since PR 4, and the
/// budget is part of the digest. Everything else about an abort — wall
/// expiry, cancellation, a member that never ran — reflects the run,
/// not the instance, and must not be replayed.
bool cacheableReport(const SynthReport &Rep) {
  if (Rep.Result.Status != SynthStatus::Aborted)
    return !Rep.Result.Stats.Interrupted;
  if (Rep.Members.empty())
    return false; // Never ran (queued-cancel and shutdown paths don't
                  // reach the store; belt and braces).
  for (const MemberOutcome &O : Rep.Members) {
    if (O.Status != SynthStatus::Aborted || !O.Error.empty())
      return false;
    if (O.Stats.ExhaustedUnits == 0 || O.Stats.Interrupted)
      return false;
  }
  return true;
}

} // namespace

std::vector<PortfolioMember> netupd::defaultPortfolio(SynthOptions Base) {
  std::vector<PortfolioMember> Members;
  PortfolioMember IncrSwitch;
  IncrSwitch.Backend = "incremental";
  IncrSwitch.Opts = Base;
  IncrSwitch.Opts.RuleGranularity = false;
  Members.push_back(std::move(IncrSwitch));

  PortfolioMember IncrRule;
  IncrRule.Backend = "incremental";
  IncrRule.Opts = Base;
  IncrRule.Opts.RuleGranularity = true;
  Members.push_back(std::move(IncrRule));

  PortfolioMember BatchSwitch;
  BatchSwitch.Backend = "batch";
  BatchSwitch.Opts = Base;
  BatchSwitch.Opts.RuleGranularity = false;
  Members.push_back(std::move(BatchSwitch));
  return Members;
}

Digest netupd::digestOf(const SynthJob &Job) {
  DigestBuilder B;
  B.addDigest(digestOf(Job.S));
  std::vector<PortfolioMember> Members = normalizedPortfolio(Job);
  B.addU64(Members.size());
  for (const PortfolioMember &M : Members) {
    // Backend specs are case-insensitive at the factory; canonicalize.
    std::string Spec = M.Backend;
    std::transform(Spec.begin(), Spec.end(), Spec.begin(),
                   [](unsigned char C) {
                     return static_cast<char>(std::tolower(C));
                   });
    B.addString(Spec);
    // Every option that can change the result; display Name, the Stop
    // token, the sharding knobs (Shards, ShardCheckerFactory), and the
    // cross-job learning knobs (Learning, LearningScenario — a pure
    // accelerator, never part of the key) are presentation/control/
    // performance, not semantics — any shard count or store content
    // yields an interchangeable result for the same job. The check
    // budgets ARE semantic (they deterministically select the explored
    // prefix set, successful sequences included). TimeoutSeconds is
    // not: it is a soft wall hint whose expiry can only produce an
    // Interrupted Aborted result, and timing-shaped results never enter
    // the cache — so two jobs differing only in timeout are
    // interchangeable whenever either is cacheable.
    B.addBool(M.Opts.CexPruning);
    B.addBool(M.Opts.EarlyTermination);
    B.addBool(M.Opts.WaitRemoval);
    B.addBool(M.Opts.RuleGranularity);
    // The conflict-driven knobs are semantic too: they change which
    // sequence the DFS finds first (ordering, restarts) and which
    // configurations a budgeted unit affords (minimized entries prune
    // more per check), so jobs differing in them are not
    // interchangeable.
    B.addBool(M.Opts.ClauseMinimization);
    B.addBool(M.Opts.ActivityOrdering);
    B.addBool(M.Opts.Restarts);
    B.addU64(M.Opts.MaxCheckCalls);
    B.addU64(M.Opts.UnitCheckCalls);
  }
  return B.finish();
}

// --- JobHandle --------------------------------------------------------------

bool JobHandle::done() const {
  if (!St)
    return false;
  MutexLock Lock(St->M);
  return St->Done;
}

const SynthReport &JobHandle::wait() const {
  assert(St && "waiting on an invalid handle");
  MutexLock Lock(St->M);
  while (!St->Done)
    St->CV.wait(St->M);
  return St->Rep; // Published by the Done latch; see JobState::Rep.
}

void JobHandle::cancel() {
  if (St)
    St->Cancel.requestStop();
}

// --- SynthEngine ------------------------------------------------------------

SynthEngine::SynthEngine(EngineOptions InitOpts) : Opts(std::move(InitOpts)) {
  Workers = Opts.NumWorkers;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  Cache = Opts.Cache ? Opts.Cache : std::make_shared<ResultCache>();
  if (Opts.SharedLearning)
    Learn = Opts.Learning ? Opts.Learning
                          : std::make_shared<ConstraintStore>();

  // Surface this engine's caches in metrics snapshots (pull-based; the
  // callbacks sample CacheStats at snapshot time). Weak captures: a
  // snapshot taken between our destructor's unregister and a racing
  // provider copy must not resurrect a dying cache.
  auto Sample = [](const CacheStats &St) {
    obs::CacheSample S;
    S.Hits = St.Hits;
    S.Misses = St.Misses;
    S.Evictions = St.Evictions;
    S.Entries = St.Entries;
    return S;
  };
  std::weak_ptr<ResultCache> WC = Cache;
  CacheStatsToken = obs::MetricsRegistry::instance().registerCacheStats(
      "engine.result_cache", [WC, Sample]() -> obs::CacheSample {
        if (auto C = WC.lock())
          return Sample(C->stats());
        return {};
      });
  if (Learn) {
    std::weak_ptr<ConstraintStore> WL = Learn;
    LearnStatsToken = obs::MetricsRegistry::instance().registerCacheStats(
        "engine.constraint_store", [WL, Sample]() -> obs::CacheSample {
          if (auto L = WL.lock())
            return Sample(L->stats());
          return {};
        });
  }
  if (!Opts.TraceFile.empty())
    obs::setTracing(true);

  Pool.reserve(Workers);
  // Workers spawn lazily in submit(): a 1-job batch costs one thread no
  // matter how wide the machine is.
}

SynthEngine::~SynthEngine() {
  {
    MutexLock Lock(QueueMutex);
    ShuttingDown = true;
  }
  QueueCV.notify_all();
  for (std::thread &T : Pool)
    T.join();

  // Complete whatever never ran so outstanding handles unblock.
  std::deque<std::shared_ptr<detail::JobState>> Orphans;
  {
    MutexLock Lock(QueueMutex);
    Orphans.swap(Queue);
  }
  for (const std::shared_ptr<detail::JobState> &St : Orphans) {
    SynthReport Rep;
    Rep.JobIndex = St->Index;
    Rep.JobName = St->Job.Name;
    Rep.Result.Status = SynthStatus::Aborted;
    {
      MutexLock Lock(St->M);
      St->Rep = std::move(Rep);
      St->Done = true;
    }
    St->CV.notify_all();
  }

  obs::MetricsRegistry::instance().unregisterCacheStats(CacheStatsToken);
  obs::MetricsRegistry::instance().unregisterCacheStats(LearnStatsToken);
  if (!Opts.TraceFile.empty())
    obs::writeChromeTrace(Opts.TraceFile); // Best-effort; see Engine.h.
}

JobHandle SynthEngine::submit(SynthJob Job) {
  auto St = std::make_shared<detail::JobState>();
  St->Job = std::move(Job);
  bool Rejected = false;
  {
    MutexLock Lock(QueueMutex);
    St->Index = NextIndex++;
    if (ShuttingDown) {
      Rejected = true;
    } else {
      St->EnqueuedNs = obs::nowNs();
      Queue.push_back(St);
      // Grow the pool only when the backlog exceeds the idle workers;
      // see IdleWorkers in Engine.h.
      if (Pool.size() < Workers && Queue.size() > IdleWorkers)
        Pool.emplace_back([this] { workerLoop(); });
    }
  }
  if (Rejected) {
    MutexLock Lock(St->M);
    St->Rep.JobIndex = St->Index;
    St->Rep.JobName = St->Job.Name;
    St->Rep.Result.Status = SynthStatus::Aborted;
    St->Done = true;
  } else {
    QueueCV.notify_one();
  }
  return JobHandle(St);
}

void SynthEngine::workerLoop() {
  for (;;) {
    std::shared_ptr<detail::JobState> St;
    {
      MutexLock Lock(QueueMutex);
      ++IdleWorkers;
      // An explicit loop (not a predicate lambda): the analysis checks
      // these guarded reads against the held QueueMutex, which it cannot
      // do through a closure.
      while (!ShuttingDown && Queue.empty())
        QueueCV.wait(QueueMutex);
      --IdleWorkers;
      if (ShuttingDown)
        return; // Destructor drains what is left.
      St = std::move(Queue.front());
      Queue.pop_front();
    }
    executeJob(*St);
  }
}

void SynthEngine::executeJob(detail::JobState &St) {
  // Always-on per-job metrics: a handful of relaxed atomic ops per job,
  // invisible next to a synthesis run (per-call metrics live behind
  // obs::detailEnabled() instead).
  obs::MetricsRegistry &MR = obs::MetricsRegistry::instance();
  static obs::Histogram &QueueWait = MR.histogram("engine.queue_wait_ns");
  static obs::Histogram &JobLatency = MR.histogram("engine.job_ns");
  static obs::Counter &JobsDone = MR.counter("engine.jobs_completed");
  static obs::Counter &JobsCached = MR.counter("engine.jobs_from_cache");
  uint64_t QueueNs = St.EnqueuedNs ? obs::nowNs() - St.EnqueuedNs : 0;
  if (St.EnqueuedNs)
    QueueWait.record(QueueNs);

  obs::TraceSpan Span("engine.job");
  Timer JobClock;
  StopToken Stop = anyToken(Opts.Stop, St.Cancel.token());

  SynthReport Rep;
  Rep.JobIndex = St.Index;
  Rep.JobName = St.Job.Name;

  if (Stop.stopRequested()) {
    // Cancelled while queued: report without running (and without
    // touching the cache — an aborted job says nothing about the
    // instance).
    Rep.Result.Status = SynthStatus::Aborted;
  } else if (Opts.CacheResults) {
    Digest Key = digestOf(St.Job);
    if (std::optional<CachedJobResult> Hit = Cache->lookup(Key)) {
      assert((Hit->Result.Status != SynthStatus::Aborted ||
              Hit->Result.Stats.ExhaustedUnits > 0) &&
             "non-budget aborted result found in the cache");
      Rep.Result = std::move(Hit->Result);
      Rep.Winner = std::move(Hit->Winner);
      Rep.FromCache = true;
      Rep.Seconds = JobClock.seconds();
    } else {
      Rep = runOneJob(St.Job, St.Index, Stop);
      // The one store site, and the invariant's enforcement point:
      // cacheableReport() admits completed verdicts and deterministic
      // budget aborts, and rejects everything timing-shaped.
      // Interrupted Successes are excluded because a cancel or wall
      // expiry observed mid-race may have abandoned a unit that would
      // outrank the recorded winner — the sequence is timing-tainted
      // and must not be served as the job's canonical answer (a cancel
      // that raced completion and was never observed leaves the flag
      // clear — that result is the real, cacheable one). The shutdown
      // and queued-cancel paths report Aborted without reaching this
      // code at all.
      if (cacheableReport(Rep))
        Cache->store(Key, CachedJobResult{Rep.Result, Rep.Winner});
    }
  } else {
    Rep = runOneJob(St.Job, St.Index, Stop);
  }

  Rep.QueueSeconds = QueueNs / 1e9;
  JobsDone.add();
  if (Rep.FromCache)
    JobsCached.add();
  JobLatency.recordSeconds(JobClock.seconds());

  {
    MutexLock Lock(St.M);
    St.Rep = std::move(Rep);
    St.Done = true;
  }
  St.CV.notify_all();
}

SynthReport SynthEngine::runOneJob(const SynthJob &Job, size_t Index,
                                   const StopToken &Stop) const {
  Timer JobClock;
  SynthReport Rep;
  Rep.JobIndex = Index;
  Rep.JobName = Job.Name;

  std::vector<PortfolioMember> Members = normalizedPortfolio(Job);

  // One scenario digest serves every member's learning key; skip the
  // walk entirely when learning is off.
  const Digest ScenDigest = Learn ? digestOf(Job.S) : Digest{};

  std::vector<MemberOutcome> Outcomes(Members.size());

  // Learning-aware shedding: a member whose (scenario, granularity) key
  // holds an up-front UNSAT proof in the constraint store is answered
  // from the proof instead of raced. Gated so the fabricated outcome
  // provably matches what a standalone run would return: Impossible is
  // a ground fact of (scenario, granularity) — every complete search
  // reaches it regardless of knobs or backend — so only members that
  // might not *complete* (a check budget could report Aborted, a soft
  // wall could interrupt) or might not run at all (unknown backend, a
  // private store this engine cannot speak for) are excluded. A member
  // that switched conflict-driven learning off (ClauseMinimization
  // false) opts out of proof *reuse* as well — its own runs still
  // publish — so knob-off runs measure the full standalone search the
  // knob comparison needs.
  std::vector<uint8_t> Shed(Members.size(), 0);
  if (Learn) {
    for (size_t I = 0; I != Members.size(); ++I) {
      const PortfolioMember &M = Members[I];
      if (!M.Opts.ClauseMinimization || M.Opts.Learning ||
          M.Opts.MaxCheckCalls > 0 || M.Opts.UnitCheckCalls > 0 ||
          M.Opts.TimeoutSeconds > 0.0 ||
          !BackendFactory::instance().known(M.Backend))
        continue;
      if (!Learn->knownImpossible(
              ConstraintStore::keyFor(ScenDigest, M.Opts.RuleGranularity)))
        continue;
      Shed[I] = 1;
      Outcomes[I].Name = memberDisplayName(M);
      Outcomes[I].Status = SynthStatus::Impossible;
      Outcomes[I].Stats.ShedMembers = 1;
      Outcomes[I].Result.Status = SynthStatus::Impossible;
      Outcomes[I].Result.Stats = Outcomes[I].Stats;
    }
  }

  if (Members.size() == 1) {
    if (!Shed[0])
      Outcomes[0] = runMember(Job.S, ScenDigest, Members[0], Stop,
                              StopToken(), Opts.IntraJobShards, Learn);
  } else {
    // Race: first Success fires the shared source; everyone also honours
    // the external (batch + per-job) token.
    StopSource Race;
    StopToken RaceStop = Race.token();
    StopToken MemberStop = anyToken(Stop, RaceStop);
    std::vector<std::thread> Threads;
    Threads.reserve(Members.size());
    for (size_t I = 0; I != Members.size(); ++I) {
      if (Shed[I])
        continue;
      Threads.emplace_back([&, I] {
        Outcomes[I] = runMember(Job.S, ScenDigest, Members[I], MemberStop,
                                RaceStop, Opts.IntraJobShards, Learn);
        if (Outcomes[I].Status == SynthStatus::Success)
          Race.requestStop();
      });
    }
    for (std::thread &T : Threads)
      T.join();
  }

  // Deterministic winner: best verdict rank, lowest member index.
  size_t Best = 0;
  for (size_t I = 1; I != Outcomes.size(); ++I)
    if (statusRank(Outcomes[I].Status) > statusRank(Outcomes[Best].Status))
      Best = I;
  Rep.Winner = Outcomes[Best].Name;
  Rep.Result = std::move(Outcomes[Best].Result);

  for (MemberOutcome &O : Outcomes)
    O.Result = SynthResult(); // Commands live in Rep.Result only.
  Rep.Members = std::move(Outcomes);
  Rep.Seconds = JobClock.seconds();
  return Rep;
}

BatchReport SynthEngine::run(const std::vector<SynthJob> &Jobs) {
  Timer Clock;
  BatchReport Rep;
  Rep.NumWorkers = Workers;
  Rep.Reports.reserve(Jobs.size());
  if (Jobs.empty())
    return Rep;

  std::vector<JobHandle> Handles;
  Handles.reserve(Jobs.size());
  for (const SynthJob &Job : Jobs)
    Handles.push_back(submit(Job));

  for (size_t I = 0; I != Handles.size(); ++I) {
    SynthReport R = Handles[I].wait();
    R.JobIndex = I; // Batch-relative, independent of other clients.
    Rep.Reports.push_back(std::move(R));
  }

  for (const SynthReport &R : Rep.Reports) {
    Rep.Merged.mergeFrom(R.Result.Stats);
    for (const MemberOutcome &O : R.Members)
      Rep.TotalQueries += O.Queries;
    if (R.FromCache)
      ++Rep.EngineCacheHits;
    else if (Opts.CacheResults && !R.Members.empty())
      ++Rep.EngineCacheMisses; // Executed after a lookup failed;
                               // cache-off runs and aborted-unrun jobs
                               // are neither hits nor misses.
  }
  Rep.WallSeconds = Clock.seconds();
  return Rep;
}
