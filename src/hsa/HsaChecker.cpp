//===- hsa/HsaChecker.cpp - NetPlumber-substitute backend ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "hsa/HsaChecker.h"

#include <cassert>

using namespace netupd;

CheckResult HsaChecker::bindImpl(KripkeStructure &Structure, Formula) {
  K = &Structure;
  UndoStack.clear();
  Engine = std::make_unique<Plumber>(K->topology(), K->config(),
                                     K->classes(), Probes);
  ++Queries;
  CheckResult R;
  R.Holds = Engine->allProbesPass();
  return R;
}

CheckResult HsaChecker::recheckImpl(const UpdateInfo &Update) {
  assert(K && Engine && "recheck before bind");
  assert(Update.OldTable && "need the pre-update table for rollback");
  UndoStack.emplace_back(Update.Sw, *Update.OldTable);
  Engine->updateSwitch(Update.Sw, K->config().table(Update.Sw));
  ++Queries;
  CheckResult R;
  R.Holds = Engine->allProbesPass();
  return R; // No counterexamples, like NetPlumber.
}

void HsaChecker::notifyRollback() {
  assert(!UndoStack.empty() && "rollback without a matching recheck");
  auto [Sw, OldTable] = std::move(UndoStack.back());
  UndoStack.pop_back();
  Engine->updateSwitch(Sw, OldTable);
}

std::vector<ProbeSpec>
HsaChecker::probesFromScenario(const Scenario &S) {
  std::vector<ProbeSpec> Probes;
  for (unsigned I = 0; I != S.Flows.size(); ++I) {
    const FlowSpec &F = S.Flows[I];
    ProbeSpec P;
    P.ClassIdx = I;
    P.SrcPort = F.SrcPort;
    P.DstPort = F.DstPort;
    switch (S.Kind) {
    case PropertyKind::Reachability:
      P.K = ProbeSpec::Kind::Reachability;
      break;
    case PropertyKind::Waypoint:
      P.K = ProbeSpec::Kind::Waypoint;
      P.Waypoints = F.Waypoints;
      break;
    case PropertyKind::ServiceChain:
      P.K = ProbeSpec::Kind::ServiceChain;
      P.Waypoints = F.Waypoints;
      break;
    }
    Probes.push_back(std::move(P));
  }
  return Probes;
}
