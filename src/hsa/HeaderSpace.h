//===- hsa/HeaderSpace.h - Ternary header-space algebra --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Header-space analysis primitives [Kazemian et al., NSDI'12] used by the
/// NetPlumber-substitute backend: packet headers encoded as fixed-width
/// bit vectors and rule matches as ternary (0/1/x) patterns, here packed
/// into a (bits, mask) pair per 24-bit header.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_HSA_HEADERSPACE_H
#define NETUPD_HSA_HEADERSPACE_H

#include "net/Packet.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace netupd {

/// Total bit width of the encoded header.
inline constexpr unsigned HeaderWidth = NumFields * FieldBits;

/// Packs a header into its bit-vector encoding (field values must fit in
/// FieldBits bits).
inline uint32_t encodeHeader(const Header &H) {
  uint32_t Bits = 0;
  for (unsigned I = 0; I != NumFields; ++I) {
    assert(H.Values[I] < (1u << FieldBits) &&
           "field value exceeds header-space field width");
    Bits |= (H.Values[I] & ((1u << FieldBits) - 1)) << (I * FieldBits);
  }
  return Bits;
}

/// A ternary match: Mask bit 1 means the corresponding Bits bit is
/// significant, 0 means wildcard.
struct TernaryMatch {
  uint32_t Bits = 0;
  uint32_t Mask = 0;

  /// The all-wildcard match.
  static TernaryMatch wildcard() { return TernaryMatch(); }

  /// The exact match of one concrete header.
  static TernaryMatch ofHeader(const Header &H) {
    TernaryMatch M;
    M.Bits = encodeHeader(H);
    M.Mask = (HeaderWidth == 32) ? ~0u : ((1u << HeaderWidth) - 1);
    return M;
  }

  /// The ternary encoding of a rule pattern's header part (the in-port
  /// constraint is handled separately by the plumbing graph).
  static TernaryMatch ofPattern(const Pattern &P) {
    TernaryMatch M;
    for (unsigned I = 0; I != NumFields; ++I) {
      if (!P.Values[I])
        continue;
      assert(*P.Values[I] < (1u << FieldBits) &&
             "pattern value exceeds header-space field width");
      uint32_t FieldMask = ((1u << FieldBits) - 1) << (I * FieldBits);
      M.Mask |= FieldMask;
      M.Bits |= (*P.Values[I] << (I * FieldBits)) & FieldMask;
    }
    return M;
  }

  /// True if the two ternary expressions share at least one header.
  bool overlaps(const TernaryMatch &O) const {
    return ((Bits ^ O.Bits) & Mask & O.Mask) == 0;
  }

  /// The intersection; std::nullopt when disjoint.
  std::optional<TernaryMatch> intersect(const TernaryMatch &O) const {
    if (!overlaps(O))
      return std::nullopt;
    TernaryMatch M;
    M.Mask = Mask | O.Mask;
    M.Bits = (Bits & Mask) | (O.Bits & O.Mask);
    return M;
  }

  /// True if every header in \p Cube is matched by *this (i.e. *this is a
  /// superset of Cube).
  bool covers(const TernaryMatch &Cube) const {
    // Every significant bit of *this must be significant and equal in
    // Cube.
    if ((Mask & ~Cube.Mask) != 0)
      return false;
    return ((Bits ^ Cube.Bits) & Mask) == 0;
  }

  /// True for a concrete (fully-specified) cube.
  bool concrete() const {
    uint32_t Full = (HeaderWidth == 32) ? ~0u : ((1u << HeaderWidth) - 1);
    return (Mask & Full) == Full;
  }

  /// True if the concrete header \p H lies inside this match.
  bool containsHeader(const Header &H) const {
    return ((Bits ^ encodeHeader(H)) & Mask) == 0;
  }

  friend bool operator==(const TernaryMatch &A, const TernaryMatch &B) {
    return A.Bits == B.Bits && A.Mask == B.Mask;
  }
};

/// The difference A \ B as a disjoint union of cubes (at most one per
/// significant bit of B) — the core HSA set operation, used to route the
/// header space left over after each higher-priority rule.
inline std::vector<TernaryMatch> subtractCube(const TernaryMatch &A,
                                              const TernaryMatch &B) {
  // Bits where both care but disagree: disjoint, nothing to subtract.
  if (!A.overlaps(B))
    return {A};
  std::vector<TernaryMatch> Pieces;
  TernaryMatch Cur = A;
  uint32_t Full = (HeaderWidth == 32) ? ~0u : ((1u << HeaderWidth) - 1);
  for (unsigned Bit = 0; Bit != HeaderWidth; ++Bit) {
    uint32_t M = 1u << Bit;
    if (!(B.Mask & M & Full) || (A.Mask & M))
      continue; // B wildcards this bit, or A already pins it (and agrees).
    // Split Cur on this bit: the half disagreeing with B is outside B.
    TernaryMatch Out = Cur;
    Out.Mask |= M;
    Out.Bits = (Cur.Bits & ~M) | (~B.Bits & M);
    Pieces.push_back(Out);
    Cur.Mask |= M;
    Cur.Bits = (Cur.Bits & ~M) | (B.Bits & M);
  }
  // Cur is now A intersect B and is dropped.
  return Pieces;
}

} // namespace netupd

#endif // NETUPD_HSA_HEADERSPACE_H
