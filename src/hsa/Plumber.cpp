//===- hsa/Plumber.cpp - Incremental plumbing-graph checker ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "hsa/Plumber.h"

#include <algorithm>
#include <cassert>

using namespace netupd;

namespace {

/// Applies a rule's SetField actions to a cube as forwarded out
/// \p OutPort (rewrites listed before the forward apply to it).
TernaryMatch rewriteCube(const TernaryMatch &Cube,
                         const std::vector<Action> &Actions,
                         PortId OutPort) {
  TernaryMatch Out = Cube;
  for (const Action &A : Actions) {
    if (A.K == Action::Kind::Forward) {
      if (A.OutPort == OutPort)
        return Out;
      continue;
    }
    unsigned Shift = static_cast<unsigned>(A.F) * FieldBits;
    uint32_t FieldMask = ((1u << FieldBits) - 1) << Shift;
    Out.Bits = (Out.Bits & ~FieldMask) | ((A.Value << Shift) & FieldMask);
    Out.Mask |= FieldMask;
  }
  return Out;
}

} // namespace

Plumber::Plumber(const Topology &Topo, const Config &Cfg,
                 std::vector<TrafficClass> Classes,
                 std::vector<ProbeSpec> Probes)
    : Topo(Topo), Classes(std::move(Classes)), Probes(std::move(Probes)) {
  SwitchRules.resize(Topo.numSwitches());
  for (SwitchId Sw = 0; Sw != Topo.numSwitches(); ++Sw)
    updateSwitch(Sw, Cfg.table(Sw));

  // Source nodes: the full header space enters at every ingress, exactly
  // as NetPlumber injects wildcarded flows at its source nodes.
  for (const Location &In : Topo.ingressLocations()) {
    FlowNode Root;
    Root.Sw = In.Switch;
    Root.Pt = In.Port;
    Root.Cube = TernaryMatch::wildcard();
    Flows.push_back(Root);
    Roots.push_back(static_cast<int>(Flows.size()) - 1);
    expandFlow(Roots.back());
  }
}

bool Plumber::onPath(int Idx, SwitchId Sw) const {
  for (int Cur = Idx; Cur >= 0; Cur = Flows[static_cast<size_t>(Cur)].Parent)
    if (!Flows[static_cast<size_t>(Cur)].Egress &&
        Flows[static_cast<size_t>(Cur)].Sw == Sw)
      return true;
  return false;
}

void Plumber::forwardPiece(int Idx, const RuleNode &Rule,
                           const TernaryMatch &Piece, PortId Out) {
  const Location *Dst =
      Topo.linkFrom(Flows[static_cast<size_t>(Idx)].Sw, Out);
  if (!Dst)
    return; // Unwired port: the piece vanishes (drop).
  TernaryMatch Rewritten = rewriteCube(Piece, Rule.ActionList, Out);

  FlowNode Child;
  Child.Parent = Idx;
  Child.Cube = Rewritten;
  if (Dst->isHost()) {
    Child.Sw = Flows[static_cast<size_t>(Idx)].Sw;
    Child.Pt = Out;
    Child.Egress = true;
  } else {
    if (onPath(Idx, Dst->Switch)) {
      Flows[static_cast<size_t>(Idx)].Looped = true;
      return;
    }
    Child.Sw = Dst->Switch;
    Child.Pt = Dst->Port;
  }

  int ChildIdx;
  if (!FreeFlowSlots.empty()) {
    ChildIdx = FreeFlowSlots.back();
    FreeFlowSlots.pop_back();
    Flows[static_cast<size_t>(ChildIdx)] = Child;
  } else {
    Flows.push_back(Child);
    ChildIdx = static_cast<int>(Flows.size()) - 1;
  }
  Flows[static_cast<size_t>(Idx)].Children.push_back(ChildIdx);
  if (!Child.Egress)
    expandFlow(ChildIdx);
}

void Plumber::expandFlow(int Idx) {
  ++FlowOps;
  if (Flows[static_cast<size_t>(Idx)].Egress)
    return;
  Flows[static_cast<size_t>(Idx)].Looped = false;

  // Copy out what we need: expanding children may reallocate Flows.
  SwitchId Sw = Flows[static_cast<size_t>(Idx)].Sw;
  PortId Pt = Flows[static_cast<size_t>(Idx)].Pt;
  TernaryMatch Cube = Flows[static_cast<size_t>(Idx)].Cube;

  // Walk the rules in priority order, forwarding each intersected piece
  // of the remaining space and keeping what is left; leftovers at the end
  // are dropped at this node.
  // SwitchRules is not touched by recursive expansion, so a reference is
  // safe (only Flows reallocates).
  std::vector<TernaryMatch> Remaining = {Cube};
  const std::vector<RuleNode> &Rules = SwitchRules[Sw];
  for (const RuleNode &R : Rules) {
    if (Remaining.empty())
      break;
    if (R.InPort && *R.InPort != Pt)
      continue;
    std::vector<TernaryMatch> Next;
    for (const TernaryMatch &Piece : Remaining) {
      ++PipeOps;
      std::optional<TernaryMatch> Hit = Piece.intersect(R.Match);
      if (!Hit) {
        Next.push_back(Piece);
        continue;
      }
      for (PortId Out : R.OutPorts)
        forwardPiece(Idx, R, *Hit, Out);
      std::vector<TernaryMatch> Rest = subtractCube(Piece, R.Match);
      Next.insert(Next.end(), Rest.begin(), Rest.end());
    }
    Remaining = std::move(Next);
  }
}

void Plumber::pruneSubtree(int Idx) {
  FlowNode &Node = Flows[static_cast<size_t>(Idx)];
  std::vector<int> Children = std::move(Node.Children);
  Node.Children.clear();
  Node.Looped = false;
  for (int Child : Children) {
    pruneSubtree(Child);
    Flows[static_cast<size_t>(Child)].Parent = -2; // Dead marker.
    FreeFlowSlots.push_back(Child);
  }
}

void Plumber::updateSwitch(SwitchId Sw, const Table &NewTable) {
  // Rebuild the rule nodes of this switch.
  std::vector<RuleNode> Rules;
  for (const Rule &R : NewTable.rules()) {
    RuleNode N;
    N.Priority = R.Priority;
    N.InPort = R.Pat.InPort;
    N.Match = TernaryMatch::ofPattern(R.Pat);
    N.ActionList = R.Actions;
    for (const Action &A : R.Actions)
      if (A.K == Action::Kind::Forward)
        N.OutPorts.push_back(A.OutPort);
    Rules.push_back(std::move(N));
  }
  std::stable_sort(Rules.begin(), Rules.end(),
                   [](const RuleNode &A, const RuleNode &B) {
                     return A.Priority > B.Priority;
                   });
  SwitchRules[Sw] = std::move(Rules);

  // Pipe recomputation: each new rule's output ports are matched against
  // the neighbouring switches' rules, as NetPlumber does when wiring rule
  // nodes into the plumbing graph.
  for (const RuleNode &R : SwitchRules[Sw]) {
    for (PortId Out : R.OutPorts) {
      const Location *Dst = Topo.linkFrom(Sw, Out);
      if (!Dst || Dst->isHost())
        continue;
      for (const RuleNode &Peer : SwitchRules[Dst->Switch]) {
        ++PipeOps;
        (void)R.Match.overlaps(Peer.Match);
      }
    }
  }

  // Re-propagate every flow subtree rooted at this switch.
  std::vector<int> Affected;
  for (int Idx = 0; Idx != static_cast<int>(Flows.size()); ++Idx) {
    const FlowNode &Node = Flows[static_cast<size_t>(Idx)];
    if (Node.Parent != -2 && !Node.Egress && Node.Sw == Sw)
      Affected.push_back(Idx);
  }
  for (int Idx : Affected) {
    // A node pruned as the descendant of an earlier affected node is
    // gone (cannot happen on loop-free paths, but stay defensive).
    if (Flows[static_cast<size_t>(Idx)].Parent == -2)
      continue;
    pruneSubtree(Idx);
    expandFlow(Idx);
  }
}

void Plumber::followHeader(int Idx, const Header &Hdr,
                           std::vector<int> &Path,
                           std::vector<std::vector<int>> &Paths) const {
  Path.push_back(Idx);
  const FlowNode &Node = Flows[static_cast<size_t>(Idx)];
  bool AnyChild = false;
  for (int Child : Node.Children) {
    if (!Flows[static_cast<size_t>(Child)].Cube.containsHeader(Hdr))
      continue;
    AnyChild = true;
    followHeader(Child, Hdr, Path, Paths);
  }
  if (!AnyChild)
    Paths.push_back(Path); // Delivered (egress) or dropped here.
  Path.pop_back();
}

bool Plumber::probePasses(const ProbeSpec &Probe) {
  const Header &Hdr = Classes[Probe.ClassIdx].Hdr;
  for (int Root : Roots) {
    const FlowNode &RootNode = Flows[static_cast<size_t>(Root)];
    if (RootNode.Pt != Probe.SrcPort ||
        !RootNode.Cube.containsHeader(Hdr))
      continue;

    std::vector<std::vector<int>> Paths;
    std::vector<int> Scratch;
    followHeader(Root, Hdr, Scratch, Paths);
    for (const std::vector<int> &Path : Paths) {
      const FlowNode &Leaf = Flows[static_cast<size_t>(Path.back())];
      if (!Leaf.Egress || Leaf.Pt != Probe.DstPort)
        return false; // Dropped, looped away, or misdelivered.

      if (Probe.K == ProbeSpec::Kind::Reachability)
        continue;

      // Check waypoint visiting order along the switch path.
      size_t Expected = 0;
      for (int NodeIdx : Path) {
        const FlowNode &Node = Flows[static_cast<size_t>(NodeIdx)];
        if (Node.Egress)
          continue;
        for (size_t W = Expected; W != Probe.Waypoints.size(); ++W) {
          if (Probe.Waypoints[W] != Node.Sw)
            continue;
          if (W != Expected)
            return false; // Visited a later waypoint ahead of turn.
          ++Expected;
          break;
        }
      }
      if (Expected != Probe.Waypoints.size())
        return false; // Some waypoint was skipped.
    }
  }
  return true;
}

bool Plumber::allProbesPass() {
  // Any forwarding loop rejects the configuration outright, matching the
  // tool's behaviour (§3.2).
  for (const FlowNode &Node : Flows)
    if (Node.Parent != -2 && Node.Looped)
      return false;
  for (const ProbeSpec &Probe : Probes)
    if (!probePasses(Probe))
      return false;
  return true;
}
