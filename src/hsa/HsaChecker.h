//===- hsa/HsaChecker.h - NetPlumber-substitute backend --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts the Plumber engine to the CheckerBackend interface the
/// synthesizer drives. Unlike the LTL checkers, the probe language covers
/// exactly the property families of §6 (reachability, waypointing,
/// service chaining) — the probes are supplied up front (usually derived
/// from a Scenario) and the LTL formula passed to bind() is unused. Like
/// NetPlumber, the backend produces no counterexamples, so the
/// synthesizer cannot learn from failures when driving it (§6 notes this
/// disadvantage in the end-to-end comparison).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_HSA_HSACHECKER_H
#define NETUPD_HSA_HSACHECKER_H

#include "hsa/Plumber.h"
#include "mc/CheckerBackend.h"
#include "topo/Scenario.h"

#include <memory>

namespace netupd {

/// The NetPlumber-substitute backend; see file comment.
class HsaChecker : public CheckerBackend {
public:
  explicit HsaChecker(std::vector<ProbeSpec> Probes)
      : Probes(std::move(Probes)) {}

  void notifyRollback() override;
  bool providesCounterexamples() const override { return false; }
  const char *name() const override { return "NetPlumber"; }

  /// Work counters of the underlying engine.
  uint64_t numPipeComputations() const {
    return Engine ? Engine->numPipeComputations() : 0;
  }
  uint64_t numFlowExpansions() const {
    return Engine ? Engine->numFlowExpansions() : 0;
  }

  /// Derives the probe specs describing a scenario's property.
  static std::vector<ProbeSpec> probesFromScenario(const Scenario &S);

protected:
  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override;
  CheckResult recheckImpl(const UpdateInfo &Update) override;

private:
  std::vector<ProbeSpec> Probes;
  std::unique_ptr<Plumber> Engine;
  KripkeStructure *K = nullptr;
  /// (switch, pre-update table) stack for rollbacks.
  std::vector<std::pair<SwitchId, Table>> UndoStack;
};

} // namespace netupd

#endif // NETUPD_HSA_HSACHECKER_H
