//===- hsa/Plumber.h - Incremental plumbing-graph checker ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A NetPlumber-style incremental network checker [Kazemian et al.,
/// NSDI'13], the substitute for the paper's NetPlumber backend (§6):
///
///  - forwarding rules become nodes of a *plumbing graph*; a pipe connects
///    rule a to switch s' when a forwards out a port linked to s' and the
///    header spaces can overlap;
///  - *flows* (header-space cubes with their paths) are injected at the
///    ingress ports and propagated through matching rules, forming a flow
///    tree per traffic class;
///  - rule insertions/removals update the graph and re-propagate only the
///    flow subtrees crossing the changed switch;
///  - *probe* predicates over the flow paths answer reachability,
///    waypointing, and service-chaining questions.
///
/// Like NetPlumber, the engine reports violations without
/// counterexamples, and its update cost scales with the number of rules
/// touched and the size of the affected flow subtrees (the rule-count
/// trend of Fig. 7(d-f)).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_HSA_PLUMBER_H
#define NETUPD_HSA_PLUMBER_H

#include "hsa/HeaderSpace.h"
#include "net/Config.h"
#include "net/Topology.h"

#include <cstdint>
#include <vector>

namespace netupd {

/// A path predicate evaluated over the flow tree of one traffic class.
struct ProbeSpec {
  enum class Kind : uint8_t { Reachability, Waypoint, ServiceChain };

  Kind K = Kind::Reachability;
  unsigned ClassIdx = 0;
  PortId SrcPort = InvalidPort;
  PortId DstPort = InvalidPort;
  /// For Waypoint (size 1) and ServiceChain (ordered).
  std::vector<SwitchId> Waypoints;
};

/// The incremental checker; see file comment.
class Plumber {
public:
  Plumber(const Topology &Topo, const Config &Cfg,
          std::vector<TrafficClass> Classes, std::vector<ProbeSpec> Probes);

  /// Replaces the rules of one switch, updating pipes and re-propagating
  /// the affected flow subtrees. Cost is proportional to the rules of the
  /// switch and its neighbours plus the size of the re-propagated
  /// subtrees.
  void updateSwitch(SwitchId Sw, const Table &NewTable);

  /// Evaluates every probe; true iff all pass and no class loops.
  bool allProbesPass();

  /// Work counters for the §6 micro-comparison.
  uint64_t numPipeComputations() const { return PipeOps; }
  uint64_t numFlowExpansions() const { return FlowOps; }

private:
  /// One rule node of the plumbing graph.
  struct RuleNode {
    uint32_t Priority = 0;
    std::optional<PortId> InPort;
    TernaryMatch Match;
    std::vector<PortId> OutPorts;
    std::vector<Action> ActionList; // For header rewrites along flows.
  };

  /// One node of a flow tree: a header-space cube located at a switch
  /// arrival port, or delivered at an egress (Egress=true). Headers of
  /// the cube with no matching child cube are dropped at this node.
  struct FlowNode {
    SwitchId Sw = 0;
    PortId Pt = InvalidPort;
    TernaryMatch Cube;
    int Parent = -1;
    std::vector<int> Children;
    bool Egress = false;
    bool Looped = false; // Expansion hit a forwarding loop here.
  };

  /// Expands flow node \p Idx (and recursively its descendants): walks
  /// the switch's rules in priority order, forwarding each intersected
  /// piece and subtracting it from the remaining space.
  void expandFlow(int Idx);

  /// Creates and expands the child of \p Idx produced by \p Rule
  /// forwarding cube \p Piece out \p Out.
  void forwardPiece(int Idx, const RuleNode &Rule, const TernaryMatch &Piece,
                    PortId Out);

  /// Deletes the descendants of flow node \p Idx (keeps the node).
  void pruneSubtree(int Idx);

  /// True if switch \p Sw appears on the path from the root to \p Idx.
  bool onPath(int Idx, SwitchId Sw) const;

  bool probePasses(const ProbeSpec &Probe);

  /// Follows header \p Hdr from \p Idx; appends every maximal node chain
  /// (multicast yields several) to \p Paths.
  void followHeader(int Idx, const Header &Hdr, std::vector<int> &Path,
                    std::vector<std::vector<int>> &Paths) const;

  const Topology &Topo;
  std::vector<TrafficClass> Classes;
  std::vector<ProbeSpec> Probes;

  /// Per-switch rule nodes, sorted by descending priority.
  std::vector<std::vector<RuleNode>> SwitchRules;

  std::vector<FlowNode> Flows;
  std::vector<int> FreeFlowSlots;
  std::vector<int> Roots; // One per (ingress, class).

  uint64_t PipeOps = 0;
  uint64_t FlowOps = 0;
};

} // namespace netupd

#endif // NETUPD_HSA_PLUMBER_H
