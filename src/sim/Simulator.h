//===- sim/Simulator.h - Operational-semantics executor --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A discrete-time executor of the paper's network model (Fig. 3): hosts
/// inject packets (IN), links carry them one hop per tick, switches apply
/// their forwarding tables (PROCESS/FORWARD), host-facing links deliver
/// (OUT), and a controller consumes a command queue (UPDATE/INCR/FLUSH).
///
/// The formal semantics is nondeterministic; the simulator fixes a fair
/// deterministic schedule (every tick advances every element once), which
/// suffices for the §2 experiments: it reproduces the transient packet
/// loss of naive updates (Fig. 2(a)) and the rule overheads of two-phase
/// updates (Fig. 2(b)), and it executes synthesized ordering updates with
/// waits. Switch updates take UpdateLatencyTicks to apply, modeling the
/// multi-millisecond rule-installation latency the paper cites [15, 22];
/// packets move one hop per tick, modeling the much faster transit time.
///
/// A "wait" command implements incr;flush: it bumps the epoch and blocks
/// the controller until every packet stamped with an older epoch has left
/// the network.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SIM_SIMULATOR_H
#define NETUPD_SIM_SIMULATOR_H

#include "net/Config.h"
#include "synth/Command.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace netupd {

/// An observation (sw, pt, pkt) from the operational semantics, recorded
/// at PROCESS and OUT transitions; sequences of these form single-packet
/// traces (Def. 1).
struct Observation {
  SwitchId Sw = 0;
  PortId Pt = InvalidPort;
  Header Hdr;
  bool IsOut = false; // True for the final OUT observation.
};

/// Simulator knobs.
struct SimParams {
  /// Ticks from issuing a switch update until the new table is live.
  unsigned UpdateLatencyTicks = 20;
};

/// The discrete-time network simulator.
class Simulator {
public:
  Simulator(const Topology &Topo, Config Cfg, SimParams P = {});

  /// Appends commands to the controller's queue; they execute in order,
  /// one at a time.
  void enqueueCommands(const CommandSeq &Cmds);

  /// Injects a packet from \p From into the network (the IN rule); it is
  /// stamped with the current epoch. \p PacketId tags the packet so its
  /// trace can be recovered.
  void injectPacket(HostId From, Header Hdr, uint64_t PacketId = 0);

  /// Advances the network by one tick.
  void step();

  /// Runs until no packets are in flight and no commands are pending, or
  /// until \p MaxTicks elapse. Returns true if quiescent.
  bool runToQuiescence(uint64_t MaxTicks = 100000);

  bool quiescent() const;
  uint64_t now() const { return Tick; }
  const Config &config() const { return Cfg; }

  /// One delivered packet.
  struct Delivery {
    HostId To = 0;
    Header Hdr;
    uint64_t PacketId = 0;
    uint64_t Tick = 0;
  };
  const std::vector<Delivery> &deliveries() const { return Delivered; }

  /// Number of packets dropped (no matching rule / unwired port).
  uint64_t droppedCount() const { return Dropped; }

  /// The maximum number of rules switch \p Sw has held at any time.
  size_t maxRulesSeen(SwitchId Sw) const { return MaxRules[Sw]; }

  /// The PROCESS/OUT observation sequence of packet \p PacketId, in
  /// order — a single-packet trace once the packet has left the network.
  std::vector<Observation> packetTrace(uint64_t PacketId) const;

private:
  struct InFlight {
    Header Hdr;
    unsigned Epoch = 0;
    uint64_t PacketId = 0;
    uint64_t ReadyTick = 0; // When it reaches the link's far end.
  };

  void processAtSwitch(SwitchId Sw, PortId InPort, const InFlight &Pkt);
  void controllerStep();

  const Topology &Topo;
  Config Cfg;
  SimParams P;

  /// Per-link packet queues, indexed like Topo.links().
  std::vector<std::deque<InFlight>> LinkQueues;
  /// Link index leaving each (switch port); -1 if none.
  std::vector<int> LinkFromPort;
  /// Link index from each host; -1 if none.
  std::vector<int> LinkFromHost;

  CommandSeq Pending;
  size_t NextCmd = 0;
  unsigned Epoch = 0;
  uint64_t UpdateDoneTick = 0; // Tick when the in-progress update lands.
  bool UpdateInProgress = false;
  bool WaitInProgress = false;

  uint64_t Tick = 0;
  uint64_t Dropped = 0;
  std::vector<Delivery> Delivered;
  std::vector<size_t> MaxRules;
  std::vector<std::pair<uint64_t, Observation>> Observations;
};

} // namespace netupd

#endif // NETUPD_SIM_SIMULATOR_H
