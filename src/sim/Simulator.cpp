//===- sim/Simulator.cpp - Operational-semantics executor ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <algorithm>
#include <cassert>

using namespace netupd;

Simulator::Simulator(const Topology &Topo, Config Cfg, SimParams P)
    : Topo(Topo), Cfg(std::move(Cfg)), P(P) {
  LinkQueues.resize(Topo.numLinks());
  LinkFromPort.assign(Topo.numPorts(), -1);
  LinkFromHost.assign(Topo.numHosts(), -1);
  for (unsigned I = 0; I != Topo.numLinks(); ++I) {
    const Link &L = Topo.links()[I];
    if (L.From.isHost())
      LinkFromHost[L.From.Host] = static_cast<int>(I);
    else
      LinkFromPort[L.From.Port] = static_cast<int>(I);
  }
  MaxRules.resize(Topo.numSwitches());
  for (SwitchId S = 0; S != Topo.numSwitches(); ++S)
    MaxRules[S] = this->Cfg.table(S).size();
}

void Simulator::enqueueCommands(const CommandSeq &Cmds) {
  Pending.insert(Pending.end(), Cmds.begin(), Cmds.end());
}

void Simulator::injectPacket(HostId From, Header Hdr, uint64_t PacketId) {
  int LinkIdx = LinkFromHost[From];
  assert(LinkIdx >= 0 && "host has no outgoing link");
  InFlight Pkt;
  Pkt.Hdr = Hdr;
  Pkt.Epoch = Epoch; // The IN rule stamps the current epoch.
  Pkt.PacketId = PacketId;
  Pkt.ReadyTick = Tick + 1;
  LinkQueues[static_cast<size_t>(LinkIdx)].push_back(Pkt);
}

void Simulator::processAtSwitch(SwitchId Sw, PortId InPort,
                                const InFlight &Pkt) {
  Observation Obs;
  Obs.Sw = Sw;
  Obs.Pt = InPort;
  Obs.Hdr = Pkt.Hdr;
  Observations.emplace_back(Pkt.PacketId, Obs);

  std::vector<Output> Outs = Cfg.table(Sw).apply(Pkt.Hdr, InPort);
  if (Outs.empty()) {
    ++Dropped;
    return;
  }
  for (const Output &O : Outs) {
    int LinkIdx = O.OutPort < LinkFromPort.size()
                      ? LinkFromPort[O.OutPort]
                      : -1;
    if (LinkIdx < 0) {
      ++Dropped; // Forwarded out an unwired port.
      continue;
    }
    InFlight Next = Pkt;
    Next.Hdr = O.Hdr;
    Next.ReadyTick = Tick + 1;
    // Egress observations (Def. 7's second case) are recorded when the
    // host end dequeues the packet, below in step().
    LinkQueues[static_cast<size_t>(LinkIdx)].push_back(Next);
  }
}

void Simulator::controllerStep() {
  if (UpdateInProgress) {
    if (Tick < UpdateDoneTick)
      return;
    const Command &C = Pending[NextCmd];
    Cfg.setTable(C.Sw, C.NewTable);
    MaxRules[C.Sw] = std::max(MaxRules[C.Sw], Cfg.table(C.Sw).size());
    UpdateInProgress = false;
    ++NextCmd;
    return;
  }
  if (WaitInProgress) {
    // FLUSH: block until no packet with an older epoch remains.
    for (const auto &Queue : LinkQueues)
      for (const InFlight &Pkt : Queue)
        if (Pkt.Epoch < Epoch)
          return;
    WaitInProgress = false;
    ++NextCmd;
    return;
  }
  if (NextCmd == Pending.size())
    return;
  const Command &C = Pending[NextCmd];
  if (C.K == Command::Kind::Wait) {
    ++Epoch; // INCR.
    WaitInProgress = true;
    return;
  }
  UpdateInProgress = true;
  UpdateDoneTick = Tick + P.UpdateLatencyTicks;
}

void Simulator::step() {
  ++Tick;
  controllerStep();

  // Move every packet whose hop completes this tick. Collect arrivals
  // first so packets forwarded this tick do not move twice.
  struct Arrival {
    unsigned LinkIdx;
    InFlight Pkt;
  };
  std::vector<Arrival> Arrivals;
  for (unsigned I = 0; I != LinkQueues.size(); ++I) {
    auto &Queue = LinkQueues[I];
    while (!Queue.empty() && Queue.front().ReadyTick <= Tick) {
      Arrivals.push_back(Arrival{I, Queue.front()});
      Queue.pop_front();
    }
  }

  for (const Arrival &A : Arrivals) {
    const Link &L = Topo.links()[A.LinkIdx];
    if (L.To.isHost()) {
      // OUT: record the egress observation and the delivery.
      Observation Obs;
      Obs.Sw = L.From.Switch;
      Obs.Pt = L.From.Port;
      Obs.Hdr = A.Pkt.Hdr;
      Obs.IsOut = true;
      Observations.emplace_back(A.Pkt.PacketId, Obs);
      Delivered.push_back(
          Delivery{L.To.Host, A.Pkt.Hdr, A.Pkt.PacketId, Tick});
    } else {
      processAtSwitch(L.To.Switch, L.To.Port, A.Pkt);
    }
  }
}

bool Simulator::quiescent() const {
  if (NextCmd != Pending.size() || UpdateInProgress || WaitInProgress)
    return false;
  for (const auto &Queue : LinkQueues)
    if (!Queue.empty())
      return false;
  return true;
}

bool Simulator::runToQuiescence(uint64_t MaxTicks) {
  for (uint64_t I = 0; I != MaxTicks; ++I) {
    if (quiescent())
      return true;
    step();
  }
  return quiescent();
}

std::vector<Observation> Simulator::packetTrace(uint64_t PacketId) const {
  std::vector<Observation> Out;
  for (const auto &[Id, Obs] : Observations)
    if (Id == PacketId)
      Out.push_back(Obs);
  return Out;
}
