//===- synth/EarlyTermination.h - SAT-based search cutoff ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The early-search-termination optimization of §4.2 (B). Every
/// counterexample observed during the DFS names a set of updated
/// operations U and not-yet-updated operations D whose combination is bad;
/// any correct total order must therefore update some d in D before some u
/// in U. These disjunctive precedence constraints accumulate in an
/// incremental SAT solver over "a before b" variables; when they become
/// unsatisfiable, no simple order exists and the search stops.
///
/// Soundness note: the ordering theory needs transitivity, which is cubic
/// in the number of mentioned operations. We add transitivity clauses only
/// while the mentioned set is small (TransitivityCap); beyond that the
/// encoding is a *relaxation* — it admits more orders than really exist —
/// so an UNSAT verdict remains a valid proof of impossibility, which is
/// the only verdict the search acts on.
///
/// Thread safety: one instance is shared by every shard of a sharded
/// search (constraints mined on any shard prove impossibility for all),
/// so addCexConstraint(), impossible(), and numClauses() serialize on an
/// internal mutex. The mutex is held across SAT solves — the one
/// unbounded-cost step — which blocks concurrent learners for the
/// duration; the search batches its impossible() checks (one per
/// EtCheckInterval failures per shard) precisely to keep that
/// serialization off the hot path. setStopToken() takes the same mutex,
/// so installing a token mid-flight (the seed-import path does this
/// between search phases) is safe too.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SYNTH_EARLYTERMINATION_H
#define NETUPD_SYNTH_EARLYTERMINATION_H

#include "engine/StopToken.h"
#include "sat/Solver.h"
#include "support/Bitset.h"
#include "support/ThreadAnnotations.h"

#include <map>
#include <vector>

namespace netupd {

/// Accumulates ordering constraints mined from counterexamples and decides
/// when they are jointly contradictory.
class EarlyTermination {
public:
  /// \p TransitivityCap bounds the mentioned-operation set for which full
  /// transitivity is encoded (see file comment). \p MaxClauseLits drops
  /// constraints whose |Updated| x |NotUpdated| disjunction would exceed
  /// the bound — another relaxation: large counterexamples (long paths)
  /// produce enormous clauses of little pruning value, and omitting them
  /// keeps the solver calls cheap without affecting soundness.
  /// The defaults keep the encoding small: clause count grows with the
  /// cube of TransitivityCap, and the search consults the solver after
  /// every learned constraint.
  explicit EarlyTermination(unsigned TransitivityCap = 16,
                            size_t MaxClauseLits = 1024)
      : TransitivityCap(TransitivityCap), MaxClauseLits(MaxClauseLits) {}

  /// Records the constraint from one counterexample: some operation of
  /// \p NotUpdated must precede some operation of \p Updated. An empty
  /// \p NotUpdated set means the final configuration itself is bad and no
  /// order can exist.
  void addCexConstraint(const std::vector<unsigned> &Updated,
                        const std::vector<unsigned> &NotUpdated);

  /// Records the ordering constraint encoded by one wrong-set entry in
  /// its (mask, value) form — the form the search's learnCex derives
  /// and the cross-job ConstraintStore persists: some masked-but-not-
  /// updated operation must precede some updated one. Converts and
  /// forwards to addCexConstraint, so imported and freshly-learned
  /// constraints take the identical path (size caps and the stop token
  /// included).
  void addMaskValueConstraint(const Bitset &Mask, const Bitset &Value);

  /// True when the accumulated constraints admit no total order; runs the
  /// incremental SAT solver. When the stop token has fired the solve is
  /// skipped and the cached verdict returned: the caller is about to
  /// abandon the search anyway, and SAT calls are the one unbounded-cost
  /// step in the learning path.
  bool impossible();

  /// Installs the cancellation token polled by impossible() and
  /// addCexConstraint(); an empty token (the default) never stops.
  /// Serialized on the same mutex as the learners, so it is safe at any
  /// point — the previous "call before any concurrent use" contract was
  /// an unguarded write racing the locked readers.
  void setStopToken(StopToken Token) {
    MutexLock Lock(M);
    Stop = std::move(Token);
  }

  uint64_t numClauses() const {
    MutexLock Lock(M);
    return Clauses;
  }

  /// Luby restarts the embedded solver performed across every solve so
  /// far (sat/Solver.h); surfaced for the conflict bench and the
  /// "synth.sat_restarts" observability counter.
  uint64_t numRestarts() const {
    MutexLock Lock(M);
    return Solver.numRestarts();
  }

private:
  /// The literal meaning "operation A is updated before operation B".
  sat::Lit before(unsigned A, unsigned B) NETUPD_REQUIRES(M);

  /// Registers \p Op as mentioned, emitting transitivity clauses against
  /// previously mentioned operations while under the cap.
  void mention(unsigned Op) NETUPD_REQUIRES(M);

  /// Serializes every member below; see the thread-safety note above.
  mutable Mutex M;
  sat::Solver Solver NETUPD_GUARDED_BY(M);
  StopToken Stop NETUPD_GUARDED_BY(M);
  std::map<std::pair<unsigned, unsigned>, sat::Var> PairVars
      NETUPD_GUARDED_BY(M);
  std::vector<unsigned> Mentioned NETUPD_GUARDED_BY(M);
  unsigned TransitivityCap;
  size_t MaxClauseLits;
  uint64_t Clauses NETUPD_GUARDED_BY(M) = 0;
  bool KnownImpossible NETUPD_GUARDED_BY(M) = false;
  bool Dirty NETUPD_GUARDED_BY(M) = false;  // New clauses since last solve.
  bool LastSat NETUPD_GUARDED_BY(M) = true; // Cached verdict.
};

} // namespace netupd

#endif // NETUPD_SYNTH_EARLYTERMINATION_H
