//===- synth/OrderUpdate.h - The ORDERUPDATE algorithm ---------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ORDERUPDATE (Fig. 4): counterexample-guided depth-first search over
/// simple update sequences, with the optimizations of §4.2:
///
///  (A) counterexample pruning — the V (visited) and W (wrong) sets over
///      configurations, where W entries are partial assignments to the
///      switches occurring in a counterexample trace;
///  (B) early search termination — ordering constraints mined from
///      counterexamples are fed to an incremental SAT solver
///      (synth/EarlyTermination.h); a contradiction stops the search;
///  (C) wait removal — a post-processing pass that drops waits shown
///      unnecessary by reachability analysis (synth/WaitRemoval.h).
///
/// Both granularities of §3.1 are supported: switch-granularity updates
/// replace a whole forwarding table; rule-granularity updates replace one
/// traffic class's rules on one switch, which succeeds on instances where
/// no switch-granularity order exists (Fig. 8(h)/(i)).
///
/// Sharded search: with SynthOptions::Shards > 1 (and a
/// ShardCheckerFactory to build per-shard checkers) the op-order tree is
/// prefix-split at depth one — every candidate first operation roots one
/// work unit — and the units are consumed by shard threads. Each shard
/// owns a private KripkeStructure and checker (the mutate/rollback
/// discipline stays strictly shard-local), while the pruning state is
/// global and monotone: the V set doubles as a claim map (exactly one
/// shard explores each configuration's subtree), W constraints and SAT
/// clauses mined anywhere prune everywhere, and the first shard to find
/// a sequence cancels its siblings through a StopToken. Feasibility
/// verdicts are scheduling-independent — Success iff a sequence exists,
/// Impossible only by exhaustion or SAT proof — though *which* correct
/// sequence is returned may vary with timing (same sequence class, not
/// the same sequence). See docs/ARCHITECTURE.md for the design.
///
/// Deterministic budgets: a finite check budget (MaxCheckCalls or
/// UnitCheckCalls) switches the search into deterministic budget mode.
/// The budget is carved into fixed per-work-unit quotas
/// (support/Budget.h), each unit explores with unit-local pruning state,
/// and the lowest-indexed successful unit supplies the result — so the
/// verdict AND the returned sequence are a pure function of (job,
/// budget), identical at every shard and worker count, Aborted verdicts
/// included. TimeoutSeconds is only a soft wall-clock hint that fires
/// between work units, never inside one; it is the single remaining
/// source of timing dependence and is excluded from job digests
/// (timeout-influenced runs are flagged Interrupted and never cached —
/// unlike pure quota-exhaustion Aborts, which are deterministic and are
/// replayed by the engine's result cache).
///
/// Cross-job learning: with SynthOptions::Learning set, the search seeds
/// its W set and SAT layer from the ConstraintStore before exploring and
/// publishes what it learned when it retires, so digest-identical
/// scenarios skip already-refuted prefixes without checker queries. The
/// seeding is verdict- and sequence-invariant (every imported entry is a
/// sound refutation; see docs/ARCHITECTURE.md) and never engages in
/// deterministic budget mode.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SYNTH_ORDERUPDATE_H
#define NETUPD_SYNTH_ORDERUPDATE_H

#include "engine/StopToken.h"
#include "mc/CheckerBackend.h"
#include "support/ConstraintStore.h"
#include "synth/Command.h"
#include "topo/Scenario.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace netupd {

/// Knobs for ORDERUPDATE; the defaults enable every optimization the
/// paper's tool uses. Disabling individual flags drives the ablation
/// benchmarks.
struct SynthOptions {
  bool CexPruning = true;
  bool EarlyTermination = true;
  bool WaitRemoval = true;
  bool RuleGranularity = false;
  /// Conflict clause minimization: every learned (mask, value)
  /// refutation is greedily shrunk to a smaller still-refuted core by
  /// resolving it against previously learned entries (self-subsumption;
  /// checker-free, each dropped mask bit is justified by a witness
  /// entry covering the opposite value of that bit). Smaller masks
  /// refute strictly more configurations, so the W set prunes more per
  /// entry and exported clauses seed later runs harder. The witness
  /// scan is bounded by a fixed deterministic budget per learned entry,
  /// so in budget mode the minimized clause — and hence the charge
  /// sequence — stays a pure function of (job, budget). Because
  /// minimization can change *which* configurations are pruned (and so
  /// the budget-mode charge order), this knob is semantic and part of
  /// digestOf(SynthJob).
  bool ClauseMinimization = true;
  /// Activity-based candidate ordering: VSIDS-like per-command activity
  /// scores, bumped when a command participates in a conflict (its
  /// candidate failed after claiming a configuration) and periodically
  /// halved. Each shard re-sorts its DFS candidate order by activity at
  /// unit boundaries and restart points only — never mid-unit — with
  /// ties broken by the base deterministic order, so the order is a
  /// pure function of the unit's own conflict history. In budget mode
  /// activity state is unit-local (reset per unit), keeping verdict and
  /// sequence a pure function of (job, budget); semantic, part of
  /// digestOf(SynthJob).
  bool ActivityOrdering = true;
  /// Deterministic Luby restarts: after luby(k)*RestartBase conflicts a
  /// unit unwinds its DFS (un-claiming the abandoned path but keeping
  /// every learned clause, SAT constraint, and settled subtree claim)
  /// and re-enters with an activity-resorted candidate order. Active in
  /// sequential and deterministic-budget searches; sharded unlimited
  /// searches skip restarts (the shared claim map makes un-claiming
  /// racy, and stealing already repairs imbalance there). Each restart
  /// charges one unit of the check budget in budget mode, so the
  /// schedule is finite and reproducible; semantic, part of
  /// digestOf(SynthJob).
  bool Restarts = true;
  /// Hard logical budget (0 = unlimited): the total number of charged
  /// check calls the search may spend, carved deterministically into
  /// per-work-unit quotas (earlier units receive the remainder, every
  /// unit is floored at one call — see support/Budget.h). Budgets are
  /// inclusive: a budget of exactly N permits N calls. Initial bind()
  /// checks are setup cost and exempt from charging, so the bound is
  /// independent of the shard count. Setting this (or UnitCheckCalls)
  /// engages deterministic budget mode: verdicts and sequences —
  /// Aborted included — become a pure function of (job, budget).
  uint64_t MaxCheckCalls = 0;
  /// Per-unit variant of the same budget (0 = unset): every work unit
  /// gets exactly this quota, bounding each depth-one subtree directly
  /// (hard total: quota x #units). When both knobs are set,
  /// UnitCheckCalls wins. Like MaxCheckCalls it is semantic and part of
  /// digestOf(SynthJob).
  uint64_t UnitCheckCalls = 0;
  /// Soft wall-clock hint (0 = none); the paper used a 10-minute
  /// timeout. Checked only *between* work units — a unit that starts
  /// always completes (or exhausts its quota), so pair a timeout with a
  /// check budget to bound unit length. Because expiry can only turn a
  /// run into Aborted (never alter a completed verdict) and leaves the
  /// Interrupted flag set — which keeps the result out of the engine's
  /// cache — this knob is excluded from digestOf(SynthJob).
  double TimeoutSeconds = 0.0;
  /// Cooperative-cancellation token, polled at the same checkpoints as
  /// the abort knobs. The engine's portfolio mode fires it to cancel
  /// losing configurations; a default (empty) token never stops.
  StopToken Stop;
  /// Intra-configuration parallelism: the number of DFS shards the
  /// op-order tree is prefix-split across (see the file comment). The
  /// search itself treats 0 and 1 alike (sequential), but they differ
  /// upstream: 0 means "unset" and lets EngineOptions::IntraJobShards
  /// supply a default, while an explicit 1 pins the classic sequential
  /// search even under an engine-wide default. Values above the number
  /// of candidate first operations are clamped. Shards > 1 requires
  /// ShardCheckerFactory — without it the search degrades to
  /// sequential. A performance knob, not a semantic one: like Stop, it
  /// is excluded from digestOf(SynthJob).
  unsigned Shards = 0;
  /// Builds one fresh CheckerBackend per extra shard (the caller's
  /// checker serves the first). The engine wires this to the portfolio
  /// member's BackendFactory spec; direct callers can capture whatever
  /// state their backend needs. Must be callable concurrently and must
  /// outlive the synthesizeUpdate call.
  std::function<std::unique_ptr<CheckerBackend>()> ShardCheckerFactory;
  /// Work-stealing below the depth-one unit split (sharded non-budget
  /// searches only): shards that run out of top-level units steal
  /// shallow subtree descriptors other shards published instead of
  /// going idle, which is what lets a handful of heavy units keep every
  /// shard busy. Verdict-preserving by the same argument as sharding
  /// itself (the V claim map arbitrates who explores what), and
  /// automatically off in deterministic budget mode, whose unit-local
  /// state forbids cross-shard hand-offs. A performance knob, excluded
  /// from digestOf(SynthJob).
  bool WorkStealing = true;
  /// Maximum depth (in applied ops) at which a shard offers subtrees to
  /// thieves. Shallow offers hand over big subtrees (good), deep offers
  /// churn the deques for slivers of work. Performance knob, excluded
  /// from digests.
  unsigned StealDepth = 3;
  /// Cross-job learning store (null = off; see support/ConstraintStore.h).
  /// On start the search imports the wrong-set entries earlier runs of
  /// this (LearningScenario, RuleGranularity) published — pre-populating
  /// W and seeding the SAT layer so already-refuted prefixes are pruned
  /// without checker queries — and on retirement it publishes what it
  /// learned. A pure accelerator: verdicts and returned sequences are
  /// unchanged by any store content, so (like Shards) it is excluded
  /// from digestOf(SynthJob). Deterministic budget mode never imports —
  /// its outcome must stay a pure function of (job, budget), never of
  /// process history — but budgeted runs still export. Requires
  /// CexPruning (the machinery that both produces and consumes the
  /// entries).
  std::shared_ptr<ConstraintStore> Learning;
  /// digestOf() of the scenario being synthesized; learning engages only
  /// when this is set (non-zero) alongside Learning. The Scenario-taking
  /// synthesizeUpdate overload fills it in automatically; direct
  /// topology-level callers supply it themselves or leave learning off.
  Digest LearningScenario;
};

/// Search statistics reported alongside a result.
struct SynthStats {
  uint64_t CheckCalls = 0;
  uint64_t VisitedPrunes = 0;
  uint64_t CexPrunes = 0;
  uint64_t SatClauses = 0;
  /// Checker-memoization counters (CheckerBackend::cacheHits/Misses),
  /// captured when the run finishes and summed over every shard's
  /// checker; zero for non-memoizing backends.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Real checking work performed across every checker instance of the
  /// run (CheckerBackend::numQueries() of the caller's checker plus all
  /// shard checkers). Equals CheckCalls for plain backends; smaller for
  /// memoizing ones, whose cache hits cost no inner-backend work.
  uint64_t BackendQueries = 0;
  bool EarlyTerminated = false;
  /// Deterministic-budget accounting (all zero for unlimited runs):
  /// charged check calls across every work unit, the unspent remainder
  /// of the ledger's hard total, and the number of units that ran out
  /// of quota. Spent/Remaining may vary with scheduling (a sibling can
  /// start a doomed unit before the winner propagates); the *verdict*
  /// never does.
  uint64_t BudgetSpent = 0;
  uint64_t BudgetRemaining = 0;
  uint64_t ExhaustedUnits = 0;
  /// Cross-job learning accounting (all zero when SynthOptions::Learning
  /// is unset): wrong-set entries imported from the ConstraintStore at
  /// search start, entries newly admitted to the store when the run
  /// retired (duplicates of already-published entries don't count), and
  /// DFS prunes served by an *imported* entry — each one a checker query
  /// an earlier digest-identical run paid for.
  uint64_t ImportedConstraints = 0;
  uint64_t ExportedConstraints = 0;
  uint64_t SeededPrunes = 0;
  /// Subtree descriptors this searcher executed on behalf of another
  /// shard (work-stealing; always zero in deterministic budget mode and
  /// in sequential runs). Each stolen task costs one extra bind query.
  uint64_t StolenTasks = 0;
  /// Conflict-driven search accounting (synth/OrderUpdate.cpp; all zero
  /// with the corresponding knobs off): learned refutations whose mask
  /// was shrunk by clause minimization, total mask bits dropped across
  /// those, Luby restarts executed, and learned entries discarded
  /// because an existing entry with a subset mask already subsumed them
  /// (ConstraintStore insert-time subsumption plus the searcher's local
  /// duplicate filter).
  uint64_t ClausesMinimized = 0;
  uint64_t LiteralsDropped = 0;
  uint64_t Restarts = 0;
  uint64_t SubsumedDropped = 0;
  /// Portfolio members the engine skipped because their (scenario,
  /// granularity) learning key already held an up-front UNSAT proof
  /// (engine/Engine.cpp; set on the fabricated Impossible outcome).
  uint64_t ShedMembers = 0;
  /// True iff a budget condition shaped the run: a unit exhausted its
  /// quota or the soft wall hint expired. Never set by a race loss or
  /// an external cancellation (see MemberOutcome::Cancelled for the
  /// former).
  bool HitBudget = false;
  /// True iff a timing event — an external stop or the soft wall hint —
  /// was observed cutting the run short. A Success with this flag may
  /// carry a sequence that is not the deterministic lowest-unit one
  /// (an outranking unit may have been abandoned mid-flight), so the
  /// engine refuses to cache interrupted results.
  bool Interrupted = false;
  unsigned WaitsBeforeRemoval = 0;
  unsigned WaitsAfterRemoval = 0;
  double SynthSeconds = 0.0;
  double WaitRemovalSeconds = 0.0;
  /// Phase profile of the DFS, accumulated per shard and summed across
  /// shards (so under sharding the totals are thread-seconds, which may
  /// exceed SynthSeconds). All zero unless the obs detail tier
  /// (obs::detailEnabled()) was on during the run: the per-candidate
  /// clock reads live behind that switch. CheckSeconds is time inside
  /// checker bind/recheck calls, MutateSeconds covers applySwitchUpdate
  /// plus undo/rollback, PruneSeconds the V/W/seed probes and claims,
  /// SatSeconds the EarlyTermination learning and impossibility calls.
  double CheckSeconds = 0.0;
  double MutateSeconds = 0.0;
  double PruneSeconds = 0.0;
  double SatSeconds = 0.0;

  /// Accumulates every counter of \p S into this. The single merging
  /// point — the engine's batch aggregation uses it, so a field added
  /// here is summed everywhere (counters sum, flags OR).
  /// tests/synth_test.cpp pins sizeof(SynthStats): adding a field
  /// without extending both this merge and that test fails the build
  /// there, which is the point — PRs keep growing this struct by hand.
  void mergeFrom(const SynthStats &S) {
    CheckCalls += S.CheckCalls;
    VisitedPrunes += S.VisitedPrunes;
    CexPrunes += S.CexPrunes;
    SatClauses += S.SatClauses;
    CacheHits += S.CacheHits;
    CacheMisses += S.CacheMisses;
    BackendQueries += S.BackendQueries;
    EarlyTerminated |= S.EarlyTerminated;
    BudgetSpent += S.BudgetSpent;
    BudgetRemaining += S.BudgetRemaining;
    ExhaustedUnits += S.ExhaustedUnits;
    ImportedConstraints += S.ImportedConstraints;
    ExportedConstraints += S.ExportedConstraints;
    SeededPrunes += S.SeededPrunes;
    StolenTasks += S.StolenTasks;
    ClausesMinimized += S.ClausesMinimized;
    LiteralsDropped += S.LiteralsDropped;
    Restarts += S.Restarts;
    SubsumedDropped += S.SubsumedDropped;
    ShedMembers += S.ShedMembers;
    HitBudget |= S.HitBudget;
    Interrupted |= S.Interrupted;
    WaitsBeforeRemoval += S.WaitsBeforeRemoval;
    WaitsAfterRemoval += S.WaitsAfterRemoval;
    SynthSeconds += S.SynthSeconds;
    WaitRemovalSeconds += S.WaitRemovalSeconds;
    CheckSeconds += S.CheckSeconds;
    MutateSeconds += S.MutateSeconds;
    PruneSeconds += S.PruneSeconds;
    SatSeconds += S.SatSeconds;
  }
};

/// Outcome of a synthesis run.
enum class SynthStatus {
  /// A correct careful sequence was found.
  Success,
  /// No simple careful sequence exists (exhaustive search or SAT proof).
  Impossible,
  /// The initial configuration already violates the property, so no
  /// command sequence can be correct (Def. 3 quantifies over all traces,
  /// including pre-update ones).
  InitialViolation,
  /// Gave up: a work unit exhausted its deterministic check quota
  /// (MaxCheckCalls / UnitCheckCalls), the soft TimeoutSeconds hint
  /// expired between units, or an external stop token fired. Pure
  /// quota-exhaustion aborts are reproducible (see the file comment)
  /// and the engine caches them; timing-shaped aborts (stop or wall
  /// observed — the Interrupted flag) are never cached.
  Aborted
};

/// A synthesis result: on Success, Commands is the careful sequence
/// (updates separated by waits, minus those the wait-removal pass proved
/// unnecessary).
struct SynthResult {
  SynthStatus Status = SynthStatus::Impossible;
  CommandSeq Commands;
  SynthStats Stats;

  bool ok() const { return Status == SynthStatus::Success; }
};

/// Runs ORDERUPDATE for the transition \p Initial -> \p Final under
/// property \p Phi, using \p Checker as the model-checking backend.
SynthResult synthesizeUpdate(const Topology &Topo, const Config &Initial,
                             const Config &Final,
                             const std::vector<TrafficClass> &Classes,
                             Formula Phi, CheckerBackend &Checker,
                             const SynthOptions &Opts = {});

/// Convenience overload for generated scenarios: builds the property in
/// \p FF and forwards to the main entry point.
SynthResult synthesizeUpdate(const Scenario &S, FormulaFactory &FF,
                             CheckerBackend &Checker,
                             const SynthOptions &Opts = {});

} // namespace netupd

#endif // NETUPD_SYNTH_ORDERUPDATE_H
