//===- synth/Command.h - Update command sequences --------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controller command language of §3.1 as seen by clients: a sequence
/// of switch(-table) updates and waits. A "wait" stands for incr;flush —
/// it blocks the controller until every packet admitted before it has left
/// the network.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SYNTH_COMMAND_H
#define NETUPD_SYNTH_COMMAND_H

#include "net/Config.h"
#include "net/Topology.h"

#include <string>
#include <vector>

namespace netupd {

/// One controller command.
struct Command {
  enum class Kind : uint8_t { Update, Wait };

  Kind K = Kind::Wait;
  SwitchId Sw = 0;  // Update only.
  Table NewTable;   // Update only: the full replacement table.

  static Command update(SwitchId Sw, Table T) {
    Command C;
    C.K = Kind::Update;
    C.Sw = Sw;
    C.NewTable = std::move(T);
    return C;
  }

  static Command wait() { return Command(); }
};

using CommandSeq = std::vector<Command>;

/// Renders "upd C2; wait; upd A1" using switch names from \p Topo.
std::string commandSeqToString(const Topology &Topo, const CommandSeq &Seq);

/// Number of Wait commands in \p Seq.
unsigned countWaits(const CommandSeq &Seq);

/// Applies every update of \p Seq to \p Cfg (ignoring waits); used to
/// confirm that a sequence reaches the final configuration.
void applyCommands(Config &Cfg, const CommandSeq &Seq);

} // namespace netupd

#endif // NETUPD_SYNTH_COMMAND_H
