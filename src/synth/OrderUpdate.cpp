//===- synth/OrderUpdate.cpp - The ORDERUPDATE algorithm -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "synth/OrderUpdate.h"

#include "support/Bitset.h"
#include "support/Timer.h"
#include "synth/EarlyTermination.h"
#include "synth/WaitRemoval.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace netupd;

namespace {

/// One search operation: replace switch Sw's whole table (ClassIdx = -1,
/// switch granularity) or only its rules for one traffic class
/// (rule granularity).
struct MicroOp {
  SwitchId Sw = 0;
  int ClassIdx = -1;
};

/// True if \p R can apply to packets of class \p Hdr (every constrained
/// field agrees).
bool ruleBelongsToClass(const Rule &R, const Header &Hdr) {
  for (unsigned I = 0; I != NumFields; ++I) {
    const std::optional<uint32_t> &V = R.Pat.Values[I];
    if (V && *V != Hdr.Values[I])
      return false;
  }
  return true;
}

/// The rules of \p T restricted to class \p Hdr.
std::vector<Rule> classSlice(const Table &T, const Header &Hdr) {
  std::vector<Rule> Out;
  for (const Rule &R : T.rules())
    if (ruleBelongsToClass(R, Hdr))
      Out.push_back(R);
  return Out;
}

/// The table resulting from firing one op on \p Current: the whole final
/// table (switch granularity), or Current with one class's slice replaced
/// by the final slice (rule granularity).
Table opResultTable(const Table &Current, const Table &FinalT,
                    const Header *ClassHdr) {
  if (!ClassHdr)
    return FinalT;
  std::vector<Rule> Rules;
  for (const Rule &R : Current.rules())
    if (!ruleBelongsToClass(R, *ClassHdr))
      Rules.push_back(R);
  for (const Rule &R : FinalT.rules())
    if (ruleBelongsToClass(R, *ClassHdr))
      Rules.push_back(R);
  return Table(std::move(Rules));
}

/// The depth-first search of Fig. 4, with state shared across recursion.
class OrderUpdateSearch {
public:
  OrderUpdateSearch(const Topology &Topo, const Config &Initial,
                    const Config &Final,
                    const std::vector<TrafficClass> &Classes, Formula Phi,
                    CheckerBackend &Checker, const SynthOptions &Opts)
      : Topo(Topo), Initial(Initial), Final(Final), Classes(Classes),
        Phi(Phi), Checker(Checker), Opts(Opts),
        K(Topo, Initial, Classes) {
    ET.setStopToken(this->Opts.Stop);
  }

  SynthResult run();

private:
  void buildOps();
  bool dfs();
  bool matchesWrong(const Bitset &Bits) const;
  void learnCex(const std::vector<StateId> &CexStates, const Bitset &Bits);
  bool hitLimits();
  CommandSeq buildCommands() const;

  const Topology &Topo;
  const Config &Initial;
  const Config &Final;
  const std::vector<TrafficClass> &Classes;
  Formula Phi;
  CheckerBackend &Checker;
  SynthOptions Opts;

  KripkeStructure K;
  std::vector<MicroOp> Ops;
  std::vector<unsigned> OpOrder; // DFS candidate order (adds first).
  std::vector<std::vector<unsigned>> SwitchOps; // Switch -> op indices.
  Bitset Applied;
  std::vector<unsigned> AppliedSeq;
  std::unordered_set<Bitset, BitsetHash> Visited; // V of Fig. 4.
  std::vector<std::pair<Bitset, Bitset>> Wrong;   // W: (mask, value).
  EarlyTermination ET;

  SynthStats Stats;
  Timer Clock;
  bool Abort = false;
  SynthStatus AbortStatus = SynthStatus::Aborted;
  /// The SAT check batches failures: solving after every learned clause
  /// is wasted work when the constraints are still easily satisfiable.
  unsigned FailuresSinceEtCheck = 0;
  static constexpr unsigned EtCheckInterval = 8;
};

void OrderUpdateSearch::buildOps() {
  SwitchOps.assign(Topo.numSwitches(), {});
  for (SwitchId Sw : diffSwitches(Initial, Final)) {
    if (!Opts.RuleGranularity) {
      SwitchOps[Sw].push_back(static_cast<unsigned>(Ops.size()));
      Ops.push_back(MicroOp{Sw, -1});
      continue;
    }
    // Rule granularity: one op per traffic class whose slice changes.
    // Rules outside every class (none in the generated workloads) fall
    // back to a whole-switch op so the final table is always reached.
    bool Residue = false;
    for (const Rule &R : Initial.table(Sw).rules()) {
      bool InSomeClass = false;
      for (const TrafficClass &C : Classes)
        InSomeClass |= ruleBelongsToClass(R, C.Hdr);
      Residue |= !InSomeClass;
    }
    for (const Rule &R : Final.table(Sw).rules()) {
      bool InSomeClass = false;
      for (const TrafficClass &C : Classes)
        InSomeClass |= ruleBelongsToClass(R, C.Hdr);
      Residue |= !InSomeClass;
    }
    if (Residue) {
      SwitchOps[Sw].push_back(static_cast<unsigned>(Ops.size()));
      Ops.push_back(MicroOp{Sw, -1});
      continue;
    }
    for (unsigned C = 0; C != Classes.size(); ++C) {
      if (classSlice(Initial.table(Sw), Classes[C].Hdr) ==
          classSlice(Final.table(Sw), Classes[C].Hdr))
        continue;
      SwitchOps[Sw].push_back(static_cast<unsigned>(Ops.size()));
      Ops.push_back(MicroOp{Sw, static_cast<int>(C)});
    }
  }

  // Candidate order heuristic: try purely-additive ops first (installing
  // rules on switches that carry none for the affected scope) — those are
  // the safe "unreachable switch" updates the paper's §2 discussion
  // performs first. Completeness is unaffected: this only permutes the
  // DFS children.
  OpOrder.resize(Ops.size());
  for (unsigned I = 0; I != Ops.size(); ++I)
    OpOrder[I] = I;
  auto IsAdditive = [&](unsigned I) {
    const MicroOp &Op = Ops[I];
    if (Op.ClassIdx < 0)
      return Initial.table(Op.Sw).empty();
    return classSlice(Initial.table(Op.Sw),
                      Classes[static_cast<size_t>(Op.ClassIdx)].Hdr)
        .empty();
  };
  std::stable_sort(OpOrder.begin(), OpOrder.end(),
                   [&](unsigned A, unsigned B) {
                     return IsAdditive(A) > IsAdditive(B);
                   });
}

bool OrderUpdateSearch::matchesWrong(const Bitset &Bits) const {
  for (const auto &[Mask, Value] : Wrong)
    if ((Bits & Mask) == Value)
      return true;
  return false;
}

void OrderUpdateSearch::learnCex(const std::vector<StateId> &CexStates,
                                 const Bitset &Bits) {
  // The counterexample trace depends only on how the switches it crosses
  // route its own traffic class, so any configuration agreeing with the
  // current one on those operations reproduces the violation (§4.2 A).
  std::vector<uint8_t> SwInCex(Topo.numSwitches(), 0);
  std::vector<uint8_t> ClassInCex(Classes.size(), 0);
  for (StateId S : CexStates) {
    SwInCex[K.stateSwitch(S)] = 1;
    ClassInCex[K.stateClass(S)] = 1;
  }

  Bitset Mask(Ops.size());
  for (SwitchId Sw = 0; Sw != Topo.numSwitches(); ++Sw) {
    if (!SwInCex[Sw])
      continue;
    for (unsigned OpIdx : SwitchOps[Sw]) {
      const MicroOp &Op = Ops[OpIdx];
      // Rule-granularity ops for unrelated classes do not influence the
      // trace; leaving them out strengthens the pruning.
      if (Op.ClassIdx >= 0 &&
          !ClassInCex[static_cast<size_t>(Op.ClassIdx)])
        continue;
      Mask.set(OpIdx);
    }
  }
  Bitset Value = Bits & Mask;
  if (Mask.none())
    return; // Defensive: a cex with no in-diff switch teaches nothing.
  Wrong.emplace_back(Mask, Value);

  if (!Opts.EarlyTermination)
    return;
  std::vector<unsigned> Updated, NotUpdated;
  for (unsigned I = 0; I != Ops.size(); ++I) {
    if (!Mask.test(I))
      continue;
    if (Value.test(I))
      Updated.push_back(I);
    else
      NotUpdated.push_back(I);
  }
  // A violating trace through entirely not-updated switches would also
  // exist in the initial configuration, which was verified; so Updated is
  // never empty here (see EarlyTermination.h).
  assert(!Updated.empty() && "counterexample independent of any update");
  if (Updated.empty())
    return;
  ET.addCexConstraint(Updated, NotUpdated);
  Stats.SatClauses = ET.numClauses();
}

bool OrderUpdateSearch::hitLimits() {
  if (Opts.Stop.stopRequested())
    return true;
  if (Opts.TimeoutSeconds > 0.0 && Clock.seconds() > Opts.TimeoutSeconds)
    return true;
  if (Opts.MaxCheckCalls != 0 && Stats.CheckCalls >= Opts.MaxCheckCalls)
    return true;
  return false;
}

bool OrderUpdateSearch::dfs() {
  if (Applied.count() == Ops.size())
    return true;

  for (unsigned CandIdx = 0; CandIdx != OpOrder.size(); ++CandIdx) {
    unsigned I = OpOrder[CandIdx];
    if (Applied.test(I))
      continue;

    Bitset Next = Applied;
    Next.set(I);
    if (Visited.count(Next)) {
      ++Stats.VisitedPrunes;
      continue;
    }
    if (Opts.CexPruning && matchesWrong(Next)) {
      ++Stats.CexPrunes;
      continue;
    }
    if (hitLimits()) {
      Abort = true;
      AbortStatus = SynthStatus::Aborted;
      return false;
    }

    const MicroOp &Op = Ops[I];
    const Header *ClassHdr =
        Op.ClassIdx < 0 ? nullptr
                        : &Classes[static_cast<size_t>(Op.ClassIdx)].Hdr;
    Table NewTable =
        opResultTable(K.config().table(Op.Sw), Final.table(Op.Sw), ClassHdr);

    std::vector<StateId> Changed;
    KripkeStructure::UndoRecord Undo =
        K.applySwitchUpdate(Op.Sw, NewTable, Changed);
    UpdateInfo Info;
    Info.Sw = Op.Sw;
    Info.OldTable = &Undo.OldTable;
    Info.NewTable = &NewTable;
    Info.ChangedStates = &Changed;

    CheckResult Res = Checker.recheckAfterUpdate(Info);
    ++Stats.CheckCalls;
    Visited.insert(Next);

    bool Success = false;
    if (Res.Holds) {
      Applied.set(I);
      AppliedSeq.push_back(I);
      Success = dfs();
      if (!Success) {
        Applied.reset(I);
        AppliedSeq.pop_back();
      }
    } else if (Opts.CexPruning && !Res.Cex.empty() &&
               Checker.providesCounterexamples()) {
      learnCex(Res.Cex, Next);
    }

    if (Success)
      return true; // Keep the final structure; no rollback.

    Checker.notifyRollback();
    K.undo(Undo);

    if (Opts.EarlyTermination && !Res.Holds &&
        ++FailuresSinceEtCheck >= EtCheckInterval) {
      FailuresSinceEtCheck = 0;
      if (ET.impossible()) {
        Stats.EarlyTerminated = true;
        Abort = true;
        AbortStatus = SynthStatus::Impossible;
        return false;
      }
    }
    if (Abort)
      return false;
  }
  return false;
}

CommandSeq OrderUpdateSearch::buildCommands() const {
  // Replay the successful op order from the initial configuration,
  // snapshotting the table each op installs; a wait separates every two
  // updates (careful sequence, Def. 5).
  CommandSeq Seq;
  Config Cur = Initial;
  for (size_t Step = 0; Step != AppliedSeq.size(); ++Step) {
    const MicroOp &Op = Ops[AppliedSeq[Step]];
    const Header *ClassHdr =
        Op.ClassIdx < 0 ? nullptr
                        : &Classes[static_cast<size_t>(Op.ClassIdx)].Hdr;
    Table NewTable =
        opResultTable(Cur.table(Op.Sw), Final.table(Op.Sw), ClassHdr);
    Cur.setTable(Op.Sw, NewTable);
    if (Step != 0)
      Seq.push_back(Command::wait());
    Seq.push_back(Command::update(Op.Sw, std::move(NewTable)));
  }
  return Seq;
}

SynthResult OrderUpdateSearch::run() {
  SynthResult Result;
  buildOps();
  Applied.resize(Ops.size());

  CheckResult InitRes = Checker.bind(K, Phi);
  ++Stats.CheckCalls;
  if (Opts.Stop.stopRequested()) {
    Result.Status = SynthStatus::Aborted;
    Stats.SynthSeconds = Clock.seconds();
    Result.Stats = Stats;
    return Result;
  }
  if (!InitRes.Holds) {
    Result.Status = SynthStatus::InitialViolation;
    Stats.SynthSeconds = Clock.seconds();
    Result.Stats = Stats;
    return Result;
  }

  bool Found = dfs();
  Stats.SynthSeconds = Clock.seconds();

  if (!Found) {
    Result.Status = Abort ? AbortStatus : SynthStatus::Impossible;
    Result.Stats = Stats;
    return Result;
  }

  Result.Status = SynthStatus::Success;
  Result.Commands = buildCommands();
  Stats.WaitsBeforeRemoval = countWaits(Result.Commands);
  Stats.WaitsAfterRemoval = Stats.WaitsBeforeRemoval;
  if (Opts.WaitRemoval) {
    Timer WaitClock;
    Result.Commands = removeWaits(Topo, Initial, Classes, Result.Commands);
    Stats.WaitRemovalSeconds = WaitClock.seconds();
    Stats.WaitsAfterRemoval = countWaits(Result.Commands);
  }
  Result.Stats = Stats;
  return Result;
}

} // namespace

SynthResult netupd::synthesizeUpdate(const Topology &Topo,
                                     const Config &Initial,
                                     const Config &Final,
                                     const std::vector<TrafficClass> &Classes,
                                     Formula Phi, CheckerBackend &Checker,
                                     const SynthOptions &Opts) {
  OrderUpdateSearch Search(Topo, Initial, Final, Classes, Phi, Checker,
                           Opts);
  SynthResult Result = Search.run();
  Result.Stats.CacheHits = Checker.cacheHits();
  Result.Stats.CacheMisses = Checker.cacheMisses();
  return Result;
}

SynthResult netupd::synthesizeUpdate(const Scenario &S, FormulaFactory &FF,
                                     CheckerBackend &Checker,
                                     const SynthOptions &Opts) {
  return synthesizeUpdate(S.Topo, S.Initial, S.Final, S.classes(),
                          S.buildProperty(FF), Checker, Opts);
}
