//===- synth/OrderUpdate.cpp - The ORDERUPDATE algorithm -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The search is factored into two layers so one code path serves both the
// sequential and the sharded mode:
//
//  - SearchContext: everything shared across shards — the op table, the
//    concurrent V/W pruning state, the SAT layer, global budgets, the
//    top-level work-unit counter, and the winner slot. All of it is
//    either immutable after setup or monotone (V claims, W entries, SAT
//    clauses, stop flags only ever accumulate), which is why sharing is
//    sound: a prune learned anywhere holds everywhere.
//
//  - ShardSearcher: everything one shard owns — a private KripkeStructure
//    it mutates and rolls back, a private CheckerBackend following that
//    structure, the Applied bitset/sequence, and local statistics. The
//    LIFO mutate/recheck/rollback discipline the backends (and the
//    MemoizingChecker sync-depth machine) assume is therefore preserved
//    per shard by construction.
//
// Work units are depth-one prefixes: candidate first operation i roots
// unit i, and shards pull units from an atomic cursor. Depth one matters
// for the V-claim discipline — distinct first ops give distinct depth-1
// configurations, so no unit's root can be claimed (and wrongly skipped)
// by a shard working a different unit. Below depth one, claims are what
// make concurrent exploration exhaustive-without-duplication: the one
// shard that wins the insert explores the subtree, every other shard
// prunes, and since all units complete before a verdict is reached, every
// skipped subtree has been fully explored by its claimant.
//
// Work-stealing (sharded non-budget mode): a depth-one split load-
// balances badly when one unit dwarfs the rest, so shards that run out
// of units steal below depth one. A shard exploring a shallow DFS node
// may, instead of descending into a candidate child itself, publish a
// descriptor (path from the root, candidate op, owning unit) on its
// bounded deque; idle shards pop descriptors, replay the path on their
// private structure (raw mutations, then one checker bind), and explore
// the subtree with the normal claim/prune protocol. Soundness needs no
// new machinery: a descriptor is published *instead of* the owner's
// descent, and the exit protocol (a shard leaves only when every deque
// is empty and no worker is active — and every pusher drains its own
// deque before leaving) guarantees each published subtree is eventually
// explored by exactly whoever reaches it, with the V claims arbitrating
// duplication exactly as for units. Verdicts stay scheduling-
// independent for the same reason sharding's are; deterministic budget
// mode never steals (unit-local state cannot be handed across shards).
//
// Deterministic budget mode (a finite MaxCheckCalls/UnitCheckCalls)
// trades the shared pruning state for reproducibility: cross-shard
// sharing makes *which* prefixes a unit explores depend on sibling
// timing, which is fine when every unit runs to completion (the verdict
// is exhaustion-stable) but fatal when a budget truncates units — the
// same job could then Abort or Succeed depending on shard layout. So
// under a budget each unit explores with unit-local V/W/SAT state and a
// fixed quota drawn from the BudgetLedger (support/Budget.h), making a
// unit's outcome — Success with a specific sequence, exhausted quota, or
// fully-explored failure — a pure function of (instance, quota). The
// winner is the lowest-indexed successful unit, not the first in time,
// so the returned sequence is deterministic too. The wall clock never
// interrupts a unit: TimeoutSeconds is polled only between units
// (everywhere, not just in budget mode — the per-candidate clock read is
// gone). The duplicated cross-unit exploration this costs is the price
// of byte-identical verdicts at any shard and worker count.
//
//===----------------------------------------------------------------------===//

#include "synth/OrderUpdate.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Bitset.h"
#include "support/Budget.h"
#include "support/ConcurrentSet.h"
#include "support/Timer.h"
#include "synth/EarlyTermination.h"
#include "synth/WaitRemoval.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

using namespace netupd;

namespace {

/// Accumulates wall time into a nanosecond phase counter while alive —
/// the unit of the per-shard phase breakdown (SynthStats::CheckSeconds
/// and friends). Inert unless constructed armed, so a detail-off run
/// pays one relaxed load per tryCandidate and no clock reads. An
/// optional histogram additionally receives the per-call duration.
class PhaseScope {
public:
  PhaseScope(bool Armed, uint64_t &AccNs, obs::Histogram *H = nullptr)
      : Acc(Armed ? &AccNs : nullptr), Hist(H) {
    if (Acc)
      T0 = obs::nowNs();
  }
  ~PhaseScope() {
    if (!Acc)
      return;
    uint64_t D = obs::nowNs() - T0;
    *Acc += D;
    if (Hist)
      Hist->record(D);
  }
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

private:
  uint64_t *Acc;
  obs::Histogram *Hist;
  uint64_t T0 = 0;
};

/// Per-call mutate/rollback latency (applySwitchUpdate and undo both
/// feed it), alive only under the obs detail tier.
obs::Histogram &mutateLatency() {
  static obs::Histogram &H =
      obs::MetricsRegistry::instance().histogram("synth.mutate_ns");
  return H;
}

/// A running phase timeline for one shard: every switchTo(Acc) reads
/// the clock once, attributing the elapsed slice to the *previous*
/// phase, and switching to the phase already open is free. One clock
/// spans the whole unit (the recursion included), so a run of
/// consecutive pruned candidates — the bulk of a deep exhaustive proof —
/// extends one open "prune" slice with zero clock reads; only real
/// phase transitions pay. Against one PhaseScope per phase (two reads
/// each), a full candidate costs ~4 reads and a pruned one none — the
/// reads were the dominant share of the metrics tier's 43% overhead on
/// prune-heavy workloads. Inert when unarmed.
class PhaseClock {
public:
  explicit PhaseClock(bool Armed) : On(Armed) {}
  ~PhaseClock() { stop(); }
  PhaseClock(const PhaseClock &) = delete;
  PhaseClock &operator=(const PhaseClock &) = delete;

  /// Closes the current phase slice into its accumulator and opens a new
  /// one into \p Acc. Returns the closed slice's duration (0 unarmed or
  /// when \p Acc is already the open phase — callers that use the
  /// duration always switch to a *different* phase).
  uint64_t switchTo(uint64_t &Acc) {
    if (!On || Cur == &Acc)
      return 0;
    uint64_t Now = obs::nowNs();
    uint64_t D = Cur ? Now - Last : 0;
    if (Cur)
      *Cur += D;
    Last = Now;
    Cur = &Acc;
    return D;
  }

  /// Closes the current slice without opening a new one (e.g. before
  /// recursing — the child runs its own timeline). Returns its duration.
  uint64_t stop() {
    if (!On || !Cur)
      return 0;
    uint64_t Now = obs::nowNs();
    uint64_t D = Now - Last;
    *Cur += D;
    Last = Now;
    Cur = nullptr;
    return D;
  }

private:
  bool On;
  uint64_t Last = 0;
  uint64_t *Cur = nullptr;
};

/// One search operation: replace switch Sw's whole table (ClassIdx = -1,
/// switch granularity) or only its rules for one traffic class
/// (rule granularity).
struct MicroOp {
  SwitchId Sw = 0;
  int ClassIdx = -1;
};

/// True if \p R can apply to packets of class \p Hdr (every constrained
/// field agrees).
bool ruleBelongsToClass(const Rule &R, const Header &Hdr) {
  for (unsigned I = 0; I != NumFields; ++I) {
    const std::optional<uint32_t> &V = R.Pat.Values[I];
    if (V && *V != Hdr.Values[I])
      return false;
  }
  return true;
}

/// The rules of \p T restricted to class \p Hdr.
std::vector<Rule> classSlice(const Table &T, const Header &Hdr) {
  std::vector<Rule> Out;
  for (const Rule &R : T.rules())
    if (ruleBelongsToClass(R, Hdr))
      Out.push_back(R);
  return Out;
}

/// True if configuration \p Bits agrees with wrong-set entry \p E on
/// every masked operation — the one matching rule behind the W set, the
/// unit-local W set, and the imported seed list.
bool entryMatches(const std::pair<Bitset, Bitset> &E, const Bitset &Bits) {
  return (Bits & E.first) == E.second;
}

bool matchesAny(const std::vector<std::pair<Bitset, Bitset>> &Entries,
                const Bitset &Bits) {
  for (const std::pair<Bitset, Bitset> &E : Entries)
    if (entryMatches(E, Bits))
      return true;
  return false;
}

/// The table resulting from firing one op on \p Current: the whole final
/// table (switch granularity), or Current with one class's slice replaced
/// by the final slice (rule granularity).
Table opResultTable(const Table &Current, const Table &FinalT,
                    const Header *ClassHdr) {
  if (!ClassHdr)
    return FinalT;
  std::vector<Rule> Rules;
  for (const Rule &R : Current.rules())
    if (!ruleBelongsToClass(R, *ClassHdr))
      Rules.push_back(R);
  for (const Rule &R : FinalT.rules())
    if (ruleBelongsToClass(R, *ClassHdr))
      Rules.push_back(R);
  return Table(std::move(Rules));
}

/// A subtree descriptor published for stealing: replay Path from the
/// initial configuration, then explore candidate Cand from there, on
/// behalf of top-level unit Unit.
struct StealTask {
  std::vector<unsigned> Path;
  unsigned Cand = 0;
  size_t Unit = 0;
};

/// A bounded mutex-guarded deque of steal tasks, one per shard. The
/// owner pushes at (and pops from) the back, thieves pop from the
/// front — so thieves take the shallowest, biggest subtrees while the
/// owner reclaims its most recent offers. The bound keeps descriptors
/// from piling up faster than they are consumed; a failed push just
/// means the owner explores the candidate itself.
class StealDeque {
public:
  bool tryPush(StealTask &&T) {
    MutexLock Lock(M);
    if (Q.size() >= Cap)
      return false;
    Q.push_back(std::move(T));
    return true;
  }

  bool tryPopBack(StealTask &T) {
    MutexLock Lock(M);
    if (Q.empty())
      return false;
    T = std::move(Q.back());
    Q.pop_back();
    return true;
  }

  bool tryPopFront(StealTask &T) {
    MutexLock Lock(M);
    if (Q.empty())
      return false;
    T = std::move(Q.front());
    Q.pop_front();
    return true;
  }

private:
  static constexpr size_t Cap = 128;
  Mutex M;
  std::deque<StealTask> Q NETUPD_GUARDED_BY(M);
};

/// Shard-shared state of one synthesis run; see the file comment.
struct SearchContext {
  SearchContext(const Topology &Topo, const Config &Initial,
                const Config &Final,
                const std::vector<TrafficClass> &Classes, Formula Phi,
                const SynthOptions &Opts)
      : Topo(Topo), Initial(Initial), Final(Final), Classes(Classes),
        Phi(Phi), Opts(Opts) {}

  const Topology &Topo;
  const Config &Initial;
  const Config &Final;
  const std::vector<TrafficClass> &Classes;
  Formula Phi;
  const SynthOptions &Opts;

  // Immutable after buildOps(); shards read freely.
  std::vector<MicroOp> Ops;
  std::vector<unsigned> OpOrder; // DFS candidate order (adds first).
  std::vector<std::vector<unsigned>> SwitchOps; // Switch -> op indices.

  /// True once runSearch decided to spawn sibling shards. Decided before
  /// any searcher runs and constant afterwards; selects between the
  /// plain and the concurrent pruning containers below. The V/W probes
  /// run per candidate at every DFS node — the hottest loop of
  /// prune-dominated exhaustive searches — and a single-shard run must
  /// not pay lock/atomic overhead there (measured ~8x on the Fig. 8(h)
  /// exhaustive bench when it did).
  bool Sharded = false;

  /// True when a finite check budget engaged deterministic budget mode
  /// (see the file comment): pruning state is unit-local (the containers
  /// below sit unused), quotas come from Ledger, and the winner is the
  /// lowest successful unit. Decided before any searcher runs.
  bool Deterministic = false;
  /// The per-unit carve of the check budget; unlimited when
  /// !Deterministic.
  BudgetLedger Ledger;

  // Pruning state. V keeps one representation per mode (the striped
  // claim table costs locks a single-shard run must not pay); W is one
  // watch-indexed container for both modes — its probes and CAS appends
  // are lock-free, so they cost a single-shard run nothing either.
  FlatBitsetSet SeqVisited;             // V of Fig. 4 (one shard).
  ConcurrentSet<Bitset, BitsetHash> ParVisited;
  /// W of Fig. 4: (mask, value) refutations, filed under the first set
  /// bit of value so a probe touches only entries that could match
  /// (ConcurrentSet.h). reset() after buildOps, before any searcher.
  WatchedWrongSet Wrong;

  /// The claim: true for exactly one caller per configuration.
  bool visitedClaim(const Bitset &B) {
    return Sharded ? ParVisited.insert(B) : SeqVisited.insert(B);
  }
  bool matchesWrong(const Bitset &Bits) const { return Wrong.matches(Bits); }
  void addWrong(Bitset Mask, Bitset Value) {
    Wrong.add(std::move(Mask), std::move(Value));
  }

  /// Wrong-set entries imported from the cross-job ConstraintStore:
  /// filled before any searcher runs and immutable afterwards. The
  /// watch-list indexing is what keeps large seeded stores cheap to
  /// consult: a probe walks only the entries watching one of the
  /// configuration's set bits, O(relevant) instead of O(all). Always
  /// empty in deterministic budget mode, which never imports (see
  /// runSearch).
  WatchedWrongSet SeedWrong;
  /// True when this run publishes its learned entries on retirement;
  /// budget-mode searchers then keep their unit-local entries for the
  /// export instead of dropping them with the unit.
  bool ExportLearning = false;

  bool matchesSeed(const Bitset &Bits) const {
    return SeedWrong.matches(Bits);
  }

  /// Work-stealing state (sharded non-budget mode only; see the file
  /// comment). One bounded deque per shard; a shard pushes only to its
  /// own — takeTask scans it first, so a pusher drains its own offers
  /// before it may exit, which is what keeps published subtrees from
  /// being stranded. ActiveWorkers counts shards currently holding work
  /// (a unit or a stolen task) plus shards mid-scan; IdleShards lets
  /// busy shards skip the publish when nobody could take it.
  bool Stealing = false;
  unsigned StealDepthLimit = 0;
  std::vector<std::unique_ptr<StealDeque>> Deques;
  std::atomic<unsigned> ActiveWorkers{0};
  std::atomic<unsigned> IdleShards{0};

  EarlyTermination ET; // Internally synchronized; non-budget mode only.

  // Cancellation and abort-cause bookkeeping. The wall clock only
  // matters between work units (soft hint); check budgets are accounted
  // per unit through Ledger, so there is no shared call counter left.
  Timer Clock;
  /// Fired by the first shard to complete a sequence; siblings abandon
  /// their frontier at the next checkpoint. Never fired in deterministic
  /// budget mode, where a later-found lower unit may still outrank the
  /// current winner (see recordWinner).
  StopSource Found;
  /// Fired on any abort (budget, external stop, SAT impossibility) so
  /// sibling shards stop promptly instead of re-deriving the condition.
  /// Whoever fires it records the cause flag first, so a shard stopped
  /// by Halt never needs to guess why.
  StopSource Halt;
  /// Abort causes, kept separate so verdicts and stats never conflate a
  /// user cancellation with a budget decision (or either with a race
  /// loss, which sets no flag at all).
  std::atomic<bool> ExternalAbort{false};
  std::atomic<bool> WallAbort{false};
  /// Units whose quota ran dry mid-subtree (deterministic across shard
  /// layouts up to winner cancellation; any nonzero count means the
  /// exploration was truncated and exhaustion cannot be claimed).
  std::atomic<uint64_t> ExhaustedUnits{0};
  std::atomic<bool> EtImpossible{false};

  /// Winner slot. Non-budget mode: first completed sequence in time
  /// wins and fires Found. Deterministic mode: the *lowest-indexed*
  /// successful unit wins — a pure function of the instance — and
  /// BestUnit lets shards abandon outranked units without a stop token.
  Mutex WinnerM;
  bool HaveWinner NETUPD_GUARDED_BY(WinnerM) = false;
  size_t WinnerUnit NETUPD_GUARDED_BY(WinnerM) = SIZE_MAX;
  std::vector<unsigned> WinnerSeq NETUPD_GUARDED_BY(WinnerM);
  std::atomic<size_t> BestUnit{SIZE_MAX};

  /// The next top-level work unit (an index into OpOrder) to explore.
  std::atomic<size_t> NextUnit{0};

  void buildOps();

  /// The token every shard polls: external cancellation, a sibling's
  /// success, or a global abort.
  StopToken stopToken() const {
    return anyToken(anyToken(Opts.Stop, Found.token()), Halt.token());
  }

  /// True when the soft wall-clock hint has expired; polled only between
  /// work units, never inside one.
  bool softWallExpired() const {
    return Opts.TimeoutSeconds > 0.0 &&
           Clock.seconds() > Opts.TimeoutSeconds;
  }

  void recordWinner(size_t Unit, const std::vector<unsigned> &Seq) {
    {
      MutexLock Lock(WinnerM);
      if (!HaveWinner || (Deterministic && Unit < WinnerUnit)) {
        HaveWinner = true;
        WinnerUnit = Unit;
        WinnerSeq = Seq;
        // relaxed: an advisory bound shards use to abandon outranked
        // units early; the authoritative winner lives under WinnerM.
        BestUnit.store(Unit, std::memory_order_relaxed);
      }
    }
    if (!Deterministic)
      Found.requestStop();
  }

  /// The winner slot under WinnerM, copied out in one critical section —
  /// the runSearch tail uses this instead of reading HaveWinner /
  /// WinnerSeq bare (safe only by the thread-join happens-before, which
  /// the static analysis rightly refuses to assume).
  bool winnerSnapshot(std::vector<unsigned> &SeqOut) {
    MutexLock Lock(WinnerM);
    if (!HaveWinner)
      return false;
    SeqOut = WinnerSeq;
    return true;
  }
};

void SearchContext::buildOps() {
  SwitchOps.assign(Topo.numSwitches(), {});
  for (SwitchId Sw : diffSwitches(Initial, Final)) {
    if (!Opts.RuleGranularity) {
      SwitchOps[Sw].push_back(static_cast<unsigned>(Ops.size()));
      Ops.push_back(MicroOp{Sw, -1});
      continue;
    }
    // Rule granularity: one op per traffic class whose slice changes.
    // Rules outside every class (none in the generated workloads) fall
    // back to a whole-switch op so the final table is always reached.
    bool Residue = false;
    for (const Rule &R : Initial.table(Sw).rules()) {
      bool InSomeClass = false;
      for (const TrafficClass &C : Classes)
        InSomeClass |= ruleBelongsToClass(R, C.Hdr);
      Residue |= !InSomeClass;
    }
    for (const Rule &R : Final.table(Sw).rules()) {
      bool InSomeClass = false;
      for (const TrafficClass &C : Classes)
        InSomeClass |= ruleBelongsToClass(R, C.Hdr);
      Residue |= !InSomeClass;
    }
    if (Residue) {
      SwitchOps[Sw].push_back(static_cast<unsigned>(Ops.size()));
      Ops.push_back(MicroOp{Sw, -1});
      continue;
    }
    for (unsigned C = 0; C != Classes.size(); ++C) {
      if (classSlice(Initial.table(Sw), Classes[C].Hdr) ==
          classSlice(Final.table(Sw), Classes[C].Hdr))
        continue;
      SwitchOps[Sw].push_back(static_cast<unsigned>(Ops.size()));
      Ops.push_back(MicroOp{Sw, static_cast<int>(C)});
    }
  }

  // Candidate order heuristic: try purely-additive ops first (installing
  // rules on switches that carry none for the affected scope) — those are
  // the safe "unreachable switch" updates the paper's §2 discussion
  // performs first. Completeness is unaffected: this only permutes the
  // DFS children (and, sharded, the work-unit order).
  OpOrder.resize(Ops.size());
  for (unsigned I = 0; I != Ops.size(); ++I)
    OpOrder[I] = I;
  auto IsAdditive = [&](unsigned I) {
    const MicroOp &Op = Ops[I];
    if (Op.ClassIdx < 0)
      return Initial.table(Op.Sw).empty();
    return classSlice(Initial.table(Op.Sw),
                      Classes[static_cast<size_t>(Op.ClassIdx)].Hdr)
        .empty();
  };
  std::stable_sort(OpOrder.begin(), OpOrder.end(),
                   [&](unsigned A, unsigned B) {
                     return IsAdditive(A) > IsAdditive(B);
                   });
}

/// One shard of the DFS: a private structure/checker pair walking work
/// units pulled from the shared cursor. With one shard this is exactly
/// the paper's sequential search.
class ShardSearcher {
public:
  ShardSearcher(SearchContext &Ctx, KripkeStructure &K,
                CheckerBackend &Checker, unsigned ShardIndex = 0)
      : Ctx(Ctx), K(K), Checker(Checker), ShardIndex(ShardIndex),
        Stop(Ctx.stopToken()) {
    Applied.resize(Ctx.Ops.size());
    // One frame per possible depth, sized once: tryCandidate holds
    // references into Frames across the recursive dfs() call, so the
    // vector must never reallocate.
    Frames.resize(Ctx.Ops.size() + 1);
    LocalOrder = Ctx.OpOrder;
    Activity.assign(Ctx.Ops.size(), 0);
    // DFS restarts engage where un-claiming is private: deterministic
    // mode (unit-local V) and sequential unlimited mode (SeqVisited has
    // a single owner). Sharded unlimited mode skips them — erasing from
    // the shared claim map would race sibling probes, and stealing
    // already repairs the imbalance restarts target there.
    RestartsOn = Ctx.Opts.Restarts && (Ctx.Deterministic || !Ctx.Sharded);
  }

  /// Binds the checker to this shard's structure and runs the initial
  /// full check (Fig. 4 line 7); counted like any other query but exempt
  /// from budget charging — setup cost, performed once per shard.
  CheckResult bindInitial() {
    PhaseScope Ps(obs::detailEnabled(), PhaseCheckNs);
    CheckResult R = Checker.bind(K, Ctx.Phi);
    ++Stats.CheckCalls;
    return R;
  }

  /// Pulls top-level units until they run out, the shard aborts, or a
  /// sibling wins; then (stealing mode) turns thief and drains the
  /// deques. Publishes this shard's sequence if it finds one.
  void runUnits() {
    for (;;) {
      if (AbortFlag)
        return; // Cause already recorded where the flag was set.
      // relaxed: advisory early-out; the authoritative claim is the
      // fetch_add below, and a stale read only costs one loop turn.
      if (Ctx.NextUnit.load(std::memory_order_relaxed) >=
          Ctx.OpOrder.size())
        break;  // Every unit claimed: nothing left here but stealing —
                // a stop or an expired wall observed now must not taint
                // the verdict; whether the search is exhaustive is
                // decided by the shards that own the claimed work.
      if (Stop.stopRequested()) {
        // A stop seen here leaves work units unexplored, so its cause
        // must be recorded: without a flag the verdict block would
        // mistake this cancellation for exhaustion and report a false
        // Impossible proof. noteStop() classifies — a sibling's Found
        // is not an abort at all.
        noteStop();
        return;
      }
      if (Ctx.softWallExpired()) {
        // The soft hint's only firing point: between units (and steal
        // tasks), so a unit that starts always runs to its
        // deterministic conclusion.
        // relaxed: a cause flag read only after every shard joined.
        Ctx.WallAbort.store(true, std::memory_order_relaxed);
        Ctx.Halt.requestStop();
        return;
      }
      // relaxed: the counter is the sole synchronization object here —
      // unit payloads are immutable after buildOps().
      size_t Unit = Ctx.NextUnit.fetch_add(1, std::memory_order_relaxed);
      if (Unit >= Ctx.OpOrder.size())
        break; // Genuine exhaustion: every unit claimed.
      // relaxed: advisory outranking bound (see recordWinner).
      if (Ctx.Deterministic &&
          Unit > Ctx.BestUnit.load(std::memory_order_relaxed))
        return; // A lower unit already won; everything from here on is
                // outranked (units are pulled in increasing order).
      if (Ctx.Stealing)
        Ctx.ActiveWorkers.fetch_add(1, std::memory_order_acq_rel);
      beginUnit(Unit);
      bool Won;
      {
        obs::TraceSpan Span("synth.unit");
        Won = tryCandidate(Ctx.OpOrder[Unit]);
        // Luby restarts: a conflict-heavy descent set RestartPending and
        // unwound, un-claiming only the abandoned path — every refuted
        // configuration stays claimed (and in W / the SAT layer), so the
        // re-entry replays the learned database into a search reordered
        // by activity. Terminating: each round's conflicts are fresh
        // refuted configurations, of which there are finitely many.
        while (!Won && RestartPending && !AbortFlag && !UnitStop) {
          RestartPending = false;
          ++RestartIdx;
          ConflictsSinceRestart = 0;
          ++Stats.Restarts;
          if (Ctx.Opts.ActivityOrdering)
            resortLocalOrder();
          Won = tryCandidate(Ctx.OpOrder[Unit]);
        }
        RestartPending = false;
      }
      Clock.stop(); // Inter-unit work (binds, waits) is not a phase.
      finishUnit();
      if (Ctx.Stealing)
        Ctx.ActiveWorkers.fetch_sub(1, std::memory_order_acq_rel);
      if (Won) {
        Ctx.recordWinner(Unit, AppliedSeq);
        return; // Keep the final structure; no rollback.
      }
    }
    if (Ctx.Stealing)
      stealLoop();
  }

  SynthStats Stats;

  /// Folds the phase accumulators into Stats. Called exactly once, by
  /// whoever consumes Stats after the shard retired (the shard thread
  /// itself, or runSearch's Finish for the primary).
  void finalizeStats() {
    Stats.CheckSeconds += PhaseCheckNs / 1e9;
    Stats.MutateSeconds += PhaseMutateNs / 1e9;
    Stats.PruneSeconds += PhasePruneNs / 1e9;
    Stats.SatSeconds += PhaseSatNs / 1e9;
    PhaseCheckNs = PhaseMutateNs = PhasePruneNs = PhaseSatNs = 0;
  }

  /// Unit-local wrong-set entries collected for the cross-job export
  /// (deterministic budget mode only — elsewhere entries live in the
  /// context's shared containers). Harvested after the shard retires.
  std::vector<std::pair<Bitset, Bitset>> LearnedWrong;

private:
  /// Resets the unit-scoped state before exploring unit \p Unit. In
  /// deterministic mode that is the whole point: fresh local V/W/SAT
  /// state and a fresh quota account make the unit's outcome a pure
  /// function of (instance, quota).
  void beginUnit(size_t Unit) {
    CurrentUnit = Unit;
    UnitStop = false;
    UnitTruncated = false;
    RestartPending = false;
    RestartIdx = 0;
    ConflictsSinceRestart = 0;
    if (Ctx.Opts.ActivityOrdering) {
      if (Ctx.Deterministic) {
        // Unit-local activity, like every other piece of unit state:
        // the candidate order inside a unit must be a pure function of
        // the unit, not of the units this shard happened to run before.
        std::fill(Activity.begin(), Activity.end(), 0);
        TotalActivity = 0;
        BumpsSinceDecay = 0;
        LocalOrder = Ctx.OpOrder;
      } else {
        resortLocalOrder();
      }
    }
    if (!Ctx.Deterministic)
      return;
    Account = Ctx.Ledger.openAccount(Unit);
    Checker.setBudget(&Account);
    UnitVisited.clear();
    UnitWrong.clear();
    FailuresSinceEtCheck = 0;
    if (Ctx.Opts.EarlyTermination) {
      UnitET.emplace();
      UnitET->setStopToken(Stop);
    }
  }

  /// Folds the finished (or abandoned) unit's accounting into the shard
  /// stats and the shared abort-cause flags.
  void finishUnit() {
    if (!Ctx.Deterministic)
      return;
    Stats.BudgetSpent += Account.spent();
    if (UnitET)
      Stats.SatClauses += UnitET->numClauses();
    if (UnitTruncated)
      // relaxed: a tally read only after every shard joined.
      Ctx.ExhaustedUnits.fetch_add(1, std::memory_order_relaxed);
    // Unit-local entries are still instance facts; keep them for the
    // cross-job export instead of dropping them with the unit. (Budget
    // mode never *imports*, but what a budgeted probe learned is gold
    // for the unbudgeted runs that follow it.)
    if (Ctx.ExportLearning)
      LearnedWrong.insert(LearnedWrong.end(), UnitWrong.begin(),
                          UnitWrong.end());
    Checker.setBudget(nullptr);
  }

  /// The recursive part of Fig. 4: try every remaining candidate from
  /// the current configuration. In stealing mode, shallow candidates
  /// may be published for an idle sibling instead of descended into —
  /// the claim protocol arbitrates duplication either way, so the
  /// subtree is explored exactly once no matter who reaches it.
  bool dfs() {
    if (Applied.count() == Ctx.Ops.size())
      return true;
    for (unsigned CandIdx = 0; CandIdx != LocalOrder.size(); ++CandIdx) {
      unsigned I = LocalOrder[CandIdx];
      if (Applied.test(I))
        continue;
      // relaxed: advisory idle hint; a stale zero just skips one offer.
      if (Ctx.Stealing && AppliedSeq.size() <= Ctx.StealDepthLimit &&
          Ctx.IdleShards.load(std::memory_order_relaxed) > 0 &&
          coldCandidate(I) && offerSteal(I))
        continue; // Someone else explores this edge; see stealLoop.
      if (tryCandidate(I))
        return true;
      if (AbortFlag || UnitStop || RestartPending)
        return false;
    }
    return false;
  }

  /// Steal-offer heuristic: keep conflict-hot candidates local — the
  /// refutations learned around them live in this shard's recent path
  /// context — and publish only the cold ones (activity at or below the
  /// mean). With activity ordering off, everything is offered, which is
  /// the pre-existing behavior.
  bool coldCandidate(unsigned I) const {
    if (!Ctx.Opts.ActivityOrdering)
      return true;
    return Activity[I] * Ctx.Ops.size() <= TotalActivity;
  }

  /// The body of one DFS edge: prune, claim, apply op \p I, recheck,
  /// recurse, roll back. Returns true iff a full correct sequence was
  /// completed below this edge. All scratch state lives in the depth's
  /// DfsFrame, so the steady-state edge allocates nothing.
  bool tryCandidate(unsigned I) {
    Clock.switchTo(PhasePruneNs); // Free if prune is already open.
    DfsFrame &F = Frames[AppliedSeq.size()];
    Bitset &Next = F.Next;
    Next = Applied;
    Next.set(I);
    if (Ctx.Deterministic) {
      // Unit-local pruning: nothing another shard does can change which
      // prefixes this unit affords, so the charge sequence below is
      // deterministic. The claim comes first (mirroring the concurrent
      // branch below) so a refuted configuration fires its conflict
      // event exactly once — noteRefuted feeds the activity and restart
      // machinery, and its event count must be a property of the
      // configuration, not of how many paths re-reach it.
      if (!UnitVisited.insert(Next)) {
        ++Stats.VisitedPrunes;
        return false;
      }
      if (Ctx.Opts.CexPruning && matchesUnitWrong(Next)) {
        ++Stats.CexPrunes;
        noteRefuted(I);
        return false;
      }
      if (Stop.stopRequested()) {
        noteStop();
        return false;
      }
      // relaxed: advisory outranking bound (see recordWinner).
      if (Ctx.BestUnit.load(std::memory_order_relaxed) < CurrentUnit) {
        // Outranked mid-unit by a lower winner; every unit this shard
        // could still pull is outranked too, so end the shard. No cause
        // flag: a recorded winner makes this a Success, not an abort.
        AbortFlag = true;
        return false;
      }
      if (!Account.canSpend()) {
        // Quota dry mid-subtree: abandon this unit (recorded as
        // truncation by finishUnit) but keep pulling later units, which
        // own their quotas and may still conclude deterministically.
        UnitTruncated = true;
        UnitStop = true;
        return false;
      }
    } else {
      // The claim comes first: one striped-lock acquisition replaces
      // the old contains-probe-then-insert pair (two acquisitions on
      // the one path every explored edge takes). Losing the claim is
      // the visited prune; winning it commits this shard to settling
      // the configuration — by the W/seed refutations below (the entry
      // proves the check would fail, so "settled" needs no descent) or
      // by exploring it.
      if (!Ctx.visitedClaim(Next)) {
        ++Stats.VisitedPrunes;
        return false;
      }
      // Imported (cross-job) refutations before run-local ones: each
      // seeded prune skips a check an earlier digest-identical run
      // already paid for. Seeded prunes fire the conflict event too —
      // refutedness is an instance fact, and a seeded run must follow
      // the same activity/restart trajectory as the run that would have
      // refuted the configuration by checking it (this is what keeps
      // learning sequence-invariant with the ordering knobs on).
      if (!Ctx.SeedWrong.empty() && Ctx.matchesSeed(Next)) {
        ++Stats.SeededPrunes;
        noteRefuted(I);
        return false;
      }
      if (Ctx.Opts.CexPruning && Ctx.matchesWrong(Next)) {
        ++Stats.CexPrunes;
        noteRefuted(I);
        return false;
      }
      // A stop observed after the claim leaves the configuration
      // claimed-but-unexplored, which is fine: noteStop records the
      // abort cause, so the verdict block never mistakes this
      // truncated run for an exhaustive proof.
      if (Stop.stopRequested()) {
        noteStop();
        return false;
      }
    }

    const MicroOp &Op = Ctx.Ops[I];
    const Header *ClassHdr =
        Op.ClassIdx < 0
            ? nullptr
            : &Ctx.Classes[static_cast<size_t>(Op.ClassIdx)].Hdr;
    Clock.switchTo(PhaseMutateNs);
    // Switch-granularity ops install the final table verbatim: point at
    // it instead of copying. Rule granularity composes a fresh slice
    // into the frame's table (whose buffers the assignment reuses).
    const Table *NewT;
    if (ClassHdr) {
      F.NewTable = opResultTable(K.config().table(Op.Sw),
                                 Ctx.Final.table(Op.Sw), ClassHdr);
      NewT = &F.NewTable;
    } else {
      NewT = &Ctx.Final.table(Op.Sw);
    }
    F.Changed.clear();
    K.applySwitchUpdate(Op.Sw, *NewT, F.Changed, F.Undo);
    uint64_t ApplyNs = Clock.switchTo(PhaseCheckNs);
    if (Prof)
      mutateLatency().record(ApplyNs);

    UpdateInfo Info;
    Info.Sw = Op.Sw;
    Info.OldTable = &F.Undo.OldTable;
    Info.NewTable = NewT;
    Info.ChangedStates = &F.Changed;

    // The checker charges the unit account here (mc/CheckerBackend.h).
    CheckResult Res = Checker.recheckAfterUpdate(Info);
    ++Stats.CheckCalls;

    bool Success = false;
    if (Res.Holds) {
      Applied.set(I);
      AppliedSeq.push_back(I);
      // The recursion continues this timeline: the child's first
      // switchTo closes the check slice, no boundary read needed.
      Success = dfs();
      if (!Success) {
        Applied.reset(I);
        AppliedSeq.pop_back();
        // A pending restart abandons this configuration unexplored, not
        // refuted: release the claim so the re-entered unit can reach
        // it again. (Refuted configurations keep their claims — they
        // are the learned database the restart replays.)
        if (RestartPending)
          unclaim(Next);
      }
    } else {
      // A failed recheck refutes the claimed configuration: the third
      // source of conflict events (besides seed- and W-matches above).
      noteRefuted(I);
      if (Ctx.Opts.CexPruning && !Res.Cex.empty() &&
          Checker.providesCounterexamples()) {
        // Mostly SAT-layer work (constraint derivation + clause push);
        // the W append rides along.
        Clock.switchTo(PhaseSatNs);
        learnCex(Res.Cex, Next);
      }
    }

    if (Success)
      return true; // Keep the structure mutated; the caller replays.

    Clock.switchTo(PhaseMutateNs);
    Checker.notifyRollback();
    K.undo(std::move(F.Undo)); // Donates the buffers back for reuse.
    uint64_t UndoNs = Clock.switchTo(PhaseSatNs);
    if (Prof)
      mutateLatency().record(UndoNs);

    if (Ctx.Opts.EarlyTermination && !Res.Holds &&
        ++FailuresSinceEtCheck >= EtCheckInterval) {
      FailuresSinceEtCheck = 0;
      // Deterministic mode consults the unit-local solver (its clause
      // set, and therefore its verdict, is a pure function of the unit);
      // an UNSAT answer is an instance-level proof either way.
      EarlyTermination &ET = Ctx.Deterministic ? *UnitET : Ctx.ET;
      if (ET.impossible()) {
        Stats.EarlyTerminated = true;
        // relaxed: a cause flag read only after every shard joined.
        Ctx.EtImpossible.store(true, std::memory_order_relaxed);
        Ctx.Halt.requestStop();
        AbortFlag = true;
      }
    }
    return false;
  }

  /// Publishes candidate \p I (explored from the current applied
  /// prefix) on this shard's own deque instead of descending into it.
  /// False when the deque is full — the caller descends itself.
  bool offerSteal(unsigned I) {
    StealTask T;
    T.Path = AppliedSeq;
    T.Cand = I;
    T.Unit = CurrentUnit;
    return Ctx.Deques[ShardIndex]->tryPush(std::move(T));
  }

  /// Claims a task: own deque first (newest offer — the hot rollback
  /// path), then the siblings' fronts (their oldest, shallowest
  /// offers). Registers this shard as active *before* scanning and
  /// stays registered on success; only a failed full scan deregisters.
  /// Scanning the own deque first is what makes the exit protocol
  /// sound: only this shard pushes to its deque, so it cannot exit —
  /// which requires a failed scan — while its own offers are
  /// undrained, and therefore no published subtree is ever stranded.
  bool takeTask(StealTask &T) {
    Ctx.ActiveWorkers.fetch_add(1, std::memory_order_acq_rel);
    if (Ctx.Deques[ShardIndex]->tryPopBack(T))
      return true;
    for (size_t D = 0; D != Ctx.Deques.size(); ++D) {
      if (D == ShardIndex)
        continue;
      if (Ctx.Deques[D]->tryPopFront(T))
        return true;
    }
    Ctx.ActiveWorkers.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }

  /// Executes one stolen subtree: replay the path with raw structure
  /// updates (per-step rechecks would be wasted — the owner already
  /// verified every prefix), re-bind the checker once at the replayed
  /// configuration, then run the normal claimed exploration of the
  /// candidate. Returns true iff this completed a winning sequence
  /// (already recorded); otherwise the shard is back at the initial
  /// configuration when this returns.
  bool runStolen(const StealTask &T) {
    assert(AppliedSeq.empty() && "stolen task on a dirty shard");
    CurrentUnit = T.Unit; // Nested offers charge the right unit.
    std::vector<KripkeStructure::UndoRecord> Undos;
    Undos.reserve(T.Path.size());
    for (unsigned OpIdx : T.Path) {
      const MicroOp &Op = Ctx.Ops[OpIdx];
      const Header *ClassHdr =
          Op.ClassIdx < 0
              ? nullptr
              : &Ctx.Classes[static_cast<size_t>(Op.ClassIdx)].Hdr;
      Table NewTable = opResultTable(K.config().table(Op.Sw),
                                     Ctx.Final.table(Op.Sw), ClassHdr);
      std::vector<StateId> Changed;
      Undos.push_back(K.applySwitchUpdate(Op.Sw, NewTable, Changed));
      Applied.set(OpIdx);
      AppliedSeq.push_back(OpIdx);
    }
    CheckResult BindRes;
    {
      PhaseScope Ps(obs::detailEnabled(), PhaseCheckNs);
      BindRes = Checker.bind(K, Ctx.Phi);
    }
    ++Stats.CheckCalls; // The price of a steal: one extra bind query.
    ++Stats.StolenTasks;
    // The owner reached this prefix through successful rechecks, so the
    // bind can only fail if the backend is nondeterministic — in which
    // case exploring would be unsound; skip the task. (Its subtree was
    // claimed by nobody: any shard reaching it normally still can.)
    bool Won = BindRes.Holds && tryCandidate(T.Cand);
    Clock.stop(); // Steal-queue scanning between tasks is not a phase.
    if (Won) {
      Ctx.recordWinner(T.Unit, AppliedSeq);
      return true; // Keep the final structure; no rollback.
    }
    // Unwind the replay (tryCandidate already restored the replayed
    // configuration). The checker is stale after these raw undos, but
    // the next consumer — another runStolen — re-binds regardless.
    for (size_t S = Undos.size(); S-- > 0;) {
      K.undo(std::move(Undos[S]));
      Applied.reset(T.Path[S]);
    }
    AppliedSeq.clear();
    return false;
  }

  /// The thief phase, entered once every top-level unit is claimed:
  /// drain the deques until no task is found while no worker is active
  /// (then nothing can be published anymore), a winner appears, or the
  /// shard aborts.
  void stealLoop() {
    // relaxed: advisory idle count consumed by the offerSteal hint.
    Ctx.IdleShards.fetch_add(1, std::memory_order_relaxed);
    StealTask T;
    for (;;) {
      if (AbortFlag)
        break;
      if (Stop.stopRequested()) {
        noteStop();
        break;
      }
      if (Ctx.softWallExpired()) {
        // relaxed: a cause flag read only after every shard joined.
        Ctx.WallAbort.store(true, std::memory_order_relaxed);
        Ctx.Halt.requestStop();
        break;
      }
      if (takeTask(T)) {
        bool Won = runStolen(T);
        Ctx.ActiveWorkers.fetch_sub(1, std::memory_order_acq_rel);
        if (Won || AbortFlag)
          break;
        continue;
      }
      // Failed scan (takeTask dropped the active mark): exit only once
      // nobody holds work — an active worker may still publish.
      if (Ctx.ActiveWorkers.load(std::memory_order_acquire) == 0)
        break;
      std::this_thread::yield();
    }
    // relaxed: advisory idle count (see fetch_add above).
    Ctx.IdleShards.fetch_sub(1, std::memory_order_relaxed);
  }

  void learnCex(const std::vector<StateId> &CexStates, const Bitset &Bits) {
    // The counterexample trace depends only on how the switches it
    // crosses route its own traffic class, so any configuration agreeing
    // with the current one on those operations reproduces the violation
    // (§4.2 A). Although the trace was found on this shard's structure,
    // digest-equal structures number states identically, so the derived
    // (mask, value) constraint is an instance fact every shard may prune
    // on.
    std::vector<uint8_t> SwInCex(Ctx.Topo.numSwitches(), 0);
    std::vector<uint8_t> ClassInCex(Ctx.Classes.size(), 0);
    for (StateId S : CexStates) {
      SwInCex[K.stateSwitch(S)] = 1;
      ClassInCex[K.stateClass(S)] = 1;
    }

    Bitset Mask(Ctx.Ops.size());
    for (SwitchId Sw = 0; Sw != Ctx.Topo.numSwitches(); ++Sw) {
      if (!SwInCex[Sw])
        continue;
      for (unsigned OpIdx : Ctx.SwitchOps[Sw]) {
        const MicroOp &Op = Ctx.Ops[OpIdx];
        // Rule-granularity ops for unrelated classes do not influence
        // the trace; leaving them out strengthens the pruning.
        if (Op.ClassIdx >= 0 &&
            !ClassInCex[static_cast<size_t>(Op.ClassIdx)])
          continue;
        Mask.set(OpIdx);
      }
    }
    if (Mask.none())
      return; // Defensive: a cex with no in-diff switch teaches nothing.
    Bitset Value = Bits & Mask;
    // Guard before ANY mutation: a counterexample independent of every
    // applied update (Value empty) describes a violation the verified
    // initial configuration would exhibit too, so the entry it would
    // plant — (Mask, all-zeros), matching every configuration that has
    // not yet touched those switches — is unsound and must never reach
    // the wrong-set or the SAT layer. A counterexample-producing backend
    // cannot generate one (see EarlyTermination.h), but a buggy or
    // approximating backend must degrade to "learn nothing", not to an
    // incorrect Impossible.
    if (Value.none())
      return;

    // Conflict clause minimization: resolve the fresh entry against
    // previously learned ones to shrink it to a (greedy) minimal core,
    // then drop it outright if a stored entry already subsumes it. The
    // witness database is the unit's own entries in deterministic mode
    // and this shard's in-order learn log otherwise — both deterministic
    // scans, so minimized masks stay a pure function of the search
    // history that produced them.
    const std::vector<std::pair<Bitset, Bitset>> &Witnesses =
        Ctx.Deterministic ? UnitWrong : LocalLearned;
    if (Ctx.Opts.ClauseMinimization) {
      uint64_t Dropped = minimizeEntry(Mask, Value, Witnesses);
      if (Dropped) {
        ++Stats.ClausesMinimized;
        Stats.LiteralsDropped += Dropped;
      }
      // Local subsumption: a witness with a subset mask agreeing on it
      // already refutes everything this entry would — learn nothing.
      unsigned Scans = 0;
      for (size_t W = Witnesses.size();
           W-- > 0 && Scans < MinimizeScanBudget;) {
        ++Scans;
        const std::pair<Bitset, Bitset> &E = Witnesses[W];
        if (Mask.contains(E.first) && (Value & E.first) == E.second) {
          ++Stats.SubsumedDropped;
          return;
        }
      }
    }

    if (Ctx.Opts.EarlyTermination)
      (Ctx.Deterministic ? *UnitET : Ctx.ET)
          .addMaskValueConstraint(Mask, Value);
    if (Ctx.Deterministic) {
      UnitWrong.push_back({std::move(Mask), std::move(Value)});
    } else {
      if (Ctx.Opts.ClauseMinimization)
        LocalLearned.push_back({Mask, Value});
      Ctx.addWrong(std::move(Mask), std::move(Value));
    }
  }

  /// Conflict clause minimization by self-subsumption. The entry
  /// (Mask, Value) refutes every configuration agreeing with Value on
  /// Mask. For a mask bit b, the configurations agreeing with the entry
  /// on Mask \ {b} split on b: the half agreeing at b is refuted by the
  /// entry itself, and a witness (M2, V2) with M2 ⊆ Mask, b ∈ M2, and
  /// V2 agreeing with Value on M2 everywhere except exactly at b
  /// refutes the other half — so b resolves away and the shrunken
  /// entry (Mask \ {b}, Value \ {b}) is sound, pruning strictly more.
  /// Greedy over bits in ascending order, newest witnesses first,
  /// bounded by a deterministic scan budget; never empties the value
  /// part (learnCex's soundness guard). Returns the bits dropped.
  uint64_t minimizeEntry(Bitset &Mask, Bitset &Value,
                         const std::vector<std::pair<Bitset, Bitset>> &Ws) {
    if (Ws.empty())
      return 0;
    uint64_t Dropped = 0;
    unsigned Scans = 0;
    Bitset Diff;
    for (size_t B = 0; B != Mask.size(); ++B) {
      if (Scans >= MinimizeScanBudget)
        break;
      if (!Mask.test(B))
        continue;
      if (Value.test(B) && Value.count() == 1)
        continue; // The value part must stay nonempty.
      for (size_t W = Ws.size(); W-- > 0 && Scans < MinimizeScanBudget;) {
        ++Scans;
        const std::pair<Bitset, Bitset> &E = Ws[W];
        if (!E.first.test(B) || !Mask.contains(E.first))
          continue;
        Diff = Value;
        Diff &= E.first;
        Diff ^= E.second;
        if (!Diff.test(B) || Diff.count() != 1)
          continue;
        Mask.reset(B);
        Value.reset(B);
        ++Dropped;
        break;
      }
    }
    return Dropped;
  }

  bool matchesUnitWrong(const Bitset &Bits) const {
    return matchesAny(UnitWrong, Bits);
  }

  /// The conflict event: a claimed configuration proved refuted — by a
  /// seed match, a W match, or a failed recheck. Refutedness is a
  /// semantic fact about the configuration (independent of which of the
  /// three settled it), so the event stream, and with it the activity
  /// scores and restart points, is identical across checker backends
  /// and across seeded/unseeded runs. Bumps the candidate's activity
  /// and advances the Luby restart schedule.
  void noteRefuted(unsigned I) {
    if (Ctx.Opts.ActivityOrdering)
      bumpActivity(I);
    if (!RestartsOn || RestartPending)
      return;
    ++ConflictsSinceRestart;
    if (ConflictsSinceRestart < sat::luby(RestartIdx) * DfsRestartBase)
      return;
    if (Ctx.Deterministic) {
      // A restart replays the unit prefix through fresh rechecks;
      // charge the account so restart-heavy units pay for their churn
      // and the outcome stays a pure function of (job, budget).
      if (!Account.canSpend())
        return;
      Account.charge();
    }
    RestartPending = true;
  }

  /// +1 per conflict event, everything halved every
  /// ActivityDecayInterval bumps — the integer analogue of VSIDS decay,
  /// kept exact so replays reproduce the scores bit-for-bit.
  void bumpActivity(unsigned I) {
    Activity[I] += 1;
    TotalActivity += 1;
    if (++BumpsSinceDecay < ActivityDecayInterval)
      return;
    BumpsSinceDecay = 0;
    TotalActivity = 0;
    for (uint64_t &A : Activity) {
      A >>= 1;
      TotalActivity += A;
    }
  }

  /// Re-derives LocalOrder from the activity scores: hot candidates
  /// first; ties (and the all-zero initial state) keep the base
  /// additive-first order via the stable sort — the deterministic
  /// tie-break. Called only at unit starts and restart points, so the
  /// order is frozen across the DFS levels of one descent.
  void resortLocalOrder() {
    LocalOrder = Ctx.OpOrder;
    std::stable_sort(LocalOrder.begin(), LocalOrder.end(),
                     [this](unsigned A, unsigned B) {
                       return Activity[A] > Activity[B];
                     });
  }

  /// Releases a configuration claim during a restart unwind. Only ever
  /// called where the claim container is private (the ctor's RestartsOn
  /// gate): the unit-local table, or SeqVisited with its single owner.
  void unclaim(const Bitset &B) {
    if (Ctx.Deterministic)
      UnitVisited.erase(B);
    else
      Ctx.SeqVisited.erase(B);
  }

  /// A stop observed at a checkpoint ends this shard; classify why. A
  /// sibling's Found token is no abort at all — the recorded winner
  /// outranks everything, and flagging it would leak a phantom budget
  /// abort into stats and verdict classification. A Halt means the
  /// shard that fired it already recorded the cause. Anything left is
  /// the caller's external token.
  void noteStop() {
    AbortFlag = true;
    if (Ctx.Found.token().stopRequested())
      return;
    if (Ctx.Halt.token().stopRequested())
      return;
    // relaxed: a cause flag read only after every shard joined.
    Ctx.ExternalAbort.store(true, std::memory_order_relaxed);
    Ctx.Halt.requestStop();
  }

  SearchContext &Ctx;
  KripkeStructure &K;       // Shard-private; mutate/rollback stays here.
  CheckerBackend &Checker;  // Shard-private, follows K.
  /// This shard's slot in Ctx.Deques (primary 0, thread T -> T+1).
  unsigned ShardIndex;
  StopToken Stop;

  Bitset Applied;
  std::vector<unsigned> AppliedSeq;
  bool AbortFlag = false;

  /// Per-depth scratch for one DFS edge, reused across every candidate
  /// tried at that depth — the steady-state search allocates nothing.
  /// The undo record's buffers cycle through the structure itself
  /// (undo(&&) donates them back; see kripke/Kripke.h).
  struct DfsFrame {
    std::vector<StateId> Changed;
    Table NewTable;
    KripkeStructure::UndoRecord Undo;
    Bitset Next;
  };
  /// Indexed by depth (AppliedSeq.size()); sized in the constructor and
  /// never resized — tryCandidate holds references into it across
  /// recursion.
  std::vector<DfsFrame> Frames;
  /// Phase-breakdown accumulators (ns); zero unless the obs detail tier
  /// was on. finalizeStats() converts them into the SynthStats seconds.
  uint64_t PhaseCheckNs = 0;
  uint64_t PhaseMutateNs = 0;
  uint64_t PhasePruneNs = 0;
  uint64_t PhaseSatNs = 0;
  /// Whether the obs detail tier was on when this shard started; the
  /// searcher lives inside one run, so the flag cannot change under it.
  const bool Prof = obs::detailEnabled();
  /// The shard's phase timeline, spanning units and the DFS recursion;
  /// stopped at unit/steal boundaries so only search work is attributed.
  PhaseClock Clock{Prof};
  /// The SAT check batches failures: solving after every learned clause
  /// is wasted work when the constraints are still easily satisfiable.
  unsigned FailuresSinceEtCheck = 0;
  static constexpr unsigned EtCheckInterval = 8;

  // Unit-scoped state (deterministic budget mode); reset by beginUnit.
  size_t CurrentUnit = 0;
  BudgetAccount Account;
  /// Abandon the current unit (quota dry) but keep the shard alive.
  bool UnitStop = false;
  /// The quota ran dry mid-subtree — distinct from finishing a unit
  /// with the quota exactly spent, which is a complete exploration.
  bool UnitTruncated = false;
  FlatBitsetSet UnitVisited;
  std::vector<std::pair<Bitset, Bitset>> UnitWrong;
  /// Unit-local SAT layer (constructed per unit so its clause set is a
  /// function of the unit alone); only engaged in deterministic mode.
  std::optional<EarlyTermination> UnitET;

  // Conflict-driven search state (activity ordering + restarts); see
  // noteRefuted and the docs/ARCHITECTURE.md "Conflict-driven search"
  // section.
  /// The DFS candidate order, re-derived from activity at unit starts
  /// and restart points; equals Ctx.OpOrder with the knob off.
  std::vector<unsigned> LocalOrder;
  /// Per-candidate conflict-participation scores (integer VSIDS).
  std::vector<uint64_t> Activity;
  uint64_t TotalActivity = 0;
  unsigned BumpsSinceDecay = 0;
  static constexpr unsigned ActivityDecayInterval = 256;
  /// Restarts enabled for this shard (knob + mode gate; see the ctor).
  bool RestartsOn = false;
  /// Set by noteRefuted at a Luby point; dfs unwinds to the unit root,
  /// un-claiming the abandoned path, and runUnits re-enters.
  bool RestartPending = false;
  uint64_t RestartIdx = 0;
  uint64_t ConflictsSinceRestart = 0;
  /// Conflicts before the first restart (Luby-scaled afterwards). A
  /// restart re-pays the checker queries of the abandoned held path, so
  /// the base is deliberately high: restarts reorder pathological
  /// searches without taxing well-behaved ones.
  static constexpr uint64_t DfsRestartBase = 2048;
  /// Clause-minimization witness database outside deterministic mode
  /// (which scans UnitWrong instead): this shard's own entries in learn
  /// order. Shard-local on purpose — scanning the shared W would make
  /// minimized masks depend on sibling timing.
  std::vector<std::pair<Bitset, Bitset>> LocalLearned;
  /// Witness entries examined per learnCex call, a hard deterministic
  /// bound: minimization cost and results are a pure function of the
  /// learn history, never of wall-clock or scheduling.
  static constexpr unsigned MinimizeScanBudget = 4096;
};

/// Replays \p Seq from the initial configuration, snapshotting the table
/// each op installs; a wait separates every two updates (careful
/// sequence, Def. 5).
CommandSeq buildCommands(const SearchContext &Ctx,
                         const std::vector<unsigned> &Seq) {
  CommandSeq Out;
  Config Cur = Ctx.Initial;
  for (size_t Step = 0; Step != Seq.size(); ++Step) {
    const MicroOp &Op = Ctx.Ops[Seq[Step]];
    const Header *ClassHdr =
        Op.ClassIdx < 0
            ? nullptr
            : &Ctx.Classes[static_cast<size_t>(Op.ClassIdx)].Hdr;
    Table NewTable =
        opResultTable(Cur.table(Op.Sw), Ctx.Final.table(Op.Sw), ClassHdr);
    Cur.setTable(Op.Sw, NewTable);
    if (Step != 0)
      Out.push_back(Command::wait());
    Out.push_back(Command::update(Op.Sw, std::move(NewTable)));
  }
  return Out;
}

SynthResult runSearch(const Topology &Topo, const Config &Initial,
                      const Config &Final,
                      const std::vector<TrafficClass> &Classes, Formula Phi,
                      CheckerBackend &Checker, const SynthOptions &Opts) {
  SynthResult Result;
  obs::TraceSpan SearchSpan("synth.search");
  SearchContext Ctx(Topo, Initial, Final, Classes, Phi, Opts);
  Ctx.ET.setStopToken(Ctx.stopToken());
  Ctx.buildOps();
  Ctx.Wrong.reset(Ctx.Ops.size());
  Ctx.SeedWrong.reset(Ctx.Ops.size());

  // A finite check budget engages deterministic mode: carve it into
  // per-unit quotas once, from (budget, #units) alone. UnitCheckCalls
  // bounds each unit directly and wins over the carved total.
  if (Opts.UnitCheckCalls > 0)
    Ctx.Ledger =
        BudgetLedger::perUnit(Opts.UnitCheckCalls, Ctx.OpOrder.size());
  else if (Opts.MaxCheckCalls > 0)
    Ctx.Ledger =
        BudgetLedger::carveTotal(Opts.MaxCheckCalls, Ctx.OpOrder.size());
  Ctx.Deterministic = Ctx.Ledger.limited();

  // Cross-job learning (support/ConstraintStore.h): import the wrong-set
  // entries earlier runs of this (scenario, granularity) published and
  // seed the pruning state before anything searches. Requires CexPruning
  // — the machinery that produces and consumes the entries. Gated off in
  // deterministic budget mode, whose outcome must stay a pure function
  // of (job, budget): an import would let process history decide which
  // checks a quota affords. Sound everywhere it engages: every entry
  // records a genuine counterexample, so a seeded prune skips a check
  // that could only have failed, and a seeded SAT constraint is
  // satisfied by every genuinely correct order.
  const bool LearnOn = Opts.Learning != nullptr &&
                       Opts.LearningScenario != Digest{} &&
                       Opts.CexPruning && !Ctx.Ops.empty();
  Digest LearnKey;
  if (LearnOn) {
    LearnKey = ConstraintStore::keyFor(Opts.LearningScenario,
                                       Opts.RuleGranularity);
    Ctx.ExportLearning = true;
    if (!Ctx.Deterministic) {
      for (std::pair<Bitset, Bitset> &E :
           Opts.Learning->fetch(LearnKey, Ctx.Ops.size())) {
        if (Opts.EarlyTermination)
          Ctx.ET.addMaskValueConstraint(E.first, E.second);
        Ctx.SeedWrong.add(std::move(E.first), std::move(E.second));
      }
    }
  }

  // Decide the mode before anything searches: Sharded selects the
  // concurrent pruning containers, so it must be constant from the
  // first probe on.
  unsigned Shards = Opts.Shards == 0 ? 1 : Opts.Shards;
  Shards =
      static_cast<unsigned>(std::min<size_t>(Shards, Ctx.OpOrder.size()));
  if (!Opts.ShardCheckerFactory)
    Shards = 1; // No way to build sibling checkers; degrade gracefully.
  Ctx.Sharded = Shards > 1;

  // Work-stealing engages only where it is sound *and* useful: sharded
  // (someone to steal from) and non-deterministic (budget mode's
  // unit-local V/W/quota state cannot be handed across shards without
  // making the verdict depend on scheduling).
  Ctx.Stealing = Ctx.Sharded && !Ctx.Deterministic && Opts.WorkStealing;
  Ctx.StealDepthLimit = Opts.StealDepth;
  if (Ctx.Stealing) {
    Ctx.Deques.reserve(Shards);
    for (unsigned S = 0; S != Shards; ++S)
      Ctx.Deques.push_back(std::make_unique<StealDeque>());
  }

  KripkeStructure K(Topo, Initial, Classes);
  ShardSearcher Primary(Ctx, K, Checker);
  CheckResult InitRes = Primary.bindInitial();

  SynthStats Total;
  // Captured when the search (not the whole run) concludes, so
  // SynthSeconds never includes command building or wait removal —
  // WaitRemovalSeconds measures the latter separately.
  double SearchSeconds = 0.0;
  // Budget-mode learning export: extra shards move their unit-local
  // entries here before their threads join (elsewhere the shared W
  // containers already hold everything).
  std::vector<std::vector<std::pair<Bitset, Bitset>>> ShardLearned;
  auto Finish = [&](SynthStatus Status) {
    Primary.finalizeStats();
    Total.mergeFrom(Primary.Stats);
    // Unit-local solvers folded their clause counts into shard stats
    // already (deterministic mode); the shared solver adds the rest.
    Total.SatClauses += Ctx.ET.numClauses();
    if (LearnOn) {
      // Publish what this run learned — every entry passed the learn-
      // time guard, and entries from interrupted or aborted runs are
      // just as sound (each stands on its own counterexample).
      std::vector<std::pair<Bitset, Bitset>> Learned;
      if (Ctx.Deterministic) {
        Learned = std::move(Primary.LearnedWrong);
        for (std::vector<std::pair<Bitset, Bitset>> &L : ShardLearned)
          Learned.insert(Learned.end(), L.begin(), L.end());
      } else {
        Learned = Ctx.Wrong.snapshot();
      }
      Total.ImportedConstraints = Ctx.SeedWrong.size();
      size_t StoreDropped = 0;
      Total.ExportedConstraints = Opts.Learning->publish(
          LearnKey, Ctx.Ops.size(), Learned, &StoreDropped);
      Total.SubsumedDropped += StoreDropped;
      // An Impossible verdict is a ground instance fact — a SAT proof
      // or an exhaustive exploration, never a truncation (which reports
      // Aborted): record it so the engine can shed portfolio members
      // whose standalone run could only rediscover it.
      if (Status == SynthStatus::Impossible)
        Opts.Learning->markImpossible(LearnKey, Ctx.Ops.size());
    }
    Total.EarlyTerminated |= Ctx.EtImpossible.load();
    Total.ExhaustedUnits = Ctx.ExhaustedUnits.load();
    Total.HitBudget = Ctx.WallAbort.load() || Total.ExhaustedUnits > 0;
    Total.Interrupted = Ctx.ExternalAbort.load() || Ctx.WallAbort.load();
    if (Ctx.Deterministic) {
      uint64_t Cap = Ctx.Ledger.totalQuota();
      Total.BudgetRemaining =
          Cap > Total.BudgetSpent ? Cap - Total.BudgetSpent : 0;
    }
    Total.SynthSeconds = SearchSeconds;
    Result.Status = Status;
    Result.Stats = Total;
  };

  if (Opts.Stop.stopRequested()) {
    SearchSeconds = Ctx.Clock.seconds();
    Finish(SynthStatus::Aborted);
    return Result;
  }
  if (!InitRes.Holds) {
    SearchSeconds = Ctx.Clock.seconds();
    Finish(SynthStatus::InitialViolation);
    return Result;
  }
  if (Ctx.Ops.empty()) {
    // Initial == Final (no diff): the empty sequence is correct.
    SearchSeconds = Ctx.Clock.seconds();
    Finish(SynthStatus::Success);
    return Result;
  }
  if (!Ctx.SeedWrong.empty() && Opts.EarlyTermination &&
      Ctx.ET.impossible()) {
    // The imported constraints alone are contradictory: no simple order
    // exists, proven before a single work unit ran. A reuse-off search
    // reaches the same verdict (by its own SAT proof or by exhaustion)
    // — the store only made it instant.
    // relaxed: single-threaded here (before the shards spawn).
    Ctx.EtImpossible.store(true, std::memory_order_relaxed);
    SearchSeconds = Ctx.Clock.seconds();
    Finish(SynthStatus::Impossible);
    return Result;
  }

  if (Shards <= 1) {
    Primary.runUnits();
  } else {
    // Extra shards run on their own threads — deliberately not on the
    // engine's job pool, whose workers may all be blocked inside jobs
    // waiting for exactly these threads (see engine/Engine.h).
    std::vector<SynthStats> ShardStats(Shards - 1);
    ShardLearned.resize(Shards - 1);
    std::vector<std::thread> Threads;
    Threads.reserve(Shards - 1);
    for (unsigned T = 0; T != Shards - 1; ++T) {
      Threads.emplace_back([&, T] {
        obs::TraceSpan ShardSpan("synth.shard");
        std::unique_ptr<CheckerBackend> ShardChecker =
            Opts.ShardCheckerFactory();
        if (!ShardChecker)
          return; // Fewer shards; the rest still cover every unit.
        KripkeStructure ShardK(Topo, Initial, Classes);
        ShardSearcher Shard(Ctx, ShardK, *ShardChecker, T + 1);
        CheckResult BindRes = Shard.bindInitial();
        // The primary bind verified the initial configuration; a shard
        // bind can only disagree if the backend is nondeterministic, in
        // which case exploring would be unsound — sit this run out.
        if (BindRes.Holds)
          Shard.runUnits();
        // Fold this checker's real work into the shard's stats before
        // the checker dies with this thread.
        Shard.Stats.BackendQueries += ShardChecker->numQueries();
        Shard.Stats.CacheHits += ShardChecker->cacheHits();
        Shard.Stats.CacheMisses += ShardChecker->cacheMisses();
        Shard.finalizeStats();
        ShardStats[T] = std::move(Shard.Stats);
        ShardLearned[T] = std::move(Shard.LearnedWrong);
      });
    }
    Primary.runUnits();
    for (std::thread &T : Threads)
      T.join();
    for (const SynthStats &S : ShardStats)
      Total.mergeFrom(S);
  }

  // All shards joined: the winner slot and flags are stable now.
  SearchSeconds = Ctx.Clock.seconds();
  std::vector<unsigned> WinnerSeq;
  if (!Ctx.winnerSnapshot(WinnerSeq)) {
    if (Ctx.EtImpossible.load())
      Finish(SynthStatus::Impossible); // SAT proof; outranks an abort.
    else if (Ctx.ExternalAbort.load() || Ctx.WallAbort.load() ||
             Ctx.ExhaustedUnits.load() > 0)
      Finish(SynthStatus::Aborted); // Truncated somewhere: exhaustion
                                    // cannot be claimed.
    else
      Finish(SynthStatus::Impossible); // Exhaustive: every unit explored.
    return Result;
  }

  Result.Commands = buildCommands(Ctx, WinnerSeq);
  Total.WaitsBeforeRemoval = countWaits(Result.Commands);
  Total.WaitsAfterRemoval = Total.WaitsBeforeRemoval;
  if (Opts.WaitRemoval) {
    obs::TraceSpan Span("synth.wait_removal");
    Timer WaitClock;
    Result.Commands = removeWaits(Topo, Initial, Classes, Result.Commands);
    Total.WaitRemovalSeconds = WaitClock.seconds();
    Total.WaitsAfterRemoval = countWaits(Result.Commands);
  }
  Finish(SynthStatus::Success);
  return Result;
}

} // namespace

SynthResult netupd::synthesizeUpdate(const Topology &Topo,
                                     const Config &Initial,
                                     const Config &Final,
                                     const std::vector<TrafficClass> &Classes,
                                     Formula Phi, CheckerBackend &Checker,
                                     const SynthOptions &Opts) {
  SynthResult Result =
      runSearch(Topo, Initial, Final, Classes, Phi, Checker, Opts);
  // The caller's checker outlives the run; shard checkers folded their
  // share in before dying (see runSearch), so += completes the totals.
  Result.Stats.BackendQueries += Checker.numQueries();
  Result.Stats.CacheHits += Checker.cacheHits();
  Result.Stats.CacheMisses += Checker.cacheMisses();
  return Result;
}

SynthResult netupd::synthesizeUpdate(const Scenario &S, FormulaFactory &FF,
                                     CheckerBackend &Checker,
                                     const SynthOptions &Opts) {
  if (Opts.Learning && Opts.LearningScenario == Digest{}) {
    // Cross-job learning keys on the scenario's content digest; compute
    // it here so engine members and direct callers need only hand over
    // the store.
    SynthOptions Keyed = Opts;
    Keyed.LearningScenario = digestOf(S);
    return synthesizeUpdate(S.Topo, S.Initial, S.Final, S.classes(),
                            S.buildProperty(FF), Checker, Keyed);
  }
  return synthesizeUpdate(S.Topo, S.Initial, S.Final, S.classes(),
                          S.buildProperty(FF), Checker, Opts);
}
