//===- synth/WaitRemoval.h - Wait-removal heuristic ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wait-removal heuristic of §4.2 (C). ORDERUPDATE emits a careful
/// sequence (a wait between every two updates); most waits are
/// unnecessary: a wait before an update is needed only if the updated
/// switch could receive an in-flight packet that traversed some switch s0
/// before s0's own update (since the last retained wait).
///
/// "Could receive" is over-approximated per traffic class, maintaining
/// reachability-between-switches information as the paper describes:
///
///  - a packet of class c only observes the class-c slice of each table,
///    so updates to other classes' rules neither create in-flight hazards
///    for c nor are endangered by c's packets;
///  - reachability is computed over the union of the class-c forwarding
///    graphs of every configuration version since the last retained wait
///    (a packet may have been forwarded under any of them);
///  - a switch that was never reachable from an ingress since the last
///    wait cannot have processed any packet, so its update leaves nothing
///    in flight.
///
/// All three refinements over-approximate, so removal never breaks
/// correctness; together they remove the overwhelming majority of waits
/// (~99.9% in the paper's experiments).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SYNTH_WAITREMOVAL_H
#define NETUPD_SYNTH_WAITREMOVAL_H

#include "synth/Command.h"

#include <vector>

namespace netupd {

/// Returns \p Cmds with unnecessary waits removed. \p Initial is the
/// configuration the sequence starts from; \p Classes the traffic classes
/// whose packets the analysis tracks (rules matching none of them are
/// treated as matching all, conservatively).
CommandSeq removeWaits(const Topology &Topo, const Config &Initial,
                       const std::vector<TrafficClass> &Classes,
                       const CommandSeq &Cmds);

} // namespace netupd

#endif // NETUPD_SYNTH_WAITREMOVAL_H
