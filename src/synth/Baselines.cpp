//===- synth/Baselines.cpp - Naive and two-phase baselines -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "synth/Baselines.h"

#include <algorithm>

using namespace netupd;

CommandSeq netupd::naiveSequence(const Config &Initial, const Config &Final) {
  CommandSeq Seq;
  for (SwitchId Sw : diffSwitches(Initial, Final))
    Seq.push_back(Command::update(Sw, Final.table(Sw)));
  return Seq;
}

CommandSeq TwoPhasePlan::fullSequence() const {
  CommandSeq Seq = InstallNew;
  Seq.push_back(Command::wait());
  Seq.insert(Seq.end(), FlipIngress.begin(), FlipIngress.end());
  Seq.push_back(Command::wait());
  Seq.insert(Seq.end(), SwapClean.begin(), SwapClean.end());
  Seq.insert(Seq.end(), Unstamp.begin(), Unstamp.end());
  Seq.push_back(Command::wait());
  Seq.insert(Seq.end(), StripTags.begin(), StripTags.end());
  return Seq;
}

namespace {

/// Host-facing (ingress) ports of switch \p Sw.
std::vector<PortId> ingressPorts(const Topology &Topo, SwitchId Sw) {
  std::vector<PortId> Ports;
  for (const Link &L : Topo.links())
    if (L.From.isHost() && !L.To.isHost() && L.To.Switch == Sw)
      Ports.push_back(L.To.Port);
  return Ports;
}

/// Copies \p R with the version tag \p Tag added to the pattern and
/// priority raised by \p PriorityBoost.
Rule taggedRule(const Rule &R, uint32_t Tag, uint32_t PriorityBoost) {
  Rule Out = R;
  Out.Pat.Values[static_cast<size_t>(Field::Typ)] = Tag;
  Out.Priority += PriorityBoost;
  return Out;
}

} // namespace

TwoPhasePlan netupd::makeTwoPhasePlan(const Topology &Topo,
                                      const Config &Initial,
                                      const Config &Final) {
  TwoPhasePlan Plan;
  unsigned N = Initial.numSwitches();
  Plan.MaxRulesPerSwitch.assign(N, 0);

  for (SwitchId Sw = 0; Sw != N; ++Sw) {
    const Table &Old = Initial.table(Sw);
    const Table &New = Final.table(Sw);
    std::vector<PortId> Ingress = ingressPorts(Topo, Sw);

    // Step 1: keep the old rules and install the final rules scoped to the
    // new version tag, one priority level above.
    std::vector<Rule> TaggedNew;
    for (const Rule &R : New.rules())
      TaggedNew.push_back(taggedRule(R, NewVersionTag, /*PriorityBoost=*/1));
    std::vector<Rule> Mixed = Old.rules();
    Mixed.insert(Mixed.end(), TaggedNew.begin(), TaggedNew.end());
    size_t MixedSize = Mixed.size();
    bool Changed = !(Old == New);
    if (Changed || !Ingress.empty())
      Plan.InstallNew.push_back(Command::update(Sw, Table(Mixed)));

    // Step 2: ingress switches stamp packets entering from hosts with the
    // new tag and forward them per the final configuration.
    std::vector<Rule> Stamps;
    if (!Ingress.empty()) {
      for (const Rule &R : New.rules()) {
        for (PortId P : Ingress) {
          Rule S = R;
          S.Pat.InPort = P;
          S.Priority += 2;
          S.Actions.insert(S.Actions.begin(),
                           Action::setField(Field::Typ, NewVersionTag));
          Stamps.push_back(S);
        }
      }
      std::vector<Rule> Stamping = Mixed;
      Stamping.insert(Stamping.end(), Stamps.begin(), Stamps.end());
      Plan.FlipIngress.push_back(Command::update(Sw, Table(Stamping)));
    }

    // Step 3: old rules out, untagged final rules in; tagged duplicates
    // and stamping remain so every in-flight (tagged) packet still
    // matches.
    std::vector<Rule> Swapped = New.rules();
    Swapped.insert(Swapped.end(), TaggedNew.begin(), TaggedNew.end());
    std::vector<Rule> SwappedStamping = Swapped;
    SwappedStamping.insert(SwappedStamping.end(), Stamps.begin(),
                           Stamps.end());
    if (Changed || !Ingress.empty())
      Plan.SwapClean.push_back(Command::update(
          Sw, Table(Ingress.empty() ? Swapped : SwappedStamping)));

    // Step 4: ingresses stop stamping.
    if (!Ingress.empty())
      Plan.Unstamp.push_back(Command::update(Sw, Table(Swapped)));

    // Step 5: the tagged duplicates go; exactly the final table remains.
    if (Changed || !Ingress.empty())
      Plan.StripTags.push_back(Command::update(Sw, New));

    Plan.MaxRulesPerSwitch[Sw] =
        std::max({Old.size(), New.size(), MixedSize + Stamps.size(),
                  Swapped.size() + Stamps.size()});
  }
  return Plan;
}

std::vector<size_t> netupd::orderingRuleHighWater(const Config &Initial,
                                                  const Config &Final) {
  std::vector<size_t> Out(Initial.numSwitches());
  for (SwitchId Sw = 0; Sw != Initial.numSwitches(); ++Sw)
    Out[Sw] = std::max(Initial.table(Sw).size(), Final.table(Sw).size());
  return Out;
}
