//===- synth/EarlyTermination.cpp - SAT-based search cutoff ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "synth/EarlyTermination.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace netupd;

sat::Lit EarlyTermination::before(unsigned A, unsigned B) {
  assert(A != B && "no ordering variable for an operation with itself");
  // One variable per unordered pair; the literal's sign encodes direction
  // (positive: min-id op first), giving antisymmetry and totality for
  // free.
  bool Swapped = A > B;
  if (Swapped)
    std::swap(A, B);
  auto [It, Inserted] = PairVars.try_emplace({A, B}, 0);
  if (Inserted)
    It->second = Solver.newVar();
  return sat::Lit(It->second, /*Negated=*/Swapped);
}

void EarlyTermination::mention(unsigned Op) {
  if (std::find(Mentioned.begin(), Mentioned.end(), Op) != Mentioned.end())
    return;
  // Encode transitivity against already-mentioned operations while small:
  // before(a,b) & before(b,c) -> before(a,c) for every ordered triple
  // containing Op.
  if (Mentioned.size() < TransitivityCap) {
    for (size_t I = 0; I != Mentioned.size(); ++I) {
      for (size_t J = 0; J != Mentioned.size(); ++J) {
        if (I == J)
          continue;
        unsigned A = Mentioned[I], B = Mentioned[J];
        // Triples (A,B,Op), (A,Op,B), (Op,A,B).
        Solver.addClause({~before(A, B), ~before(B, Op), before(A, Op)});
        Solver.addClause({~before(A, Op), ~before(Op, B), before(A, B)});
        Solver.addClause({~before(Op, A), ~before(A, B), before(Op, B)});
        Clauses += 3;
      }
    }
  }
  Mentioned.push_back(Op);
}

namespace {
/// Wait-time histogram for the EarlyTermination mutex — held across SAT
/// solves, so it is the prime suspect for shard stalls under learning.
netupd::obs::Histogram &satLockWait() {
  static netupd::obs::Histogram &H =
      netupd::obs::MetricsRegistry::instance().histogram(
          "synth.sat_lock_ns");
  return H;
}

/// Luby restarts performed inside SAT solves, summed over every
/// EarlyTermination instance in the process.
netupd::obs::Counter &satRestarts() {
  static netupd::obs::Counter &C =
      netupd::obs::MetricsRegistry::instance().counter("synth.sat_restarts");
  return C;
}
} // namespace

void EarlyTermination::addCexConstraint(
    const std::vector<unsigned> &Updated,
    const std::vector<unsigned> &NotUpdated) {
  obs::timedLock(M, satLockWait());
  MutexLock Lock(M, std::adopt_lock);
  if (KnownImpossible)
    return;
  // A cancelled search learns nothing: skip the (cubic) transitivity
  // encoding and leave the clause set as-is — soundness is unaffected
  // because constraints only ever shrink the set of admitted orders.
  if (Stop.stopRequested())
    return;
  if (NotUpdated.empty()) {
    // The all-updated combination is bad: the final configuration itself
    // violates the property, so no order whatsoever can work.
    KnownImpossible = true;
    return;
  }
  assert(!Updated.empty() &&
         "a counterexample with no updated switch would already hold in "
         "the initial configuration");

  // Oversized constraints are dropped (sound relaxation; see header).
  if (Updated.size() * NotUpdated.size() > MaxClauseLits)
    return;

  for (unsigned Op : Updated)
    mention(Op);
  for (unsigned Op : NotUpdated)
    mention(Op);

  std::vector<sat::Lit> Clause;
  Clause.reserve(Updated.size() * NotUpdated.size());
  for (unsigned D : NotUpdated)
    for (unsigned U : Updated)
      Clause.push_back(before(D, U));
  Solver.addClause(std::move(Clause));
  ++Clauses;
  Dirty = true;
}

void EarlyTermination::addMaskValueConstraint(const Bitset &Mask,
                                              const Bitset &Value) {
  std::vector<unsigned> Updated, NotUpdated;
  for (size_t I = 0, E = Mask.size(); I != E; ++I) {
    if (!Mask.test(I))
      continue;
    (Value.test(I) ? Updated : NotUpdated).push_back(
        static_cast<unsigned>(I));
  }
  addCexConstraint(Updated, NotUpdated);
}

bool EarlyTermination::impossible() {
  obs::timedLock(M, satLockWait());
  MutexLock Lock(M, std::adopt_lock);
  if (KnownImpossible)
    return true;
  if (!Dirty)
    return !LastSat;
  if (Stop.stopRequested())
    return !LastSat; // Stay Dirty: a resumed caller re-solves.
  Dirty = false;
  uint64_t RestartsBefore = Solver.numRestarts();
  LastSat = Solver.solve();
  if (uint64_t Delta = Solver.numRestarts() - RestartsBefore)
    satRestarts().add(Delta);
  return !LastSat;
}
