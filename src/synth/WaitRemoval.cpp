//===- synth/WaitRemoval.cpp - Wait-removal heuristic ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "synth/WaitRemoval.h"

#include <queue>
#include <vector>

using namespace netupd;

namespace {

/// True if \p R can apply to packets of class \p Hdr.
bool ruleMatchesClass(const Rule &R, const Header &Hdr) {
  for (unsigned I = 0; I != NumFields; ++I) {
    const std::optional<uint32_t> &V = R.Pat.Values[I];
    if (V && *V != Hdr.Values[I])
      return false;
  }
  return true;
}

/// The switch-level forwarding edges one table contributes for one class:
/// Sw -> Sw' whenever a class-matching rule forwards out a port linked to
/// Sw'. Port constraints are ignored (conservative: only adds edges).
std::vector<SwitchId> tableEdgesForClass(const Topology &Topo, SwitchId Sw,
                                         const Table &T, const Header &Hdr) {
  std::vector<SwitchId> Out;
  for (const Rule &R : T.rules()) {
    if (!ruleMatchesClass(R, Hdr))
      continue;
    for (const Action &A : R.Actions) {
      if (A.K != Action::Kind::Forward)
        continue;
      const Location *Dst = Topo.linkFrom(Sw, A.OutPort);
      if (Dst && !Dst->isHost())
        Out.push_back(Dst->Switch);
    }
  }
  return Out;
}

/// Union forwarding graph for one class, accumulated since the last
/// retained wait.
class UnionGraph {
public:
  explicit UnionGraph(unsigned NumSwitches) : Adj(NumSwitches) {}

  void addEdges(SwitchId From, const std::vector<SwitchId> &To) {
    for (SwitchId S : To)
      Adj[From].push_back(S);
  }

  void resetFrom(const Topology &Topo, const Config &Cfg,
                 const Header &Hdr) {
    for (auto &Edges : Adj)
      Edges.clear();
    for (SwitchId S = 0; S != Cfg.numSwitches(); ++S)
      addEdges(S, tableEdgesForClass(Topo, S, Cfg.table(S), Hdr));
  }

  /// True if any switch in \p Sources reaches \p Target.
  bool reaches(const std::vector<SwitchId> &Sources,
               SwitchId Target) const {
    std::vector<uint8_t> Seen(Adj.size(), 0);
    std::queue<SwitchId> Queue;
    for (SwitchId S : Sources) {
      if (S == Target)
        return true;
      if (!Seen[S]) {
        Seen[S] = 1;
        Queue.push(S);
      }
    }
    while (!Queue.empty()) {
      SwitchId Cur = Queue.front();
      Queue.pop();
      for (SwitchId Next : Adj[Cur]) {
        if (Next == Target)
          return true;
        if (!Seen[Next]) {
          Seen[Next] = 1;
          Queue.push(Next);
        }
      }
    }
    return false;
  }

  /// True if \p Target is reachable from any of \p Seeds (inclusive).
  bool reachableFrom(const std::vector<SwitchId> &Seeds,
                     SwitchId Target) const {
    return reaches(Seeds, Target);
  }

private:
  std::vector<std::vector<SwitchId>> Adj;
};

/// The classes whose rule slice differs between two tables; a rule that
/// matches no tracked class conservatively affects every class.
std::vector<unsigned> affectedClasses(const Table &Old, const Table &New,
                                      const std::vector<TrafficClass> &Cs) {
  std::vector<unsigned> Out;
  for (unsigned C = 0; C != Cs.size(); ++C) {
    auto Slice = [&](const Table &T) {
      std::vector<Rule> S;
      for (const Rule &R : T.rules())
        if (ruleMatchesClass(R, Cs[C].Hdr))
          S.push_back(R);
      return S;
    };
    if (!(Slice(Old) == Slice(New)))
      Out.push_back(C);
  }
  return Out;
}

} // namespace

CommandSeq netupd::removeWaits(const Topology &Topo, const Config &Initial,
                               const std::vector<TrafficClass> &Classes,
                               const CommandSeq &Cmds) {
  Config Current = Initial;

  std::vector<SwitchId> Ingresses;
  for (const Location &In : Topo.ingressLocations())
    Ingresses.push_back(In.Switch);

  // One union graph and one dirty set per class.
  std::vector<UnionGraph> Unions(Classes.size(),
                                 UnionGraph(Initial.numSwitches()));
  for (unsigned C = 0; C != Classes.size(); ++C)
    Unions[C].resetFrom(Topo, Current, Classes[C].Hdr);
  std::vector<std::vector<SwitchId>> Dirty(Classes.size());

  CommandSeq Out;
  for (const Command &Cmd : Cmds) {
    if (Cmd.K == Command::Kind::Wait)
      continue; // Regenerated below only where needed.

    std::vector<unsigned> Affected = affectedClasses(
        Current.table(Cmd.Sw), Cmd.NewTable, Classes);

    // A wait is required if an in-flight packet of some affected class
    // (forwarded by a dirty switch) can still arrive here.
    bool NeedWait = false;
    for (unsigned C : Affected)
      NeedWait |= Unions[C].reaches(Dirty[C], Cmd.Sw);
    if (NeedWait) {
      Out.push_back(Command::wait());
      for (unsigned C = 0; C != Classes.size(); ++C) {
        Dirty[C].clear();
        Unions[C].resetFrom(Topo, Current, Classes[C].Hdr);
      }
    }

    Out.push_back(Cmd);
    // The switch becomes dirty for each class whose rules change —
    // provided it was live (reachable from an ingress) for that class,
    // otherwise no packet of the class can have crossed it.
    for (unsigned C : Affected)
      if (Unions[C].reachableFrom(Ingresses, Cmd.Sw))
        Dirty[C].push_back(Cmd.Sw);

    Current.setTable(Cmd.Sw, Cmd.NewTable);
    for (unsigned C = 0; C != Classes.size(); ++C)
      Unions[C].addEdges(Cmd.Sw, tableEdgesForClass(Topo, Cmd.Sw,
                                                    Cmd.NewTable,
                                                    Classes[C].Hdr));
  }
  return Out;
}
