//===- synth/Baselines.h - Naive and two-phase baselines -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two comparison strategies of §2 / Fig. 2:
///
///  - the "naive" update, which pushes the final tables in an arbitrary
///    (here: ascending switch-id) order with no waits — the strategy whose
///    probe loss Fig. 2(a) shows;
///  - the two-phase consistent update of Reitblatt et al. (SIGCOMM 2012),
///    which stamps packets with a version tag on ingress and keeps both
///    rule generations installed during the transition — correct, but with
///    the per-switch rule overhead Fig. 2(b) shows.
///
/// The two-phase plan here uses the `typ` header field as the version tag
/// (the paper's implementation uses VLAN tags); the simulator executes the
/// plan and the rule-overhead accounting feeds the Fig. 2(b) bench.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SYNTH_BASELINES_H
#define NETUPD_SYNTH_BASELINES_H

#include "synth/Command.h"

#include <vector>

namespace netupd {

/// Version-tag values used by two-phase plans.
inline constexpr uint32_t OldVersionTag = 0;
inline constexpr uint32_t NewVersionTag = 1;

/// The naive update: final tables pushed in ascending switch order with no
/// synchronization.
CommandSeq naiveSequence(const Config &Initial, const Config &Final);

/// A two-phase update plan, executed in five steps with three waits.
/// The cleanup is staged: old rules must disappear while every in-flight
/// packet still carries the new tag, untagged handling must point at the
/// new rules everywhere before the ingresses stop stamping, and the
/// tagged duplicates can only go once the last tagged packet has drained.
struct TwoPhasePlan {
  /// Step 1: internal switches gain the final rules, duplicated to match
  /// only packets stamped with the new version tag (old rules remain).
  CommandSeq InstallNew;
  /// Step 2 (after a wait): ingress switches start stamping packets with
  /// the new tag and forwarding them per the final configuration.
  CommandSeq FlipIngress;
  /// Step 3 (after a wait drains the old-version packets): old rules are
  /// replaced by the untagged final rules; the tagged duplicates and the
  /// ingress stamping stay.
  CommandSeq SwapClean;
  /// Step 4: ingresses stop stamping (fresh packets use the new rules).
  CommandSeq Unstamp;
  /// Step 5 (after a wait drains the tagged packets): the tagged
  /// duplicates are removed, leaving exactly the final configuration.
  CommandSeq StripTags;

  /// The maximum number of rules each switch holds at any point during the
  /// transition (Fig. 2(b), green bars).
  std::vector<size_t> MaxRulesPerSwitch;

  /// The full command sequence with the three waits in place.
  CommandSeq fullSequence() const;
};

/// Builds a two-phase plan for \p Initial -> \p Final. \p IngressSwitches
/// are the switches that stamp version tags (those adjacent to hosts).
TwoPhasePlan makeTwoPhasePlan(const Topology &Topo, const Config &Initial,
                              const Config &Final);

/// Per-switch rule high-water mark for an ordering update: each switch
/// holds either its old or its new table, never both (Fig. 2(b), red).
std::vector<size_t> orderingRuleHighWater(const Config &Initial,
                                          const Config &Final);

} // namespace netupd

#endif // NETUPD_SYNTH_BASELINES_H
