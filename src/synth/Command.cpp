//===- synth/Command.cpp - Update command sequences ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "synth/Command.h"

#include "support/Strings.h"

using namespace netupd;

std::string netupd::commandSeqToString(const Topology &Topo,
                                       const CommandSeq &Seq) {
  std::vector<std::string> Parts;
  for (const Command &C : Seq) {
    if (C.K == Command::Kind::Wait)
      Parts.push_back("wait");
    else
      Parts.push_back("upd " + Topo.switchName(C.Sw));
  }
  return join(Parts, "; ");
}

unsigned netupd::countWaits(const CommandSeq &Seq) {
  unsigned N = 0;
  for (const Command &C : Seq)
    if (C.K == Command::Kind::Wait)
      ++N;
  return N;
}

void netupd::applyCommands(Config &Cfg, const CommandSeq &Seq) {
  for (const Command &C : Seq)
    if (C.K == Command::Kind::Update)
      Cfg.setTable(C.Sw, C.NewTable);
}
