//===- obs/Metrics.cpp - Process-wide metrics registry --------------------===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace netupd {
namespace obs {

namespace {

std::atomic<bool> Detail{[] {
  const char *E = std::getenv("NETUPD_OBS_DETAIL");
  return E && *E && std::strcmp(E, "0") != 0;
}()};

void appendJsonKey(std::string &Out, const std::string &Name, bool &First) {
  if (!First)
    Out += ',';
  First = false;
  Out += '"';
  for (char C : Name) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += "\":";
}

std::string formatMs(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", Ns / 1e6);
  return Buf;
}

} // namespace

// relaxed: an on/off instrumentation flag; a briefly stale read only
// delays when profiling starts or stops, never affects a verdict.
bool detailEnabled() { return Detail.load(std::memory_order_relaxed); }

void setDetail(bool Enabled) {
  Detail.store(Enabled, std::memory_order_relaxed); // relaxed: same flag
}

struct MetricsRegistry::Impl {
  mutable Mutex M;
  // Name -> metric maps. The pointees are deliberately NOT guarded: a
  // returned Counter&/Gauge&/Histogram& is all-atomic internally and
  // stays valid for the process lifetime; M guards only the maps.
  std::map<std::string, std::unique_ptr<Counter>> Counters
      NETUPD_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Gauge>> Gauges NETUPD_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Histogram>> Histograms
      NETUPD_GUARDED_BY(M);
  struct Provider {
    uint64_t Token;
    std::function<CacheSample()> Sample;
  };
  std::map<std::string, Provider> Providers NETUPD_GUARDED_BY(M);
  uint64_t NextToken NETUPD_GUARDED_BY(M) = 1;
};

MetricsRegistry &MetricsRegistry::instance() {
  // lint: naked-new-ok — leaked deliberately: metrics outlive any static
  // destruction order at process exit.
  static MetricsRegistry *R = new MetricsRegistry;
  return *R;
}

MetricsRegistry::Impl &MetricsRegistry::impl() const {
  static Impl *I = new Impl; // lint: naked-new-ok — same deliberate leak
  return *I;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  Impl &I = impl();
  MutexLock Lock(I.M);
  auto &Slot = I.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  Impl &I = impl();
  MutexLock Lock(I.M);
  auto &Slot = I.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  Impl &I = impl();
  MutexLock Lock(I.M);
  auto &Slot = I.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

uint64_t
MetricsRegistry::registerCacheStats(const std::string &Name,
                                    std::function<CacheSample()> Sample) {
  Impl &I = impl();
  MutexLock Lock(I.M);
  uint64_t Token = I.NextToken++;
  I.Providers[Name] = Impl::Provider{Token, std::move(Sample)};
  return Token;
}

void MetricsRegistry::unregisterCacheStats(uint64_t Token) {
  Impl &I = impl();
  MutexLock Lock(I.M);
  for (auto It = I.Providers.begin(); It != I.Providers.end(); ++It) {
    if (It->second.Token == Token) {
      I.Providers.erase(It);
      return;
    }
  }
}

std::string MetricsRegistry::snapshotJson() const {
  Impl &I = impl();
  // Sample the providers outside the registry lock: a provider callback
  // may itself take locks (cache shard mutexes) and must not nest under
  // ours.
  std::vector<std::pair<std::string, std::function<CacheSample()>>> Samplers;
  {
    MutexLock Lock(I.M);
    for (const auto &P : I.Providers)
      Samplers.emplace_back(P.first, P.second.Sample);
  }
  std::vector<std::pair<std::string, CacheSample>> Caches;
  for (auto &S : Samplers)
    Caches.emplace_back(S.first, S.second());

  MutexLock Lock(I.M);
  std::string Out = "{\"counters\":{";
  bool First = true;
  char Buf[64];
  for (const auto &C : I.Counters) {
    appendJsonKey(Out, C.first, First);
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(C.second->value()));
    Out += Buf;
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &G : I.Gauges) {
    appendJsonKey(Out, G.first, First);
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(G.second->value()));
    Out += Buf;
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &H : I.Histograms) {
    appendJsonKey(Out, H.first, First);
    Out += "{\"count\":";
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(H.second->count()));
    Out += Buf;
    Out += ",\"sum_ms\":" + formatMs(H.second->sumNs());
    Out += ",\"p50_ms\":" + formatMs(H.second->percentileNs(0.50));
    Out += ",\"p95_ms\":" + formatMs(H.second->percentileNs(0.95));
    Out += ",\"p99_ms\":" + formatMs(H.second->percentileNs(0.99));
    Out += '}';
  }
  Out += "},\"caches\":{";
  First = true;
  for (const auto &C : Caches) {
    appendJsonKey(Out, C.first, First);
    std::snprintf(Buf, sizeof(Buf),
                  "{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
                  "\"entries\":%llu}",
                  static_cast<unsigned long long>(C.second.Hits),
                  static_cast<unsigned long long>(C.second.Misses),
                  static_cast<unsigned long long>(C.second.Evictions),
                  static_cast<unsigned long long>(C.second.Entries));
    Out += Buf;
  }
  Out += "}}";
  return Out;
}

void MetricsRegistry::resetAll() {
  Impl &I = impl();
  MutexLock Lock(I.M);
  for (auto &C : I.Counters)
    C.second->reset();
  for (auto &G : I.Gauges)
    G.second->reset();
  for (auto &H : I.Histograms)
    H.second->reset();
}

} // namespace obs
} // namespace netupd
