//===- obs/Metrics.h - Process-wide metrics registry -----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters, gauges, and fixed-bucket latency histograms for the
/// synthesis engine, collected in one process-wide registry whose
/// snapshot() serializes to the JSON a future synthesis daemon would
/// serve from its `stats` endpoint.
///
/// Two cost tiers, so instrumentation can live in release builds:
///
///  - Per-job metrics (queue wait, end-to-end job latency, cache hit
///    counters) are always on; they cost a couple of relaxed atomic
///    increments per *job*, invisible next to a synthesis run.
///  - Per-call metrics (check-call latency, mutate/rollback time,
///    lock-wait in the shared search state and EarlyTermination, the
///    per-candidate phase breakdown in OrderUpdate) sit on hot paths
///    and are gated by detailEnabled() — one relaxed atomic load when
///    off, clock reads only when on. Toggle at runtime or via the
///    NETUPD_OBS_DETAIL environment variable.
///
/// Cache instrumentation is pull-based: ShardedCache / ConstraintStore
/// owners register a callback that samples CacheStats at snapshot time,
/// so the caches themselves stay free of metrics code.
///
/// Same hard contract as tracing (obs/Trace.h): metrics never change a
/// verdict or a command sequence.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_OBS_METRICS_H
#define NETUPD_OBS_METRICS_H

#include "obs/Trace.h" // nowNs(), the shared time base.
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace netupd {
namespace obs {

/// Whether the per-call (hot-path) metrics tier is collecting; see file
/// comment. One relaxed load; initialized from NETUPD_OBS_DETAIL.
bool detailEnabled();

/// Turns the per-call tier on or off at runtime.
void setDetail(bool Enabled);

/// A monotonically increasing counter. All operations are relaxed
/// atomics; safe from any thread.
class Counter {
public:
  // relaxed: statistics only — each metric is an independent monotone
  // count; readers tolerate torn cross-metric views, never a torn value.
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-value-wins instantaneous value.
class Gauge {
public:
  // relaxed: statistics only — last-value-wins by design, no ordering
  // relationship with any other state.
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A fixed-bucket latency histogram over nanosecond samples. Buckets are
/// powers of two: bucket 0 holds the value 0, bucket i >= 1 holds values
/// whose bit width is i, i.e. [2^(i-1), 2^i). Recording is two relaxed
/// fetch_adds on a cache-line-padded per-thread stripe, so concurrent
/// shards never bounce a bucket line between cores; readers aggregate
/// the stripes, and every derived figure (count, sum, percentiles — and
/// therefore snapshotJson) is identical to the unstriped layout's.
/// Percentile estimation walks the 64 buckets and returns the
/// containing bucket's upper bound, so estimates are exact to within 2x —
/// plenty to tell a 10us check from a 1ms one, which is what the daemon
/// and the bench phase tables need. Exact bench percentiles (p50/p95/p99
/// job latency in BENCH_engine.json) are computed from per-job seconds
/// instead, not from this histogram.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(uint64_t Ns) {
    Stripe &S = Stripes[stripeIndex()];
    // relaxed: per-stripe statistics; aggregation tolerates skew between
    // bucket and sum updates (count/sum are advisory, never a verdict).
    S.Buckets[bucketOf(Ns)].fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(Ns, std::memory_order_relaxed);
  }
  void recordSeconds(double S) {
    record(S <= 0 ? 0 : static_cast<uint64_t>(S * 1e9));
  }

  uint64_t count() const {
    uint64_t N = 0;
    // relaxed: statistical read; a sample racing the sum is acceptable.
    for (const Stripe &S : Stripes)
      for (const auto &B : S.Buckets)
        N += B.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t sumNs() const {
    uint64_t N = 0;
    // relaxed: statistical read; a sample racing the sum is acceptable.
    for (const Stripe &S : Stripes)
      N += S.Sum.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t bucketCount(unsigned I) const {
    uint64_t N = 0;
    // relaxed: statistical read; a sample racing the sum is acceptable.
    for (const Stripe &S : Stripes)
      N += S.Buckets[I].load(std::memory_order_relaxed);
    return N;
  }

  /// The bucket index a sample of \p Ns lands in.
  static unsigned bucketOf(uint64_t Ns) {
    if (Ns == 0)
      return 0;
    unsigned Width = 64 - static_cast<unsigned>(__builtin_clzll(Ns));
    return Width < NumBuckets ? Width : NumBuckets - 1;
  }

  /// Exclusive upper bound of bucket \p I in nanoseconds.
  static uint64_t bucketUpperNs(unsigned I) {
    if (I == 0)
      return 1;
    if (I >= 63)
      return ~uint64_t(0);
    return uint64_t(1) << I;
  }

  /// Upper bound (ns) of the bucket holding the \p P quantile,
  /// P in [0, 1]; 0 when the histogram is empty.
  uint64_t percentileNs(double P) const {
    uint64_t Counts[NumBuckets] = {};
    uint64_t Total = 0;
    // relaxed: percentile estimate over an in-flight histogram; exactness
    // is already bounded by the power-of-two buckets.
    for (const Stripe &S : Stripes)
      for (unsigned I = 0; I < NumBuckets; ++I)
        Counts[I] += S.Buckets[I].load(std::memory_order_relaxed);
    for (unsigned I = 0; I < NumBuckets; ++I)
      Total += Counts[I];
    if (Total == 0)
      return 0;
    uint64_t Rank = static_cast<uint64_t>(P * static_cast<double>(Total));
    if (Rank >= Total)
      Rank = Total - 1;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Counts[I];
      if (Seen > Rank)
        return bucketUpperNs(I);
    }
    return bucketUpperNs(NumBuckets - 1);
  }

  void reset() {
    // relaxed: zeroing statistics; concurrent recorders may land on
    // either side of the reset, which tests and benches accept.
    for (Stripe &S : Stripes) {
      for (auto &B : S.Buckets)
        B.store(0, std::memory_order_relaxed);
      S.Sum.store(0, std::memory_order_relaxed);
    }
  }

private:
  static constexpr unsigned NumStripes = 8;

  struct alignas(64) Stripe {
    std::atomic<uint64_t> Buckets[NumBuckets] = {};
    std::atomic<uint64_t> Sum{0};
  };

  /// This thread's stripe slot: assigned round-robin on first use, so
  /// the stripe pick is one thread_local read per record.
  static unsigned stripeIndex() {
    static std::atomic<unsigned> Next{0};
    // relaxed: round-robin ticket; any interleaving yields a valid slot.
    thread_local unsigned Slot =
        Next.fetch_add(1, std::memory_order_relaxed) % NumStripes;
    return Slot;
  }

  Stripe Stripes[NumStripes];
};

/// Acquires \p M, recording the time spent blocked into \p H when the
/// detail tier is on. The uncontended detail-on path is a try_lock with
/// no clock read, so profiling mostly prices the waits, not the locks.
///
/// This is THE sanctioned NO_THREAD_SAFETY_ANALYSIS site (see the
/// suppression policy in support/ThreadAnnotations.h): the analysis
/// cannot merge the three branch-dependent acquisition paths, but the
/// ACQUIRE interface annotation still tells every caller the capability
/// is held on return — callers pair it with an adopting scoped lock and
/// stay fully checked.
template <typename MutexT>
void timedLock(MutexT &M, Histogram &H) NETUPD_ACQUIRE(M)
    NETUPD_NO_THREAD_SAFETY_ANALYSIS {
  if (!detailEnabled()) {
    M.lock();
    return;
  }
  if (M.try_lock())
    return;
  uint64_t T0 = nowNs();
  M.lock();
  H.record(nowNs() - T0);
}

/// timedLock for the shared (reader) side of a SharedMutex. Same
/// sanctioned suppression as timedLock above.
template <typename MutexT>
void timedLockShared(MutexT &M, Histogram &H) NETUPD_ACQUIRE_SHARED(M)
    NETUPD_NO_THREAD_SAFETY_ANALYSIS {
  if (!detailEnabled()) {
    M.lock_shared();
    return;
  }
  if (M.try_lock_shared())
    return;
  uint64_t T0 = nowNs();
  M.lock_shared();
  H.record(nowNs() - T0);
}

/// One sample of a cache's counters, the obs-side mirror of the support
/// layer's CacheStats (kept separate so obs/ depends on nothing).
struct CacheSample {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;
};

/// The process-wide registry. counter()/gauge()/histogram() find or
/// create by name under a mutex and return a reference that stays valid
/// for the process lifetime — hot call sites hold it in a function-local
/// static so the lookup happens once.
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Registers a cache-stats callback sampled at snapshot time; returns
  /// a token for unregisterCacheStats. Re-registering a name replaces
  /// the previous provider (the common case: a new engine reusing the
  /// process-wide caches).
  uint64_t registerCacheStats(const std::string &Name,
                              std::function<CacheSample()> Sample);

  /// Removes the provider \p Token, if it is still the registered one.
  void unregisterCacheStats(uint64_t Token);

  /// Every metric as JSON: {"counters":{name:value,...},
  /// "gauges":{...}, "histograms":{name:{"count","sum_ms","p50_ms",
  /// "p95_ms","p99_ms"},...}, "caches":{name:{"hits","misses",
  /// "evictions","entries"},...}} — the payload of the future daemon's
  /// `stats` endpoint. Names are emitted sorted.
  std::string snapshotJson() const;

  /// Zeroes every counter, gauge, and histogram (providers are kept) —
  /// for tests and for benches isolating a section.
  void resetAll();

private:
  MetricsRegistry() = default;
  struct Impl;
  Impl &impl() const;
};

} // namespace obs
} // namespace netupd

#endif // NETUPD_OBS_METRICS_H
