//===- obs/Trace.h - Lock-free span tracing --------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-switchable span tracing for the synthesis engine. Every layer
/// of the query path opens a TraceSpan (engine.job -> engine.member ->
/// synth.search -> synth.unit -> mc.bind / mc.recheck); when tracing is
/// off each site costs one relaxed atomic load and nothing else, so the
/// instrumentation can stay compiled into release builds.
///
/// Spans land in per-thread ring buffers. The writer side is lock-free:
/// the recording thread owns its buffer and publishes each slot with a
/// release store of the ring cursor; no mutex, no allocation after the
/// buffer exists. A concurrent exporter reads the slots through relaxed
/// atomics and discards any slot the cursor shows may have been
/// overwritten mid-copy, which keeps simultaneous export + record safe
/// (and clean under TSan) without ever stalling a recording thread.
/// Buffers are owned by a process-wide registry via shared_ptr, so spans
/// recorded by threads that have since exited (engine workers, DFS
/// shards) survive until exported; exited threads' buffers are pooled
/// and handed to new threads to keep the registry bounded.
///
/// Export produces Chrome-trace / Perfetto-compatible JSON ("X" complete
/// events, microsecond timestamps): write the file and open it at
/// https://ui.perfetto.dev (or chrome://tracing).
///
/// Span names must be string literals (or otherwise outlive the export):
/// the ring stores the pointer, not a copy.
///
/// Contract shared with budgets and learning: tracing never changes a
/// verdict or a command sequence — spans observe the search, they carry
/// no control flow. tests/obs_test.cpp holds the invariance matrix.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_OBS_TRACE_H
#define NETUPD_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace netupd {
namespace obs {

/// Whether spans are being recorded. One relaxed load; the initial value
/// comes from the NETUPD_TRACE environment variable (unset/"0" = off).
bool tracingEnabled();

/// Turns span recording on or off at runtime. Spans already buffered are
/// kept; disabling does not drop them.
void setTracing(bool Enabled);

/// One completed span as the exporter sees it. Times are nanoseconds on
/// the process-wide steady clock (epoch = first use of the trace layer).
struct SpanRecord {
  const char *Name;  ///< Static string; the site's label.
  uint64_t StartNs;  ///< Span open, ns since trace epoch.
  uint64_t DurNs;    ///< Close - open.
  uint32_t Tid;      ///< Stable per-thread index (not the OS tid).
  uint32_t Depth;    ///< Nesting depth within the thread, 0 = outermost.
};

/// RAII span: records [construction, destruction) on the calling thread.
/// When tracing is off the constructor is a relaxed load + branch and the
/// destructor a null check. \p Name must be a string literal.
class TraceSpan {
public:
  explicit TraceSpan(const char *SpanName) {
    if (tracingEnabled())
      begin(SpanName);
  }
  ~TraceSpan() {
    if (Name)
      end();
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  void begin(const char *SpanName); // Out of line; the cold path.
  void end();

  const char *Name = nullptr; ///< Null when tracing was off at open.
  uint64_t StartNs = 0;
};

/// Copies every span currently buffered, across all threads (live and
/// exited), oldest first per thread. Safe to call while other threads
/// record; slots overwritten during the copy are skipped.
std::vector<SpanRecord> snapshotSpans();

/// Chrome-trace JSON of snapshotSpans(); see file comment.
std::string exportChromeTrace();

/// Writes exportChromeTrace() to \p Path; false on I/O failure.
bool writeChromeTrace(const std::string &Path);

/// Drops all buffered spans (tests and repeated bench sections). Threads
/// keep their buffers; only the contents are discarded.
void clearSpans();

/// Total spans ever recorded minus those still snapshot-visible — i.e.
/// spans lost to ring wrap-around. For capacity diagnostics.
uint64_t droppedSpans();

/// Spans each thread's ring can hold before wrapping.
size_t traceBufferCapacity();

/// Nanoseconds since the trace epoch on the steady clock; the time base
/// used for spans, exposed so metrics code shares it.
uint64_t nowNs();

} // namespace obs
} // namespace netupd

#endif // NETUPD_OBS_TRACE_H
