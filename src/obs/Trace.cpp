//===- obs/Trace.cpp - Lock-free span tracing -----------------------------===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/ThreadAnnotations.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace netupd {
namespace obs {

namespace {

/// One ring slot. All fields are atomics so a concurrent exporter's reads
/// are data-race-free; only the owning thread writes, so every store can
/// be relaxed — ordering against the reader comes from the ring cursor
/// (release on publish, acquire on snapshot).
struct Slot {
  std::atomic<const char *> Name{nullptr};
  std::atomic<uint64_t> StartNs{0};
  std::atomic<uint64_t> DurNs{0};
  std::atomic<uint32_t> Depth{0};
};

constexpr size_t RingCapacity = 1u << 15; // ~32k spans/thread, ~1.5 MiB.

/// Per-thread span ring. Owned by the registry through shared_ptr so it
/// outlives its thread; single writer (the owning thread), any number of
/// concurrent snapshot readers.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t Tid) : Tid(Tid), Slots(RingCapacity) {}

  void record(const char *Name, uint64_t StartNs, uint64_t DurNs,
              uint32_t Depth) {
    // relaxed: single-writer ring — only the owning thread stores; the
    // release on WriteIdx below is the sole publication edge readers need.
    uint64_t I = WriteIdx.load(std::memory_order_relaxed);
    Slot &S = Slots[I % RingCapacity];
    S.Name.store(Name, std::memory_order_relaxed);
    S.StartNs.store(StartNs, std::memory_order_relaxed);
    S.DurNs.store(DurNs, std::memory_order_relaxed);
    S.Depth.store(Depth, std::memory_order_relaxed);
    // Publish: a reader that acquires I+1 sees the fields above.
    WriteIdx.store(I + 1, std::memory_order_release);
  }

  /// Copies the buffered spans, oldest first, skipping indices below the
  /// clearSpans() watermark. Any slot the writer may have reused while we
  /// copied is discarded: slot for logical index I is being rewritten
  /// only while the cursor sits at I + Capacity, so after re-reading the
  /// cursor we keep exactly the indices it proves untouched.
  void snapshot(std::vector<SpanRecord> &Out) const {
    uint64_t End = WriteIdx.load(std::memory_order_acquire);
    uint64_t Begin = End > RingCapacity ? End - RingCapacity : 0;
    Begin = std::max(Begin, ClearedBelow.load(std::memory_order_acquire));
    if (Begin >= End)
      return;
    std::vector<SpanRecord> Local;
    Local.reserve(End - Begin);
    for (uint64_t I = Begin; I < End; ++I) {
      const Slot &S = Slots[I % RingCapacity];
      SpanRecord R;
      // relaxed: field reads are ordered by the acquire of WriteIdx above;
      // slots the writer reused meanwhile are discarded by the re-read
      // of the cursor after the copy loop.
      R.Name = S.Name.load(std::memory_order_relaxed);
      R.StartNs = S.StartNs.load(std::memory_order_relaxed);
      R.DurNs = S.DurNs.load(std::memory_order_relaxed);
      R.Depth = S.Depth.load(std::memory_order_relaxed);
      R.Tid = Tid;
      Local.push_back(R);
    }
    uint64_t End2 = WriteIdx.load(std::memory_order_acquire);
    // Index I is safe iff the writer never started its overwrite, i.e.
    // the cursor never reached I + Capacity while we read.
    uint64_t FirstSafe = End2 > RingCapacity ? End2 - RingCapacity + 1 : 0;
    for (uint64_t I = Begin; I < End; ++I)
      if (I >= FirstSafe && Local[I - Begin].Name != nullptr)
        Out.push_back(Local[I - Begin]);
  }

  uint32_t Tid;
  std::vector<Slot> Slots;
  /// Logical append cursor; slot I lives at I % Capacity. Monotone, so
  /// (cursor - snapshot-visible) counts wrap-dropped spans.
  std::atomic<uint64_t> WriteIdx{0};
  /// Cursor value when clearSpans() last ran; snapshot ignores older
  /// indices. Stores happen under the registry mutex, loads anywhere.
  std::atomic<uint64_t> ClearedBelow{0};
};

/// The process-wide buffer registry plus a pool of buffers whose owning
/// thread exited; new threads adopt pooled buffers so span storage stays
/// proportional to peak concurrency, not total threads ever created.
struct Registry {
  Mutex M;
  std::vector<std::shared_ptr<ThreadBuffer>> All NETUPD_GUARDED_BY(M);
  std::vector<std::shared_ptr<ThreadBuffer>> Free NETUPD_GUARDED_BY(M);
  uint32_t NextTid NETUPD_GUARDED_BY(M) = 0;

  std::shared_ptr<ThreadBuffer> acquire() {
    MutexLock Lock(M);
    if (!Free.empty()) {
      auto B = std::move(Free.back());
      Free.pop_back();
      return B;
    }
    auto B = std::make_shared<ThreadBuffer>(NextTid++);
    All.push_back(B);
    return B;
  }

  void release(std::shared_ptr<ThreadBuffer> B) {
    MutexLock Lock(M);
    Free.push_back(std::move(B));
  }
};

Registry &registry() {
  // lint: naked-new-ok — leaked deliberately: spans outlive exit order.
  static Registry *R = new Registry;
  return *R;
}

std::atomic<bool> Enabled{[] {
  const char *E = std::getenv("NETUPD_TRACE");
  return E && *E && std::strcmp(E, "0") != 0;
}()};

/// Binds a buffer to the thread for its lifetime and returns it to the
/// pool on exit.
struct BufferHolder {
  std::shared_ptr<ThreadBuffer> Buf;
  ~BufferHolder() {
    if (Buf)
      registry().release(std::move(Buf));
  }
};

ThreadBuffer &threadBuffer() {
  thread_local BufferHolder H;
  if (!H.Buf)
    H.Buf = registry().acquire();
  return *H.Buf;
}

thread_local uint32_t SpanDepth = 0;

std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point E =
      std::chrono::steady_clock::now();
  return E;
}

/// Escapes \p S into \p Out as a JSON string body (names are literals,
/// but stay robust to punctuation in them).
void appendJsonEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Hex[8];
      std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
      Out += Hex;
    } else {
      Out += C;
    }
  }
}

} // namespace

// relaxed: an on/off instrumentation flag; a stale read only delays when
// tracing starts or stops, never affects a verdict.
bool tracingEnabled() { return Enabled.load(std::memory_order_relaxed); }

void setTracing(bool On) {
  (void)traceEpoch(); // Pin the epoch before the first span.
  Enabled.store(On, std::memory_order_relaxed); // relaxed: same flag
}

uint64_t nowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - traceEpoch())
                                   .count());
}

void TraceSpan::begin(const char *SpanName) {
  Name = SpanName;
  StartNs = nowNs();
  ++SpanDepth;
}

void TraceSpan::end() {
  uint32_t Depth = --SpanDepth;
  threadBuffer().record(Name, StartNs, nowNs() - StartNs, Depth);
}

std::vector<SpanRecord> snapshotSpans() {
  std::vector<std::shared_ptr<ThreadBuffer>> Bufs;
  {
    Registry &R = registry();
    MutexLock Lock(R.M);
    Bufs = R.All;
  }
  std::vector<SpanRecord> Out;
  for (auto &B : Bufs)
    B->snapshot(Out);
  return Out;
}

std::string exportChromeTrace() {
  std::vector<SpanRecord> Spans = snapshotSpans();
  std::stable_sort(Spans.begin(), Spans.end(),
                   [](const SpanRecord &A, const SpanRecord &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     return A.StartNs < B.StartNs;
                   });
  std::string Out;
  Out.reserve(128 + Spans.size() * 96);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char Buf[160];
  bool FirstEvent = true;
  for (const SpanRecord &S : Spans) {
    if (!FirstEvent)
      Out += ',';
    FirstEvent = false;
    Out += "{\"name\":\"";
    appendJsonEscaped(Out, S.Name);
    Out += "\",";
    std::snprintf(Buf, sizeof(Buf),
                  "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"depth\":%u}}",
                  S.StartNs / 1000.0, S.DurNs / 1000.0, S.Tid, S.Depth);
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

bool writeChromeTrace(const std::string &Path) {
  std::string Json = exportChromeTrace();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  return std::fclose(F) == 0 && Ok;
}

void clearSpans() {
  Registry &R = registry();
  MutexLock Lock(R.M);
  for (auto &B : R.All) {
    uint64_t End = B->WriteIdx.load(std::memory_order_acquire);
    B->ClearedBelow.store(End, std::memory_order_release);
  }
}

uint64_t droppedSpans() {
  Registry &R = registry();
  MutexLock Lock(R.M);
  uint64_t Dropped = 0;
  for (auto &B : R.All) {
    uint64_t End = B->WriteIdx.load(std::memory_order_acquire);
    uint64_t Cleared = B->ClearedBelow.load(std::memory_order_acquire);
    uint64_t Live = End - Cleared;
    if (Live > RingCapacity)
      Dropped += Live - RingCapacity;
  }
  return Dropped;
}

size_t traceBufferCapacity() { return RingCapacity; }

} // namespace obs
} // namespace netupd
