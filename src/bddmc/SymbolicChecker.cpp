//===- bddmc/SymbolicChecker.cpp - NuSMV-substitute backend ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "bddmc/SymbolicChecker.h"

#include "bdd/Bdd.h"
#include "ltl/Closure.h"

#include <cassert>

using namespace netupd;
using namespace netupd::bdd;

namespace {

/// Bit-vector bookkeeping for the four variable groups x, x', m, m'.
struct VarLayout {
  unsigned StateBits, FormulaBits;

  unsigned x(unsigned Bit) const { return Bit; }
  unsigned xp(unsigned Bit) const { return StateBits + Bit; }
  unsigned m(unsigned Bit) const { return 2 * StateBits + Bit; }
  unsigned mp(unsigned Bit) const {
    return 2 * StateBits + FormulaBits + Bit;
  }
  unsigned total() const { return 2 * (StateBits + FormulaBits); }
};

/// The per-query symbolic model.
class SymbolicModel {
public:
  SymbolicModel(KripkeStructure &K, const Closure &Cl, Arena &NodeArena)
      : K(K), Cl(Cl), Layout{bitsFor(K.numStates()), Cl.size()},
        M(Layout.total(), &NodeArena) {}

  /// Runs the check; fills Cex with a violating trace when it fails.
  bool check(std::vector<StateId> &Cex);

  size_t numNodes() const { return M.numNodes(); }

private:
  static unsigned bitsFor(unsigned N) {
    unsigned Bits = 1;
    while ((1u << Bits) < N)
      ++Bits;
    return Bits;
  }

  /// The cube "state bits (primed or not) encode S".
  NodeRef stateCube(StateId S, bool Primed) {
    NodeRef Out = True;
    for (unsigned B = 0; B != Layout.StateBits; ++B) {
      unsigned V = Primed ? Layout.xp(B) : Layout.x(B);
      Out = M.andOp(Out, (S >> B) & 1 ? M.var(V) : M.nvar(V));
    }
    return Out;
  }

  /// The cube "formula bits (primed or not) encode the set Ms".
  NodeRef setCube(const Bitset &Ms, bool Primed) {
    NodeRef Out = True;
    for (unsigned B = 0; B != Layout.FormulaBits; ++B) {
      unsigned V = Primed ? Layout.mp(B) : Layout.m(B);
      Out = M.andOp(Out, Ms.test(B) ? M.var(V) : M.nvar(V));
    }
    return Out;
  }

  NodeRef buildDelta();
  NodeRef buildConsistency();
  NodeRef buildFollows();
  NodeRef buildSinks();
  NodeRef buildInit();

  /// Renames (x, m) to (x', m') via the equality relation.
  NodeRef primeRelation(NodeRef R);

  KripkeStructure &K;
  const Closure &Cl;
  VarLayout Layout;
  Manager M;
};

NodeRef SymbolicModel::buildDelta() {
  NodeRef Delta = False;
  for (StateId S = 0; S != K.numStates(); ++S) {
    NodeRef Src = stateCube(S, /*Primed=*/false);
    NodeRef Targets = False;
    for (StateId Next : K.succs(S))
      Targets = M.orOp(Targets, stateCube(Next, /*Primed=*/true));
    Delta = M.orOp(Delta, M.andOp(Src, Targets));
  }
  return Delta;
}

NodeRef SymbolicModel::buildConsistency() {
  // For each state: its atom bits, extended with the boolean-skeleton
  // constraints (And/Or bits are functions of their children).
  NodeRef C = False;
  for (StateId S = 0; S != K.numStates(); ++S) {
    Bitset Atoms = Cl.atomBits(K.stateInfo(S));
    NodeRef Local = True;
    for (unsigned I = 0; I != Cl.size(); ++I) {
      Formula F = Cl.item(I);
      NodeRef BitI = M.var(Layout.m(I));
      switch (F->kind()) {
      case FKind::True:
      case FKind::False:
      case FKind::Atom:
      case FKind::NotAtom:
        Local = M.andOp(Local, Atoms.test(I) ? BitI : M.notOp(BitI));
        break;
      case FKind::And:
        Local = M.andOp(
            Local, M.iffOp(BitI, M.andOp(M.var(Layout.m(Cl.indexOf(
                                             F->lhs()))),
                                         M.var(Layout.m(Cl.indexOf(
                                             F->rhs()))))));
        break;
      case FKind::Or:
        Local = M.andOp(
            Local, M.iffOp(BitI, M.orOp(M.var(Layout.m(Cl.indexOf(
                                            F->lhs()))),
                                        M.var(Layout.m(Cl.indexOf(
                                            F->rhs()))))));
        break;
      default:
        break; // Temporal bits are constrained by Follows.
      }
    }
    C = M.orOp(C, M.andOp(stateCube(S, /*Primed=*/false), Local));
  }
  return C;
}

NodeRef SymbolicModel::buildFollows() {
  NodeRef F = True;
  for (unsigned I = 0; I != Cl.size(); ++I) {
    Formula Item = Cl.item(I);
    NodeRef BitI = M.var(Layout.m(I));
    switch (Item->kind()) {
    case FKind::Next:
      F = M.andOp(F, M.iffOp(BitI, M.var(Layout.mp(
                                       Cl.indexOf(Item->lhs())))));
      break;
    case FKind::Until: {
      NodeRef A = M.var(Layout.m(Cl.indexOf(Item->lhs())));
      NodeRef B = M.var(Layout.m(Cl.indexOf(Item->rhs())));
      NodeRef Nxt = M.var(Layout.mp(I));
      F = M.andOp(F, M.iffOp(BitI, M.orOp(B, M.andOp(A, Nxt))));
      break;
    }
    case FKind::Release: {
      NodeRef A = M.var(Layout.m(Cl.indexOf(Item->lhs())));
      NodeRef B = M.var(Layout.m(Cl.indexOf(Item->rhs())));
      NodeRef Nxt = M.var(Layout.mp(I));
      F = M.andOp(F, M.iffOp(BitI, M.andOp(B, M.orOp(A, Nxt))));
      break;
    }
    default:
      break;
    }
  }
  return F;
}

NodeRef SymbolicModel::buildSinks() {
  NodeRef Sinks = False;
  for (StateId S = 0; S != K.numStates(); ++S) {
    if (!K.isSink(S))
      continue;
    Bitset Ms = Cl.sinkLabel(Cl.atomBits(K.stateInfo(S)));
    Sinks = M.orOp(Sinks, M.andOp(stateCube(S, false), setCube(Ms, false)));
  }
  return Sinks;
}

NodeRef SymbolicModel::buildInit() {
  NodeRef Init = False;
  for (StateId S : K.initialStates())
    Init = M.orOp(Init, stateCube(S, false));
  return Init;
}

NodeRef SymbolicModel::primeRelation(NodeRef R) {
  // R'(x', m') = exists x, m. R(x, m) & (x = x') & (m = m').
  NodeRef Eq = True;
  for (unsigned B = 0; B != Layout.StateBits; ++B)
    Eq = M.andOp(Eq, M.iffOp(M.var(Layout.x(B)), M.var(Layout.xp(B))));
  for (unsigned B = 0; B != Layout.FormulaBits; ++B)
    Eq = M.andOp(Eq, M.iffOp(M.var(Layout.m(B)), M.var(Layout.mp(B))));

  std::vector<uint8_t> Unprimed(Layout.total(), 0);
  for (unsigned B = 0; B != Layout.StateBits; ++B)
    Unprimed[Layout.x(B)] = 1;
  for (unsigned B = 0; B != Layout.FormulaBits; ++B)
    Unprimed[Layout.m(B)] = 1;

  return M.exists(M.andOp(R, Eq), Unprimed);
}

bool SymbolicModel::check(std::vector<StateId> &Cex) {
  NodeRef Delta = buildDelta();
  NodeRef C = buildConsistency();
  NodeRef Follows = buildFollows();

  // Transfer(x, m, x', m'): one consistent tableau step.
  NodeRef Transfer = M.andOp(M.andOp(Delta, Follows), C);

  std::vector<uint8_t> PrimedVars(Layout.total(), 0);
  for (unsigned B = 0; B != Layout.StateBits; ++B)
    PrimedVars[Layout.xp(B)] = 1;
  for (unsigned B = 0; B != Layout.FormulaBits; ++B)
    PrimedVars[Layout.mp(B)] = 1;

  // Least fixpoint: R = Sinks | pre(R).
  NodeRef R = buildSinks();
  for (;;) {
    NodeRef RPrimed = primeRelation(R);
    NodeRef Pre = M.exists(M.andOp(Transfer, RPrimed), PrimedVars);
    NodeRef Next = M.orOp(R, Pre);
    if (Next == R)
      break;
    R = Next;
  }

  // Violation: an initial state whose realizable set lacks the root bit.
  NodeRef Bad = M.andOp(M.andOp(buildInit(), R),
                        M.nvar(Layout.m(Cl.rootIndex())));
  if (Bad == False)
    return true;

  // Counterexample extraction: pick a bad (state, set) pair and walk the
  // Transfer relation to a sink.
  NodeRef RPrimed = primeRelation(R);
  std::vector<uint8_t> Assign = M.pickAssignment(Bad);
  auto DecodeState = [&](bool Primed) {
    StateId S = 0;
    for (unsigned B = 0; B != Layout.StateBits; ++B)
      S |= static_cast<StateId>(
               Assign[Primed ? Layout.xp(B) : Layout.x(B)])
           << B;
    return S;
  };
  auto DecodeSet = [&](bool Primed) {
    Bitset Ms(Cl.size());
    for (unsigned B = 0; B != Layout.FormulaBits; ++B)
      if (Assign[Primed ? Layout.mp(B) : Layout.m(B)])
        Ms.set(B);
    return Ms;
  };

  StateId Cur = DecodeState(false);
  Bitset CurSet = DecodeSet(false);
  Cex.push_back(Cur);
  while (!K.isSink(Cur) && Cex.size() <= K.numStates()) {
    NodeRef Step = M.andOp(M.andOp(stateCube(Cur, false),
                                   setCube(CurSet, false)),
                           M.andOp(Transfer, RPrimed));
    assert(Step != False && "realizable pair without a witness step");
    if (Step == False)
      break;
    Assign = M.pickAssignment(Step);
    Cur = DecodeState(true);
    CurSet = DecodeSet(true);
    Cex.push_back(Cur);
  }
  return false;
}

} // namespace

CheckResult SymbolicChecker::bindImpl(KripkeStructure &Structure,
                                  Formula Property) {
  K = &Structure;
  Phi = Property;
  return checkNow();
}

CheckResult SymbolicChecker::recheckImpl(const UpdateInfo &) {
  assert(K && "recheck before bind");
  return checkNow();
}

CheckResult SymbolicChecker::checkNow() {
  ++Queries;
  CheckResult R;
  if (auto Loop = K->findForwardingLoop()) {
    R.Holds = false;
    R.Cex = std::move(*Loop);
    return R;
  }

  Closure Cl(Phi);
  // Nothing from the previous query's manager is live; recycle its
  // node chunks.
  QueryArena.reset();
  SymbolicModel Model(*K, Cl, QueryArena);
  std::vector<StateId> Cex;
  R.Holds = Model.check(Cex);
  R.Cex = std::move(Cex);
  PeakNodes = std::max(PeakNodes, Model.numNodes());
  return R;
}
