//===- bddmc/SymbolicChecker.h - NuSMV-substitute backend ------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BDD-based symbolic LTL model checker used in batch mode — the
/// stand-in for the paper's NuSMV backend (§6). Every query builds, from
/// scratch:
///
///  - a symbolic encoding of the Kripke structure: state bits x / x' and
///    a transition-relation BDD Delta(x, x');
///  - one BDD bit per closure formula (m / m') with the tableau
///    constraints of §5: local consistency C(x, m) ties atom and boolean
///    bits to the state labeling, Follows(m, m') is the temporal
///    successor relation;
///  - the realizability relation R(x, m) — "some trace from x satisfies
///    exactly the formulas in m" — computed as a least fixpoint from the
///    sink states backwards.
///
/// The property holds iff no initial state relates to a consistent set
/// lacking the root formula. Counterexample traces are extracted by
/// walking satisfying assignments of the relations (NuSMV also produces
/// counterexamples, which the synthesizer learns from).
///
/// Everything is rebuilt on every call — the monolithic behaviour whose
/// cost Fig. 7(a-c) contrasts with the incremental checker.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_BDDMC_SYMBOLICCHECKER_H
#define NETUPD_BDDMC_SYMBOLICCHECKER_H

#include "mc/CheckerBackend.h"
#include "support/Arena.h"

namespace netupd {

/// The symbolic batch checker; see file comment.
class SymbolicChecker : public CheckerBackend {
public:
  void notifyRollback() override {}
  const char *name() const override { return "NuSMV"; }

  /// Peak BDD node count over all queries served (a memory measure).
  size_t peakNodes() const { return PeakNodes; }

protected:
  CheckResult bindImpl(KripkeStructure &K, Formula Phi) override;
  CheckResult recheckImpl(const UpdateInfo &Update) override;

private:
  CheckResult checkNow();

  KripkeStructure *K = nullptr;
  Formula Phi = nullptr;
  size_t PeakNodes = 0;

  /// Backs the per-query BDD manager's node storage; reset at the start
  /// of every query (the previous query's manager is gone by then), so
  /// consecutive queries recycle the same chunks instead of touching
  /// the global allocator.
  Arena QueryArena;
};

} // namespace netupd

#endif // NETUPD_BDDMC_SYMBOLICCHECKER_H
