//===- fuzz/Fuzz.h - Differential fuzzing harness --------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based differential fuzzing over the whole synthesis matrix.
/// Each iteration generates a random (topology, config-pair, property)
/// instance through the seeded Rng — zoo topologies, all three property
/// kinds, single/multi-flow diamonds, double diamonds, and corrupted
/// variants (blackholed destinations, initial-violation configs) — and
/// runs it through every cell of
///
///     backend registry x granularity x shards {1,4} x steal on/off
///                      x budget on/off x learning on/off,
///
/// checking the repository's determinism contracts (the oracle; see
/// docs/ARCHITECTURE.md "Scenario zoo & differential fuzzing"):
///
///  - unlimited cells of one granularity agree on the verdict, across
///    every backend, shard count, steal setting, and learning setting;
///  - unlimited *sequential* cells (1 shard) return byte-identical
///    command sequences — pruning differences between backends (hsa
///    yields no counterexamples) must never change the sequence, only
///    its cost;
///  - unlimited sharded Successes are replay-checked: every intermediate
///    configuration satisfies the property and the sequence lands
///    exactly on the final configuration;
///  - budgeted cells are byte-identical (verdict and sequence) to their
///    own backend's 1-shard budget reference, never steal, never import
///    learned constraints, and agree on BudgetSpent on non-Success;
///  - a budgeted cell that completes (is not Aborted) agrees with the
///    unlimited verdict;
///  - stealing is inert when off or unsharded (StolenTasks == 0);
///  - granularities relate: InitialViolation is granularity-independent,
///    and a switch-feasible instance is rule-feasible (the converse
///    fails by design on double diamonds);
///  - the conflict-driven knobs (SynthOptions::ClauseMinimization /
///    ActivityOrdering / Restarts) never change a verdict: the min-off
///    cell must additionally reproduce the reference sequence byte for
///    byte (minimization is sound resolution — it generalizes W
///    entries without changing the refuted set or candidate order),
///    act-off / rst-off cells are replay-checked (those knobs may
///    legally reorder the search), and the all-off budgeted cells form
///    their own (job, budget)-purity group across shard counts.
///
/// Every eighth iteration instead drives a churn stream through the
/// SynthEngine four ways (reference / result cache / learning / both)
/// and requires byte-identical per-step results plus the pigeonhole
/// cache-hit floor a repeating stream guarantees.
///
/// Every sixteenth iteration (offset so it never displaces a churn
/// iteration) generates a LARGE instance — a 240..360-switch
/// small-world fabric with long-path diamonds, diff-capped so the
/// search lattice stays tractable — and runs the sequential unlimited
/// cells only: reference vs min-off byte-compare per granularity, plus
/// replay and the cross-granularity relations. This family stresses
/// checker state-space scale, which the full matrix (sized for 100+
/// cells per instance) deliberately avoids.
///
/// Disagreements are delta-minimized (fuzz/Minimize.h) and serialized as
/// repro files (fuzz/Repro.h).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_FUZZ_FUZZ_H
#define NETUPD_FUZZ_FUZZ_H

#include "fuzz/Repro.h"
#include "support/Random.h"
#include "topo/Scenario.h"

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace netupd {
namespace fuzz {

/// Check-budget specification for the budgeted half of the matrix.
struct BudgetSpec {
  /// Charged-call budget; the budgeted cells use this value.
  uint64_t Amount = 40;
  /// When true the budget is per work unit (SynthOptions::UnitCheckCalls)
  /// instead of a shared total (MaxCheckCalls).
  bool PerUnit = false;
};

/// One oracle violation.
struct Disagreement {
  /// One-line classification ("verdict mismatch", "budget sequence
  /// drift", ...).
  std::string What;
  /// The disagreeing cells (the reference cell first).
  std::string CellA, CellB;
  std::string Expected, Got;

  std::string str() const;
};

/// Fuzzer configuration.
struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Iters = 100;
  /// Every Nth iteration runs an engine churn-stream check instead of a
  /// matrix instance; 0 disables churn iterations.
  unsigned ChurnEvery = 8;
  /// Every Nth iteration runs a large sequential-only instance (hundreds
  /// of switches; reference backend, unlimited sequential cells only)
  /// instead of a matrix instance. Offset by half a period against the
  /// churn cadence so the two families never claim the same iteration.
  /// 0 disables large iterations.
  unsigned LargeEvery = 16;
  /// Backends to cross-check; empty means the full registry.
  std::vector<std::string> Backends;
  /// Backends restricted to the two sequential unlimited cells (verdict
  /// + sequence agreement per granularity) on single-class reachability
  /// instances, skipping the shard / steal / budget / learning
  /// sub-matrix. Those schedule-invariance cells exercise the search
  /// skeleton, not the checker, so they are swept with the fast
  /// backends; the symbolic NuSMV-substitute is orders of magnitude
  /// slower per query (bench/fig7_backends) and its BDDs blow up on
  /// multi-class and waypoint formulas, exactly as §6 reports for NuSMV.
  /// Never applies to the reference backend.
  std::vector<std::string> ShallowBackends = {"symbolic"};
  /// Directory minimized repro files are written to; empty keeps repros
  /// in memory only.
  std::string OutDir;
  bool Verbose = false;
};

/// What a fuzzing run did and found.
struct FuzzReport {
  unsigned Instances = 0;
  unsigned CellRuns = 0;
  unsigned ChurnStreams = 0;
  unsigned LargeInstances = 0;
  /// Minimized disagreements, one per failing iteration.
  std::vector<Repro> Repros;
  /// Paths of repro files written (parallel to Repros when OutDir set).
  std::vector<std::string> ReproPaths;

  bool clean() const { return Repros.empty(); }
};

/// Deterministically generates the matrix instance for iteration stream
/// \p R: a random zoo topology, a diamond/double-diamond scenario of a
/// random property kind, and (sometimes) a corrupting mutation.
Scenario generateInstance(Rng &R);

/// Runs the full differential cell matrix over \p S; returns the first
/// oracle violation, if any. \p CellRuns (optional) accumulates the
/// number of synthesis runs performed. Backends listed in \p Shallow run
/// only the sequential unlimited agreement cells (see
/// FuzzOptions::ShallowBackends).
std::optional<Disagreement>
checkScenario(const Scenario &S, const std::vector<std::string> &Backends,
              const BudgetSpec &Budget, unsigned *CellRuns = nullptr,
              const std::vector<std::string> &Shallow = {});

/// Deterministically generates a large sequential-only instance for
/// iteration stream \p R: a 240..360-switch small-world fabric with
/// long-path diamond flows, possibly mutated, diff-capped so the update
/// lattice stays tractable while the checker state space does not.
Scenario generateLargeInstance(Rng &R);

/// Runs the large-family cells over \p S on the single reference
/// backend \p Backend: per granularity, the unlimited sequential
/// reference cell (replay-checked on Success) against a min-off cell
/// that must match it byte for byte, plus the cross-granularity
/// relations. Returns the first oracle violation, if any; \p CellRuns
/// (optional) accumulates synthesis runs.
std::optional<Disagreement>
checkLargeScenario(const Scenario &S, const std::string &Backend,
                   unsigned *CellRuns = nullptr);

/// Builds a churn trace from \p R and replays it through the SynthEngine
/// in four modes (reference / cache / learning / cache+learning),
/// requiring byte-identical per-step verdicts and sequences and the
/// deterministic cache-hit floor. On violation the returned
/// disagreement's scenario context is the offending step, stored in
/// \p BadStep when non-null.
std::optional<Disagreement> checkChurnStream(Rng &R,
                                             unsigned *CellRuns = nullptr,
                                             Scenario *BadStep = nullptr);

/// The whole harness: Iters iterations of generate + matrix check (and
/// periodic churn checks), minimizing and serializing each disagreement.
/// Progress and findings go to \p Log.
FuzzReport runFuzz(const FuzzOptions &Opts, std::ostream &Log);

} // namespace fuzz
} // namespace netupd

#endif // NETUPD_FUZZ_FUZZ_H
