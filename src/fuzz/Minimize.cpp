//===- fuzz/Minimize.cpp - Disagreement delta-minimization -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimize.h"

#include <algorithm>

using namespace netupd;
using namespace netupd::fuzz;

namespace {

/// The exact pattern installPath() installs for \p C (see Config.cpp):
/// match on the class's destination and source fields.
Pattern classPattern(const TrafficClass &C) {
  Pattern P = Pattern::onField(Field::Dst, C.Hdr.get(Field::Dst));
  P.Values[static_cast<size_t>(Field::Src)] = C.Hdr.get(Field::Src);
  return P;
}

/// Removes every rule installed for \p C from \p Cfg.
void stripClassRules(Config &Cfg, const TrafficClass &C) {
  Pattern P = classPattern(C);
  for (SwitchId Sw = 0; Sw != Cfg.numSwitches(); ++Sw) {
    const Table &T = Cfg.table(Sw);
    if (T.empty())
      continue;
    std::vector<Rule> Kept;
    for (const Rule &R : T.rules())
      if (!(R.Pat == P))
        Kept.push_back(R);
    if (Kept.size() != T.size())
      Cfg.setTable(Sw, Table(std::move(Kept)));
  }
}

/// \p S without flow \p Idx: the flow spec goes, and so do its installed
/// rules in both configurations.
Scenario dropFlow(const Scenario &S, size_t Idx) {
  Scenario Out = S;
  TrafficClass C = Out.Flows[Idx].Class;
  Out.Flows.erase(Out.Flows.begin() + static_cast<long>(Idx));
  stripClassRules(Out.Initial, C);
  stripClassRules(Out.Final, C);
  return Out;
}

Table remapTable(const Table &T, const std::vector<PortId> &PortMap) {
  std::vector<Rule> Rules;
  Rules.reserve(T.size());
  for (const Rule &R : T.rules()) {
    Rule N = R;
    if (N.Pat.InPort && *N.Pat.InPort < PortMap.size())
      N.Pat.InPort = PortMap[*N.Pat.InPort];
    for (Action &A : N.Actions)
      if (A.K == Action::Kind::Forward && A.OutPort < PortMap.size())
        A.OutPort = PortMap[A.OutPort];
    Rules.push_back(std::move(N));
  }
  return Table(std::move(Rules));
}

} // namespace

std::optional<Scenario> fuzz::removeSwitch(const Scenario &S,
                                           SwitchId Victim) {
  const Topology &T = S.Topo;
  if (T.numSwitches() <= 1 || Victim >= T.numSwitches())
    return std::nullopt;

  // A switch holding a flow endpoint, a waypoint, or a host attachment
  // cannot be removed — the property or a flow spec names it.
  for (const FlowSpec &F : S.Flows) {
    if (F.SrcPort < T.numPorts() && T.portOwner(F.SrcPort) == Victim)
      return std::nullopt;
    if (F.DstPort < T.numPorts() && T.portOwner(F.DstPort) == Victim)
      return std::nullopt;
    if (std::find(F.Waypoints.begin(), F.Waypoints.end(), Victim) !=
        F.Waypoints.end())
      return std::nullopt;
  }
  for (const Link &L : T.links()) {
    bool TouchesVictim =
        (!L.From.isHost() && L.From.Switch == Victim) ||
        (!L.To.isHost() && L.To.Switch == Victim);
    bool TouchesHost = L.From.isHost() || L.To.isHost();
    if (TouchesVictim && TouchesHost)
      return std::nullopt; // Removing would strand a host.
  }

  // Switch id remap (compact, order preserved).
  std::vector<SwitchId> SwMap(T.numSwitches(), 0);
  Scenario Out;
  for (SwitchId Sw = 0; Sw != T.numSwitches(); ++Sw) {
    if (Sw == Victim)
      continue;
    SwMap[Sw] = Out.Topo.addSwitch(T.switchName(Sw));
  }
  for (HostId H = 0; H != T.numHosts(); ++H)
    Out.Topo.addHost(T.hostName(H));

  // Replay port allocations in global order, skipping the victim's, so
  // surviving ports keep their relative order and the topology's
  // sequential allocator reproduces a dense numbering.
  std::vector<PortId> PortMap(T.numPorts(), InvalidPort);
  for (PortId P = 0; P != T.numPorts(); ++P) {
    SwitchId Owner = T.portOwner(P);
    if (Owner == Victim)
      continue;
    PortMap[P] = Out.Topo.addPort(SwMap[Owner]);
  }

  auto Remap = [&](const Location &L, Location &Dst) -> bool {
    if (L.isHost()) {
      Dst = L;
      return true;
    }
    if (L.Switch == Victim)
      return false;
    Dst = Location::switchPort(SwMap[L.Switch], PortMap[L.Port]);
    return true;
  };
  for (const Link &L : T.links()) {
    Location From, To;
    if (!Remap(L.From, From) || !Remap(L.To, To))
      continue; // Link touched the victim; drop it.
    Out.Topo.addLink(From, To);
  }

  Out.Kind = S.Kind;
  Out.Initial = Config(Out.Topo.numSwitches());
  Out.Final = Config(Out.Topo.numSwitches());
  for (SwitchId Sw = 0; Sw != T.numSwitches(); ++Sw) {
    if (Sw == Victim)
      continue;
    Out.Initial.setTable(SwMap[Sw], remapTable(S.Initial.table(Sw), PortMap));
    Out.Final.setTable(SwMap[Sw], remapTable(S.Final.table(Sw), PortMap));
  }

  for (const FlowSpec &F : S.Flows) {
    FlowSpec N = F;
    if (N.SrcPort < PortMap.size())
      N.SrcPort = PortMap[N.SrcPort];
    if (N.DstPort < PortMap.size())
      N.DstPort = PortMap[N.DstPort];
    for (SwitchId &W : N.Waypoints)
      W = SwMap[W];
    auto RemapPath = [&](std::vector<SwitchId> &Path) {
      std::vector<SwitchId> Kept;
      for (SwitchId Sw : Path)
        if (Sw != Victim)
          Kept.push_back(SwMap[Sw]);
      Path = std::move(Kept);
    };
    RemapPath(N.InitialPath);
    RemapPath(N.FinalPath);
    Out.Flows.push_back(std::move(N));
  }
  return Out;
}

Scenario fuzz::minimizeScenario(const Scenario &S, const Oracle &StillBad) {
  Scenario Cur = S;
  if (!StillBad(Cur))
    return Cur;

  bool Changed = true;
  for (unsigned Round = 0; Changed && Round != 4; ++Round) {
    Changed = false;

    // Pass 1: drop whole flows (largest index first, so erasures don't
    // shift pending candidates).
    for (size_t I = Cur.Flows.size(); Cur.Flows.size() > 1 && I-- > 0;) {
      Scenario Cand = dropFlow(Cur, I);
      if (StillBad(Cand)) {
        Cur = std::move(Cand);
        Changed = true;
      }
    }

    // Pass 2: shorten the update diff one switch at a time.
    for (SwitchId Sw : diffSwitches(Cur.Initial, Cur.Final)) {
      Scenario Cand = Cur;
      Cand.Final.setTable(Sw, Cur.Initial.table(Sw));
      if (StillBad(Cand)) {
        Cur = std::move(Cand);
        Changed = true;
      }
    }

    // Pass 2b: clear identical non-empty tables in both configurations —
    // a no-op for the diff, but it turns path switches inert so pass 3
    // can delete them.
    for (SwitchId Sw = 0; Sw != Cur.Topo.numSwitches(); ++Sw) {
      if (Cur.Initial.table(Sw).empty() ||
          !(Cur.Initial.table(Sw) == Cur.Final.table(Sw)))
        continue;
      Scenario Cand = Cur;
      Cand.Initial.setTable(Sw, Table());
      Cand.Final.setTable(Sw, Table());
      if (StillBad(Cand)) {
        Cur = std::move(Cand);
        Changed = true;
      }
    }

    // Pass 3: delete inert switches (no rules either side; endpoint,
    // waypoint, and host constraints are enforced by removeSwitch).
    for (SwitchId Sw = Cur.Topo.numSwitches(); Sw-- > 0;) {
      if (!Cur.Initial.table(Sw).empty() || !Cur.Final.table(Sw).empty())
        continue;
      std::optional<Scenario> Cand = removeSwitch(Cur, Sw);
      if (Cand && StillBad(*Cand)) {
        Cur = std::move(*Cand);
        Changed = true;
      }
    }
  }
  return Cur;
}
