//===- fuzz/Repro.cpp - Self-contained disagreement repros -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Repro.h"

#include <fstream>
#include <sstream>

using namespace netupd;
using namespace netupd::fuzz;

namespace {

const char *kindToken(PropertyKind K) {
  switch (K) {
  case PropertyKind::Reachability:
    return "reachability";
  case PropertyKind::Waypoint:
    return "waypoint";
  case PropertyKind::ServiceChain:
    return "servicechain";
  }
  return "reachability";
}

std::optional<PropertyKind> kindFromToken(const std::string &T) {
  if (T == "reachability")
    return PropertyKind::Reachability;
  if (T == "waypoint")
    return PropertyKind::Waypoint;
  if (T == "servicechain")
    return PropertyKind::ServiceChain;
  return std::nullopt;
}

void writeLocation(std::ostream &OS, const Location &L) {
  if (L.isHost())
    OS << "H " << L.Host;
  else
    OS << "S " << L.Switch << ' ' << L.Port;
}

/// "-" for an absent optional component, the value otherwise.
void writeOpt(std::ostream &OS, const std::optional<uint32_t> &V) {
  if (V)
    OS << *V;
  else
    OS << '-';
}

void writeTable(std::ostream &OS, SwitchId Sw, const Table &T) {
  OS << "table " << Sw << ' ' << T.size() << '\n';
  for (const Rule &R : T.rules()) {
    OS << "rule " << R.Priority << ' ';
    if (R.Pat.InPort)
      OS << *R.Pat.InPort;
    else
      OS << '-';
    for (const auto &V : R.Pat.Values) {
      OS << ' ';
      writeOpt(OS, V);
    }
    OS << ' ' << R.Actions.size();
    for (const Action &A : R.Actions) {
      if (A.K == Action::Kind::Forward)
        OS << " F " << A.OutPort;
      else
        OS << " S " << static_cast<unsigned>(A.F) << ' ' << A.Value;
    }
    OS << '\n';
  }
}

void writeConfig(std::ostream &OS, const char *Which, const Config &C) {
  unsigned NonEmpty = 0;
  for (SwitchId Sw = 0; Sw != C.numSwitches(); ++Sw)
    NonEmpty += !C.table(Sw).empty();
  OS << "config " << Which << ' ' << NonEmpty << '\n';
  for (SwitchId Sw = 0; Sw != C.numSwitches(); ++Sw)
    if (!C.table(Sw).empty())
      writeTable(OS, Sw, C.table(Sw));
}

void writeIds(std::ostream &OS, const char *Tag,
              const std::vector<SwitchId> &Ids) {
  OS << Tag << ' ' << Ids.size();
  for (SwitchId S : Ids)
    OS << ' ' << S;
  OS << '\n';
}

/// Minimal line/token cursor over the input text.
class Cursor {
public:
  explicit Cursor(const std::string &Text) : In(Text) {}

  /// Next non-empty, non-comment line split into tokens; empty at EOF.
  bool nextLine(std::vector<std::string> &Tokens, std::string &Raw) {
    std::string Line;
    while (std::getline(In, Line)) {
      ++LineNo;
      if (Line.empty() || Line[0] == '#')
        continue;
      Raw = Line;
      Tokens.clear();
      std::istringstream LS(Line);
      std::string Tok;
      while (LS >> Tok)
        Tokens.push_back(Tok);
      if (!Tokens.empty())
        return true;
    }
    return false;
  }

  unsigned line() const { return LineNo; }

private:
  std::istringstream In;
  unsigned LineNo = 0;
};

bool parseU64(const std::string &T, uint64_t &Out) {
  try {
    size_t Pos = 0;
    Out = std::stoull(T, &Pos);
    return Pos == T.size();
  } catch (...) {
    return false;
  }
}

bool parseU32(const std::string &T, uint32_t &Out) {
  uint64_t V = 0;
  if (!parseU64(T, V) || V > 0xffffffffull)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

bool parseOpt(const std::string &T, std::optional<uint32_t> &Out) {
  if (T == "-") {
    Out.reset();
    return true;
  }
  uint32_t V = 0;
  if (!parseU32(T, V))
    return false;
  Out = V;
  return true;
}

/// The rest of the line after the first N tokens (for free-text fields).
std::string restAfter(const std::string &Raw, unsigned NTokens) {
  std::istringstream LS(Raw);
  std::string Tok;
  for (unsigned I = 0; I != NTokens; ++I)
    LS >> Tok;
  std::string Rest;
  std::getline(LS, Rest);
  size_t Start = Rest.find_first_not_of(' ');
  return Start == std::string::npos ? std::string() : Rest.substr(Start);
}

struct ParseError {
  std::string Msg;
};

void fail(std::string *Err, unsigned Line, const std::string &Msg) {
  if (Err)
    *Err = "line " + std::to_string(Line) + ": " + Msg;
}

/// Parses one "rule ..." line into \p T.
bool parseRuleLine(const std::vector<std::string> &Tok, Table &T) {
  // rule <pri> <inport|-> <src|-> <dst|-> <typ|-> <nacts> acts...
  if (Tok.size() < 7)
    return false;
  Rule R;
  if (!parseU32(Tok[1], R.Priority))
    return false;
  std::optional<uint32_t> InPort;
  if (!parseOpt(Tok[2], InPort))
    return false;
  if (InPort)
    R.Pat.InPort = *InPort;
  for (unsigned F = 0; F != NumFields; ++F)
    if (!parseOpt(Tok[3 + F], R.Pat.Values[F]))
      return false;
  uint32_t NActs = 0;
  if (!parseU32(Tok[6], NActs))
    return false;
  size_t Pos = 7;
  for (uint32_t A = 0; A != NActs; ++A) {
    if (Pos >= Tok.size())
      return false;
    if (Tok[Pos] == "F") {
      uint32_t Port = 0;
      if (Pos + 1 >= Tok.size() || !parseU32(Tok[Pos + 1], Port))
        return false;
      R.Actions.push_back(Action::forward(Port));
      Pos += 2;
    } else if (Tok[Pos] == "S") {
      uint32_t F = 0, V = 0;
      if (Pos + 2 >= Tok.size() || !parseU32(Tok[Pos + 1], F) ||
          !parseU32(Tok[Pos + 2], V) || F >= NumFields)
        return false;
      R.Actions.push_back(Action::setField(static_cast<Field>(F), V));
      Pos += 3;
    } else {
      return false;
    }
  }
  T.addRule(std::move(R));
  return true;
}

bool parseConfigSection(Cursor &C, Config &Cfg, unsigned NonEmpty,
                        unsigned NumSwitches, std::string *Err) {
  std::vector<std::string> Tok;
  std::string Raw;
  for (unsigned I = 0; I != NonEmpty; ++I) {
    if (!C.nextLine(Tok, Raw) || Tok[0] != "table" || Tok.size() != 3) {
      fail(Err, C.line(), "expected table header");
      return false;
    }
    uint32_t Sw = 0, NRules = 0;
    if (!parseU32(Tok[1], Sw) || !parseU32(Tok[2], NRules) ||
        Sw >= NumSwitches) {
      fail(Err, C.line(), "bad table header");
      return false;
    }
    Table T;
    for (uint32_t R = 0; R != NRules; ++R) {
      if (!C.nextLine(Tok, Raw) || Tok[0] != "rule" ||
          !parseRuleLine(Tok, T)) {
        fail(Err, C.line(), "bad rule line");
        return false;
      }
    }
    Cfg.setTable(Sw, std::move(T));
  }
  return true;
}

bool parseIdList(const std::vector<std::string> &Tok, unsigned Bound,
                 std::vector<SwitchId> &Out) {
  if (Tok.size() < 2)
    return false;
  uint32_t N = 0;
  if (!parseU32(Tok[1], N) || Tok.size() != 2 + N)
    return false;
  Out.clear();
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t V = 0;
    if (!parseU32(Tok[2 + I], V) || V >= Bound)
      return false;
    Out.push_back(V);
  }
  return true;
}

} // namespace

std::string fuzz::serializeScenario(const Scenario &S) {
  std::ostringstream OS;
  const Topology &T = S.Topo;
  OS << "scenario\n";
  OS << "kind " << kindToken(S.Kind) << '\n';
  OS << "switches " << T.numSwitches() << '\n';
  for (SwitchId Sw = 0; Sw != T.numSwitches(); ++Sw)
    OS << "swname " << Sw << ' ' << T.switchName(Sw) << '\n';
  OS << "hosts " << T.numHosts() << '\n';
  for (HostId H = 0; H != T.numHosts(); ++H)
    OS << "hostname " << H << ' ' << T.hostName(H) << '\n';
  OS << "ports " << T.numPorts();
  for (PortId P = 0; P != T.numPorts(); ++P)
    OS << ' ' << T.portOwner(P);
  OS << '\n';
  OS << "links " << T.numLinks() << '\n';
  for (const Link &L : T.links()) {
    OS << "link ";
    writeLocation(OS, L.From);
    OS << ' ';
    writeLocation(OS, L.To);
    OS << '\n';
  }
  OS << "flows " << S.Flows.size() << '\n';
  for (const FlowSpec &F : S.Flows) {
    OS << "flowclass " << F.Class.Hdr.get(Field::Src) << ' '
       << F.Class.Hdr.get(Field::Dst) << ' ' << F.Class.Hdr.get(Field::Typ)
       << ' ' << (F.Class.Name.empty() ? "-" : F.Class.Name) << '\n';
    OS << "flowends " << F.SrcHost << ' ' << F.DstHost << ' ' << F.SrcPort
       << ' ' << F.DstPort << '\n';
    writeIds(OS, "flowway", F.Waypoints);
    writeIds(OS, "flowipath", F.InitialPath);
    writeIds(OS, "flowfpath", F.FinalPath);
  }
  writeConfig(OS, "initial", S.Initial);
  writeConfig(OS, "final", S.Final);
  OS << "end\n";
  return OS.str();
}

std::optional<Scenario> fuzz::parseScenario(const std::string &Text,
                                            std::string *Err) {
  Cursor C(Text);
  std::vector<std::string> Tok;
  std::string Raw;

  if (!C.nextLine(Tok, Raw) || Tok[0] != "scenario") {
    fail(Err, C.line(), "expected 'scenario'");
    return std::nullopt;
  }

  Scenario S;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "kind" || Tok.size() != 2) {
    fail(Err, C.line(), "expected 'kind'");
    return std::nullopt;
  }
  std::optional<PropertyKind> K = kindFromToken(Tok[1]);
  if (!K) {
    fail(Err, C.line(), "unknown property kind");
    return std::nullopt;
  }
  S.Kind = *K;

  uint32_t NumSwitches = 0;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "switches" || Tok.size() != 2 ||
      !parseU32(Tok[1], NumSwitches)) {
    fail(Err, C.line(), "expected 'switches <n>'");
    return std::nullopt;
  }
  for (uint32_t I = 0; I != NumSwitches; ++I) {
    if (!C.nextLine(Tok, Raw) || Tok[0] != "swname" || Tok.size() < 2) {
      fail(Err, C.line(), "expected 'swname'");
      return std::nullopt;
    }
    S.Topo.addSwitch(restAfter(Raw, 2));
  }

  uint32_t NumHosts = 0;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "hosts" || Tok.size() != 2 ||
      !parseU32(Tok[1], NumHosts)) {
    fail(Err, C.line(), "expected 'hosts <n>'");
    return std::nullopt;
  }
  for (uint32_t I = 0; I != NumHosts; ++I) {
    if (!C.nextLine(Tok, Raw) || Tok[0] != "hostname" || Tok.size() < 2) {
      fail(Err, C.line(), "expected 'hostname'");
      return std::nullopt;
    }
    S.Topo.addHost(restAfter(Raw, 2));
  }

  // Ports: replay the allocation order so global ids come out identical.
  if (!C.nextLine(Tok, Raw) || Tok[0] != "ports" || Tok.size() < 2) {
    fail(Err, C.line(), "expected 'ports <n> <owners...>'");
    return std::nullopt;
  }
  uint32_t NumPorts = 0;
  if (!parseU32(Tok[1], NumPorts) || Tok.size() != 2 + NumPorts) {
    fail(Err, C.line(), "bad port list");
    return std::nullopt;
  }
  for (uint32_t P = 0; P != NumPorts; ++P) {
    uint32_t Owner = 0;
    if (!parseU32(Tok[2 + P], Owner) || Owner >= NumSwitches) {
      fail(Err, C.line(), "bad port owner");
      return std::nullopt;
    }
    S.Topo.addPort(Owner);
  }

  uint32_t NumLinks = 0;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "links" || Tok.size() != 2 ||
      !parseU32(Tok[1], NumLinks)) {
    fail(Err, C.line(), "expected 'links <n>'");
    return std::nullopt;
  }
  auto ParseLoc = [&](size_t &Pos, Location &Out) -> bool {
    if (Pos >= Tok.size())
      return false;
    if (Tok[Pos] == "H") {
      uint32_t H = 0;
      if (Pos + 1 >= Tok.size() || !parseU32(Tok[Pos + 1], H) ||
          H >= NumHosts)
        return false;
      Out = Location::host(H);
      Pos += 2;
      return true;
    }
    if (Tok[Pos] == "S") {
      uint32_t Sw = 0, P = 0;
      if (Pos + 2 >= Tok.size() || !parseU32(Tok[Pos + 1], Sw) ||
          !parseU32(Tok[Pos + 2], P) || Sw >= NumSwitches || P >= NumPorts)
        return false;
      Out = Location::switchPort(Sw, P);
      Pos += 3;
      return true;
    }
    return false;
  };
  for (uint32_t L = 0; L != NumLinks; ++L) {
    if (!C.nextLine(Tok, Raw) || Tok[0] != "link") {
      fail(Err, C.line(), "expected 'link'");
      return std::nullopt;
    }
    size_t Pos = 1;
    Location From, To;
    if (!ParseLoc(Pos, From) || !ParseLoc(Pos, To) || Pos != Tok.size()) {
      fail(Err, C.line(), "bad link line");
      return std::nullopt;
    }
    S.Topo.addLink(From, To);
  }

  uint32_t NumFlows = 0;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "flows" || Tok.size() != 2 ||
      !parseU32(Tok[1], NumFlows)) {
    fail(Err, C.line(), "expected 'flows <n>'");
    return std::nullopt;
  }
  for (uint32_t I = 0; I != NumFlows; ++I) {
    FlowSpec F;
    uint32_t Src = 0, Dst = 0, Typ = 0;
    if (!C.nextLine(Tok, Raw) || Tok[0] != "flowclass" || Tok.size() < 5 ||
        !parseU32(Tok[1], Src) || !parseU32(Tok[2], Dst) ||
        !parseU32(Tok[3], Typ)) {
      fail(Err, C.line(), "bad flowclass line");
      return std::nullopt;
    }
    F.Class.Hdr = makeHeader(Src, Dst, Typ);
    F.Class.Name = Tok[4] == "-" ? std::string() : Tok[4];
    if (!C.nextLine(Tok, Raw) || Tok[0] != "flowends" || Tok.size() != 5 ||
        !parseU32(Tok[1], F.SrcHost) || !parseU32(Tok[2], F.DstHost) ||
        !parseU32(Tok[3], F.SrcPort) || !parseU32(Tok[4], F.DstPort)) {
      fail(Err, C.line(), "bad flowends line");
      return std::nullopt;
    }
    if (!C.nextLine(Tok, Raw) || Tok[0] != "flowway" ||
        !parseIdList(Tok, NumSwitches, F.Waypoints)) {
      fail(Err, C.line(), "bad flowway line");
      return std::nullopt;
    }
    if (!C.nextLine(Tok, Raw) || Tok[0] != "flowipath" ||
        !parseIdList(Tok, NumSwitches, F.InitialPath)) {
      fail(Err, C.line(), "bad flowipath line");
      return std::nullopt;
    }
    if (!C.nextLine(Tok, Raw) || Tok[0] != "flowfpath" ||
        !parseIdList(Tok, NumSwitches, F.FinalPath)) {
      fail(Err, C.line(), "bad flowfpath line");
      return std::nullopt;
    }
    S.Flows.push_back(std::move(F));
  }

  S.Initial = Config(NumSwitches);
  S.Final = Config(NumSwitches);
  for (Config *Cfg : {&S.Initial, &S.Final}) {
    const char *Which = Cfg == &S.Initial ? "initial" : "final";
    uint32_t NonEmpty = 0;
    if (!C.nextLine(Tok, Raw) || Tok[0] != "config" || Tok.size() != 3 ||
        Tok[1] != Which || !parseU32(Tok[2], NonEmpty)) {
      fail(Err, C.line(), std::string("expected 'config ") + Which + "'");
      return std::nullopt;
    }
    if (!parseConfigSection(C, *Cfg, NonEmpty, NumSwitches, Err))
      return std::nullopt;
  }

  if (!C.nextLine(Tok, Raw) || Tok[0] != "end") {
    fail(Err, C.line(), "expected 'end'");
    return std::nullopt;
  }
  return S;
}

std::string fuzz::serializeRepro(const Repro &R) {
  std::ostringstream OS;
  OS << "netupd-repro 1\n";
  OS << "seed " << R.Seed << '\n';
  OS << "iter " << R.Iter << '\n';
  OS << "title " << R.Title << '\n';
  OS << "cells " << (R.CellA.empty() ? "-" : R.CellA) << ' '
     << (R.CellB.empty() ? "-" : R.CellB) << '\n';
  OS << "detail " << R.Detail << '\n';
  OS << serializeScenario(R.S);
  return OS.str();
}

std::optional<Repro> fuzz::parseRepro(const std::string &Text,
                                      std::string *Err) {
  Cursor C(Text);
  std::vector<std::string> Tok;
  std::string Raw;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "netupd-repro" || Tok.size() != 2 ||
      Tok[1] != "1") {
    fail(Err, C.line(), "expected 'netupd-repro 1' header");
    return std::nullopt;
  }
  Repro R;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "seed" || Tok.size() != 2 ||
      !parseU64(Tok[1], R.Seed)) {
    fail(Err, C.line(), "expected 'seed'");
    return std::nullopt;
  }
  uint32_t Iter = 0;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "iter" || Tok.size() != 2 ||
      !parseU32(Tok[1], Iter)) {
    fail(Err, C.line(), "expected 'iter'");
    return std::nullopt;
  }
  R.Iter = Iter;
  if (!C.nextLine(Tok, Raw) || Tok[0] != "title") {
    fail(Err, C.line(), "expected 'title'");
    return std::nullopt;
  }
  R.Title = restAfter(Raw, 1);
  if (!C.nextLine(Tok, Raw) || Tok[0] != "cells" || Tok.size() != 3) {
    fail(Err, C.line(), "expected 'cells <a> <b>'");
    return std::nullopt;
  }
  R.CellA = Tok[1] == "-" ? std::string() : Tok[1];
  R.CellB = Tok[2] == "-" ? std::string() : Tok[2];
  if (!C.nextLine(Tok, Raw) || Tok[0] != "detail") {
    fail(Err, C.line(), "expected 'detail'");
    return std::nullopt;
  }
  R.Detail = restAfter(Raw, 1);

  // Everything from "scenario" onward is the scenario section.
  size_t Pos = Text.find("\nscenario\n");
  if (Pos == std::string::npos) {
    fail(Err, C.line(), "missing scenario section");
    return std::nullopt;
  }
  std::optional<Scenario> S = parseScenario(Text.substr(Pos + 1), Err);
  if (!S)
    return std::nullopt;
  R.S = std::move(*S);
  return R;
}

std::optional<Repro> fuzz::loadReproFile(const std::string &Path,
                                         std::string *Err) {
  std::ifstream In(Path);
  if (!In) {
    if (Err)
      *Err = "cannot open " + Path;
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseRepro(Buf.str(), Err);
}

bool fuzz::saveReproFile(const Repro &R, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << serializeRepro(R);
  return static_cast<bool>(Out);
}
