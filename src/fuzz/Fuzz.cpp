//===- fuzz/Fuzz.cpp - Differential fuzzing harness ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "engine/Engine.h"
#include "fuzz/Minimize.h"
#include "kripke/Kripke.h"
#include "mc/BackendFactory.h"
#include "mc/LabelingChecker.h"
#include "support/Strings.h"
#include "synth/Command.h"
#include "synth/OrderUpdate.h"
#include "topo/Churn.h"
#include "topo/Generators.h"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <sstream>

using namespace netupd;
using namespace netupd::fuzz;

namespace {

const char *statusName(SynthStatus S) {
  switch (S) {
  case SynthStatus::Success:
    return "Success";
  case SynthStatus::Impossible:
    return "Impossible";
  case SynthStatus::InitialViolation:
    return "InitialViolation";
  case SynthStatus::Aborted:
    return "Aborted";
  }
  return "?";
}

std::string cellName(const std::string &Backend, bool RuleGran,
                     bool Budgeted, unsigned Shards, bool Steal,
                     bool Learn) {
  std::string N = Backend;
  N += RuleGran ? "/rule" : "/switch";
  N += "/sh" + std::to_string(Shards);
  if (Steal)
    N += "+steal";
  if (Budgeted)
    N += "/budget";
  if (Learn)
    N += "/learn";
  return N;
}

/// Conflict-driven knob shape for a matrix cell; the default mirrors
/// SynthOptions (all three on).
struct KnobSpec {
  bool Min = true, Act = true, Rst = true;
};

/// One matrix cell: a plain synthesizeUpdate run with a fresh checker.
SynthResult runCell(const Scenario &S, const std::string &Backend,
                    bool RuleGran, const BudgetSpec *Budget, unsigned Shards,
                    bool Steal, const std::shared_ptr<ConstraintStore> &L,
                    const KnobSpec *Knobs = nullptr) {
  FormulaFactory FF;
  std::unique_ptr<CheckerBackend> Checker =
      BackendFactory::instance().create(Backend, S);
  SynthOptions O;
  O.RuleGranularity = RuleGran;
  O.WaitRemoval = false; // Minimal, byte-comparable sequences.
  if (Knobs) {
    O.ClauseMinimization = Knobs->Min;
    O.ActivityOrdering = Knobs->Act;
    O.Restarts = Knobs->Rst;
  }
  if (Budget) {
    if (Budget->PerUnit)
      O.UnitCheckCalls = Budget->Amount;
    else
      O.MaxCheckCalls = Budget->Amount;
  }
  O.Shards = Shards; // An explicit 1 pins the sequential search.
  O.WorkStealing = Steal;
  if (Shards > 1)
    O.ShardCheckerFactory = [&Backend,
                             &S]() -> std::unique_ptr<CheckerBackend> {
      return BackendFactory::instance().create(Backend, S);
    };
  if (L) {
    O.Learning = L;
    O.LearningScenario = digestOf(S);
  }
  return synthesizeUpdate(S, FF, *Checker, O);
}

/// Replays \p Cmds from the initial configuration, model-checking every
/// intermediate configuration with an independent batch checker, and
/// requires the sequence to land on the final configuration. "Lands on"
/// is semantic, not byte-for-byte: rule-granularity sequences assemble a
/// switch's final table slice by slice, so its rule order depends on the
/// order the classes were updated in — what must match is every class's
/// forwarding behaviour on every in-port of every diffed switch.
bool replayOk(const Scenario &S, const CommandSeq &Cmds, std::string *Why) {
  FormulaFactory FF;
  Formula Phi = S.buildProperty(FF);
  std::vector<TrafficClass> Cs = S.classes();
  auto Holds = [&](const Config &C) {
    KripkeStructure K(S.Topo, C, Cs);
    LabelingChecker Checker(LabelingChecker::Mode::Batch);
    return Checker.bind(K, Phi).Holds;
  };
  Config Cur = S.Initial;
  if (!Holds(Cur)) {
    if (Why)
      *Why = "initial configuration violates the property";
    return false;
  }
  unsigned Step = 0;
  for (const Command &C : Cmds) {
    ++Step;
    if (C.K != Command::Kind::Update)
      continue;
    Cur.setTable(C.Sw, C.NewTable);
    if (!Holds(Cur)) {
      if (Why)
        *Why = "intermediate configuration after command " +
               std::to_string(Step) + " violates the property";
      return false;
    }
  }
  for (SwitchId Sw : diffSwitches(Cur, S.Final))
    for (const TrafficClass &C : Cs)
      for (PortId Pt : S.Topo.switchPorts(Sw))
        if (!(Cur.table(Sw).apply(C.Hdr, Pt) ==
              S.Final.table(Sw).apply(C.Hdr, Pt))) {
          if (Why)
            *Why = "sequence does not reach the final configuration";
          return false;
        }
  return true;
}

Disagreement disagree(std::string What, std::string CellA, std::string CellB,
                      std::string Expected, std::string Got) {
  Disagreement D;
  D.What = std::move(What);
  D.CellA = std::move(CellA);
  D.CellB = std::move(CellB);
  D.Expected = std::move(Expected);
  D.Got = std::move(Got);
  return D;
}

/// Zoo-like indices small enough for a 100+-cell matrix run (the matrix
/// includes the symbolic backend, whose cost climbs steeply with state
/// count — large zoo members belong to the bench sweeps, not here).
const std::vector<unsigned> &smallZooIndices() {
  static const std::vector<unsigned> Small = [] {
    std::vector<unsigned> Out;
    for (unsigned I = 0; I != NumZooLike; ++I)
      if (zooLikeSize(I) <= 20)
        Out.push_back(I);
    return Out;
  }();
  return Small;
}

Topology randomTopology(Rng &R) {
  switch (R.nextBelow(5)) {
  case 0:
    return buildSmallWorld(10 + static_cast<unsigned>(R.nextBelow(9)), 4,
                           0.1 + 0.3 * R.nextDouble(), R);
  case 1:
    return buildFatTree(4);
  case 2: {
    // A single metro region: ring of PoPs plus chords. (A plain Clos is
    // deliberately absent here — its diameter-2 leaf-spine core has no
    // room for the >= 3-hop diamonds the scenario builders need.)
    WanParams P;
    P.Regions = 1;
    P.MeanRegionSize = 6 + static_cast<unsigned>(R.nextBelow(3));
    P.ChordFraction = 0.4;
    P.ExtraBackboneLinks = 0;
    return buildWan(P, R);
  }
  case 3: {
    const std::vector<unsigned> &Zoo = smallZooIndices();
    return buildZooLike(Zoo[R.nextBelow(Zoo.size())]);
  }
  default: {
    WanParams P;
    P.Regions = 2;
    P.MeanRegionSize = 4 + static_cast<unsigned>(R.nextBelow(2));
    P.ChordFraction = 0.25;
    P.ExtraBackboneLinks = 1;
    return buildWan(P, R);
  }
  }
}

/// Reverts updating switches (highest id first, never \p Keep) until the
/// update diff is at most \p MaxDiff switches — corrupted instances are
/// searched exhaustively, so their lattice must stay small.
void capDiff(Scenario &S, unsigned MaxDiff, SwitchId Keep) {
  for (;;) {
    std::vector<SwitchId> Diff = diffSwitches(S.Initial, S.Final);
    if (Diff.size() <= MaxDiff)
      return;
    auto It = std::find_if(Diff.rbegin(), Diff.rend(),
                           [&](SwitchId Sw) { return Sw != Keep; });
    if (It == Diff.rend())
      return;
    S.Final.setTable(*It, S.Initial.table(*It));
  }
}

/// Sometimes corrupts a freshly generated feasible instance into one of
/// the adversarial shapes the oracle must also agree on.
void mutateInstance(Scenario &S, Rng &R) {
  double U = R.nextDouble();
  if (U < 0.15) {
    // Blackhole the destination in the final configuration: no order can
    // work, the search must prove Impossible by exhaustion.
    SwitchId Dst = S.Flows[0].FinalPath.back();
    S.Final.setTable(Dst, Table());
    capDiff(S, 3, Dst);
  } else if (U < 0.25) {
    // Break the initial route: the instance is an InitialViolation.
    const std::vector<SwitchId> &P = S.Flows[0].InitialPath;
    if (P.size() >= 3)
      S.Initial.setTable(P[P.size() / 2], Table());
  } else if (U < 0.33) {
    // Blackhole an interior switch of the final path.
    const std::vector<SwitchId> &P = S.Flows[0].FinalPath;
    if (P.size() >= 3) {
      SwitchId Victim = P[P.size() / 2];
      S.Final.setTable(Victim, Table());
      capDiff(S, 3, Victim);
    }
  }
}

BudgetSpec drawBudget(Rng &R) {
  BudgetSpec B;
  B.PerUnit = R.nextBool(0.3);
  B.Amount = B.PerUnit ? 2 + R.nextBelow(9) : 10 + R.nextBelow(90);
  return B;
}

} // namespace

std::string Disagreement::str() const {
  std::string S = What;
  S += " [" + CellA + " vs " + CellB + "]";
  S += " expected: " + Expected + "; got: " + Got;
  return S;
}

Scenario fuzz::generateInstance(Rng &R) {
  for (;;) {
    Topology Base = randomTopology(R);
    PropertyKind Kind = static_cast<PropertyKind>(R.nextBelow(3));
    std::optional<Scenario> S;
    double Shape = R.nextDouble();
    if (Shape < 0.30) {
      DiamondOptions O;
      S = makeDiamondScenarioRetrying(Base, R, Kind, O);
    } else if (Shape < 0.55) {
      DiamondOptions O;
      O.NumFlows = 2;
      O.DisjointFlows = R.nextBool(0.75);
      S = makeDiamondScenarioRetrying(Base, R, Kind, O);
    } else if (Shape < 0.75) {
      // The Fig. 8(h) adversarial shape: switch-infeasible,
      // rule-feasible — the cross-granularity cells earn their keep here.
      DiamondOptions O;
      S = makeDoubleDiamondScenarioRetrying(Base, R, O, Kind);
    } else {
      DiamondOptions O;
      O.NumFlows = 3;
      S = makeDiamondScenarioRetrying(Base, R, Kind, O);
    }
    if (!S)
      continue; // Topology too small for the requested shape; re-roll.
    mutateInstance(*S, R);
    return std::move(*S);
  }
}

std::optional<Disagreement>
fuzz::checkScenario(const Scenario &S,
                    const std::vector<std::string> &Backends,
                    const BudgetSpec &Budget, unsigned *CellRuns,
                    const std::vector<std::string> &Shallow) {
  const BackendFactory &F = BackendFactory::instance();
  for (const std::string &B : Backends)
    if (!F.known(B))
      return disagree("unknown backend", B, "", "registered backend",
                      "no registry entry");
  if (Backends.empty())
    return std::nullopt;
  auto IsShallow = [&](const std::string &B) {
    return B != Backends[0] &&
           std::find(Shallow.begin(), Shallow.end(), B) != Shallow.end();
  };

  unsigned Cells = 0;
  // One store shared by every learning-on cell of this instance: cells
  // observe constraints exported by arbitrary earlier cells (budgeted
  // ones included) and must still match their learning-off references.
  auto Learn = std::make_shared<ConstraintStore>();

  SynthStatus GranRef[2] = {SynthStatus::Aborted, SynthStatus::Aborted};
  std::optional<Disagreement> Bad;

  for (bool RuleGran : {false, true}) {
    // The unlimited sequential reference cell for this granularity.
    SynthResult Ref =
        runCell(S, Backends[0], RuleGran, nullptr, 1, false, nullptr);
    ++Cells;
    std::string RefName =
        cellName(Backends[0], RuleGran, false, 1, false, false);
    std::string RefCmds = commandSeqToString(S.Topo, Ref.Commands);
    GranRef[RuleGran] = Ref.Status;

    if (Ref.Status == SynthStatus::Success) {
      std::string Why;
      if (!replayOk(S, Ref.Commands, &Why)) {
        Bad = disagree("reference sequence fails replay", RefName, "replay",
                       "correct careful sequence", Why);
        break;
      }
    }

    for (const std::string &B : Backends) {
      const bool ShallowB = IsShallow(B);
      // Shallow backends additionally only see single-class reachability
      // instances: the symbolic checker's BDD blows up on multi-class
      // and waypoint/chain formulas (the paper's §6 reports the same —
      // NuSMV timed out beyond the smallest instances).
      if (ShallowB &&
          (S.Flows.size() != 1 || S.Kind != PropertyKind::Reachability))
        continue;
      std::optional<SynthResult> BRef; // Budget reference, per backend.
      std::string BRefCmds, BRefName;
      for (bool Budgeted : {false, true}) {
        if (ShallowB && Budgeted)
          continue;
        for (unsigned Shards : {1u, 4u}) {
          if (ShallowB && Shards != 1)
            continue;
          for (bool Steal : {false, true}) {
            if (Shards == 1 && Steal)
              continue; // The knob is inert by construction.
            for (bool L : {false, true}) {
              if (ShallowB && L)
                continue;
              if (!Budgeted && B == Backends[0] && Shards == 1 && !L)
                continue; // That is the reference cell itself.
              SynthResult R =
                  runCell(S, B, RuleGran, Budgeted ? &Budget : nullptr,
                          Shards, Steal, L ? Learn : nullptr);
              ++Cells;
              std::string Name =
                  cellName(B, RuleGran, Budgeted, Shards, Steal, L);

              if (!Budgeted) {
                if (R.Status != Ref.Status) {
                  Bad = disagree("verdict mismatch", RefName, Name,
                                 statusName(Ref.Status),
                                 statusName(R.Status));
                  break;
                }
                if (Shards == 1) {
                  std::string Cmds = commandSeqToString(S.Topo, R.Commands);
                  if (Cmds != RefCmds) {
                    Bad = disagree("sequential sequence drift", RefName,
                                   Name, RefCmds, Cmds);
                    break;
                  }
                } else if (R.Status == SynthStatus::Success) {
                  std::string Why;
                  if (!replayOk(S, R.Commands, &Why)) {
                    Bad = disagree("sharded sequence fails replay", RefName,
                                   Name, "correct careful sequence", Why);
                    break;
                  }
                }
                if ((Shards == 1 || !Steal) && R.Stats.StolenTasks != 0) {
                  Bad = disagree("stealing engaged while inert", RefName,
                                 Name, "StolenTasks == 0",
                                 std::to_string(R.Stats.StolenTasks));
                  break;
                }
              } else {
                if (!BRef) {
                  // First budgeted cell of this backend group is the
                  // (1 shard, no steal, no learning) budget reference.
                  BRef = R;
                  BRefCmds = commandSeqToString(S.Topo, R.Commands);
                  BRefName = Name;
                  if (R.Status != SynthStatus::Aborted &&
                      R.Status != Ref.Status) {
                    Bad = disagree("completed budget verdict contradicts "
                                   "unlimited verdict",
                                   RefName, Name, statusName(Ref.Status),
                                   statusName(R.Status));
                    break;
                  }
                  continue;
                }
                if (R.Status != BRef->Status) {
                  Bad = disagree("budget verdict drift", BRefName, Name,
                                 statusName(BRef->Status),
                                 statusName(R.Status));
                  break;
                }
                std::string Cmds = commandSeqToString(S.Topo, R.Commands);
                if (Cmds != BRefCmds) {
                  Bad = disagree("budget sequence drift", BRefName, Name,
                                 BRefCmds, Cmds);
                  break;
                }
                if (R.Stats.StolenTasks != 0) {
                  Bad = disagree("deterministic budget mode stole tasks",
                                 BRefName, Name, "StolenTasks == 0",
                                 std::to_string(R.Stats.StolenTasks));
                  break;
                }
                if (L && R.Stats.ImportedConstraints != 0) {
                  Bad = disagree("budget mode imported constraints",
                                 BRefName, Name, "ImportedConstraints == 0",
                                 std::to_string(R.Stats.ImportedConstraints));
                  break;
                }
                if (R.Status != SynthStatus::Success &&
                    R.Stats.BudgetSpent != BRef->Stats.BudgetSpent) {
                  Bad = disagree("budget accounting drift", BRefName, Name,
                                 std::to_string(BRef->Stats.BudgetSpent),
                                 std::to_string(R.Stats.BudgetSpent));
                  break;
                }
              }
            }
            if (Bad)
              break;
          }
          if (Bad)
            break;
        }
        if (Bad)
          break;
      }
      if (Bad)
        break;
    }
    if (Bad)
      break;

    // Conflict-driven knob cells (reference backend). Clause
    // minimization generalizes W entries by sound resolution — the set
    // of refuted configurations and the candidate order are unchanged —
    // so its off-cell must reproduce the reference bytes. Activity
    // ordering and restarts legally reorder the search, so their
    // off-cells pin the verdict and replay-check the sequence instead.
    struct KnobCell {
      const char *Tag;
      KnobSpec K;
      bool ByteCompare;
    };
    const KnobCell KnobCells[] = {
        {"min-off", {false, true, true}, true},
        {"act-off", {true, false, true}, false},
        {"rst-off", {true, true, false}, false},
    };
    for (const KnobCell &KC : KnobCells) {
      SynthResult R = runCell(S, Backends[0], RuleGran, nullptr, 1, false,
                              nullptr, &KC.K);
      ++Cells;
      std::string Name = RefName + "/" + KC.Tag;
      if (R.Status != Ref.Status) {
        Bad = disagree("conflict knob changed the verdict", RefName, Name,
                       statusName(Ref.Status), statusName(R.Status));
        break;
      }
      if (KC.ByteCompare) {
        std::string Cmds = commandSeqToString(S.Topo, R.Commands);
        if (Cmds != RefCmds) {
          Bad = disagree("clause minimization moved the sequence", RefName,
                         Name, RefCmds, Cmds);
          break;
        }
      } else if (R.Status == SynthStatus::Success) {
        std::string Why;
        if (!replayOk(S, R.Commands, &Why)) {
          Bad = disagree("knob-off sequence fails replay", RefName, Name,
                         "correct careful sequence", Why);
          break;
        }
      }
    }
    if (Bad)
      break;

    // The all-knobs-off budget group: the knobs are semantic (part of
    // the job digest), so these cells form their own per-backend group
    // rather than comparing against the knob-on budget reference — the
    // (job, budget) purity contract must hold for the knob-off job
    // shape across shard counts too.
    {
      const KnobSpec AllOff{false, false, false};
      std::optional<SynthResult> KRef;
      std::string KRefCmds, KRefName;
      for (unsigned Shards : {1u, 4u}) {
        SynthResult R = runCell(S, Backends[0], RuleGran, &Budget, Shards,
                                false, nullptr, &AllOff);
        ++Cells;
        std::string Name =
            cellName(Backends[0], RuleGran, true, Shards, false, false) +
            "/conflict-off";
        if (!KRef) {
          KRef = R;
          KRefCmds = commandSeqToString(S.Topo, R.Commands);
          KRefName = Name;
          if (R.Status != SynthStatus::Aborted && R.Status != Ref.Status) {
            Bad = disagree("completed knob-off budget verdict contradicts "
                           "unlimited verdict",
                           RefName, Name, statusName(Ref.Status),
                           statusName(R.Status));
            break;
          }
          continue;
        }
        if (R.Status != KRef->Status) {
          Bad = disagree("knob-off budget verdict drift", KRefName, Name,
                         statusName(KRef->Status), statusName(R.Status));
          break;
        }
        std::string Cmds = commandSeqToString(S.Topo, R.Commands);
        if (Cmds != KRefCmds) {
          Bad = disagree("knob-off budget sequence drift", KRefName, Name,
                         KRefCmds, Cmds);
          break;
        }
        if (R.Status != SynthStatus::Success &&
            R.Stats.BudgetSpent != KRef->Stats.BudgetSpent) {
          Bad = disagree("knob-off budget accounting drift", KRefName, Name,
                         std::to_string(KRef->Stats.BudgetSpent),
                         std::to_string(R.Stats.BudgetSpent));
          break;
        }
      }
    }
    if (Bad)
      break;
  }

  if (CellRuns)
    *CellRuns += Cells;
  if (Bad)
    return Bad;

  // Cross-granularity relations between the two reference verdicts.
  bool SwIV = GranRef[0] == SynthStatus::InitialViolation;
  bool RlIV = GranRef[1] == SynthStatus::InitialViolation;
  std::string SwName = cellName(Backends[0], false, false, 1, false, false);
  std::string RlName = cellName(Backends[0], true, false, 1, false, false);
  if (SwIV != RlIV)
    return disagree("InitialViolation depends on granularity", SwName,
                    RlName, statusName(GranRef[0]), statusName(GranRef[1]));
  if (GranRef[0] == SynthStatus::Success &&
      GranRef[1] == SynthStatus::Impossible)
    return disagree("switch-feasible instance is rule-impossible", SwName,
                    RlName, "rule granularity at least as permissive",
                    "Impossible");
  return std::nullopt;
}

Scenario fuzz::generateLargeInstance(Rng &R) {
  for (;;) {
    Rng TopoRng = R.fork();
    // Hundreds of switches: the point is checker state-space scale
    // (incremental rebinds over a big Kripke structure), not lattice
    // width, so the update diff is capped after generation.
    unsigned N = 240 + 40 * static_cast<unsigned>(R.nextBelow(4));
    Topology Base =
        buildSmallWorld(N, 4, 0.06 + 0.04 * R.nextDouble(), TopoRng);
    DiamondOptions O;
    O.LongPaths = true;
    if (R.nextBool(0.3))
      O.NumFlows = 2;
    PropertyKind Kind = static_cast<PropertyKind>(R.nextBelow(3));
    std::optional<Scenario> S =
        makeDiamondScenarioRetrying(Base, R, Kind, O);
    if (!S)
      continue;
    mutateInstance(*S, R);
    capDiff(*S, 12, S->Flows[0].FinalPath.back());
    return std::move(*S);
  }
}

std::optional<Disagreement>
fuzz::checkLargeScenario(const Scenario &S, const std::string &Backend,
                         unsigned *CellRuns) {
  if (!BackendFactory::instance().known(Backend))
    return disagree("unknown backend", Backend, "", "registered backend",
                    "no registry entry");
  unsigned Cells = 0;
  std::optional<Disagreement> Bad;
  SynthStatus GranRef[2] = {SynthStatus::Aborted, SynthStatus::Aborted};
  for (bool RuleGran : {false, true}) {
    SynthResult Ref = runCell(S, Backend, RuleGran, nullptr, 1, false,
                              nullptr);
    ++Cells;
    std::string RefName = cellName(Backend, RuleGran, false, 1, false,
                                   false);
    std::string RefCmds = commandSeqToString(S.Topo, Ref.Commands);
    GranRef[RuleGran] = Ref.Status;
    if (Ref.Status == SynthStatus::Success) {
      std::string Why;
      if (!replayOk(S, Ref.Commands, &Why)) {
        Bad = disagree("large-instance reference fails replay", RefName,
                       "replay", "correct careful sequence", Why);
        break;
      }
    }
    // The one differential cell at this scale: clause minimization off
    // must reproduce the reference bytes — minimization is sound
    // resolution, so the refuted set, the conflict sequence (activity
    // bumps and restart points included), and therefore the committed
    // sequence are all invariant under the knob.
    const KnobSpec MinOff{false, true, true};
    SynthResult R = runCell(S, Backend, RuleGran, nullptr, 1, false,
                            nullptr, &MinOff);
    ++Cells;
    std::string Name = RefName + "/min-off";
    if (R.Status != Ref.Status) {
      Bad = disagree("clause minimization changed a large-instance "
                     "verdict",
                     RefName, Name, statusName(Ref.Status),
                     statusName(R.Status));
      break;
    }
    std::string Cmds = commandSeqToString(S.Topo, R.Commands);
    if (Cmds != RefCmds) {
      Bad = disagree("clause minimization moved a large-instance "
                     "sequence",
                     RefName, Name, RefCmds, Cmds);
      break;
    }
  }
  if (CellRuns)
    *CellRuns += Cells;
  if (Bad)
    return Bad;
  bool SwIV = GranRef[0] == SynthStatus::InitialViolation;
  bool RlIV = GranRef[1] == SynthStatus::InitialViolation;
  if (SwIV != RlIV)
    return disagree("InitialViolation depends on granularity (large)",
                    cellName(Backend, false, false, 1, false, false),
                    cellName(Backend, true, false, 1, false, false),
                    statusName(GranRef[0]), statusName(GranRef[1]));
  if (GranRef[0] == SynthStatus::Success &&
      GranRef[1] == SynthStatus::Impossible)
    return disagree("switch-feasible large instance is rule-impossible",
                    cellName(Backend, false, false, 1, false, false),
                    cellName(Backend, true, false, 1, false, false),
                    "rule granularity at least as permissive",
                    "Impossible");
  return std::nullopt;
}

std::optional<Disagreement> fuzz::checkChurnStream(Rng &R,
                                                   unsigned *CellRuns,
                                                   Scenario *BadStep) {
  Rng TopoRng = R.fork();
  Topology Base = buildSmallWorld(
      24 + 4 * static_cast<unsigned>(R.nextBelow(3)), 4, 0.2, TopoRng);
  ChurnOptions CO;
  CO.NumFlows = 2;
  CO.Steps = 12 + static_cast<unsigned>(R.nextBelow(9));
  CO.Kind = static_cast<PropertyKind>(R.nextBelow(3));
  std::optional<ChurnTrace> Trace = makeChurnTrace(Base, R, CO);
  if (!Trace)
    return std::nullopt; // Topology too small; skip this iteration.

  std::vector<SynthJob> Jobs;
  for (size_t I = 0; I != Trace->Steps.size(); ++I) {
    SynthJob J;
    J.Name = format("churn%zu", I);
    J.S = Trace->Steps[I];
    PortfolioMember M;
    M.Backend = "incremental";
    M.Opts.Shards = 1; // Pin the sequential search: sequences byte-compare.
    M.Opts.WaitRemoval = false;
    J.Portfolio.push_back(M);
    Jobs.push_back(std::move(J));
  }

  struct Mode {
    const char *Name;
    bool Cache, Learn;
  };
  const Mode Modes[] = {{"engine/plain", false, false},
                        {"engine/cache", true, false},
                        {"engine/learn", false, true},
                        {"engine/cache+learn", true, true}};
  std::vector<std::vector<std::pair<SynthStatus, std::string>>> PerMode;
  uint64_t CacheHits[4] = {0, 0, 0, 0};
  for (unsigned M = 0; M != 4; ++M) {
    EngineOptions EO;
    // Two digest-identical jobs on concurrent workers may both miss the
    // result cache (neither has populated it yet), so the pigeonhole
    // floor below is only deterministic when cached batches run on one
    // worker. The uncached modes keep two workers, which makes the
    // cross-mode byte-compare a worker-count invariance check too.
    EO.NumWorkers = Modes[M].Cache ? 1 : 2;
    EO.CacheResults = Modes[M].Cache;
    EO.SharedLearning = Modes[M].Learn;
    SynthEngine E(EO);
    BatchReport BR = E.run(Jobs);
    if (CellRuns)
      *CellRuns += static_cast<unsigned>(Jobs.size());
    CacheHits[M] = BR.EngineCacheHits;
    std::vector<std::pair<SynthStatus, std::string>> Out;
    for (size_t I = 0; I != BR.Reports.size(); ++I)
      Out.emplace_back(BR.Reports[I].Result.Status,
                       commandSeqToString(Trace->Steps[I].Topo,
                                          BR.Reports[I].Result.Commands));
    PerMode.push_back(std::move(Out));
  }

  for (unsigned M = 1; M != 4; ++M) {
    for (size_t I = 0; I != Jobs.size(); ++I) {
      if (PerMode[M][I] == PerMode[0][I])
        continue;
      if (BadStep)
        *BadStep = Trace->Steps[I];
      return disagree(
          format("engine mode drift at churn step %zu", I), Modes[0].Name,
          Modes[M].Name,
          std::string(statusName(PerMode[0][I].first)) + " | " +
              PerMode[0][I].second,
          std::string(statusName(PerMode[M][I].first)) + " | " +
              PerMode[M][I].second);
    }
  }

  // Pigeonhole floor for the result cache: a stream with D distinct job
  // digests and N steps must serve at least N - D steps from the cache.
  std::vector<Digest> Distinct;
  for (const SynthJob &J : Jobs) {
    Digest D = digestOf(J);
    if (std::find(Distinct.begin(), Distinct.end(), D) == Distinct.end())
      Distinct.push_back(D);
  }
  uint64_t Floor = Jobs.size() - Distinct.size();
  for (unsigned M : {1u, 3u}) {
    if (CacheHits[M] < Floor) {
      if (BadStep)
        *BadStep = Trace->Steps[0];
      return disagree("result cache under-served a churn stream",
                      Modes[0].Name, Modes[M].Name,
                      "at least " + std::to_string(Floor) + " cache hits",
                      std::to_string(CacheHits[M]));
    }
  }
  return std::nullopt;
}

FuzzReport fuzz::runFuzz(const FuzzOptions &Opts, std::ostream &Log) {
  FuzzReport Rep;
  std::vector<std::string> Backends = Opts.Backends.empty()
                                          ? BackendFactory::instance().names()
                                          : Opts.Backends;
  if (!Opts.OutDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Opts.OutDir, EC);
  }

  Rng Master(Opts.Seed);
  for (unsigned Iter = 0; Iter != Opts.Iters; ++Iter) {
    Rng R = Master.fork();
    std::optional<Disagreement> D;
    Scenario Bad;
    bool Churn = Opts.ChurnEvery && (Iter + 1) % Opts.ChurnEvery == 0;
    // Offset by half a period so large iterations never displace churn
    // iterations (with the defaults, 8 | 16, an unoffset schedule
    // would swallow every other churn stream).
    bool Large = Opts.LargeEvery &&
                 (Iter + Opts.LargeEvery / 2) % Opts.LargeEvery == 0 &&
                 !Churn;

    if (Large) {
      ++Rep.LargeInstances;
      Scenario S = generateLargeInstance(R);
      D = checkLargeScenario(S, Backends[0], &Rep.CellRuns);
      if (Opts.Verbose && !D)
        Log << "iter " << Iter << ": large instance ("
            << S.Topo.numSwitches() << " switches) ok\n";
      if (D) {
        // No delta-minimization at this scale — the oracle re-runs are
        // exhaustive sequential searches over a 200+-switch fabric.
        Bad = std::move(S);
        Log << "iter " << Iter << ": DISAGREEMENT: " << D->str() << "\n";
      }
    } else if (Churn) {
      ++Rep.ChurnStreams;
      D = checkChurnStream(R, &Rep.CellRuns, &Bad);
      if (Opts.Verbose && !D)
        Log << "iter " << Iter << ": churn stream ok\n";
    } else {
      ++Rep.Instances;
      BudgetSpec Budget = drawBudget(R);
      Scenario S = generateInstance(R);
      D = checkScenario(S, Backends, Budget, &Rep.CellRuns,
                        Opts.ShallowBackends);
      if (Opts.Verbose && !D)
        Log << "iter " << Iter << ": " << S.Topo.numSwitches()
            << " switches, " << S.Flows.size() << " flows, ok\n";
      if (D) {
        Log << "iter " << Iter << ": DISAGREEMENT: " << D->str() << "\n";
        // Delta-minimize against the full matrix: any reduction that
        // still disagrees anywhere is kept.
        Oracle StillBad = [&](const Scenario &Cand) {
          return checkScenario(Cand, Backends, Budget, nullptr,
                               Opts.ShallowBackends)
              .has_value();
        };
        Bad = minimizeScenario(S, StillBad);
        if (std::optional<Disagreement> MinD =
                checkScenario(Bad, Backends, Budget, nullptr,
                              Opts.ShallowBackends))
          D = MinD; // Report the disagreement the minimized form shows.
        Log << "  minimized to " << Bad.Topo.numSwitches() << " switches, "
            << Bad.Flows.size() << " flow(s)\n";
      }
    }

    if (!D)
      continue;
    if (Churn && !Large)
      Log << "iter " << Iter << ": DISAGREEMENT: " << D->str() << "\n";

    Repro Rp;
    Rp.Seed = Opts.Seed;
    Rp.Iter = Iter;
    Rp.Title = D->What;
    Rp.CellA = D->CellA;
    Rp.CellB = D->CellB;
    Rp.Detail = "expected: " + D->Expected + "; got: " + D->Got;
    Rp.S = Bad;
    if (!Opts.OutDir.empty()) {
      std::string Path = Opts.OutDir + "/repro-seed" +
                         std::to_string(Opts.Seed) + "-iter" +
                         std::to_string(Iter) + ".repro";
      if (saveReproFile(Rp, Path)) {
        Log << "  repro written to " << Path << "\n";
        Rep.ReproPaths.push_back(Path);
      } else {
        Log << "  FAILED to write repro to " << Path << "\n";
      }
    }
    Rep.Repros.push_back(std::move(Rp));
  }

  Log << "fuzz: " << Rep.Instances << " instances, " << Rep.ChurnStreams
      << " churn streams, " << Rep.LargeInstances << " large instances, "
      << Rep.CellRuns << " cell runs, " << Rep.Repros.size()
      << " disagreement(s)\n";
  return Rep;
}
