//===- fuzz/Repro.h - Self-contained disagreement repros -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization for differential-fuzzer repros: a complete Scenario
/// (topology, both configurations, flows, property kind) plus the
/// metadata of the disagreement that produced it, in a line-based format
/// stable enough to check into tests/corpus/ and replay forever.
///
/// The topology section is serialized at the allocation level — switch
/// and host names in id order, every global port's owning switch in port
/// order, every directed link in insertion order — and parsing replays
/// those allocations through addSwitch/addHost/addPort/addLink. Global
/// port ids are handed out sequentially by the Topology, so this replay
/// is the only way to reproduce them exactly; a parsed scenario satisfies
/// digestOf(parsed) == digestOf(original).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_FUZZ_REPRO_H
#define NETUPD_FUZZ_REPRO_H

#include "topo/Scenario.h"

#include <optional>
#include <string>

namespace netupd {
namespace fuzz {

/// A minimized disagreement instance plus the context to understand it.
struct Repro {
  /// Fuzzer seed and iteration that produced the instance (0/0 when the
  /// repro was authored by hand).
  uint64_t Seed = 0;
  unsigned Iter = 0;
  /// One-line classification of the disagreement.
  std::string Title;
  /// The two matrix cells (or engine modes) that disagreed.
  std::string CellA, CellB;
  /// Expected-vs-got detail, free text.
  std::string Detail;
  /// The (minimized) instance itself.
  Scenario S;
};

/// Renders \p S in the repro text format (scenario section only).
std::string serializeScenario(const Scenario &S);

/// Parses a scenario section; returns std::nullopt and fills \p Err on
/// malformed input.
std::optional<Scenario> parseScenario(const std::string &Text,
                                      std::string *Err = nullptr);

/// Renders a full repro file (header + scenario).
std::string serializeRepro(const Repro &R);

/// Parses a full repro file.
std::optional<Repro> parseRepro(const std::string &Text,
                                std::string *Err = nullptr);

/// Reads and parses a repro file from disk; std::nullopt on I/O or parse
/// failure.
std::optional<Repro> loadReproFile(const std::string &Path,
                                   std::string *Err = nullptr);

/// Writes \p R to \p Path; returns false on I/O failure.
bool saveReproFile(const Repro &R, const std::string &Path);

} // namespace fuzz
} // namespace netupd

#endif // NETUPD_FUZZ_REPRO_H
