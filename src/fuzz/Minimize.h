//===- fuzz/Minimize.h - Disagreement delta-minimization -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-minimization for differential-fuzzer disagreements. Given
/// a scenario and an oracle ("does this instance still disagree?"), three
/// reduction passes run to a fixpoint:
///
///  1. drop flows — remove a flow and strip its installed rules from
///     both configurations;
///  2. shorten the update diff — revert one updating switch's final
///     table back to its initial table;
///  3. shrink the topology — delete switches that carry no rules in
///     either configuration, host no endpoints, and appear in no
///     waypoint list, rebuilding the topology with remapped switch and
///     port ids (ports are reallocated in their original global order,
///     so the result is a well-formed Topology).
///
/// Every candidate reduction is kept only if the oracle still reports a
/// disagreement, so the passes need not be semantics-preserving — they
/// only propose. The oracle is typically a full matrix re-check, which
/// keeps minimization honest: whichever pair of cells disagrees on the
/// reduced instance, it is still a real disagreement.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_FUZZ_MINIMIZE_H
#define NETUPD_FUZZ_MINIMIZE_H

#include "topo/Scenario.h"

#include <functional>

namespace netupd {
namespace fuzz {

/// Returns true when the candidate instance still exhibits the bug.
using Oracle = std::function<bool(const Scenario &)>;

/// Rebuilds \p S without switch \p Victim, remapping switch ids, global
/// port ids, links, tables, and flow fields. The victim must carry no
/// host attachment and own no port referenced by a flow endpoint;
/// returns std::nullopt if it does (or if it is the last switch). Rules
/// on other switches that forwarded toward the victim survive with their
/// (now dangling) out-ports remapped away only when the port itself was
/// owned by a removed switch — a kept switch's ports are always kept.
std::optional<Scenario> removeSwitch(const Scenario &S, SwitchId Victim);

/// Runs the three reduction passes to a fixpoint (bounded) and returns
/// the smallest still-disagreeing instance found. \p StillBad must
/// return true on \p S itself; if it does not, \p S is returned
/// unchanged.
Scenario minimizeScenario(const Scenario &S, const Oracle &StillBad);

} // namespace fuzz
} // namespace netupd

#endif // NETUPD_FUZZ_MINIMIZE_H
