//===- bdd/Bdd.h - Reduced ordered binary decision diagrams ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact ROBDD package in the style of Brace/Rudell/Bryant: a unique
/// table guarantees canonicity, ite() with a computed cache implements all
/// binary connectives, and existential quantification supports the
/// relational fixpoints of the symbolic model checker (src/bddmc), this
/// repository's stand-in for the NuSMV backend of §6.
///
/// Node references are indices; 0 and 1 are the false/true terminals.
/// Nodes are never garbage collected — the checker builds a manager per
/// query, which keeps lifetimes trivial and matches the batch usage.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_BDD_BDD_H
#define NETUPD_BDD_BDD_H

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace netupd {
namespace bdd {

/// A BDD node reference (0 = false, 1 = true).
using NodeRef = uint32_t;

inline constexpr NodeRef False = 0;
inline constexpr NodeRef True = 1;

/// The node manager; see file comment. Variable indices order the
/// diagram: smaller index = closer to the root.
class Manager {
public:
  explicit Manager(unsigned NumVars);

  unsigned numVars() const { return NumVars; }

  /// The positive literal of variable \p V.
  NodeRef var(unsigned V) { return mk(V, False, True); }
  /// The negative literal of variable \p V.
  NodeRef nvar(unsigned V) { return mk(V, True, False); }

  /// If-then-else: the universal connective.
  NodeRef ite(NodeRef F, NodeRef G, NodeRef H);

  NodeRef andOp(NodeRef F, NodeRef G) { return ite(F, G, False); }
  NodeRef orOp(NodeRef F, NodeRef G) { return ite(F, True, G); }
  NodeRef notOp(NodeRef F) { return ite(F, False, True); }
  NodeRef xorOp(NodeRef F, NodeRef G) { return ite(F, notOp(G), G); }
  NodeRef iffOp(NodeRef F, NodeRef G) { return ite(F, G, notOp(G)); }
  NodeRef impliesOp(NodeRef F, NodeRef G) { return ite(F, G, True); }

  /// Existentially quantifies every variable whose bit is set in
  /// \p VarSet (indexed by variable).
  NodeRef exists(NodeRef F, const std::vector<uint8_t> &VarSet);

  /// Evaluates \p F under a full assignment (indexed by variable).
  bool eval(NodeRef F, const std::vector<uint8_t> &Assignment) const;

  /// Finds one satisfying assignment of \p F (false for don't-cares);
  /// \p F must not be the false terminal.
  std::vector<uint8_t> pickAssignment(NodeRef F) const;

  /// Number of live nodes (terminals included); a size/health metric.
  size_t numNodes() const { return Nodes.size(); }

private:
  struct Node {
    unsigned Var;
    NodeRef Lo, Hi;
  };

  NodeRef mk(unsigned V, NodeRef Lo, NodeRef Hi);
  NodeRef existsRec(NodeRef F, const std::vector<uint8_t> &VarSet,
                    std::unordered_map<NodeRef, NodeRef> &Memo);
  unsigned varOf(NodeRef F) const {
    return F <= True ? TerminalVar : Nodes[F].Var;
  }
  NodeRef cofactor(NodeRef F, unsigned V, bool Value) const;

  static constexpr unsigned TerminalVar = ~0u;

  unsigned NumVars;
  std::vector<Node> Nodes;

  struct TripleHash {
    size_t operator()(const std::tuple<unsigned, NodeRef, NodeRef> &T) const {
      auto [V, L, H] = T;
      uint64_t X = (uint64_t(V) << 40) ^ (uint64_t(L) << 20) ^ H;
      X *= 0x9e3779b97f4a7c15ull;
      return static_cast<size_t>(X ^ (X >> 29));
    }
  };
  std::unordered_map<std::tuple<unsigned, NodeRef, NodeRef>, NodeRef,
                     TripleHash>
      Unique;

  struct IteKeyHash {
    size_t operator()(
        const std::tuple<NodeRef, NodeRef, NodeRef> &T) const {
      auto [F, G, H] = T;
      uint64_t X = (uint64_t(F) << 42) ^ (uint64_t(G) << 21) ^ H;
      X *= 0xbf58476d1ce4e5b9ull;
      return static_cast<size_t>(X ^ (X >> 31));
    }
  };
  std::unordered_map<std::tuple<NodeRef, NodeRef, NodeRef>, NodeRef,
                     IteKeyHash>
      IteCache;
};

} // namespace bdd
} // namespace netupd

#endif // NETUPD_BDD_BDD_H
