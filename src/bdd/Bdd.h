//===- bdd/Bdd.h - Reduced ordered binary decision diagrams ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact ROBDD package in the style of Brace/Rudell/Bryant: a unique
/// table guarantees canonicity, ite() with a computed cache implements all
/// binary connectives, and existential quantification supports the
/// relational fixpoints of the symbolic model checker (src/bddmc), this
/// repository's stand-in for the NuSMV backend of §6.
///
/// Node references are indices; 0 and 1 are the false/true terminals.
/// Nodes are never garbage collected — the checker builds a manager per
/// query, which keeps lifetimes trivial and matches the batch usage.
///
/// Storage: nodes live in an arena-backed ChunkedVector (stable
/// addresses, no realloc copy), and the unique/ite tables are flat
/// open-addressed arrays — no per-node or per-cache-entry heap
/// allocations. A caller that owns an Arena (the symbolic checker keeps
/// one per checker instance) passes it in and reset()s it between
/// queries, so steady-state query N allocates nothing: it carves the
/// chunks recycled from query N-1.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_BDD_BDD_H
#define NETUPD_BDD_BDD_H

#include "support/Arena.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace netupd {
namespace bdd {

/// A BDD node reference (0 = false, 1 = true).
using NodeRef = uint32_t;

inline constexpr NodeRef False = 0;
inline constexpr NodeRef True = 1;

/// The node manager; see file comment. Variable indices order the
/// diagram: smaller index = closer to the root.
class Manager {
public:
  /// \p NodeArena, when given, backs node storage; the manager must be
  /// destroyed (or no longer used) before the arena is reset. Without
  /// one the manager owns a private arena.
  explicit Manager(unsigned NumVars, Arena *NodeArena = nullptr);

  unsigned numVars() const { return NumVars; }

  /// The positive literal of variable \p V.
  NodeRef var(unsigned V) { return mk(V, False, True); }
  /// The negative literal of variable \p V.
  NodeRef nvar(unsigned V) { return mk(V, True, False); }

  /// If-then-else: the universal connective.
  NodeRef ite(NodeRef F, NodeRef G, NodeRef H);

  NodeRef andOp(NodeRef F, NodeRef G) { return ite(F, G, False); }
  NodeRef orOp(NodeRef F, NodeRef G) { return ite(F, True, G); }
  NodeRef notOp(NodeRef F) { return ite(F, False, True); }
  NodeRef xorOp(NodeRef F, NodeRef G) { return ite(F, notOp(G), G); }
  NodeRef iffOp(NodeRef F, NodeRef G) { return ite(F, G, notOp(G)); }
  NodeRef impliesOp(NodeRef F, NodeRef G) { return ite(F, G, True); }

  /// Existentially quantifies every variable whose bit is set in
  /// \p VarSet (indexed by variable).
  NodeRef exists(NodeRef F, const std::vector<uint8_t> &VarSet);

  /// Evaluates \p F under a full assignment (indexed by variable).
  bool eval(NodeRef F, const std::vector<uint8_t> &Assignment) const;

  /// Finds one satisfying assignment of \p F (false for don't-cares);
  /// \p F must not be the false terminal.
  std::vector<uint8_t> pickAssignment(NodeRef F) const;

  /// Number of live nodes (terminals included); a size/health metric.
  size_t numNodes() const { return Nodes.size(); }

private:
  struct Node {
    unsigned Var;
    NodeRef Lo, Hi;
  };

  NodeRef mk(unsigned V, NodeRef Lo, NodeRef Hi);
  NodeRef existsRec(NodeRef F, const std::vector<uint8_t> &VarSet,
                    std::unordered_map<NodeRef, NodeRef> &Memo);
  unsigned varOf(NodeRef F) const {
    return F <= True ? TerminalVar : Nodes[F].Var;
  }
  NodeRef cofactor(NodeRef F, unsigned V, bool Value) const;

  static constexpr unsigned TerminalVar = ~0u;

  unsigned NumVars;
  /// Private arena when the caller did not supply one.
  std::unique_ptr<Arena> OwnArena;
  ChunkedVector<Node, 1024> Nodes;

  /// Open-addressed unique table: (Var, Lo, Hi) -> node. Var ==
  /// TerminalVar marks an empty slot (mk never files terminals).
  struct UniqueSlot {
    unsigned Var = TerminalVar;
    NodeRef Lo = 0, Hi = 0, Out = 0;
  };
  std::vector<UniqueSlot> Unique;
  size_t UniqueCount = 0;

  static size_t hashTriple(uint64_t A, uint64_t B, uint64_t C) {
    uint64_t X = (A << 40) ^ (B << 20) ^ C;
    X *= 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(X ^ (X >> 29));
  }

  /// Open-addressed computed cache: (F, G, H) -> ite result. F ==
  /// EmptyRef marks an empty slot (operands are always live refs).
  static constexpr NodeRef EmptyRef = ~NodeRef(0);
  struct IteSlot {
    NodeRef F = EmptyRef;
    NodeRef G = 0, H = 0, Out = 0;
  };
  std::vector<IteSlot> IteCache;
  size_t IteCount = 0;

  void growUnique();
  void growIte();
};

} // namespace bdd
} // namespace netupd

#endif // NETUPD_BDD_BDD_H
