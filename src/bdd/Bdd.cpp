//===- bdd/Bdd.cpp - Reduced ordered binary decision diagrams --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <algorithm>
#include <cassert>

using namespace netupd;
using namespace netupd::bdd;

Manager::Manager(unsigned NumVars) : NumVars(NumVars) {
  // Slots 0 and 1 are the terminals; their fields are never read.
  Nodes.push_back(Node{TerminalVar, False, False});
  Nodes.push_back(Node{TerminalVar, True, True});
}

NodeRef Manager::mk(unsigned V, NodeRef Lo, NodeRef Hi) {
  assert(V < NumVars && "variable out of range");
  if (Lo == Hi)
    return Lo; // Redundant test.
  auto Key = std::make_tuple(V, Lo, Hi);
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  Nodes.push_back(Node{V, Lo, Hi});
  NodeRef Ref = static_cast<NodeRef>(Nodes.size()) - 1;
  Unique.emplace(Key, Ref);
  return Ref;
}

NodeRef Manager::cofactor(NodeRef F, unsigned V, bool Value) const {
  if (F <= True || Nodes[F].Var != V)
    return F;
  return Value ? Nodes[F].Hi : Nodes[F].Lo;
}

NodeRef Manager::ite(NodeRef F, NodeRef G, NodeRef H) {
  // Terminal shortcuts.
  if (F == True)
    return G;
  if (F == False)
    return H;
  if (G == H)
    return G;
  if (G == True && H == False)
    return F;

  auto Key = std::make_tuple(F, G, H);
  auto It = IteCache.find(Key);
  if (It != IteCache.end())
    return It->second;

  unsigned V = std::min({varOf(F), varOf(G), varOf(H)});
  NodeRef Lo = ite(cofactor(F, V, false), cofactor(G, V, false),
                   cofactor(H, V, false));
  NodeRef Hi =
      ite(cofactor(F, V, true), cofactor(G, V, true), cofactor(H, V, true));
  NodeRef Out = mk(V, Lo, Hi);
  IteCache.emplace(Key, Out);
  return Out;
}

NodeRef Manager::existsRec(NodeRef F, const std::vector<uint8_t> &VarSet,
                           std::unordered_map<NodeRef, NodeRef> &Memo) {
  if (F <= True)
    return F;
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  // Copy the fields: orOp/mk below may reallocate Nodes.
  Node Nd = Nodes[F];
  NodeRef Lo = existsRec(Nd.Lo, VarSet, Memo);
  NodeRef Hi = existsRec(Nd.Hi, VarSet, Memo);
  NodeRef Out = VarSet[Nd.Var] ? orOp(Lo, Hi) : mk(Nd.Var, Lo, Hi);
  Memo.emplace(F, Out);
  return Out;
}

NodeRef Manager::exists(NodeRef F, const std::vector<uint8_t> &VarSet) {
  assert(VarSet.size() >= NumVars && "quantifier set too small");
  // Memoized per call: the quantified set varies between calls.
  std::unordered_map<NodeRef, NodeRef> Memo;
  return existsRec(F, VarSet, Memo);
}

bool Manager::eval(NodeRef F, const std::vector<uint8_t> &Assignment) const {
  assert(Assignment.size() >= NumVars && "assignment too small");
  while (F > True) {
    const Node &Nd = Nodes[F];
    F = Assignment[Nd.Var] ? Nd.Hi : Nd.Lo;
  }
  return F == True;
}

std::vector<uint8_t> Manager::pickAssignment(NodeRef F) const {
  assert(F != False && "no satisfying assignment of false");
  std::vector<uint8_t> Out(NumVars, 0);
  while (F > True) {
    const Node &Nd = Nodes[F];
    // Prefer the low branch when it can still reach true.
    if (Nd.Lo != False) {
      Out[Nd.Var] = 0;
      F = Nd.Lo;
    } else {
      Out[Nd.Var] = 1;
      F = Nd.Hi;
    }
  }
  return Out;
}
