//===- bdd/Bdd.cpp - Reduced ordered binary decision diagrams --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <algorithm>
#include <cassert>

using namespace netupd;
using namespace netupd::bdd;

Manager::Manager(unsigned NumVars, Arena *NodeArena)
    : NumVars(NumVars),
      OwnArena(NodeArena ? nullptr : std::make_unique<Arena>()),
      Nodes(NodeArena ? *NodeArena : *OwnArena) {
  // Slots 0 and 1 are the terminals; their fields are never read.
  Nodes.push_back(Node{TerminalVar, False, False});
  Nodes.push_back(Node{TerminalVar, True, True});
}

void Manager::growUnique() {
  size_t NewSize = Unique.empty() ? 1024 : Unique.size() * 2;
  std::vector<UniqueSlot> Old = std::move(Unique);
  Unique.assign(NewSize, UniqueSlot{});
  size_t Mask = NewSize - 1;
  for (const UniqueSlot &S : Old) {
    if (S.Var == TerminalVar)
      continue;
    size_t I = hashTriple(S.Var, S.Lo, S.Hi) & Mask;
    while (Unique[I].Var != TerminalVar)
      I = (I + 1) & Mask;
    Unique[I] = S;
  }
}

NodeRef Manager::mk(unsigned V, NodeRef Lo, NodeRef Hi) {
  assert(V < NumVars && "variable out of range");
  if (Lo == Hi)
    return Lo; // Redundant test.
  if (Unique.empty() || UniqueCount * 10 >= Unique.size() * 7)
    growUnique();
  size_t Mask = Unique.size() - 1;
  size_t I = hashTriple(V, Lo, Hi) & Mask;
  while (Unique[I].Var != TerminalVar) {
    const UniqueSlot &S = Unique[I];
    if (S.Var == V && S.Lo == Lo && S.Hi == Hi)
      return S.Out;
    I = (I + 1) & Mask;
  }
  Nodes.push_back(Node{V, Lo, Hi});
  NodeRef Ref = static_cast<NodeRef>(Nodes.size()) - 1;
  Unique[I] = UniqueSlot{V, Lo, Hi, Ref};
  ++UniqueCount;
  return Ref;
}

NodeRef Manager::cofactor(NodeRef F, unsigned V, bool Value) const {
  if (F <= True || Nodes[F].Var != V)
    return F;
  return Value ? Nodes[F].Hi : Nodes[F].Lo;
}

void Manager::growIte() {
  size_t NewSize = IteCache.empty() ? 1024 : IteCache.size() * 2;
  std::vector<IteSlot> Old = std::move(IteCache);
  IteCache.assign(NewSize, IteSlot{});
  size_t Mask = NewSize - 1;
  for (const IteSlot &S : Old) {
    if (S.F == EmptyRef)
      continue;
    size_t I = hashTriple(S.F, S.G, S.H) & Mask;
    while (IteCache[I].F != EmptyRef)
      I = (I + 1) & Mask;
    IteCache[I] = S;
  }
}

NodeRef Manager::ite(NodeRef F, NodeRef G, NodeRef H) {
  // Terminal shortcuts.
  if (F == True)
    return G;
  if (F == False)
    return H;
  if (G == H)
    return G;
  if (G == True && H == False)
    return F;

  if (IteCache.empty() || IteCount * 10 >= IteCache.size() * 7)
    growIte();
  size_t Mask = IteCache.size() - 1;
  size_t I = hashTriple(F, G, H) & Mask;
  while (IteCache[I].F != EmptyRef) {
    const IteSlot &S = IteCache[I];
    if (S.F == F && S.G == G && S.H == H)
      return S.Out;
    I = (I + 1) & Mask;
  }

  unsigned V = std::min({varOf(F), varOf(G), varOf(H)});
  NodeRef Lo = ite(cofactor(F, V, false), cofactor(G, V, false),
                   cofactor(H, V, false));
  NodeRef Hi =
      ite(cofactor(F, V, true), cofactor(G, V, true), cofactor(H, V, true));
  NodeRef Out = mk(V, Lo, Hi);

  // The recursive calls may have grown the cache; re-probe for the slot.
  Mask = IteCache.size() - 1;
  I = hashTriple(F, G, H) & Mask;
  while (IteCache[I].F != EmptyRef) {
    const IteSlot &S = IteCache[I];
    if (S.F == F && S.G == G && S.H == H)
      return S.Out;
    I = (I + 1) & Mask;
  }
  IteCache[I] = IteSlot{F, G, H, Out};
  ++IteCount;
  return Out;
}

NodeRef Manager::existsRec(NodeRef F, const std::vector<uint8_t> &VarSet,
                           std::unordered_map<NodeRef, NodeRef> &Memo) {
  if (F <= True)
    return F;
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  // Copy the fields: orOp/mk below may add nodes (addresses are stable,
  // but keeping the copy makes the code robust to storage changes).
  Node Nd = Nodes[F];
  NodeRef Lo = existsRec(Nd.Lo, VarSet, Memo);
  NodeRef Hi = existsRec(Nd.Hi, VarSet, Memo);
  NodeRef Out = VarSet[Nd.Var] ? orOp(Lo, Hi) : mk(Nd.Var, Lo, Hi);
  Memo.emplace(F, Out);
  return Out;
}

NodeRef Manager::exists(NodeRef F, const std::vector<uint8_t> &VarSet) {
  assert(VarSet.size() >= NumVars && "quantifier set too small");
  // Memoized per call: the quantified set varies between calls.
  std::unordered_map<NodeRef, NodeRef> Memo;
  return existsRec(F, VarSet, Memo);
}

bool Manager::eval(NodeRef F, const std::vector<uint8_t> &Assignment) const {
  assert(Assignment.size() >= NumVars && "assignment too small");
  while (F > True) {
    const Node &Nd = Nodes[F];
    F = Assignment[Nd.Var] ? Nd.Hi : Nd.Lo;
  }
  return F == True;
}

std::vector<uint8_t> Manager::pickAssignment(NodeRef F) const {
  assert(F != False && "no satisfying assignment of false");
  std::vector<uint8_t> Out(NumVars, 0);
  while (F > True) {
    const Node &Nd = Nodes[F];
    // Prefer the low branch when it can still reach true.
    if (Nd.Lo != False) {
      Out[Nd.Var] = 0;
      F = Nd.Lo;
    } else {
      Out[Nd.Var] = 1;
      F = Nd.Hi;
    }
  }
  return Out;
}
