//===- kripke/Kripke.h - Network Kripke structures -------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network Kripke structure of Definition 9: one disjoint component per
/// traffic class, whose states are switch/port locations a packet of that
/// class can occupy.
///
/// States come in two roles, mirroring the two observation kinds of the
/// operational model (Def. 7):
///  - *arrival* states (sw, pt, In): a packet has arrived at switch sw on
///    port pt and is about to be processed by sw's table;
///  - *egress* states (sw, pt, Out): the packet left sw through host-facing
///    port pt; these are sink states with a self-loop.
/// A packet dropped by a table makes its arrival state a self-loop sink
/// (case 3 of Def. 9). The structure is complete by construction, and for
/// well-formed (loop-free) configurations it is DAG-like: the only cycles
/// are the sink self-loops. checkDagLike() rejects loopy configurations,
/// as the paper's tool does (§3.2).
///
/// applySwitchUpdate implements the swUpdate operation of the synthesis
/// algorithm (Fig. 4): it replaces one switch's table, recomputes the
/// outgoing edges of that switch's arrival states, and reports which states
/// changed so the incremental checker can relabel only their ancestors.
/// The returned UndoRecord restores the previous configuration exactly,
/// which the DFS uses on backtrack.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_KRIPKE_KRIPKE_H
#define NETUPD_KRIPKE_KRIPKE_H

#include "ltl/Prop.h"
#include "net/Config.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace netupd {

/// Dense Kripke state index.
using StateId = uint32_t;

/// The Kripke structure for one (topology, configuration, traffic classes)
/// triple, mutable by switch-granularity or rule-granularity updates.
class KripkeStructure {
public:
  /// The role a location state plays; see file comment.
  enum class Role : uint8_t { Arrival, Egress };

  KripkeStructure(const Topology &Topo, Config Cfg,
                  std::vector<TrafficClass> Classes);

  unsigned numStates() const { return static_cast<unsigned>(Succs.size()); }
  unsigned numClasses() const {
    return static_cast<unsigned>(Classes.size());
  }

  const Topology &topology() const { return Topo; }
  const Config &config() const { return Cfg; }
  const std::vector<TrafficClass> &classes() const { return Classes; }

  const std::vector<StateId> &initialStates() const { return Initials; }
  const std::vector<StateId> &succs(StateId S) const { return Succs[S]; }
  const std::vector<StateId> &preds(StateId S) const { return Preds[S]; }

  /// True if the only outgoing edge of \p S is a self-loop.
  bool isSink(StateId S) const {
    return Succs[S].size() == 1 && Succs[S][0] == S;
  }

  /// The observable part of state \p S for atomic-proposition evaluation.
  StateInfo stateInfo(StateId S) const;

  SwitchId stateSwitch(StateId S) const { return Locs[localOf(S)].Sw; }
  PortId statePort(StateId S) const { return Locs[localOf(S)].Pt; }
  Role stateRole(StateId S) const { return Locs[localOf(S)].R; }
  unsigned stateClass(StateId S) const { return S / NumLocal; }

  /// Renders "(sw T1, pt 3, class h1->h3)" for diagnostics.
  std::string stateName(StateId S) const;

  /// Canonical digest of the structure's current semantic content:
  /// topology, traffic classes, and the *current* configuration. The
  /// configuration part is maintained incrementally Zobrist-style under
  /// applySwitchUpdate/undo (O(|table|) per mutation), so every
  /// recheckAfterUpdate site reads an up-to-date digest for free — the
  /// key MemoizingChecker uses. Two structures with equal digests label
  /// identically and number their states identically (construction is
  /// deterministic from the digested content).
  Digest digest() const {
    DigestBuilder B;
    B.addDigest(BaseDigest);
    B.addDigest(CfgXor);
    return B.finish();
  }

  /// Record sufficient to undo one applySwitchUpdate / applyTableUpdate.
  struct UndoRecord {
    SwitchId Sw = 0;
    Table OldTable;
    /// Digest of OldTable, saved so undo() restores the incremental
    /// configuration digest without rehashing the table.
    Digest OldTableDigest;
    /// (state, previous successor list) for every state whose edges
    /// changed.
    std::vector<std::pair<StateId, std::vector<StateId>>> OldEdges;
  };

  /// Replaces the table of switch \p Sw with \p NewTable and recomputes the
  /// affected edges. \p ChangedStates receives the states whose outgoing
  /// edges actually differ (the set "S" passed to incrModelCheck in
  /// Fig. 4).
  UndoRecord applySwitchUpdate(SwitchId Sw, const Table &NewTable,
                               std::vector<StateId> &ChangedStates);

  /// As above, but records into the caller-owned \p Undo, clearing and
  /// reusing its buffers. The DFS keeps one UndoRecord per depth and
  /// recycles it across candidates, so the apply/undo cycle on the
  /// search hot path allocates nothing in steady state.
  void applySwitchUpdate(SwitchId Sw, const Table &NewTable,
                         std::vector<StateId> &ChangedStates,
                         UndoRecord &Undo);

  /// Restores the configuration and edges saved in \p Undo.
  void undo(const UndoRecord &Undo);

  /// As above, but donates \p Undo's buffers back into the structure
  /// (the saved table and edge lists are moved, not copied). The record
  /// stays valid for reuse by the next recording applySwitchUpdate.
  void undo(UndoRecord &&Undo);

  /// Checks DAG-likeness: every cycle is a sink self-loop. Returns the
  /// states of a forwarding loop if one exists (the configuration is then
  /// rejected; the cycle doubles as a counterexample for pruning), or
  /// std::nullopt if the structure is DAG-like.
  std::optional<std::vector<StateId>> findForwardingLoop() const;

  /// States in topological order (children/successors before parents);
  /// valid only when DAG-like. Sink self-loops are ignored for ordering.
  std::vector<StateId> topoOrder() const;

  /// Enumerates complete traces (initial state to sink) for testing; stops
  /// after \p MaxTraces. Each trace is the state sequence ending at a
  /// sink (the infinite suffix repeats the sink).
  std::vector<std::vector<StateId>> enumerateTraces(size_t MaxTraces) const;

private:
  struct LocalState {
    SwitchId Sw;
    PortId Pt;
    Role R;
  };

  unsigned localOf(StateId S) const { return S % NumLocal; }
  StateId stateAt(unsigned ClassIdx, unsigned Local) const {
    return ClassIdx * NumLocal + Local;
  }

  /// Computes the successor list of an arrival state under the current
  /// config.
  std::vector<StateId> computeSuccs(StateId S) const;
  /// Same, filling the caller's \p Next (cleared first) so a hot loop
  /// can reuse one buffer across states.
  void computeSuccs(StateId S, std::vector<StateId> &Next) const;

  /// Recomputes edges of all arrival states of switch \p Sw, appending
  /// undo entries and changed states.
  void recomputeSwitch(SwitchId Sw,
                       std::vector<std::pair<StateId, std::vector<StateId>>>
                           &OldEdges,
                       std::vector<StateId> &ChangedStates);

  void setSuccs(StateId S, std::vector<StateId> NewSuccs);

  /// Scratch buffer for recomputeSwitch's successor computation; reused
  /// across states and mutations.
  std::vector<StateId> ScratchSuccs;

  const Topology &Topo;
  Config Cfg;
  std::vector<TrafficClass> Classes;

  /// Digest state; see digest(). BaseDigest covers topology + classes,
  /// CfgXor is the XOR of configSlotDigest(sw, TableDigests[sw]).
  Digest BaseDigest;
  Digest CfgXor;
  std::vector<Digest> TableDigests; // switch -> current table digest

  unsigned NumLocal = 0;
  std::vector<LocalState> Locs;              // local id -> location
  std::vector<int> ArrivalLocal;             // global port -> local id or -1
  std::vector<int> EgressLocal;              // global port -> local id or -1
  std::vector<std::vector<unsigned>> SwitchArrivals; // switch -> local ids

  std::vector<std::vector<StateId>> Succs;
  std::vector<std::vector<StateId>> Preds;
  std::vector<StateId> Initials;
};

} // namespace netupd

#endif // NETUPD_KRIPKE_KRIPKE_H
