//===- kripke/Kripke.cpp - Network Kripke structures -----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "kripke/Kripke.h"

#include "support/Strings.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace netupd;

KripkeStructure::KripkeStructure(const Topology &Topo, Config Cfg,
                                 std::vector<TrafficClass> Classes)
    : Topo(Topo), Cfg(std::move(Cfg)), Classes(std::move(Classes)) {
  assert(!this->Classes.empty() && "need at least one traffic class");

  // Build the per-class local state space from the topology: one arrival
  // state per link target (sw, pt), one egress state per host-facing port.
  ArrivalLocal.assign(Topo.numPorts(), -1);
  EgressLocal.assign(Topo.numPorts(), -1);
  SwitchArrivals.resize(Topo.numSwitches());

  for (const Link &L : Topo.links()) {
    if (!L.To.isHost() && ArrivalLocal[L.To.Port] < 0) {
      ArrivalLocal[L.To.Port] = static_cast<int>(Locs.size());
      SwitchArrivals[L.To.Switch].push_back(
          static_cast<unsigned>(Locs.size()));
      Locs.push_back(LocalState{L.To.Switch, L.To.Port, Role::Arrival});
    }
    if (L.To.isHost() && !L.From.isHost() && EgressLocal[L.From.Port] < 0) {
      EgressLocal[L.From.Port] = static_cast<int>(Locs.size());
      Locs.push_back(LocalState{L.From.Switch, L.From.Port, Role::Egress});
    }
  }
  NumLocal = static_cast<unsigned>(Locs.size());

  unsigned NumStates = NumLocal * numClasses();
  Succs.resize(NumStates);
  Preds.resize(NumStates);

  for (StateId S = 0; S != NumStates; ++S)
    setSuccs(S, computeSuccs(S));

  // Initial states: arrival states fed by a host link, in every class.
  for (const Location &In : Topo.ingressLocations()) {
    int Local = ArrivalLocal[In.Port];
    assert(Local >= 0 && "ingress port without arrival state");
    for (unsigned C = 0; C != numClasses(); ++C)
      Initials.push_back(stateAt(C, static_cast<unsigned>(Local)));
  }

  // Digest state: the immutable base plus the per-switch table digests
  // that applySwitchUpdate/undo keep current (see digest()).
  DigestBuilder Base;
  Base.addDigest(digestOf(Topo));
  Base.addU64(this->Classes.size());
  for (const TrafficClass &C : this->Classes)
    Base.addDigest(digestOf(C.Hdr));
  BaseDigest = Base.finish();

  TableDigests.resize(this->Cfg.numSwitches());
  DigestBuilder CfgMeta;
  CfgMeta.addU64(this->Cfg.numSwitches());
  CfgXor = CfgMeta.finish();
  for (SwitchId Sw = 0; Sw != this->Cfg.numSwitches(); ++Sw) {
    TableDigests[Sw] = digestOf(this->Cfg.table(Sw));
    CfgXor ^= configSlotDigest(Sw, TableDigests[Sw]);
  }
}

StateInfo KripkeStructure::stateInfo(StateId S) const {
  const LocalState &L = Locs[localOf(S)];
  return StateInfo{L.Sw, L.Pt, Classes[stateClass(S)].Hdr};
}

std::string KripkeStructure::stateName(StateId S) const {
  const LocalState &L = Locs[localOf(S)];
  return format("(%s %s, pt %u, class %s)",
                L.R == Role::Arrival ? "at" : "egress",
                Topo.switchName(L.Sw).c_str(), L.Pt,
                Classes[stateClass(S)].Name.c_str());
}

std::vector<StateId> KripkeStructure::computeSuccs(StateId S) const {
  std::vector<StateId> Next;
  computeSuccs(S, Next);
  return Next;
}

void KripkeStructure::computeSuccs(StateId S,
                                   std::vector<StateId> &Next) const {
  Next.clear();
  const LocalState &L = Locs[localOf(S)];
  unsigned ClassIdx = stateClass(S);

  // Egress states only self-loop (case 4 of Def. 9).
  if (L.R == Role::Egress) {
    Next.push_back(S);
    return;
  }

  const Header &Hdr = Classes[ClassIdx].Hdr;
  std::vector<Output> Outs = Cfg.table(L.Sw).apply(Hdr, L.Pt);

  for (const Output &O : Outs) {
    // The Kripke encoding keeps traffic classes disjoint (§3.3: packet
    // modification is future work), so tables must preserve headers here.
    assert(O.Hdr == Hdr &&
           "header-modifying rule in a Kripke-checked configuration");
    const Location *Dst = Topo.linkFrom(L.Sw, O.OutPort);
    if (!Dst)
      continue; // Forwarded out an unwired port: the packet vanishes.
    if (Dst->isHost()) {
      int Local = EgressLocal[O.OutPort];
      assert(Local >= 0 && "host-facing port without egress state");
      Next.push_back(stateAt(ClassIdx, static_cast<unsigned>(Local)));
    } else {
      int Local = ArrivalLocal[Dst->Port];
      assert(Local >= 0 && "link target without arrival state");
      Next.push_back(stateAt(ClassIdx, static_cast<unsigned>(Local)));
    }
  }

  // Dedupe (multicast to the same next hop adds no Kripke information).
  std::sort(Next.begin(), Next.end());
  Next.erase(std::unique(Next.begin(), Next.end()), Next.end());

  // Dropped packets self-loop (case 3 of Def. 9), keeping the structure
  // complete.
  if (Next.empty())
    Next.push_back(S);
}

void KripkeStructure::setSuccs(StateId S, std::vector<StateId> NewSuccs) {
  for (StateId Old : Succs[S]) {
    auto &P = Preds[Old];
    auto It = std::find(P.begin(), P.end(), S);
    if (It != P.end())
      P.erase(It);
  }
  Succs[S] = std::move(NewSuccs);
  for (StateId New : Succs[S])
    Preds[New].push_back(S);
}

void KripkeStructure::recomputeSwitch(
    SwitchId Sw,
    std::vector<std::pair<StateId, std::vector<StateId>>> &OldEdges,
    std::vector<StateId> &ChangedStates) {
  for (unsigned Local : SwitchArrivals[Sw]) {
    for (unsigned C = 0; C != numClasses(); ++C) {
      StateId S = stateAt(C, Local);
      computeSuccs(S, ScratchSuccs);
      if (ScratchSuccs == Succs[S])
        continue;
      // Unhook S from its old successors' pred lists, swap the new list
      // in, and donate the old list — buffer and all — to the undo log.
      for (StateId Old : Succs[S]) {
        auto &P = Preds[Old];
        auto It = std::find(P.begin(), P.end(), S);
        if (It != P.end())
          P.erase(It);
      }
      std::swap(Succs[S], ScratchSuccs);
      for (StateId New : Succs[S])
        Preds[New].push_back(S);
      OldEdges.emplace_back(S, std::move(ScratchSuccs));
      ChangedStates.push_back(S);
    }
  }
}

KripkeStructure::UndoRecord
KripkeStructure::applySwitchUpdate(SwitchId Sw, const Table &NewTable,
                                   std::vector<StateId> &ChangedStates) {
  UndoRecord Undo;
  applySwitchUpdate(Sw, NewTable, ChangedStates, Undo);
  return Undo;
}

void KripkeStructure::applySwitchUpdate(SwitchId Sw, const Table &NewTable,
                                        std::vector<StateId> &ChangedStates,
                                        UndoRecord &Undo) {
  Undo.Sw = Sw;
  Undo.OldTable = Cfg.table(Sw);
  Undo.OldTableDigest = TableDigests[Sw];
  Undo.OldEdges.clear();
  Cfg.setTable(Sw, NewTable);

  CfgXor ^= configSlotDigest(Sw, TableDigests[Sw]);
  TableDigests[Sw] = digestOf(NewTable);
  CfgXor ^= configSlotDigest(Sw, TableDigests[Sw]);

  recomputeSwitch(Sw, Undo.OldEdges, ChangedStates);
}

void KripkeStructure::undo(const UndoRecord &Undo) {
  Cfg.setTable(Undo.Sw, Undo.OldTable);

  CfgXor ^= configSlotDigest(Undo.Sw, TableDigests[Undo.Sw]);
  TableDigests[Undo.Sw] = Undo.OldTableDigest;
  CfgXor ^= configSlotDigest(Undo.Sw, TableDigests[Undo.Sw]);

  for (const auto &[S, Old] : Undo.OldEdges)
    setSuccs(S, Old);
}

void KripkeStructure::undo(UndoRecord &&Undo) {
  Cfg.setTable(Undo.Sw, std::move(Undo.OldTable));

  CfgXor ^= configSlotDigest(Undo.Sw, TableDigests[Undo.Sw]);
  TableDigests[Undo.Sw] = Undo.OldTableDigest;
  CfgXor ^= configSlotDigest(Undo.Sw, TableDigests[Undo.Sw]);

  for (auto &[S, Old] : Undo.OldEdges)
    setSuccs(S, std::move(Old));
}

std::optional<std::vector<StateId>>
KripkeStructure::findForwardingLoop() const {
  // Iterative three-color DFS over non-self-loop edges.
  enum : uint8_t { White, Gray, Black };
  std::vector<uint8_t> Color(numStates(), White);
  std::vector<std::pair<StateId, size_t>> Stack;

  for (StateId Root = 0; Root != numStates(); ++Root) {
    if (Color[Root] != White)
      continue;
    Stack.emplace_back(Root, 0);
    Color[Root] = Gray;
    while (!Stack.empty()) {
      auto &[S, EdgeIdx] = Stack.back();
      if (EdgeIdx == Succs[S].size()) {
        Color[S] = Black;
        Stack.pop_back();
        continue;
      }
      StateId Next = Succs[S][EdgeIdx++];
      if (Next == S)
        continue; // Sink self-loop.
      if (Color[Next] == Gray) {
        // Back edge: the cycle is the DFS-stack suffix from Next to S.
        std::vector<StateId> Cycle;
        bool InCycle = false;
        for (const auto &[Q, Unused] : Stack) {
          (void)Unused;
          if (Q == Next)
            InCycle = true;
          if (InCycle)
            Cycle.push_back(Q);
        }
        return Cycle;
      }
      if (Color[Next] == White) {
        Color[Next] = Gray;
        Stack.emplace_back(Next, 0);
      }
    }
  }
  return std::nullopt;
}

std::vector<StateId> KripkeStructure::topoOrder() const {
  // Post-order DFS gives successors-before-predecessors.
  std::vector<StateId> Order;
  Order.reserve(numStates());
  std::vector<uint8_t> Done(numStates(), 0);
  std::vector<std::pair<StateId, size_t>> Stack;

  for (StateId Root = 0; Root != numStates(); ++Root) {
    if (Done[Root])
      continue;
    Stack.emplace_back(Root, 0);
    Done[Root] = 1; // On stack or finished.
    while (!Stack.empty()) {
      auto &[S, EdgeIdx] = Stack.back();
      if (EdgeIdx == Succs[S].size()) {
        Order.push_back(S);
        Stack.pop_back();
        continue;
      }
      StateId Next = Succs[S][EdgeIdx++];
      if (Next == S || Done[Next])
        continue;
      Done[Next] = 1;
      Stack.emplace_back(Next, 0);
    }
  }
  return Order;
}

std::vector<std::vector<StateId>>
KripkeStructure::enumerateTraces(size_t MaxTraces) const {
  std::vector<std::vector<StateId>> Traces;
  std::vector<StateId> Path;

  // Depth-first path enumeration; bounded by MaxTraces.
  std::function<void(StateId)> Walk = [&](StateId S) {
    if (Traces.size() >= MaxTraces)
      return;
    Path.push_back(S);
    if (isSink(S)) {
      Traces.push_back(Path);
    } else {
      for (StateId Next : Succs[S]) {
        if (Next == S)
          continue;
        Walk(Next);
      }
    }
    Path.pop_back();
  };

  for (StateId S : Initials)
    Walk(S);
  return Traces;
}
