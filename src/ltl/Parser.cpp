//===- ltl/Parser.cpp - Concrete LTL syntax --------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ltl/Parser.h"

#include "support/Strings.h"

#include <cctype>

using namespace netupd;

namespace {

enum class TokKind {
  End,
  Ident,  // true, false, X, F, G, U, R, sw, port, src, dst, typ
  Number,
  LParen,
  RParen,
  Bang,
  Amp,
  Pipe,
  Arrow,
  Eq,
  Neq,
  Error
};

struct Token {
  TokKind K = TokKind::End;
  std::string Text;
  uint32_t Value = 0;
};

/// A recursive-descent parser over a simple hand-rolled lexer. Errors are
/// reported with a message; the grammar is small enough that positions are
/// easy to reconstruct from the message text.
class Parser {
public:
  Parser(FormulaFactory &Factory, const std::string &Text)
      : Factory(Factory), Text(Text) {
    advance();
  }

  ParseResult run() {
    Formula F = parseImplies();
    if (!F)
      return {nullptr, Err};
    if (Cur.K != TokKind::End)
      return {nullptr, "trailing input after formula: '" + Cur.Text + "'"};
    return {F, ""};
  }

private:
  void advance() {
    while (Pos < Text.size() &&
           isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    Cur = Token();
    if (Pos >= Text.size()) {
      Cur.K = TokKind::End;
      return;
    }
    char C = Text[Pos];
    if (isalpha(static_cast<unsigned char>(C))) {
      size_t Begin = Pos;
      while (Pos < Text.size() &&
             isalnum(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      Cur.K = TokKind::Ident;
      Cur.Text = Text.substr(Begin, Pos - Begin);
      return;
    }
    if (isdigit(static_cast<unsigned char>(C))) {
      size_t Begin = Pos;
      while (Pos < Text.size() &&
             isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      Cur.K = TokKind::Number;
      Cur.Text = Text.substr(Begin, Pos - Begin);
      Cur.Value = static_cast<uint32_t>(strtoul(Cur.Text.c_str(), nullptr, 10));
      return;
    }
    switch (C) {
    case '(':
      Cur.K = TokKind::LParen;
      break;
    case ')':
      Cur.K = TokKind::RParen;
      break;
    case '&':
      Cur.K = TokKind::Amp;
      break;
    case '|':
      Cur.K = TokKind::Pipe;
      break;
    case '=':
      Cur.K = TokKind::Eq;
      break;
    case '!':
      if (Pos + 1 < Text.size() && Text[Pos + 1] == '=') {
        Cur.K = TokKind::Neq;
        ++Pos;
      } else {
        Cur.K = TokKind::Bang;
      }
      break;
    case '-':
      if (Pos + 1 < Text.size() && Text[Pos + 1] == '>') {
        Cur.K = TokKind::Arrow;
        ++Pos;
      } else {
        Cur.K = TokKind::Error;
      }
      break;
    default:
      Cur.K = TokKind::Error;
      break;
    }
    Cur.Text = std::string(1, C);
    ++Pos;
  }

  Formula fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return nullptr;
  }

  Formula parseImplies() {
    Formula L = parseOr();
    if (!L)
      return nullptr;
    if (Cur.K != TokKind::Arrow)
      return L;
    advance();
    Formula R = parseImplies(); // Right associative.
    if (!R)
      return nullptr;
    return Factory.implies(L, R);
  }

  Formula parseOr() {
    Formula L = parseAnd();
    if (!L)
      return nullptr;
    while (Cur.K == TokKind::Pipe) {
      advance();
      Formula R = parseAnd();
      if (!R)
        return nullptr;
      L = Factory.disj(L, R);
    }
    return L;
  }

  Formula parseAnd() {
    Formula L = parseTemporal();
    if (!L)
      return nullptr;
    while (Cur.K == TokKind::Amp) {
      advance();
      Formula R = parseTemporal();
      if (!R)
        return nullptr;
      L = Factory.conj(L, R);
    }
    return L;
  }

  Formula parseTemporal() {
    Formula L = parseUnary();
    if (!L)
      return nullptr;
    if (Cur.K == TokKind::Ident && (Cur.Text == "U" || Cur.Text == "R")) {
      bool IsUntil = Cur.Text == "U";
      advance();
      Formula R = parseTemporal(); // Right associative.
      if (!R)
        return nullptr;
      return IsUntil ? Factory.until(L, R) : Factory.release(L, R);
    }
    return L;
  }

  Formula parseUnary() {
    if (Cur.K == TokKind::Bang) {
      advance();
      Formula Inner = parseUnary();
      if (!Inner)
        return nullptr;
      return Factory.negate(Inner);
    }
    if (Cur.K == TokKind::Ident &&
        (Cur.Text == "X" || Cur.Text == "F" || Cur.Text == "G")) {
      std::string Op = Cur.Text;
      advance();
      Formula Inner = parseUnary();
      if (!Inner)
        return nullptr;
      if (Op == "X")
        return Factory.next(Inner);
      if (Op == "F")
        return Factory.finally_(Inner);
      return Factory.globally(Inner);
    }
    return parsePrimary();
  }

  Formula parsePrimary() {
    if (Cur.K == TokKind::LParen) {
      advance();
      Formula Inner = parseImplies();
      if (!Inner)
        return nullptr;
      if (Cur.K != TokKind::RParen)
        return fail("expected ')'");
      advance();
      return Inner;
    }
    if (Cur.K != TokKind::Ident)
      return fail("expected formula, got '" + Cur.Text + "'");

    if (Cur.Text == "true") {
      advance();
      return Factory.top();
    }
    if (Cur.Text == "false") {
      advance();
      return Factory.bottom();
    }
    return parseAtom();
  }

  Formula parseAtom() {
    std::string Name = Cur.Text;
    advance();
    bool Negated;
    if (Cur.K == TokKind::Eq)
      Negated = false;
    else if (Cur.K == TokKind::Neq)
      Negated = true;
    else
      return fail("expected '=' or '!=' after '" + Name + "'");
    advance();
    if (Cur.K != TokKind::Number)
      return fail("expected a number in atom '" + Name + "'");
    uint32_t Value = Cur.Value;
    advance();

    Prop P;
    if (Name == "sw")
      P = Prop::onSwitch(Value);
    else if (Name == "port")
      P = Prop::onPort(Value);
    else if (std::optional<Field> F = fieldFromName(Name))
      P = Prop::onField(*F, Value);
    else
      return fail("unknown atom '" + Name + "'");
    return Negated ? Factory.notAtom(P) : Factory.atom(P);
  }

  FormulaFactory &Factory;
  const std::string &Text;
  size_t Pos = 0;
  Token Cur;
  std::string Err;
};

} // namespace

ParseResult netupd::parseLtl(FormulaFactory &Factory,
                             const std::string &Text) {
  return Parser(Factory, Text).run();
}
