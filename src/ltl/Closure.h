//===- ltl/Closure.h - Extended closure and consistent sets ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extended closure ecl(phi) of §5 and operations on maximally-
/// consistent subsets of it.
///
/// Since formulas are in NNF and a maximally-consistent set M contains
/// exactly one of {psi, !psi} for every subformula psi, M is represented as
/// a Bitset over the *subformulas* of phi: bit i set means subformula i is
/// in M, unset means its negation is. The three key operations are:
///
///  - sinkLabel:  the unique M satisfied by the constant trace of a sink
///                state (the Holds0 function, Fig. 5);
///  - extend:     given a successor's set M' and a state's atom valuation,
///                the unique M with follows(M, M') and matching atoms —
///                this is how labelNode enumerates a non-sink label;
///  - follows:    the successor relation on consistent sets, used by tests
///                and by counterexample extraction.
///
/// Note: the paper's Fig. 5 lists Holds0(q, a R b) = Holds0(a) | Holds0(b)
/// and follows has "a R b in M1 iff a in M1 or (b in M1 and ...)"; both
/// deviate from the standard release expansion a R b = b & (a | X(a R b)).
/// We implement the standard semantics (the paper's variants appear to be
/// typos: they would make G b = false R b behave correctly only by the
/// accident of the first disjunct being false).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_LTL_CLOSURE_H
#define NETUPD_LTL_CLOSURE_H

#include "ltl/Formula.h"
#include "support/Bitset.h"

#include <unordered_map>
#include <vector>

namespace netupd {

/// The closure of one root formula: its subformulas indexed in
/// children-before-parents order, with fast maximally-consistent-set
/// operations.
class Closure {
public:
  explicit Closure(Formula Root);

  /// Number of closure items (subformulas of the root).
  unsigned size() const { return static_cast<unsigned>(Items.size()); }

  /// The I-th closure item; children always precede parents.
  Formula item(unsigned I) const { return Items[I]; }

  /// The index of the root formula.
  unsigned rootIndex() const { return RootIdx; }

  /// The index of subformula \p F; asserts that F is in the closure.
  unsigned indexOf(Formula F) const;

  /// Computes the truth values of the non-temporal skeleton at a state:
  /// constants, atoms, and (since they are determined by their children)
  /// nothing else — And/Or/temporal bits are left 0 and filled by extend /
  /// sinkLabel. The result is cached per state by the checkers.
  Bitset atomBits(const StateInfo &S) const;

  /// The unique maximally-consistent set holding on the constant trace of
  /// a sink state with atom valuation \p AtomBits.
  Bitset sinkLabel(const Bitset &AtomBits) const;

  /// The unique maximally-consistent set M at a state with atoms
  /// \p AtomBits whose temporal obligations defer to successor set
  /// \p SuccM, i.e. the M with follows(M, SuccM) and matching atoms.
  Bitset extend(const Bitset &SuccM, const Bitset &AtomBits) const;

  /// The follows(M1, M2) relation of §5 restricted to this closure.
  bool follows(const Bitset &M1, const Bitset &M2) const;

  /// True if the boolean skeleton of \p M is internally consistent and its
  /// atom bits equal \p AtomBits; used by tests and debug assertions.
  bool consistentAt(const Bitset &M, const Bitset &AtomBits) const;

private:
  std::vector<Formula> Items;
  std::unordered_map<Formula, unsigned> Index;
  unsigned RootIdx = 0;
};

} // namespace netupd

#endif // NETUPD_LTL_CLOSURE_H
