//===- ltl/TraceEval.cpp - Reference LTL trace evaluator -------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ltl/TraceEval.h"

#include <cassert>

using namespace netupd;

bool netupd::evalOnTrace(Formula F, const Trace &T, size_t Pos) {
  assert(!T.empty() && "trace must be non-empty");
  assert(F && "null formula");
  size_t Last = T.size() - 1;
  if (Pos > Last)
    Pos = Last;

  switch (F->kind()) {
  case FKind::True:
    return true;
  case FKind::False:
    return false;
  case FKind::Atom:
    return evalProp(F->prop(), T[Pos]);
  case FKind::NotAtom:
    return !evalProp(F->prop(), T[Pos]);
  case FKind::And:
    return evalOnTrace(F->lhs(), T, Pos) && evalOnTrace(F->rhs(), T, Pos);
  case FKind::Or:
    return evalOnTrace(F->lhs(), T, Pos) || evalOnTrace(F->rhs(), T, Pos);
  case FKind::Next:
    return evalOnTrace(F->lhs(), T, Pos + 1);
  case FKind::Until:
    // a U b: some position i >= Pos satisfies b, with a holding on
    // [Pos, i). Past the end the trace is constant, so scanning up to the
    // last position decides the formula.
    for (size_t I = Pos; I <= Last; ++I) {
      if (evalOnTrace(F->rhs(), T, I))
        return true;
      if (!evalOnTrace(F->lhs(), T, I))
        return false;
    }
    // Constant suffix with b false everywhere and a true: never satisfied.
    return false;
  case FKind::Release:
    // a R b: b holds up to and including the first position where a holds
    // (if any). On the constant suffix, b holding at the last position
    // means it holds forever.
    for (size_t I = Pos; I <= Last; ++I) {
      if (!evalOnTrace(F->rhs(), T, I))
        return false;
      if (evalOnTrace(F->lhs(), T, I))
        return true;
    }
    return true;
  }
  assert(false && "unknown formula kind");
  return false;
}
