//===- ltl/Closure.cpp - Extended closure and consistent sets --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ltl/Closure.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace netupd;

Closure::Closure(Formula Root) {
  assert(Root && "null root formula");

  // Collect the subformula DAG.
  std::vector<Formula> Stack = {Root};
  std::unordered_map<Formula, bool> Seen;
  while (!Stack.empty()) {
    Formula F = Stack.back();
    Stack.pop_back();
    if (Seen.count(F))
      continue;
    Seen[F] = true;
    Items.push_back(F);
    if (F->lhs())
      Stack.push_back(F->lhs());
    if (F->rhs())
      Stack.push_back(F->rhs());
  }

  // Factory ids increase from children to parents (a node is interned only
  // after its children exist), so sorting by id yields a topological order
  // with children first.
  std::sort(Items.begin(), Items.end(),
            [](Formula A, Formula B) { return A->id() < B->id(); });

  for (unsigned I = 0, E = size(); I != E; ++I)
    Index[Items[I]] = I;
  RootIdx = indexOf(Root);
}

unsigned Closure::indexOf(Formula F) const {
  auto It = Index.find(F);
  assert(It != Index.end() && "formula not in closure");
  return It->second;
}

Bitset Closure::atomBits(const StateInfo &S) const {
  Bitset Bits(size());
  for (unsigned I = 0, E = size(); I != E; ++I) {
    Formula F = Items[I];
    switch (F->kind()) {
    case FKind::True:
      Bits.set(I);
      break;
    case FKind::Atom:
      Bits.assign(I, evalProp(F->prop(), S));
      break;
    case FKind::NotAtom:
      Bits.assign(I, !evalProp(F->prop(), S));
      break;
    default:
      break;
    }
  }
  return Bits;
}

Bitset Closure::sinkLabel(const Bitset &AtomBits) const {
  assert(AtomBits.size() == size() && "atom bits from a different closure");
  Bitset M = AtomBits;
  // Children precede parents, so a single forward pass settles every bit.
  // On the constant trace of a sink: X a = a, a U b = b, a R b = b.
  for (unsigned I = 0, E = size(); I != E; ++I) {
    Formula F = Items[I];
    switch (F->kind()) {
    case FKind::And:
      M.assign(I, M.test(indexOf(F->lhs())) && M.test(indexOf(F->rhs())));
      break;
    case FKind::Or:
      M.assign(I, M.test(indexOf(F->lhs())) || M.test(indexOf(F->rhs())));
      break;
    case FKind::Next:
      M.assign(I, M.test(indexOf(F->lhs())));
      break;
    case FKind::Until:
    case FKind::Release:
      M.assign(I, M.test(indexOf(F->rhs())));
      break;
    default:
      break; // Constants and atoms came from AtomBits.
    }
  }
  return M;
}

Bitset Closure::extend(const Bitset &SuccM, const Bitset &AtomBits) const {
  assert(SuccM.size() == size() && AtomBits.size() == size() &&
         "sets from a different closure");
  Bitset M = AtomBits;
  for (unsigned I = 0, E = size(); I != E; ++I) {
    Formula F = Items[I];
    switch (F->kind()) {
    case FKind::And:
      M.assign(I, M.test(indexOf(F->lhs())) && M.test(indexOf(F->rhs())));
      break;
    case FKind::Or:
      M.assign(I, M.test(indexOf(F->lhs())) || M.test(indexOf(F->rhs())));
      break;
    case FKind::Next:
      M.assign(I, SuccM.test(indexOf(F->lhs())));
      break;
    case FKind::Until:
      // a U b = b | (a & X(a U b)).
      M.assign(I, M.test(indexOf(F->rhs())) ||
                      (M.test(indexOf(F->lhs())) && SuccM.test(I)));
      break;
    case FKind::Release:
      // a R b = b & (a | X(a R b)).
      M.assign(I, M.test(indexOf(F->rhs())) &&
                      (M.test(indexOf(F->lhs())) || SuccM.test(I)));
      break;
    default:
      break;
    }
  }
  return M;
}

bool Closure::follows(const Bitset &M1, const Bitset &M2) const {
  assert(M1.size() == size() && M2.size() == size() &&
         "sets from a different closure");
  for (unsigned I = 0, E = size(); I != E; ++I) {
    Formula F = Items[I];
    bool Expected;
    switch (F->kind()) {
    case FKind::Next:
      Expected = M2.test(indexOf(F->lhs()));
      break;
    case FKind::Until:
      Expected = M1.test(indexOf(F->rhs())) ||
                 (M1.test(indexOf(F->lhs())) && M2.test(I));
      break;
    case FKind::Release:
      Expected = M1.test(indexOf(F->rhs())) &&
                 (M1.test(indexOf(F->lhs())) || M2.test(I));
      break;
    default:
      continue;
    }
    if (M1.test(I) != Expected)
      return false;
  }
  return true;
}

bool Closure::consistentAt(const Bitset &M, const Bitset &AtomBits) const {
  assert(M.size() == size() && AtomBits.size() == size() &&
         "sets from a different closure");
  for (unsigned I = 0, E = size(); I != E; ++I) {
    Formula F = Items[I];
    switch (F->kind()) {
    case FKind::True:
      if (!M.test(I))
        return false;
      break;
    case FKind::False:
      if (M.test(I))
        return false;
      break;
    case FKind::Atom:
    case FKind::NotAtom:
      if (M.test(I) != AtomBits.test(I))
        return false;
      break;
    case FKind::And:
      if (M.test(I) !=
          (M.test(indexOf(F->lhs())) && M.test(indexOf(F->rhs()))))
        return false;
      break;
    case FKind::Or:
      if (M.test(I) !=
          (M.test(indexOf(F->lhs())) || M.test(indexOf(F->rhs()))))
        return false;
      break;
    default:
      break; // Temporal bits are unconstrained locally.
    }
  }
  return true;
}
