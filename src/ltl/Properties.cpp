//===- ltl/Properties.cpp - Property builders from §6 ----------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ltl/Properties.h"

using namespace netupd;

Formula netupd::classGuard(FormulaFactory &FF, const TrafficClass &Class) {
  Formula Src =
      FF.atom(Prop::onField(Field::Src, Class.Hdr.get(Field::Src)));
  Formula Dst =
      FF.atom(Prop::onField(Field::Dst, Class.Hdr.get(Field::Dst)));
  return FF.conj(Src, Dst);
}

/// Combines the optional class guard with the "at source" atom.
static Formula antecedent(FormulaFactory &FF, PortId Src, Formula Guard) {
  Formula AtSrc = FF.atom(Prop::onPort(Src));
  return Guard ? FF.conj(Guard, AtSrc) : AtSrc;
}

Formula netupd::reachabilityProperty(FormulaFactory &FF, PortId Src,
                                     PortId Dst, Formula Guard) {
  Formula AtDst = FF.atom(Prop::onPort(Dst));
  return FF.implies(antecedent(FF, Src, Guard), FF.finally_(AtDst));
}

Formula netupd::waypointProperty(FormulaFactory &FF, PortId Src, Prop Way,
                                 PortId Dst, Formula Guard) {
  Formula AtWay = FF.atom(Way);
  Formula AtDst = FF.atom(Prop::onPort(Dst));
  Formula NotAtDst = FF.notAtom(Prop::onPort(Dst));
  Formula Tail = FF.conj(AtWay, FF.finally_(AtDst));
  return FF.implies(antecedent(FF, Src, Guard), FF.until(NotAtDst, Tail));
}

/// The recursive way(W, d) from §6.
static Formula way(FormulaFactory &FF, const std::vector<Prop> &Waypoints,
                   size_t From, PortId Dst) {
  if (From == Waypoints.size())
    return FF.finally_(FF.atom(Prop::onPort(Dst)));

  // Guard: stay away from every later waypoint and the destination until
  // the current waypoint is reached.
  Formula Guard = FF.notAtom(Prop::onPort(Dst));
  for (size_t I = From + 1; I < Waypoints.size(); ++I)
    Guard = FF.conj(Guard, FF.notAtom(Waypoints[I]));

  Formula Here = FF.atom(Waypoints[From]);
  Formula Rest = way(FF, Waypoints, From + 1, Dst);
  return FF.until(Guard, FF.conj(Here, Rest));
}

Formula netupd::serviceChainProperty(FormulaFactory &FF, PortId Src,
                                     const std::vector<Prop> &Waypoints,
                                     PortId Dst, Formula Guard) {
  return FF.implies(antecedent(FF, Src, Guard),
                    way(FF, Waypoints, 0, Dst));
}

Formula netupd::eitherWaypointProperty(FormulaFactory &FF, PortId Src,
                                       SwitchId Way1, SwitchId Way2,
                                       PortId Dst, Formula Guard) {
  Formula SeeWay = FF.disj(FF.finally_(FF.atom(Prop::onSwitch(Way1))),
                           FF.finally_(FF.atom(Prop::onSwitch(Way2))));
  Formula Reach = FF.finally_(FF.atom(Prop::onPort(Dst)));
  return FF.implies(antecedent(FF, Src, Guard), FF.conj(SeeWay, Reach));
}
