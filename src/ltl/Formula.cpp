//===- ltl/Formula.cpp - LTL formulas in negation normal form --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ltl/Formula.h"

#include "support/Strings.h"

#include <cassert>
#include <functional>

using namespace netupd;

std::string Prop::str() const {
  switch (K) {
  case Kind::Switch:
    return format("sw=%u", Value);
  case Kind::Port:
    return format("port=%u", Value);
  case Kind::FieldEq:
    return format("%s=%u", fieldName(F), Value);
  }
  return "?";
}

size_t FormulaFactory::KeyHash::operator()(const Key &K) const {
  uint64_t H = static_cast<uint64_t>(K.K);
  H = H * 1099511628211ull + static_cast<uint64_t>(K.P.K);
  H = H * 1099511628211ull + static_cast<uint64_t>(K.P.F);
  H = H * 1099511628211ull + K.P.Value;
  H = H * 1099511628211ull + reinterpret_cast<uintptr_t>(K.L);
  H = H * 1099511628211ull + reinterpret_cast<uintptr_t>(K.R);
  return static_cast<size_t>(H);
}

FormulaFactory::FormulaFactory() {
  TrueNode = intern(FKind::True, Prop(), nullptr, nullptr);
  FalseNode = intern(FKind::False, Prop(), nullptr, nullptr);
}

Formula FormulaFactory::intern(FKind K, Prop P, Formula L, Formula R) {
  Key Ky{K, P, L, R};
  auto It = Interned.find(Ky);
  if (It != Interned.end())
    return It->second;
  Nodes.push_back(
      FormulaNode(K, P, L, R, static_cast<unsigned>(Nodes.size())));
  Formula F = &Nodes.back();
  Interned.emplace(Ky, F);
  return F;
}

Formula FormulaFactory::conj(Formula A, Formula B) {
  assert(A && B && "null operand");
  if (A == TrueNode)
    return B;
  if (B == TrueNode)
    return A;
  if (A == FalseNode || B == FalseNode)
    return FalseNode;
  if (A == B)
    return A;
  return intern(FKind::And, Prop(), A, B);
}

Formula FormulaFactory::disj(Formula A, Formula B) {
  assert(A && B && "null operand");
  if (A == FalseNode)
    return B;
  if (B == FalseNode)
    return A;
  if (A == TrueNode || B == TrueNode)
    return TrueNode;
  if (A == B)
    return A;
  return intern(FKind::Or, Prop(), A, B);
}

Formula FormulaFactory::negate(Formula A) {
  assert(A && "null operand");
  switch (A->kind()) {
  case FKind::True:
    return FalseNode;
  case FKind::False:
    return TrueNode;
  case FKind::Atom:
    return notAtom(A->prop());
  case FKind::NotAtom:
    return atom(A->prop());
  case FKind::And:
    return disj(negate(A->lhs()), negate(A->rhs()));
  case FKind::Or:
    return conj(negate(A->lhs()), negate(A->rhs()));
  case FKind::Next:
    return next(negate(A->lhs()));
  case FKind::Until:
    return release(negate(A->lhs()), negate(A->rhs()));
  case FKind::Release:
    return until(negate(A->lhs()), negate(A->rhs()));
  }
  assert(false && "unknown formula kind");
  return nullptr;
}

Formula FormulaFactory::conjAll(const std::vector<Formula> &Fs) {
  Formula Out = top();
  for (Formula F : Fs)
    Out = conj(Out, F);
  return Out;
}

Formula FormulaFactory::disjAll(const std::vector<Formula> &Fs) {
  Formula Out = bottom();
  for (Formula F : Fs)
    Out = disj(Out, F);
  return Out;
}

/// Prints with minimal parentheses: binary operators are always
/// parenthesized, unary ones are not.
std::string netupd::printFormula(Formula F) {
  assert(F && "null formula");
  switch (F->kind()) {
  case FKind::True:
    return "true";
  case FKind::False:
    return "false";
  case FKind::Atom:
    return F->prop().str();
  case FKind::NotAtom:
    return "!" + F->prop().str();
  case FKind::And:
    return "(" + printFormula(F->lhs()) + " & " + printFormula(F->rhs()) +
           ")";
  case FKind::Or:
    return "(" + printFormula(F->lhs()) + " | " + printFormula(F->rhs()) +
           ")";
  case FKind::Next:
    return "X " + printFormula(F->lhs());
  case FKind::Until:
    if (F->lhs()->kind() == FKind::True)
      return "F " + printFormula(F->rhs());
    return "(" + printFormula(F->lhs()) + " U " + printFormula(F->rhs()) +
           ")";
  case FKind::Release:
    if (F->lhs()->kind() == FKind::False)
      return "G " + printFormula(F->rhs());
    return "(" + printFormula(F->lhs()) + " R " + printFormula(F->rhs()) +
           ")";
  }
  assert(false && "unknown formula kind");
  return "?";
}

Digest netupd::digestOf(Formula F) {
  // Post-order walk with per-call memoization: the factory's hash-consing
  // makes formulas DAGs, so each shared node is digested once.
  std::unordered_map<Formula, Digest> Memo;
  std::function<Digest(Formula)> Walk = [&](Formula N) -> Digest {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    DigestBuilder B;
    B.addU64(static_cast<uint64_t>(N->kind()));
    switch (N->kind()) {
    case FKind::True:
    case FKind::False:
      break;
    case FKind::Atom:
    case FKind::NotAtom:
      B.addU64(static_cast<uint64_t>(N->prop().K));
      B.addU64(static_cast<uint64_t>(N->prop().F));
      B.addU32(N->prop().Value);
      break;
    case FKind::Next:
      B.addDigest(Walk(N->lhs()));
      break;
    case FKind::And:
    case FKind::Or:
    case FKind::Until:
    case FKind::Release:
      B.addDigest(Walk(N->lhs()));
      B.addDigest(Walk(N->rhs()));
      break;
    }
    Digest D = B.finish();
    Memo.emplace(N, D);
    return D;
  };
  return Walk(F);
}
