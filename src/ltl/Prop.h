//===- ltl/Prop.h - Atomic propositions ------------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic propositions over Kripke states (§3.2): tests of the current
/// switch id, the current (global) port id, or a packet header field of the
/// state's traffic class.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_LTL_PROP_H
#define NETUPD_LTL_PROP_H

#include "net/Packet.h"

#include <cstdint>
#include <string>

namespace netupd {

/// An atomic proposition "sw = n", "port = n", or "f = n".
struct Prop {
  enum class Kind : uint8_t { Switch, Port, FieldEq };

  Kind K = Kind::Port;
  Field F = Field::Src; // FieldEq only
  uint32_t Value = 0;

  static Prop onSwitch(SwitchId S) {
    Prop P;
    P.K = Kind::Switch;
    P.Value = S;
    return P;
  }

  static Prop onPort(PortId Pt) {
    Prop P;
    P.K = Kind::Port;
    P.Value = Pt;
    return P;
  }

  static Prop onField(Field F, uint32_t V) {
    Prop P;
    P.K = Kind::FieldEq;
    P.F = F;
    P.Value = V;
    return P;
  }

  friend bool operator==(const Prop &A, const Prop &B) {
    return A.K == B.K && A.F == B.F && A.Value == B.Value;
  }

  /// Renders as "port=3" / "sw=1" / "dst=2".
  std::string str() const;
};

/// The observable part of a Kripke state (Def. 9): the switch, the global
/// port, and the traffic class's representative header.
struct StateInfo {
  SwitchId Sw = 0;
  PortId Pt = InvalidPort;
  Header Hdr;
};

/// Evaluates proposition \p P at state \p S.
inline bool evalProp(const Prop &P, const StateInfo &S) {
  switch (P.K) {
  case Prop::Kind::Switch:
    return S.Sw == P.Value;
  case Prop::Kind::Port:
    return S.Pt == P.Value;
  case Prop::Kind::FieldEq:
    return S.Hdr.get(P.F) == P.Value;
  }
  return false;
}

} // namespace netupd

#endif // NETUPD_LTL_PROP_H
