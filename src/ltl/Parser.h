//===- ltl/Parser.h - Concrete LTL syntax ----------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parser for the concrete LTL syntax used by examples and tests:
///
///   phi ::= phi1 '->' phi            (right associative, lowest)
///         | phi1 '|' phi1
///         | phi2 '&' phi2
///         | phi3 'U' phi3 | phi3 'R' phi3   (right associative)
///         | '!' phi4 | 'X' phi4 | 'F' phi4 | 'G' phi4
///         | 'true' | 'false' | atom | '(' phi ')'
///   atom ::= ('sw' | 'port' | 'src' | 'dst' | 'typ') ('=' | '!=') number
///
/// Negation is pushed to atoms during parsing, so the result is in NNF.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_LTL_PARSER_H
#define NETUPD_LTL_PARSER_H

#include "ltl/Formula.h"

#include <optional>
#include <string>

namespace netupd {

/// Result of parsing: the formula on success, or a diagnostic message.
struct ParseResult {
  Formula F = nullptr;
  std::string Error;

  bool ok() const { return F != nullptr; }
};

/// Parses \p Text into an NNF formula built in \p Factory.
ParseResult parseLtl(FormulaFactory &Factory, const std::string &Text);

} // namespace netupd

#endif // NETUPD_LTL_PARSER_H
