//===- ltl/TraceEval.h - Reference LTL trace evaluator ---------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct, definition-following evaluator of LTL formulas on finite
/// traces viewed as infinite traces whose last state repeats forever
/// (§3.2). It is deliberately independent of the closure machinery so the
/// property tests can cross-check the labeling model checker against it.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_LTL_TRACEEVAL_H
#define NETUPD_LTL_TRACEEVAL_H

#include "ltl/Formula.h"

#include <vector>

namespace netupd {

/// A finite single-packet trace: the per-hop observable state.
using Trace = std::vector<StateInfo>;

/// Evaluates \p F on \p T at position \p Pos, treating T as the infinite
/// trace T[0..n-1], T[n-1], T[n-1], ... . \p T must be non-empty.
bool evalOnTrace(Formula F, const Trace &T, size_t Pos = 0);

} // namespace netupd

#endif // NETUPD_LTL_TRACEEVAL_H
