//===- ltl/Properties.h - Property builders from §6 ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the three property families the paper evaluates (§6):
///
///  - Reachability:     (port = s) -> F (port = d)
///  - Waypointing:      (port = s) -> ((port != d) U (way & F (port = d)))
///  - Service chaining: (port = s) -> way(W, d) with the recursive "way"
///                      definition from the paper.
///
/// Source/destination atoms are global port ids of host attachment points.
/// Waypoint atoms are arbitrary Props (usually "sw = n" so that a waypoint
/// constrains the switch regardless of arrival port).
///
/// Each builder takes an optional traffic-class guard: when several flows
/// share a network (multiple diamonds, §6), the guard "src = a & dst = b"
/// scopes the property to the flow's own packets, exactly as the paper's
/// AP language permits ("test the value of a switch, port, or packet
/// field", §3.2). Pass nullptr for single-flow properties to get the
/// paper's literal formulas.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_LTL_PROPERTIES_H
#define NETUPD_LTL_PROPERTIES_H

#include "ltl/Formula.h"
#include "net/Config.h"

#include <vector>

namespace netupd {

/// "src = c.src & dst = c.dst": scopes a property to one traffic class.
Formula classGuard(FormulaFactory &FF, const TrafficClass &Class);

/// (Guard & port = Src) -> F (port = Dst). \p Guard may be null.
Formula reachabilityProperty(FormulaFactory &FF, PortId Src, PortId Dst,
                             Formula Guard = nullptr);

/// (Guard & port = Src) ->
///   ((port != Dst) U (Way & F (port = Dst))). \p Guard may be null.
Formula waypointProperty(FormulaFactory &FF, PortId Src, Prop Way,
                         PortId Dst, Formula Guard = nullptr);

/// (Guard & port = Src) -> way(Waypoints, Dst), where
///   way([], d)      = F (port = d)
///   way(w :: W, d)  = ((AND_{w_k in W} !w_k) & port != d)
///                       U (w & way(W, d)).
/// Waypoints must be visited in order; none may be visited ahead of turn.
Formula serviceChainProperty(FormulaFactory &FF, PortId Src,
                             const std::vector<Prop> &Waypoints, PortId Dst,
                             Formula Guard = nullptr);

/// "Visit Way1 or Way2" disjunctive waypointing used by the §2
/// red-to-blue example (every packet must traverse A3 or A4):
/// (Guard & port = Src) -> (F sw=Way1 | F sw=Way2) & F (port = Dst).
Formula eitherWaypointProperty(FormulaFactory &FF, PortId Src, SwitchId Way1,
                               SwitchId Way2, PortId Dst,
                               Formula Guard = nullptr);

} // namespace netupd

#endif // NETUPD_LTL_PROPERTIES_H
