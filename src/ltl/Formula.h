//===- ltl/Formula.h - LTL formulas in negation normal form ----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed LTL formulas in negation normal form (§3.2): true, false,
/// p, !p, and, or, X (next), U (until), R (release). F and G are sugar
/// (F a = true U a, G a = false R a). Hash-consing gives pointer equality,
/// which the closure machinery (ltl/Closure.h) relies on for dense formula
/// indices.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_LTL_FORMULA_H
#define NETUPD_LTL_FORMULA_H

#include "ltl/Prop.h"

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace netupd {

/// Formula node kinds; Atom/NotAtom carry a Prop, binary kinds carry two
/// children, Next carries one.
enum class FKind : uint8_t {
  True,
  False,
  Atom,
  NotAtom,
  And,
  Or,
  Next,
  Until,
  Release
};

class FormulaFactory;

/// An immutable, interned formula node. Only FormulaFactory creates these;
/// clients pass around `Formula` (a pointer) and compare by identity.
class FormulaNode {
public:
  FKind kind() const { return K; }
  const Prop &prop() const { return P; }
  const FormulaNode *lhs() const { return L; }
  const FormulaNode *rhs() const { return R; }

  /// Dense id within the owning factory; stable for the factory's lifetime.
  unsigned id() const { return Id; }

  bool isBinary() const {
    return K == FKind::And || K == FKind::Or || K == FKind::Until ||
           K == FKind::Release;
  }
  bool isTemporal() const {
    return K == FKind::Next || K == FKind::Until || K == FKind::Release;
  }

private:
  friend class FormulaFactory;
  FormulaNode(FKind K, Prop P, const FormulaNode *L, const FormulaNode *R,
              unsigned Id)
      : K(K), P(P), L(L), R(R), Id(Id) {}

  FKind K;
  Prop P;
  const FormulaNode *L;
  const FormulaNode *R;
  unsigned Id;
};

/// A formula handle: an interned node pointer. Two formulas built in the
/// same factory are semantically identical iff the pointers are equal.
using Formula = const FormulaNode *;

/// Creates and interns formulas. All formulas used together (in one
/// closure, one checker) must come from the same factory.
class FormulaFactory {
public:
  FormulaFactory();

  Formula top() const { return TrueNode; }
  Formula bottom() const { return FalseNode; }

  Formula atom(Prop P) { return intern(FKind::Atom, P, nullptr, nullptr); }
  Formula notAtom(Prop P) {
    return intern(FKind::NotAtom, P, nullptr, nullptr);
  }

  /// Conjunction with constant folding (true&a=a, false&a=false, a&a=a).
  Formula conj(Formula A, Formula B);
  /// Disjunction with constant folding.
  Formula disj(Formula A, Formula B);

  Formula next(Formula A) { return intern(FKind::Next, Prop(), A, nullptr); }
  Formula until(Formula A, Formula B) {
    return intern(FKind::Until, Prop(), A, B);
  }
  Formula release(Formula A, Formula B) {
    return intern(FKind::Release, Prop(), A, B);
  }

  /// F a = true U a.
  Formula finally_(Formula A) { return until(top(), A); }
  /// G a = false R a.
  Formula globally(Formula A) { return release(bottom(), A); }

  /// Negation, pushed to the atoms (the NNF dual).
  Formula negate(Formula A);

  /// A -> B, i.e. negate(A) | B.
  Formula implies(Formula A, Formula B) { return disj(negate(A), B); }

  /// Conjunction over a list; returns top() for an empty list.
  Formula conjAll(const std::vector<Formula> &Fs);
  /// Disjunction over a list; returns bottom() for an empty list.
  Formula disjAll(const std::vector<Formula> &Fs);

  /// Number of distinct nodes interned so far.
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }

private:
  Formula intern(FKind K, Prop P, Formula L, Formula R);

  struct Key {
    FKind K;
    Prop P;
    Formula L;
    Formula R;
    friend bool operator==(const Key &A, const Key &B) {
      return A.K == B.K && A.P == B.P && A.L == B.L && A.R == B.R;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  std::deque<FormulaNode> Nodes;
  std::unordered_map<Key, Formula, KeyHash> Interned;
  Formula TrueNode;
  Formula FalseNode;
};

/// Renders \p F in the concrete syntax accepted by parseLtl (ltl/Parser.h),
/// recognizing the F/G sugar.
std::string printFormula(Formula F);

/// Canonical *structural* digest of \p F: equal for structurally equal
/// formulas even when built in different factories (pointer identity is
/// factory-local, so cross-run caches key on this instead). Shared
/// subterms are digested once per call.
Digest digestOf(Formula F);

} // namespace netupd

#endif // NETUPD_LTL_FORMULA_H
