//===- support/Strings.cpp - String helpers --------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Strings.h"

#include <cstdarg>
#include <cstdio>

using namespace netupd;

std::string netupd::join(const std::vector<std::string> &Parts,
                         const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::vector<std::string> netupd::split(const std::string &Text, char Sep) {
  std::vector<std::string> Out;
  size_t Begin = 0;
  for (size_t I = 0, E = Text.size(); I != E; ++I) {
    if (Text[I] != Sep)
      continue;
    Out.push_back(Text.substr(Begin, I - Begin));
    Begin = I + 1;
  }
  Out.push_back(Text.substr(Begin));
  return Out;
}

std::string netupd::trim(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin && isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string netupd::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(ArgsCopy);
  return Out;
}
