//===- support/Arena.h - Bump allocation for search hot paths --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator for the per-shard hot paths of the synthesis
/// search. The DFS allocates the same transient objects millions of times
/// (BDD nodes, undo buffers, successor lists); routing them through the
/// global allocator shows up directly as mutate/check thread-seconds once
/// several shards contend on malloc's locks. An Arena is single-threaded
/// by design — each shard owns one — so allocation is a pointer bump and
/// release is a single reset() that recycles every chunk in place.
///
/// Ownership rule (see docs/ARCHITECTURE.md "Hot path & memory"): an
/// arena may only be reset at points where nothing allocated from it is
/// live. The search resets per-query pools between checker queries and
/// keeps undo state in caller-owned recycled buffers (never in an arena
/// that resets mid-DFS), so a reset can never free a live undo record.
///
/// ChunkedVector<T> is the arena's indexable companion: vector-like
/// push_back/operator[] with storage carved from the arena in fixed
/// chunks, so growth never reallocates-and-copies and element addresses
/// are stable — the property the BDD manager needs for its node table.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_ARENA_H
#define NETUPD_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace netupd {

/// Chunked bump allocator; see file comment. Not thread-safe: one owner
/// per arena.
class Arena {
public:
  explicit Arena(size_t ChunkBytes = 1 << 16) : ChunkBytes(ChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Size bytes aligned to \p Align. Memory is uninitialized
  /// and valid until reset() or destruction; there is no per-object free.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 && "non-power-of-two");
    uintptr_t P = (Cursor + Align - 1) & ~(uintptr_t(Align) - 1);
    if (P + Size > End) {
      refill(Size, Align);
      P = (Cursor + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Cursor = P + Size;
    Allocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Constructs a T in arena memory. The destructor is never run — only
  /// use for trivially-destructible payloads or objects whose cleanup
  /// the caller performs explicitly before reset().
  template <typename T, typename... Args> T *create(Args &&...A) {
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(A)...);
  }

  /// Rewinds every chunk for reuse. O(#chunks); capacity is kept, so a
  /// steady-state search allocates from recycled memory only. Resetting
  /// while arena objects are live is a caller bug (see ownership rule).
  void reset() {
    NextChunk = 0;
    Allocated = 0;
    if (Chunks.empty()) {
      Cursor = End = 0;
      return;
    }
    Cursor = reinterpret_cast<uintptr_t>(Chunks[0].Mem.get());
    End = Cursor + Chunks[0].Bytes;
    NextChunk = 1;
  }

  /// Bytes handed out since construction or the last reset().
  size_t bytesAllocated() const { return Allocated; }
  /// Bytes of chunk capacity owned (survives reset()).
  size_t bytesReserved() const {
    size_t N = 0;
    for (const Chunk &C : Chunks)
      N += C.Bytes;
    return N;
  }
  size_t numChunks() const { return Chunks.size(); }

private:
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    size_t Bytes = 0;
  };

  void refill(size_t Size, size_t Align) {
    // Reuse a recycled chunk when one is big enough; otherwise grow.
    // Oversized requests get a dedicated chunk so ChunkBytes stays a
    // tuning knob, not a limit.
    size_t Need = Size + Align;
    while (NextChunk < Chunks.size()) {
      Chunk &C = Chunks[NextChunk++];
      if (C.Bytes >= Need) {
        Cursor = reinterpret_cast<uintptr_t>(C.Mem.get());
        End = Cursor + C.Bytes;
        return;
      }
    }
    size_t Bytes = Need > ChunkBytes ? Need : ChunkBytes;
    // lint: naked-new-ok — wrapped into unique_ptr on the same line;
    // make_unique would zero-initialize the chunk, which the arena skips.
    Chunks.push_back({std::unique_ptr<char[]>(new char[Bytes]), Bytes});
    NextChunk = Chunks.size();
    Cursor = reinterpret_cast<uintptr_t>(Chunks.back().Mem.get());
    End = Cursor + Bytes;
  }

  size_t ChunkBytes;
  std::vector<Chunk> Chunks;
  /// Index of the first recycled chunk refill() has not yet reused.
  size_t NextChunk = 0;
  uintptr_t Cursor = 0;
  uintptr_t End = 0;
  size_t Allocated = 0;
};

/// An indexable sequence whose storage comes from an Arena in fixed-size
/// chunks: push_back never moves existing elements (stable addresses,
/// no realloc copy) and clear() is O(1) — the arena keeps the memory.
/// ChunkSize must be a power of two.
template <typename T, size_t ChunkSize = 1024> class ChunkedVector {
  static_assert((ChunkSize & (ChunkSize - 1)) == 0,
                "ChunkSize must be a power of two");
  static_assert(std::is_trivially_destructible_v<T>,
                "arena-backed elements are never destroyed individually");

public:
  explicit ChunkedVector(Arena &A) : A(A) {}

  size_t size() const { return N; }
  bool empty() const { return N == 0; }

  T &operator[](size_t I) {
    assert(I < N);
    return Chunks[I / ChunkSize][I % ChunkSize];
  }
  const T &operator[](size_t I) const {
    assert(I < N);
    return Chunks[I / ChunkSize][I % ChunkSize];
  }

  void push_back(const T &V) { *slot() = V; }
  void push_back(T &&V) { *slot() = std::move(V); }

  T &back() { return (*this)[N - 1]; }

  /// Forgets every element; chunk pointers are kept so a following fill
  /// reuses the same arena memory. Only sound when the owning arena has
  /// NOT been reset since the chunks were carved (after an arena reset,
  /// drop the container too).
  void clear() { N = 0; }

private:
  T *slot() {
    if (N == Chunks.size() * ChunkSize)
      Chunks.push_back(
          static_cast<T *>(A.allocate(sizeof(T) * ChunkSize, alignof(T))));
    T *P = &Chunks[N / ChunkSize][N % ChunkSize];
    ++N;
    return P;
  }

  Arena &A;
  std::vector<T *> Chunks;
  size_t N = 0;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_ARENA_H
