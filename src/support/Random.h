//===- support/Random.h - Deterministic PRNG -------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64-based pseudo-random generator. All topology and workload
/// generation in this repository is seeded through this class so every
/// experiment is reproducible bit-for-bit across platforms (std::mt19937
/// distributions are not portable across standard libraries).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_RANDOM_H
#define NETUPD_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace netupd {

/// Deterministic, portable pseudo-random number generator (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    // Debiased modulo via rejection sampling.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBelow(I)]);
  }

  /// Derives an independent generator; used to give each experiment
  /// instance its own stream without coupling to generation order.
  Rng fork() { return Rng(next()); }

private:
  uint64_t State;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_RANDOM_H
