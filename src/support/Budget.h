//===- support/Budget.h - Deterministic logical budgets --------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Logical-cost budgets for the synthesis search. A wall clock and a
/// shared call counter make abort decisions racy: the same job with the
/// same budget can Succeed on one machine and Abort on another, which
/// poisons portfolio racing, violates the "Aborted results are never
/// cached" contract in spirit, and makes benchmark trend gates
/// untrustworthy. The fix is to account *logical* cost instead:
///
///  - A BudgetLedger carves the job's check-call budget into fixed
///    per-work-unit quotas, decided once from (budget, #units) and never
///    from timing. Work units are the depth-one prefixes of the DFS
///    (synth/OrderUpdate.cpp), each explored by exactly one shard.
///  - A BudgetAccount is one unit's purse. The shard exploring the unit
///    asks canSpend() before every check call and the checker charges
///    the account once per recheck (mc/CheckerBackend.h), so the set of
///    explored prefixes inside a unit is a pure function of the unit's
///    quota — independent of shard count, worker count, and wall time.
///
/// Boundary semantics are inclusive everywhere: a quota of N permits
/// exactly N charged calls (the N-th call is spendable; the N+1-th is
/// not). Initial bind() checks are setup cost, not search cost — they
/// are exempt from charging, both because a sharded run performs one
/// bind per shard (a layout artifact the budget must not see) and so a
/// budget of N bounds N *search steps* at every shard count.
///
/// Accounts are single-owner (one shard works one unit at a time) and
/// deliberately not thread-safe; the ledger is immutable after
/// construction and freely shared.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_BUDGET_H
#define NETUPD_SUPPORT_BUDGET_H

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace netupd {

/// One work unit's check-call purse; see the file comment. The search
/// polls canSpend() before issuing a call, the checker charges once per
/// served recheck — both on the same thread.
class BudgetAccount {
public:
  /// An unlimited account: canSpend() is always true, charges are still
  /// counted (they feed SynthStats::BudgetSpent).
  BudgetAccount() = default;

  /// An account permitting exactly \p Quota charges.
  explicit BudgetAccount(uint64_t Quota) : Limited(true), Quota(Quota) {}

  bool limited() const { return Limited; }

  /// True while one more call may be charged (inclusive budget: a quota
  /// of N permits the N-th call).
  bool canSpend() const { return !Limited || Spent < Quota; }

  /// True once a limited account has spent its whole quota.
  bool exhausted() const { return Limited && Spent >= Quota; }

  /// Records one charged call. Called by CheckerBackend::recheckAfterUpdate
  /// for the account attached via setBudget().
  void charge() { ++Spent; }

  uint64_t spent() const { return Spent; }
  uint64_t quota() const { return Quota; }

private:
  bool Limited = false;
  uint64_t Quota = 0;
  uint64_t Spent = 0;
};

/// The deterministic carve of a job's check-call budget into per-unit
/// quotas. Built once per search from the budget knobs and the number of
/// work units; immutable afterwards.
class BudgetLedger {
public:
  /// An unlimited ledger: every account is unlimited, deterministic
  /// budget mode is off.
  BudgetLedger() = default;

  /// Splits \p Total calls evenly across \p Units work units; earlier
  /// units receive the remainder (unit u gets Total/Units plus one if
  /// u < Total%Units). Every unit is floored at one call so each
  /// budgeted unit can make progress; with more units than budget the
  /// hard total is therefore max(Total, Units), not Total.
  static BudgetLedger carveTotal(uint64_t Total, size_t Units) {
    BudgetLedger L;
    L.Limited = true;
    L.Units = Units;
    L.Base = Units ? Total / Units : Total;
    L.Remainder = Units ? Total % Units : 0;
    return L;
  }

  /// Gives every one of \p Units work units the same fixed \p Quota
  /// (SynthOptions::UnitCheckCalls): the budget bounds each unit
  /// directly and the hard total is Quota * Units.
  static BudgetLedger perUnit(uint64_t Quota, size_t Units) {
    BudgetLedger L;
    L.Limited = true;
    L.Units = Units;
    L.Base = Quota;
    L.Remainder = 0;
    return L;
  }

  /// True when accounts are finite — the search's deterministic budget
  /// mode keys off this.
  bool limited() const { return Limited; }

  /// The quota unit \p Unit may spend.
  uint64_t unitQuota(size_t Unit) const {
    if (!Limited)
      return 0;
    return std::max<uint64_t>(1, Base + (Unit < Remainder ? 1 : 0));
  }

  /// Opens the account for unit \p Unit.
  BudgetAccount openAccount(size_t Unit) const {
    return Limited ? BudgetAccount(unitQuota(Unit)) : BudgetAccount();
  }

  /// The hard bound on charged calls across all units (for
  /// SynthStats::BudgetRemaining reporting).
  uint64_t totalQuota() const {
    if (!Limited)
      return 0;
    uint64_t Sum = 0;
    for (size_t U = 0; U != Units; ++U)
      Sum += unitQuota(U);
    return Sum;
  }

private:
  bool Limited = false;
  size_t Units = 0;
  uint64_t Base = 0;
  uint64_t Remainder = 0;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_BUDGET_H
