//===- support/Strings.h - String helpers ----------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-building helpers shared by the pretty printers: the LTL
/// printer, command-sequence printer, and the benchmark table writers.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_STRINGS_H
#define NETUPD_SUPPORT_STRINGS_H

#include <string>
#include <vector>

namespace netupd {

/// Joins the elements of \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Splits \p Text at every occurrence of \p Sep; keeps empty pieces.
std::vector<std::string> split(const std::string &Text, char Sep);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string &Text);

/// printf-style formatting into a std::string.
std::string format(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace netupd

#endif // NETUPD_SUPPORT_STRINGS_H
