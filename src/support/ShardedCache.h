//===- support/ShardedCache.h - Sharded digest-keyed cache -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe map from canonical Digest to an arbitrary value,
/// sharded by digest so concurrent engine workers and racing portfolio
/// members rarely contend on the same mutex. Both memoization layers
/// instantiate it: the checker-level CheckCache (mc/MemoizingChecker.h,
/// values are CheckResults) and the engine-level ResultCache
/// (engine/Engine.h, values are whole synthesis reports).
///
/// Bounded with second-chance (clock) eviction: when a shard is full, a
/// new entry evicts the first entry whose referenced bit is clear,
/// clearing bits as the clock hand passes. lookup() sets the bit, so
/// recently-served entries survive a sweep while stale ones are
/// recycled — long-running services with drifting workloads keep
/// admitting fresh results instead of freezing the cache at its first
/// fill (which is what the previous drop-new policy did). The policy
/// costs one bool per entry and O(1) amortized work per store; the hot
/// path stays one lock + one hash probe.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_SHARDEDCACHE_H
#define NETUPD_SUPPORT_SHARDEDCACHE_H

#include "support/Digest.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cassert>
#include <optional>
#include <unordered_map>
#include <vector>

namespace netupd {

/// Aggregate counters of one cache; hits/misses are counted by lookup().
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Entries displaced by the second-chance policy to admit new ones.
  uint64_t Evictions = 0;
  size_t Entries = 0;

  double hitRate() const {
    return Hits + Misses ? static_cast<double>(Hits) / (Hits + Misses)
                         : 0.0;
  }
};

/// The sharded map; see file comment. \p V must be copyable (lookup
/// returns a copy so no reference escapes the shard lock).
template <typename V> class ShardedDigestCache {
public:
  explicit ShardedDigestCache(size_t MaxEntries = 1 << 20)
      : ShardCap(MaxEntries / NumShards + 1) {}

  /// Returns the cached value for \p Key, counting a hit or miss. A hit
  /// marks the entry referenced, granting it a second chance at the
  /// next eviction sweep.
  std::optional<V> lookup(const Digest &Key) {
    Shard &S = shardFor(Key);
    MutexLock Lock(S.M);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      // relaxed: statistics counter; cross-shard totals may be skewed
      // mid-flight, which stats() readers accept.
      Misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    It->second.Referenced = true;
    Hits.fetch_add(1, std::memory_order_relaxed); // relaxed: statistics
    return It->second.Value;
  }

  /// Stores \p Value under \p Key, evicting one unreferenced entry when
  /// the shard is full; a no-op when the key is already present (first
  /// result wins — results for one key are interchangeable by
  /// construction).
  void store(const Digest &Key, V Value) {
    Shard &S = shardFor(Key);
    MutexLock Lock(S.M);
    // Insert first (one probe serves both the duplicate check and the
    // insertion).
    if (!S.Map.emplace(Key, Entry{std::move(Value), true}).second)
      return;
    admitNewKey(S, Key);
  }

  /// Creates-or-mutates the value for \p Key in place: \p F receives a
  /// reference to the value (default-constructed when the key is new)
  /// and runs under the shard lock, so it must be short and must not
  /// touch the cache reentrantly. New keys follow the same
  /// second-chance bookkeeping as store(); existing keys are marked
  /// referenced. Requires V to be default-constructible. The
  /// read-modify-write clients (the cross-job ConstraintStore) use this
  /// where store()'s first-wins semantics would discard later
  /// contributions.
  template <typename Fn> void update(const Digest &Key, Fn &&F) {
    Shard &S = shardFor(Key);
    MutexLock Lock(S.M);
    auto [It, Inserted] = S.Map.try_emplace(Key);
    It->second.Referenced = true;
    F(It->second.Value);
    if (Inserted)
      admitNewKey(S, Key);
  }

  CacheStats stats() const {
    CacheStats Out;
    // relaxed: statistics sample; counters may race in-flight operations.
    Out.Hits = Hits.load(std::memory_order_relaxed);
    Out.Misses = Misses.load(std::memory_order_relaxed);
    Out.Evictions = Evictions.load(std::memory_order_relaxed);
    for (const Shard &S : Shards) {
      MutexLock Lock(S.M);
      Out.Entries += S.Map.size();
    }
    return Out;
  }

  void clear() {
    for (Shard &S : Shards) {
      MutexLock Lock(S.M);
      S.Map.clear();
      S.Ring.clear();
      S.Hand = 0;
    }
    // relaxed: statistics reset; racing counts land on either side.
    Hits.store(0, std::memory_order_relaxed);
    Misses.store(0, std::memory_order_relaxed);
    Evictions.store(0, std::memory_order_relaxed);
  }

private:
  static constexpr unsigned NumShards = 16;
  /// A cached value plus its clock bit. New and re-looked-up entries are
  /// referenced; the eviction hand clears bits as it sweeps.
  struct Entry {
    V Value;
    bool Referenced = true;
  };
  struct Shard {
    mutable Mutex M;
    std::unordered_map<Digest, Entry, DigestHash> Map NETUPD_GUARDED_BY(M);
    /// Insertion ring for the clock hand; always lists exactly the
    /// shard's keys (an evicted key's slot is reused by its successor).
    std::vector<Digest> Ring NETUPD_GUARDED_BY(M);
    size_t Hand NETUPD_GUARDED_BY(M) = 0;
  };
  Shard &shardFor(const Digest &Key) {
    return Shards[DigestHash()(Key) % NumShards];
  }

  /// Ring/eviction bookkeeping for a key just inserted into \p S's map
  /// (shared by store() and update()). The new key is not in the ring
  /// yet, so the sweep cannot displace it.
  void admitNewKey(Shard &S, const Digest &Key) NETUPD_REQUIRES(S.M) {
    if (S.Map.size() > ShardCap) {
      size_t Slot = evictOne(S);
      S.Ring[Slot] = Key;
    } else {
      S.Ring.push_back(Key);
    }
  }

  /// Second-chance sweep: clears referenced bits until an unreferenced
  /// entry is found, erases it, and returns its ring slot for reuse.
  /// Terminates within two passes — the first pass clears every bit in
  /// the worst case, so the second pass's first probe must evict.
  size_t evictOne(Shard &S) NETUPD_REQUIRES(S.M) {
    for (;;) {
      if (S.Hand >= S.Ring.size())
        S.Hand = 0;
      auto It = S.Map.find(S.Ring[S.Hand]);
      assert(It != S.Map.end() && "ring and map out of sync");
      if (It->second.Referenced) {
        It->second.Referenced = false;
        ++S.Hand;
        continue;
      }
      S.Map.erase(It);
      Evictions.fetch_add(1, std::memory_order_relaxed); // relaxed: stats
      size_t Slot = S.Hand;
      ++S.Hand; // Advance past the victim, as the clock algorithm does.
      return Slot;
    }
  }

  Shard Shards[NumShards];
  const size_t ShardCap;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Evictions{0};
};

} // namespace netupd

#endif // NETUPD_SUPPORT_SHARDEDCACHE_H
