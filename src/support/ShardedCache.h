//===- support/ShardedCache.h - Sharded digest-keyed cache -----*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe map from canonical Digest to an arbitrary value,
/// sharded by digest so concurrent engine workers and racing portfolio
/// members rarely contend on the same mutex. Both memoization layers
/// instantiate it: the checker-level CheckCache (mc/MemoizingChecker.h,
/// values are CheckResults) and the engine-level ResultCache
/// (engine/Engine.h, values are whole synthesis reports).
///
/// Bounded but eviction-free: once a shard is full, new results are
/// dropped. Repeated workloads saturate the useful entries early, and
/// dropping keeps the hot path to one lock + one hash probe.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_SHARDEDCACHE_H
#define NETUPD_SUPPORT_SHARDEDCACHE_H

#include "support/Digest.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace netupd {

/// Aggregate counters of one cache; hits/misses are counted by lookup().
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  size_t Entries = 0;

  double hitRate() const {
    return Hits + Misses ? static_cast<double>(Hits) / (Hits + Misses)
                         : 0.0;
  }
};

/// The sharded map; see file comment. \p V must be copyable (lookup
/// returns a copy so no reference escapes the shard lock).
template <typename V> class ShardedDigestCache {
public:
  explicit ShardedDigestCache(size_t MaxEntries = 1 << 20)
      : ShardCap(MaxEntries / NumShards + 1) {}

  /// Returns the cached value for \p Key, counting a hit or miss.
  std::optional<V> lookup(const Digest &Key) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Hits.fetch_add(1, std::memory_order_relaxed);
    return It->second;
  }

  /// Stores \p Value under \p Key; a no-op when the shard is full or the
  /// key is already present (first result wins — results for one key are
  /// interchangeable by construction).
  void store(const Digest &Key, V Value) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.Map.size() >= ShardCap)
      return;
    S.Map.emplace(Key, std::move(Value));
  }

  CacheStats stats() const {
    CacheStats Out;
    Out.Hits = Hits.load(std::memory_order_relaxed);
    Out.Misses = Misses.load(std::memory_order_relaxed);
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      Out.Entries += S.Map.size();
    }
    return Out;
  }

  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      S.Map.clear();
    }
    Hits.store(0, std::memory_order_relaxed);
    Misses.store(0, std::memory_order_relaxed);
  }

private:
  static constexpr unsigned NumShards = 16;
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<Digest, V, DigestHash> Map;
  };
  Shard &shardFor(const Digest &Key) {
    return Shards[DigestHash()(Key) % NumShards];
  }

  Shard Shards[NumShards];
  const size_t ShardCap;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

} // namespace netupd

#endif // NETUPD_SUPPORT_SHARDEDCACHE_H
