//===- support/ConcurrentSet.h - Pruning containers ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pruning containers behind the synthesis search
/// (synth/OrderUpdate.cpp): a striped open-addressed hash set for the
/// visited (V) configurations, a watch-list–indexed wrong-set (W) for
/// counterexample constraints, and a flat sequential set for unit-local
/// V state. All hold *monotone* state — entries are only ever added,
/// never modified or removed during a search — which is what makes
/// sharing them across DFS shards sound: a V claim or a W constraint
/// mined on one shard is a fact about the problem instance, valid for
/// every other shard the moment it becomes visible.
///
/// ConcurrentSet::insert doubles as the claim operation of the sharded
/// search: exactly one caller receives true per value, so two shards
/// reaching the same intermediate configuration agree on which of them
/// explores the subtree below it (the other prunes).
///
/// WatchedWrongSet replaces a scan-the-whole-list W set. Each (Mask,
/// Value) constraint is filed under the first set bit of Value; probing
/// a configuration walks only the buckets of its set bits, so seeded
/// constraint stores are consulted O(relevant) instead of O(all) — and
/// the probe takes no lock at all (buckets are lock-free push lists).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_CONCURRENTSET_H
#define NETUPD_SUPPORT_CONCURRENTSET_H

#include "obs/Metrics.h"
#include "support/Bitset.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace netupd {

/// A thread-safe grow-only hash set: 64 lock stripes, each guarding an
/// open-addressed slot table. One hash computation and one mutex
/// acquisition per operation; linear probing touches a handful of
/// contiguous slots instead of chasing unordered_set buckets, and
/// insert-only semantics mean the table never tombstones.
///
/// Lock acquisitions on the probe/claim path feed the
/// synth.vset_lock_ns wait histogram when the obs detail tier is on —
/// and cost one relaxed load when it is off.
template <typename T, typename Hash = std::hash<T>> class ConcurrentSet {
public:
  /// Inserts \p V; returns true iff it was not already present. The
  /// true-return is unique per value across all threads (the claim).
  bool insert(const T &V) {
    size_t H = Hash()(V);
    Stripe &S = stripeFor(H);
    obs::timedLock(S.M, lockWait());
    MutexLock Lock(S.M, std::adopt_lock);
    return S.insert(H, V);
  }

  /// True if \p V was inserted before this call. A false may be stale
  /// (another thread can insert concurrently); callers treat contains()
  /// as a cheap pre-filter and insert() as the authoritative claim.
  bool contains(const T &V) const {
    size_t H = Hash()(V);
    const Stripe &S = stripeFor(H);
    obs::timedLock(S.M, lockWait());
    MutexLock Lock(S.M, std::adopt_lock);
    return S.find(H, V) != SIZE_MAX;
  }

  size_t size() const {
    size_t N = 0;
    for (const Stripe &S : Stripes) {
      MutexLock Lock(S.M);
      N += S.Count;
    }
    return N;
  }

  void clear() {
    for (Stripe &S : Stripes) {
      MutexLock Lock(S.M);
      S.Slots.clear();
      S.Count = 0;
    }
  }

private:
  static constexpr unsigned NumStripes = 64;

  struct Slot {
    size_t H = 0;
    bool Used = false;
    T Value{};
  };

  struct Stripe {
    mutable Mutex M;
    std::vector<Slot> Slots NETUPD_GUARDED_BY(M);
    size_t Count NETUPD_GUARDED_BY(M) = 0;

    /// Index of \p V in Slots, or SIZE_MAX. Caller holds M.
    size_t find(size_t H, const T &V) const NETUPD_REQUIRES(M) {
      if (Slots.empty())
        return SIZE_MAX;
      size_t Mask = Slots.size() - 1;
      for (size_t I = H & Mask;; I = (I + 1) & Mask) {
        const Slot &S = Slots[I];
        if (!S.Used)
          return SIZE_MAX;
        if (S.H == H && S.Value == V)
          return I;
      }
    }

    bool insert(size_t H, const T &V) NETUPD_REQUIRES(M) {
      if (Slots.size() < 16 || Count * 10 >= Slots.size() * 7)
        grow();
      size_t Mask = Slots.size() - 1;
      for (size_t I = H & Mask;; I = (I + 1) & Mask) {
        Slot &S = Slots[I];
        if (!S.Used) {
          S.H = H;
          S.Used = true;
          S.Value = V;
          ++Count;
          return true;
        }
        if (S.H == H && S.Value == V)
          return false;
      }
    }

    void grow() NETUPD_REQUIRES(M) {
      size_t NewSize = Slots.empty() ? 16 : Slots.size() * 2;
      std::vector<Slot> Old = std::move(Slots);
      Slots.assign(NewSize, Slot{});
      size_t Mask = NewSize - 1;
      for (Slot &S : Old) {
        if (!S.Used)
          continue;
        size_t I = S.H & Mask;
        while (Slots[I].Used)
          I = (I + 1) & Mask;
        Slots[I] = std::move(S);
      }
    }
  };

  Stripe &stripeFor(size_t H) { return Stripes[H % NumStripes]; }
  const Stripe &stripeFor(size_t H) const { return Stripes[H % NumStripes]; }

  static obs::Histogram &lockWait() {
    static obs::Histogram &H =
        obs::MetricsRegistry::instance().histogram("synth.vset_lock_ns");
    return H;
  }

  Stripe Stripes[NumStripes];
};

/// The wrong-set: counterexample constraints (Mask, Value) meaning "any
/// configuration C with (C & Mask) == Value is refuted". Probes are
/// lock-free and watch-list–indexed; appends are lock-free CAS pushes.
///
/// Indexing invariant: a constraint can only match C if Value ⊆ C (a
/// set bit of Value that C lacks fails the equality). So each
/// constraint is filed under the *first set bit* of its Value, and
/// matches(C) walks only the buckets of C's set bits — every matching
/// constraint's watch bit is set in C, so the probe is complete.
/// Constraints with an all-zero Value (which match everything with
/// Bits∩Mask=∅; the search's learner never emits them but seeds could)
/// go to an always-scanned fallback list.
class WatchedWrongSet {
public:
  WatchedWrongSet() = default;
  ~WatchedWrongSet() { destroy(); }

  WatchedWrongSet(const WatchedWrongSet &) = delete;
  WatchedWrongSet &operator=(const WatchedWrongSet &) = delete;

  /// Drops all constraints and re-shapes for \p NumBits-wide
  /// configurations. Not thread-safe; call before the search fans out.
  void reset(size_t NumBits) {
    destroy();
    Buckets = std::vector<std::atomic<Node *>>(NumBits);
    // relaxed: reset is documented single-threaded; no concurrent readers.
    for (auto &B : Buckets)
      B.store(nullptr, std::memory_order_relaxed);
    Fallback.store(nullptr, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
  }

  /// Adds a constraint. Thread-safe, lock-free, monotone.
  void add(Bitset Mask, Bitset Value) {
    // lint: naked-new-ok — lock-free CAS push list; nodes are owned by the
    // intrusive bucket chains and reclaimed in destroy().
    Node *N = new Node{std::move(Mask), std::move(Value), nullptr};
    size_t B = N->Value.firstSetBit();
    std::atomic<Node *> &Head =
        B < Buckets.size() ? Buckets[B] : Fallback;
    // relaxed: the CAS loop re-reads Next on failure; only the successful
    // release publish orders the node's payload for acquire readers.
    N->Next = Head.load(std::memory_order_relaxed);
    while (!Head.compare_exchange_weak(N->Next, N, std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
    // relaxed: Count is an advisory size for reserve(); no ordering needed.
    Count.fetch_add(1, std::memory_order_relaxed);
  }

  /// True if some constraint refutes \p Bits. Lock-free; probes only
  /// the watch buckets of Bits's set bits (plus the fallback list).
  bool matches(const Bitset &Bits) const {
    for (size_t W = 0, NW = Bits.numWords(); W != NW; ++W) {
      uint64_t Word = Bits.word(W);
      while (Word != 0) {
        size_t B = W * 64 + static_cast<size_t>(__builtin_ctzll(Word));
        Word &= Word - 1;
        if (B < Buckets.size() && listMatches(Buckets[B], Bits))
          return true;
      }
    }
    return listMatches(Fallback, Bits);
  }

  // relaxed: advisory count; callers only use it to pre-size buffers.
  size_t size() const { return Count.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// A copy of the current constraints; the cross-job learning export
  /// uses it after every appender has joined, but a mid-flight snapshot
  /// is safe too (it sees some monotone prefix of the adds).
  std::vector<std::pair<Bitset, Bitset>> snapshot() const {
    std::vector<std::pair<Bitset, Bitset>> Out;
    Out.reserve(size());
    auto Walk = [&](const std::atomic<Node *> &Head) {
      for (Node *N = Head.load(std::memory_order_acquire); N; N = N->Next)
        Out.emplace_back(N->Mask, N->Value);
    };
    for (const auto &B : Buckets)
      Walk(B);
    Walk(Fallback);
    return Out;
  }

private:
  struct Node {
    Bitset Mask;
    Bitset Value;
    Node *Next;
  };

  static bool listMatches(const std::atomic<Node *> &Head,
                          const Bitset &Bits) {
    for (const Node *N = Head.load(std::memory_order_acquire); N;
         N = N->Next) {
      // (Bits & Mask) == Value, word-wise to avoid a temporary.
      bool Match = true;
      for (size_t W = 0, NW = Bits.numWords(); W != NW; ++W) {
        if ((Bits.word(W) & N->Mask.word(W)) != N->Value.word(W)) {
          Match = false;
          break;
        }
      }
      if (Match)
        return true;
    }
    return false;
  }

  void destroy() {
    // relaxed: destruction is single-threaded by contract (all appenders
    // and probers have joined before ~WatchedWrongSet / reset()).
    auto Free = [](std::atomic<Node *> &Head) {
      Node *N = Head.load(std::memory_order_relaxed);
      while (N) {
        Node *Next = N->Next;
        delete N;
        N = Next;
      }
      Head.store(nullptr, std::memory_order_relaxed); // relaxed: same contract
    };
    for (auto &B : Buckets)
      Free(B);
    Free(Fallback);
  }

  std::vector<std::atomic<Node *>> Buckets;
  std::atomic<Node *> Fallback{nullptr};
  std::atomic<size_t> Count{0};
};

/// A single-threaded insert-only set of Bitsets, open-addressed so the
/// per-probe cost is a hash plus a few contiguous slot compares and the
/// per-insert cost is a buffer-reusing Bitset assignment — no node
/// allocations. Used for the sequential search's V set and the
/// budget-mode unit-local V set, both of which clear() per unit and
/// refill to a similar size (the slot buffers are kept across clears).
class FlatBitsetSet {
public:
  /// Inserts \p B; returns true iff it was not already present.
  bool insert(const Bitset &B) {
    size_t H = BitsetHash()(B);
    if (Slots.size() < 16 || Count * 10 >= Slots.size() * 7)
      grow();
    size_t Mask = Slots.size() - 1;
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (!S.Used) {
        S.H = H;
        S.Used = true;
        S.Value = B;
        ++Count;
        return true;
      }
      if (S.H == H && S.Value == B)
        return false;
    }
  }

  bool contains(const Bitset &B) const {
    if (Slots.empty())
      return false;
    size_t H = BitsetHash()(B);
    size_t Mask = Slots.size() - 1;
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      const Slot &S = Slots[I];
      if (!S.Used)
        return false;
      if (S.H == H && S.Value == B)
        return true;
    }
  }

  size_t size() const { return Count; }

  /// Removes \p B if present; returns true iff it was removed. Uses
  /// backward-shift deletion (no tombstones), so probe chains stay
  /// compact and contains()/insert() need no deleted-slot logic. The
  /// restart machinery in synth/OrderUpdate.cpp un-claims abandoned
  /// path configurations through this; plain searches never erase.
  bool erase(const Bitset &B) {
    if (Slots.empty())
      return false;
    size_t H = BitsetHash()(B);
    size_t Mask = Slots.size() - 1;
    size_t I = H & Mask;
    for (;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (!S.Used)
        return false;
      if (S.H == H && S.Value == B)
        break;
    }
    // Backward-shift: walk the probe chain after the hole; any entry
    // whose home position does not lie strictly after the hole
    // (cyclically) is shifted back into it, moving the hole forward.
    size_t Hole = I;
    for (size_t J = (Hole + 1) & Mask;; J = (J + 1) & Mask) {
      Slot &S = Slots[J];
      if (!S.Used)
        break;
      size_t Home = S.H & Mask;
      // Entry at J may move into Hole iff Home is not in the cyclic
      // interval (Hole, J] — i.e. the hole sits on its probe path.
      size_t DistHole = (J - Hole) & Mask;
      size_t DistHome = (J - Home) & Mask;
      if (DistHome >= DistHole) {
        Slots[Hole].H = S.H;
        Slots[Hole].Used = true;
        Slots[Hole].Value = std::move(S.Value);
        Hole = J;
      }
    }
    Slots[Hole].Used = false;
    --Count;
    return true;
  }

  /// Empties the set, keeping slot capacity and the Bitset heap buffers
  /// inside the slots for reuse by the next fill.
  void clear() {
    for (Slot &S : Slots)
      S.Used = false;
    Count = 0;
  }

private:
  struct Slot {
    size_t H = 0;
    bool Used = false;
    Bitset Value;
  };

  void grow() {
    size_t NewSize = Slots.empty() ? 16 : Slots.size() * 2;
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewSize, Slot{});
    size_t Mask = NewSize - 1;
    for (Slot &S : Old) {
      if (!S.Used)
        continue;
      size_t I = S.H & Mask;
      while (Slots[I].Used)
        I = (I + 1) & Mask;
      Slots[I] = std::move(S);
    }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

/// An append-only list optimized for concurrent whole-list scans and
/// comparatively rare appends. The synthesis search's W set moved to
/// WatchedWrongSet; this stays for callers whose predicate is not a
/// mask/value match (and for its contention test coverage).
template <typename T> class SharedAppendList {
public:
  void append(T V) {
    obs::timedLock(M, lockWait());
    SharedMutexLock Lock(M, std::adopt_lock);
    Items.push_back(std::move(V));
  }

  /// True if \p Pred holds for any element; scans under a shared lock.
  template <typename Fn> bool any(Fn &&Pred) const {
    obs::timedLockShared(M, lockWait());
    SharedReaderLock Lock(M, std::adopt_lock);
    for (const T &V : Items)
      if (Pred(V))
        return true;
    return false;
  }

  size_t size() const {
    SharedReaderLock Lock(M);
    return Items.size();
  }

  /// A copy of the current contents; safe mid-flight (sees a monotone
  /// prefix of the appends).
  std::vector<T> snapshot() const {
    SharedReaderLock Lock(M);
    return Items;
  }

private:
  static obs::Histogram &lockWait() {
    static obs::Histogram &H =
        obs::MetricsRegistry::instance().histogram("synth.wset_lock_ns");
    return H;
  }

  mutable SharedMutex M;
  std::vector<T> Items NETUPD_GUARDED_BY(M);
};

} // namespace netupd

#endif // NETUPD_SUPPORT_CONCURRENTSET_H
