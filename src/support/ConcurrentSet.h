//===- support/ConcurrentSet.h - Concurrent pruning containers -*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two concurrent containers behind the sharded synthesis search
/// (synth/OrderUpdate.cpp): a sharded hash set for the visited (V)
/// configurations and an append-only list for the wrong-set (W) prune
/// entries. Both hold *monotone* state — entries are only ever added,
/// never modified or removed during a search — which is what makes
/// sharing them across DFS shards sound: a V claim or a W constraint
/// mined on one shard is a fact about the problem instance, valid for
/// every other shard the moment it becomes visible.
///
/// ConcurrentSet::insert doubles as the claim operation of the sharded
/// search: exactly one caller receives true per value, so two shards
/// reaching the same intermediate configuration agree on which of them
/// explores the subtree below it (the other prunes).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_CONCURRENTSET_H
#define NETUPD_SUPPORT_CONCURRENTSET_H

#include "obs/Metrics.h"

#include <cstddef>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

namespace netupd {

/// A thread-safe hash set, sharded by hash so concurrent DFS shards
/// rarely contend on the same mutex. Grow-only during a search; see
/// file comment.
///
/// Lock acquisitions on the probe/claim path feed the
/// synth.vset_lock_ns wait histogram when the obs detail tier is on
/// (this container is the sharded search's V set, one of the suspected
/// contention points behind the flat shard scaling) — and cost one
/// relaxed load when it is off.
template <typename T, typename Hash = std::hash<T>> class ConcurrentSet {
public:
  /// Inserts \p V; returns true iff it was not already present. The
  /// true-return is unique per value across all threads (the claim).
  bool insert(const T &V) {
    Shard &S = shardFor(V);
    obs::timedLock(S.M, lockWait());
    std::lock_guard<std::mutex> Lock(S.M, std::adopt_lock);
    return S.Set.insert(V).second;
  }

  /// True if \p V was inserted before this call. A false may be stale
  /// (another thread can insert concurrently); callers treat contains()
  /// as a cheap pre-filter and insert() as the authoritative claim.
  bool contains(const T &V) const {
    const Shard &S = shardFor(V);
    obs::timedLock(S.M, lockWait());
    std::lock_guard<std::mutex> Lock(S.M, std::adopt_lock);
    return S.Set.count(V) != 0;
  }

  size_t size() const {
    size_t N = 0;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      N += S.Set.size();
    }
    return N;
  }

  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      S.Set.clear();
    }
  }

private:
  static constexpr unsigned NumShards = 16;
  struct Shard {
    mutable std::mutex M;
    std::unordered_set<T, Hash> Set;
  };

  Shard &shardFor(const T &V) { return Shards[Hash()(V) % NumShards]; }
  const Shard &shardFor(const T &V) const {
    return Shards[Hash()(V) % NumShards];
  }

  static obs::Histogram &lockWait() {
    static obs::Histogram &H =
        obs::MetricsRegistry::instance().histogram("synth.vset_lock_ns");
    return H;
  }

  Shard Shards[NumShards];
};

/// An append-only list optimized for many concurrent whole-list scans
/// and comparatively rare appends — the access pattern of the W set,
/// which every DFS node consults and only counterexamples extend.
/// Readers share the lock; appends take it exclusively.
template <typename T> class SharedAppendList {
public:
  void append(T V) {
    obs::timedLock(M, lockWait());
    std::unique_lock<std::shared_mutex> Lock(M, std::adopt_lock);
    Items.push_back(std::move(V));
  }

  /// True if \p Pred holds for any element; scans under a shared lock.
  /// Reader-side waits (a writer holding the W lock stalls every DFS
  /// probe) feed synth.wset_lock_ns when the obs detail tier is on.
  template <typename Fn> bool any(Fn &&Pred) const {
    obs::timedLockShared(M, lockWait());
    std::shared_lock<std::shared_mutex> Lock(M, std::adopt_lock);
    for (const T &V : Items)
      if (Pred(V))
        return true;
    return false;
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return Items.size();
  }

  /// A copy of the current contents; the cross-job learning export uses
  /// it after every appender has joined, but a mid-flight snapshot is
  /// safe too (it sees some monotone prefix of the appends).
  std::vector<T> snapshot() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return Items;
  }

private:
  static obs::Histogram &lockWait() {
    static obs::Histogram &H =
        obs::MetricsRegistry::instance().histogram("synth.wset_lock_ns");
    return H;
  }

  mutable std::shared_mutex M;
  std::vector<T> Items;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_CONCURRENTSET_H
