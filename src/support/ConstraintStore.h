//===- support/ConstraintStore.h - Cross-job constraint reuse --*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-lifetime store of wrong-set constraints mined by synthesis
/// runs, keyed by (scenario digest, rule granularity). The search's W
/// set (synth/OrderUpdate.cpp) records partial assignments — (mask,
/// value) pairs over operation indices — each derived from a genuine
/// counterexample trace: every configuration agreeing with the pair
/// reproduces the violation. That makes an entry a fact about the
/// *problem instance*, not about the run that found it; any later run
/// of a digest-identical scenario at the same granularity (which builds
/// the identical operation universe, deterministically) may prune on it
/// and seed its SAT layer with it without issuing a single checker
/// query. Portfolio probes, autotuning sweeps, and repeated batches
/// re-derive exactly these refutations today; the store is what lets
/// the engine get faster the longer it runs.
///
/// Safety: only entries that passed the search's update-independence
/// guard reach the W set (an entry with an empty value part would match
/// configurations the verified initial state dominates and is dropped
/// at learn time; publish() re-checks defensively). Seeding therefore
/// never changes a verdict or a returned sequence — a seeded prune
/// skips a check that could only have failed, and an imported SAT
/// constraint is satisfied by every genuinely correct order (see
/// docs/ARCHITECTURE.md, "Cross-job learning", for the full argument).
/// Deterministic budget mode never imports: its contract makes the
/// outcome a pure function of (job, budget), which process history must
/// not influence.
///
/// Built on ShardedDigestCache: keys are digests, values are immutable
/// snapshots swapped atomically under the shard lock, so readers hold
/// no lock while scanning entries and TSan sees only the handoff.
/// Bounded in both dimensions (keys by the cache's second-chance
/// eviction, entries per key by a hard cap) — it is an accelerator, and
/// dropping learning is always sound.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_CONSTRAINTSTORE_H
#define NETUPD_SUPPORT_CONSTRAINTSTORE_H

#include "support/Bitset.h"
#include "support/Digest.h"
#include "support/ShardedCache.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

namespace netupd {

/// The cross-job constraint store; see file comment.
class ConstraintStore {
public:
  /// One wrong-set entry over the operation universe of a (scenario,
  /// granularity) pair: (mask, value) as learnCex derives them — any
  /// configuration C with C & mask == value violates the property.
  using Entry = std::pair<Bitset, Bitset>;

  /// \p MaxKeys bounds distinct (scenario, granularity) keys (evicted
  /// second-chance like every ShardedDigestCache); \p MaxEntriesPerKey
  /// hard-caps one key's entry list — beyond it, later constraints are
  /// dropped, which only weakens the (optional) pruning.
  explicit ConstraintStore(size_t MaxKeys = 1 << 16,
                           size_t MaxEntriesPerKey = 4096)
      : Map(MaxKeys), EntryCap(std::max<size_t>(1, MaxEntriesPerKey)) {}

  /// The canonical store key. Granularity is part of the key because it
  /// selects the operation universe the bitsets index: switch- and
  /// rule-granularity runs of the same scenario number their operations
  /// differently and must never share entries.
  static Digest keyFor(const Digest &ScenarioDigest, bool RuleGranularity) {
    DigestBuilder B;
    B.addDigest(ScenarioDigest);
    B.addBool(RuleGranularity);
    return B.finish();
  }

  /// True iff \p A refutes at least every configuration \p B refutes:
  /// A's mask is a subset of B's and B's value agrees with A's on A's
  /// mask. Then any C with C & B.mask == B.value also has
  /// C & A.mask == A.value, so B is redundant. Strict-subset masks are
  /// how clause minimization pays off across jobs: the minimized entry
  /// evicts every fat ancestor it was carved from.
  static bool subsumes(const Entry &A, const Entry &B) {
    return B.first.contains(A.first) && (B.second & A.first) == A.second;
  }

  /// Publishes the entries a retiring run learned, deduplicating against
  /// what the key already holds and applying bidirectional subsumption:
  /// an incoming entry dominated by a stored one (subset mask, agreeing
  /// value) is dropped, and a stored entry dominated by an incoming one
  /// is evicted — the store keeps only the frontier of strongest
  /// refutations. \p NumOps is the run's operation count and guards
  /// indexing: entries of a different universe (a digest collision, or a
  /// malformed caller) are rejected wholesale. Returns the number of
  /// entries newly admitted; \p SubsumedDropped (optional) accumulates
  /// entries discarded in either direction (SynthStats::SubsumedDropped).
  size_t publish(const Digest &Key, size_t NumOps,
                 const std::vector<Entry> &Learned,
                 size_t *SubsumedDropped = nullptr) {
    if (NumOps == 0)
      return 0;
    // Validate outside any lock. The defensive re-checks of the
    // learn-time invariants: correctly sized masks, value within mask,
    // and a non-empty value part (the soundness guard — an empty value
    // would match configurations the verified initial configuration
    // dominates). Bailing here also keeps a fully-rejected publish from
    // creating an empty key (which could evict a populated one).
    std::vector<const Entry *> Valid;
    Valid.reserve(Learned.size());
    for (const Entry &E : Learned)
      if (E.first.size() == NumOps && E.second.size() == NumOps &&
          !E.second.none() && E.first.contains(E.second))
        Valid.push_back(&E);
    if (Valid.empty())
      return 0;

    size_t Admitted = 0, Dropped = 0;
    Map.update(Key, [&](std::shared_ptr<const Snapshot> &Cur) {
      if (Cur && Cur->NumOps != NumOps)
        return; // Universe mismatch: keep the established one.
      std::vector<Entry> Kept =
          Cur ? Cur->Entries : std::vector<Entry>{};
      std::unordered_set<Entry, EntryHash> Seen(Kept.begin(), Kept.end());
      std::vector<Entry> Added;
      bool Evicted = false;
      for (const Entry *PE : Valid) {
        const Entry &E = *PE;
        if (!Seen.insert(E).second)
          continue; // Exact duplicate.
        bool Dominated = false;
        for (const Entry &K : Kept)
          if (subsumes(K, E)) {
            Dominated = true;
            break;
          }
        if (!Dominated)
          for (const Entry &A : Added)
            if (subsumes(A, E)) {
              Dominated = true;
              break;
            }
        if (Dominated) {
          ++Dropped;
          continue;
        }
        // Reverse direction: the incoming entry evicts everything it
        // dominates (this is what frees space at the cap).
        auto Evict = [&](std::vector<Entry> &L) {
          size_t W = 0;
          for (size_t I = 0; I != L.size(); ++I) {
            if (subsumes(E, L[I])) {
              ++Dropped;
              Evicted = true;
              continue;
            }
            if (W != I)
              L[W] = std::move(L[I]);
            ++W;
          }
          L.resize(W);
        };
        Evict(Kept);
        Evict(Added);
        if (Kept.size() + Added.size() >= EntryCap)
          continue; // Full even after eviction.
        Added.push_back(E);
      }
      if (Added.empty() && !Evicted)
        return;
      auto Next = std::make_shared<Snapshot>();
      Next->NumOps = NumOps;
      Next->Impossible = Cur && Cur->Impossible;
      Next->Entries = std::move(Kept);
      Next->Entries.reserve(Next->Entries.size() + Added.size());
      for (Entry &E : Added)
        Next->Entries.push_back(std::move(E));
      Admitted = Added.size();
      Cur = std::move(Next);
    });
    if (SubsumedDropped)
      *SubsumedDropped += Dropped;
    return Admitted;
  }

  /// Records an up-front UNSAT proof: the (scenario, granularity)
  /// instance behind \p Key was proven Impossible (by exhaustion or SAT
  /// proof in an unbudgeted, untimed run — a ground fact about the
  /// instance). The engine's portfolio sheds members whose key holds
  /// this flag instead of racing them (engine/Engine.cpp).
  void markImpossible(const Digest &Key, size_t NumOps) {
    if (NumOps == 0)
      return;
    Map.update(Key, [&](std::shared_ptr<const Snapshot> &Cur) {
      if (Cur && (Cur->NumOps != NumOps || Cur->Impossible))
        return;
      auto Next = std::make_shared<Snapshot>();
      Next->NumOps = NumOps;
      Next->Impossible = true;
      if (Cur)
        Next->Entries = Cur->Entries;
      Cur = std::move(Next);
    });
  }

  /// True iff markImpossible() has been recorded for \p Key.
  bool knownImpossible(const Digest &Key) {
    std::optional<std::shared_ptr<const Snapshot>> Hit = Map.lookup(Key);
    return Hit && *Hit && (*Hit)->Impossible;
  }

  /// A snapshot of the entries published for \p Key, or empty when the
  /// key is unknown or was recorded for a different operation universe.
  std::vector<Entry> fetch(const Digest &Key, size_t NumOps) {
    std::optional<std::shared_ptr<const Snapshot>> Hit = Map.lookup(Key);
    if (!Hit || !*Hit || (*Hit)->NumOps != NumOps)
      return {};
    return (*Hit)->Entries;
  }

  /// Underlying cache accounting (fetch hits/misses, key count).
  CacheStats stats() const { return Map.stats(); }

  void clear() { Map.clear(); }

  /// A process-wide instance for pooling learning across engines; the
  /// engine default is an engine-private store (EngineOptions::Learning).
  static const std::shared_ptr<ConstraintStore> &processStore() {
    static const std::shared_ptr<ConstraintStore> Store =
        std::make_shared<ConstraintStore>();
    return Store;
  }

private:
  /// One key's immutable entry list; publish() swaps whole snapshots so
  /// fetched copies never observe a mutation.
  struct Snapshot {
    size_t NumOps = 0;
    /// Up-front UNSAT proof for this key (see markImpossible()).
    bool Impossible = false;
    std::vector<Entry> Entries;
  };

  struct EntryHash {
    size_t operator()(const Entry &E) const {
      return E.first.hash() * 0x9e3779b97f4a7c15ULL ^ E.second.hash();
    }
  };

  ShardedDigestCache<std::shared_ptr<const Snapshot>> Map;
  const size_t EntryCap;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_CONSTRAINTSTORE_H
