//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock stopwatch used by the benchmark harnesses to report
/// synthesis and model-checking runtimes (Figures 7 and 8).
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_TIMER_H
#define NETUPD_SUPPORT_TIMER_H

#include <chrono>

namespace netupd {

/// Wall-clock stopwatch; starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_TIMER_H
