//===- support/Digest.h - Canonical content digests ------------*- C++ -*-===//
//
// Part of the netupd project, reproducing "Efficient Synthesis of Network
// Updates" (McClurg et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit content digest and a streaming builder, used to give every
/// query-path object (Rule, Config, Topology, Formula, KripkeStructure,
/// Scenario) a stable canonical identity for memoization. Two objects
/// with equal digests are treated as identical by the caches, so the
/// mixing must be strong enough that accidental collisions are
/// negligible at cache scale (128 bits of splitmix-style avalanche per
/// word; no cryptographic claim).
///
/// Digests support XOR composition, which the incremental maintenance in
/// KripkeStructure exploits Zobrist-style: a configuration's digest is
/// the XOR over switches of mix(switch, table digest), so replacing one
/// table updates the digest in O(|table|) and rolls back exactly —
/// apply/undo pairs restore the digest bit-for-bit without rehashing,
/// which is what lets every recheckAfterUpdate site read a current
/// structure digest for free.
///
/// Cache-key exclusions — the invariant every digestOf() overload obeys:
/// a digest covers exactly the content that determines a computation's
/// *result*, and nothing else. Display names, StopTokens, diagnostic
/// path fields (FlowSpec::InitialPath/FinalPath), and performance knobs
/// (SynthOptions::Shards, ShardCheckerFactory, the engine's worker
/// count) are all excluded; formulas digest structurally, so two
/// FormulaFactory instances interning the same formula agree; and an
/// empty portfolio digests as the default member it executes as
/// (engine/Engine.cpp normalizes both sides the same way). Violating
/// this in either direction is a real bug: digesting too little serves
/// wrong results to lookalike queries, digesting too much splits the
/// cache and silently erases the hit rate.
///
//===----------------------------------------------------------------------===//

#ifndef NETUPD_SUPPORT_DIGEST_H
#define NETUPD_SUPPORT_DIGEST_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace netupd {

/// A 128-bit content digest; value-equal objects have equal digests.
struct Digest {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  friend bool operator==(const Digest &A, const Digest &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Digest &A, const Digest &B) {
    return !(A == B);
  }

  /// XOR composition; order-independent, self-inverse (see file comment).
  friend Digest operator^(const Digest &A, const Digest &B) {
    return Digest{A.Lo ^ B.Lo, A.Hi ^ B.Hi};
  }
  Digest &operator^=(const Digest &B) {
    Lo ^= B.Lo;
    Hi ^= B.Hi;
    return *this;
  }

  /// Renders as 32 lowercase hex digits.
  std::string str() const {
    char Buf[33];
    std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                  static_cast<unsigned long long>(Hi),
                  static_cast<unsigned long long>(Lo));
    return Buf;
  }
};

/// Hash functor so Digest can key unordered containers. The digest is
/// already uniformly mixed, so folding the halves suffices.
struct DigestHash {
  size_t operator()(const Digest &D) const {
    return static_cast<size_t>(D.Lo ^ (D.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Accumulates words into a Digest. Deterministic across runs and
/// platforms; inputs of different lengths never collide by extension
/// because finish() folds the word count in.
class DigestBuilder {
public:
  void addU64(uint64_t V) {
    A = mix(A ^ V);
    B = mix(B + rotl(V, 32) + 0x94d049bb133111ebULL);
    ++Count;
  }

  void addU32(uint32_t V) { addU64(V); }
  void addBool(bool V) { addU64(V ? 1 : 0); }

  /// Doubles pass through their bit pattern, so -0.0 and 0.0 differ;
  /// digest consumers only ever compare configured values, never
  /// computed ones, so bit identity is the right notion.
  void addDouble(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    addU64(Bits);
  }

  /// Length-prefixed so "ab","c" and "a","bc" differ.
  void addString(const std::string &S) {
    addU64(S.size());
    uint64_t W = 0;
    unsigned N = 0;
    for (unsigned char C : S) {
      W = (W << 8) | C;
      if (++N == 8) {
        addU64(W);
        W = 0;
        N = 0;
      }
    }
    if (N)
      addU64(W);
  }

  void addDigest(const Digest &D) {
    addU64(D.Lo);
    addU64(D.Hi);
  }

  Digest finish() const {
    uint64_t Lo = mix(A ^ mix(Count));
    uint64_t Hi = mix(B + Lo);
    return Digest{Lo, Hi};
  }

private:
  static uint64_t rotl(uint64_t X, unsigned R) {
    return (X << R) | (X >> (64 - R));
  }

  /// The splitmix64 finalizer: full avalanche on 64 bits.
  static uint64_t mix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  uint64_t A = 0x243f6a8885a308d3ULL; // pi fraction; arbitrary nonzero seeds
  uint64_t B = 0x13198a2e03707344ULL;
  uint64_t Count = 0;
};

} // namespace netupd

#endif // NETUPD_SUPPORT_DIGEST_H
